// E11 -- §7 closing paragraph: the balanced division preserves balanced
// energy consumption when the base schedule is balanced.
//
// Compares the contiguous and balanced division policies on balanced bases
// (full polynomial families) and ragged bases: per-slot active spread,
// per-node active-slot spread, and the stddev of per-node duty cycles.
#include <iostream>

#include "combinatorics/constructions.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "core/energy.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"

using namespace ttdc;

int main() {
  obs::BenchReport report("balanced_energy");
  util::print_banner("E11 / balanced-energy division (§7)", {});
  util::Table table({"base", "division", "slot spread", "node spread", "duty stddev",
                     "slots balanced", "nodes balanced", "wakeups/frame"});
  table.set_precision(5);
  bool ok = true;

  struct Cell {
    core::Schedule base;
    std::size_t d, at, ar;
    const char* name;
    bool base_balanced;
  };
  std::vector<Cell> cells;
  cells.push_back({core::non_sleeping_from_family(comb::polynomial_family(5, 2, 125)), 2, 5,
                   20, "poly(5,2) full (balanced)", true});
  cells.push_back({core::non_sleeping_from_family(comb::polynomial_family(4, 1, 16)), 3, 2, 6,
                   "poly(4,1) full (balanced)", true});
  cells.push_back({core::non_sleeping_from_family(comb::polynomial_family(7, 2, 40)), 3, 4,
                   10, "poly(7,2) truncated (ragged)", false});

  for (const auto& c : cells) {
    for (const core::DivisionPolicy policy :
         {core::DivisionPolicy::kContiguous, core::DivisionPolicy::kBalanced}) {
      core::ConstructOptions opts;
      opts.division = policy;
      const core::Schedule out = core::construct_duty_cycled(c.base, c.d, c.at, c.ar, opts);
      const core::BalanceReport r = core::balance_report(out);
      const bool balanced_policy = policy == core::DivisionPolicy::kBalanced;
      if (c.base_balanced && balanced_policy) {
        // The §7 claim under test.
        ok &= r.slots_balanced() && r.nodes_balanced();
      }
      table.add_row({std::string(c.name),
                     std::string(balanced_policy ? "balanced" : "contiguous"),
                     static_cast<std::int64_t>(r.max_active_per_slot - r.min_active_per_slot),
                     static_cast<std::int64_t>(r.max_active_per_node - r.min_active_per_node),
                     r.node_duty_stddev, std::string(r.slots_balanced() ? "yes" : "no"),
                     std::string(r.nodes_balanced() ? "yes" : "no"),
                     static_cast<std::int64_t>(core::total_wake_transitions(out))});
    }
  }
  std::cout << table.to_text();
  std::cout << "\nresult: balanced division on balanced bases keeps both §7 balance "
            << "properties: " << (ok ? "CONFIRMED" : "FAILED") << "\n";
  report.metric("cells", table.num_rows());
  report.metric("ok", ok ? 1 : 0);
  report.write();
  return ok ? 0 : 1;
}
