// E17 -- probing the paper's standing assumption ("we assume an efficient
// synchronization scheme is available"): how gracefully do the guarantees
// degrade as slot-sync misses and channel errors grow?
//
// Saturated worst-case star under the duty-cycled TT schedule, sweeping
// sync_miss_rate and packet_error_rate; reports per-frame deliveries
// (analytic guarantee scaled by (1-loss) in expectation) and latency
// inflation.
//
// Runs as a runner campaign: cell 0 is the perfect-channel baseline and
// cells 1..15 the sweep points, all sharing one duty-schedule build through
// the campaign ArtifactStore. Every cell keeps the experiment's original
// fixed seed, and the table is assembled from cell results in index order,
// so the output is byte-identical to the serial sweep at any worker count.
#include <iostream>
#include <vector>

#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "net/graph.hpp"
#include "obs/report.hpp"
#include "runner/runner.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

using namespace ttdc;

int main() {
  constexpr std::size_t kN = 25, kD = 3;
  constexpr std::uint64_t kFrames = 400;
  obs::BenchReport report("sync_robustness");
  report.param("n", kN);
  report.param("D", kD);
  report.param("frames", static_cast<std::int64_t>(kFrames));
  util::print_banner("E17 / robustness to imperfect synchronization and channel",
                     {{"n", std::to_string(kN)},
                      {"D", std::to_string(kD)},
                      {"frames", std::to_string(kFrames)}});

  // Worst-case star: y = 0, neighbors 1..D, all saturated toward y.
  auto cell_fn = [](double sync_miss, double per) {
    return [sync_miss, per](runner::CellContext& ctx) {
      auto duty = ctx.artifacts().schedule("duty:best_plan", [] {
        return core::construct_duty_cycled(
            core::non_sleeping_from_family(comb::build_plan(comb::best_plan(kN, kD), kN)),
            kD, 4, 8);
      });
      net::Graph star(kN);
      std::vector<std::pair<std::size_t, std::size_t>> flows;
      for (std::size_t leaf = 1; leaf <= kD; ++leaf) {
        star.add_edge(0, leaf);
        flows.emplace_back(leaf, 0);
      }
      sim::DutyCycledScheduleMac mac(*duty);
      sim::Simulator* probe = nullptr;
      sim::SaturatedFlows traffic(std::move(flows),
                                  [&probe](std::size_t v) { return probe->queue_size(v); });
      sim::SimConfig config;
      config.seed = 31337;  // the experiment's original fixed seed, not ctx.seed()
      config.sync_miss_rate = sync_miss;
      config.packet_error_rate = per;
      sim::Simulator sim(std::move(star), mac, traffic, config);
      probe = &sim;
      sim.run(kFrames * duty->frame_length());
      ctx.record(sim.stats());
    };
  };

  std::vector<std::pair<double, double>> points;
  points.emplace_back(0.0, 0.0);  // cell 0: perfect-channel baseline
  for (double sync : {0.0, 0.05, 0.1, 0.2}) {
    for (double per : {0.0, 0.05, 0.1, 0.2}) {
      if (sync == 0.0 && per == 0.0) continue;
      points.emplace_back(sync, per);
    }
  }
  runner::Campaign campaign;
  for (const auto& [sync, per] : points) {
    std::string name = "sync=";
    name += std::to_string(sync);
    name += ",per=";
    name += std::to_string(per);
    campaign.add(std::move(name), cell_fn(sync, per));
  }
  const runner::CampaignResult result = campaign.run();

  const sim::SimStats& baseline = result.cells[0].stats;
  const double base_per_frame =
      static_cast<double>(baseline.delivered) / static_cast<double>(kFrames);
  std::cout << "perfect channel: " << base_per_frame << " deliveries/frame\n\n";

  util::Table table({"sync_miss", "pkt_err", "deliv/frame", "vs perfect", "expected (1-loss)",
                     "lat p95", "lat max"});
  table.set_precision(4);
  bool graceful = true;
  for (std::size_t i = 1; i < result.cells.size(); ++i) {
    const auto& [sync, per] = points[i];
    const sim::SimStats& st = result.cells[i].stats;
    const double per_frame =
        static_cast<double>(st.delivered) / static_cast<double>(kFrames);
    const double ratio = per_frame / base_per_frame;
    const double expected = (1.0 - sync) * (1.0 - per);
    // Graceful: retransmission of lost packets keeps goodput within a
    // few points of the i.i.d. loss model (saturated flows resend, so
    // goodput tracks the success probability of each attempt).
    graceful &= ratio > expected - 0.1;
    table.add_row({sync, per, per_frame, ratio, expected,
                   static_cast<std::int64_t>(st.latency.percentile(95)),
                   static_cast<std::int64_t>(st.latency.max())});
  }
  std::cout << table.to_text();
  std::cout << "\nresult: goodput tracks (1-sync_miss)(1-pkt_err) and the link never "
            << "starves -- the schedule degrades gracefully, it does not collapse: "
            << (graceful ? "CONFIRMED" : "FAILED") << "\n";
  report.metric("cells", table.num_rows());
  report.metric("base_deliveries_per_frame", base_per_frame);
  report.metric("ok", graceful ? 1 : 0);
  report.write();
  return graceful ? 0 : 1;
}
