// Slot-rate regression harness for the word-parallel simulator hot path
// (DESIGN.md §8): measures scalar-vs-batched slots/sec for
// n in {50, 100, 200, 400, 800, 1600, 3200} under DutyCycledScheduleMac
// with tracing off, and gates on a >= 3x speedup at n = 400. The 1600 and
// 3200 rows ride along informationally (slots_per_sec metrics only, no
// gated *_speedup — the scalar pipeline is far outside its design envelope
// there and the ratio is too noisy to gate; the metropolitan sizes proper
// are bench_megascale's job). Emits BENCH_sim_hotpath.json (consumed by
// scripts/run_benches.sh --perf-check for regression tracking against the
// committed baseline).
#include <algorithm>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "combinatorics/constructions.hpp"
#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "net/topology.hpp"
#include "obs/report.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"
#include "util/timer.hpp"

namespace {

using namespace ttdc;

constexpr std::uint64_t kWarmup = 2000;
constexpr int kPairs = 9;
constexpr double kGateN = 400;
constexpr double kGateSpeedup = 3.0;

// Timed slots scale down with n so every row costs comparable wall time.
std::uint64_t timed_slots(std::size_t n) { return 4'000'000 / n; }

double slot_rate_once(const net::Graph& g, const core::Schedule& duty, bool force_scalar) {
  sim::DutyCycledScheduleMac mac(duty);
  sim::BernoulliTraffic traffic(g.num_nodes(), 0.01);
  sim::SimConfig config{.seed = 7};
  config.force_scalar_pipeline = force_scalar;
  sim::Simulator sim(g, mac, traffic, config);
  sim.run(kWarmup);
  const std::uint64_t timed = timed_slots(g.num_nodes());
  util::Timer timer;
  sim.run(timed);
  return static_cast<double>(timed) / timer.seconds();
}

}  // namespace

int main() {
  obs::BenchReport report("sim_hotpath");
  report.param("mac", "DutyCycledScheduleMac");
  report.param("traffic", "bernoulli_0.01");
  report.param("pairs", static_cast<std::int64_t>(kPairs));
  report.param("warmup_slots", static_cast<std::int64_t>(kWarmup));
  report.param("gate_n", static_cast<std::int64_t>(kGateN));
  report.param("gate_speedup", kGateSpeedup);

  bool gate_ok = false;
  double gate_speedup = 0.0;
  std::cout << "simulator hot path: scalar vs batched pipeline (slots/sec)\n"
            << "    n     scalar/s    batched/s  speedup\n";
  for (std::size_t n : {50, 100, 200, 400, 800, 1600, 3200}) {
    util::Xoshiro256 rng(3);
    const net::Graph g = net::random_bounded_degree_graph(n, 4, 2 * n, rng);
    const core::Schedule duty = core::construct_duty_cycled(
        core::non_sleeping_from_family(comb::build_plan(comb::best_plan(n, 4), n)), 4, 4,
        n / 3);
    // Back-to-back scalar/batched pairs scored by the median per-pair
    // ratio: pairing cancels clock drift, the median discards load spikes
    // (same methodology as the ring-sink budget in bench_scalability).
    std::vector<double> ratios, scalar_rates, batched_rates;
    slot_rate_once(g, duty, false);  // shared warmup rep, untimed
    for (int rep = 0; rep < kPairs; ++rep) {
      const double s = slot_rate_once(g, duty, true);
      const double b = slot_rate_once(g, duty, false);
      scalar_rates.push_back(s);
      batched_rates.push_back(b);
      ratios.push_back(b / s);
    }
    std::nth_element(ratios.begin(), ratios.begin() + kPairs / 2, ratios.end());
    const double speedup = ratios[kPairs / 2];
    const double scalar = *std::max_element(scalar_rates.begin(), scalar_rates.end());
    const double batched = *std::max_element(batched_rates.begin(), batched_rates.end());
    std::cout << "  " << n << "  " << scalar << "  " << batched << "  " << speedup
              << "x\n";
    std::string key = "n";
    key += std::to_string(n);
    report.metric(key + "_scalar_slots_per_sec", scalar);
    report.metric(key + "_batched_slots_per_sec", batched);
    // The extended ladder rows (n > 800) are informational only: no
    // *_speedup key, so --perf-check never gates them.
    if (n <= 800) report.metric(key + "_speedup", speedup);
    if (static_cast<double>(n) == kGateN) {
      gate_speedup = speedup;
      gate_ok = speedup >= kGateSpeedup;
    }
  }
  std::cout << "\nbatched speedup @ n=" << kGateN << ": " << gate_speedup
            << "x (gate >= " << kGateSpeedup << "x): " << (gate_ok ? "CONFIRMED" : "FAILED")
            << "\n";
  report.metric("ok", gate_ok ? 1 : 0);
  report.write();
  return gate_ok ? 0 : 1;
}
