// E5 + E10 -- Theorem 4: throughput bound for (αT, αR)-schedules, the
// energy/throughput tradeoff surface, and §5.2's monotonicity in αR.
//
// At fixed (n, D), sweeps αT and αR: prints αT* = min(αT, α), the bound
// Thr*_{αR,αT}, the throughput achieved by an exact-size random schedule
// (must meet the bound), the awake fraction (αT*+αR)/n that energy pays,
// and the general-schedule ceiling of Theorem 3 for reference.
#include <iostream>

#include "core/builders.hpp"
#include "core/throughput.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"

using namespace ttdc;

int main() {
  constexpr std::size_t kN = 32, kD = 3;
  obs::BenchReport report("thm4_bound");
  report.param("n", kN);
  report.param("D", kD);
  util::print_banner("E5 / Theorem 4: (aT,aR)-schedule bound and energy tradeoff",
                     {{"n", std::to_string(kN)}, {"D", std::to_string(kD)}});
  std::cout << "Theorem 3 general ceiling: "
            << static_cast<double>(core::throughput_upper_bound_general(kN, kD))
            << "  (alphaT* = " << core::optimal_transmitters_general(kN, kD) << ")\n\n";
  util::Table table({"alphaT", "alphaR", "alphaT*", "Thr*_{aR,aT}", "achieved", "meets bound",
                     "awake fraction", "thr per awake"});
  table.set_precision(7);
  util::Xoshiro256 rng(11);
  bool ok = true;
  long double prev_for_alpha_r = -1.0L;
  for (std::size_t at : {1u, 2u, 4u, 8u, 12u}) {
    prev_for_alpha_r = -1.0L;
    for (std::size_t ar : {2u, 4u, 8u, 16u, 24u}) {
      if (at + ar > kN) continue;
      const std::size_t star = core::optimal_transmitters_alpha(kN, kD, at);
      const long double bound = core::throughput_upper_bound_alpha(kN, kD, at, ar);
      const core::Schedule s = core::random_alpha_schedule(kN, 6, star, ar, true, rng);
      const long double achieved = core::average_throughput(s, kD);
      const bool meets = std::abs(static_cast<double>(achieved - bound)) < 1e-12;
      ok &= meets;
      // §5.2 monotonicity: bound grows with alphaR at fixed alphaT.
      ok &= bound > prev_for_alpha_r;
      prev_for_alpha_r = bound;
      const double awake = static_cast<double>(star + ar) / static_cast<double>(kN);
      table.add_row({static_cast<std::int64_t>(at), static_cast<std::int64_t>(ar),
                     static_cast<std::int64_t>(star), static_cast<double>(bound),
                     static_cast<double>(achieved), std::string(meets ? "yes" : "NO"), awake,
                     static_cast<double>(bound) / awake});
    }
  }
  std::cout << table.to_text();
  std::cout << "\nresult: achieved == bound at |T[i]|=alphaT*, |R[i]|=alphaR; bound is "
            << "monotone in alphaR (§5.2): " << (ok ? "CONFIRMED" : "FAILED") << "\n";
  report.metric("cells", table.num_rows());
  report.metric("ok", ok ? 1 : 0);
  report.write();
  return ok ? 0 : 1;
}
