// Fault injection under load (DESIGN.md §12): how much guaranteed
// throughput each MAC keeps as the deterministic fault plan ramps up, and
// what the fault machinery costs when it is NOT in use.
//
// Two halves:
//
//  1. Fault-intensity sweep. A convergecast campaign (runner resilience
//     armed: retries + quarantine) runs the MAC zoo — the TT duty-cycled
//     schedule, slotted ALOHA, uncoordinated sleep, S-MAC-style common
//     active period, and distance-2 coloring TDMA — at fault intensities
//     0 / 0.5 / 1.0 (crash + bursty link loss + jammer + battery spikes,
//     all seed-derived). Reported: delivery ratio per (mac, intensity).
//     The TT schedule's delivery must degrade gracefully — the sweep fails
//     if TT at full intensity delivers less than half of ALOHA at full
//     intensity (the paper's claim is robustness without topology
//     knowledge, not fragility).
//
//  2. Disarmed-cost gate. The fault subsystem compiled in but with no
//     FaultPlan armed must be invisible: a paired measurement (same seed,
//     interleaved reps) of disarmed vs armed-with-EMPTY-plan runs gates the
//     armed-empty overhead at <2%, with a disarmed/disarmed noise canary
//     that skips the gate (policy of bench_obs_recorder) when the host is
//     too loaded to resolve 2%. Armed-empty and disarmed runs must also
//     produce bit-identical SimStats — arming the machinery without faults
//     may cost nanoseconds, never a different result.
//
// The committed baseline (bench/baselines/BENCH_fault_resilience.baseline
// .json) carries fault_empty_plan_speedup (~1.0) for run_benches.sh
// --perf-check; absolute slots/sec are informational.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "combinatorics/constructions.hpp"
#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "net/topology.hpp"
#include "obs/report.hpp"
#include "runner/runner.hpp"
#include "sim/fault.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace ttdc;

constexpr std::size_t kN = 36;
constexpr std::size_t kD = 4;
constexpr double kMaxOverhead = 0.02;

net::Graph bench_graph() {
  util::Xoshiro256 rng(21);
  return net::random_bounded_degree_graph(kN, kD, 2 * kN, rng);
}

core::Schedule duty_schedule() {
  return core::construct_duty_cycled(
      core::non_sleeping_from_family(comb::build_plan(comb::best_plan(kN, kD), kN)), kD,
      4, kN / 3);
}

sim::FaultPlanConfig intensity_config(double x, std::uint64_t horizon) {
  sim::FaultPlanConfig fc;
  fc.horizon_slots = horizon;
  fc.crash_rate = 4e-5 * x;
  fc.mean_downtime_slots = 300;
  fc.link_loss.p_good_to_bad = 0.004 * x;
  fc.link_loss.p_bad_to_good = 0.05;
  fc.battery_spike_rate = 2e-5 * x;
  fc.battery_spike_mj = 2.0;
  fc.num_jammers = x >= 0.99 ? 1 : 0;
  fc.jam_duty = 0.05 * x;
  return fc;
}

std::unique_ptr<sim::MacProtocol> make_mac(const std::string& kind,
                                           const core::Schedule& duty,
                                           const net::Graph& g) {
  if (kind == "tt-duty") return std::make_unique<sim::DutyCycledScheduleMac>(duty);
  if (kind == "aloha") return std::make_unique<sim::SlottedAlohaMac>(kN, 0.08);
  if (kind == "uncoord") return std::make_unique<sim::UncoordinatedSleepMac>(kN, 0.4, 0.2);
  if (kind == "smac") return std::make_unique<sim::CommonActivePeriodMac>(kN, 20, 5, 0.2);
  return std::make_unique<sim::ColoringTdmaMac>(g);
}

/// Field-by-field SimStats equality (the bit-identity contract).
bool stats_identical(const sim::SimStats& a, const sim::SimStats& b) {
  return a.slots_run == b.slots_run && a.generated == b.generated &&
         a.delivered == b.delivered && a.hop_successes == b.hop_successes &&
         a.transmissions == b.transmissions && a.collisions == b.collisions &&
         a.receiver_asleep == b.receiver_asleep && a.channel_losses == b.channel_losses &&
         a.sync_losses == b.sync_losses && a.queue_drops == b.queue_drops &&
         a.deaths == b.deaths && a.first_death_slot == b.first_death_slot &&
         a.fault_crashes == b.fault_crashes && a.fault_recoveries == b.fault_recoveries &&
         a.fault_battery_spikes == b.fault_battery_spikes &&
         a.fault_jam_bursts == b.fault_jam_bursts && a.burst_losses == b.burst_losses &&
         a.drift_losses == b.drift_losses && a.latency.count() == b.latency.count() &&
         a.latency.max() == b.latency.max() &&
         a.state_slots == b.state_slots && a.delivered_by_origin == b.delivered_by_origin;
}

enum class CostMode { kDisarmed, kDisarmedAgain, kArmedEmpty };

double cost_rate_once(const net::Graph& g, const core::Schedule& duty, CostMode mode,
                      std::uint64_t timed_slots, sim::SimStats* stats_out = nullptr) {
  sim::DutyCycledScheduleMac mac(duty);
  sim::BernoulliTraffic traffic(kN, 0.01);
  sim::SimConfig config{.seed = 7};
  // An EMPTY plan: machinery armed, zero faults scheduled. The contract is
  // that this is bit-identical to (and within noise of) not arming at all.
  sim::FaultPlanConfig empty;
  empty.horizon_slots = timed_slots + 1000;
  const sim::FaultPlan empty_plan(empty, kN, /*seed=*/99);
  if (mode == CostMode::kArmedEmpty) config.fault_plan = &empty_plan;
  sim::Simulator sim(g, mac, traffic, config);
  sim.run(1000);  // warmup
  util::Timer timer;
  sim.run(timed_slots);
  const double rate = static_cast<double>(timed_slots) / timer.seconds();
  if (stats_out != nullptr) *stats_out = sim.stats();
  return rate;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::uint64_t sweep_slots = smoke ? 4000 : 20000;
  // Long enough per rep (~10 ms) that the best-of-N rates resolve a 2%
  // contract on a shared host; the canary still skips the gate when not.
  const std::uint64_t timed_slots = smoke ? 8000 : 40000;
  const int pairs = smoke ? 5 : 15;
  const std::size_t replicas = smoke ? 2 : 4;

  obs::BenchReport report("fault_resilience");
  report.param("n", static_cast<std::int64_t>(kN));
  report.param("degree", static_cast<std::int64_t>(kD));
  report.param("sweep_slots", static_cast<std::int64_t>(sweep_slots));
  report.param("replicas", static_cast<std::int64_t>(replicas));
  report.param("max_overhead", kMaxOverhead);
  report.param("smoke", smoke ? 1 : 0);
  util::print_banner("E24 / fault injection: delivery vs intensity, disarmed-cost gate",
                     {{"n", std::to_string(kN)},
                      {"slots", std::to_string(sweep_slots)},
                      {"replicas", std::to_string(replicas)},
                      {"smoke", smoke ? "yes" : "no"}});

  const net::Graph g = bench_graph();
  const core::Schedule duty = duty_schedule();
  const char* macs[] = {"tt-duty", "aloha", "uncoord", "smac", "tdma"};
  const double intensities[] = {0.0, 0.5, 1.0};

  // ---- 1. fault-intensity sweep via a resilient campaign --------------
  runner::CampaignOptions copt;
  copt.master_seed = 0xfa01;
  runner::ResilienceOptions res;  // retries + quarantine armed, no journal
  copt.resilience = res;
  runner::Campaign campaign(copt);
  for (const char* mac_kind : macs) {
    for (const double x : intensities) {
      for (std::size_t rep = 0; rep < replicas; ++rep) {
        std::string name(mac_kind);
        name += ":i";
        name += std::to_string(static_cast<int>(x * 100));
        name += ":r";
        name += std::to_string(rep);
        campaign.add(std::move(name),
                     [&g, &duty, mac_kind, x, sweep_slots](runner::CellContext& ctx) {
                       auto mac = make_mac(mac_kind, duty, g);
                       sim::ConvergecastTraffic traffic(kN, /*sink=*/0, 0.002);
                       sim::SimConfig cfg;
                       cfg.seed = ctx.seed();
                       std::unique_ptr<sim::FaultPlan> plan;
                       if (x > 0.0) {
                         plan = std::make_unique<sim::FaultPlan>(
                             intensity_config(x, sweep_slots), kN, ctx.seed());
                         cfg.fault_plan = plan.get();
                       }
                       sim::Simulator sim(g, *mac, traffic, cfg);
                       sim.run(sweep_slots);
                       ctx.record(sim.stats());
                       ctx.metric("delivery_ratio", sim.stats().delivery_ratio());
                     });
      }
    }
  }
  const runner::CampaignResult sweep = campaign.run();

  // Fold per-(mac, intensity) delivery out of the per-cell metrics.
  util::Table table({"mac", "i=0.0", "i=0.5", "i=1.0"});
  double delivery[std::size(macs)][std::size(intensities)] = {};
  std::size_t cell = 0;
  for (std::size_t m = 0; m < std::size(macs); ++m) {
    for (std::size_t ix = 0; ix < std::size(intensities); ++ix) {
      double sum = 0.0;
      for (std::size_t rep = 0; rep < replicas; ++rep, ++cell) {
        sum += sweep.cells[cell].metrics.empty() ? 0.0
                                                 : sweep.cells[cell].metrics[0].second;
      }
      delivery[m][ix] = sum / static_cast<double>(replicas);
    }
    table.add_row({macs[m], delivery[m][0], delivery[m][1], delivery[m][2]});
  }
  std::cout << "mean delivery ratio by fault intensity (" << replicas
            << " replicas each, quarantined cells: " << sweep.quarantined.size()
            << ")\n"
            << table.to_text();
  for (std::size_t m = 0; m < std::size(macs); ++m) {
    std::string key(macs[m]);
    for (char& c : key) {
      if (c == '-') c = '_';
    }
    report.metric("delivery_" + key + "_i0", delivery[m][0]);
    report.metric("delivery_" + key + "_i50", delivery[m][1]);
    report.metric("delivery_" + key + "_i100", delivery[m][2]);
  }
  // Graceful degradation: the TT schedule under full fault load must not
  // collapse relative to contention MACs under the same load.
  const bool degrade_ok = delivery[0][2] >= 0.5 * delivery[1][2];
  std::cout << "TT@i=1.0 vs 0.5*ALOHA@i=1.0: " << delivery[0][2] << " vs "
            << 0.5 * delivery[1][2] << " (" << (degrade_ok ? "CONFIRMED" : "FAILED")
            << ")\n";

  // ---- 2. disarmed-cost gate ------------------------------------------
  cost_rate_once(g, duty, CostMode::kDisarmed, timed_slots);  // untimed warmup
  std::vector<double> off_rates, off2_rates, empty_rates;
  constexpr CostMode kModes[3] = {CostMode::kDisarmed, CostMode::kDisarmedAgain,
                                  CostMode::kArmedEmpty};
  for (int rep = 0; rep < pairs; ++rep) {
    double rates[3];
    for (int j = 0; j < 3; ++j) {
      const int m = (j + rep) % 3;
      rates[m] = cost_rate_once(g, duty, kModes[m], timed_slots);
    }
    off_rates.push_back(rates[0]);
    off2_rates.push_back(rates[1]);
    empty_rates.push_back(rates[2]);
  }
  const double off = *std::max_element(off_rates.begin(), off_rates.end());
  const double off2 = *std::max_element(off2_rates.begin(), off2_rates.end());
  const double empty = *std::max_element(empty_rates.begin(), empty_rates.end());
  const double noise = std::abs(off / off2 - 1.0);
  const double overhead = off / empty - 1.0;

  sim::SimStats disarmed_stats, empty_stats;
  cost_rate_once(g, duty, CostMode::kDisarmed, timed_slots, &disarmed_stats);
  cost_rate_once(g, duty, CostMode::kArmedEmpty, timed_slots, &empty_stats);
  const bool identical = stats_identical(disarmed_stats, empty_stats);

  std::cout << "\nfault machinery cost (best of " << pairs << " reps per mode)\n"
            << "  no plan:          " << off << " slots/s\n"
            << "  no plan (again):  " << off2 << " slots/s (noise canary "
            << noise * 100 << "%)\n"
            << "  empty plan armed: " << empty << " slots/s (overhead "
            << overhead * 100 << "%)\n"
            << "empty-plan run bit-identical to disarmed run: "
            << (identical ? "CONFIRMED" : "FAILED") << "\n";

  const bool measurable = noise <= kMaxOverhead / 2;
  const bool overhead_ok = overhead <= kMaxOverhead;
  if (!measurable) {
    std::cout << "overhead gate (<= " << kMaxOverhead * 100
              << "%): SKIPPED (noise canary " << noise * 100 << "% exceeds "
              << kMaxOverhead * 50 << "%; host too loaded to resolve)\n";
  } else {
    std::cout << "overhead gate (<= " << kMaxOverhead * 100
              << "%): " << (overhead_ok ? "CONFIRMED" : "FAILED") << "\n";
  }

  const bool ok = degrade_ok && identical && (!measurable || overhead_ok);
  report.metric("disarmed_slots_per_sec", off);
  report.metric("armed_empty_slots_per_sec", empty);
  report.metric("fault_empty_plan_speedup", off > 0.0 ? empty / off : 0.0);
  report.metric("noise_canary", noise);
  report.metric("armed_empty_overhead", overhead);
  report.metric("stats_identical", identical ? 1 : 0);
  report.metric("degrade_ok", degrade_ok ? 1 : 0);
  report.metric("gate_measurable", measurable ? 1 : 0);
  report.metric("quarantined_cells", sweep.quarantined.size());
  report.metric("ok", ok ? 1 : 0);
  report.write();
  return ok ? 0 : 1;
}
