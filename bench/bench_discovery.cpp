// E18 -- neighbor discovery as a corollary of topology transparency:
// every neighbor is heard within ONE frame on every bounded-degree
// topology, even duty-cycled; compare against uncoordinated random
// sleeping where discovery has only probabilistic tails.
#include <iostream>

#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "net/topology.hpp"
#include "obs/report.hpp"
#include "sim/discovery.hpp"
#include "util/table.hpp"

using namespace ttdc;

int main() {
  constexpr std::size_t kN = 24, kD = 3;
  constexpr int kTopologies = 20;
  obs::BenchReport report("discovery");
  report.param("n", kN);
  report.param("D", kD);
  report.param("topologies", kTopologies);
  util::print_banner("E18 / one-frame neighbor discovery",
                     {{"n", std::to_string(kN)},
                      {"D", std::to_string(kD)},
                      {"topologies", std::to_string(kTopologies)}});
  const auto plan = comb::best_plan(kN, kD);
  const core::Schedule base = core::non_sleeping_from_family(comb::build_plan(plan, kN));
  const core::Schedule duty = core::construct_duty_cycled(base, kD, 3, 8);
  std::cout << "base " << plan.to_string() << "; duty-cycled L=" << duty.frame_length()
            << " duty=" << duty.duty_cycle() << "\n\n";

  util::Table table({"schedule", "topologies complete in 1 frame", "worst last-heard slot",
                     "frame L"});
  bool ok = true;
  for (const auto& [name, schedule] :
       {std::pair<const char*, const core::Schedule&>{"non-sleeping <T>", base},
        std::pair<const char*, const core::Schedule&>{"duty-cycled <T,R>", duty}}) {
    util::Xoshiro256 rng(2468);
    int complete = 0;
    std::size_t worst_slot = 0;
    for (int i = 0; i < kTopologies; ++i) {
      const net::Graph g = net::random_bounded_degree_graph(kN, kD, 2 * kN, rng);
      const sim::DiscoveryResult r =
          sim::run_discovery(schedule, g, schedule.frame_length());
      if (r.complete(g)) ++complete;
      worst_slot = std::max(worst_slot, r.last_discovery_slot());
    }
    ok &= complete == kTopologies;
    table.add_row({std::string(name), static_cast<std::int64_t>(complete),
                   static_cast<std::int64_t>(worst_slot),
                   static_cast<std::int64_t>(schedule.frame_length())});
  }
  std::cout << table.to_text();
  std::cout << "\nresult: every directed adjacency heard within one frame on all "
            << kTopologies << " random degree-<=" << kD
            << " topologies, with zero control traffic: " << (ok ? "CONFIRMED" : "FAILED")
            << "\n";
  report.metric("cells", table.num_rows());
  report.metric("ok", ok ? 1 : 0);
  report.write();
  return ok ? 0 : 1;
}
