// Frame-level fast-forwarding bench (DESIGN.md §15): the memoized replay
// engine vs slot-accurate stepping on the workload it was built for — a
// static-topology duty-cycled network with sparse lookahead traffic (the
// E21 lifetime regime: long silent stretches between convergecast
// arrivals). Gates:
//
//   * fastforward_speedup >= 10x: FF-on vs FF-off wall-clock on the
//     sparse-traffic run (stats asserted bit-identical before timing);
//   * disarmed_overhead <= 2%: an armed engine that falls back on every
//     frame (saturating arrivals veto each boundary) must cost within 2%
//     of the flag-off run — the boundary probe is the entire toll.
//
// Rates are the MAX over interleaved reps (the bench_megascale idiom): on
// a shared box, co-tenant interference only ever slows a rep down, so the
// max estimates the uncontended rate and the ratio of maxes the
// uncontended speedup.
//
// Emits BENCH_fastforward.json; fastforward_speedup is regression-gated by
// scripts/run_benches.sh --perf-check.
//
// --smoke: short run, no gate failures — the CI Release job runs this to
// prove the replay engine stays alive and golden-equal without paying for
// a calibrated run.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "combinatorics/constructions.hpp"
#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "net/domain_grid.hpp"
#include "net/topology.hpp"
#include "obs/report.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"
#include "util/timer.hpp"

namespace {

using namespace ttdc;

constexpr std::size_t kN = 400;
constexpr std::size_t kMaxDegree = 6;
constexpr double kBatteryMj = 1.0e7;  // outlives every timed window: no
                                      // death crossing inside a rep
constexpr double kGateSpeedup = 10.0;
constexpr double kGateOverhead = 0.02;
// Aggregate arrival gap for the sparse (fast-forwardable) workload, in
// FRAMES (the n=400 schedule's frame is ~2400 slots). 150 frames of
// silence per arrival: the post-arrival drain (a handful of slot-accurate
// frames while packets are in flight) stays a rounding error against the
// replayable stretch, yet every timed window still sees re-entries.
constexpr double kSparseGapFrames = 150.0;

struct World {
  net::Positions pos;
  net::DomainGrid grid;
  net::Graph graph;
  core::Schedule schedule;
};

World make_world(std::size_t n) {
  util::Xoshiro256 rng(0xFF5D ^ static_cast<std::uint64_t>(n));
  net::Positions pos = net::random_positions(n, rng);
  const double radius = std::min(0.4, std::sqrt(10.0 / static_cast<double>(n)));
  net::DomainGrid grid(pos, radius);
  net::Graph graph = net::unit_disk_graph(pos, radius, kMaxDegree, grid);
  core::Schedule schedule = core::construct_duty_cycled(
      core::non_sleeping_from_family(comb::build_plan(comb::best_plan(n, kMaxDegree), n)),
      kMaxDegree, 4, std::max<std::size_t>(4, n / 3));
  return {std::move(pos), std::move(grid), std::move(graph), std::move(schedule)};
}

double per_node_rate(double gap_slots) {
  // P(any arrival in a slot) ~ 1/gap; spread uniformly over n-1 origins.
  return 1.0 / (gap_slots * static_cast<double>(kN - 1));
}

sim::SimConfig base_config(bool fast_forward) {
  sim::SimConfig cfg;
  cfg.seed = 0xE21;
  cfg.battery_mj = kBatteryMj;
  cfg.fast_forward = fast_forward;
  return cfg;
}

struct RunResult {
  sim::SimStats stats;
  sim::FastForwardStats ff;
  double slots_per_sec = 0.0;
};

RunResult run_once(const World& world, bool fast_forward, double rate,
                   std::uint64_t warmup, std::uint64_t timed) {
  sim::DutyCycledScheduleMac mac(world.schedule);
  sim::LookaheadConvergecastTraffic traffic(kN, /*sink=*/0, rate, /*seed=*/0x5EED);
  sim::Simulator sim(world.graph, mac, traffic, base_config(fast_forward));
  sim.run(warmup);
  util::Timer timer;
  sim.run(timed);
  const double secs = timer.seconds();
  return {sim.stats(), sim.fast_forward_stats(),
          static_cast<double>(timed) / secs};
}

/// Golden tripwire before timing anything: the replay engine must count
/// the same world as slot-accurate stepping, bit for bit. (The full
/// cross-MAC matrix lives in tests/test_fastforward.cpp.)
bool stats_agree(const sim::SimStats& a, const sim::SimStats& b) {
  return a.slots_run == b.slots_run && a.generated == b.generated &&
         a.delivered == b.delivered && a.hop_successes == b.hop_successes &&
         a.transmissions == b.transmissions && a.collisions == b.collisions &&
         a.receiver_asleep == b.receiver_asleep &&
         a.queue_drops == b.queue_drops &&
         a.latency.count() == b.latency.count() &&
         a.latency.samples() == b.latency.samples() &&
         a.state_slots == b.state_slots &&
         a.delivered_by_origin == b.delivered_by_origin &&
         a.wake_transitions == b.wake_transitions &&
         a.first_death_slot == b.first_death_slot && a.deaths == b.deaths;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int pairs = smoke ? 3 : 5;
  const World world = make_world(kN);
  const std::uint64_t period = world.schedule.frame_length();
  // Warmup covers the memo's boundary-state cycle (the schedule rotation
  // yields a handful of distinct frame-boundary fingerprints, each needing
  // one slot-accurate recording before replays begin).
  const std::uint64_t warmup = 12 * period;
  const std::uint64_t timed = (smoke ? 30 : 600) * period;
  // The overhead gate compares two nearly equal rates, so its reps need to
  // be long enough (and numerous enough) that each side catches a quiet
  // stretch on a shared box — the ratio-of-maxes estimator only needs one
  // uncontended rep per side, but a 2% gate leaves little room for noise.
  const std::uint64_t overhead_timed = (smoke ? 20 : 300) * period;
  const int overhead_pairs = smoke ? 3 : 7;

  obs::BenchReport report("fastforward");
  report.param("n", static_cast<std::int64_t>(kN));
  report.param("mac", "duty_cycled_schedule");
  report.param("frame_length", static_cast<std::int64_t>(period));
  report.param("traffic", "lookahead_convergecast");
  report.param("sparse_gap_frames", kSparseGapFrames);
  report.param("battery_mj", kBatteryMj);
  report.param("pairs", static_cast<std::int64_t>(pairs));
  report.param("warmup_slots", static_cast<std::int64_t>(warmup));
  report.param("timed_slots", static_cast<std::int64_t>(timed));
  report.param("gate_speedup", kGateSpeedup);
  report.param("gate_overhead", kGateOverhead);
  report.param("smoke", static_cast<std::int64_t>(smoke ? 1 : 0));

  bool ok = true;
  const double sparse_rate =
      per_node_rate(kSparseGapFrames * static_cast<double>(period));

  // Golden tripwire on the exact timed workload (warmup + timed window).
  {
    const RunResult off = run_once(world, false, sparse_rate, warmup, timed);
    const RunResult on = run_once(world, true, sparse_rate, warmup, timed);
    if (!stats_agree(off.stats, on.stats)) {
      std::cout << "GOLDEN MISMATCH: fast-forward changed the stats\n";
      ok = false;
    }
    if (on.ff.frames_replayed == 0) {
      std::cout << "ENGINE IDLE: sparse workload never replayed a frame\n";
      ok = false;
    }
    const double replayed_fraction =
        static_cast<double>(on.ff.slots_replayed) /
        static_cast<double>(on.stats.slots_run);
    std::cout << "replayed fraction: " << replayed_fraction << " ("
              << on.ff.frames_replayed << " frames via " << on.ff.frames_recorded
              << " recordings)\n";
    report.metric("replayed_fraction", replayed_fraction);
    report.metric("frames_replayed", static_cast<double>(on.ff.frames_replayed));
    report.metric("frames_recorded", static_cast<double>(on.ff.frames_recorded));
  }

  // Speedup gate: sparse traffic, FF on vs off, max-paired rates.
  double speedup = 0.0;
  if (ok) {
    std::vector<double> on_rates, off_rates;
    run_once(world, true, sparse_rate, warmup, timed);  // warm caches, untimed
    for (int rep = 0; rep < pairs; ++rep) {
      off_rates.push_back(run_once(world, false, sparse_rate, warmup, timed).slots_per_sec);
      on_rates.push_back(run_once(world, true, sparse_rate, warmup, timed).slots_per_sec);
    }
    const double off = *std::max_element(off_rates.begin(), off_rates.end());
    const double on = *std::max_element(on_rates.begin(), on_rates.end());
    speedup = on / off;
    std::cout << "sparse: off " << off << " slots/s, on " << on << " slots/s, speedup "
              << speedup << "x\n";
    report.metric("off_slots_per_sec", off);
    report.metric("on_slots_per_sec", on);
    report.metric("fastforward_speedup", speedup);
  }

  // Overhead gate: saturating arrivals veto every frame boundary, so the
  // armed engine's only work is the per-frame probe. Compare against the
  // flag-off run on the identical workload.
  double overhead = 0.0;
  {
    // ~1 arrival per 200 slots in aggregate: every frame (~2400 slots)
    // contains one, so each boundary probe vetoes and the engine never
    // records or replays — pure fallback toll.
    const double dense_rate = per_node_rate(200.0);
    const RunResult probe = run_once(world, true, dense_rate, warmup, overhead_timed);
    if (probe.ff.frames_replayed != 0) {
      std::cout << "OVERHEAD WORKLOAD LEAKED REPLAYS: " << probe.ff.frames_replayed << "\n";
      ok = false;
    }
    std::vector<double> armed_rates, off_rates;
    for (int rep = 0; rep < overhead_pairs; ++rep) {
      off_rates.push_back(
          run_once(world, false, dense_rate, warmup, overhead_timed).slots_per_sec);
      armed_rates.push_back(
          run_once(world, true, dense_rate, warmup, overhead_timed).slots_per_sec);
    }
    const double off = *std::max_element(off_rates.begin(), off_rates.end());
    const double armed = *std::max_element(armed_rates.begin(), armed_rates.end());
    overhead = off > armed ? off / armed - 1.0 : 0.0;
    std::cout << "fallback-every-frame: off " << off << " slots/s, armed " << armed
              << " slots/s, overhead " << overhead * 100.0 << "%\n";
    report.metric("armed_fallback_slots_per_sec", armed);
    report.metric("flag_off_slots_per_sec", off);
    report.metric("disarmed_overhead", overhead);
  }

  const bool speedup_ok = speedup >= kGateSpeedup;
  const bool overhead_ok = overhead <= kGateOverhead;
  std::cout << "\nfastforward speedup: " << speedup << "x (gate >= " << kGateSpeedup
            << "x): " << (speedup_ok ? "CONFIRMED" : "FAILED") << "\n"
            << "disarmed overhead: " << overhead * 100.0 << "% (gate <= "
            << kGateOverhead * 100.0 << "%): " << (overhead_ok ? "CONFIRMED" : "FAILED")
            << "\n";
  if (!smoke) ok = ok && speedup_ok && overhead_ok;
  report.metric("ok", ok ? 1 : 0);
  report.write();
  // Smoke mode proves golden equality and that the engine engages; it is
  // too short to hold the calibrated perf gates.
  return ok ? 0 : 1;
}
