// E12 -- the paper's motivating tradeoff (§1): periodic duty cycling saves
// energy under light traffic while keeping latency bounded and tolerating
// collisions.
//
// Convergecast field deployment (grid, sink at a corner), light Bernoulli
// traffic. Compares five MACs: non-sleeping TT schedule, constructed
// duty-cycled TT schedules at two energy budgets, slotted ALOHA,
// uncoordinated random sleeping, and topology-aware coloring TDMA (the
// non-transparent reference point). Reports delivery ratio, latency
// percentiles, awake fraction, and energy per delivered packet.
//
// Runs as a runner campaign: one cell per MAC. All cells share the grid's
// BFS routing columns through the campaign ArtifactStore (one build, seven
// consumers), and the three TT cells share the base schedule build. Each
// cell keeps the experiment's original fixed seed, so the table reproduces
// the pre-campaign rows byte for byte at any worker count.
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "combinatorics/constructions.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "net/topology.hpp"
#include "obs/report.hpp"
#include "runner/runner.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

using namespace ttdc;

int main() {
  constexpr std::size_t kRows = 5, kCols = 5, kN = kRows * kCols, kD = 4, kSink = 0;
  constexpr double kRate = 0.0015;
  constexpr std::uint64_t kSlots = 60000;
  obs::BenchReport report("energy_latency");
  report.param("grid", "5x5");
  report.param("D", kD);
  report.param("rate_per_node_per_slot", kRate);
  report.param("slots", static_cast<std::int64_t>(kSlots));
  util::print_banner("E12 / energy vs latency under light convergecast traffic",
                     {{"grid", "5x5"},
                      {"D", std::to_string(kD)},
                      {"rate_per_node_per_slot", std::to_string(kRate)},
                      {"slots", std::to_string(kSlots)}});

  const net::Graph grid = net::grid_graph(kRows, kCols);
  const sim::EnergyModel energy;

  const auto base_schedule = [](runner::CellContext& ctx) {
    return ctx.artifacts().schedule("base:poly(5,1)", [] {
      return core::non_sleeping_from_family(comb::polynomial_family(5, 1, kN));
    });
  };

  struct RowSpec {
    const char* name;
    std::function<std::unique_ptr<sim::MacProtocol>(runner::CellContext&)> make_mac;
  };
  std::vector<RowSpec> specs;
  specs.push_back({"TT non-sleeping", [&](runner::CellContext& ctx) {
                     return std::make_unique<sim::DutyCycledScheduleMac>(*base_schedule(ctx));
                   }});
  specs.push_back({"TT duty (aR=10)", [&](runner::CellContext& ctx) {
                     auto base = base_schedule(ctx);
                     auto duty = ctx.artifacts().schedule("duty:aR=10", [&] {
                       return core::construct_duty_cycled(*base, kD, 5, 10);
                     });
                     return std::make_unique<sim::DutyCycledScheduleMac>(*duty);
                   }});
  specs.push_back({"TT duty (aR=5)", [&](runner::CellContext& ctx) {
                     auto base = base_schedule(ctx);
                     auto duty = ctx.artifacts().schedule("duty:aR=5", [&] {
                       return core::construct_duty_cycled(*base, kD, 5, 5);
                     });
                     return std::make_unique<sim::DutyCycledScheduleMac>(*duty);
                   }});
  specs.push_back({"slotted ALOHA p=0.05", [&](runner::CellContext&) {
                     return std::make_unique<sim::SlottedAlohaMac>(kN, 0.05);
                   }});
  specs.push_back({"uncoord sleep p=0.3", [&](runner::CellContext&) {
                     return std::make_unique<sim::UncoordinatedSleepMac>(kN, 0.3, 0.5);
                   }});
  specs.push_back({"S-MAC-like 25% active", [&](runner::CellContext&) {
                     return std::make_unique<sim::CommonActivePeriodMac>(kN, 20, 5, 0.2);
                   }});
  specs.push_back({"coloring TDMA (topo-aware)", [&grid](runner::CellContext&) {
                     return std::make_unique<sim::ColoringTdmaMac>(grid);
                   }});

  runner::Campaign campaign;
  for (const auto& spec : specs) {
    campaign.add(spec.name, [&grid, &spec](runner::CellContext& ctx) {
      auto routing = ctx.artifacts().routing(grid);
      auto mac = spec.make_mac(ctx);
      sim::ConvergecastTraffic traffic(kN, kSink, kRate);
      sim::SimConfig cfg;
      cfg.seed = 99;  // the experiment's original fixed seed, not ctx.seed()
      cfg.shared_routing = routing.get();
      sim::Simulator sim(grid, *mac, traffic, cfg);
      sim.run(kSlots);
      ctx.record(sim.stats());
    });
  }
  const runner::CampaignResult result = campaign.run();

  util::Table table({"mac", "delivered", "ratio", "lat p50", "lat p95", "awake frac",
                     "energy mJ", "mJ/delivery", "collisions"});
  table.set_precision(4);
  for (const auto& cell : result.cells) {
    const auto& st = cell.stats;
    table.add_row({cell.name, static_cast<std::int64_t>(st.delivered),
                   st.delivery_ratio(), static_cast<std::int64_t>(st.latency.percentile(50)),
                   static_cast<std::int64_t>(st.latency.percentile(95)), st.awake_fraction(),
                   st.total_energy_mj(energy), st.energy_per_delivery_mj(energy),
                   static_cast<std::int64_t>(st.collisions)});
    std::string key = cell.name;
    for (char& c : key) {
      if (c == ' ' || c == '(' || c == ')' || c == '=' || c == '%' || c == '-') c = '_';
    }
    report.metric(key + "_delivery_ratio", st.delivery_ratio());
    report.metric(key + "_latency_p95", st.latency.percentile(95));
    report.metric(key + "_mj_per_delivery", st.energy_per_delivery_mj(energy));
    report.metric(key + "_awake_fraction", st.awake_fraction());
  }
  std::cout << table.to_text();
  std::cout << "\nreading: TT duty cycling should cut energy/delivery several-fold vs the\n"
            << "non-sleeping schedule at a bounded latency cost; uncoordinated sleeping\n"
            << "loses packets to asleep receivers; coloring TDMA is the topology-aware\n"
            << "efficiency ceiling (but needs recoloring on every topology change).\n";
  report.metric("macs_compared", table.num_rows());
  report.write();
  return 0;
}
