// E3 -- Theorem 2: the closed-form average worst-case throughput.
//
// Three-way cross-check per cell: (a) the Theorem 2 formula, (b) the
// brute-force Definition 2 enumeration, (c) the slot simulator measuring
// actual deliveries on worst-case stars averaged over sampled (x, y, S)
// tuples. Also reports the wall-clock advantage of the formula over the
// enumeration.
#include <iostream>

#include "combinatorics/constructions.hpp"
#include "core/builders.hpp"
#include "core/throughput.hpp"
#include "net/graph.hpp"
#include "obs/report.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace ttdc;

namespace {

// Empirical average over sampled (x, y, S): deliveries per slot for x -> y
// on the star where y's neighborhood is {x} ∪ S, all saturated.
double simulated_average(const core::Schedule& s, std::size_t d, std::size_t samples,
                         util::Xoshiro256& rng) {
  const std::size_t n = s.num_nodes();
  double total = 0.0;
  for (std::size_t it = 0; it < samples; ++it) {
    const std::size_t x = static_cast<std::size_t>(rng.below(n));
    std::size_t y = static_cast<std::size_t>(rng.below(n - 1));
    if (y >= x) ++y;
    auto others = util::sample_k_of(n - 2, d - 1, rng);
    const std::size_t lo = std::min(x, y), hi = std::max(x, y);
    for (auto& v : others) {
      if (v >= lo) ++v;
      if (v >= hi) ++v;
    }
    net::Graph star(n);
    star.add_edge(y, x);
    std::vector<std::pair<std::size_t, std::size_t>> flows{{x, y}};
    for (std::size_t z : others) {
      star.add_edge(y, z);
      flows.emplace_back(z, y);
    }
    sim::DutyCycledScheduleMac mac(s);
    sim::Simulator* sim_ptr = nullptr;
    sim::SaturatedFlows traffic(std::move(flows),
                                [&sim_ptr](std::size_t v) { return sim_ptr->queue_size(v); });
    sim::Simulator simulator(std::move(star), mac, traffic, {.seed = it * 7 + 3});
    sim_ptr = &simulator;
    const std::uint64_t frames = 4;
    simulator.run(frames * s.frame_length());
    total += static_cast<double>(simulator.stats().delivered_by_origin[x]) /
             static_cast<double>(frames * s.frame_length());
  }
  return total / static_cast<double>(samples);
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 42;
  obs::BenchReport report("thm2_formula");
  report.param("seed", static_cast<std::int64_t>(kSeed));
  report.param("sim_samples", 60);
  util::print_banner("E3 / Theorem 2: closed-form vs enumeration vs simulation",
                     {{"seed", std::to_string(kSeed)}, {"sim_samples", "60"}});
  util::Table table({"schedule", "n", "D", "Thm2 formula", "brute force", "simulated (sampled)",
                     "exact match", "formula ms", "brute ms"});
  util::Xoshiro256 rng(kSeed);
  bool all_match = true;
  double total_formula_ms = 0.0, total_brute_ms = 0.0;

  struct Cell {
    core::Schedule schedule;
    std::size_t d;
    const char* name;
  };
  std::vector<Cell> cells;
  cells.push_back(
      {core::non_sleeping_from_family(comb::polynomial_family(3, 1, 9)), 2, "poly(3,1) n=9"});
  cells.push_back(
      {core::non_sleeping_from_family(comb::tdma_family(8)), 3, "tdma n=8"});
  cells.push_back({core::random_alpha_schedule(8, 12, 3, 4, false, rng), 2, "random (3,4)"});
  cells.push_back({core::random_alpha_schedule(9, 10, 2, 5, true, rng), 3, "uniform (2,5)"});
  cells.push_back({core::random_non_sleeping_schedule(10, 8, 4, rng), 2, "random NS t=4"});

  for (auto& cell : cells) {
    util::Timer t_formula;
    const auto formula = core::average_throughput_exact(cell.schedule, cell.d);
    const double formula_ms = t_formula.millis();
    util::Timer t_brute;
    const auto brute = core::average_throughput_bruteforce(cell.schedule, cell.d);
    const double brute_ms = t_brute.millis();
    const double simulated = simulated_average(cell.schedule, cell.d, 60, rng);
    const bool match = formula.equals(brute);
    all_match &= match;
    total_formula_ms += formula_ms;
    total_brute_ms += brute_ms;
    table.add_row({std::string(cell.name), static_cast<std::int64_t>(cell.schedule.num_nodes()),
                   static_cast<std::int64_t>(cell.d), static_cast<double>(formula.value()),
                   static_cast<double>(brute.value()), simulated,
                   std::string(match ? "yes" : "NO"), formula_ms, brute_ms});
  }
  std::cout << table.to_text();
  std::cout << "\nresult: Theorem 2 formula == Definition 2 enumeration on every cell: "
            << (all_match ? "CONFIRMED" : "FAILED")
            << "; simulated values are sampled estimates of the same quantity.\n";
  report.metric("cells", table.num_rows());
  report.metric("formula_ms_total", total_formula_ms);
  report.metric("brute_ms_total", total_brute_ms);
  report.metric("ok", all_match ? 1 : 0);
  report.write();
  return all_match ? 0 : 1;
}
