// E2 -- Theorem 1: Requirement 2 <=> Requirement 3.
//
// Cross-validates the two independent exact checkers on a randomized sweep
// of schedules (duty-cycled and non-sleeping, transparent and not) and
// reports agreement counts plus the observed split.
#include <iostream>

#include "core/builders.hpp"
#include "core/requirements.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"

using namespace ttdc;

int main() {
  constexpr std::uint64_t kSeed = 20070326;  // IPDPS'07 week
  obs::BenchReport report("req_equivalence");
  report.param("seed", static_cast<std::int64_t>(kSeed));
  report.param("schedules_per_cell", 40);
  util::print_banner("E2 / Theorem 1: Requirement 2 <=> Requirement 3",
                     {{"seed", std::to_string(kSeed)}, {"schedules_per_cell", "40"}});
  util::Table table(
      {"n", "D", "schedules", "transparent", "opaque", "agreements", "disagreements"});
  util::Xoshiro256 rng(kSeed);
  std::size_t total_disagreements = 0;
  for (const auto& [n, d] : std::vector<std::pair<std::size_t, std::size_t>>{
           {5, 2}, {6, 2}, {6, 3}, {7, 2}, {7, 3}, {8, 2}, {8, 4}, {9, 3}}) {
    std::size_t transparent = 0, opaque = 0, agreements = 0, disagreements = 0;
    constexpr int kTrials = 40;
    for (int trial = 0; trial < kTrials; ++trial) {
      const std::size_t frame = 4 + static_cast<std::size_t>(rng.below(20));
      const core::Schedule s =
          trial % 2 == 0
              ? core::random_alpha_schedule(n, frame, 1 + rng.below(n / 2),
                                            1 + rng.below(n / 2), false, rng)
              : core::random_non_sleeping_schedule(n, frame, 1 + rng.below(n - 1), rng);
      const bool req2 = !core::check_requirement2_exact(s, d).has_value();
      const bool req3 = !core::check_requirement3_exact(s, d).has_value();
      (req2 == req3 ? agreements : disagreements) += 1;
      (req3 ? transparent : opaque) += 1;
    }
    total_disagreements += disagreements;
    table.add_row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(d),
                   std::int64_t{kTrials}, static_cast<std::int64_t>(transparent),
                   static_cast<std::int64_t>(opaque), static_cast<std::int64_t>(agreements),
                   static_cast<std::int64_t>(disagreements)});
  }
  std::cout << table.to_text();
  std::cout << "\nresult: Theorem 1 equivalence "
            << (total_disagreements == 0 ? "CONFIRMED (0 disagreements)" : "FAILED") << "\n";
  report.metric("cells", table.num_rows());
  report.metric("disagreements", total_disagreements);
  report.metric("ok", total_disagreements == 0 ? 1 : 0);
  report.write();
  return total_disagreements == 0 ? 0 : 1;
}
