// Flight-recorder cost contract (DESIGN.md §11): the recorder compiled in
// but absent (SimConfig::recorder == nullptr) or disarmed
// (FlightRecorder::enable(false)) must be invisible on the hot path — that
// is re-gated where it matters, in bench_sim_hotpath's 3x scalar/batched
// gate, which now runs with the recorder code compiled in. This bench gates
// the ARMED cost: a recording run may be at most 10% slower than the same
// run without a recorder. Gated on the ratio of best rates across reps:
// scheduler noise on shared hardware only ever slows a rep down, so the
// fastest rep per mode is the least-perturbed estimate of the true rate
// and their ratio is stable where per-pair medians swing by 20%+ under
// load (the per-pair medians are still reported informationally).
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <iostream>
#include <vector>

#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "net/topology.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/report.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"
#include "util/timer.hpp"

namespace {

using namespace ttdc;

constexpr std::size_t kNodes = 200;
constexpr std::size_t kDegree = 4;
constexpr std::uint64_t kWarmup = 1000;
constexpr std::uint64_t kTimedSlots = 8'000;
constexpr int kPairs = 31;
constexpr double kMaxOverhead = 0.10;
// 4096 events keep the ring (56 B/event) inside L2: what this gates is the
// CPU cost of recording, and a multi-MB ring instead measures how loaded
// the memory system happens to be (the ring wraps either way, so the
// per-event work is identical to a capture-sized ring).
constexpr std::size_t kRingCapacity = 1 << 12;

enum class Mode { kOff, kDisarmed, kArmed };

double slot_rate_once(const net::Graph& g, const core::Schedule& duty, Mode mode) {
  sim::DutyCycledScheduleMac mac(duty);
  sim::BernoulliTraffic traffic(g.num_nodes(), 0.01);
  obs::FlightRecorder recorder(kRingCapacity);
  obs::FlightRecorder::enable(mode != Mode::kDisarmed);
  sim::SimConfig config{.seed = 7};
  if (mode != Mode::kOff) config.recorder = &recorder;
  sim::Simulator sim(g, mac, traffic, config);
  sim.run(kWarmup);
  util::Timer timer;
  sim.run(kTimedSlots);
  const double rate = static_cast<double>(kTimedSlots) / timer.seconds();
  obs::FlightRecorder::enable(true);  // restore the global default
  return rate;
}

double median(std::vector<double> v) {
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main() {
  obs::BenchReport report("obs_recorder");
  report.param("mac", "DutyCycledScheduleMac");
  report.param("traffic", "bernoulli_0.01");
  report.param("n", static_cast<std::int64_t>(kNodes));
  report.param("pairs", static_cast<std::int64_t>(kPairs));
  report.param("ring_capacity", static_cast<std::int64_t>(kRingCapacity));
  report.param("max_overhead", kMaxOverhead);

  util::Xoshiro256 rng(3);
  const net::Graph g = net::random_bounded_degree_graph(kNodes, kDegree, 2 * kNodes, rng);
  const core::Schedule duty = core::construct_duty_cycled(
      core::non_sleeping_from_family(comb::build_plan(comb::best_plan(kNodes, kDegree), kNodes)),
      kDegree, 4, kNodes / 3);

  slot_rate_once(g, duty, Mode::kOff);  // shared warmup rep, untimed
  std::vector<double> off_rates, disarmed_rates, armed_rates;
  std::vector<double> disarmed_overheads, armed_overheads;
  constexpr Mode kModes[3] = {Mode::kOff, Mode::kDisarmed, Mode::kArmed};
  for (int rep = 0; rep < kPairs; ++rep) {
    // Rotate the mode order so a periodic external load cannot phase-lock
    // onto one mode's position within the triple.
    double rates[3];
    for (int j = 0; j < 3; ++j) {
      const int m = (j + rep) % 3;
      rates[m] = slot_rate_once(g, duty, kModes[m]);
    }
    off_rates.push_back(rates[0]);
    disarmed_rates.push_back(rates[1]);
    armed_rates.push_back(rates[2]);
    disarmed_overheads.push_back(rates[0] / rates[1] - 1.0);
    armed_overheads.push_back(rates[0] / rates[2] - 1.0);
  }
  const double off = *std::max_element(off_rates.begin(), off_rates.end());
  const double disarmed = *std::max_element(disarmed_rates.begin(), disarmed_rates.end());
  const double armed = *std::max_element(armed_rates.begin(), armed_rates.end());
  const double disarmed_overhead = off / disarmed - 1.0;
  const double armed_overhead = off / armed - 1.0;

  std::cout << "flight recorder cost (n=" << kNodes << ", " << kTimedSlots
            << " timed slots, best of " << kPairs << " reps per mode)\n"
            << "  no recorder:        " << off << " slots/s\n"
            << "  attached, disarmed: " << disarmed << " slots/s (overhead "
            << disarmed_overhead * 100 << "%)\n"
            << "  attached, armed:    " << armed << " slots/s (overhead "
            << armed_overhead * 100 << "%)\n";

  report.metric("off_slots_per_sec", off);
  report.metric("disarmed_slots_per_sec", disarmed);
  report.metric("armed_slots_per_sec", armed);
  report.metric("disarmed_overhead", disarmed_overhead);
  report.metric("armed_overhead", armed_overhead);
  report.metric("disarmed_overhead_pair_median", median(disarmed_overheads));
  report.metric("armed_overhead_pair_median", median(armed_overheads));

  // The disarmed configuration truly costs ~0 (one relaxed load + branch),
  // so |disarmed_overhead| is a direct read of this run's measurement
  // error. When it exceeds half the gate budget the environment cannot
  // resolve a 10% contract and the hard gate would only flake — report
  // and skip, same policy as bench_campaign's <4-core speedup skip.
  const bool measurable = std::abs(disarmed_overhead) <= kMaxOverhead / 2;
  const bool ok = armed_overhead <= kMaxOverhead;
  if (!measurable) {
    std::cout << "\narmed overhead " << armed_overhead * 100 << "% (gate <= "
              << kMaxOverhead * 100 << "%): SKIPPED (noise canary "
              << disarmed_overhead * 100 << "% exceeds " << kMaxOverhead * 50
              << "%; environment too loaded to resolve the gate)\n";
  } else {
    std::cout << "\narmed overhead " << armed_overhead * 100 << "% (gate <= "
              << kMaxOverhead * 100 << "%): " << (ok ? "CONFIRMED" : "FAILED") << "\n";
  }
  report.metric("gate_measurable", measurable ? 1 : 0);
  report.metric("ok", (!measurable || ok) ? 1 : 0);
  report.write();
  return (!measurable || ok) ? 0 : 1;
}
