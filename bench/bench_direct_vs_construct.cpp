// E20 -- the paper's approach vs the direct alternative (§2/§6 discussion
// of Dukes-Colbourn-Syrotiuk FAWN'06): convert an existing non-sleeping
// schedule with Construct(), or build the (αT, αR)-schedule directly from
// the Requirement-3 covering problem.
//
// Compares frame length (latency), construction wall-clock, and average
// worst-case throughput on a small-n grid (direct covering enumerates all
// n·C(n-1,D) neighborhoods, which is exactly why the paper's conversion --
// leaning on algebraic cover-free families -- is the scalable route; the
// timing column makes that argument quantitative).
#include <iostream>

#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "core/direct.hpp"
#include "core/requirements.hpp"
#include "core/throughput.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace ttdc;

int main() {
  obs::BenchReport report("direct_vs_construct");
  util::print_banner("E20 / Construct() conversion vs direct greedy covering", {});
  double total_ms_convert = 0.0, total_ms_direct = 0.0;
  util::Table table({"n", "D", "aT", "aR", "L convert", "L direct", "thr convert",
                     "thr direct", "ms convert", "ms direct", "both valid"});
  table.set_precision(5);
  bool ok = true;
  struct Cell {
    std::size_t n, d, at, ar;
  };
  for (const Cell& c : {Cell{8, 2, 2, 3}, Cell{10, 2, 3, 4}, Cell{12, 2, 3, 4},
                        Cell{14, 2, 4, 5}, Cell{16, 2, 4, 6}, Cell{12, 3, 3, 4},
                        Cell{14, 3, 3, 6}, Cell{16, 3, 4, 6}, Cell{18, 2, 4, 6},
                        Cell{20, 2, 5, 7}}) {
    util::Timer t_convert;
    const core::Schedule converted = core::construct_duty_cycled(
        core::non_sleeping_from_family(comb::build_plan(comb::best_plan(c.n, c.d), c.n)),
        c.d, c.at, c.ar);
    const double ms_convert = t_convert.millis();

    util::Xoshiro256 rng(c.n * 100 + c.d);
    util::Timer t_direct;
    const core::Schedule direct =
        core::greedy_direct_schedule(c.n, c.d, c.at, c.ar, rng);
    const double ms_direct = t_direct.millis();

    const bool valid = !core::check_requirement3_exact(converted, c.d) &&
                       !core::check_requirement3_exact(direct, c.d);
    ok &= valid;
    total_ms_convert += ms_convert;
    total_ms_direct += ms_direct;
    table.add_row({static_cast<std::int64_t>(c.n), static_cast<std::int64_t>(c.d),
                   static_cast<std::int64_t>(c.at), static_cast<std::int64_t>(c.ar),
                   static_cast<std::int64_t>(converted.frame_length()),
                   static_cast<std::int64_t>(direct.frame_length()),
                   static_cast<double>(core::average_throughput(converted, c.d)),
                   static_cast<double>(core::average_throughput(direct, c.d)), ms_convert,
                   ms_direct, std::string(valid ? "yes" : "NO")});
  }
  std::cout << table.to_text();
  std::cout << "\nreading: both routes yield valid topology-transparent (aT,aR)-schedules;\n"
            << "the conversion's cost is essentially the algebra (microseconds) while the\n"
            << "direct covering pays for enumerating all n*C(n-1,D) neighborhoods -- the\n"
            << "scalability argument for the paper's two-step design. Frame lengths show\n"
            << "which route buys shorter frames at each size.\n"
            << "result: " << (ok ? "CONFIRMED" : "FAILED") << "\n";
  report.metric("cells", table.num_rows());
  report.metric("convert_ms_total", total_ms_convert);
  report.metric("direct_ms_total", total_ms_direct);
  report.metric("ok", ok ? 1 : 0);
  report.write();
  return ok ? 0 : 1;
}
