// E15 -- microbenchmarks of the machinery (google-benchmark): requirement
// checking, Construct(), the Theorem 2 evaluator, family construction, and
// raw simulator slot rate. After the suites, a direct micro-measurement
// checks that installing a bounded ring-buffer trace sink costs < 5% of the
// simulator's slot rate (the observability layer's hot-path budget).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <vector>

#include "combinatorics/constructions.hpp"
#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "core/requirements.hpp"
#include "core/throughput.hpp"
#include "net/topology.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "runner/runner.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"
#include "util/timer.hpp"

using namespace ttdc;

namespace {

core::Schedule poly_schedule(std::uint32_t q, std::uint32_t k, std::size_t n) {
  return core::non_sleeping_from_family(comb::polynomial_family(q, k, n));
}

void BM_PolynomialFamilyBuild(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(q) * q;
  for (auto _ : state) {
    benchmark::DoNotOptimize(comb::polynomial_family(q, 1, n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PolynomialFamilyBuild)->Arg(5)->Arg(9)->Arg(13)->Arg(25);

void BM_Requirement3Exact(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  const core::Schedule s = poly_schedule(q, 1, static_cast<std::size_t>(q) * q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::check_requirement3_exact(s, d));
  }
}
BENCHMARK(BM_Requirement3Exact)
    ->Args({5, 2})
    ->Args({5, 3})
    ->Args({7, 2})
    ->Args({7, 3})
    ->Args({9, 2});

void BM_Requirement3Sampled(benchmark::State& state) {
  const core::Schedule s = poly_schedule(13, 2, 169);
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::check_requirement3_sampled(s, 5, 1000, rng));
  }
}
BENCHMARK(BM_Requirement3Sampled);

void BM_ConstructDutyCycled(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(q) * q;
  const core::Schedule base = poly_schedule(q, 1, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::construct_duty_cycled(base, 3, 4, 8));
  }
}
BENCHMARK(BM_ConstructDutyCycled)->Arg(5)->Arg(9)->Arg(13);

void BM_Theorem2Evaluator(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  const core::Schedule s = poly_schedule(q, 1, static_cast<std::size_t>(q) * q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::average_throughput(s, 3));
  }
}
BENCHMARK(BM_Theorem2Evaluator)->Arg(5)->Arg(13)->Arg(25);

void BM_MinGuaranteedGreedy(benchmark::State& state) {
  const core::Schedule s = poly_schedule(9, 1, 81);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::min_guaranteed_slots_greedy(s, 3));
  }
}
BENCHMARK(BM_MinGuaranteedGreedy);

void BM_SimulatorSlotRate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(3);
  const net::Graph g = net::random_bounded_degree_graph(n, 4, 2 * n, rng);
  const core::Schedule duty = core::construct_duty_cycled(
      core::non_sleeping_from_family(comb::build_plan(comb::best_plan(n, 4), n)), 4, 4,
      n / 3);
  sim::DutyCycledScheduleMac mac(duty);
  sim::BernoulliTraffic traffic(n, 0.01);
  sim::Simulator sim(g, mac, traffic, {.seed = 7});
  for (auto _ : state) {
    sim.run(1000);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SimulatorSlotRate)->Arg(25)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_SteinerBuild(benchmark::State& state) {
  const auto v = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(comb::steiner_triple_family(v));
  }
}
BENCHMARK(BM_SteinerBuild)->Arg(15)->Arg(63)->Arg(255);

// One timed run of the BM_SimulatorSlotRate(400) configuration, optionally
// with a RingBufferTraceSink receiving every trace event.
double slot_rate_once(const net::Graph& g, const core::Schedule& duty,
                      obs::RingBufferTraceSink* ring) {
  constexpr std::uint64_t kWarmup = 500, kTimed = 5000;
  sim::DutyCycledScheduleMac mac(duty);
  sim::BernoulliTraffic traffic(400, 0.01);
  sim::SimConfig config;
  config.seed = 7;
  if (ring != nullptr) config.trace = ring->fn();
  sim::Simulator sim(g, mac, traffic, config);
  sim.run(kWarmup);
  util::Timer timer;
  sim.run(kTimed);
  return static_cast<double>(kTimed) / timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReport report("scalability");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Ring-sink overhead budget: the in-memory trace sink must cost < 5%
  // of the n=400 simulator slot rate.
  constexpr std::size_t kN = 400;
  util::Xoshiro256 rng(3);
  const net::Graph g = net::random_bounded_degree_graph(kN, 4, 2 * kN, rng);
  const core::Schedule duty = core::construct_duty_cycled(
      core::non_sleeping_from_family(comb::build_plan(comb::best_plan(kN, 4), kN)), 4, 4,
      kN / 3);
  // Back-to-back untraced/traced pairs, scored by the MEDIAN of the
  // per-pair rate ratios: pairing cancels clock-frequency drift (both
  // members see the same CPU state) and the median discards load spikes
  // that best-of-N comparisons on this kind of shared hardware do not.
  //
  // The pairs run as runner campaign cells. A pair stays internally
  // sequential (untraced then traced on the same core, which is what makes
  // the ratio drift-free), and each cell owns a private ring sink so
  // concurrent cells never share a trace buffer; seen() counts are summed
  // afterwards. The median is robust to the extra cross-cell load a
  // multi-worker run adds, and both members of a pair see the same load.
  constexpr int kPairs = 15;
  struct PairResult {
    double untraced = 0.0, traced = 0.0, ratio = 0.0;
    std::uint64_t events_seen = 0;
  };
  std::vector<PairResult> pairs(kPairs);
  runner::Campaign campaign;
  for (int rep = 0; rep < kPairs; ++rep) {
    auto& out = pairs[static_cast<std::size_t>(rep)];
    std::string name = "pair";
    name += std::to_string(rep);
    campaign.add(std::move(name), [&g, &duty, &out](runner::CellContext&) {
      obs::RingBufferTraceSink ring(4096);
      slot_rate_once(g, duty, nullptr);  // per-cell warmup rep, untimed
      out.untraced = slot_rate_once(g, duty, nullptr);
      out.traced = slot_rate_once(g, duty, &ring);
      out.ratio = out.traced / out.untraced;
      out.events_seen = ring.seen();
    });
  }
  (void)campaign.run();
  std::vector<double> ratios;
  std::vector<double> untraced_rates, traced_rates;
  std::uint64_t events_seen = 0;
  for (const auto& p : pairs) {
    untraced_rates.push_back(p.untraced);
    traced_rates.push_back(p.traced);
    ratios.push_back(p.ratio);
    events_seen += p.events_seen;
  }
  std::nth_element(ratios.begin(), ratios.begin() + kPairs / 2, ratios.end());
  const double median_ratio = ratios[kPairs / 2];
  const double untraced = *std::max_element(untraced_rates.begin(), untraced_rates.end());
  const double traced = *std::max_element(traced_rates.begin(), traced_rates.end());
  const double overhead_pct = 100.0 * (1.0 - median_ratio);
  const bool ok = overhead_pct < 5.0;
  std::cout << "\nring-sink overhead @ n=" << kN << ": untraced " << untraced
            << " slots/s, ring-traced " << traced << " slots/s, overhead "
            << overhead_pct << "% (budget 5%): " << (ok ? "CONFIRMED" : "FAILED") << "\n";
  report.param("n", kN);
  report.param("ring_capacity", static_cast<std::int64_t>(4096));
  report.metric("untraced_slots_per_sec", untraced);
  report.metric("ring_traced_slots_per_sec", traced);
  report.metric("ring_sink_overhead_pct", overhead_pct);
  report.metric("ring_events_seen", events_seen);
  report.metric("ok", ok ? 1 : 0);
  report.write();
  return ok ? 0 : 1;
}
