// E15 -- microbenchmarks of the machinery (google-benchmark): requirement
// checking, Construct(), the Theorem 2 evaluator, family construction, and
// raw simulator slot rate.
#include <benchmark/benchmark.h>

#include "combinatorics/constructions.hpp"
#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "core/requirements.hpp"
#include "core/throughput.hpp"
#include "net/topology.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"

using namespace ttdc;

namespace {

core::Schedule poly_schedule(std::uint32_t q, std::uint32_t k, std::size_t n) {
  return core::non_sleeping_from_family(comb::polynomial_family(q, k, n));
}

void BM_PolynomialFamilyBuild(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(q) * q;
  for (auto _ : state) {
    benchmark::DoNotOptimize(comb::polynomial_family(q, 1, n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PolynomialFamilyBuild)->Arg(5)->Arg(9)->Arg(13)->Arg(25);

void BM_Requirement3Exact(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  const core::Schedule s = poly_schedule(q, 1, static_cast<std::size_t>(q) * q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::check_requirement3_exact(s, d));
  }
}
BENCHMARK(BM_Requirement3Exact)
    ->Args({5, 2})
    ->Args({5, 3})
    ->Args({7, 2})
    ->Args({7, 3})
    ->Args({9, 2});

void BM_Requirement3Sampled(benchmark::State& state) {
  const core::Schedule s = poly_schedule(13, 2, 169);
  util::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::check_requirement3_sampled(s, 5, 1000, rng));
  }
}
BENCHMARK(BM_Requirement3Sampled);

void BM_ConstructDutyCycled(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(q) * q;
  const core::Schedule base = poly_schedule(q, 1, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::construct_duty_cycled(base, 3, 4, 8));
  }
}
BENCHMARK(BM_ConstructDutyCycled)->Arg(5)->Arg(9)->Arg(13);

void BM_Theorem2Evaluator(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  const core::Schedule s = poly_schedule(q, 1, static_cast<std::size_t>(q) * q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::average_throughput(s, 3));
  }
}
BENCHMARK(BM_Theorem2Evaluator)->Arg(5)->Arg(13)->Arg(25);

void BM_MinGuaranteedGreedy(benchmark::State& state) {
  const core::Schedule s = poly_schedule(9, 1, 81);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::min_guaranteed_slots_greedy(s, 3));
  }
}
BENCHMARK(BM_MinGuaranteedGreedy);

void BM_SimulatorSlotRate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(3);
  const net::Graph g = net::random_bounded_degree_graph(n, 4, 2 * n, rng);
  const core::Schedule duty = core::construct_duty_cycled(
      core::non_sleeping_from_family(comb::build_plan(comb::best_plan(n, 4), n)), 4, 4,
      n / 3);
  sim::DutyCycledScheduleMac mac(duty);
  sim::BernoulliTraffic traffic(n, 0.01);
  sim::Simulator sim(g, mac, traffic, {.seed = 7});
  for (auto _ : state) {
    sim.run(1000);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SimulatorSlotRate)->Arg(25)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_SteinerBuild(benchmark::State& state) {
  const auto v = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(comb::steiner_triple_family(v));
  }
}
BENCHMARK(BM_SteinerBuild)->Arg(15)->Arg(63)->Arg(255);

}  // namespace

BENCHMARK_MAIN();
