// E6 -- Figure 2 + Theorem 6: Construct() over the full CFF zoo x (αT, αR)
// grid; every output re-verified against Requirement 3 exactly.
#include <iostream>

#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "core/requirements.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace ttdc;

int main() {
  obs::BenchReport report("construct_correctness");
  util::print_banner("E6 / Theorem 6: Construct() correctness over the CFF zoo", {});
  util::Table table({"plan", "n", "D", "aT", "aR", "L(base)", "L(constructed)", "duty cycle",
                     "caps hold", "Req3 holds", "verify ms"});
  bool ok = true;
  struct Cell {
    std::size_t n, d, at, ar;
  };
  const std::vector<Cell> cells = {
      {9, 2, 2, 3},  {16, 3, 3, 6},  {25, 2, 4, 8},   {25, 4, 3, 8},
      {36, 3, 5, 9}, {49, 2, 6, 12}, {20, 5, 2, 10},  {64, 3, 7, 16},
  };
  for (const auto& c : cells) {
    const auto plan = comb::best_plan(c.n, c.d);
    const core::Schedule base =
        core::non_sleeping_from_family(comb::build_plan(plan, c.n));
    for (const core::DivisionPolicy policy :
         {core::DivisionPolicy::kContiguous, core::DivisionPolicy::kBalanced}) {
      core::ConstructOptions opts;
      opts.division = policy;
      const core::Schedule out =
          core::construct_duty_cycled(base, c.d, c.at, c.ar, opts);
      const bool caps = out.is_alpha_schedule(c.at, c.ar);
      util::Timer timer;
      const bool req3 = !core::check_requirement3_exact(out, c.d).has_value();
      const double ms = timer.millis();
      ok &= caps && req3;
      table.add_row(
          {plan.to_string() +
               (policy == core::DivisionPolicy::kBalanced ? " [balanced]" : " [contig]"),
           static_cast<std::int64_t>(c.n), static_cast<std::int64_t>(c.d),
           static_cast<std::int64_t>(c.at), static_cast<std::int64_t>(c.ar),
           static_cast<std::int64_t>(base.frame_length()),
           static_cast<std::int64_t>(out.frame_length()), out.duty_cycle(),
           std::string(caps ? "yes" : "NO"), std::string(req3 ? "yes" : "NO"), ms});
    }
  }
  std::cout << table.to_text();
  std::cout << "\nresult: every constructed schedule is a topology-transparent "
            << "(aT,aR)-schedule (Theorem 6): " << (ok ? "CONFIRMED" : "FAILED") << "\n";
  report.metric("cells", table.num_rows());
  report.metric("ok", ok ? 1 : 0);
  report.write();
  return ok ? 0 : 1;
}
