// E16 -- the abstract's "bounding packet latency in the presence of
// collisions": analytic worst-case single-hop latency of schedules vs the
// maximum latency ever observed in worst-case-star simulation, plus the
// latency price of tightening the energy caps.
#include <iostream>
#include <limits>

#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "core/latency.hpp"
#include "net/graph.hpp"
#include "obs/report.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

using namespace ttdc;

namespace {

std::uint64_t simulated_max_latency(const core::Schedule& s, std::size_t d,
                                    std::uint64_t frames) {
  const std::size_t n = s.num_nodes();
  std::uint64_t worst = 0;
  // Sweep all receivers y with neighborhoods {x} ∪ S drawn as the first D
  // eligible ids (deterministic probe set; the exact bound still dominates).
  for (std::size_t y = 0; y < std::min<std::size_t>(n, 8); ++y) {
    net::Graph star(n);
    std::vector<std::pair<std::size_t, std::size_t>> flows;
    std::size_t added = 0;
    for (std::size_t v = 0; v < n && added < d; ++v) {
      if (v == y) continue;
      star.add_edge(y, v);
      flows.emplace_back(v, y);
      ++added;
    }
    sim::DutyCycledScheduleMac mac(s);
    sim::Simulator* probe = nullptr;
    sim::SaturatedFlows traffic(std::move(flows),
                                [&probe](std::size_t v) { return probe->queue_size(v); });
    sim::Simulator simulator(std::move(star), mac, traffic, {.seed = y + 1});
    probe = &simulator;
    simulator.run(frames * s.frame_length());
    worst = std::max(worst, simulator.stats().latency.max());
  }
  return worst;
}

}  // namespace

int main() {
  constexpr std::size_t kN = 25, kD = 3;
  obs::BenchReport report("latency_bound");
  report.param("n", kN);
  report.param("D", kD);
  util::print_banner("E16 / worst-case latency bounds",
                     {{"n", std::to_string(kN)}, {"D", std::to_string(kD)}});
  const auto plan = comb::best_plan(kN, kD);
  const core::Schedule base = core::non_sleeping_from_family(comb::build_plan(plan, kN));
  std::cout << "base: " << plan.to_string() << "\n\n";

  util::Table table({"schedule", "frame L", "analytic bound (slots)", "simulated max",
                     "within bound", "duty cycle"});
  bool ok = true;
  struct Cell {
    std::string name;
    core::Schedule schedule;
  };
  std::vector<Cell> cells;
  cells.push_back({"non-sleeping <T>", base});
  for (const auto& [at, ar] : std::vector<std::pair<std::size_t, std::size_t>>{
           {6, 12}, {4, 8}, {2, 4}, {1, 2}}) {
    cells.push_back({"duty (aT=" + std::to_string(at) + ",aR=" + std::to_string(ar) + ")",
                     core::construct_duty_cycled(base, kD, at, ar)});
  }
  for (const auto& cell : cells) {
    const std::size_t bound = core::worst_case_latency_exact(cell.schedule, kD);
    const std::uint64_t sim_max = simulated_max_latency(cell.schedule, kD, 30);
    const bool within =
        bound != std::numeric_limits<std::size_t>::max() && sim_max <= bound + 1;
    ok &= within;
    table.add_row({cell.name, static_cast<std::int64_t>(cell.schedule.frame_length()),
                   static_cast<std::int64_t>(bound), static_cast<std::int64_t>(sim_max),
                   std::string(within ? "yes" : "NO"), cell.schedule.duty_cycle()});
  }
  std::cout << table.to_text();
  std::cout << "\nresult: simulated worst-case latency never exceeds the analytic bound; "
            << "tightening (aT, aR) buys energy with a proportional latency price: "
            << (ok ? "CONFIRMED" : "FAILED") << "\n";
  report.metric("cells", table.num_rows());
  report.metric("ok", ok ? 1 : 0);
  report.write();
  return ok ? 0 : 1;
}
