// E13 -- the schedule-construction substrate: frame lengths and capacities
// of the cover-free-family zoo across (n, D), construction wall-clock, and
// verification cost. This is the table a deployer consults to pick a
// construction; it also shows where designs beat plain TDMA (n >> L).
#include <iostream>

#include "combinatorics/constructions.hpp"
#include "combinatorics/params.hpp"
#include "util/binomial.hpp"
#include "core/builders.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace ttdc;

int main() {
  obs::BenchReport report("cff_zoo");
  util::print_banner("E13 / cover-free family zoo", {});
  double total_build_ms = 0.0, total_verify_ms = 0.0;
  std::size_t cells = 0;
  bool all_clean = true;
  {
    util::Table table({"n", "D", "best plan", "frame L", "TDMA frame", "saving x",
                       "build ms", "verify (exact/greedy)", "cover-free"});
    table.set_precision(4);
    for (std::size_t n : {16u, 32u, 64u, 128u, 256u, 512u}) {
      for (std::size_t d : {2u, 3u, 4u, 6u}) {
        const auto plan = comb::best_plan(n, d);
        util::Timer build_timer;
        const auto family = comb::build_plan(plan, n);
        const double build_ms = build_timer.millis();
        // Exact verification up to a work budget (n * C(n-1, d) subset
        // folds), greedy beyond.
        const bool small =
            static_cast<double>(n) * util::binomial_ld(n - 1, d) < 3e7;
        util::Timer verify_timer;
        bool clean;
        if (small) {
          clean = !comb::find_cover_violation_exact(family, d).has_value();
        } else {
          clean = !comb::find_cover_violation_greedy(family, d).has_value();
        }
        const double verify_ms = verify_timer.millis();
        total_build_ms += build_ms;
        total_verify_ms += verify_ms;
        ++cells;
        all_clean &= clean;
        table.add_row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(d),
                       plan.to_string(), static_cast<std::int64_t>(plan.frame_length),
                       static_cast<std::int64_t>(n),
                       static_cast<double>(n) / static_cast<double>(plan.frame_length),
                       build_ms,
                       std::string(small ? "exact " + std::to_string(verify_ms) + "ms"
                                         : "greedy " + std::to_string(verify_ms) + "ms"),
                       std::string(clean ? "yes" : "NO")});
      }
    }
    std::cout << table.to_text() << '\n';
  }
  {
    std::cout << "-- construction comparison at fixed (n, D) --\n";
    util::Table table({"construction", "params", "capacity", "frame L", "min |T[i]|",
                       "max |T[i]|"});
    const std::size_t n = 81;
    struct Entry {
      comb::SetFamily family;
      std::string name;
    };
    std::vector<Entry> zoo;
    zoo.push_back({comb::polynomial_family(9, 2, n), "polynomial q=9 k=2 (D<=4)"});
    zoo.push_back({comb::polynomial_family(13, 3, n), "polynomial q=13 k=3 (D<=4)"});
    zoo.push_back({comb::affine_plane_family(9).truncated(n), "affine plane q=9 (D<=8)"});
    zoo.push_back(
        {comb::projective_plane_family(9).truncated(n), "projective plane q=9 (D<=9)"});
    zoo.push_back({comb::tdma_family(n), "tdma (any D)"});
    for (const auto& e : zoo) {
      const core::Schedule s = core::non_sleeping_from_family(e.family);
      table.add_row({e.name, std::string("n=") + std::to_string(n),
                     static_cast<std::int64_t>(e.family.num_members()),
                     static_cast<std::int64_t>(s.frame_length()),
                     static_cast<std::int64_t>(s.min_transmitters()),
                     static_cast<std::int64_t>(s.max_transmitters())});
    }
    std::cout << table.to_text();
  }
  std::cout << "\nreading: designs compress the frame (saving > 1x) exactly when n is large\n"
            << "relative to D^2; min |T[i]| matters for Theorem 8 optimality.\n";
  report.metric("cells", cells);
  report.metric("build_ms_total", total_build_ms);
  report.metric("verify_ms_total", total_verify_ms);
  report.metric("ok", all_clean ? 1 : 0);
  report.write();
  return 0;
}
