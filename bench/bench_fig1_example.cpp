// E1 -- Figure 1: on a specific topology, scheduling nodes to sleep can
// preserve throughput exactly.
//
// Regenerates the paper's Figure 1 claim with a machine-checked witness:
// a path network, the non-sleeping schedule <T>, and a duty-cycled <T, R'>
// whose guaranteed-success slot sets coincide on every link, then confirms
// the equality empirically in the slot simulator under saturated load.
#include <cstdio>
#include <iostream>

#include "core/builders.hpp"
#include "core/throughput.hpp"
#include "net/graph.hpp"
#include "obs/report.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

using namespace ttdc;

namespace {

// Runs `frames` frames of saturated single-link traffic x -> y on the
// example topology and returns x's deliveries.
std::uint64_t simulate_link(const core::Figure1Example& ex, const core::Schedule& schedule,
                            std::size_t x, std::size_t y, std::uint64_t frames) {
  net::Graph g(ex.num_nodes);
  for (const auto& [a, b] : ex.edges) g.add_edge(a, b);
  sim::DutyCycledScheduleMac mac(schedule);
  sim::Simulator* sim_ptr = nullptr;
  // All of y's neighbors saturate toward y -- the worst case of §5.
  std::vector<std::pair<std::size_t, std::size_t>> flows;
  g.neighbors(y).for_each([&](std::size_t v) { flows.emplace_back(v, y); });
  sim::SaturatedFlows traffic(std::move(flows),
                              [&sim_ptr](std::size_t v) { return sim_ptr->queue_size(v); });
  sim::Simulator simulator(std::move(g), mac, traffic, {.seed = 1234});
  sim_ptr = &simulator;
  simulator.run(frames * schedule.frame_length());
  return simulator.stats().delivered_by_origin[x];
}

}  // namespace

int main() {
  obs::BenchReport report("fig1_example");
  util::print_banner("E1 / Figure 1: sleeping can preserve throughput on a fixed topology",
                     {{"frames", "50"}});
  const core::Figure1Example ex = core::figure1_example();
  report.param("frames", 50);
  report.param("num_nodes", ex.num_nodes);

  std::cout << "topology: path ";
  for (std::size_t i = 0; i < ex.num_nodes; ++i) std::cout << (i ? " - " : "") << i;
  std::cout << "\nnon-sleeping duty cycle: " << ex.non_sleeping.duty_cycle()
            << "   duty-cycled duty cycle: " << ex.duty_cycled.duty_cycle() << "\n\n";

  util::Table table({"link", "guaranteed slots <T>", "guaranteed slots <T,R'>",
                     "sim deliveries/frame <T>", "sim deliveries/frame <T,R'>", "equal"});
  constexpr std::uint64_t kFrames = 50;
  bool all_equal = true;
  for (const auto& [a, b] : ex.edges) {
    for (const auto& [x, y] : {std::pair{a, b}, std::pair{b, a}}) {
      std::vector<std::size_t> s;
      for (const auto& [p, q] : ex.edges) {
        if (p == y && q != x) s.push_back(q);
        if (q == y && p != x) s.push_back(p);
      }
      const auto ns = ex.non_sleeping.guaranteed_slot_count(x, y, s);
      const auto dc = ex.duty_cycled.guaranteed_slot_count(x, y, s);
      const auto sim_ns = simulate_link(ex, ex.non_sleeping, x, y, kFrames);
      const auto sim_dc = simulate_link(ex, ex.duty_cycled, x, y, kFrames);
      const bool equal = ns == dc && sim_ns == sim_dc && sim_ns == kFrames * ns;
      all_equal &= equal;
      char link[32];
      std::snprintf(link, sizeof link, "%zu -> %zu", x, y);
      table.add_row({std::string(link), static_cast<std::int64_t>(ns),
                     static_cast<std::int64_t>(dc),
                     static_cast<double>(sim_ns) / static_cast<double>(kFrames),
                     static_cast<double>(sim_dc) / static_cast<double>(kFrames),
                     std::string(equal ? "yes" : "NO")});
    }
  }
  std::cout << table.to_text();
  std::cout << "\nresult: throughput preserved on every link while duty cycle fell from "
            << ex.non_sleeping.duty_cycle() << " to " << ex.duty_cycled.duty_cycle() << ": "
            << (all_equal ? "CONFIRMED" : "FAILED") << "\n";
  report.metric("links_checked", table.num_rows());
  report.metric("duty_cycle_non_sleeping", ex.non_sleeping.duty_cycle());
  report.metric("duty_cycle_duty_cycled", ex.duty_cycled.duty_cycle());
  report.metric("ok", all_equal ? 1 : 0);
  report.write();
  return all_equal ? 0 : 1;
}
