// E14 -- topology transparency under churn (§1/§3).
//
// A mobile unit-disk network changes topology every epoch. The TT
// duty-cycled schedule is computed ONCE and never touched; the coloring
// TDMA must recolor on every change. Reports per-epoch delivery counts for
// the TT schedule (must stay positive through every epoch) and the
// cumulative reconfiguration count of the topology-aware baseline, plus
// what happens to the stale-coloring variant (collisions appear).
#include <iostream>

#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "net/topology.hpp"
#include "obs/report.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

using namespace ttdc;

namespace {

// A coloring TDMA that ignores topology changes: models the window in which
// a topology-aware schedule is stale before re-dissemination completes.
class StaleColoringMac final : public sim::MacProtocol {
 public:
  explicit StaleColoringMac(const net::Graph& g) : inner_(g) {}
  void begin_slot(std::uint64_t slot, util::Xoshiro256& rng) override {
    inner_.begin_slot(slot, rng);
  }
  bool can_receive(std::size_t v) const override { return inner_.can_receive(v); }
  bool wants_transmit(std::size_t v, std::size_t t) const override {
    return inner_.wants_transmit(v, t);
  }
  sim::RadioState idle_state(std::size_t v) const override { return inner_.idle_state(v); }
  bool on_topology_change(const net::Graph&) override { return false; }  // stays stale

 private:
  sim::ColoringTdmaMac inner_;
};

}  // namespace

int main() {
  constexpr std::size_t kN = 30, kD = 3;
  constexpr int kEpochs = 8;
  constexpr std::uint64_t kSlotsPerEpoch = 5000;
  obs::BenchReport report("mobility");
  report.param("n", kN);
  report.param("D", kD);
  report.param("epochs", kEpochs);
  report.param("slots_per_epoch", static_cast<std::int64_t>(kSlotsPerEpoch));
  util::print_banner("E14 / topology transparency under mobility churn",
                     {{"n", std::to_string(kN)},
                      {"D", std::to_string(kD)},
                      {"epochs", std::to_string(kEpochs)},
                      {"slots_per_epoch", std::to_string(kSlotsPerEpoch)}});

  const core::Schedule duty = core::construct_duty_cycled(
      core::non_sleeping_from_family(comb::build_plan(comb::best_plan(kN, kD), kN)), kD, 4,
      10);
  std::cout << "TT schedule: L=" << duty.frame_length() << " duty=" << duty.duty_cycle()
            << " (computed once, never updated)\n\n";

  net::MobilityModel mobility(kN, 0.35, kD, 0.12, 4242);
  net::Graph g = mobility.step();

  sim::DutyCycledScheduleMac tt_mac(duty);
  sim::BernoulliTraffic tt_traffic(kN, 0.008);
  sim::Simulator tt(g, tt_mac, tt_traffic, {.seed = 1});

  sim::ColoringTdmaMac fresh_mac(g);
  sim::BernoulliTraffic fresh_traffic(kN, 0.008);
  sim::Simulator fresh(g, fresh_mac, fresh_traffic, {.seed = 1});

  StaleColoringMac stale_mac(g);
  sim::BernoulliTraffic stale_traffic(kN, 0.008);
  sim::Simulator stale(g, stale_mac, stale_traffic, {.seed = 1});

  util::Table table({"epoch", "TT delivered", "TT collisions", "recolored TDMA delivered",
                     "stale TDMA delivered", "stale TDMA collisions"});
  std::uint64_t tt_prev = 0, fresh_prev = 0, stale_prev = 0, stale_coll_prev = 0,
                tt_coll_prev = 0;
  bool tt_alive_every_epoch = true;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    tt.run(kSlotsPerEpoch);
    fresh.run(kSlotsPerEpoch);
    stale.run(kSlotsPerEpoch);
    const std::uint64_t tt_now = tt.stats().delivered;
    tt_alive_every_epoch &= tt_now > tt_prev;
    table.add_row({static_cast<std::int64_t>(epoch),
                   static_cast<std::int64_t>(tt_now - tt_prev),
                   static_cast<std::int64_t>(tt.stats().collisions - tt_coll_prev),
                   static_cast<std::int64_t>(fresh.stats().delivered - fresh_prev),
                   static_cast<std::int64_t>(stale.stats().delivered - stale_prev),
                   static_cast<std::int64_t>(stale.stats().collisions - stale_coll_prev)});
    tt_prev = tt_now;
    tt_coll_prev = tt.stats().collisions;
    fresh_prev = fresh.stats().delivered;
    stale_prev = stale.stats().delivered;
    stale_coll_prev = stale.stats().collisions;
    const net::Graph next = mobility.step();
    tt.set_graph(next);
    fresh.set_graph(next);
    stale.set_graph(next);
  }
  std::cout << table.to_text();
  std::cout << "\nTT schedule reconfigurations: 0; coloring TDMA recolorings: "
            << fresh_mac.recolor_count() << "\n";
  std::cout << "result: fixed TT schedule delivered in every epoch with zero "
            << "reconfiguration: " << (tt_alive_every_epoch ? "CONFIRMED" : "FAILED") << "\n";
  report.metric("tt_delivered", tt.stats().delivered);
  report.metric("tt_collisions", tt.stats().collisions);
  report.metric("recolored_delivered", fresh.stats().delivered);
  report.metric("stale_delivered", stale.stats().delivered);
  report.metric("recolorings", fresh_mac.recolor_count());
  report.metric("ok", tt_alive_every_epoch ? 1 : 0);
  report.write();
  return tt_alive_every_epoch ? 0 : 1;
}
