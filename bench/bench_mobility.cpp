// E14 -- topology transparency under churn (§1/§3).
//
// A mobile unit-disk network changes topology every epoch. The TT
// duty-cycled schedule is computed ONCE and never touched; the coloring
// TDMA must recolor on every change. Reports per-epoch delivery counts for
// the TT schedule (must stay positive through every epoch) and the
// cumulative reconfiguration count of the topology-aware baseline, plus
// what happens to the stale-coloring variant (collisions appear).
//
// Runs as a runner campaign: one cell per MAC variant. Each cell replays
// its own MobilityModel stream from the same fixed seed (identical graph
// sequence in all three cells) because set_graph() must drive each
// simulator's private routing -- a shared routing table would go stale on
// the first epoch. The TT duty schedule is built once in the campaign
// ArtifactStore; per-epoch deltas are captured per cell and the table is
// assembled in cell-index order after the run.
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "net/topology.hpp"
#include "obs/report.hpp"
#include "runner/runner.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

using namespace ttdc;

namespace {

// A coloring TDMA that ignores topology changes: models the window in which
// a topology-aware schedule is stale before re-dissemination completes.
class StaleColoringMac final : public sim::MacProtocol {
 public:
  explicit StaleColoringMac(const net::Graph& g) : inner_(g) {}
  void begin_slot(std::uint64_t slot, util::Xoshiro256& rng) override {
    inner_.begin_slot(slot, rng);
  }
  bool can_receive(std::size_t v) const override { return inner_.can_receive(v); }
  bool wants_transmit(std::size_t v, std::size_t t) const override {
    return inner_.wants_transmit(v, t);
  }
  sim::RadioState idle_state(std::size_t v) const override { return inner_.idle_state(v); }
  bool on_topology_change(const net::Graph&) override { return false; }  // stays stale

 private:
  sim::ColoringTdmaMac inner_;
};

}  // namespace

int main() {
  constexpr std::size_t kN = 30, kD = 3;
  constexpr int kEpochs = 8;
  constexpr std::uint64_t kSlotsPerEpoch = 5000;
  obs::BenchReport report("mobility");
  report.param("n", kN);
  report.param("D", kD);
  report.param("epochs", kEpochs);
  report.param("slots_per_epoch", static_cast<std::int64_t>(kSlotsPerEpoch));
  util::print_banner("E14 / topology transparency under mobility churn",
                     {{"n", std::to_string(kN)},
                      {"D", std::to_string(kD)},
                      {"epochs", std::to_string(kEpochs)},
                      {"slots_per_epoch", std::to_string(kSlotsPerEpoch)}});

  const auto duty_schedule = [](runner::ArtifactStore& store) {
    return store.schedule("duty:best_plan", [] {
      return core::construct_duty_cycled(
          core::non_sleeping_from_family(comb::build_plan(comb::best_plan(kN, kD), kN)),
          kD, 4, 10);
    });
  };

  struct EpochSeries {
    std::vector<std::uint64_t> delivered;   // per-epoch delivery delta
    std::vector<std::uint64_t> collisions;  // per-epoch collision delta
  };
  std::vector<EpochSeries> series(3);
  std::size_t recolorings = 0;

  // Each cell owns its MAC for the whole mobility run; the factory may also
  // report end-of-run MAC state (the recoloring counter).
  using MacFactory = std::function<std::unique_ptr<sim::MacProtocol>(
      runner::CellContext&, const net::Graph&)>;
  const auto mobility_cell = [&series](std::size_t index, MacFactory make_mac,
                                       std::function<void(sim::MacProtocol&)> on_done) {
    return [index, make_mac = std::move(make_mac),
            on_done = std::move(on_done), &series](runner::CellContext& ctx) {
      // Same seed in every cell: all three replay the identical graph
      // sequence, exactly as the serial version stepped one shared model.
      net::MobilityModel mobility(kN, 0.35, kD, 0.12, 4242);
      net::Graph g = mobility.step();
      auto mac = make_mac(ctx, g);
      sim::BernoulliTraffic traffic(kN, 0.008);
      sim::Simulator sim(g, *mac, traffic, {.seed = 1});
      auto& out = series[index];
      std::uint64_t delivered_prev = 0, collisions_prev = 0;
      for (int epoch = 0; epoch < kEpochs; ++epoch) {
        sim.run(kSlotsPerEpoch);
        out.delivered.push_back(sim.stats().delivered - delivered_prev);
        out.collisions.push_back(sim.stats().collisions - collisions_prev);
        delivered_prev = sim.stats().delivered;
        collisions_prev = sim.stats().collisions;
        sim.set_graph(mobility.step());
      }
      ctx.record(sim.stats());
      if (on_done) on_done(*mac);
    };
  };

  runner::Campaign campaign;
  campaign.add("TT duty-cycled",
               mobility_cell(
                   0,
                   [&duty_schedule](runner::CellContext& ctx, const net::Graph&) {
                     return std::make_unique<sim::DutyCycledScheduleMac>(
                         *duty_schedule(ctx.artifacts()));
                   },
                   nullptr));
  campaign.add("recolored TDMA",
               mobility_cell(
                   1,
                   [](runner::CellContext&, const net::Graph& g) {
                     return std::make_unique<sim::ColoringTdmaMac>(g);
                   },
                   [&recolorings](sim::MacProtocol& mac) {
                     recolorings = static_cast<sim::ColoringTdmaMac&>(mac).recolor_count();
                   }));
  campaign.add("stale TDMA",
               mobility_cell(
                   2,
                   [](runner::CellContext&, const net::Graph& g) {
                     return std::make_unique<StaleColoringMac>(g);
                   },
                   nullptr));
  const runner::CampaignResult result = campaign.run();

  const auto duty = duty_schedule(campaign.artifacts());  // cache hit: already built
  std::cout << "TT schedule: L=" << duty->frame_length() << " duty=" << duty->duty_cycle()
            << " (computed once, never updated)\n\n";

  util::Table table({"epoch", "TT delivered", "TT collisions", "recolored TDMA delivered",
                     "stale TDMA delivered", "stale TDMA collisions"});
  bool tt_alive_every_epoch = true;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    const auto e = static_cast<std::size_t>(epoch);
    tt_alive_every_epoch &= series[0].delivered[e] > 0;
    table.add_row({static_cast<std::int64_t>(epoch),
                   static_cast<std::int64_t>(series[0].delivered[e]),
                   static_cast<std::int64_t>(series[0].collisions[e]),
                   static_cast<std::int64_t>(series[1].delivered[e]),
                   static_cast<std::int64_t>(series[2].delivered[e]),
                   static_cast<std::int64_t>(series[2].collisions[e])});
  }
  std::cout << table.to_text();
  std::cout << "\nTT schedule reconfigurations: 0; coloring TDMA recolorings: " << recolorings
            << "\n";
  std::cout << "result: fixed TT schedule delivered in every epoch with zero "
            << "reconfiguration: " << (tt_alive_every_epoch ? "CONFIRMED" : "FAILED") << "\n";
  report.metric("tt_delivered", result.cells[0].stats.delivered);
  report.metric("tt_collisions", result.cells[0].stats.collisions);
  report.metric("recolored_delivered", result.cells[1].stats.delivered);
  report.metric("stale_delivered", result.cells[2].stats.delivered);
  report.metric("recolorings", recolorings);
  report.metric("ok", tt_alive_every_epoch ? 1 : 0);
  report.write();
  return tt_alive_every_epoch ? 0 : 1;
}
