// E19 -- the deployment trade-off surface: sweeping (αT, αR) through the
// Theorem 4/7/8 closed forms and printing the Pareto frontier a deployer
// would actually choose from (the design-choice ablation DESIGN.md calls
// out: energy vs throughput vs latency are bought with the two caps).
//
// The grid is evaluated as a runner campaign: one cell per αT row, every
// cell reading the same shared (n, D) ThroughputTables memo from the
// campaign's ArtifactStore. Cells write into their own row slot and rows
// concatenate in index order, so the point list is bit-identical to the
// serial enumerate_tradeoffs() sweep at any worker count.
#include <iostream>
#include <vector>

#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "core/throughput.hpp"
#include "core/tradeoff.hpp"
#include "obs/report.hpp"
#include "runner/runner.hpp"
#include "util/table.hpp"

using namespace ttdc;

int main() {
  constexpr std::size_t kN = 49, kD = 3, kMaxAlphaT = 12, kMaxAlphaR = 24;
  obs::BenchReport report("tradeoff");
  report.param("n", kN);
  report.param("D", kD);
  util::print_banner("E19 / (aT, aR) trade-off surface and Pareto front",
                     {{"n", std::to_string(kN)}, {"D", std::to_string(kD)}});
  const auto plan = comb::best_plan(kN, kD);
  const core::Schedule base = core::non_sleeping_from_family(comb::build_plan(plan, kN));
  std::cout << "base: " << plan.to_string() << " (M_in=" << base.min_transmitters()
            << ", M_ax=" << base.max_transmitters() << ")\n\n";

  runner::Campaign campaign;
  std::vector<std::vector<core::TradeoffPoint>> grid_rows(kMaxAlphaT);
  for (std::size_t at = 1; at <= kMaxAlphaT; ++at) {
    auto& row = grid_rows[at - 1];
    campaign.add("alpha_t=" + std::to_string(at), [&base, &row, at](runner::CellContext& ctx) {
      const auto tables = ctx.artifacts().throughput(kN, kD);
      for (std::size_t ar = 1; ar <= kMaxAlphaR && at + ar <= kN; ++ar) {
        row.push_back(core::evaluate_tradeoff(base, *tables, at, ar));
      }
      ctx.metric("points", static_cast<double>(row.size()));
    });
  }
  (void)campaign.run();
  std::vector<core::TradeoffPoint> points;
  for (const auto& row : grid_rows) points.insert(points.end(), row.begin(), row.end());
  const auto front = core::pareto_front(points);
  std::cout << points.size() << " grid points, " << front.size() << " on the Pareto front\n\n";

  util::Table table({"aT", "aR", "aT*", "duty cycle", "frame L", "Thm4 thr bound",
                     "Thm8 ratio >=", "latency bound"});
  table.set_precision(5);
  for (const auto& p : front) {
    table.add_row({static_cast<std::int64_t>(p.alpha_t), static_cast<std::int64_t>(p.alpha_r),
                   static_cast<std::int64_t>(p.alpha_t_star), p.duty_cycle,
                   static_cast<std::int64_t>(p.frame_length), p.avg_throughput_bound,
                   p.ratio_lower_bound, static_cast<std::int64_t>(p.latency_bound)});
  }
  std::cout << table.to_text();

  // Closed forms vs an actually-built schedule, spot-checked on 3 points.
  bool ok = true;
  std::size_t checked = 0;
  for (std::size_t i = 0; i < front.size() && checked < 3; i += (front.size() + 2) / 3, ++checked) {
    const auto& p = front[i];
    const core::Schedule built = core::construct_duty_cycled(base, kD, p.alpha_t, p.alpha_r);
    ok &= built.frame_length() == p.frame_length;
    ok &= std::abs(built.duty_cycle() - p.duty_cycle) < 1e-9;
    const double achieved =
        static_cast<double>(core::average_throughput(built, kD)) / p.avg_throughput_bound;
    ok &= achieved >= p.ratio_lower_bound - 1e-9;
  }
  std::cout << "\nresult: planner closed forms match the built schedules on spot checks: "
            << (ok ? "CONFIRMED" : "FAILED") << "\n";
  report.metric("grid_points", points.size());
  report.metric("pareto_points", front.size());
  report.metric("spot_checks", checked);
  report.metric("ok", ok ? 1 : 0);
  report.write();
  return ok ? 0 : 1;
}
