// E9 -- Theorem 9: minimum worst-case throughput of the construction.
//
// For several (base, αT, αR) cells: the exact adversarial minimum of the
// constructed schedule vs the Theorem 9 lower bound (L/L̄)·Thr_min(<T>),
// plus the per-frame slot preservation (the proof's key step: the
// constructed frame keeps at least as many guaranteed slots per link).
#include <iostream>

#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "core/throughput.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"

using namespace ttdc;

int main() {
  obs::BenchReport report("thm9_minthr");
  util::print_banner("E9 / Theorem 9: minimum throughput of constructed schedules", {});
  util::Table table({"plan", "D", "aT", "aR", "min slots <T>", "min slots out",
                     "Thr_min out", "Thm9 bound", "holds"});
  table.set_precision(7);
  bool ok = true;
  struct Cell {
    std::size_t n, d, at, ar;
  };
  for (const Cell& c : {Cell{9, 2, 2, 3}, Cell{16, 3, 3, 6}, Cell{25, 2, 4, 8},
                        Cell{25, 4, 3, 8}, Cell{36, 3, 5, 9}, Cell{20, 5, 2, 10}}) {
    const auto plan = comb::best_plan(c.n, c.d);
    const core::Schedule base = core::non_sleeping_from_family(comb::build_plan(plan, c.n));
    const std::size_t base_min = core::min_guaranteed_slots_exact(base, c.d);
    const core::Schedule out = core::construct_duty_cycled(base, c.d, c.at, c.ar);
    const std::size_t out_min = core::min_guaranteed_slots_exact(out, c.d);
    const std::size_t star = core::optimal_transmitters_alpha(c.n, c.d, c.at);
    const long double bound =
        core::theorem9_min_throughput_bound(base, base_min, star, c.ar);
    const long double actual =
        static_cast<long double>(out_min) / static_cast<long double>(out.frame_length());
    const bool holds =
        out_min >= base_min && static_cast<double>(actual) >= static_cast<double>(bound) - 1e-12;
    ok &= holds;
    table.add_row({plan.to_string(), static_cast<std::int64_t>(c.d),
                   static_cast<std::int64_t>(c.at), static_cast<std::int64_t>(c.ar),
                   static_cast<std::int64_t>(base_min), static_cast<std::int64_t>(out_min),
                   static_cast<double>(actual), static_cast<double>(bound),
                   std::string(holds ? "yes" : "NO")});
  }
  std::cout << table.to_text();
  std::cout << "\nresult: constructed schedules keep >= the base's guaranteed slots per frame "
            << "and beat the Theorem 9 bound: " << (ok ? "CONFIRMED" : "FAILED") << "\n";
  report.metric("cells", table.num_rows());
  report.metric("ok", ok ? 1 : 0);
  report.write();
  return ok ? 0 : 1;
}
