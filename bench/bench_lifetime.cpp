// E21 -- network lifetime: the metric duty cycling exists to maximize.
//
// Every node gets the same battery; light convergecast traffic runs until
// the network blacks out. For each MAC: slot of the first death, slots
// until half the nodes are dead, total packets delivered over the whole
// life of the network, and deliveries that happened AFTER the first death
// (the topology-transparent schedules keep serving survivors with zero
// reconfiguration as the topology shrinks).
#include <iostream>
#include <memory>

#include "combinatorics/constructions.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "net/topology.hpp"
#include "obs/report.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

using namespace ttdc;

int main() {
  constexpr std::size_t kRows = 5, kCols = 5, kN = kRows * kCols, kD = 4, kSink = 0;
  constexpr double kRate = 0.001;
  constexpr double kBatteryMj = 2000.0;  // ~3200 always-on slots
  constexpr std::uint64_t kMaxSlots = 400000;
  obs::BenchReport report("lifetime");
  report.param("grid", "5x5");
  report.param("battery_mj", kBatteryMj);
  report.param("rate_per_node_per_slot", kRate);
  report.param("max_slots", static_cast<std::int64_t>(kMaxSlots));
  util::print_banner("E21 / network lifetime under equal batteries",
                     {{"grid", "5x5"},
                      {"battery_mJ", std::to_string(kBatteryMj)},
                      {"rate", std::to_string(kRate)},
                      {"max_slots", std::to_string(kMaxSlots)}});

  const net::Graph grid = net::grid_graph(kRows, kCols);
  const core::Schedule base =
      core::non_sleeping_from_family(comb::polynomial_family(5, 1, kN));
  const core::Schedule duty_wide = core::construct_duty_cycled(base, kD, 5, 10);
  const core::Schedule duty_tight = core::construct_duty_cycled(base, kD, 5, 5);

  util::Table table({"mac", "first death (slot)", "half dead (slot)", "blackout (slot)",
                     "delivered total", "delivered after 1st death", "lifetime x"});
  struct Row {
    const char* name;
    std::unique_ptr<sim::MacProtocol> mac;
  };
  std::vector<Row> rows;
  rows.push_back({"TT non-sleeping", std::make_unique<sim::DutyCycledScheduleMac>(base)});
  rows.push_back({"TT duty (aR=10)", std::make_unique<sim::DutyCycledScheduleMac>(duty_wide)});
  rows.push_back({"TT duty (aR=5)", std::make_unique<sim::DutyCycledScheduleMac>(duty_tight)});
  rows.push_back({"uncoord sleep p=0.3",
                  std::make_unique<sim::UncoordinatedSleepMac>(kN, 0.3, 0.5)});
  rows.push_back({"S-MAC-like 25% active",
                  std::make_unique<sim::CommonActivePeriodMac>(kN, 20, 5, 0.2)});

  double always_on_first_death = 0.0;
  for (auto& row : rows) {
    sim::ConvergecastTraffic traffic(kN, kSink, kRate);
    sim::SimConfig config;
    config.seed = 77;
    config.battery_mj = kBatteryMj;
    sim::Simulator sim(grid, *row.mac, traffic, config);
    std::uint64_t half_dead = 0, blackout = 0, delivered_at_first_death = 0;
    while (sim.now() < kMaxSlots && sim.alive_count() > 0) {
      sim.run(1000);
      if (delivered_at_first_death == 0 && sim.stats().deaths > 0) {
        delivered_at_first_death = sim.stats().delivered;
      }
      if (half_dead == 0 && sim.stats().deaths >= kN / 2) half_dead = sim.now();
      if (sim.alive_count() == 0) blackout = sim.now();
    }
    const double first = static_cast<double>(sim.stats().first_death_slot);
    if (always_on_first_death == 0.0) always_on_first_death = first;
    table.add_row(
        {std::string(row.name), static_cast<std::int64_t>(sim.stats().first_death_slot),
         static_cast<std::int64_t>(half_dead), static_cast<std::int64_t>(blackout),
         static_cast<std::int64_t>(sim.stats().delivered),
         static_cast<std::int64_t>(sim.stats().delivered - delivered_at_first_death),
         first / always_on_first_death});
    std::string key(row.name);
    for (char& c : key) {
      if (c == ' ' || c == '(' || c == ')' || c == '=' || c == '%' || c == '-') c = '_';
    }
    report.metric(key + "_first_death_slot", sim.stats().first_death_slot);
    report.metric(key + "_delivered_total", sim.stats().delivered);
    report.metric(key + "_lifetime_x", first / always_on_first_death);
  }
  report.metric("macs_compared", table.num_rows());
  report.write();
  std::cout << table.to_text();
  std::cout << "\nreading: duty cycling multiplies time-to-first-death roughly by the\n"
            << "awake-fraction ratio. Note the narrow first-death-to-blackout window for\n"
            << "the TT schedules: their balanced energy consumption (§7) drains all\n"
            << "batteries at the same rate, so the network serves at full strength until\n"
            << "the very end instead of losing coverage node by node -- and whatever\n"
            << "survives keeps being served with zero reconfiguration, since node death\n"
            << "only shrinks degrees, which topology transparency already covers.\n";
  return 0;
}
