// E21 -- network lifetime: the metric duty cycling exists to maximize.
//
// Every node gets the same battery; light convergecast traffic runs until
// the network blacks out. For each MAC: slot of the first death, slots
// until half the nodes are dead, total packets delivered over the whole
// life of the network, and deliveries that happened AFTER the first death
// (the topology-transparent schedules keep serving survivors with zero
// reconfiguration as the topology shrinks).
//
// Runs as a runner campaign: one cell per MAC, schedules and the grid's
// BFS routing shared through the campaign ArtifactStore. Node death never
// edits the graph (dead nodes just stop transmitting), so the shared
// routing table stays valid for the whole run. Each cell keeps the
// experiment's original fixed seed; "lifetime x" is computed against the
// always-on row after the campaign, in cell-index order.
//
// Fast-forwarding (DESIGN.md §15) is on campaign-wide: the lookahead
// convergecast source plus the periodic TT schedules let the simulator
// replay memoized frames through the long quiet stretches of a lifetime
// run. Per-row and aggregate metrics split the work into slots actually
// simulated vs slots replayed so the split is visible in BENCH_lifetime
// history (stats are unchanged by the FF contract — only wall-clock and
// the split move).
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "combinatorics/constructions.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "net/topology.hpp"
#include "obs/report.hpp"
#include "runner/runner.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

using namespace ttdc;

int main() {
  constexpr std::size_t kRows = 5, kCols = 5, kN = kRows * kCols, kD = 4, kSink = 0;
  constexpr double kRate = 0.001;
  constexpr double kBatteryMj = 2000.0;  // ~3200 always-on slots
  constexpr std::uint64_t kMaxSlots = 400000;
  obs::BenchReport report("lifetime");
  report.param("grid", "5x5");
  report.param("battery_mj", kBatteryMj);
  report.param("rate_per_node_per_slot", kRate);
  report.param("max_slots", static_cast<std::int64_t>(kMaxSlots));
  util::print_banner("E21 / network lifetime under equal batteries",
                     {{"grid", "5x5"},
                      {"battery_mJ", std::to_string(kBatteryMj)},
                      {"rate", std::to_string(kRate)},
                      {"max_slots", std::to_string(kMaxSlots)}});

  const net::Graph grid = net::grid_graph(kRows, kCols);

  const auto base_schedule = [](runner::CellContext& ctx) {
    return ctx.artifacts().schedule("base:poly(5,1)", [] {
      return core::non_sleeping_from_family(comb::polynomial_family(5, 1, kN));
    });
  };
  const auto duty_schedule = [&base_schedule](runner::CellContext& ctx, std::size_t alpha_r) {
    auto base = base_schedule(ctx);
    std::string key = "duty:aR=";
    key += std::to_string(alpha_r);
    return ctx.artifacts().schedule(
        key, [&] { return core::construct_duty_cycled(*base, kD, 5, alpha_r); });
  };

  struct RowSpec {
    const char* name;
    std::function<std::unique_ptr<sim::MacProtocol>(runner::CellContext&)> make_mac;
  };
  std::vector<RowSpec> specs;
  specs.push_back({"TT non-sleeping", [&](runner::CellContext& ctx) {
                     return std::make_unique<sim::DutyCycledScheduleMac>(*base_schedule(ctx));
                   }});
  specs.push_back({"TT duty (aR=10)", [&](runner::CellContext& ctx) {
                     return std::make_unique<sim::DutyCycledScheduleMac>(*duty_schedule(ctx, 10));
                   }});
  specs.push_back({"TT duty (aR=5)", [&](runner::CellContext& ctx) {
                     return std::make_unique<sim::DutyCycledScheduleMac>(*duty_schedule(ctx, 5));
                   }});
  specs.push_back({"uncoord sleep p=0.3", [&](runner::CellContext&) {
                     return std::make_unique<sim::UncoordinatedSleepMac>(kN, 0.3, 0.5);
                   }});
  specs.push_back({"S-MAC-like 25% active", [&](runner::CellContext&) {
                     return std::make_unique<sim::CommonActivePeriodMac>(kN, 20, 5, 0.2);
                   }});

  struct LifeRow {
    std::uint64_t half_dead = 0, blackout = 0, delivered_at_first_death = 0;
    sim::FastForwardStats ff;
  };
  std::vector<LifeRow> life(specs.size());

  runner::CampaignOptions options;
  options.fast_forward = true;
  runner::Campaign campaign(options);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& spec = specs[i];
    auto& out = life[i];
    campaign.add(spec.name, [&grid, &spec, &out](runner::CellContext& ctx) {
      auto routing = ctx.artifacts().routing(grid);
      auto mac = spec.make_mac(ctx);
      sim::LookaheadConvergecastTraffic traffic(kN, kSink, kRate, /*seed=*/77);
      sim::SimConfig config;
      config.seed = 77;  // the experiment's original fixed seed, not ctx.seed()
      config.battery_mj = kBatteryMj;
      config.shared_routing = routing.get();
      config.fast_forward = ctx.fast_forward();
      sim::Simulator sim(grid, *mac, traffic, config);
      while (sim.now() < kMaxSlots && sim.alive_count() > 0) {
        sim.run(1000);
        if (out.delivered_at_first_death == 0 && sim.stats().deaths > 0) {
          out.delivered_at_first_death = sim.stats().delivered;
        }
        if (out.half_dead == 0 && sim.stats().deaths >= kN / 2) out.half_dead = sim.now();
        if (sim.alive_count() == 0) out.blackout = sim.now();
      }
      out.ff = sim.fast_forward_stats();
      ctx.record(sim.stats());
    });
  }
  const runner::CampaignResult result = campaign.run();

  util::Table table({"mac", "first death (slot)", "half dead (slot)", "blackout (slot)",
                     "delivered total", "delivered after 1st death", "lifetime x",
                     "slots simulated", "slots replayed"});
  double always_on_first_death = 0.0;
  std::uint64_t total_simulated = 0, total_replayed = 0, total_frames_replayed = 0;
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const auto& st = result.cells[i].stats;
    const auto& out = life[i];
    const double first = static_cast<double>(st.first_death_slot);
    if (always_on_first_death == 0.0) always_on_first_death = first;
    // The split: slots the engine replayed from a memoized frame delta vs
    // slots that ran through the full per-slot pipeline.
    const std::uint64_t simulated = st.slots_run - out.ff.slots_replayed;
    total_simulated += simulated;
    total_replayed += out.ff.slots_replayed;
    total_frames_replayed += out.ff.frames_replayed;
    table.add_row({result.cells[i].name, static_cast<std::int64_t>(st.first_death_slot),
                   static_cast<std::int64_t>(out.half_dead),
                   static_cast<std::int64_t>(out.blackout),
                   static_cast<std::int64_t>(st.delivered),
                   static_cast<std::int64_t>(st.delivered - out.delivered_at_first_death),
                   first / always_on_first_death, static_cast<std::int64_t>(simulated),
                   static_cast<std::int64_t>(out.ff.slots_replayed)});
    std::string key = result.cells[i].name;
    for (char& c : key) {
      if (c == ' ' || c == '(' || c == ')' || c == '=' || c == '%' || c == '-') c = '_';
    }
    report.metric(key + "_first_death_slot", st.first_death_slot);
    report.metric(key + "_delivered_total", st.delivered);
    report.metric(key + "_lifetime_x", first / always_on_first_death);
    report.metric(key + "_slots_simulated", simulated);
    report.metric(key + "_slots_replayed", out.ff.slots_replayed);
    report.metric(key + "_frames_replayed", out.ff.frames_replayed);
  }
  report.metric("macs_compared", table.num_rows());
  report.metric("total_slots_simulated", total_simulated);
  report.metric("total_slots_replayed", total_replayed);
  report.metric("total_frames_replayed", total_frames_replayed);
  report.write();
  std::cout << table.to_text();
  std::cout << "\nreading: duty cycling multiplies time-to-first-death roughly by the\n"
            << "awake-fraction ratio. Note the narrow first-death-to-blackout window for\n"
            << "the TT schedules: their balanced energy consumption (§7) drains all\n"
            << "batteries at the same rate, so the network serves at full strength until\n"
            << "the very end instead of losing coverage node by node -- and whatever\n"
            << "survives keeps being served with zero reconfiguration, since node death\n"
            << "only shrinks degrees, which topology transparency already covers.\n";
  return 0;
}
