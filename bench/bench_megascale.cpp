// Metropolitan-scale pipeline bench (DESIGN.md §13): dense batched vs
// hybrid sparse/dense pipeline at n in {1e3, 1e4, 1e5} under a low-duty
// round-robin schedule (2 awake slots per frame of 8192 ≈ 0.02% duty — the
// regime where the expected active population per slot is ≪ n, which is
// where metropolitan-scale duty cycling lives). Gates:
//
//   * hybrid >= 5x dense at n = 10^4 (max-rate-paired speedup);
//   * hybrid at n = 10^4 runs at least as many slots/sec as the dense
//     pipeline manages at n = 800 under its own classic regime (frame 41,
//     ~5% duty — the densest schedule bench_sim_hotpath tops out at):
//     "a 12.5x bigger city, same wall-clock".
//
// Rates are the MAX over interleaved reps, and the gated speedup is the
// ratio of maxes: on a shared box, co-tenant interference only ever slows
// a rep down, so the max of several reps estimates the uncontended rate
// and the ratio of maxes the uncontended speedup. (Median-of-ratios — the
// bench_sim_hotpath idiom — needs a majority of quiet reps; max-pairing
// needs only one per side.)
//
// The workload is identical for both pipelines and the stats are asserted
// equal before anything is timed, so the speedup is never bought with a
// behavior change (the full cross-MAC golden matrix lives in
// tests/test_megascale.cpp). Emits BENCH_megascale.json; the *_speedup
// metric is regression-gated by scripts/run_benches.sh --perf-check.
//
// --smoke: small sizes, few reps, no gate failures — the CI Release job
// runs this to prove the megascale path stays alive without paying for a
// full calibrated run.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "net/domain_grid.hpp"
#include "net/topology.hpp"
#include "obs/report.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"
#include "util/slot_set.hpp"
#include "util/timer.hpp"

namespace {

using namespace ttdc;

constexpr std::size_t kFrame = 8192;    // duty cycle 2/kFrame ≈ 0.024%
constexpr std::size_t kMaxDegree = 6;
constexpr std::size_t kBatch = 1;       // packets injected per slot; O(batch)
                                        // traffic keeps the common per-slot
                                        // work small so the pipelines are
                                        // what gets compared
constexpr std::size_t kQueueCap = 4;    // small sensor buffers; keeps the
                                        // queue arena cache-resident
constexpr std::uint64_t kWarmup = 2000;
constexpr double kGateSpeedup = 5.0;
constexpr std::size_t kGateN = 10000;
constexpr std::size_t kReferenceN = 800;
constexpr std::size_t kReferenceFrame = 41;  // ~4.9% duty: the dense
                                             // pipeline's comfort zone

/// Synthetic low-duty schedule, built directly as SlotSets so fill cost is
/// O(active) on the hybrid pipeline: in slot t (mod frame) the residue
/// class t transmits and the residue class t+1 listens. Senders are naive
/// (no receiver gating), so every transmitter fires in its slot and the
/// dense pipeline pays its full word-parallel phase costs each slot.
class RoundRobinMac final : public sim::MacProtocol {
 public:
  RoundRobinMac(std::size_t n, std::size_t frame) : frame_(frame) {
    members_.assign(frame, util::SlotSet(n));
    for (std::size_t v = 0; v < n; ++v) members_[v % frame].set(v);
  }

  void begin_slot(std::uint64_t slot, util::Xoshiro256&) override {
    cur_ = static_cast<std::size_t>(slot % frame_);
  }
  [[nodiscard]] bool can_receive(std::size_t v) const override {
    return v % frame_ == (cur_ + 1) % frame_;
  }
  [[nodiscard]] bool wants_transmit(std::size_t v, std::size_t) const override {
    return v % frame_ == cur_;
  }
  [[nodiscard]] sim::RadioState idle_state(std::size_t v) const override {
    return can_receive(v) ? sim::RadioState::kListen : sim::RadioState::kSleep;
  }
  bool fill_slot_sets(util::SlotSet& receivers, util::SlotSet& transmitters) const override {
    transmitters.copy_from(members_[cur_]);
    receivers.copy_from(members_[(cur_ + 1) % frame_]);
    return true;
  }

 private:
  std::size_t frame_;
  std::size_t cur_ = 0;
  std::vector<util::SlotSet> members_;
};

struct World {
  net::Positions pos;
  net::DomainGrid grid;
  net::Graph graph;
};

World make_world(std::size_t n) {
  util::Xoshiro256 rng(0xC170 ^ static_cast<std::uint64_t>(n));
  net::Positions pos = net::random_positions(n, rng);
  const double radius = std::min(0.4, std::sqrt(10.0 / static_cast<double>(n)));
  net::DomainGrid grid(pos, radius);
  net::Graph graph = net::unit_disk_graph(pos, radius, kMaxDegree, grid);
  return {std::move(pos), std::move(grid), std::move(graph)};
}

sim::SimConfig base_config(const World& world, bool hybrid, int shard_workers) {
  sim::SimConfig cfg;
  cfg.seed = 11;
  cfg.drop_unroutable = true;  // islands shed load instead of accumulating
  cfg.queue_capacity = kQueueCap;
  cfg.hybrid_pipeline = hybrid;
  cfg.shard_workers = shard_workers;
  cfg.domains = &world.grid;
  return cfg;
}

double slot_rate_once(const World& world, bool hybrid, int shard_workers,
                      std::size_t frame, std::uint64_t timed) {
  const std::size_t n = world.graph.num_nodes();
  RoundRobinMac mac(n, frame);
  sim::BatchArrivalTraffic traffic(n, /*sink=*/0, kBatch);
  sim::Simulator sim(world.graph, mac, traffic, base_config(world, hybrid, shard_workers));
  sim.run(kWarmup);
  util::Timer timer;
  sim.run(timed);
  return static_cast<double>(timed) / timer.seconds();
}

/// Equality tripwire before timing anything: the two pipelines must count
/// the same world. (The thorough matrix is tests/test_megascale.cpp.)
bool stats_agree(const World& world) {
  const auto run = [&](bool hybrid) {
    const std::size_t n = world.graph.num_nodes();
    RoundRobinMac mac(n, kFrame);
    sim::BatchArrivalTraffic traffic(n, 0, kBatch);
    sim::Simulator sim(world.graph, mac, traffic, base_config(world, hybrid, hybrid ? 4 : 0));
    sim.run(2000);
    return sim.stats();
  };
  const sim::SimStats dense = run(false);
  const sim::SimStats hybrid = run(true);
  return dense.delivered == hybrid.delivered && dense.collisions == hybrid.collisions &&
         dense.transmissions == hybrid.transmissions &&
         dense.hop_successes == hybrid.hop_successes &&
         dense.receiver_asleep == hybrid.receiver_asleep &&
         dense.queue_drops == hybrid.queue_drops;
}

std::uint64_t timed_slots(std::size_t n, bool smoke) {
  // Floor high enough that a rep amortizes cold caches on a freshly
  // constructed simulator; the hybrid pipeline at the gate size covers a
  // rep in ~10 ms.
  const std::uint64_t scaled = 16'000'000 / n;
  const std::uint64_t slots = scaled < 20'000 ? 20'000 : scaled;
  return smoke ? slots / 20 : slots;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int pairs = smoke ? 3 : 7;

  obs::BenchReport report("megascale");
  report.param("mac", "round_robin_frame_8192");
  report.param("duty_cycle", 2.0 / static_cast<double>(kFrame));
  report.param("reference_duty_cycle", 2.0 / static_cast<double>(kReferenceFrame));
  report.param("traffic", "batch_arrival_1_per_slot");
  report.param("pairs", static_cast<std::int64_t>(pairs));
  report.param("warmup_slots", static_cast<std::int64_t>(kWarmup));
  report.param("gate_n", static_cast<std::int64_t>(kGateN));
  report.param("gate_speedup", kGateSpeedup);
  report.param("smoke", static_cast<std::int64_t>(smoke ? 1 : 0));

  bool ok = true;
  double gate_speedup = 0.0, gate_hybrid_rate = 0.0, reference_dense_rate = 0.0;

  // Dense reference row: the pre-megascale pipeline at its own classic
  // size AND schedule density (the regime the existing bench_sim_hotpath
  // tops out at). The second gate asks the hybrid pipeline to beat this
  // rate at 12.5x the n and 1/200th the duty.
  {
    const World world = make_world(kReferenceN);
    std::vector<double> rates;
    for (int rep = 0; rep < pairs; ++rep) {
      rates.push_back(slot_rate_once(world, false, 0, kReferenceFrame,
                                     timed_slots(kReferenceN, smoke)));
    }
    reference_dense_rate = *std::max_element(rates.begin(), rates.end());
    std::cout << "dense reference @ n=" << kReferenceN << " (frame " << kReferenceFrame
              << "): " << reference_dense_rate << " slots/s\n";
    report.metric("n800_dense_slots_per_sec", reference_dense_rate);
  }

  std::cout << "megascale: dense vs hybrid pipeline (slots/sec)\n"
            << "       n      dense/s     hybrid/s  speedup\n";
  std::vector<std::size_t> sizes = smoke ? std::vector<std::size_t>{1000, 10000}
                                         : std::vector<std::size_t>{1000, 10000, 100000};
  for (const std::size_t n : sizes) {
    const World world = make_world(n);
    if (!stats_agree(world)) {
      std::cout << "  n=" << n << ": PIPELINE MISMATCH (dense vs hybrid stats differ)\n";
      ok = false;
      continue;
    }
    const std::uint64_t timed = timed_slots(n, smoke);
    std::vector<double> dense_rates, hybrid_rates;
    slot_rate_once(world, true, 0, kFrame, timed);  // warm caches, untimed
    for (int rep = 0; rep < pairs; ++rep) {
      dense_rates.push_back(slot_rate_once(world, false, 0, kFrame, timed));
      hybrid_rates.push_back(slot_rate_once(world, true, 0, kFrame, timed));
    }
    const double dense = *std::max_element(dense_rates.begin(), dense_rates.end());
    const double hybrid = *std::max_element(hybrid_rates.begin(), hybrid_rates.end());
    const double speedup = hybrid / dense;
    std::cout << "  " << n << "  " << dense << "  " << hybrid << "  " << speedup << "x\n";
    std::string key = "n";
    key += std::to_string(n);
    report.metric(key + "_dense_slots_per_sec", dense);
    report.metric(key + "_hybrid_slots_per_sec", hybrid);
    // Only the calibrated gate row is named *_speedup (the suffix
    // scripts/run_benches.sh --perf-check regression-gates); the other
    // sizes ride along informationally as *_ratio.
    report.metric(key + (n == kGateN ? "_speedup" : "_ratio"), speedup);
    if (n == kGateN) {
      gate_speedup = speedup;
      gate_hybrid_rate = hybrid;
    }
    if (n == 100000 && !smoke) {
      // Sharded phase 2 on top of the hybrid sets, informational (absolute
      // rate depends on how loaded the machine is, so never gated).
      const double sharded = slot_rate_once(world, true, 4, kFrame, timed);
      std::cout << "  n=" << n << " sharded(4 workers): " << sharded << " slots/s\n";
      report.metric("n100000_sharded_slots_per_sec", sharded);
    }
  }

  const bool speedup_ok = gate_speedup >= kGateSpeedup;
  const bool scale_ok = gate_hybrid_rate >= reference_dense_rate;
  std::cout << "\nhybrid speedup @ n=" << kGateN << ": " << gate_speedup << "x (gate >= "
            << kGateSpeedup << "x): " << (speedup_ok ? "CONFIRMED" : "FAILED") << "\n"
            << "hybrid @ n=" << kGateN << " (" << gate_hybrid_rate
            << " slots/s) vs dense @ n=" << kReferenceN << " (" << reference_dense_rate
            << " slots/s): " << (scale_ok ? "CONFIRMED" : "FAILED") << "\n";
  if (!smoke) ok = ok && speedup_ok && scale_ok;
  report.metric("ok", ok ? 1 : 0);
  report.write();
  // Smoke mode proves the path runs and the pipelines agree; it is too
  // short to hold the calibrated perf gates.
  return ok ? 0 : 1;
}
