// E23 -- the campaign engine itself: parallel simulation campaigns must be
// (a) bit-identical to the serial loop they replace and (b) actually faster
// on multi-core hosts.
//
// A replicated convergecast study (three TT schedule variants x several
// SplitMix64-derived seed replicas on a 5x5 grid) runs twice: once through
// Campaign::run_serial() and once through the work-stealing worker pool.
// The aggregate JSON of both runs is compared byte for byte -- this is the
// determinism contract of DESIGN.md §10 (child seeds are a function of
// (master_seed, cell_index) only; merges fold in cell-index order).
//
// Flags:
//   --smoke       reduced cell grid and no speedup gate (CI on small runners)
//   --perf-check  gate: parallel >= 3x serial wall-clock when >= 4 cores
//
// The aggregate-equality gate always applies. The committed baseline for
// scripts/run_benches.sh --perf-check lives in
// bench/baselines/BENCH_campaign.baseline.json; regenerate it by copying a
// fresh BENCH_campaign.json when the cell grid legitimately changes.
#include <cstring>
#include <iostream>
#include <string>

#include "combinatorics/constructions.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "net/topology.hpp"
#include "obs/report.hpp"
#include "runner/runner.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace ttdc;

int main(int argc, char** argv) {
  bool smoke = false, perf_check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--perf-check") == 0) perf_check = true;
  }
  constexpr std::size_t kRows = 5, kCols = 5, kN = kRows * kCols, kD = 4, kSink = 0;
  constexpr double kRate = 0.003;
  const std::uint64_t slots = smoke ? 3000 : 20000;
  const std::size_t replicas = smoke ? 2 : 8;

  obs::BenchReport report("campaign");
  report.param("grid", "5x5");
  report.param("rate_per_node_per_slot", kRate);
  report.param("slots", static_cast<std::int64_t>(slots));
  report.param("replicas", static_cast<std::int64_t>(replicas));
  report.param("smoke", smoke ? 1 : 0);
  util::print_banner("E23 / campaign engine: parallel == serial, and faster",
                     {{"grid", "5x5"},
                      {"slots", std::to_string(slots)},
                      {"replicas", std::to_string(replicas)},
                      {"smoke", smoke ? "yes" : "no"}});

  const net::Graph grid = net::grid_graph(kRows, kCols);
  struct Variant {
    const char* name;
    const char* key;
    std::size_t alpha_r;  // 0 = non-sleeping base
  };
  const Variant variants[] = {
      {"base", "base:poly(5,1)", 0},
      {"aR10", "duty:aR=10", 10},
      {"aR5", "duty:aR=5", 5},
  };

  const auto build_campaign = [&] {
    runner::Campaign campaign;
    for (const auto& v : variants) {
      for (std::size_t rep = 0; rep < replicas; ++rep) {
        std::string name(v.name);
        name += ":rep";
        name += std::to_string(rep);
        campaign.add(std::move(name), [&grid, &v, slots](runner::CellContext& ctx) {
          auto base = ctx.artifacts().schedule("base:poly(5,1)", [] {
            return core::non_sleeping_from_family(comb::polynomial_family(5, 1, kN));
          });
          auto schedule = v.alpha_r == 0
                              ? base
                              : ctx.artifacts().schedule(v.key, [&] {
                                  return core::construct_duty_cycled(*base, kD, 5, v.alpha_r);
                                });
          auto routing = ctx.artifacts().routing(grid);
          sim::DutyCycledScheduleMac mac(*schedule);
          sim::ConvergecastTraffic traffic(kN, kSink, kRate);
          sim::SimConfig cfg;
          cfg.seed = ctx.seed();  // SplitMix64 child of the campaign master seed
          cfg.shared_routing = routing.get();
          sim::Simulator sim(grid, mac, traffic, cfg);
          sim.run(slots);
          ctx.record(sim.stats());
          ctx.metric("delivery_ratio", sim.stats().delivery_ratio());
        });
      }
    }
    return campaign;
  };

  // Serial reference first (pays the artifact builds), then the pool.
  runner::Campaign serial_campaign = build_campaign();
  const runner::CampaignResult serial = serial_campaign.run_serial();
  runner::Campaign parallel_campaign = build_campaign();
  const runner::CampaignResult parallel = parallel_campaign.run();

  const bool equal = serial.aggregate_json() == parallel.aggregate_json();
  const double speedup = parallel.elapsed_seconds > 0.0
                             ? serial.elapsed_seconds / parallel.elapsed_seconds
                             : 0.0;
  const int cores = util::hardware_parallelism();
  const bool gate_speedup = perf_check && !smoke && cores >= 4;
  const bool speedup_ok = !gate_speedup || speedup >= 3.0;

  std::cout << serial.cells.size() << " cells, " << parallel.workers << " workers ("
            << cores << " cores)\n"
            << "serial   " << serial.elapsed_seconds << " s\n"
            << "parallel " << parallel.elapsed_seconds << " s  (speedup " << speedup
            << "x)\n"
            << "aggregate equality (bit-identical JSON): "
            << (equal ? "CONFIRMED" : "FAILED") << "\n";
  if (gate_speedup) {
    std::cout << "speedup gate (>= 3x on " << cores
              << " cores): " << (speedup_ok ? "CONFIRMED" : "FAILED") << "\n";
  } else {
    std::cout << "speedup gate: skipped ("
              << (smoke ? "smoke mode" : !perf_check ? "no --perf-check" : "< 4 cores")
              << ")\n";
  }

  const bool ok = equal && speedup_ok;
  report.metric("cells", serial.cells.size());
  report.metric("workers", parallel.workers);
  report.metric("cores", cores);
  report.metric("serial_seconds", serial.elapsed_seconds);
  report.metric("parallel_seconds", parallel.elapsed_seconds);
  report.metric("campaign_speedup", speedup);
  report.metric("aggregate_equal", equal ? 1 : 0);
  report.metric("artifact_hits", parallel_campaign.artifacts().hits());
  report.metric("artifact_misses", parallel_campaign.artifacts().misses());
  report.metric("aggregate_delivered", parallel.aggregate.delivered);
  report.metric("aggregate_generated", parallel.aggregate.generated);
  report.metric("ok", ok ? 1 : 0);
  report.write();
  return ok ? 0 : 1;
}
