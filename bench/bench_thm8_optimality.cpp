// E8 -- Theorem 8: average-throughput optimality of the construction.
//
// Two sweeps:
//  (1) uniform base schedules with |T[i]| = t for t = 1..alpha: the measured
//      ratio Thr_ave(constructed)/Thr*_{aT,aR} must track r(t) and hit 1.0
//      once t >= αT* -- the paper's headline optimality condition
//      min|T[i]| >= min(αT, ⌈(n-D)/D⌉);
//  (2) truncated polynomial families (ragged |T[i]| profiles): the measured
//      ratio must stay above the Theorem 8 lower bound.
#include <iostream>

#include "combinatorics/constructions.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "core/throughput.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"

using namespace ttdc;

int main() {
  constexpr std::size_t kN = 36, kD = 3, kAt = 8, kAr = 12;
  obs::BenchReport report("thm8_optimality");
  report.param("n", kN);
  report.param("D", kD);
  report.param("alphaT", kAt);
  report.param("alphaR", kAr);
  util::print_banner("E8 / Theorem 8: construction optimality ratio",
                     {{"n", std::to_string(kN)},
                      {"D", std::to_string(kD)},
                      {"alphaT", std::to_string(kAt)},
                      {"alphaR", std::to_string(kAr)}});
  const std::size_t star = core::optimal_transmitters_alpha(kN, kD, kAt);
  std::cout << "alphaT* = min(alphaT, alpha) = " << star << "\n\n";

  bool ok = true;
  {
    std::cout << "-- sweep 1: uniform |T[i]| = t bases --\n";
    util::Table table({"M_in = t", "r(t)", "Thm8 bound", "measured ratio", "optimal",
                       "ratio >= bound"});
    table.set_precision(7);
    util::Xoshiro256 rng(5);
    for (std::size_t t = 1; t <= star + 3; ++t) {
      const core::Schedule base = core::random_non_sleeping_schedule(kN, 5, t, rng);
      const core::Schedule out = core::construct_duty_cycled(base, kD, kAt, kAr);
      const long double ratio = core::average_throughput(out, kD) /
                                core::throughput_upper_bound_alpha(kN, kD, kAt, kAr);
      const long double r_t =
          core::optimality_ratio_r(kN, kD, kAt, std::min(t, star));
      const long double bound = core::theorem8_ratio_lower_bound(base, kD, kAt, kAr);
      const bool holds = static_cast<double>(ratio) >= static_cast<double>(bound) - 1e-9 &&
                         static_cast<double>(ratio) <= 1.0 + 1e-9 &&
                         (t < star || std::abs(static_cast<double>(ratio) - 1.0) < 1e-9);
      ok &= holds;
      table.add_row({static_cast<std::int64_t>(t), static_cast<double>(r_t),
                     static_cast<double>(bound), static_cast<double>(ratio),
                     std::string(t >= star ? "expected" : "-"),
                     std::string(holds ? "yes" : "NO")});
    }
    std::cout << table.to_text() << '\n';
  }
  {
    std::cout << "-- sweep 2: ragged bases (truncated polynomial families) --\n";
    util::Table table({"base", "M_in", "M_ax", "Thm8 bound", "measured ratio", "holds"});
    table.set_precision(7);
    struct Cell {
      std::uint32_t q, k;
      std::size_t count;
    };
    for (const Cell& c : {Cell{7, 2, 40}, Cell{7, 2, 60}, Cell{8, 2, 36}, Cell{9, 2, 36},
                          Cell{11, 3, 36}}) {
      const core::Schedule base =
          core::non_sleeping_from_family(comb::polynomial_family(c.q, c.k, c.count));
      const std::size_t n = base.num_nodes();
      const std::size_t at = std::min<std::size_t>(kAt, n / 3);
      const std::size_t ar = std::min<std::size_t>(kAr, n - at);
      const core::Schedule out = core::construct_duty_cycled(base, kD, at, ar);
      const long double ratio = core::average_throughput(out, kD) /
                                core::throughput_upper_bound_alpha(n, kD, at, ar);
      const long double bound = core::theorem8_ratio_lower_bound(base, kD, at, ar);
      const bool holds = static_cast<double>(ratio) >= static_cast<double>(bound) - 1e-9 &&
                         static_cast<double>(ratio) <= 1.0 + 1e-9;
      ok &= holds;
      char name[48];
      std::snprintf(name, sizeof name, "poly(q=%u,k=%u) n=%zu", c.q, c.k, c.count);
      table.add_row({std::string(name), static_cast<std::int64_t>(base.min_transmitters()),
                     static_cast<std::int64_t>(base.max_transmitters()),
                     static_cast<double>(bound), static_cast<double>(ratio),
                     std::string(holds ? "yes" : "NO")});
    }
    std::cout << table.to_text();
  }
  std::cout << "\nresult: ratio >= Theorem 8 bound everywhere; ratio == 1 whenever "
            << "M_in >= alphaT*: " << (ok ? "CONFIRMED" : "FAILED") << "\n";
  report.metric("alphaT_star", star);
  report.metric("ok", ok ? 1 : 0);
  report.write();
  return ok ? 0 : 1;
}
