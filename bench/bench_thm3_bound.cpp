// E4 -- Theorem 3: upper bound on average worst-case throughput of general
// schedules, the optimal transmitter count αT*, and achievability.
//
// Sweeps n and D; for each cell prints αT* = argmax g_{n,D}, the tight
// bound Thr*, the loose closed form nD^D/((n-D)(D+1)^{D+1}), and the
// throughput actually achieved by a non-sleeping schedule with |T[i]| = αT*
// (must equal Thr*) and by off-optimal schedules (must fall below).
#include <iostream>

#include "core/builders.hpp"
#include "core/throughput.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"

using namespace ttdc;

int main() {
  obs::BenchReport report("thm3_bound");
  util::print_banner("E4 / Theorem 3: general-schedule throughput bound", {});
  util::Table table({"n", "D", "alphaT*", "(n-D)/(D+1)", "Thr* (tight)", "loose bound",
                     "achieved @ alphaT*", "achieved @ alphaT*+2", "tight==achieved"});
  table.set_precision(8);
  bool ok = true;
  util::Xoshiro256 rng(7);
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u}) {
    for (std::size_t d : {2u, 3u, 5u, 8u}) {
      if (d + 1 >= n) continue;
      const std::size_t star = core::optimal_transmitters_general(n, d);
      const long double tight = core::throughput_upper_bound_general(n, d);
      const long double loose = core::throughput_upper_bound_general_loose(n, d);
      const core::Schedule opt = core::random_non_sleeping_schedule(n, 4, star, rng);
      const long double achieved = core::average_throughput(opt, d);
      long double off = 0.0L;
      if (star + 2 < n) {
        const core::Schedule worse = core::random_non_sleeping_schedule(n, 4, star + 2, rng);
        off = core::average_throughput(worse, d);
      }
      const bool match = std::abs(static_cast<double>(achieved - tight)) < 1e-12 &&
                         static_cast<double>(tight) <= static_cast<double>(loose) + 1e-15 &&
                         static_cast<double>(off) <= static_cast<double>(tight);
      ok &= match;
      table.add_row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(d),
                     static_cast<std::int64_t>(star),
                     static_cast<double>(n - d) / static_cast<double>(d + 1),
                     static_cast<double>(tight), static_cast<double>(loose),
                     static_cast<double>(achieved), static_cast<double>(off),
                     std::string(match ? "yes" : "NO")});
    }
  }
  std::cout << table.to_text();
  std::cout << "\nresult: bound tight at alphaT* ~ (n-D)/(D+1), dominated by the loose form, "
            << "strictly above off-optimal schedules: " << (ok ? "CONFIRMED" : "FAILED")
            << "\n";
  report.metric("cells", table.num_rows());
  report.metric("ok", ok ? 1 : 0);
  report.write();
  return ok ? 0 : 1;
}
