// E7 -- Theorem 7: frame length of the constructed schedule.
//
// Checks L̄ == Σ_i ⌈|T[i]|/αT*⌉⌈(n-|T[i]|)/αR⌉ and the closed-form bound
// ⌈M_ax/αT*⌉⌈(n-M_in)/αR⌉ L, and charts the frame-expansion factor as the
// energy caps tighten (the latency price of duty cycling).
#include <iostream>

#include "combinatorics/constructions.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "core/throughput.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"

using namespace ttdc;

int main() {
  constexpr std::size_t kN = 64, kD = 3;
  obs::BenchReport report("thm7_framelen");
  report.param("n", kN);
  report.param("D", kD);
  report.param("base", "polynomial q=13 k=1 (L=169)");
  util::print_banner("E7 / Theorem 7: constructed frame length",
                     {{"n", std::to_string(kN)}, {"D", std::to_string(kD)},
                      {"base", "polynomial q=13 k=1 (L=169)"}});
  const core::Schedule base =
      core::non_sleeping_from_family(comb::polynomial_family(13, 1, kN));
  std::cout << "base: L=" << base.frame_length() << " M_in=" << base.min_transmitters()
            << " M_ax=" << base.max_transmitters() << "\n\n";
  util::Table table({"alphaT", "alphaR", "alphaT*", "L(constructed)", "Thm7 formula",
                     "Thm7 bound", "expansion x", "exact"});
  bool ok = true;
  for (std::size_t at : {1u, 2u, 4u, 8u}) {
    for (std::size_t ar : {4u, 8u, 16u, 32u}) {
      if (at + ar > kN) continue;
      const std::size_t star = core::optimal_transmitters_alpha(kN, kD, at);
      const core::Schedule out = core::construct_duty_cycled(base, kD, at, ar);
      const std::size_t formula = core::constructed_frame_length(base, star, ar);
      const std::size_t bound = core::constructed_frame_length_bound(base, star, ar);
      const bool exact = out.frame_length() == formula && formula <= bound;
      ok &= exact;
      table.add_row({static_cast<std::int64_t>(at), static_cast<std::int64_t>(ar),
                     static_cast<std::int64_t>(star),
                     static_cast<std::int64_t>(out.frame_length()),
                     static_cast<std::int64_t>(formula), static_cast<std::int64_t>(bound),
                     static_cast<double>(out.frame_length()) /
                         static_cast<double>(base.frame_length()),
                     std::string(exact ? "yes" : "NO")});
    }
  }
  std::cout << table.to_text();
  std::cout << "\nresult: constructed frame length matches the Theorem 7 formula and bound: "
            << (ok ? "CONFIRMED" : "FAILED") << "\n";
  report.metric("cells", table.num_rows());
  report.metric("base_frame_length", base.frame_length());
  report.metric("ok", ok ? 1 : 0);
  report.write();
  return ok ? 0 : 1;
}
