// ttdc-trace — post-mortem flight-recorder analysis.
//
// Reads a flight JSONL dump (from runner::FlightCaptureOptions, a test, or
// `ttdc-trace record`) and answers the per-packet questions the aggregate
// counters cannot: which packets took longest and why, which receivers are
// collision hot-spots and who is colliding there, what one node saw slot by
// slot. `perfetto` converts a dump for ui.perfetto.dev; `record` runs a
// small built-in duty-cycled deployment with the recorder armed, for a
// self-contained demo dump.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "net/topology.hpp"
#include "obs/flight_query.hpp"
#include "obs/perfetto.hpp"
#include "obs/profile.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using ttdc::obs::FlightEvent;
using ttdc::obs::FlightLog;

int usage() {
  std::cerr <<
      "usage: ttdc-trace <command> [args]\n"
      "\n"
      "  summary <dump.jsonl>                 totals, truncation, consistency\n"
      "  worst-latency <dump.jsonl> [-k N]    slowest delivered packets (default 10)\n"
      "  top-collisions <dump.jsonl> [-k N]   receivers losing most to collisions\n"
      "  timeline <dump.jsonl> --node N       one node's events, slot by slot\n"
      "  packet <dump.jsonl> <id>             one packet's retained lifecycle\n"
      "  check <dump.jsonl>                   self-consistency audit (exit 1 on violation)\n"
      "  perfetto <dump.jsonl> [--out F] [--slot-us X]\n"
      "                                       convert to trace-event JSON (ui.perfetto.dev)\n"
      "  record [--out F] [--slots N] [--nodes N] [--degree D] [--rate R]\n"
      "         [--seed S] [--capacity C]     run a built-in scenario, dump its ring\n";
  return 2;
}

std::string node_name(std::uint32_t node) {
  return node == FlightEvent::kNoNode ? std::string("-") : std::to_string(node);
}

/// Parses `--flag value` / `-k value` style options after the dump path.
struct Args {
  std::vector<std::string> positional;
  bool get(const std::string& flag, std::string& out) const {
    for (std::size_t i = 0; i + 1 < raw.size(); ++i) {
      if (raw[i] == flag) {
        out = raw[i + 1];
        return true;
      }
    }
    return false;
  }
  std::uint64_t get_u64(const std::string& flag, std::uint64_t fallback) const {
    std::string v;
    return get(flag, v) ? std::strtoull(v.c_str(), nullptr, 10) : fallback;
  }
  double get_f64(const std::string& flag, double fallback) const {
    std::string v;
    return get(flag, v) ? std::strtod(v.c_str(), nullptr) : fallback;
  }
  std::vector<std::string> raw;
};

Args parse_args(int argc, char** argv, int first) {
  Args a;
  for (int i = first; i < argc; ++i) {
    const std::string s = argv[i];
    a.raw.push_back(s);
    if (s.rfind('-', 0) != 0) {
      a.positional.push_back(s);
    } else {
      ++i;  // skip the flag's value in the positional scan
      if (i < argc) a.raw.emplace_back(argv[i]);
    }
  }
  return a;
}

/// Loads a dump, reporting unparsable (truncated, bit-rotted) lines through
/// `parse_errors`. Analysis still runs on whatever parsed — a torn dump is
/// exactly when a post-mortem matters — but every command exits nonzero so
/// scripts never mistake a partial answer for a complete one.
FlightLog load(const std::string& path, std::size_t& parse_errors) {
  auto parsed = ttdc::obs::read_flight_jsonl_file(path);
  parse_errors = parsed.errors.size();
  if (parse_errors != 0) {
    std::cerr << "warning: " << parse_errors << " unparsable line(s) skipped\n";
  }
  return FlightLog(std::move(parsed.events));
}

void print_event(const FlightEvent& e) {
  std::cout << "  slot " << e.slot << "  " << ttdc::obs::flight_kind_name(e.kind)
            << "  packet=" << e.packet_id << " node=" << node_name(e.node)
            << " peer=" << node_name(e.peer);
  if (e.aux != 0) std::cout << " aux=" << e.aux;
  if (e.kind == FlightEvent::Kind::kCollided) {
    std::cout << " interferers=[";
    for (std::size_t i = 0; i < e.stored_interferers(); ++i) {
      if (i != 0) std::cout << ',';
      std::cout << e.interferers[i];
    }
    std::cout << ']';
    if (e.interferer_count > e.stored_interferers()) {
      std::cout << "(+" << e.interferer_count - e.stored_interferers() << " more)";
    }
  }
  std::cout << "\n";
}

int cmd_summary(const Args& args) {
  std::size_t parse_errors = 0;
  const FlightLog log = load(args.positional.at(0), parse_errors);
  std::uint64_t delivered = 0, truncated = 0, collisions = 0, tx = 0;
  for (const auto& h : log.packets()) {
    delivered += h.delivered ? 1 : 0;
    truncated += h.truncated ? 1 : 0;
    collisions += h.collisions;
    tx += h.tx_attempts;
  }
  std::cout << "events:        " << log.events().size() << "\n"
            << "packets:       " << log.packets().size() << " (" << truncated
            << " truncated by ring wrap)\n"
            << "delivered:     " << delivered << "\n"
            << "tx attempts:   " << tx << "\n"
            << "collisions:    " << collisions << "\n";
  if (!log.events().empty()) {
    std::cout << "slot range:    [" << log.events().front().slot << ", "
              << log.events().back().slot << "]\n";
  }
  const auto violations = log.self_check();
  std::cout << "consistency:   "
            << (violations.empty() ? "OK" : std::to_string(violations.size()) + " violation(s)")
            << "\n";
  return (violations.empty() && parse_errors == 0) ? 0 : 1;
}

int cmd_worst_latency(const Args& args) {
  std::size_t parse_errors = 0;
  const FlightLog log = load(args.positional.at(0), parse_errors);
  const auto k = static_cast<std::size_t>(args.get_u64("-k", 10));
  std::cout << "packet  latency  delivered@  route\n";
  for (const auto& r : log.worst_latency(k)) {
    std::cout << r.packet_id << "  " << r.latency << "  " << r.delivered_slot << "  "
              << node_name(r.origin) << " -> " << node_name(r.destination) << "\n";
  }
  return parse_errors == 0 ? 0 : 1;
}

int cmd_top_collisions(const Args& args) {
  std::size_t parse_errors = 0;
  const FlightLog log = load(args.positional.at(0), parse_errors);
  const auto k = static_cast<std::size_t>(args.get_u64("-k", 10));
  for (const auto& h : log.top_collisions(k)) {
    std::cout << "receiver " << h.receiver << ": " << h.collisions
              << " collision(s) in slots [" << h.first_slot << ", " << h.last_slot
              << "], transmitters:";
    for (const auto& [node, count] : h.transmitters) {
      std::cout << " " << node << "(x" << count << ")";
    }
    std::cout << "\n";
  }
  return parse_errors == 0 ? 0 : 1;
}

int cmd_timeline(const Args& args) {
  std::size_t parse_errors = 0;
  const FlightLog log = load(args.positional.at(0), parse_errors);
  const auto node = static_cast<std::uint32_t>(args.get_u64("--node", 0));
  for (const auto& e : log.node_timeline(node)) print_event(e);
  return parse_errors == 0 ? 0 : 1;
}

int cmd_packet(const Args& args) {
  std::size_t parse_errors = 0;
  const FlightLog log = load(args.positional.at(0), parse_errors);
  const std::uint64_t id =
      args.positional.size() > 1
          ? std::strtoull(args.positional[1].c_str(), nullptr, 10)
          : args.get_u64("--id", 0);
  const auto* h = log.packet(id);
  if (h == nullptr) {
    std::cerr << "packet " << id << " not in dump\n";
    return 1;
  }
  std::cout << "packet " << h->packet_id << ": " << node_name(h->origin) << " -> "
            << node_name(h->destination) << (h->truncated ? " (history truncated)" : "")
            << (h->delivered ? ", delivered, latency " + std::to_string(h->latency) : "")
            << "\n";
  for (const auto& e : h->events) print_event(e);
  return parse_errors == 0 ? 0 : 1;
}

int cmd_check(const Args& args) {
  auto parsed = ttdc::obs::read_flight_jsonl_file(args.positional.at(0));
  for (const auto& line : parsed.errors) std::cerr << "unparsable: " << line << "\n";
  const FlightLog log{std::move(parsed.events)};
  const auto violations = log.self_check();
  for (const auto& v : violations) std::cout << v << "\n";
  if (violations.empty() && parsed.errors.empty()) {
    std::cout << "OK: " << log.events().size() << " events, " << log.packets().size()
              << " packets, self-consistent\n";
    return 0;
  }
  return 1;
}

int cmd_perfetto(const Args& args) {
  std::size_t parse_errors = 0;
  const FlightLog log = load(args.positional.at(0), parse_errors);
  std::string out = "trace.perfetto.json";
  args.get("--out", out);
  ttdc::obs::PerfettoOptions opt;
  opt.slot_us = args.get_f64("--slot-us", opt.slot_us);
  opt.include_spans = false;  // a dump has no live profiler attached
  if (!ttdc::obs::write_perfetto_trace_file(out, log, nullptr, opt)) {
    std::cerr << "cannot write " << out << "\n";
    return 1;
  }
  std::cout << "wrote " << out << " (" << log.events().size()
            << " flight events); open in ui.perfetto.dev\n";
  return parse_errors == 0 ? 0 : 1;
}

// A deterministic miniature of the E-series deployments: duty-cycled
// schedule from the best cover-free plan, random bounded-degree graph,
// Bernoulli traffic — with the flight recorder armed.
int cmd_record(const Args& args) {
  using namespace ttdc;
  const auto nodes = static_cast<std::size_t>(args.get_u64("--nodes", 30));
  const auto degree = static_cast<std::size_t>(args.get_u64("--degree", 3));
  const double rate = args.get_f64("--rate", 0.02);
  const std::uint64_t seed = args.get_u64("--seed", 7);
  const auto capacity = static_cast<std::size_t>(args.get_u64("--capacity", 1 << 16));
  std::string out = "flight.jsonl";
  args.get("--out", out);

  const core::Schedule base =
      core::non_sleeping_from_family(comb::build_plan(comb::best_plan(nodes, degree), nodes));
  const core::Schedule duty = core::construct_duty_cycled(base, degree, 4, 8);
  const std::uint64_t slots = args.get_u64("--slots", 20 * duty.frame_length());

  util::Xoshiro256 rng(seed);
  const net::Graph g = net::random_bounded_degree_graph(nodes, degree, 2 * nodes, rng);
  sim::DutyCycledScheduleMac mac(duty);
  sim::BernoulliTraffic traffic(nodes, rate);
  obs::FlightRecorder recorder(capacity);
  sim::SimConfig config;
  config.seed = seed;
  config.recorder = &recorder;
  sim::Simulator sim(g, mac, traffic, config);
  sim.run(slots);

  const auto events = recorder.events();
  if (!obs::write_flight_jsonl_file(out, events)) {
    std::cerr << "cannot write " << out << "\n";
    return 1;
  }
  std::cout << "wrote " << out << ": " << events.size() << " events ("
            << recorder.seen() << " seen" << (recorder.wrapped() ? ", ring wrapped" : "")
            << "), " << slots << " slots, n=" << nodes << " D=" << degree
            << " L=" << duty.frame_length() << "\n"
            << "delivered " << sim.stats().delivered << "/" << sim.stats().generated
            << ", collisions " << sim.stats().collisions << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args = parse_args(argc, argv, 2);
  try {
    if (cmd == "record") return cmd_record(args);
    if (args.positional.empty()) return usage();
    if (cmd == "summary") return cmd_summary(args);
    if (cmd == "worst-latency") return cmd_worst_latency(args);
    if (cmd == "top-collisions") return cmd_top_collisions(args);
    if (cmd == "timeline") return cmd_timeline(args);
    if (cmd == "packet") return cmd_packet(args);
    if (cmd == "check") return cmd_check(args);
    if (cmd == "perfetto") return cmd_perfetto(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
