#include "scan.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

namespace ttdc::lint {

namespace fs = std::filesystem;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_source_file(const std::string& path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h") || ends_with(path, ".hh") ||
         ends_with(path, ".cpp") || ends_with(path, ".cc");
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool load_config_file(const std::string& config_path, Config* out, std::string* error) {
  std::ifstream in(config_path);
  if (!in) {
    *out = default_config();
    return true;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!parse_config(buf.str(), out, error)) {
    *error = config_path + ": " + *error;
    return false;
  }
  return true;
}

std::vector<FileContent> collect_files(const std::string& root, const Config& config) {
  std::vector<FileContent> files;
  const fs::path base(root);
  for (const std::string& top : config.roots) {
    const fs::path dir = base / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      std::string rel = fs::relative(entry.path(), base).generic_string();
      if (!is_source_file(rel)) continue;
      const bool excluded =
          std::any_of(config.exclude.begin(), config.exclude.end(),
                      [&](const std::string& p) { return rel.compare(0, p.size(), p) == 0; });
      if (excluded) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      files.push_back(FileContent{std::move(rel), buf.str()});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const FileContent& a, const FileContent& b) { return a.path < b.path; });
  return files;
}

int print_report(const std::vector<Finding>& findings, const Config& config,
                 const std::vector<FileContent>& files, std::ostream& out) {
  std::map<std::string, const std::string*> texts;
  for (const FileContent& f : files) texts.emplace(f.path, &f.text);

  std::size_t blocking = 0, suppressed = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++suppressed;
      continue;
    }
    ++blocking;
    out << f.file << ":" << f.line << ":" << f.col << ": [" << f.rule << "] " << f.message
        << "\n";
    // The offending source line, when we have the file.
    const auto it = texts.find(f.file);
    if (it != texts.end() && f.line > 0) {
      std::istringstream in(*it->second);
      std::string line;
      for (std::size_t i = 0; i < f.line && std::getline(in, line); ++i) {
      }
      out << "    | " << line << "\n";
    }
  }
  for (const Suppression& s : config.suppressions) {
    if (!s.used) {
      out << ".ttdc-lint.toml: warning: unused suppression (" << s.rule << " in " << s.file
          << "): rule no longer fires there — delete the entry\n";
    }
  }
  out << "ttdc-lint: " << blocking << " finding" << (blocking == 1 ? "" : "s") << ", "
      << suppressed << " suppressed (with reasons), " << files.size() << " files scanned\n";
  return blocking == 0 ? 0 : 1;
}

void write_sarif(const std::vector<Finding>& findings, std::ostream& out) {
  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
         "Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\"name\": \"ttdc-lint\", \"informationUri\": "
         "\"DESIGN.md\", \"rules\": [\n";
  const auto& catalog = rule_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    out << "      {\"id\": \"" << catalog[i].id << "\", \"shortDescription\": {\"text\": \""
        << json_escape(catalog[i].summary) << "\"}}" << (i + 1 < catalog.size() ? "," : "")
        << "\n";
  }
  out << "    ]}},\n"
      << "    \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "      {\"ruleId\": \"" << f.rule << "\", \"level\": \""
        << (f.suppressed ? "note" : "error") << "\", \"message\": {\"text\": \""
        << json_escape(f.message) << "\"}, \"locations\": [{\"physicalLocation\": "
        << "{\"artifactLocation\": {\"uri\": \"" << json_escape(f.file)
        << "\"}, \"region\": {\"startLine\": " << (f.line == 0 ? 1 : f.line)
        << ", \"startColumn\": " << (f.col == 0 ? 1 : f.col) << "}}}]";
    if (f.suppressed) {
      out << ", \"suppressions\": [{\"kind\": \"external\", \"justification\": \""
          << json_escape(f.suppress_reason) << "\"}]";
    }
    out << "}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "    ]\n  }]\n}\n";
}

}  // namespace ttdc::lint
