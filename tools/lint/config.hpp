// ttdc-lint configuration: a TOML subset parser (tables, arrays of tables,
// string/bool/int/string-array values — all .ttdc-lint.toml needs, no
// external dependency) and the resolved Config the rule engine consumes.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace ttdc::lint {

/// One [[suppress]] entry. `reason` is REQUIRED non-empty: the PR 3
/// disposition workflow ("fix or suppress with a written reason"), enforced
/// by the parser rather than by review.
struct Suppression {
  std::string rule;
  std::string file;            // repo-relative path, exact match
  std::size_t line = 0;        // optional: 0 = any line in the file
  std::string reason;
  mutable bool used = false;   // set by the engine; unused entries warn
};

/// Per-rule knobs. Path semantics: a rule applies to a file iff the path
/// starts with one of `paths` (empty = everywhere in the scan roots) and
/// does NOT start with any of `allow` (the rule-specific exemption list,
/// e.g. obs/bench timing for DET-WALLCLOCK).
struct RuleConfig {
  bool enabled = true;
  std::vector<std::string> paths;
  std::vector<std::string> allow;
  /// OBS-PROF-SCOPE only: functions that must contain TTDC_PROF_SCOPE,
  /// as "Class::name" or a free "name".
  std::vector<std::string> hot_path;
};

struct Config {
  std::vector<std::string> roots = {"src", "tools", "bench"};
  std::vector<std::string> exclude;
  std::map<std::string, RuleConfig> rules;  // keyed by rule id
  std::vector<Suppression> suppressions;

  /// Rule config with built-in defaults applied for unknown ids.
  [[nodiscard]] const RuleConfig& rule(const std::string& id) const;
  /// True iff `id` is enabled and `path` is inside the rule's paths and
  /// outside its allow list.
  [[nodiscard]] bool applies(const std::string& id, const std::string& path) const;
  /// Marks a matching suppression used and returns it, else nullptr.
  [[nodiscard]] const Suppression* match_suppression(const std::string& rule_id,
                                                     const std::string& file,
                                                     std::size_t line) const;
};

/// Built-in defaults (what an absent .ttdc-lint.toml means). The checked-in
/// config restates these explicitly so the catalog is readable in one place.
[[nodiscard]] Config default_config();

/// Parses the TOML subset on top of default_config(). On error returns
/// false and sets *error to "line N: what". Enforces: every [[suppress]]
/// has rule, file, and a NON-EMPTY reason; every suppression and [rule.X]
/// section names a known rule id.
[[nodiscard]] bool parse_config(const std::string& text, Config* out, std::string* error);

}  // namespace ttdc::lint
