// The ttdc-lint rule catalog (DESIGN.md §14). Each rule encodes one repo
// invariant; see lint.hpp for why these are token-pattern heuristics and
// not a clang AST walk. Every rule has a violating and a clean fixture in
// tests/lint_fixtures/ — add both when adding a rule.
#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "config.hpp"
#include "lexer.hpp"
#include "lint.hpp"

namespace ttdc::lint {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_header(const std::string& path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h") || ends_with(path, ".hh");
}

void add_finding(std::vector<Finding>& out, const std::string& rule, const std::string& file,
                 const Token& at, std::string message) {
  out.push_back(Finding{rule, file, at.line, at.col, std::move(message), false, {}});
}

/// Token preceded by '.' or '->' (a member access, not the global entity
/// the DET rules target).
bool is_member_access(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return false;
  if (toks[i - 1].text == ".") return true;
  return i >= 2 && toks[i - 1].text == ">" && toks[i - 2].text == "-" &&
         toks[i - 1].col == toks[i - 2].col + 1;
}

/// toks[i] looks like the *name being declared* rather than a call: the
/// previous token is an identifier (a type name, as in `std::uint64_t rand()`)
/// that is not a statement keyword (`return rand()` is still a call).
bool is_declaration_context(const std::vector<Token>& toks, std::size_t i) {
  static const std::set<std::string> kStmtKeywords = {
      "return", "case",   "throw", "new",    "delete", "sizeof",
      "else",   "do",     "goto",  "co_return", "co_yield", "co_await"};
  if (i == 0) return false;
  const Token& prev = toks[i - 1];
  return prev.kind == TokKind::kIdent && kStmtKeywords.count(prev.text) == 0;
}

/// toks[i] and toks[i+1] are the adjacent two-char operator `ab`.
bool is_adjacent_pair(const std::vector<Token>& toks, std::size_t i, char a, char b) {
  return i + 1 < toks.size() && toks[i].text.size() == 1 && toks[i].text[0] == a &&
         toks[i + 1].text.size() == 1 && toks[i + 1].text[0] == b &&
         toks[i].line == toks[i + 1].line && toks[i + 1].col == toks[i].col + 1;
}

// ---------------------------------------------------------------------------
// DET-WALLCLOCK / DET-RAND: banned-identifier rules.

void rule_wallclock(const std::string& path, const LexedFile& lf, std::vector<Finding>& out) {
  static const std::set<std::string> kAlways = {
      "system_clock", "gettimeofday", "localtime",   "gmtime", "mktime",
      "localtime_r",  "gmtime_r",     "timespec_get"};
  static const std::set<std::string> kCallOnly = {"time", "clock"};
  const auto& toks = lf.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || is_member_access(toks, i)) continue;
    const std::string& t = toks[i].text;
    const bool banned =
        kAlways.count(t) != 0 ||
        (kCallOnly.count(t) != 0 && i + 1 < toks.size() && toks[i + 1].text == "(" &&
         !is_declaration_context(toks, i));
    if (banned) {
      add_finding(out, "DET-WALLCLOCK", path, toks[i],
                  "wall-clock read '" + t +
                      "' outside obs/bench timing: sim state must be a pure function of "
                      "seeds and config (bit-identical resume would break)");
    }
  }
}

void rule_rand(const std::string& path, const LexedFile& lf, std::vector<Finding>& out) {
  static const std::set<std::string> kAlways = {"random_device", "rand_r", "drand48",
                                                "srand48", "mt19937", "mt19937_64"};
  static const std::set<std::string> kCallOnly = {"rand", "srand"};
  const auto& toks = lf.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || is_member_access(toks, i)) continue;
    const std::string& t = toks[i].text;
    const bool banned =
        kAlways.count(t) != 0 ||
        (kCallOnly.count(t) != 0 && i + 1 < toks.size() && toks[i + 1].text == "(" &&
         !is_declaration_context(toks, i));
    if (banned) {
      add_finding(out, "DET-RAND", path, toks[i],
                  "unseeded/global randomness '" + t +
                      "' outside the seed plumbing (util/rng): every draw must descend "
                      "from the campaign seed via SplitMix64/Xoshiro256 child streams");
    }
  }
}

// ---------------------------------------------------------------------------
// DET-UNORDERED-ITER: iteration over unordered containers.

/// Collects names declared as std::unordered_map/unordered_set in one file
/// (locals, members, params — all of them: iteration order of any of these
/// escaping into a fold or output is the hazard).
std::vector<std::string> unordered_decl_names(const LexedFile& lf) {
  std::vector<std::string> names;
  const auto& toks = lf.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    if (t != "unordered_map" && t != "unordered_set" && t != "unordered_multimap" &&
        t != "unordered_multiset") {
      continue;
    }
    if (i + 1 >= toks.size() || toks[i + 1].text != "<") continue;  // e.g. an #include
    const std::size_t close = find_matching(toks, i + 1);
    if (close >= toks.size()) continue;
    std::size_t j = close + 1;
    while (j < toks.size() && (toks[j].text == "&" || toks[j].text == "*" ||
                               toks[j].text == "const")) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != TokKind::kIdent) continue;
    // `type name(` is a function declaration returning the container, not a
    // variable of it.
    if (j + 1 < toks.size() && toks[j + 1].text == "(") continue;
    names.push_back(toks[j].text);
  }
  return names;
}

void rule_unordered_iter(const std::string& path, const LexedFile& lf,
                         const std::set<std::string>& names, std::vector<Finding>& out) {
  const auto& toks = lf.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || names.count(toks[i].text) == 0) continue;
    // Range-for:  for (... : NAME)
    if (i > 0 && toks[i - 1].text == ":" && i + 1 < toks.size() && toks[i + 1].text == ")") {
      add_finding(out, "DET-UNORDERED-ITER", path, toks[i],
                  "range-for over unordered container '" + toks[i].text +
                      "': iteration order is implementation-defined and varies with "
                      "rehash history — any fold/output over it is nondeterministic");
      continue;
    }
    // Explicit iterators: NAME.begin() / cbegin / rbegin.
    if (i + 3 < toks.size() && toks[i + 1].text == "." &&
        (toks[i + 2].text == "begin" || toks[i + 2].text == "cbegin" ||
         toks[i + 2].text == "rbegin") &&
        toks[i + 3].text == "(") {
      add_finding(out, "DET-UNORDERED-ITER", path, toks[i],
                  "iterator over unordered container '" + toks[i].text +
                      "' (." + toks[i + 2].text +
                      "()): order-sensitive unless the result is re-sorted before it "
                      "can escape");
    }
  }
}

// ---------------------------------------------------------------------------
// DET-OMP-FP-REDUCTION: float accumulation inside OpenMP regions.

/// Names declared with floating-point (element) type in this file.
std::set<std::string> fp_decl_names(const LexedFile& lf) {
  std::set<std::string> names;
  const auto& toks = lf.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    if (t == "double" || t == "float") {
      std::size_t j = i + 1;
      while (j < toks.size() && (toks[j].text == "&" || toks[j].text == "*")) ++j;
      if (j < toks.size() && toks[j].kind == TokKind::kIdent &&
          !(j + 1 < toks.size() && toks[j + 1].text == "(")) {
        names.insert(toks[j].text);
      }
    } else if (t == "vector" || t == "array" || t == "span" || t == "valarray") {
      if (i + 1 >= toks.size() || toks[i + 1].text != "<") continue;
      const std::size_t close = find_matching(toks, i + 1);
      if (close >= toks.size()) continue;
      bool fp = false;
      for (std::size_t k = i + 2; k < close; ++k) {
        if (toks[k].text == "double" || toks[k].text == "float") fp = true;
      }
      if (!fp) continue;
      std::size_t j = close + 1;
      while (j < toks.size() && (toks[j].text == "&" || toks[j].text == "*" ||
                                 toks[j].text == "const")) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == TokKind::kIdent &&
          !(j + 1 < toks.size() && toks[j + 1].text == "(")) {
        names.insert(toks[j].text);
      }
    }
  }
  return names;
}

/// [start, end) token range of the statement/block governed by the pragma
/// whose tokens begin at `i` (the '#').
std::pair<std::size_t, std::size_t> omp_region_extent(const std::vector<Token>& toks,
                                                      std::size_t i) {
  const std::size_t pragma_line = toks[i].line;
  std::size_t j = i;
  while (j < toks.size() && toks[j].line == pragma_line) ++j;  // skip the pragma itself
  std::size_t depth = 0;
  for (std::size_t k = j; k < toks.size(); ++k) {
    const std::string& t = toks[k].text;
    if (t == "(") {
      ++depth;
    } else if (t == ")") {
      if (depth > 0) --depth;
    } else if (t == "{" && depth == 0) {
      const std::size_t close = find_matching(toks, k);
      return {j, close < toks.size() ? close + 1 : toks.size()};
    } else if (t == ";" && depth == 0) {
      return {j, k + 1};
    } else if (t == "#") {
      // A nested pragma (e.g. `omp for` inside `omp parallel`) before any
      // brace: keep scanning; its statement is part of this region.
      while (k + 1 < toks.size() && toks[k + 1].line == toks[k].line) ++k;
    }
  }
  return {j, toks.size()};
}

void rule_omp_fp_reduction(const std::string& path, const LexedFile& lf,
                           std::vector<Finding>& out) {
  const std::set<std::string> fp = fp_decl_names(lf);
  const auto& toks = lf.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text != "#" || toks[i + 1].text != "pragma" || toks[i + 2].text != "omp") {
      continue;
    }
    // Only parallel-executing regions; `#pragma omp critical` alone (reached
    // from this scan) is still inside some parallel region in real code, and
    // scanning it separately would double-report.
    bool parallel = false;
    for (std::size_t k = i + 3; k < toks.size() && toks[k].line == toks[i].line; ++k) {
      if (toks[k].text == "parallel") parallel = true;
      // reduction(+ : x) on the pragma itself, with x floating-point.
      if (toks[k].text == "reduction" && k + 1 < toks.size() && toks[k + 1].text == "(") {
        const std::size_t close = find_matching(toks, k + 1);
        for (std::size_t m = k + 2; m < close && m < toks.size(); ++m) {
          if (toks[m].kind == TokKind::kIdent && fp.count(toks[m].text) != 0) {
            add_finding(out, "DET-OMP-FP-REDUCTION", path, toks[m],
                        "OpenMP reduction over floating-point '" + toks[m].text +
                            "': combination order is unspecified, so the sum is not "
                            "bit-stable across runs/worker counts — use a serial "
                            "index-order fold (util::parallel_sum pattern is integer-only)");
          }
        }
      }
    }
    if (!parallel) continue;
    const auto [begin, end] = omp_region_extent(toks, i);
    for (std::size_t k = begin; k + 2 < end; ++k) {
      if (toks[k].kind != TokKind::kIdent || fp.count(toks[k].text) == 0) continue;
      std::size_t op = k + 1;
      if (op < end && toks[op].text == "[") {
        const std::size_t close = find_matching(toks, op);
        if (close >= end) continue;
        op = close + 1;
      }
      if (op + 1 < end &&
          (is_adjacent_pair(toks, op, '+', '=') || is_adjacent_pair(toks, op, '-', '='))) {
        add_finding(out, "DET-OMP-FP-REDUCTION", path, toks[k],
                    "floating-point '" + std::string(1, toks[op].text[0]) +
                        "=' on '" + toks[k].text +
                        "' inside an OpenMP region: thread-completion-order fold breaks "
                        "the bit-identical-aggregates guarantee; accumulate per-shard "
                        "and fold serially in index order");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CON-RAW-ASSERT.

void rule_raw_assert(const std::string& path, const LexedFile& lf, std::vector<Finding>& out) {
  const auto& toks = lf.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent && toks[i].text == "assert" &&
        toks[i + 1].text == "(" && !is_member_access(toks, i)) {
      add_finding(out, "CON-RAW-ASSERT", path, toks[i],
                  "raw assert(): use TTDC_ASSERT (always on) or TTDC_DCHECK (contract "
                  "builds) so violations report through the check layer's "
                  "FailureAction and carry a streamed message (DESIGN.md §9)");
    }
  }
}

// ---------------------------------------------------------------------------
// HYG rules.

void rule_pragma_once(const std::string& path, const LexedFile& lf, std::vector<Finding>& out) {
  if (!is_header(path) || lf.tokens.empty()) return;
  if (!match_seq(lf.tokens, 0, {"#", "pragma", "once"})) {
    add_finding(out, "HYG-PRAGMA-ONCE", path, lf.tokens[0],
                "header does not open with '#pragma once' (after comments): repo headers "
                "use pragma-once guards exclusively");
  }
}

void rule_using_namespace(const std::string& path, const LexedFile& lf,
                          std::vector<Finding>& out) {
  if (!is_header(path)) return;
  const auto& toks = lf.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text == "using" && toks[i + 1].text == "namespace") {
      add_finding(out, "HYG-USING-NAMESPACE", path, toks[i],
                  "'using namespace' in a header leaks into every includer; "
                  "use explicit qualification or a namespace alias");
    }
  }
}

void rule_endl(const std::string& path, const LexedFile& lf, std::vector<Finding>& out) {
  const auto& toks = lf.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent && toks[i].text == "endl" &&
        !is_member_access(toks, i)) {
      add_finding(out, "HYG-ENDL", path, toks[i],
                  "std::endl flushes the stream on every use; write '\\n' and flush "
                  "explicitly where needed (hot-path I/O discipline)");
    }
  }
}

// ---------------------------------------------------------------------------
// Shared member-function scanner for CON-MUTATOR-DCHECK and OBS-PROF-SCOPE.

struct BodyRange {
  bool found = false;
  std::size_t begin = 0, end = 0;  // token range, exclusive
};

/// After the parameter list's ')', walk the trailer (const, noexcept,
/// override, trailing return, ctor init list) to the body '{', a ';'
/// (declaration), or '= default/delete'. Returns the body range if any and
/// advances *cursor past the construct. `saw_const` reports a cv-qualifier
/// in the trailer.
BodyRange parse_after_params(const std::vector<Token>& toks, std::size_t close_paren,
                             std::size_t* cursor, bool* saw_const) {
  BodyRange body;
  *saw_const = false;
  std::size_t j = close_paren + 1;
  while (j < toks.size()) {
    const std::string& t = toks[j].text;
    if (t == "{") {
      const std::size_t end = find_matching(toks, j);
      body.found = true;
      body.begin = j + 1;
      body.end = end < toks.size() ? end : toks.size();
      *cursor = body.end + 1;
      return body;
    }
    if (t == ";") {
      *cursor = j + 1;
      return body;
    }
    if (t == "=") {  // = default / = delete / = 0
      while (j < toks.size() && toks[j].text != ";") ++j;
      *cursor = j + 1;
      return body;
    }
    if (t == "const") *saw_const = true;
    if (t == "(") {  // noexcept(...) or a ctor init-list initializer
      const std::size_t m = find_matching(toks, j);
      j = m < toks.size() ? m + 1 : toks.size();
      continue;
    }
    ++j;
  }
  *cursor = j;
  return body;
}

bool range_has_ident(const std::vector<Token>& toks, std::size_t begin, std::size_t end,
                     const std::set<std::string>& names) {
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent && names.count(toks[i].text) != 0) return true;
  }
  return false;
}

const std::set<std::string> kCheckMacros = {"TTDC_ASSERT", "TTDC_DCHECK", "TTDC_CHECK_BOUNDS",
                                            "audit_invariants"};

/// Finds `Class::method(...)` definitions in a file and returns each body.
std::vector<std::pair<Token, BodyRange>> find_out_of_line(const LexedFile& lf,
                                                          const std::string& klass,
                                                          const std::string& method) {
  std::vector<std::pair<Token, BodyRange>> result;
  const auto& toks = lf.tokens;
  for (std::size_t i = 0; i + 4 < toks.size(); ++i) {
    if (toks[i].text != klass || !match_seq(toks, i + 1, {":", ":"}) ||
        toks[i + 3].text != method || toks[i + 4].text != "(") {
      continue;
    }
    const std::size_t close = find_matching(toks, i + 4);
    if (close >= toks.size()) continue;
    std::size_t cursor = 0;
    bool saw_const = false;
    const BodyRange body = parse_after_params(toks, close, &cursor, &saw_const);
    if (body.found) result.emplace_back(toks[i + 3], body);
    i = cursor > i ? cursor - 1 : i;
  }
  return result;
}

struct MemberFn {
  std::string name;
  Token at;
  bool is_const = false;
  bool is_static = false;
  BodyRange body;  // !found => declaration only
};

struct ClassInfo {
  std::string name;
  bool audited = false;  // declares audit_invariants()
  std::vector<MemberFn> public_fns;
};

const std::set<std::string> kNotMethodNames = {
    "if",     "for",    "while",   "switch", "return", "sizeof",   "decltype",
    "alignof", "static_assert", "operator", "catch",  "new",    "delete",   "throw"};

std::vector<ClassInfo> scan_classes(const LexedFile& lf) {
  std::vector<ClassInfo> classes;
  const auto& toks = lf.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const std::string& kw = toks[i].text;
    if (kw != "class" && kw != "struct") continue;
    if (i > 0 && (toks[i - 1].text == "enum" || toks[i - 1].text == "friend" ||
                  toks[i - 1].text == "<" || toks[i - 1].text == ",")) {
      continue;  // enum class / friend decl / template parameter
    }
    if (toks[i + 1].kind != TokKind::kIdent) continue;
    ClassInfo ci;
    ci.name = toks[i + 1].text;
    // Walk to the class body '{' (skipping base-clause) or ';' (fwd decl).
    std::size_t j = i + 2;
    while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") ++j;
    if (j >= toks.size() || toks[j].text == ";") continue;
    const std::size_t body_end = find_matching(toks, j);
    if (body_end >= toks.size()) continue;

    bool is_public = kw == "struct";
    bool pending_static = false;
    std::size_t k = j + 1;
    while (k < body_end) {
      const Token& t = toks[k];
      if (t.text == "public" || t.text == "private" || t.text == "protected") {
        is_public = t.text == "public";
        pending_static = false;
        ++k;
        continue;
      }
      if (t.text == "static") {
        pending_static = true;
        ++k;
        continue;
      }
      if (t.text == ";") {
        pending_static = false;
        ++k;
        continue;
      }
      if (t.text == "{") {  // nested aggregate/enum body without a method header
        const std::size_t end = find_matching(toks, k);
        k = end < toks.size() ? end + 1 : body_end;
        continue;
      }
      if (t.kind == TokKind::kIdent && k + 1 < body_end && toks[k + 1].text == "(" &&
          kNotMethodNames.count(t.text) == 0) {
        const bool is_ctor = t.text == ci.name;
        const bool is_dtor = k > 0 && toks[k - 1].text == "~";
        const std::size_t close = find_matching(toks, k + 1);
        if (close >= body_end) {
          ++k;
          continue;
        }
        std::size_t cursor = close + 1;
        bool saw_const = false;
        const BodyRange body = parse_after_params(toks, close, &cursor, &saw_const);
        if (t.text == "audit_invariants") ci.audited = true;
        if (is_public && !is_ctor && !is_dtor) {
          MemberFn fn;
          fn.name = t.text;
          fn.at = t;
          fn.is_const = saw_const;
          fn.is_static = pending_static;
          fn.body = body;
          ci.public_fns.push_back(std::move(fn));
        }
        pending_static = false;
        k = cursor;
        continue;
      }
      ++k;
    }
    classes.push_back(std::move(ci));
  }
  return classes;
}

void rule_mutator_dcheck(const std::string& path, const LexedFile& lf,
                         const std::map<std::string, LexedFile>& lexed,
                         const Config& cfg, std::vector<Finding>& out) {
  if (!is_header(path)) return;
  // Sibling translation unit: src/foo/bar.hpp -> src/foo/bar.cpp.
  const LexedFile* sibling = nullptr;
  for (const std::string ext : {".hpp", ".h"}) {
    if (ends_with(path, ext)) {
      const std::string cpp = path.substr(0, path.size() - ext.size()) + ".cpp";
      const auto it = lexed.find(cpp);
      if (it != lexed.end()) sibling = &it->second;
    }
  }
  for (const ClassInfo& ci : scan_classes(lf)) {
    if (!ci.audited) continue;
    for (const MemberFn& fn : ci.public_fns) {
      if (fn.is_const || fn.is_static || fn.name == "audit_invariants") continue;
      bool checked = false;
      bool has_definition = false;
      Token at = fn.at;
      std::string def_file = path;
      if (fn.body.found) {
        has_definition = true;
        checked = range_has_ident(lf.tokens, fn.body.begin, fn.body.end, kCheckMacros);
      } else if (sibling != nullptr) {
        for (const auto& [tok, body] : find_out_of_line(*sibling, ci.name, fn.name)) {
          has_definition = true;
          if (range_has_ident(sibling->tokens, body.begin, body.end, kCheckMacros)) {
            checked = true;
          } else {
            at = tok;  // report at the offending definition
          }
        }
        if (has_definition && !checked) {
          for (const std::string ext : {".hpp", ".h"}) {
            if (ends_with(path, ext)) def_file = path.substr(0, path.size() - ext.size()) + ".cpp";
          }
        }
      }
      // Declaration-only with no visible definition: nothing to judge.
      if (!has_definition || checked) continue;
      if (!cfg.applies("CON-MUTATOR-DCHECK", def_file)) continue;
      add_finding(out, "CON-MUTATOR-DCHECK", def_file, at,
                  "public mutator '" + ci.name + "::" + fn.name +
                      "' of an audited class (declares audit_invariants()) contains no "
                      "TTDC_ASSERT/TTDC_DCHECK: mutations of contract-carrying state "
                      "must check or re-audit what they touch (DESIGN.md §9)");
    }
  }
}

// ---------------------------------------------------------------------------
// OBS-PROF-SCOPE: declared hot-path functions must open a profiling span.

void rule_prof_scope(const Config& cfg, const std::map<std::string, LexedFile>& lexed,
                     std::vector<Finding>& out) {
  static const std::set<std::string> kScope = {"TTDC_PROF_SCOPE"};
  for (const std::string& entry : cfg.rule("OBS-PROF-SCOPE").hot_path) {
    const std::size_t sep = entry.find("::");
    const std::string klass = sep == std::string::npos ? "" : entry.substr(0, sep);
    const std::string fn = sep == std::string::npos ? entry : entry.substr(sep + 2);
    bool any_definition = false;
    for (const auto& [path, lf] : lexed) {
      if (!klass.empty()) {
        for (const auto& [tok, body] : find_out_of_line(lf, klass, fn)) {
          any_definition = true;
          if (!range_has_ident(lf.tokens, body.begin, body.end, kScope)) {
            add_finding(out, "OBS-PROF-SCOPE", path, tok,
                        "hot-path function '" + entry +
                            "' has no TTDC_PROF_SCOPE: the span tree (DESIGN.md §11) "
                            "must cover every declared hot path or profiles silently "
                            "lose attribution");
          }
        }
        // Inline definitions inside the class body.
        if (is_header(path)) {
          for (const ClassInfo& ci : scan_classes(lf)) {
            if (ci.name != klass) continue;
            for (const MemberFn& m : ci.public_fns) {
              if (m.name != fn || !m.body.found) continue;
              any_definition = true;
              if (!range_has_ident(lf.tokens, m.body.begin, m.body.end, kScope)) {
                add_finding(out, "OBS-PROF-SCOPE", path, m.at,
                            "hot-path function '" + entry + "' has no TTDC_PROF_SCOPE");
              }
            }
          }
        }
      } else {
        // Free function: ident fn '(' ... ')' ... '{' not preceded by ::/./->
        const auto& toks = lf.tokens;
        for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
          if (toks[i].kind != TokKind::kIdent || toks[i].text != fn ||
              toks[i + 1].text != "(" || is_member_access(toks, i)) {
            continue;
          }
          if (i > 0 && toks[i - 1].text == ":") continue;  // qualified: SomeClass::fn
          const std::size_t close = find_matching(toks, i + 1);
          if (close >= toks.size()) continue;
          std::size_t cursor = 0;
          bool saw_const = false;
          const BodyRange body = parse_after_params(toks, close, &cursor, &saw_const);
          if (!body.found) continue;
          any_definition = true;
          if (!range_has_ident(toks, body.begin, body.end, kScope)) {
            add_finding(out, "OBS-PROF-SCOPE", path, toks[i],
                        "hot-path function '" + entry + "' has no TTDC_PROF_SCOPE");
          }
        }
      }
    }
    if (!any_definition) {
      // The drift catch: a rename must update the hot-path list, not
      // silently drop coverage.
      out.push_back(Finding{"OBS-PROF-SCOPE", ".ttdc-lint.toml", 1, 1,
                            "hot-path entry '" + entry +
                                "' matches no function definition in the scan set: "
                                "renamed or removed? update [rule.OBS-PROF-SCOPE].hot_path",
                            false,
                            {}});
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"DET-WALLCLOCK", "no wall-clock reads outside obs/bench timing"},
      {"DET-RAND", "no unseeded randomness outside the util/rng seed plumbing"},
      {"DET-UNORDERED-ITER", "no iteration over unordered containers on determinism paths"},
      {"DET-OMP-FP-REDUCTION", "no floating-point accumulation inside OpenMP regions"},
      {"CON-MUTATOR-DCHECK", "public mutators of audited classes must carry contract checks"},
      {"CON-RAW-ASSERT", "no raw assert(); use the TTDC check layer"},
      {"OBS-PROF-SCOPE", "declared hot-path functions must open TTDC_PROF_SCOPE spans"},
      {"HYG-PRAGMA-ONCE", "headers open with #pragma once"},
      {"HYG-USING-NAMESPACE", "no using-namespace in headers"},
      {"HYG-ENDL", "no std::endl on hot paths"},
  };
  return kCatalog;
}

std::vector<Finding> run_rules(const Config& cfg, const std::vector<FileContent>& files) {
  std::map<std::string, LexedFile> lexed;
  for (const FileContent& f : files) lexed.emplace(f.path, lex(f.text));

  // Unordered-container names are collected from the file itself plus every
  // header in the set: a member declared in simulator.hpp may be iterated in
  // simulator.cpp.
  std::set<std::string> header_unordered;
  for (const auto& [path, lf] : lexed) {
    if (!is_header(path)) continue;
    for (const std::string& n : unordered_decl_names(lf)) header_unordered.insert(n);
  }

  std::vector<Finding> findings;
  for (const auto& [path, lf] : lexed) {
    if (cfg.applies("DET-WALLCLOCK", path)) rule_wallclock(path, lf, findings);
    if (cfg.applies("DET-RAND", path)) rule_rand(path, lf, findings);
    if (cfg.applies("DET-UNORDERED-ITER", path)) {
      std::set<std::string> names = header_unordered;
      for (const std::string& n : unordered_decl_names(lf)) names.insert(n);
      rule_unordered_iter(path, lf, names, findings);
    }
    if (cfg.applies("DET-OMP-FP-REDUCTION", path)) rule_omp_fp_reduction(path, lf, findings);
    if (cfg.applies("CON-RAW-ASSERT", path)) rule_raw_assert(path, lf, findings);
    if (cfg.applies("HYG-PRAGMA-ONCE", path)) rule_pragma_once(path, lf, findings);
    if (cfg.applies("HYG-USING-NAMESPACE", path)) rule_using_namespace(path, lf, findings);
    if (cfg.applies("HYG-ENDL", path)) rule_endl(path, lf, findings);
    if (cfg.applies("CON-MUTATOR-DCHECK", path)) {
      rule_mutator_dcheck(path, lf, lexed, cfg, findings);
    }
  }
  if (cfg.rule("OBS-PROF-SCOPE").enabled) rule_prof_scope(cfg, lexed, findings);

  for (Finding& f : findings) {
    if (const Suppression* s = cfg.match_suppression(f.rule, f.file, f.line)) {
      f.suppressed = true;
      f.suppress_reason = s->reason;
    }
  }
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.col, a.rule) < std::tie(b.file, b.line, b.col, b.rule);
  });
  return findings;
}

bool has_blocking_findings(const std::vector<Finding>& findings) {
  return std::any_of(findings.begin(), findings.end(),
                     [](const Finding& f) { return !f.suppressed; });
}

}  // namespace ttdc::lint
