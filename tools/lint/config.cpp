#include "config.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "lint.hpp"

namespace ttdc::lint {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool known_rule(const std::string& id) {
  for (const RuleInfo& r : rule_catalog()) {
    if (id == r.id) return true;
  }
  return false;
}

std::string trim(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a])) != 0) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])) != 0) --b;
  return s.substr(a, b - a);
}

/// Strips a trailing # comment (quote-aware) from a config line.
std::string strip_comment(const std::string& s) {
  bool in_str = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"' && (i == 0 || s[i - 1] != '\\')) in_str = !in_str;
    if (s[i] == '#' && !in_str) return s.substr(0, i);
  }
  return s;
}

/// A parsed scalar or string-array value.
struct Value {
  enum Kind { kString, kBool, kInt, kArray } kind = kString;
  std::string str;
  bool boolean = false;
  long integer = 0;
  std::vector<std::string> array;
};

bool parse_value(const std::string& raw, Value* out, std::string* why) {
  const std::string v = trim(raw);
  if (v.empty()) {
    *why = "missing value";
    return false;
  }
  if (v.front() == '"') {
    if (v.size() < 2 || v.back() != '"') {
      *why = "unterminated string";
      return false;
    }
    out->kind = Value::kString;
    std::string s;
    for (std::size_t i = 1; i + 1 < v.size(); ++i) {
      if (v[i] == '\\' && i + 2 < v.size()) ++i;  // keep escaped char verbatim
      s += v[i];
    }
    out->str = s;
    return true;
  }
  if (v == "true" || v == "false") {
    out->kind = Value::kBool;
    out->boolean = v == "true";
    return true;
  }
  if (v.front() == '[') {
    if (v.back() != ']') {
      *why = "unterminated array";
      return false;
    }
    out->kind = Value::kArray;
    std::string body = v.substr(1, v.size() - 2);
    std::size_t i = 0;
    while (i < body.size()) {
      while (i < body.size() && (std::isspace(static_cast<unsigned char>(body[i])) != 0 ||
                                 body[i] == ',')) {
        ++i;
      }
      if (i >= body.size()) break;
      if (body[i] != '"') {
        *why = "array elements must be strings";
        return false;
      }
      std::string s;
      ++i;
      while (i < body.size() && body[i] != '"') s += body[i], ++i;
      if (i >= body.size()) {
        *why = "unterminated string in array";
        return false;
      }
      ++i;
      out->array.push_back(s);
    }
    return true;
  }
  if (std::isdigit(static_cast<unsigned char>(v.front())) != 0) {
    out->kind = Value::kInt;
    out->integer = std::stol(v);
    return true;
  }
  *why = "unrecognized value '" + v + "'";
  return false;
}

}  // namespace

const RuleConfig& Config::rule(const std::string& id) const {
  static const RuleConfig kDefault;
  const auto it = rules.find(id);
  return it == rules.end() ? kDefault : it->second;
}

bool Config::applies(const std::string& id, const std::string& path) const {
  const RuleConfig& rc = rule(id);
  if (!rc.enabled) return false;
  if (!rc.paths.empty()) {
    const bool inside = std::any_of(rc.paths.begin(), rc.paths.end(),
                                    [&](const std::string& p) { return starts_with(path, p); });
    if (!inside) return false;
  }
  return std::none_of(rc.allow.begin(), rc.allow.end(),
                      [&](const std::string& p) { return starts_with(path, p); });
}

const Suppression* Config::match_suppression(const std::string& rule_id,
                                             const std::string& file,
                                             std::size_t line) const {
  for (const Suppression& s : suppressions) {
    if (s.rule == rule_id && s.file == file && (s.line == 0 || s.line == line)) {
      s.used = true;
      return &s;
    }
  }
  return nullptr;
}

Config default_config() {
  Config c;
  // The built-in catalog defaults; .ttdc-lint.toml restates them so the
  // policy is reviewable in one place, but an absent config means exactly
  // this.
  c.rules["DET-WALLCLOCK"].allow = {"src/obs/", "src/util/timer.hpp", "bench/", "tools/"};
  c.rules["DET-RAND"].allow = {"src/util/rng.hpp", "src/util/rng.cpp"};
  c.rules["DET-UNORDERED-ITER"].paths = {"src/"};
  c.rules["DET-OMP-FP-REDUCTION"].paths = {"src/"};
  c.rules["CON-MUTATOR-DCHECK"].paths = {"src/"};
  c.rules["CON-RAW-ASSERT"].paths = {"src/"};
  c.rules["OBS-PROF-SCOPE"];  // hot_path comes from the config file
  c.rules["HYG-PRAGMA-ONCE"];
  c.rules["HYG-USING-NAMESPACE"];
  c.rules["HYG-ENDL"].paths = {"src/"};
  return c;
}

bool parse_config(const std::string& text, Config* out, std::string* error) {
  *out = default_config();
  enum class Section { kNone, kPaths, kRule, kSuppress };
  Section section = Section::kNone;
  std::string rule_id;

  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;
  auto fail = [&](const std::string& why) {
    std::ostringstream os;
    os << "line " << lineno << ": " << why;
    *error = os.str();
    return false;
  };

  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = trim(strip_comment(raw));
    if (line.empty()) continue;

    if (starts_with(line, "[[")) {
      if (line != "[[suppress]]") return fail("unknown array-of-tables " + line);
      section = Section::kSuppress;
      out->suppressions.emplace_back();
      continue;
    }
    if (line.front() == '[') {
      if (line.back() != ']') return fail("malformed section header");
      const std::string name = trim(line.substr(1, line.size() - 2));
      if (name == "paths") {
        section = Section::kPaths;
      } else if (starts_with(name, "rule.")) {
        rule_id = name.substr(5);
        if (!known_rule(rule_id)) return fail("unknown rule id '" + rule_id + "'");
        section = Section::kRule;
      } else {
        return fail("unknown section [" + name + "]");
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return fail("expected key = value");
    const std::string key = trim(line.substr(0, eq));
    std::string value_text = trim(line.substr(eq + 1));
    // Multi-line array: accumulate until the closing bracket.
    if (!value_text.empty() && value_text.front() == '[') {
      while (value_text.back() != ']' && std::getline(in, raw)) {
        ++lineno;
        const std::string cont = trim(strip_comment(raw));
        if (cont.empty()) continue;
        value_text += " " + cont;
      }
    }
    Value value;
    std::string why;
    if (!parse_value(value_text, &value, &why)) return fail(why);

    switch (section) {
      case Section::kNone:
        return fail("key '" + key + "' outside any section");
      case Section::kPaths:
        if (key == "roots" && value.kind == Value::kArray) {
          out->roots = value.array;
        } else if (key == "exclude" && value.kind == Value::kArray) {
          out->exclude = value.array;
        } else {
          return fail("unknown [paths] key '" + key + "'");
        }
        break;
      case Section::kRule: {
        RuleConfig& rc = out->rules[rule_id];
        if (key == "enabled" && value.kind == Value::kBool) {
          rc.enabled = value.boolean;
        } else if (key == "paths" && value.kind == Value::kArray) {
          rc.paths = value.array;
        } else if (key == "allow" && value.kind == Value::kArray) {
          rc.allow = value.array;
        } else if (key == "hot_path" && value.kind == Value::kArray) {
          rc.hot_path = value.array;
        } else {
          return fail("unknown or mistyped [rule." + rule_id + "] key '" + key + "'");
        }
        break;
      }
      case Section::kSuppress: {
        Suppression& s = out->suppressions.back();
        if (key == "rule" && value.kind == Value::kString) {
          s.rule = value.str;
        } else if (key == "file" && value.kind == Value::kString) {
          s.file = value.str;
        } else if (key == "line" && value.kind == Value::kInt) {
          s.line = static_cast<std::size_t>(value.integer);
        } else if (key == "reason" && value.kind == Value::kString) {
          s.reason = value.str;
        } else {
          return fail("unknown or mistyped [[suppress]] key '" + key + "'");
        }
        break;
      }
    }
  }

  for (std::size_t i = 0; i < out->suppressions.size(); ++i) {
    const Suppression& s = out->suppressions[i];
    std::ostringstream os;
    if (s.rule.empty() || !known_rule(s.rule)) {
      os << "suppression #" << i + 1 << ": missing or unknown rule id '" << s.rule << "'";
      *error = os.str();
      return false;
    }
    if (s.file.empty()) {
      os << "suppression #" << i + 1 << " (" << s.rule << "): missing file";
      *error = os.str();
      return false;
    }
    // The disposition contract: no suppression without a written reason.
    if (trim(s.reason).empty()) {
      os << "suppression #" << i + 1 << " (" << s.rule << " in " << s.file
         << "): empty reason — every suppression must say WHY (DESIGN.md §14)";
      *error = os.str();
      return false;
    }
  }
  return true;
}

}  // namespace ttdc::lint
