// Filesystem layer shared by the ttdc-lint CLI and tests/test_lint.cpp:
// config loading and scan-set enumeration (so the self-check test walks
// exactly the tree the gate walks).
#pragma once

#include <string>
#include <vector>

#include "config.hpp"
#include "lint.hpp"

namespace ttdc::lint {

/// Reads and parses `config_path` (absent file = built-in defaults; that is
/// not an error). Returns false with *error set on parse/validation errors.
[[nodiscard]] bool load_config_file(const std::string& config_path, Config* out,
                                    std::string* error);

/// Walks config.roots under `root` collecting .hpp/.h/.hh/.cpp/.cc files,
/// skipping config.exclude prefixes. Paths in the result are repo-relative
/// with '/' separators, sorted. Missing roots are skipped silently (a repo
/// without bench/ is fine).
[[nodiscard]] std::vector<FileContent> collect_files(const std::string& root,
                                                     const Config& config);

/// Human-readable report to `out` (one line per finding plus the source
/// line, then a summary). Returns the process exit code: 0 clean or all
/// findings suppressed, 1 blocking findings.
int print_report(const std::vector<Finding>& findings, const Config& config,
                 const std::vector<FileContent>& files, std::ostream& out);

/// SARIF 2.1.0 document for CI artifact upload. Suppressed findings are
/// included with their justification (level "note"); blocking findings are
/// level "error".
void write_sarif(const std::vector<Finding>& findings, std::ostream& out);

}  // namespace ttdc::lint
