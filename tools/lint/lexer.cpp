#include "lexer.hpp"

#include <cctype>

namespace ttdc::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Replaces src[i] with a space unless it is a newline (line structure must
/// survive the scrub so token positions match the original file).
void blank(std::string& s, std::size_t i) {
  if (s[i] != '\n') s[i] = ' ';
}

std::string scrub(const std::string& text) {
  std::string out = text;
  const std::size_t n = out.size();
  std::size_t i = 0;
  while (i < n) {
    const char c = out[i];
    if (c == '/' && i + 1 < n && out[i + 1] == '/') {
      while (i < n && out[i] != '\n') blank(out, i), ++i;
    } else if (c == '/' && i + 1 < n && out[i + 1] == '*') {
      blank(out, i), blank(out, i + 1);
      i += 2;
      while (i < n && !(out[i] == '*' && i + 1 < n && out[i + 1] == '/')) blank(out, i), ++i;
      if (i < n) blank(out, i), blank(out, i + 1), i += 2;
    } else if (c == 'R' && i + 1 < n && out[i + 1] == '"' &&
               (i == 0 || !is_ident_char(out[i - 1]))) {
      // Raw string R"delim( ... )delim". Keep the two quote characters so
      // the tokenizer still sees a (empty) string literal.
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && out[d] != '(' && out[d] != '\n') delim += out[d], ++d;
      if (d >= n || out[d] != '(') {  // malformed: treat as plain '"'
        ++i;
        continue;
      }
      const std::string closer = ")" + delim + "\"";
      std::size_t end = out.find(closer, d + 1);
      if (end == std::string::npos) end = n;  // unterminated: scrub to EOF
      blank(out, i);  // the 'R'
      for (std::size_t k = i + 2; k < end + closer.size() && k < n; ++k) {
        if (k == end + closer.size() - 1) break;  // keep the closing quote
        blank(out, k);
      }
      i = end + closer.size() <= n ? end + closer.size() : n;
    } else if (c == '"' || c == '\'') {
      const char q = c;
      ++i;
      while (i < n && out[i] != q && out[i] != '\n') {
        if (out[i] == '\\' && i + 1 < n) blank(out, i), ++i;
        blank(out, i), ++i;
      }
      if (i < n && out[i] == q) ++i;  // keep the closing quote
    } else {
      ++i;
    }
  }
  return out;
}

}  // namespace

LexedFile lex(const std::string& text) {
  LexedFile lf;
  lf.scrubbed = scrub(text);

  lf.raw_lines.emplace_back();
  for (char c : text) {
    if (c == '\n') {
      lf.raw_lines.emplace_back();
    } else {
      lf.raw_lines.back() += c;
    }
  }

  const std::string& s = lf.scrubbed;
  std::size_t line = 1, col = 1;
  std::size_t i = 0;
  const std::size_t n = s.size();
  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      ++line, col = 1, ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++col, ++i;
      continue;
    }
    Token t;
    t.line = line;
    t.col = col;
    if (is_ident_start(c)) {
      t.kind = TokKind::kIdent;
      while (i < n && is_ident_char(s[i])) t.text += s[i], ++i, ++col;
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      t.kind = TokKind::kNumber;
      // pp-number: digits, idents, dots, exponent signs — one blob.
      while (i < n && (is_ident_char(s[i]) || s[i] == '.' ||
                       ((s[i] == '+' || s[i] == '-') && i > 0 &&
                        (s[i - 1] == 'e' || s[i - 1] == 'E' || s[i - 1] == 'p' ||
                         s[i - 1] == 'P')))) {
        t.text += s[i], ++i, ++col;
      }
    } else if (c == '"' || c == '\'') {
      t.kind = TokKind::kString;
      t.text = std::string(2, c);
      ++i, ++col;
      if (i < n && s[i] == c) ++i, ++col;  // the kept closing quote
    } else {
      t.kind = TokKind::kPunct;
      t.text = std::string(1, c);
      ++i, ++col;
    }
    lf.tokens.push_back(std::move(t));
  }
  return lf;
}

bool match_seq(const std::vector<Token>& tokens, std::size_t i,
               const std::vector<std::string>& texts) {
  if (i + texts.size() > tokens.size()) return false;
  for (std::size_t k = 0; k < texts.size(); ++k) {
    if (tokens[i + k].text != texts[k]) return false;
  }
  return true;
}

std::size_t find_matching(const std::vector<Token>& tokens, std::size_t open_index) {
  if (open_index >= tokens.size()) return tokens.size();
  const std::string& open = tokens[open_index].text;
  std::string close;
  if (open == "(") {
    close = ")";
  } else if (open == "{") {
    close = "}";
  } else if (open == "[") {
    close = "]";
  } else if (open == "<") {
    close = ">";
  } else {
    return tokens.size();
  }
  std::size_t depth = 0;
  for (std::size_t i = open_index; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (t == open) {
      ++depth;
    } else if (t == close) {
      if (--depth == 0) return i;
    } else if (open == "<" && t == ";") {
      return tokens.size();  // was a comparison, not a template bracket
    }
  }
  return tokens.size();
}

}  // namespace ttdc::lint
