// Lexing layer for ttdc-lint: comment/string scrubbing plus a flat token
// stream with 1-based source positions. No preprocessing, no type
// information — rules pattern-match tokens and scrubbed lines.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ttdc::lint {

enum class TokKind {
  kIdent,   // identifiers and keywords (the lexer does not distinguish)
  kNumber,  // numeric literal (pp-number, one token)
  kPunct,   // one punctuation character (">>" is two kPunct tokens)
  kString,  // a string or char literal, collapsed to its quotes
};

struct Token {
  TokKind kind;
  std::string text;      // punct: the single char; string: `""` / `''`
  std::size_t line = 0;  // 1-based
  std::size_t col = 0;   // 1-based byte column
};

/// A lexed file: the scrub keeps the original line structure (every byte of
/// a comment or literal body becomes a space, newlines survive) so
/// line-oriented rules (#pragma scanning, snippets) and token positions
/// agree with the original source.
struct LexedFile {
  std::string scrubbed;                 // comments/literal bodies blanked
  std::vector<std::string> raw_lines;   // original text, split on '\n'
  std::vector<Token> tokens;            // from the scrubbed text
};

/// Scrubs //, /**/, "..." (incl. R"delim(...)delim") and '...' then
/// tokenizes. Never fails: malformed tails (unterminated literal/comment)
/// scrub to end of file.
[[nodiscard]] LexedFile lex(const std::string& text);

/// tokens[i..] matches the given identifier/punct texts exactly.
[[nodiscard]] bool match_seq(const std::vector<Token>& tokens, std::size_t i,
                             const std::vector<std::string>& texts);

/// Index of the matching closer for the opener at `open_index` (tokens with
/// text "(" / "{" / "[" / "<"), or tokens.size() when unbalanced. For "<"
/// the scan aborts (returns tokens.size()) on ";" at depth > 0, so a stray
/// less-than comparison does not swallow the rest of the file.
[[nodiscard]] std::size_t find_matching(const std::vector<Token>& tokens,
                                        std::size_t open_index);

}  // namespace ttdc::lint
