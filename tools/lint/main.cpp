// ttdc-lint CLI — the executable face of the gate.
//
//   ttdc-lint [--root DIR] [--config FILE] [--sarif FILE] [--list-rules]
//
// Exit codes: 0 clean (or everything suppressed-with-reason), 1 blocking
// findings, 2 configuration/usage error. scripts/run_static_analysis.sh and
// the CI Release job both treat nonzero as a hard gate failure.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "config.hpp"
#include "lint.hpp"
#include "scan.hpp"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: ttdc-lint [--root DIR] [--config FILE] [--sarif FILE] [--list-rules]\n"
      << "  --root DIR     repo root to scan (default: .)\n"
      << "  --config FILE  lint config (default: <root>/.ttdc-lint.toml)\n"
      << "  --sarif FILE   also write SARIF 2.1.0 to FILE\n"
      << "  --list-rules   print the rule catalog and exit\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string config_path;
  std::string sarif_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "ttdc-lint: " << what << " requires an argument\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--root") {
      const char* v = next("--root");
      if (v == nullptr) return 2;
      root = v;
    } else if (arg == "--config") {
      const char* v = next("--config");
      if (v == nullptr) return 2;
      config_path = v;
    } else if (arg == "--sarif") {
      const char* v = next("--sarif");
      if (v == nullptr) return 2;
      sarif_path = v;
    } else if (arg == "--list-rules") {
      for (const ttdc::lint::RuleInfo& r : ttdc::lint::rule_catalog()) {
        std::cout << r.id << "\t" << r.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else {
      std::cerr << "ttdc-lint: unknown argument '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
  }
  if (config_path.empty()) config_path = root + "/.ttdc-lint.toml";

  ttdc::lint::Config config;
  std::string error;
  if (!ttdc::lint::load_config_file(config_path, &config, &error)) {
    std::cerr << "ttdc-lint: config error: " << error << "\n";
    return 2;
  }

  const std::vector<ttdc::lint::FileContent> files = ttdc::lint::collect_files(root, config);
  if (files.empty()) {
    std::cerr << "ttdc-lint: no source files found under '" << root
              << "' (roots:";
    for (const std::string& r : config.roots) std::cerr << " " << r;
    std::cerr << ") — wrong --root?\n";
    return 2;
  }

  const std::vector<ttdc::lint::Finding> findings = ttdc::lint::run_rules(config, files);

  if (!sarif_path.empty()) {
    std::ofstream sarif(sarif_path);
    if (!sarif) {
      std::cerr << "ttdc-lint: cannot write SARIF to '" << sarif_path << "'\n";
      return 2;
    }
    ttdc::lint::write_sarif(findings, sarif);
  }

  return ttdc::lint::print_report(findings, config, files, std::cout);
}
