// ttdc-lint — the repo-specific determinism & contract static analyzer
// (DESIGN.md §14).
//
// The repo's load-bearing guarantee — bit-identical aggregates at any worker
// count, on resume from a killed journal, and across scalar/batched/hybrid
// pipelines — is a *source* property: it dies the moment an unordered
// container's iteration order escapes into a fold, a wall-clock read feeds
// sim state, or a float reduction runs in thread-completion order. Golden
// tests catch the symptom after the fact; this analyzer stops the hazard
// classes at review time, as an executable catalog of the invariants that
// generic clang-tidy cannot express.
//
// Deliberately NOT built on libclang: the pinned dev container ships only
// gcc, and the gate must run everywhere the build runs. The engine is a
// comment/string-scrubbing lexer plus token-pattern rules — heuristic by
// design, tuned so every rule both fires on its fixture and stays quiet on
// the real tree (tests/test_lint.cpp proves both). False positives are
// handled by the suppression list in .ttdc-lint.toml, where every entry
// requires a written reason (machine-enforced: an empty reason is a config
// error, not a warning).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ttdc::lint {

struct Config;  // config.hpp

/// One diagnostic. `file` is the path as given in FileContent (repo-relative
/// by convention); line/col are 1-based.
struct Finding {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::size_t col = 0;
  std::string message;
  /// Set when a [[suppress]] entry matched; the finding is still reported
  /// (SARIF carries it with its justification) but does not fail the gate.
  bool suppressed = false;
  std::string suppress_reason;
};

/// A file handed to the engine. `path` uses '/' separators relative to the
/// repo root; `text` is the raw bytes.
struct FileContent {
  std::string path;
  std::string text;
};

/// Static descriptor of one rule, for --list-rules and SARIF tool metadata.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The full catalog, in reporting order.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

/// Runs every enabled rule over `files` (the whole scan set at once: the
/// CON-MUTATOR-DCHECK rule resolves out-of-line definitions in sibling
/// .cpp files, and OBS-PROF-SCOPE searches the set for each hot-path
/// entry). Returns findings sorted by (file, line, col, rule), with
/// suppressions from the config applied and marked.
[[nodiscard]] std::vector<Finding> run_rules(const Config& config,
                                             const std::vector<FileContent>& files);

/// True iff any finding is unsuppressed (the gate-failure condition).
[[nodiscard]] bool has_blocking_findings(const std::vector<Finding>& findings);

}  // namespace ttdc::lint
