// ttdc-campaign — run a convergecast simulation campaign from the command
// line, with the full resilience stack armed: per-cell retries, watchdog,
// quarantine, and the disk checkpoint journal.
//
// This is the driver behind the crash-resilience CI job: the job starts a
// campaign with --journal, SIGKILLs it mid-flight, reruns the same command,
// and asserts the resumed aggregate JSON is byte-identical to an
// uninterrupted run's. It is also a convenient way to poke at fault
// injection interactively:
//
//   ttdc-campaign --cells 24 --slots 20000 --journal /tmp/c.journal
//                 --out /tmp/aggregate.json --fault-intensity 0.5
//
// Exit code 0 on success (quarantined cells do NOT fail the run — they are
// flagged in the JSON), 2 on bad usage.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "combinatorics/constructions.hpp"
#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "net/topology.hpp"
#include "runner/runner.hpp"
#include "sim/fault.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"

using namespace ttdc;

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --cells N             number of campaign cells (default 16)\n"
      << "  --slots N             slots per cell (default 20000)\n"
      << "  --rows N --cols N     grid topology shape (default 5x5)\n"
      << "  --rate R              per-node packet rate per slot (default 0.003)\n"
      << "  --seed S              campaign master seed (default 0x5eed)\n"
      << "  --workers N           worker threads (default: auto)\n"
      << "  --serial              use the serial reference executor\n"
      << "  --journal PATH        checkpoint journal (enables kill-and-resume)\n"
      << "  --no-resume           ignore an existing journal (fresh run)\n"
      << "  --max-attempts N      retries per cell before quarantine (default 3)\n"
      << "  --cell-timeout SEC    per-cell watchdog; 0 disables (default 0)\n"
      << "  --fault-intensity X   0 disarms faults; (0,1] scales crash/link/jam\n"
      << "                        rates of the per-cell FaultPlan (default 0)\n"
      << "  --hybrid              adaptive sparse/dense slot sets per cell\n"
      << "                        (bit-identical stats; see DESIGN.md #13)\n"
      << "  --shard-workers N     per-cell phase-2 shard team; only useful with\n"
      << "                        --serial or --workers 1 (nested parallelism\n"
      << "                        degrades to serial inside campaign workers)\n"
      << "  --out PATH            write the aggregate JSON here (default stdout)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t cells = 16, rows = 5, cols = 5;
  std::uint64_t slots = 20000, master_seed = 0x5eed;
  double rate = 0.003, fault_intensity = 0.0, cell_timeout = 0.0;
  int workers = 0, max_attempts = 3, shard_workers = 0;
  bool serial = false, resume = true, hybrid = false;
  std::string journal_path, out_path;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    const char* arg = argv[i];
    const char* v = nullptr;
    if (std::strcmp(arg, "--cells") == 0 && (v = next())) {
      cells = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--slots") == 0 && (v = next())) {
      slots = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--rows") == 0 && (v = next())) {
      rows = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--cols") == 0 && (v = next())) {
      cols = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--rate") == 0 && (v = next())) {
      rate = std::strtod(v, nullptr);
    } else if (std::strcmp(arg, "--seed") == 0 && (v = next())) {
      master_seed = std::strtoull(v, nullptr, 0);
    } else if (std::strcmp(arg, "--workers") == 0 && (v = next())) {
      workers = std::atoi(v);
    } else if (std::strcmp(arg, "--serial") == 0) {
      serial = true;
    } else if (std::strcmp(arg, "--journal") == 0 && (v = next())) {
      journal_path = v;
    } else if (std::strcmp(arg, "--no-resume") == 0) {
      resume = false;
    } else if (std::strcmp(arg, "--max-attempts") == 0 && (v = next())) {
      max_attempts = std::atoi(v);
    } else if (std::strcmp(arg, "--cell-timeout") == 0 && (v = next())) {
      cell_timeout = std::strtod(v, nullptr);
    } else if (std::strcmp(arg, "--fault-intensity") == 0 && (v = next())) {
      fault_intensity = std::strtod(v, nullptr);
    } else if (std::strcmp(arg, "--hybrid") == 0) {
      hybrid = true;
    } else if (std::strcmp(arg, "--shard-workers") == 0 && (v = next())) {
      shard_workers = std::atoi(v);
    } else if (std::strcmp(arg, "--out") == 0 && (v = next())) {
      out_path = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (cells == 0 || rows == 0 || cols == 0 || slots == 0) return usage(argv[0]);

  const std::size_t n = rows * cols;
  const net::Graph grid = net::grid_graph(rows, cols);

  runner::CampaignOptions options;
  options.master_seed = master_seed;
  options.num_workers = workers;
  runner::ResilienceOptions res;
  res.max_attempts = max_attempts;
  res.cell_timeout_seconds = cell_timeout;
  res.journal_path = journal_path;
  res.resume = resume;
  options.resilience = res;

  runner::Campaign campaign(options);
  for (std::size_t c = 0; c < cells; ++c) {
    std::string name("cell");
    name += std::to_string(c);
    campaign.add(std::move(name),
                 [&grid, n, slots, rate, fault_intensity, hybrid,
                  shard_workers](runner::CellContext& ctx) {
                   // best_plan picks valid family parameters for any n (a
                   // fixed polynomial family only covers n <= q^(k+1)).
                   std::string key("base:best(n=");
                   key += std::to_string(n);
                   key += ",d=4)";
                   auto schedule = ctx.artifacts().schedule(key, [n] {
                     return core::non_sleeping_from_family(
                         comb::build_plan(comb::best_plan(n, 4), n));
                   });
                   auto routing = ctx.artifacts().routing(grid);
                   sim::DutyCycledScheduleMac mac(*schedule);
                   sim::ConvergecastTraffic traffic(n, /*sink=*/0, rate);
                   sim::SimConfig cfg;
                   cfg.seed = ctx.seed();
                   cfg.shared_routing = routing.get();
                   cfg.hybrid_pipeline = hybrid;
                   cfg.shard_workers = shard_workers;
                   std::unique_ptr<sim::FaultPlan> plan;
                   if (fault_intensity > 0.0) {
                     sim::FaultPlanConfig fc;
                     fc.horizon_slots = slots;
                     fc.crash_rate = 2e-5 * fault_intensity;
                     fc.link_loss.p_good_to_bad = 0.002 * fault_intensity;
                     fc.link_loss.p_bad_to_good = 0.05;
                     fc.battery_spike_rate = 1e-5 * fault_intensity;
                     fc.battery_spike_mj = 5.0;
                     fc.num_jammers = fault_intensity >= 0.5 ? 1 : 0;
                     fc.jam_duty = 0.05 * fault_intensity;
                     // Plan randomness derives from the cell seed, never the
                     // simulator stream.
                     plan = std::make_unique<sim::FaultPlan>(fc, n, ctx.seed());
                     cfg.fault_plan = plan.get();
                   }
                   sim::Simulator sim(grid, mac, traffic, cfg);
                   // Chunked run so the cooperative watchdog can fire.
                   const std::uint64_t chunk = 1000;
                   for (std::uint64_t done = 0; done < slots;) {
                     const std::uint64_t step = std::min(chunk, slots - done);
                     sim.run(step);
                     done += step;
                     ctx.check_deadline();
                   }
                   ctx.record(sim.stats());
                   ctx.metric("delivery_ratio", sim.stats().delivery_ratio());
                 });
  }

  const runner::CampaignResult result = serial ? campaign.run_serial() : campaign.run();
  const std::string json = result.aggregate_json();
  if (out_path.empty()) {
    std::cout << json << '\n';
  } else {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::cerr << "error: cannot write " << out_path << '\n';
      return 1;
    }
    out << json << '\n';
  }
  std::cerr << result.cells.size() << " cells (" << result.resumed_cells
            << " resumed from journal, " << result.quarantined.size()
            << " quarantined) in " << result.elapsed_seconds << " s\n";
  for (const std::size_t q : result.quarantined) {
    std::cerr << "quarantined cell " << q << ": " << result.cells[q].error << '\n';
  }
  return 0;
}
