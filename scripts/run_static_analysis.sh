#!/usr/bin/env bash
# Static-analysis gate. Exits non-zero on any unsuppressed finding.
#
# Phase 1 — ttdc-lint (tools/lint, DESIGN.md §14): the repo-specific
# determinism & contract analyzer. Runs everywhere the build runs (it is
# built by this script from the same tree) and gates on the checked-in
# .ttdc-lint.toml policy: wall-clock reads, unseeded randomness, unordered
# iteration on aggregate paths, FP folds inside OpenMP regions, unchecked
# mutators of audited classes, raw assert(), missing TTDC_PROF_SCOPE on
# declared hot paths, header hygiene.
#
# Phase 2 — generic analyzer. Preferred: clang-tidy with the repo's
# .clang-tidy over every TU in src/, via the compile database every
# configure emits. Fallback when clang-tidy is absent (the pinned dev
# container ships only gcc): rebuild the ttdc_* libraries with GCC's
# -fanalyzer and -Werror, covering the overlapping defect classes
# (use-after-free, leaks, null derefs, infinite loops).
#
# Both phases run even if the first fails; the exit status is the gate
# verdict over all of them.
#
# Usage: scripts/run_static_analysis.sh [--sarif DIR] [build-dir]
#   --sarif DIR: collect machine-readable output from every phase into DIR
#                (ttdc-lint.sarif natively; clang-tidy/gcc-analyzer logs
#                converted via scripts/diag2sarif.py).
#   build-dir:   existing configured build tree holding compile_commands.json
#                (default: build; configured on the fly if missing).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
sarif_dir=""
build_dir=""
while [ $# -gt 0 ]; do
  case "$1" in
    --sarif)
      sarif_dir="$2"
      shift 2
      ;;
    *)
      build_dir="$1"
      shift
      ;;
  esac
done
build_dir="${build_dir:-${repo_root}/build}"
jobs="$(nproc 2>/dev/null || echo 2)"
[ -n "${sarif_dir}" ] && mkdir -p "${sarif_dir}"

cd "${repo_root}"
gate_status=0

if ! [ -f "${build_dir}/compile_commands.json" ]; then
  echo "== configuring ${build_dir} (for compile_commands.json)"
  cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release >/dev/null
fi

# ---------------------------------------------------------------------------
echo "== phase 1: ttdc-lint (determinism & contract catalog, .ttdc-lint.toml)"
cmake --build "${build_dir}" -j "${jobs}" --target ttdc-lint >/dev/null
lint_args=(--root "${repo_root}")
[ -n "${sarif_dir}" ] && lint_args+=(--sarif "${sarif_dir}/ttdc-lint.sarif")
if "${build_dir}/tools/lint/ttdc-lint" "${lint_args[@]}"; then
  echo "ttdc-lint: clean"
else
  echo "ttdc-lint: unsuppressed findings above are gate failures" \
       "(fix, or add a [[suppress]] entry with a written reason)" >&2
  gate_status=1
fi

# ---------------------------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  echo "== phase 2: clang-tidy ($(clang-tidy --version | head -n1))"
  # Analyze every TU in src/; headers are covered via HeaderFilterRegex.
  mapfile -t sources < <(find "${repo_root}/src" -name '*.cpp' | sort)
  tidy_log="$(mktemp)"
  status=0
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "${build_dir}" -j "${jobs}" "${sources[@]}" \
      2>&1 | tee "${tidy_log}" || status=$?
  else
    for tu in "${sources[@]}"; do
      echo "-- ${tu#"${repo_root}"/}"
      clang-tidy -quiet -p "${build_dir}" "${tu}" 2>&1 | tee -a "${tidy_log}" || status=$?
    done
  fi
  if [ -n "${sarif_dir}" ]; then
    python3 "${repo_root}/scripts/diag2sarif.py" --tool clang-tidy \
      --root "${repo_root}" -o "${sarif_dir}/clang-tidy.sarif" "${tidy_log}"
  fi
  rm -f "${tidy_log}"
  if [ "${status}" -ne 0 ]; then
    echo "clang-tidy: findings above are gate failures (WarningsAsErrors: '*')" >&2
    gate_status=1
  else
    echo "clang-tidy: clean"
  fi
else
  echo "== phase 2: clang-tidy not found; falling back to gcc -fanalyzer"
  analyzer_dir="${repo_root}/build-analyzer"
  # Two analyzer classes are disabled: GCC <= 13's analyzer does not model
  # libstdc++ containers/streams and reports their internals as leaks
  # (vector _M_start "leaking" in a normally-unwinding destructor) and
  # uninitialized reads (ostringstream::str()). Every finding from those two
  # classes on this tree was such a false positive; the remaining classes
  # (null-deref, use-after-free, double-free, infinite-loop, ...) stay on.
  cmake -B "${analyzer_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DTTDC_BUILD_TESTS=OFF -DTTDC_BUILD_BENCHES=OFF -DTTDC_BUILD_EXAMPLES=OFF \
    -DCMAKE_CXX_FLAGS="-fanalyzer -Wno-analyzer-malloc-leak -Wno-analyzer-use-of-uninitialized-value" \
    >/dev/null
  # Library targets only: -fanalyzer over gtest/benchmark TUs is noise we
  # cannot act on.
  analyzer_log="$(mktemp)"
  status=0
  cmake --build "${analyzer_dir}" -j "${jobs}" --target \
    ttdc_util ttdc_gf ttdc_comb ttdc_core ttdc_net ttdc_sim ttdc_obs ttdc_runner \
    2>&1 | tee "${analyzer_log}" || status=$?
  if [ -n "${sarif_dir}" ]; then
    python3 "${repo_root}/scripts/diag2sarif.py" --tool gcc-analyzer \
      --root "${repo_root}" -o "${sarif_dir}/gcc-analyzer.sarif" "${analyzer_log}"
  fi
  rm -f "${analyzer_log}"
  if [ "${status}" -ne 0 ]; then
    echo "gcc -fanalyzer: findings above are gate failures (-Werror)" >&2
    gate_status=1
  else
    echo "gcc -fanalyzer: clean (libraries built with -Werror)"
  fi
fi

# ---------------------------------------------------------------------------
if [ "${gate_status}" -ne 0 ]; then
  echo "static analysis gate: FAILED" >&2
else
  echo "static analysis gate: passed (all phases)"
fi
exit "${gate_status}"
