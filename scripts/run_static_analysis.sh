#!/usr/bin/env bash
# Static-analysis gate. Exits non-zero on any finding.
#
# Preferred analyzer: clang-tidy with the repo's .clang-tidy over every
# translation unit in src/, driven by the compile database that every CMake
# configure emits (CMAKE_EXPORT_COMPILE_COMMANDS is set unconditionally).
#
# Fallback when clang-tidy is not installed (the pinned dev container ships
# only gcc): rebuild the ttdc_* libraries in a scratch tree with GCC's
# -fanalyzer and -Werror, which covers the overlapping defect classes
# (use-after-free, leaks, null derefs, infinite loops). CI runs the real
# clang-tidy job; this keeps the gate meaningful locally either way.
#
# Usage: scripts/run_static_analysis.sh [build-dir]
#   build-dir: existing configured build tree holding compile_commands.json
#              (default: build; configured on the fly if missing).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
jobs="$(nproc 2>/dev/null || echo 2)"

cd "${repo_root}"

if ! [ -f "${build_dir}/compile_commands.json" ]; then
  echo "== configuring ${build_dir} (for compile_commands.json)"
  cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release >/dev/null
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy ($(clang-tidy --version | head -n1))"
  # Analyze every TU in src/; headers are covered via HeaderFilterRegex.
  mapfile -t sources < <(find "${repo_root}/src" -name '*.cpp' | sort)
  status=0
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "${build_dir}" -j "${jobs}" "${sources[@]}" || status=$?
  else
    for tu in "${sources[@]}"; do
      echo "-- ${tu#"${repo_root}"/}"
      clang-tidy -quiet -p "${build_dir}" "${tu}" || status=$?
    done
  fi
  if [ "${status}" -ne 0 ]; then
    echo "clang-tidy: findings above are gate failures (WarningsAsErrors: '*')" >&2
    exit "${status}"
  fi
  echo "clang-tidy: clean"
  exit 0
fi

echo "== clang-tidy not found; falling back to gcc -fanalyzer"
analyzer_dir="${repo_root}/build-analyzer"
# Two analyzer classes are disabled: GCC <= 13's analyzer does not model
# libstdc++ containers/streams and reports their internals as leaks
# (vector _M_start "leaking" in a normally-unwinding destructor) and
# uninitialized reads (ostringstream::str()). Every finding from those two
# classes on this tree was such a false positive; the remaining classes
# (null-deref, use-after-free, double-free, infinite-loop, ...) stay on.
cmake -B "${analyzer_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DTTDC_BUILD_TESTS=OFF -DTTDC_BUILD_BENCHES=OFF -DTTDC_BUILD_EXAMPLES=OFF \
  -DCMAKE_CXX_FLAGS="-fanalyzer -Wno-analyzer-malloc-leak -Wno-analyzer-use-of-uninitialized-value" \
  >/dev/null
# Library targets only: -fanalyzer over gtest/benchmark TUs is noise we
# cannot act on.
cmake --build "${analyzer_dir}" -j "${jobs}" --target \
  ttdc_util ttdc_gf ttdc_comb ttdc_core ttdc_net ttdc_sim ttdc_obs ttdc_runner
echo "gcc -fanalyzer: clean (libraries built with -Werror)"
