#!/usr/bin/env python3
"""Convert gcc/clang-style diagnostics to SARIF 2.1.0.

Reads `file:line:col: level: message [check]` lines (clang-tidy, gcc
-fanalyzer, plain -W* warnings all emit this shape) from a log file or
stdin and writes one SARIF run, so CI can upload a uniform artifact
bundle next to ttdc-lint's native SARIF (scripts/run_static_analysis.sh
--sarif collects both).

Usage: diag2sarif.py --tool NAME [--root DIR] [-o OUT.sarif] [LOG...]

Exit status is 0 even when diagnostics are present: gating is the
analyzer's job (this is a format converter, not a second gate).
"""

import argparse
import json
import os
import re
import sys

# path:line:col: level: message [optional-check-name]
DIAG_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s*"
    r"(?P<level>warning|error|note):\s*(?P<msg>.*?)"
    r"(?:\s*\[(?P<check>[A-Za-z0-9_.,\-]+)\])?$"
)

LEVEL_MAP = {"warning": "warning", "error": "error", "note": "note"}


def parse_lines(lines, root):
    results = []
    for raw in lines:
        m = DIAG_RE.match(raw.rstrip("\n"))
        if not m:
            continue
        path = m.group("file")
        if root:
            try:
                rel = os.path.relpath(os.path.realpath(path), os.path.realpath(root))
            except ValueError:
                rel = path
            if not rel.startswith(".."):
                path = rel
        path = path.replace(os.sep, "/")
        results.append(
            {
                "ruleId": m.group("check") or "diagnostic",
                "level": LEVEL_MAP[m.group("level")],
                "message": {"text": m.group("msg")},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": path},
                            "region": {
                                "startLine": int(m.group("line")),
                                "startColumn": int(m.group("col")),
                            },
                        }
                    }
                ],
            }
        )
    return results


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--tool", required=True, help="driver name recorded in the SARIF run")
    ap.add_argument("--root", default=None, help="repo root; paths are made relative to it")
    ap.add_argument("-o", "--output", default=None, help="output file (default: stdout)")
    ap.add_argument("logs", nargs="*", help="diagnostic logs (default: stdin)")
    args = ap.parse_args()

    lines = []
    if args.logs:
        for log in args.logs:
            with open(log, encoding="utf-8", errors="replace") as f:
                lines.extend(f.readlines())
    else:
        lines = sys.stdin.readlines()

    results = parse_lines(lines, args.root)
    # notes attached to a preceding warning are context, not findings;
    # drop standalone notes to keep result counts meaningful.
    results = [r for r in results if r["level"] != "note"]

    sarif = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {"driver": {"name": args.tool, "informationUri": ""}},
                "results": results,
            }
        ],
    }
    out = json.dumps(sarif, indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(out + "\n")
    else:
        print(out)
    print(f"diag2sarif: {len(results)} result(s) from {args.tool}", file=sys.stderr)


if __name__ == "__main__":
    main()
