#!/usr/bin/env python3
"""Compare the latest bench reports against the committed baselines.

Reads BENCH_<name>.json reports (newest run: the repo root, or the most
recently modified bench/history/<sha>/ archive written by
scripts/run_benches.sh) and prints a per-bench trend table against
bench/baselines/BENCH_<name>.baseline.json. A metric is flagged only when
it leaves the noise band (default +/-10%); *_speedup and *_slots_per_sec
metrics are treated as higher-is-better, *_seconds and *_overhead* as
lower-is-better, everything else is reported informationally.

Exit status is always 0 unless --strict is given (CI runs it non-fatally:
the hard perf gates live in run_benches.sh --perf-check; this script is
for humans watching drift).

Usage: scripts/bench_trend.py [--band 0.10] [--history] [--strict]
"""

import argparse
import glob
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_metrics(path):
    with open(path) as f:
        return json.load(f).get("metrics", {})


def latest_report_dir(use_history):
    if use_history:
        runs = sorted(
            glob.glob(os.path.join(REPO_ROOT, "bench", "history", "*")),
            key=os.path.getmtime,
        )
        if runs:
            return runs[-1]
    return REPO_ROOT


def classify(key):
    """Returns (direction, gated): +1 higher-is-better, -1 lower, 0 info."""
    if key.endswith("_speedup") or key.endswith("_slots_per_sec"):
        return 1, True
    if key.endswith("_seconds") or "_overhead" in key:
        return -1, True
    return 0, False


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--band", type=float, default=0.10,
                    help="relative noise band before a change is flagged")
    ap.add_argument("--history", action="store_true",
                    help="read the newest bench/history/<sha>/ archive "
                         "instead of the repo root")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when any gated metric degrades out of band")
    args = ap.parse_args()

    report_dir = latest_report_dir(args.history)
    baseline_dir = os.path.join(REPO_ROOT, "bench", "baselines")
    baselines = sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.baseline.json")))
    if not baselines:
        print("no baselines under bench/baselines/; nothing to compare")
        return 0

    print(f"reports:   {report_dir}")
    print(f"baselines: {baseline_dir}")
    print(f"noise band: +/-{args.band:.0%}\n")

    regressions = []
    for baseline_path in baselines:
        name = os.path.basename(baseline_path)
        name = name[len("BENCH_"):-len(".baseline.json")]
        report_path = os.path.join(report_dir, f"BENCH_{name}.json")
        print(f"== {name} ==")
        if not os.path.exists(report_path):
            print("  (no current report; run scripts/run_benches.sh)\n")
            continue
        base = load_metrics(baseline_path)
        cur = load_metrics(report_path)
        for key in sorted(base):
            b, c = base[key], cur.get(key)
            if c is None:
                print(f"  {key:40s} baseline {b:>12.4g}  current      MISSING")
                continue
            direction, gated = classify(key)
            if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
                print(f"  {key:40s} baseline {b!r:>12}  current {c!r:>12}")
                continue
            # Near-zero baselines (overhead fractions jittering around 0)
            # make relative deltas explode; compare those absolutely.
            delta = (c - b) / abs(b) if abs(b) > 0.05 else (c - b)
            verdict = ""
            if gated and abs(delta) > args.band:
                worse = (direction > 0 and delta < 0) or (direction < 0 and delta > 0)
                verdict = "REGRESSED" if worse else "improved"
                if worse:
                    regressions.append(f"{name}:{key} {delta:+.1%}")
            print(f"  {key:40s} baseline {b:>12.4g}  current {c:>12.4g}  {delta:+7.1%} {verdict}")
        print()

    if regressions:
        print("out-of-band regressions (informational unless --strict):")
        for r in regressions:
            print(f"  {r}")
        if args.strict:
            return 1
    else:
        print("no gated metric left the noise band")
    return 0


if __name__ == "__main__":
    sys.exit(main())
