#!/usr/bin/env python3
"""Compare bench reports across runs and against the committed baselines.

Default mode reads the newest BENCH_<name>.json reports from the repo root
and prints a per-bench trend table against
bench/baselines/BENCH_<name>.baseline.json. With --history the comparison
is between the two most recent bench/history/<sha>/ archives written by
scripts/run_benches.sh (newest vs previous: the actual run-to-run trend).
A metric is flagged only when it leaves the noise band (default +/-10%);
*_speedup and *_slots_per_sec metrics are treated as higher-is-better,
*_seconds and *_overhead* as lower-is-better, everything else is reported
informationally.

Missing inputs are never a traceback: fewer than two history snapshots, a
bench present in one snapshot but not the other, or an unreadable report
all print a short explanation and the script moves on (or exits 0 when
there is nothing at all to compare).

Exit status is always 0 unless --strict is given (CI runs it non-fatally:
the hard perf gates live in run_benches.sh --perf-check; this script is
for humans watching drift).

Usage: scripts/bench_trend.py [--band 0.10] [--history] [--strict]
"""

import argparse
import glob
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_metrics(path):
    """Returns the metrics dict, or None (with a message) when unreadable."""
    try:
        with open(path) as f:
            return json.load(f).get("metrics", {})
    except (OSError, json.JSONDecodeError) as err:
        print(f"  (unreadable report {os.path.relpath(path, REPO_ROOT)}: {err})")
        return None


def history_runs():
    """History snapshot dirs, oldest first."""
    return sorted(
        glob.glob(os.path.join(REPO_ROOT, "bench", "history", "*")),
        key=os.path.getmtime,
    )


def classify(key):
    """Returns (direction, gated): +1 higher-is-better, -1 lower, 0 info."""
    if key.endswith("_speedup") or key.endswith("_slots_per_sec"):
        return 1, True
    if key.endswith("_seconds") or "_overhead" in key:
        return -1, True
    return 0, False


def bench_names(report_dir):
    paths = glob.glob(os.path.join(report_dir, "BENCH_*.json"))
    return {os.path.basename(p)[len("BENCH_"):-len(".json")] for p in paths}


def compare(name, baseline_path, report_path, band, regressions):
    print(f"== {name} ==")
    if not os.path.exists(report_path):
        print("  (no current report; run scripts/run_benches.sh)\n")
        return
    base = load_metrics(baseline_path)
    cur = load_metrics(report_path)
    if base is None or cur is None:
        print()
        return
    # Union of keys: metrics added since the baseline/previous snapshot
    # (e.g. the fast-forward split in BENCH_lifetime) surface as "(new)"
    # informational rows instead of being silently dropped — and never
    # count as regressions, so --strict stays safe across snapshots that
    # straddle the metric's introduction.
    for key in sorted(set(base) | set(cur)):
        if key not in base:
            c = cur[key]
            shown = f"{c:>12.4g}" if isinstance(c, (int, float)) else f"{c!r:>12}"
            print(f"  {key:40s} baseline      (new)    current {shown}")
            continue
        b, c = base[key], cur.get(key)
        if c is None:
            print(f"  {key:40s} baseline {b:>12.4g}  current      MISSING")
            continue
        direction, gated = classify(key)
        if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
            print(f"  {key:40s} baseline {b!r:>12}  current {c!r:>12}")
            continue
        # Near-zero baselines (overhead fractions jittering around 0)
        # make relative deltas explode; compare those absolutely.
        delta = (c - b) / abs(b) if abs(b) > 0.05 else (c - b)
        verdict = ""
        if gated and abs(delta) > band:
            worse = (direction > 0 and delta < 0) or (direction < 0 and delta > 0)
            verdict = "REGRESSED" if worse else "improved"
            if worse:
                regressions.append(f"{name}:{key} {delta:+.1%}")
        print(f"  {key:40s} baseline {b:>12.4g}  current {c:>12.4g}  {delta:+7.1%} {verdict}")
    print()


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--band", type=float, default=0.10,
                    help="relative noise band before a change is flagged")
    ap.add_argument("--history", action="store_true",
                    help="compare the two newest bench/history/<sha>/ "
                         "archives instead of repo-root reports vs baselines")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when any gated metric degrades out of band")
    args = ap.parse_args()

    regressions = []
    if args.history:
        runs = history_runs()
        if len(runs) < 2:
            have = ", ".join(os.path.basename(r) for r in runs) or "none"
            print(f"bench/history/ has {len(runs)} snapshot(s) ({have}); "
                  "need two to show a trend — run scripts/run_benches.sh "
                  "on two commits first")
            return 0
        prev_dir, cur_dir = runs[-2], runs[-1]
        print(f"previous: {prev_dir}")
        print(f"current:  {cur_dir}")
        print(f"noise band: +/-{args.band:.0%}\n")
        names = bench_names(prev_dir) | bench_names(cur_dir)
        if not names:
            print("neither snapshot contains any BENCH_*.json; nothing to compare")
            return 0
        for name in sorted(names):
            prev_path = os.path.join(prev_dir, f"BENCH_{name}.json")
            cur_path = os.path.join(cur_dir, f"BENCH_{name}.json")
            if not os.path.exists(prev_path):
                print(f"== {name} ==\n  (new in {os.path.basename(cur_dir)}; "
                      "no previous snapshot to trend against)\n")
                continue
            if not os.path.exists(cur_path):
                print(f"== {name} ==\n  (present in {os.path.basename(prev_dir)} "
                      f"but missing from {os.path.basename(cur_dir)})\n")
                continue
            compare(name, prev_path, cur_path, args.band, regressions)
    else:
        report_dir = REPO_ROOT
        baseline_dir = os.path.join(REPO_ROOT, "bench", "baselines")
        baselines = sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.baseline.json")))
        if not baselines:
            print("no baselines under bench/baselines/; nothing to compare")
            return 0
        print(f"reports:   {report_dir}")
        print(f"baselines: {baseline_dir}")
        print(f"noise band: +/-{args.band:.0%}\n")
        for baseline_path in baselines:
            name = os.path.basename(baseline_path)
            name = name[len("BENCH_"):-len(".baseline.json")]
            report_path = os.path.join(report_dir, f"BENCH_{name}.json")
            compare(name, baseline_path, report_path, args.band, regressions)

    if regressions:
        print("out-of-band regressions (informational unless --strict):")
        for r in regressions:
            print(f"  {r}")
        if args.strict:
            return 1
    else:
        print("no gated metric left the noise band")
    return 0


if __name__ == "__main__":
    sys.exit(main())
