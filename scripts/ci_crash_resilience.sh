#!/usr/bin/env bash
# Crash-resilience gate: prove that a campaign SIGKILLed mid-flight resumes
# from its checkpoint journal to a final aggregate BYTE-IDENTICAL to an
# uninterrupted run's (DESIGN.md §12).
#
# Sequence:
#   1. run the reference campaign (no journal) -> ref.json;
#   2. start the identical campaign with --journal, SIGKILL it mid-flight
#      (several attempts with growing delays, so both fast and slow runners
#      actually catch it with cells still outstanding);
#   3. rerun the identical command: journaled cells restore, the rest rerun;
#   4. `cmp` the aggregates — bytes, not semantics.
#
# Exit 0 only if the resumed aggregate is byte-identical. The journal and
# both JSON files are left in the scratch dir for upload on failure.
#
# Usage: scripts/ci_crash_resilience.sh [build-dir] [scratch-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
scratch="${2:-$(mktemp -d)}"
mkdir -p "$scratch"

campaign="$build_dir/tools/ttdc-campaign"
[ -x "$campaign" ] || { echo "missing $campaign (build the tools target)" >&2; exit 1; }

# Big enough that a mid-flight kill is catchable, small enough for CI.
args=(--cells 12 --slots 60000 --rows 6 --cols 6 --rate 0.01 --seed 7
      --fault-intensity 1.0 --workers 2)
journal="$scratch/campaign.journal"

echo "== reference run (uninterrupted, no journal) =="
"$campaign" "${args[@]}" --out "$scratch/ref.json"

# Kill mid-flight. The exact timing is load-dependent, so retry with
# growing delays until the journal comes up short of the full cell count
# (header + 12 lines = complete). A kill that lands after completion just
# means "try again sooner was impossible"; a complete journal still
# exercises the resume path, so after the last attempt we proceed anyway.
killed_partial=0
for delay in 0.15 0.25 0.4 0.6; do
  rm -f "$journal"
  "$campaign" "${args[@]}" --journal "$journal" --out "$scratch/killed.json" &
  pid=$!
  sleep "$delay"
  if kill -KILL "$pid" 2>/dev/null; then
    wait "$pid" 2>/dev/null || true
    lines=$(wc -l < "$journal" 2>/dev/null || echo 0)
    echo "SIGKILL after ${delay}s: journal has $lines line(s)"
    if [ "$lines" -gt 0 ] && [ "$lines" -lt 13 ]; then
      killed_partial=1
      break
    fi
  else
    wait "$pid" 2>/dev/null || true
    echo "campaign finished before the ${delay}s kill"
  fi
done
[ "$killed_partial" -eq 1 ] || echo "WARNING: no partial kill landed; testing full-journal resume"

echo "== resumed run =="
"$campaign" "${args[@]}" --journal "$journal" --out "$scratch/resumed.json"

if cmp "$scratch/ref.json" "$scratch/resumed.json"; then
  echo "PASS: resumed aggregate is byte-identical to the uninterrupted run"
  echo "scratch: $scratch"
else
  echo "FAIL: resumed aggregate differs from the uninterrupted run" >&2
  echo "artifacts left in $scratch (ref.json, resumed.json, campaign.journal)" >&2
  exit 1
fi
