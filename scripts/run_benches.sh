#!/usr/bin/env bash
# Builds the bench harness and runs every bench binary, collecting the
# machine-readable BENCH_<name>.json reports (obs::BenchReport) at the repo
# root. Exits non-zero if the build fails, any bench fails its paper-claim
# check, or any report file is missing afterwards.
#
# Usage: scripts/run_benches.sh [--perf-check] [--jobs N] [build-dir]
#   TTDC_BENCH_DIR  overrides where reports are written (default: repo root)
#
# --jobs N: run up to N bench binaries concurrently. Each bench writes its
# report into a private temp directory (so concurrent benches never race on
# the same BENCH_*.json) and the reports are moved into TTDC_BENCH_DIR once
# the bench exits; logs are replayed in the binaries' name order, so the
# combined output is stable regardless of completion order.
#
# --perf-check: runs only the perf-gated benches (bench_sim_hotpath,
# bench_campaign, bench_fault_resilience, bench_megascale,
# bench_fastforward) and compares
# them against the committed baselines
# (bench/baselines/), failing on a >25% regression of any *_speedup metric.
# The speedups are gated because the paired measurement cancels machine
# load and clock drift; absolute slots/sec are printed for context but not
# gated (they halve under a concurrent build). Regenerate a baseline (copy
# BENCH_<name>.json over it) when the pipeline legitimately changes shape.
set -euo pipefail

perf_check=0
jobs=1
while [ $# -gt 0 ]; do
  case "$1" in
    --perf-check) perf_check=1; shift ;;
    --jobs) jobs="$2"; shift 2 ;;
    *) break ;;
  esac
done

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
bench_dir="${TTDC_BENCH_DIR:-$repo_root}"
export TTDC_BENCH_DIR="$bench_dir"

scratch=""

# Archive whatever reports exist under bench/history/<git-sha>/ so
# scripts/bench_trend.py can chart metric drift across commits. Runs from an
# EXIT trap: a bench that crashes the script (or a ctrl-C) still archives the
# reports of everything that DID finish — a partial run's numbers are worth
# keeping, losing them silently is not. A dirty tree gets a "-dirty" suffix
# (the numbers don't belong to the clean sha).
archive_reports() {
  trap_status=$?
  [ -n "$scratch" ] && rm -rf "$scratch"
  if ! ls "$bench_dir"/BENCH_*.json >/dev/null 2>&1; then
    return 0
  fi
  if sha="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null)"; then
    if ! git -C "$repo_root" diff --quiet 2>/dev/null; then
      sha="${sha}-dirty"
    fi
    history_dir="$repo_root/bench/history/$sha"
    mkdir -p "$history_dir"
    cp "$bench_dir"/BENCH_*.json "$history_dir/" 2>/dev/null || true
    if [ "$trap_status" -eq 0 ]; then
      echo "archived reports to bench/history/$sha/"
    else
      echo "archived PARTIAL reports to bench/history/$sha/ (run exited $trap_status)"
    fi
  fi
  return 0
}
trap archive_reports EXIT

cmake -B "$build_dir" -S "$repo_root"

# compare_baseline <report.json> <baseline.json>
# Gates every *_speedup metric at 25% below baseline; *_slots_per_sec
# metrics named in the baseline are printed for context only.
compare_baseline() {
  python3 - "$1" "$2" <<'EOF'
import json, sys

TOLERANCE = 0.25  # fail when a metric drops more than 25% below baseline

with open(sys.argv[1]) as f:
    current = json.load(f)["metrics"]
with open(sys.argv[2]) as f:
    baseline = json.load(f)["metrics"]

failures = []
for key, base in sorted(baseline.items()):
    if key.endswith("_slots_per_sec"):
        cur = current.get(key)
        print(f"  {key}: baseline {base:.4g}, current {cur:.4g} (informational)")
        continue
    if not key.endswith("_speedup"):
        continue
    cur = current.get(key)
    if cur is None or base is None:
        failures.append(f"{key}: missing (baseline {base}, current {cur})")
        continue
    floor = base * (1.0 - TOLERANCE)
    verdict = "ok" if cur >= floor else "REGRESSION"
    print(f"  {key}: baseline {base:.4g}, current {cur:.4g}, floor {floor:.4g}: {verdict}")
    if cur < floor:
        failures.append(f"{key}: {cur:.4g} < {floor:.4g} (baseline {base:.4g})")

if failures:
    print("perf check FAILED:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("perf check passed")
EOF
}

if [ "$perf_check" -eq 1 ]; then
  cmake --build "$build_dir" -j "$(nproc)" --target bench_sim_hotpath bench_campaign \
    bench_fault_resilience bench_megascale bench_fastforward
  status=0
  for spec in "bench_sim_hotpath:" "bench_campaign:--perf-check" "bench_fault_resilience:" \
              "bench_megascale:" "bench_fastforward:"; do
    name="${spec%%:*}"
    flag="${spec#*:}"
    echo "=== $name (perf check) ==="
    # shellcheck disable=SC2086
    "$build_dir/bench/$name" $flag
    report="$bench_dir/BENCH_${name#bench_}.json"
    baseline="$repo_root/bench/baselines/BENCH_${name#bench_}.baseline.json"
    [ -s "$report" ] || { echo "MISSING REPORT: $report" >&2; exit 1; }
    [ -s "$baseline" ] || { echo "MISSING BASELINE: $baseline" >&2; exit 1; }
    compare_baseline "$report" "$baseline" || status=1
  done
  exit "$status"
fi

cmake --build "$build_dir" -j "$(nproc)"

bins=()
for bin in "$build_dir"/bench/bench_*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  bins+=("$bin")
done
if [ "${#bins[@]}" -eq 0 ]; then
  echo "no bench binaries found under $build_dir/bench" >&2
  exit 1
fi

status=0
if [ "$jobs" -le 1 ]; then
  for bin in "${bins[@]}"; do
    name="$(basename "$bin")"
    echo
    echo "=== $name ==="
    if ! "$bin"; then
      echo "FAILED: $name" >&2
      status=1
    fi
    report="$bench_dir/BENCH_${name#bench_}.json"
    if [ ! -s "$report" ]; then
      echo "MISSING REPORT: $report" >&2
      status=1
    fi
  done
else
  scratch="$(mktemp -d)"
  for bin in "${bins[@]}"; do
    name="$(basename "$bin")"
    mkdir -p "$scratch/$name"
    (
      # Private report dir per bench: no two benches ever write (or truncate)
      # the same BENCH_*.json concurrently.
      if TTDC_BENCH_DIR="$scratch/$name" "$bin" > "$scratch/$name/log" 2>&1; then
        echo 0 > "$scratch/$name/status"
      else
        echo 1 > "$scratch/$name/status"
      fi
    ) &
    while [ "$(jobs -rp | wc -l)" -ge "$jobs" ]; do
      wait -n || true
    done
  done
  wait || true
  for bin in "${bins[@]}"; do
    name="$(basename "$bin")"
    echo
    echo "=== $name ==="
    cat "$scratch/$name/log"
    if [ "$(cat "$scratch/$name/status")" != "0" ]; then
      echo "FAILED: $name" >&2
      status=1
    fi
    moved=0
    for report in "$scratch/$name"/BENCH_*.json; do
      [ -s "$report" ] || continue
      mv "$report" "$bench_dir/"
      moved=1
    done
    if [ "$moved" -eq 0 ]; then
      echo "MISSING REPORT: BENCH_${name#bench_}.json" >&2
      status=1
    fi
  done
fi

echo
echo "ran ${#bins[@]} benches; reports in $bench_dir:"
ls -1 "$bench_dir"/BENCH_*.json 2>/dev/null || true

# The EXIT trap (archive_reports) copies this run's reports into
# bench/history/<git-sha>/ — including on failure paths above.
exit "$status"
