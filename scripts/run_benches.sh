#!/usr/bin/env bash
# Builds the bench harness and runs every bench binary, collecting the
# machine-readable BENCH_<name>.json reports (obs::BenchReport) at the repo
# root. Exits non-zero if the build fails, any bench fails its paper-claim
# check, or any report file is missing afterwards.
#
# Usage: scripts/run_benches.sh [build-dir]
#   TTDC_BENCH_DIR  overrides where reports are written (default: repo root)
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
bench_dir="${TTDC_BENCH_DIR:-$repo_root}"
export TTDC_BENCH_DIR="$bench_dir"

cmake -B "$build_dir" -S "$repo_root" || exit 1
cmake --build "$build_dir" -j "$(nproc)" || exit 1

status=0
ran=0
for bin in "$build_dir"/bench/bench_*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  echo
  echo "=== $name ==="
  if ! "$bin"; then
    echo "FAILED: $name" >&2
    status=1
  fi
  ran=$((ran + 1))
  report="$bench_dir/BENCH_${name#bench_}.json"
  if [ ! -s "$report" ]; then
    echo "MISSING REPORT: $report" >&2
    status=1
  fi
done

if [ "$ran" -eq 0 ]; then
  echo "no bench binaries found under $build_dir/bench" >&2
  exit 1
fi

echo
echo "ran $ran benches; reports in $bench_dir:"
ls -1 "$bench_dir"/BENCH_*.json 2>/dev/null
exit $status
