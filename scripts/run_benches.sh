#!/usr/bin/env bash
# Builds the bench harness and runs every bench binary, collecting the
# machine-readable BENCH_<name>.json reports (obs::BenchReport) at the repo
# root. Exits non-zero if the build fails, any bench fails its paper-claim
# check, or any report file is missing afterwards.
#
# Usage: scripts/run_benches.sh [--perf-check] [build-dir]
#   TTDC_BENCH_DIR  overrides where reports are written (default: repo root)
#
# --perf-check: runs only bench_sim_hotpath and compares it against the
# committed baseline (bench/baselines/), failing on a >25% regression of
# any scalar-vs-batched speedup. The speedups are gated because the paired
# measurement cancels machine load and clock drift; absolute slots/sec are
# printed for context but not gated (they halve under a concurrent build).
# Regenerate the baseline (copy BENCH_sim_hotpath.json over it) when the
# pipeline legitimately changes shape.
set -euo pipefail

perf_check=0
if [ "${1:-}" = "--perf-check" ]; then
  perf_check=1
  shift
fi

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
bench_dir="${TTDC_BENCH_DIR:-$repo_root}"
export TTDC_BENCH_DIR="$bench_dir"

cmake -B "$build_dir" -S "$repo_root"

if [ "$perf_check" -eq 1 ]; then
  cmake --build "$build_dir" -j "$(nproc)" --target bench_sim_hotpath
  echo "=== bench_sim_hotpath (perf check) ==="
  "$build_dir/bench/bench_sim_hotpath"
  report="$bench_dir/BENCH_sim_hotpath.json"
  baseline="$repo_root/bench/baselines/BENCH_sim_hotpath.baseline.json"
  [ -s "$report" ] || { echo "MISSING REPORT: $report" >&2; exit 1; }
  [ -s "$baseline" ] || { echo "MISSING BASELINE: $baseline" >&2; exit 1; }
  python3 - "$report" "$baseline" <<'EOF'
import json, sys

TOLERANCE = 0.25  # fail when a metric drops more than 25% below baseline

with open(sys.argv[1]) as f:
    current = json.load(f)["metrics"]
with open(sys.argv[2]) as f:
    baseline = json.load(f)["metrics"]

failures = []
for key, base in sorted(baseline.items()):
    if key.endswith("_batched_slots_per_sec"):
        cur = current.get(key)
        print(f"  {key}: baseline {base:.4g}, current {cur:.4g} (informational)")
        continue
    if not key.endswith("_speedup"):
        continue
    cur = current.get(key)
    if cur is None or base is None:
        failures.append(f"{key}: missing (baseline {base}, current {cur})")
        continue
    floor = base * (1.0 - TOLERANCE)
    verdict = "ok" if cur >= floor else "REGRESSION"
    print(f"  {key}: baseline {base:.4g}, current {cur:.4g}, floor {floor:.4g}: {verdict}")
    if cur < floor:
        failures.append(f"{key}: {cur:.4g} < {floor:.4g} (baseline {base:.4g})")

if failures:
    print("perf check FAILED:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("perf check passed")
EOF
  exit 0
fi

cmake --build "$build_dir" -j "$(nproc)"

status=0
ran=0
for bin in "$build_dir"/bench/bench_*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  echo
  echo "=== $name ==="
  if ! "$bin"; then
    echo "FAILED: $name" >&2
    status=1
  fi
  ran=$((ran + 1))
  report="$bench_dir/BENCH_${name#bench_}.json"
  if [ ! -s "$report" ]; then
    echo "MISSING REPORT: $report" >&2
    status=1
  fi
done

if [ "$ran" -eq 0 ]; then
  echo "no bench binaries found under $build_dir/bench" >&2
  exit 1
fi

echo
echo "ran $ran benches; reports in $bench_dir:"
ls -1 "$bench_dir"/BENCH_*.json 2>/dev/null || true
exit "$status"
