// Finite (Galois) field arithmetic GF(q) for prime powers q.
//
// The topology-transparent schedule constructions cited by the paper
// (Chlamtac-Faragò 94, Ju-Li 98, Syrotiuk-Colbourn-Ling 03) assign each node
// a polynomial over GF(q) and schedule it by the polynomial's value table.
// This module provides GF(p) directly (modular arithmetic, any prime p) and
// GF(p^m) via tables built from an irreducible polynomial found by sieving.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ttdc::gf {

/// Deterministic Miller-Rabin primality test, exact for all 64-bit inputs.
bool is_prime(std::uint64_t n);

/// Smallest prime >= n (n >= 2).
std::uint64_t next_prime(std::uint64_t n);

/// If q = p^m for a prime p and m >= 1, returns {p, m}; otherwise nullopt.
std::optional<std::pair<std::uint64_t, std::uint32_t>> prime_power_decompose(std::uint64_t q);

/// Smallest prime power >= n (n >= 2).
std::uint64_t next_prime_power(std::uint64_t n);

/// GF(q), q = p^m. Elements are 0..q-1. For m == 1 the element IS the
/// residue mod p. For m > 1 an element encodes a degree-<m polynomial over
/// GF(p) by its base-p digits (value = sum c_i * p^i), and multiplication is
/// carried out modulo a sieved irreducible polynomial; add/mul/inv are
/// precomputed tables (extension fields are capped at q <= 1024, far above
/// anything the schedule constructions need).
class GaloisField {
 public:
  /// Throws std::invalid_argument if q is not a prime power (or an
  /// extension field larger than the table cap).
  explicit GaloisField(std::uint32_t q);

  [[nodiscard]] std::uint32_t q() const { return q_; }
  [[nodiscard]] std::uint32_t p() const { return p_; }
  [[nodiscard]] std::uint32_t m() const { return m_; }
  [[nodiscard]] bool is_prime_field() const { return m_ == 1; }

  [[nodiscard]] std::uint32_t add(std::uint32_t a, std::uint32_t b) const {
    if (m_ == 1) {
      const std::uint32_t s = a + b;
      return s >= p_ ? s - p_ : s;
    }
    return add_table_[idx(a, b)];
  }

  [[nodiscard]] std::uint32_t neg(std::uint32_t a) const {
    if (m_ == 1) return a == 0 ? 0 : p_ - a;
    return neg_table_[a];
  }

  [[nodiscard]] std::uint32_t sub(std::uint32_t a, std::uint32_t b) const {
    return add(a, neg(b));
  }

  [[nodiscard]] std::uint32_t mul(std::uint32_t a, std::uint32_t b) const {
    if (m_ == 1) {
      return static_cast<std::uint32_t>((static_cast<std::uint64_t>(a) * b) % p_);
    }
    return mul_table_[idx(a, b)];
  }

  /// Multiplicative inverse; precondition a != 0.
  [[nodiscard]] std::uint32_t inv(std::uint32_t a) const;

  /// a^e by square-and-multiply (0^0 == 1).
  [[nodiscard]] std::uint32_t pow(std::uint32_t a, std::uint64_t e) const;

  /// Coefficients (constant term first) of the irreducible polynomial used
  /// to build the extension; empty for prime fields.
  [[nodiscard]] const std::vector<std::uint32_t>& modulus() const { return irreducible_; }

 private:
  [[nodiscard]] std::size_t idx(std::uint32_t a, std::uint32_t b) const {
    return static_cast<std::size_t>(a) * q_ + b;
  }

  void build_extension_tables();

  std::uint32_t q_ = 0;
  std::uint32_t p_ = 0;
  std::uint32_t m_ = 0;
  std::vector<std::uint32_t> irreducible_;  // degree m_, monic; empty if m_ == 1
  std::vector<std::uint32_t> add_table_;
  std::vector<std::uint32_t> mul_table_;
  std::vector<std::uint32_t> neg_table_;
  std::vector<std::uint32_t> inv_table_;
};

/// Horner evaluation of sum coeffs[i] * x^i over F (constant term first).
std::uint32_t eval_poly(const GaloisField& F, std::span<const std::uint32_t> coeffs,
                        std::uint32_t x);

/// Finds the lexicographically smallest monic irreducible polynomial of
/// degree m over GF(p), returned as m+1 coefficients, constant term first
/// (the leading coefficient is 1). Uses a product sieve over all monic
/// factor pairs, so intended for small p^m (the GaloisField table cap).
std::vector<std::uint32_t> find_irreducible(std::uint32_t p, std::uint32_t m);

}  // namespace ttdc::gf
