#include "gf/field.hpp"

#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace ttdc::gf {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

u64 mulmod(u64 a, u64 b, u64 m) { return static_cast<u64>(static_cast<u128>(a) * b % m); }

u64 powmod(u64 a, u64 e, u64 m) {
  u64 r = 1 % m;
  a %= m;
  while (e != 0) {
    if (e & 1) r = mulmod(r, a, m);
    a = mulmod(a, a, m);
    e >>= 1;
  }
  return r;
}

// Integer m-th root by binary search: largest r with r^m <= q.
u64 iroot(u64 q, std::uint32_t m) {
  if (m == 1) return q;
  u64 lo = 1, hi = static_cast<u64>(std::pow(static_cast<double>(q), 1.0 / m)) + 2;
  while (lo < hi) {
    const u64 mid = lo + (hi - lo + 1) / 2;
    u128 v = 1;
    bool over = false;
    for (std::uint32_t i = 0; i < m && !over; ++i) {
      v *= mid;
      if (v > q) over = true;
    }
    if (over) {
      hi = mid - 1;
    } else {
      lo = mid;
    }
  }
  return lo;
}

constexpr std::uint32_t kExtensionCap = 1024;  // table size cap for GF(p^m), m > 1

// Multiplies two polynomials over GF(p); coefficients constant-term-first.
std::vector<std::uint32_t> poly_mul(std::span<const std::uint32_t> a,
                                    std::span<const std::uint32_t> b, std::uint32_t p) {
  std::vector<std::uint32_t> out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] = static_cast<std::uint32_t>(
          (out[i + j] + static_cast<u64>(a[i]) * b[j]) % p);
    }
  }
  return out;
}

// Encodes a monic degree-d polynomial (without its leading 1) as an index:
// the d lower coefficients as base-p digits.
u64 encode_lower(std::span<const std::uint32_t> coeffs, std::uint32_t d, std::uint32_t p) {
  u64 v = 0;
  for (std::uint32_t i = d; i-- > 0;) v = v * p + coeffs[i];
  return v;
}

std::vector<std::uint32_t> decode_monic(u64 index, std::uint32_t degree, std::uint32_t p) {
  std::vector<std::uint32_t> coeffs(degree + 1, 0);
  for (std::uint32_t i = 0; i < degree; ++i) {
    coeffs[i] = static_cast<std::uint32_t>(index % p);
    index /= p;
  }
  coeffs[degree] = 1;
  return coeffs;
}

}  // namespace

bool is_prime(u64 n) {
  if (n < 2) return false;
  for (u64 sp : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull, 31ull, 37ull}) {
    if (n == sp) return true;
    if (n % sp == 0) return false;
  }
  u64 d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This witness set is deterministic for all n < 2^64.
  for (u64 a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull, 31ull, 37ull}) {
    u64 x = powmod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

u64 next_prime(u64 n) {
  if (n <= 2) return 2;
  if ((n & 1) == 0) ++n;
  while (!is_prime(n)) n += 2;
  return n;
}

std::optional<std::pair<u64, std::uint32_t>> prime_power_decompose(u64 q) {
  if (q < 2) return std::nullopt;
  // Try exponents from large to small so we find the maximal m (prime base).
  for (std::uint32_t m = 63; m >= 1; --m) {
    const u64 base = iroot(q, m);
    if (base < 2) continue;
    u128 v = 1;
    for (std::uint32_t i = 0; i < m; ++i) v *= base;
    if (v == q && is_prime(base)) return std::make_pair(base, m);
    if (m == 1) break;
  }
  return std::nullopt;
}

u64 next_prime_power(u64 n) {
  if (n <= 2) return 2;
  for (u64 q = n;; ++q) {
    if (prime_power_decompose(q)) return q;
  }
}

std::vector<std::uint32_t> find_irreducible(std::uint32_t p, std::uint32_t m) {
  if (m == 1) return {0, 1};  // x itself; unused but well defined
  // Sieve: mark every monic degree-m polynomial that factors as a product of
  // two monic polynomials of degree >= 1. Indexed by lower-coefficient digits.
  u64 qm = 1;
  for (std::uint32_t i = 0; i < m; ++i) qm *= p;
  std::vector<bool> reducible(qm, false);
  for (std::uint32_t da = 1; da <= m / 2; ++da) {
    const std::uint32_t db = m - da;
    u64 qa = 1, qb = 1;
    for (std::uint32_t i = 0; i < da; ++i) qa *= p;
    for (std::uint32_t i = 0; i < db; ++i) qb *= p;
    for (u64 ia = 0; ia < qa; ++ia) {
      const auto fa = decode_monic(ia, da, p);
      for (u64 ib = 0; ib < qb; ++ib) {
        const auto fb = decode_monic(ib, db, p);
        const auto prod = poly_mul(fa, fb, p);
        TTDC_DCHECK(prod.size() == m + 1 && prod[m] == 1,
                    "monic product degree drifted: size ", prod.size(), " for m = ", m);
        reducible[encode_lower(prod, m, p)] = true;
      }
    }
  }
  for (u64 i = 0; i < qm; ++i) {
    if (!reducible[i]) return decode_monic(i, m, p);
  }
  throw std::logic_error("no irreducible polynomial found (impossible for prime p)");
}

GaloisField::GaloisField(std::uint32_t q) : q_(q) {
  const auto pp = prime_power_decompose(q);
  if (!pp) throw std::invalid_argument("GaloisField: q must be a prime power");
  p_ = static_cast<std::uint32_t>(pp->first);
  m_ = pp->second;
  if (m_ > 1) {
    if (q_ > kExtensionCap) {
      throw std::invalid_argument("GaloisField: extension fields capped at q <= 1024");
    }
    irreducible_ = find_irreducible(p_, m_);
    build_extension_tables();
  }
}

void GaloisField::build_extension_tables() {
  const std::size_t n = static_cast<std::size_t>(q_) * q_;
  add_table_.assign(n, 0);
  mul_table_.assign(n, 0);
  neg_table_.assign(q_, 0);
  inv_table_.assign(q_, 0);

  auto digits = [&](std::uint32_t v) {
    std::vector<std::uint32_t> d(m_, 0);
    for (std::uint32_t i = 0; i < m_; ++i) {
      d[i] = v % p_;
      v /= p_;
    }
    return d;
  };
  auto pack = [&](std::span<const std::uint32_t> d) {
    std::uint32_t v = 0;
    for (std::uint32_t i = m_; i-- > 0;) v = v * p_ + (i < d.size() ? d[i] : 0);
    return v;
  };

  for (std::uint32_t a = 0; a < q_; ++a) {
    const auto da = digits(a);
    // Negation: digitwise.
    std::vector<std::uint32_t> dn(m_);
    for (std::uint32_t i = 0; i < m_; ++i) dn[i] = da[i] == 0 ? 0 : p_ - da[i];
    neg_table_[a] = pack(dn);
    for (std::uint32_t b = 0; b < q_; ++b) {
      const auto db = digits(b);
      std::vector<std::uint32_t> ds(m_);
      for (std::uint32_t i = 0; i < m_; ++i) ds[i] = (da[i] + db[i]) % p_;
      add_table_[idx(a, b)] = pack(ds);

      // Product modulo the irreducible polynomial.
      auto prod = poly_mul(da, db, p_);
      for (std::size_t deg = prod.size(); deg-- > m_;) {
        const std::uint32_t lead = prod[deg];
        if (lead == 0) continue;
        prod[deg] = 0;
        // x^deg == -(irr[0..m-1]) * x^(deg-m) since irr is monic.
        for (std::uint32_t i = 0; i < m_; ++i) {
          const u64 sub = static_cast<u64>(lead) * irreducible_[i] % p_;
          prod[deg - m_ + i] =
              static_cast<std::uint32_t>((prod[deg - m_ + i] + p_ - sub) % p_);
        }
      }
      mul_table_[idx(a, b)] = pack(prod);
    }
  }
  // Inverses by scanning the multiplication table rows.
  for (std::uint32_t a = 1; a < q_; ++a) {
    for (std::uint32_t b = 1; b < q_; ++b) {
      if (mul_table_[idx(a, b)] == 1) {
        inv_table_[a] = b;
        break;
      }
    }
    if (inv_table_[a] == 0) throw std::logic_error("element without inverse: field build bug");
  }
}

std::uint32_t GaloisField::inv(std::uint32_t a) const {
  TTDC_DCHECK(a != 0 && a < q_, "inv(", a, ") outside GF(", q_, ")*");
  if (m_ == 1) return static_cast<std::uint32_t>(powmod(a, p_ - 2, p_));
  return inv_table_[a];
}

std::uint32_t GaloisField::pow(std::uint32_t a, std::uint64_t e) const {
  std::uint32_t r = 1;
  while (e != 0) {
    if (e & 1) r = mul(r, a);
    a = mul(a, a);
    e >>= 1;
  }
  return r;
}

std::uint32_t eval_poly(const GaloisField& F, std::span<const std::uint32_t> coeffs,
                        std::uint32_t x) {
  std::uint32_t acc = 0;
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = F.add(F.mul(acc, x), coeffs[i]);
  }
  return acc;
}

}  // namespace ttdc::gf
