#include "util/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ttdc::check {

namespace {
std::atomic<FailureAction> g_action{FailureAction::kAbort};
}  // namespace

FailureAction set_failure_action(FailureAction action) noexcept {
  return g_action.exchange(action, std::memory_order_acq_rel);
}

FailureAction failure_action() noexcept {
  return g_action.load(std::memory_order_acquire);
}

bool library_checks_enabled() noexcept { return TTDC_ENABLE_CHECKS != 0; }

namespace detail {

void fail(const char* file, int line, const char* expr, const std::string& msg) {
  std::string report = "ttdc contract violation at ";
  report += file;
  report += ':';
  report += std::to_string(line);
  report += ": CHECK(";
  report += expr;
  report += ") failed";
  if (!msg.empty()) {
    report += ": ";
    report += msg;
  }
  if (failure_action() == FailureAction::kThrow) {
    throw ContractViolation(report);
  }
  std::fprintf(stderr, "%s\n", report.c_str());
  std::abort();
}

}  // namespace detail
}  // namespace ttdc::check
