// Minimal wall-clock timer for bench reporting outside google-benchmark.
#pragma once

#include <chrono>

namespace ttdc::util {

/// Steady-clock stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}

  void restart() { start_ = std::chrono::steady_clock::now(); }

  /// Elapsed seconds since construction/restart.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/restart.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ttdc::util
