// Binomial coefficients and related counting, in two precisions.
//
// The throughput theorems (Theorems 2-4, 7-9 of the paper) are ratios of
// products of binomials. Tests evaluate them exactly (unsigned __int128,
// overflow-checked); large-n sweeps evaluate them in long-double log space.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ttdc::util {

using u128 = unsigned __int128;

/// Thrown when an exact counting operation would exceed 128 bits. The
/// message carries the overflow witness (the offending operands) when the
/// failure came from checked_mul/checked_add.
class CountingOverflow : public std::overflow_error {
 public:
  CountingOverflow() : std::overflow_error("binomial computation overflowed 128 bits") {}
  explicit CountingOverflow(const std::string& what) : std::overflow_error(what) {}
};

/// Overflow-checked a * b over u128; throws CountingOverflow naming both
/// operands (the explicit overflow witness) instead of wrapping silently.
/// All exact counting paths (binomials, Theorems 2-4 throughput fractions)
/// funnel their products through this.
u128 checked_mul(u128 a, u128 b);

/// Overflow-checked a + b over u128; throws CountingOverflow with witness.
u128 checked_add(u128 a, u128 b);

/// Exact C(n, k). Returns 0 when k > n. Throws CountingOverflow if the
/// result (or an intermediate product step) does not fit in 128 bits.
u128 binomial_exact(std::uint64_t n, std::uint64_t k);

/// Exact C(n, k) as uint64_t; throws CountingOverflow if it does not fit.
std::uint64_t binomial_u64(std::uint64_t n, std::uint64_t k);

/// ln C(n, k) via lgamma; returns -inf when k > n.
long double log_binomial(std::uint64_t n, std::uint64_t k);

/// C(n, k) as long double (exp of log_binomial); 0 when k > n.
long double binomial_ld(std::uint64_t n, std::uint64_t k);

/// Exact falling factorial n * (n-1) * ... * (n-k+1); throws on overflow.
u128 falling_factorial_exact(std::uint64_t n, std::uint64_t k);

/// Renders a u128 in decimal (no standard operator<< exists for it).
std::string u128_to_string(u128 v);

/// Dense memo of C(n, k) for n <= max_n, k <= max_k, in both precisions.
///
/// The throughput theorems evaluate the same small set of binomials once
/// per slot, per grid cell, per sweep point; a sweep campaign evaluates
/// them millions of times. This table is built once (values produced by
/// the exact same binomial_ld / log_binomial / binomial_exact calls, so
/// lookups are bit-identical to the direct evaluation they replace) and is
/// immutable afterwards — safe to share read-only across campaign workers.
/// Exact u128 entries whose value would overflow 128 bits are stored as a
/// poison flag and re-throw CountingOverflow on access, matching the
/// uncached behavior.
class BinomialTable {
 public:
  BinomialTable(std::size_t max_n, std::size_t max_k);

  [[nodiscard]] std::size_t max_n() const { return max_n_; }
  [[nodiscard]] std::size_t max_k() const { return max_k_; }

  /// binomial_ld(n, k); n, k must be within the table bounds.
  [[nodiscard]] long double ld(std::size_t n, std::size_t k) const {
    return ld_[index(n, k)];
  }
  /// log_binomial(n, k).
  [[nodiscard]] long double log(std::size_t n, std::size_t k) const {
    return log_[index(n, k)];
  }
  /// binomial_exact(n, k); throws CountingOverflow exactly when the
  /// uncached call would.
  [[nodiscard]] u128 exact(std::size_t n, std::size_t k) const;

 private:
  [[nodiscard]] std::size_t index(std::size_t n, std::size_t k) const;

  std::size_t max_n_;
  std::size_t max_k_;
  std::vector<long double> ld_;
  std::vector<long double> log_;
  std::vector<u128> exact_;
  std::vector<std::uint8_t> overflowed_;
};

}  // namespace ttdc::util
