#include "util/table.hpp"

#include <fstream>
#include <iostream>
#include <sstream>

#include "util/check.hpp"

namespace ttdc::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  TTDC_DCHECK(!columns_.empty(), "Table with no columns");
}

void Table::add_row(std::vector<Cell> cells) {
  TTDC_DCHECK(cells.size() == columns_.size(), "row width ", cells.size(),
              " != column count ", columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os.precision(precision_);
  os << std::get<double>(c);
  return os.str();
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(format_cell(row[c]));
      width[c] = std::max(width[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(width[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(columns_);
  os << '|';
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& r : rendered) emit_row(r);
  return os.str();
}

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(format_cell(row[c]));
    }
    os << '\n';
  }
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

void print_banner(const std::string& experiment,
                  std::initializer_list<std::pair<std::string, std::string>> params) {
  std::cout << "# experiment = " << experiment << '\n';
  for (const auto& [k, v] : params) {
    std::cout << "# " << k << " = " << v << '\n';
  }
}

}  // namespace ttdc::util
