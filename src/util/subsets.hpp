// Enumeration and sampling of k-subsets of [0, n).
//
// The exact Requirement checkers and the brute-force throughput oracles
// enumerate all C(n-1, D) neighborhoods; the Monte-Carlo variants sample
// them. Enumeration is lexicographic with an early-exit callback so callers
// can stop at the first violation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace ttdc::util {

/// Calls visit(span-of-k-indices) for every k-subset of [0, n) in
/// lexicographic order. visit returns false to stop enumeration early.
/// Returns true if enumeration completed (was not stopped).
template <typename Visit>
bool for_each_k_subset(std::size_t n, std::size_t k, Visit&& visit) {
  if (k > n) return true;
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  if (k == 0) {
    return visit(std::span<const std::size_t>(idx.data(), 0));
  }
  while (true) {
    if (!visit(std::span<const std::size_t>(idx.data(), k))) return false;
    // Advance: find rightmost index that can be incremented.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return true;  // exhausted
    }
  }
}

/// As for_each_k_subset but over an arbitrary pool of values: visits every
/// k-subset of `pool` (by value).
template <typename T, typename Visit>
bool for_each_k_subset_of(std::span<const T> pool, std::size_t k, Visit&& visit) {
  std::vector<T> scratch(k);
  return for_each_k_subset(pool.size(), k, [&](std::span<const std::size_t> idx) {
    for (std::size_t i = 0; i < k; ++i) scratch[i] = pool[idx[i]];
    return visit(std::span<const T>(scratch.data(), k));
  });
}

/// Uniform random k-subset of `pool` (values, sorted by pool order).
template <typename T>
std::vector<T> sample_k_from(std::span<const T> pool, std::size_t k, Xoshiro256& rng) {
  std::vector<T> out;
  out.reserve(k);
  for (std::size_t i : sample_k_of(pool.size(), k, rng)) out.push_back(pool[i]);
  return out;
}

}  // namespace ttdc::util
