#include "util/slot_set.hpp"

#include <algorithm>
#include <numeric>

namespace ttdc::util {
namespace {

// Scratch buffers for sparse merges. thread_local so runner worker threads
// (each owning their own simulators) never contend; buffers reach steady
// capacity after warm-up and stop allocating.
std::vector<std::uint32_t>& merge_scratch() {
  static thread_local std::vector<std::uint32_t> scratch;
  return scratch;
}

}  // namespace

std::size_t SlotSet::sparse_find(std::uint32_t pos) const {
  const auto it = std::lower_bound(sparse_.begin(), sparse_.end(), pos);
  if (it != sparse_.end() && *it == pos) {
    return static_cast<std::size_t>(it - sparse_.begin());
  }
  return sparse_.size();
}

void SlotSet::ensure_dense_storage() {
  if (bits_.size() != size_) {
    bits_ = DynamicBitset(size_);
  } else {
    bits_.reset_all();
  }
}

void SlotSet::promote() {
  ensure_dense_storage();
  for (std::uint32_t m : sparse_) bits_.set(m);
  sparse_.clear();  // capacity retained for the next demotion
  dense_ = true;
}

void SlotSet::demote() {
  sparse_.clear();
  bits_.for_each([&](std::size_t m) { sparse_.push_back(static_cast<std::uint32_t>(m)); });
  dense_ = false;
  count_ = sparse_.size();
  count_valid_ = true;
}

void SlotSet::pin_dense() {
  if (!dense_) promote();
  pinned_ = true;
}

void SlotSet::set(std::size_t pos) {
  TTDC_CHECK_BOUNDS(pos, size_);
  if (dense_) {
    if (pinned_) {
      // Pinned sets skip count maintenance entirely so this stays the
      // one-store DynamicBitset::set the dense pipeline was built on.
      bits_.set(pos);
      count_valid_ = false;
      return;
    }
    if (!bits_.test(pos)) {
      bits_.set(pos);
      ++count_;
    }
    return;
  }
  const auto p = static_cast<std::uint32_t>(pos);
  if (sparse_.empty() || sparse_.back() < p) {  // ascending-fill fast path
    sparse_.push_back(p);
  } else {
    const auto it = std::lower_bound(sparse_.begin(), sparse_.end(), p);
    if (it != sparse_.end() && *it == p) return;
    sparse_.insert(it, p);
  }
  ++count_;
  maybe_promote();
}

void SlotSet::reset(std::size_t pos) {
  TTDC_CHECK_BOUNDS(pos, size_);
  if (dense_) {
    if (pinned_) {
      bits_.reset(pos);
      count_valid_ = false;
      return;
    }
    if (bits_.test(pos)) {
      bits_.reset(pos);
      --count_;
      maybe_demote();
    }
    return;
  }
  const std::size_t idx = sparse_find(static_cast<std::uint32_t>(pos));
  if (idx == sparse_.size()) return;
  sparse_.erase(sparse_.begin() + static_cast<std::ptrdiff_t>(idx));
  --count_;
}

void SlotSet::reset_all() {
  if (pinned_) {
    bits_.reset_all();
  } else {
    dense_ = false;
    sparse_.clear();
  }
  count_ = 0;
  count_valid_ = true;
}

void SlotSet::set_all() {
  count_ = size_;
  count_valid_ = true;
  if (pinned_ || size_ > promote_threshold(size_)) {
    if (!dense_) {
      ensure_dense_storage();
      sparse_.clear();
      dense_ = true;
    }
    bits_.set_all();
  } else {
    // Universe small enough that a full sparse vector is within threshold.
    dense_ = false;
    sparse_.resize(size_);
    std::iota(sparse_.begin(), sparse_.end(), std::uint32_t{0});
  }
}

void SlotSet::flip_all() {
  const std::size_t flipped = size_ - count();
  if (!dense_) promote();
  bits_.flip_all();
  count_ = flipped;
  count_valid_ = true;
  maybe_demote();
}

void SlotSet::copy_from(const SlotSet& other) {
  TTDC_ASSERT(size_ == other.size_, "SlotSet::copy_from universe mismatch: ", size_,
              " vs ", other.size_);
  if (pinned_) {
    if (other.dense_) {
      bits_.copy_from(other.bits_);
      count_ = other.count_;
      count_valid_ = other.count_valid_;
    } else {
      ensure_dense_storage();
      for (std::uint32_t m : other.sparse_) bits_.set(m);
      count_ = other.count_;
      count_valid_ = true;
    }
    return;
  }
  if (other.dense_) {
    if (bits_.size() != size_) bits_ = DynamicBitset(size_);
    bits_.copy_from(other.bits_);
    dense_ = true;
    sparse_.clear();
    count_ = other.count();
    count_valid_ = true;
  } else {
    sparse_ = other.sparse_;  // assign reuses capacity
    dense_ = false;
    count_ = sparse_.size();
    count_valid_ = true;
  }
}

void SlotSet::copy_from(const DynamicBitset& other) {
  TTDC_ASSERT(size_ == other.size(), "SlotSet::copy_from universe mismatch: ", size_,
              " vs ", other.size());
  const std::size_t c = other.count();
  if (pinned_ || c > promote_threshold(size_)) {
    if (bits_.size() != size_) bits_ = DynamicBitset(size_);
    bits_.copy_from(other);
    dense_ = true;
    sparse_.clear();
  } else {
    dense_ = false;
    sparse_.clear();
    other.for_each([&](std::size_t m) { sparse_.push_back(static_cast<std::uint32_t>(m)); });
  }
  count_ = c;
  count_valid_ = true;
}

SlotSet& SlotSet::operator|=(const SlotSet& other) {
  TTDC_ASSERT(size_ == other.size_, "SlotSet::operator|= universe mismatch");
  if (dense_) {
    if (other.dense_) {
      bits_ |= other.bits_;
      if (pinned_) {
        count_valid_ = false;
      } else {
        count_ = bits_.count();
        count_valid_ = true;
      }
    } else if (pinned_) {
      for (std::uint32_t m : other.sparse_) bits_.set(m);
      count_valid_ = false;
    } else {
      for (std::uint32_t m : other.sparse_) {
        if (!bits_.test(m)) {
          bits_.set(m);
          ++count_;
        }
      }
    }
    return *this;
  }
  if (other.dense_) {
    // Adopt dense: the union is at least as populous as the dense side.
    promote();
    bits_ |= other.bits_;
    count_ = bits_.count();
    count_valid_ = true;
    maybe_demote();
    return *this;
  }
  auto& scratch = merge_scratch();
  scratch.clear();
  scratch.reserve(sparse_.size() + other.sparse_.size());
  std::set_union(sparse_.begin(), sparse_.end(), other.sparse_.begin(), other.sparse_.end(),
                 std::back_inserter(scratch));
  sparse_.swap(scratch);
  count_ = sparse_.size();
  maybe_promote();
  return *this;
}

SlotSet& SlotSet::operator&=(const SlotSet& other) {
  TTDC_ASSERT(size_ == other.size_, "SlotSet::operator&= universe mismatch");
  if (!dense_) {
    // Sparse side filters in place against either representation.
    auto out = sparse_.begin();
    for (std::uint32_t m : sparse_) {
      if (other.test(m)) *out++ = m;
    }
    sparse_.erase(out, sparse_.end());
    count_ = sparse_.size();
    return *this;
  }
  if (other.dense_) {
    bits_ &= other.bits_;
    if (pinned_) {
      count_valid_ = false;
    } else {
      count_ = bits_.count();
      count_valid_ = true;
      maybe_demote();
    }
    return *this;
  }
  // Dense ∩ sparse: the result is a subset of the sparse side, so at most
  // promote_threshold members — go (or stay, when pinned, dense) with an
  // O(|other| + words) rebuild.
  if (pinned_) {
    auto& survivors = merge_scratch();
    survivors.clear();
    for (std::uint32_t m : other.sparse_) {
      if (bits_.test(m)) survivors.push_back(m);
    }
    bits_.reset_all();
    for (std::uint32_t m : survivors) bits_.set(m);
    count_ = survivors.size();
    count_valid_ = true;
    return *this;
  }
  sparse_.clear();
  for (std::uint32_t m : other.sparse_) {
    if (bits_.test(m)) sparse_.push_back(m);
  }
  dense_ = false;
  count_ = sparse_.size();
  count_valid_ = true;
  return *this;
}

SlotSet& SlotSet::subtract(const SlotSet& other) {
  TTDC_ASSERT(size_ == other.size_, "SlotSet::subtract universe mismatch");
  if (!dense_) {
    auto out = sparse_.begin();
    for (std::uint32_t m : sparse_) {
      if (!other.test(m)) *out++ = m;
    }
    sparse_.erase(out, sparse_.end());
    count_ = sparse_.size();
    return *this;
  }
  if (other.dense_) {
    bits_.subtract(other.bits_);
    if (pinned_) {
      count_valid_ = false;
    } else {
      count_ = bits_.count();
      count_valid_ = true;
      maybe_demote();
    }
    return *this;
  }
  if (pinned_) {
    for (std::uint32_t m : other.sparse_) bits_.reset(m);
    count_valid_ = false;
    return *this;
  }
  for (std::uint32_t m : other.sparse_) {
    if (bits_.test(m)) {
      bits_.reset(m);
      --count_;
    }
  }
  maybe_demote();
  return *this;
}

std::size_t SlotSet::intersection_count(const SlotSet& other) const {
  TTDC_ASSERT(size_ == other.size_, "SlotSet::intersection_count universe mismatch");
  if (dense_ && other.dense_) return bits_.intersection_count(other.bits_);
  if (!dense_ && other.dense_) {
    std::size_t c = 0;
    for (std::uint32_t m : sparse_) c += other.bits_.test(m) ? 1 : 0;
    return c;
  }
  if (dense_) {
    std::size_t c = 0;
    for (std::uint32_t m : other.sparse_) c += bits_.test(m) ? 1 : 0;
    return c;
  }
  // Sparse ∩ sparse: gallop (binary-search the smaller side into the
  // larger) when heavily skewed, linear merge otherwise.
  const std::vector<std::uint32_t>& small = sparse_.size() <= other.sparse_.size()
                                                ? sparse_
                                                : other.sparse_;
  const std::vector<std::uint32_t>& large = sparse_.size() <= other.sparse_.size()
                                                ? other.sparse_
                                                : sparse_;
  std::size_t c = 0;
  if (small.size() * 8 < large.size()) {
    for (std::uint32_t m : small) {
      c += std::binary_search(large.begin(), large.end(), m) ? 1 : 0;
    }
    return c;
  }
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < small.size() && j < large.size()) {
    if (small[i] < large[j]) {
      ++i;
    } else if (large[j] < small[i]) {
      ++j;
    } else {
      ++c;
      ++i;
      ++j;
    }
  }
  return c;
}

std::size_t SlotSet::intersection_count(const DynamicBitset& other) const {
  TTDC_ASSERT(size_ == other.size(), "SlotSet::intersection_count universe mismatch");
  if (dense_) return bits_.intersection_count(other);
  std::size_t c = 0;
  for (std::uint32_t m : sparse_) c += other.test(m) ? 1 : 0;
  return c;
}

bool SlotSet::intersects(const SlotSet& other) const {
  TTDC_ASSERT(size_ == other.size_, "SlotSet::intersects universe mismatch");
  if (dense_ && other.dense_) return bits_.intersects(other.bits_);
  const SlotSet& sparse_side = dense_ ? other : *this;
  const SlotSet& any_side = dense_ ? *this : other;
  for (std::uint32_t m : sparse_side.sparse_) {
    if (any_side.test(m)) return true;
  }
  return false;
}

DynamicBitset SlotSet::to_dense_bitset() const {
  DynamicBitset out(size_);
  if (dense_) {
    out.copy_from(bits_);
  } else {
    for (std::uint32_t m : sparse_) out.set(m);
  }
  return out;
}

std::vector<std::size_t> SlotSet::to_vector() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each([&](std::size_t m) { out.push_back(m); });
  return out;
}

bool SlotSet::operator==(const SlotSet& other) const {
  if (size_ != other.size_) return false;
  if (dense_ && other.dense_) return bits_ == other.bits_;
  if (count() != other.count()) return false;
  if (!dense_ && !other.dense_) return sparse_ == other.sparse_;
  const SlotSet& s = dense_ ? other : *this;
  const SlotSet& d = dense_ ? *this : other;
  for (std::uint32_t m : s.sparse_) {
    if (!d.bits_.test(m)) return false;
  }
  return true;
}

}  // namespace ttdc::util
