#include "util/bitset.hpp"

#include <bit>
#include <sstream>

namespace ttdc::util {

void DynamicBitset::set_all() {
  for (auto& w : words_) w = ~Word{0};
  trim_tail();
}

void DynamicBitset::reset_all() {
  for (auto& w : words_) w = 0;
}

void DynamicBitset::copy_from(const DynamicBitset& other) {
  TTDC_DCHECK(size_ == other.size_, "bitset universe mismatch: ", size_, " vs ",
              other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] = other.words_[i];
}

void DynamicBitset::flip_all() {
  for (auto& w : words_) w = ~w;
  trim_tail();
}

std::size_t DynamicBitset::count() const {
  std::size_t total = 0;
  for (Word w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool DynamicBitset::none() const {
  for (Word w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool DynamicBitset::intersects(const DynamicBitset& other) const {
  TTDC_DCHECK(size_ == other.size_, "bitset universe mismatch: ", size_, " vs ",
              other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

bool DynamicBitset::is_subset_of(const DynamicBitset& other) const {
  TTDC_DCHECK(size_ == other.size_, "bitset universe mismatch: ", size_, " vs ",
              other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

std::size_t DynamicBitset::intersection_count(const DynamicBitset& other) const {
  TTDC_DCHECK(size_ == other.size_, "bitset universe mismatch: ", size_, " vs ",
              other.size_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return total;
}

std::size_t DynamicBitset::difference_count(const DynamicBitset& other) const {
  TTDC_DCHECK(size_ == other.size_, "bitset universe mismatch: ", size_, " vs ",
              other.size_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] & ~other.words_[i]));
  }
  return total;
}

bool DynamicBitset::has_member_outside(const DynamicBitset& other) const {
  TTDC_DCHECK(size_ == other.size_, "bitset universe mismatch: ", size_, " vs ",
              other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return true;
  }
  return false;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  TTDC_DCHECK(size_ == other.size_, "bitset universe mismatch: ", size_, " vs ",
              other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  TTDC_DCHECK(size_ == other.size_, "bitset universe mismatch: ", size_, " vs ",
              other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& other) {
  TTDC_DCHECK(size_ == other.size_, "bitset universe mismatch: ", size_, " vs ",
              other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::subtract(const DynamicBitset& other) {
  TTDC_DCHECK(size_ == other.size_, "bitset universe mismatch: ", size_, " vs ",
              other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

DynamicBitset DynamicBitset::complement() const {
  DynamicBitset out(size_);
  for (std::size_t i = 0; i < words_.size(); ++i) out.words_[i] = ~words_[i];
  out.trim_tail();
  return out;
}

std::size_t DynamicBitset::find_first() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

std::size_t DynamicBitset::find_next(std::size_t pos) const {
  ++pos;
  if (pos >= size_) return size_;
  std::size_t w = pos / kWordBits;
  Word masked = words_[w] & (~Word{0} << (pos % kWordBits));
  if (masked != 0) {
    return w * kWordBits + static_cast<std::size_t>(std::countr_zero(masked));
  }
  for (++w; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

std::vector<std::size_t> DynamicBitset::to_vector() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each([&](std::size_t i) { out.push_back(i); });
  return out;
}

std::string DynamicBitset::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for_each([&](std::size_t i) {
    if (!first) os << ", ";
    os << i;
    first = false;
  });
  os << '}';
  return os.str();
}

std::size_t DynamicBitset::count_and_andnot(const DynamicBitset& a,
                                            const DynamicBitset& b) const {
  TTDC_DCHECK(size_ == a.size_ && size_ == b.size_,
              "bitset universe mismatch: ", size_, " vs ", a.size_, " / ", b.size_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(words_[i] & a.words_[i] & ~b.words_[i]));
  }
  return total;
}

bool DynamicBitset::any_and_andnot(const DynamicBitset& a, const DynamicBitset& b) const {
  TTDC_DCHECK(size_ == a.size_ && size_ == b.size_,
              "bitset universe mismatch: ", size_, " vs ", a.size_, " / ", b.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & a.words_[i] & ~b.words_[i]) != 0) return true;
  }
  return false;
}

void DynamicBitset::trim_tail() {
  const std::size_t rem = size_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (Word{1} << rem) - 1;
  }
}

std::size_t BitsetHash::operator()(const DynamicBitset& b) const noexcept {
  std::size_t h = 1469598103934665603ull;
  for (DynamicBitset::Word w : b.words()) {
    h ^= static_cast<std::size_t>(w);
    h *= 1099511628211ull;
  }
  h ^= b.size();
  return h;
}

}  // namespace ttdc::util
