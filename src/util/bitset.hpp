// Dynamic fixed-universe bitset with word-parallel set algebra.
//
// Node sets (subsets of V_n) and slot sets (subsets of [0,L)) throughout the
// library are DynamicBitsets. The hot paths of the topology-transparency
// checkers are AND/ANDNOT folds over these, so the operations below are
// written to vectorize and to avoid allocation in loops (see the *_inplace
// and *_into variants).
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace ttdc::util {

/// A fixed-size set of integers drawn from the universe [0, size()).
///
/// Invariant: bits at positions >= size() in the last word are always zero,
/// so popcount/equality/iteration never need masking on read.
class DynamicBitset {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  DynamicBitset() = default;

  /// Constructs an empty set over the universe [0, universe_size).
  explicit DynamicBitset(std::size_t universe_size)
      : size_(universe_size), words_((universe_size + kWordBits - 1) / kWordBits, 0) {}

  /// Constructs a set over [0, universe_size) containing `members`.
  DynamicBitset(std::size_t universe_size, std::initializer_list<std::size_t> members)
      : DynamicBitset(universe_size) {
    for (std::size_t m : members) set(m);
  }

  /// Universe size (number of addressable positions), not the cardinality.
  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] bool test(std::size_t pos) const {
    TTDC_CHECK_BOUNDS(pos, size_);
    return (words_[pos / kWordBits] >> (pos % kWordBits)) & 1u;
  }

  void set(std::size_t pos) {
    TTDC_CHECK_BOUNDS(pos, size_);
    words_[pos / kWordBits] |= Word{1} << (pos % kWordBits);
  }

  void reset(std::size_t pos) {
    TTDC_CHECK_BOUNDS(pos, size_);
    words_[pos / kWordBits] &= ~(Word{1} << (pos % kWordBits));
  }

  void set_all();
  void reset_all();

  /// *this = other, without changing universes. Requires equal size();
  /// never allocates (the word storage is reused), which makes it the
  /// assignment of choice inside per-slot hot loops.
  void copy_from(const DynamicBitset& other);

  /// Complement in place (no allocation, unlike complement()).
  void flip_all();

  /// Number of members (popcount across words).
  [[nodiscard]] std::size_t count() const;

  [[nodiscard]] bool none() const;
  [[nodiscard]] bool any() const { return !none(); }

  /// True if *this and other share at least one member. O(words), no alloc.
  [[nodiscard]] bool intersects(const DynamicBitset& other) const;

  /// True if every member of *this is a member of `other`.
  [[nodiscard]] bool is_subset_of(const DynamicBitset& other) const;

  /// |*this AND other| without materializing the intersection.
  [[nodiscard]] std::size_t intersection_count(const DynamicBitset& other) const;

  /// |*this AND NOT other| without materializing the difference.
  [[nodiscard]] std::size_t difference_count(const DynamicBitset& other) const;

  /// True if (*this AND NOT other) is non-empty, i.e. *this has a member
  /// outside `other`. This is the inner kernel of the Requirement checkers.
  [[nodiscard]] bool has_member_outside(const DynamicBitset& other) const;

  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator^=(const DynamicBitset& other);

  /// *this = *this AND NOT other.
  DynamicBitset& subtract(const DynamicBitset& other);

  [[nodiscard]] friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }
  [[nodiscard]] friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  [[nodiscard]] friend DynamicBitset operator^(DynamicBitset a, const DynamicBitset& b) {
    a ^= b;
    return a;
  }

  /// Set difference a \ b.
  [[nodiscard]] friend DynamicBitset difference(DynamicBitset a, const DynamicBitset& b) {
    a.subtract(b);
    return a;
  }

  /// Complement within the universe.
  [[nodiscard]] DynamicBitset complement() const;

  bool operator==(const DynamicBitset& other) const = default;

  /// Index of the lowest member, or size() if empty.
  [[nodiscard]] std::size_t find_first() const;

  /// Index of the lowest member strictly greater than pos, or size() if none.
  [[nodiscard]] std::size_t find_next(std::size_t pos) const;

  /// Calls fn(i) for every member i in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      Word word = words_[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        fn(w * kWordBits + bit);
        word &= word - 1;
      }
    }
  }

  /// Members as a vector, in increasing order.
  [[nodiscard]] std::vector<std::size_t> to_vector() const;

  /// "{0, 5, 17}" style rendering for logs and error messages.
  [[nodiscard]] std::string to_string() const;

  /// Raw word storage (read-only), for hashing and fused kernels.
  [[nodiscard]] const std::vector<Word>& words() const { return words_; }

  /// Fused kernel: |this AND a AND NOT b| (e.g. |recv(y) ∩ freeSlots|).
  [[nodiscard]] std::size_t count_and_andnot(const DynamicBitset& a,
                                             const DynamicBitset& b) const;

  /// Fused kernel: does (this AND a AND NOT b) have any member?
  [[nodiscard]] bool any_and_andnot(const DynamicBitset& a, const DynamicBitset& b) const;

 private:
  void trim_tail();

  std::size_t size_ = 0;
  std::vector<Word> words_;
};

/// FNV-1a hash over the word storage; lets DynamicBitset key hash maps.
struct BitsetHash {
  std::size_t operator()(const DynamicBitset& b) const noexcept;
};

}  // namespace ttdc::util
