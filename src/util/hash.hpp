// Small non-cryptographic hashing helpers.
//
// FNV-1a 64 is the repo's checksum for corruption detection (journal lines,
// ArtifactStore entries): fast, dependency-free, and stable across
// platforms — the journal format commits to it, so do not change the
// constants. For keyed stream derivation (per-link fault channels) the
// SplitMix64 finalizer gives better avalanche than FNV; mix64 exposes it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ttdc::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Folds one byte into a running FNV-1a 64 state.
[[nodiscard]] constexpr std::uint64_t fnv1a64_byte(std::uint64_t state,
                                                   unsigned char byte) {
  return (state ^ byte) * kFnvPrime;
}

/// FNV-1a 64 of a byte range, continuing from `state` (chainable).
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes,
                                              std::uint64_t state = kFnvOffsetBasis) {
  for (const char c : bytes) {
    state = fnv1a64_byte(state, static_cast<unsigned char>(c));
  }
  return state;
}

/// Folds a 64-bit word (little-endian byte order) into a running state.
[[nodiscard]] constexpr std::uint64_t fnv1a64_u64(std::uint64_t state, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    state = fnv1a64_byte(state, static_cast<unsigned char>(v >> (8 * i)));
  }
  return state;
}

/// SplitMix64 finalizer: a strong 64 -> 64 bit mixer. Used to derive
/// independent per-key RNG streams from (seed, key) without correlation
/// between adjacent keys.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace ttdc::util
