// Deterministic, splittable pseudo-random generation.
//
// Everything randomized in ttdc (topology generators, Monte-Carlo checkers,
// the simulator's traffic sources) takes an explicit seed so experiments are
// reproducible; xoshiro256** is the workhorse and splitmix64 seeds it.
#pragma once

#include <cstdint>
#include <vector>

namespace ttdc::util {

/// splitmix64: used to expand a single u64 seed into xoshiro state and to
/// derive independent child seeds (seed ^ constant chains are not enough).
struct SplitMix64 {
  std::uint64_t state;

  explicit SplitMix64(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bull) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Unbiased uniform integer in [0, bound) via Lemire rejection.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform01() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Derives an independent child generator (for per-thread / per-replicate
  /// streams); deterministic in (parent state consumed, index).
  Xoshiro256 split();

  /// State equality. Two generators compare equal iff they will produce the
  /// same stream forever; the simulator's fast-forward engine uses this as a
  /// taint check ("did this frame consume any simulator randomness?") when
  /// deciding whether a frame's outcome is memoizable.
  [[nodiscard]] friend bool operator==(const Xoshiro256& a, const Xoshiro256& b) {
    return a.s_[0] == b.s_[0] && a.s_[1] == b.s_[1] && a.s_[2] == b.s_[2] &&
           a.s_[3] == b.s_[3];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t s_[4];
};

/// Fisher-Yates shuffle of a vector, in place.
template <typename T>
void shuffle(std::vector<T>& v, Xoshiro256& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = rng.below(i);
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

/// Uniform random k-subset of [0, universe), returned sorted.
/// Floyd's algorithm: O(k) expected, no O(universe) scratch.
std::vector<std::size_t> sample_k_of(std::size_t universe, std::size_t k, Xoshiro256& rng);

}  // namespace ttdc::util
