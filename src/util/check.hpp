// ttdc::check — the contract/invariant layer (DESIGN.md §9).
//
// Three macros, in decreasing cost tolerance:
//
//   TTDC_ASSERT(cond, msg...)        always compiled in; for cold paths and
//                                    API boundaries (constructor contracts,
//                                    topology swaps) where the check is
//                                    negligible next to the operation.
//   TTDC_DCHECK(cond, msg...)        compiled in only when TTDC_ENABLE_CHECKS
//                                    (default: !NDEBUG); for hot paths —
//                                    bitset word kernels, per-slot queue
//                                    operations — where Release must pay
//                                    nothing, not even the branch.
//   TTDC_CHECK_BOUNDS(idx, bound)    TTDC_DCHECK(idx < bound) with both
//                                    values in the failure message.
//
// The msg... arguments are streamed (operator<<) into the failure report and
// are evaluated only on failure, so `TTDC_DCHECK(a == b, "got ", a)` costs a
// comparison on the passing path.
//
// On violation the installed FailureAction decides: kAbort (default) prints
// the report to stderr and aborts — a contract violation means library state
// is already corrupt, continuing forges results; kThrow raises
// check::ContractViolation instead, which is what the tests install so a
// negative test is an EXPECT_THROW rather than a death test.
//
// Release builds compile TTDC_DCHECK to nothing (the condition is not even
// evaluated); -DTTDC_CHECKS=ON forces them back on in any build type.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

#ifndef TTDC_ENABLE_CHECKS
#ifdef NDEBUG
#define TTDC_ENABLE_CHECKS 0
#else
#define TTDC_ENABLE_CHECKS 1
#endif
#endif

namespace ttdc::check {

/// Raised on contract violation when FailureAction::kThrow is installed.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

enum class FailureAction {
  kAbort,  // report to stderr, std::abort() (default)
  kThrow,  // throw ContractViolation (death-free GTest)
};

/// Installs the process-wide failure action; returns the previous one.
FailureAction set_failure_action(FailureAction action) noexcept;
[[nodiscard]] FailureAction failure_action() noexcept;

/// RAII: install kThrow for a test scope, restore on exit.
class ScopedThrowOnViolation {
 public:
  ScopedThrowOnViolation() : previous_(set_failure_action(FailureAction::kThrow)) {}
  ~ScopedThrowOnViolation() { set_failure_action(previous_); }
  ScopedThrowOnViolation(const ScopedThrowOnViolation&) = delete;
  ScopedThrowOnViolation& operator=(const ScopedThrowOnViolation&) = delete;

 private:
  FailureAction previous_;
};

/// True when the ttdc *libraries* were compiled with TTDC_ENABLE_CHECKS.
/// Tests branch on this: Simulator::audit_invariants() fails loudly when it
/// is true and is a compiled-out no-op when it is false. (A test TU can
/// re-enable the macros for itself by defining TTDC_ENABLE_CHECKS before
/// including this header; that does not change what the libraries do.)
[[nodiscard]] bool library_checks_enabled() noexcept;

namespace detail {

/// Renders the report and aborts or throws per the installed action.
[[noreturn]] void fail(const char* file, int line, const char* expr, const std::string& msg);

template <typename... Args>
std::string format(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return {};
  } else {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
  }
}

}  // namespace detail
}  // namespace ttdc::check

#define TTDC_ASSERT(cond, ...)                                             \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      ::ttdc::check::detail::fail(__FILE__, __LINE__, #cond,               \
                                  ::ttdc::check::detail::format(__VA_ARGS__)); \
    }                                                                      \
  } while (false)

#if TTDC_ENABLE_CHECKS
#define TTDC_DCHECK(cond, ...) TTDC_ASSERT(cond, __VA_ARGS__)
#define TTDC_CHECK_BOUNDS(idx, bound)                                      \
  TTDC_ASSERT((idx) < (bound), "index ", (idx), " out of bounds [0, ", (bound), ")")
#else
// Compiled out: the condition and message operands are never evaluated.
#define TTDC_DCHECK(cond, ...) \
  do {                         \
  } while (false)
#define TTDC_CHECK_BOUNDS(idx, bound) \
  do {                                \
  } while (false)
#endif
