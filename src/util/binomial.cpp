#include "util/binomial.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace ttdc::util {

u128 checked_mul(u128 a, u128 b) {
  if (a != 0 && b > static_cast<u128>(-1) / a) {
    throw CountingOverflow("u128 overflow: " + u128_to_string(a) + " * " + u128_to_string(b));
  }
  return a * b;
}

u128 checked_add(u128 a, u128 b) {
  if (a > static_cast<u128>(-1) - b) {
    throw CountingOverflow("u128 overflow: " + u128_to_string(a) + " + " + u128_to_string(b));
  }
  return a + b;
}

u128 binomial_exact(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  k = std::min<std::uint64_t>(k, n - k);
  u128 result = 1;
  // Multiply/divide interleaved; result stays integral at every step because
  // C(n - k + i, i) is integral.
  for (std::uint64_t i = 1; i <= k; ++i) {
    result = checked_mul(result, n - k + i);
    result /= i;
  }
  return result;
}

std::uint64_t binomial_u64(std::uint64_t n, std::uint64_t k) {
  const u128 v = binomial_exact(n, k);
  if (v > std::numeric_limits<std::uint64_t>::max()) throw CountingOverflow();
  return static_cast<std::uint64_t>(v);
}

long double log_binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -std::numeric_limits<long double>::infinity();
  if (k == 0 || k == n) return 0.0L;
  return std::lgamma(static_cast<long double>(n) + 1.0L) -
         std::lgamma(static_cast<long double>(k) + 1.0L) -
         std::lgamma(static_cast<long double>(n - k) + 1.0L);
}

long double binomial_ld(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0.0L;
  return std::exp(log_binomial(n, k));
}

u128 falling_factorial_exact(std::uint64_t n, std::uint64_t k) {
  u128 result = 1;
  for (std::uint64_t i = 0; i < k; ++i) {
    result = checked_mul(result, n - i);
  }
  return result;
}

BinomialTable::BinomialTable(std::size_t max_n, std::size_t max_k)
    : max_n_(max_n), max_k_(max_k) {
  const std::size_t cells = (max_n + 1) * (max_k + 1);
  ld_.resize(cells);
  log_.resize(cells);
  exact_.resize(cells, 0);
  overflowed_.resize(cells, 0);
  for (std::size_t n = 0; n <= max_n; ++n) {
    for (std::size_t k = 0; k <= max_k; ++k) {
      const std::size_t i = index(n, k);
      ld_[i] = binomial_ld(n, k);
      log_[i] = log_binomial(n, k);
      try {
        exact_[i] = binomial_exact(n, k);
      } catch (const CountingOverflow&) {
        overflowed_[i] = 1;
      }
    }
  }
}

std::size_t BinomialTable::index(std::size_t n, std::size_t k) const {
  if (n > max_n_ || k > max_k_) {
    throw std::out_of_range("BinomialTable: C(" + std::to_string(n) + ", " +
                            std::to_string(k) + ") outside memoized range (max_n=" +
                            std::to_string(max_n_) + ", max_k=" + std::to_string(max_k_) +
                            ")");
  }
  return n * (max_k_ + 1) + k;
}

u128 BinomialTable::exact(std::size_t n, std::size_t k) const {
  const std::size_t i = index(n, k);
  if (overflowed_[i]) throw CountingOverflow();
  return exact_[i];
}

std::string u128_to_string(u128 v) {
  if (v == 0) return "0";
  std::string out;
  while (v != 0) {
    out.push_back(static_cast<char>('0' + static_cast<unsigned>(v % 10)));
    v /= 10;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace ttdc::util
