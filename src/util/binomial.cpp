#include "util/binomial.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace ttdc::util {

u128 checked_mul(u128 a, u128 b) {
  if (a != 0 && b > static_cast<u128>(-1) / a) {
    throw CountingOverflow("u128 overflow: " + u128_to_string(a) + " * " + u128_to_string(b));
  }
  return a * b;
}

u128 checked_add(u128 a, u128 b) {
  if (a > static_cast<u128>(-1) - b) {
    throw CountingOverflow("u128 overflow: " + u128_to_string(a) + " + " + u128_to_string(b));
  }
  return a + b;
}

u128 binomial_exact(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  k = std::min<std::uint64_t>(k, n - k);
  u128 result = 1;
  // Multiply/divide interleaved; result stays integral at every step because
  // C(n - k + i, i) is integral.
  for (std::uint64_t i = 1; i <= k; ++i) {
    result = checked_mul(result, n - k + i);
    result /= i;
  }
  return result;
}

std::uint64_t binomial_u64(std::uint64_t n, std::uint64_t k) {
  const u128 v = binomial_exact(n, k);
  if (v > std::numeric_limits<std::uint64_t>::max()) throw CountingOverflow();
  return static_cast<std::uint64_t>(v);
}

long double log_binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -std::numeric_limits<long double>::infinity();
  if (k == 0 || k == n) return 0.0L;
  return std::lgamma(static_cast<long double>(n) + 1.0L) -
         std::lgamma(static_cast<long double>(k) + 1.0L) -
         std::lgamma(static_cast<long double>(n - k) + 1.0L);
}

long double binomial_ld(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0.0L;
  return std::exp(log_binomial(n, k));
}

u128 falling_factorial_exact(std::uint64_t n, std::uint64_t k) {
  u128 result = 1;
  for (std::uint64_t i = 0; i < k; ++i) {
    result = checked_mul(result, n - i);
  }
  return result;
}

std::string u128_to_string(u128 v) {
  if (v == 0) return "0";
  std::string out;
  while (v != 0) {
    out.push_back(static_cast<char>('0' + static_cast<unsigned>(v % 10)));
    v /= 10;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace ttdc::util
