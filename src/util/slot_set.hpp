// Hybrid sparse/dense node sets for the megascale simulator pipeline.
//
// A SlotSet is a set over a fixed universe [0, size()) that stores its
// members either as a sorted vector of indices (sparse) or as a
// DynamicBitset (dense), switching representation on population count so
// that per-slot set algebra costs O(active members) instead of O(universe)
// when almost everyone sleeps — the regime the paper's duty-cycled
// schedules are designed for. Every operation is representation-
// transparent: two SlotSets holding the same members are equal and behave
// identically regardless of how either stores them, which is what lets the
// sharded hybrid pipeline stay bit-identical to the dense batched one
// (DESIGN.md §13).
//
// Representation policy (hysteresis, so counts oscillating around a single
// threshold never flap):
//   * promote sparse -> dense when count() exceeds promote_threshold(n)
//     (= max(16, n/32), the memory/scan break-even);
//   * demote dense -> sparse when a member-removing operation leaves
//     count() below demote_threshold(n) (= promote/2);
//   * inside the band [demote, promote] the current representation is
//     sticky;
//   * copy_from() adopts the source's representation, clear() always
//     returns to empty-sparse, and pin_dense() freezes the set dense
//     forever (the dense batched pipeline pins every per-slot set, making
//     its cost profile — and its perf baselines — identical to the
//     pre-hybrid DynamicBitset code).
//
// The dense word storage is kept allocated across demotions and the sparse
// vector keeps its capacity across promotions, so steady-state per-slot use
// never touches the allocator.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "util/bitset.hpp"
#include "util/check.hpp"

namespace ttdc::util {

class SlotSet {
 public:
  using Word = DynamicBitset::Word;

  SlotSet() = default;

  /// Empty set over the universe [0, universe_size), sparse.
  explicit SlotSet(std::size_t universe_size) : size_(universe_size) {}

  SlotSet(std::size_t universe_size, std::initializer_list<std::size_t> members)
      : SlotSet(universe_size) {
    for (std::size_t m : members) set(m);
  }

  /// Population count above which a sparse set promotes to dense.
  [[nodiscard]] static std::size_t promote_threshold(std::size_t universe_size) {
    const std::size_t scan = universe_size / 32;
    return scan < 16 ? 16 : scan;
  }
  /// Population count below which an (unpinned) dense set demotes back to
  /// sparse. Strictly below the promote threshold: the gap is the
  /// hysteresis band.
  [[nodiscard]] static std::size_t demote_threshold(std::size_t universe_size) {
    return promote_threshold(universe_size) / 2;
  }

  /// Universe size (addressable positions), not the cardinality.
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Number of members. O(1) except for a pinned-dense set mutated by bulk
  /// ops since the last query (recomputed by popcount on demand).
  [[nodiscard]] std::size_t count() const {
    if (!count_valid_) {
      count_ = bits_.count();
      count_valid_ = true;
    }
    return count_;
  }

  [[nodiscard]] bool none() const { return count() == 0; }
  [[nodiscard]] bool any() const { return !none(); }

  [[nodiscard]] bool is_dense() const { return dense_; }
  [[nodiscard]] bool is_pinned_dense() const { return pinned_; }

  /// Freezes the set in dense representation: no representation decisions,
  /// no eager count maintenance — exactly a DynamicBitset with a vtable-free
  /// mode branch. The dense batched pipeline pins all its per-slot sets.
  void pin_dense();

  [[nodiscard]] bool test(std::size_t pos) const {
    TTDC_CHECK_BOUNDS(pos, size_);
    if (dense_) return bits_.test(pos);
    return sparse_find(static_cast<std::uint32_t>(pos)) != sparse_.size();
  }

  void set(std::size_t pos);
  void reset(std::size_t pos);

  /// Empties the set. Unpinned sets return to the sparse representation
  /// (count 0 is below every demote threshold); pinned sets stay dense.
  void reset_all();
  /// Fills the set with the whole universe (dense unless the universe is
  /// tiny enough that sparse would hold it anyway).
  void set_all();
  /// Complement within the universe.
  void flip_all();

  /// *this = other. Requires equal universes. Adopts the source
  /// representation unless *this is pinned dense (then densifies).
  void copy_from(const SlotSet& other);
  /// *this = the members of a DynamicBitset over the same universe; picks
  /// the representation by the source's population (or dense when pinned).
  void copy_from(const DynamicBitset& other);

  SlotSet& operator|=(const SlotSet& other);
  SlotSet& operator&=(const SlotSet& other);
  /// *this = *this AND NOT other.
  SlotSet& subtract(const SlotSet& other);

  /// |*this AND other| without materializing the intersection. Dispatches
  /// on the representation pair: dense∩dense is the word-parallel popcount
  /// fold, sparse∩dense walks the sparse side testing bits, sparse∩sparse
  /// merges (galloping by binary search when one side is much smaller), so
  /// the cost is O(min population), never O(universe).
  [[nodiscard]] std::size_t intersection_count(const SlotSet& other) const;
  /// |*this AND other| against a plain DynamicBitset over the same universe.
  [[nodiscard]] std::size_t intersection_count(const DynamicBitset& other) const;

  /// True if *this and other share at least one member (early-exit).
  [[nodiscard]] bool intersects(const SlotSet& other) const;

  /// Calls fn(i) for every member i in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (dense_) {
      bits_.for_each(fn);
    } else {
      for (std::uint32_t m : sparse_) fn(static_cast<std::size_t>(m));
    }
  }

  /// Calls fn(i) for every member of (*this AND other), in increasing
  /// order, without materializing the intersection.
  template <typename Fn>
  void for_each_intersection(const SlotSet& other, Fn&& fn) const {
    if (!dense_) {
      for (std::uint32_t m : sparse_) {
        if (other.test(m)) fn(static_cast<std::size_t>(m));
      }
      return;
    }
    if (!other.dense_) {
      for (std::uint32_t m : other.sparse_) {
        if (bits_.test(m)) fn(static_cast<std::size_t>(m));
      }
      return;
    }
    const auto& a = bits_.words();
    const auto& b = other.bits_.words();
    for (std::size_t w = 0; w < a.size(); ++w) {
      Word word = a[w] & b[w];
      while (word != 0) {
        fn(w * DynamicBitset::kWordBits +
           static_cast<std::size_t>(std::countr_zero(word)));
        word &= word - 1;
      }
    }
  }

  /// Sorted member list when sparse (empty span view is not provided for
  /// dense sets — callers branch on is_dense()). The sharded phase-3 fold
  /// partitions this directly.
  [[nodiscard]] const std::vector<std::uint32_t>& sparse_members() const {
    TTDC_DCHECK(!dense_, "sparse_members() on a dense SlotSet");
    return sparse_;
  }

  /// Dense word view; only valid in dense representation (checked). The
  /// legacy scalar pipeline and fused dense kernels use this.
  [[nodiscard]] const DynamicBitset& as_dense() const {
    TTDC_DCHECK(dense_, "as_dense() on a sparse SlotSet");
    return bits_;
  }

  /// Materializes a DynamicBitset copy (allocates; not for hot paths).
  [[nodiscard]] DynamicBitset to_dense_bitset() const;

  /// Members as a sorted vector.
  [[nodiscard]] std::vector<std::size_t> to_vector() const;

  /// Set equality — representation-transparent: a sparse and a dense set
  /// holding the same members compare equal.
  [[nodiscard]] bool operator==(const SlotSet& other) const;

 private:
  /// Index of pos in sparse_, or sparse_.size() when absent.
  [[nodiscard]] std::size_t sparse_find(std::uint32_t pos) const;
  void promote();
  void demote();
  void maybe_promote() {
    if (!dense_ && count_ > promote_threshold(size_)) promote();
  }
  void maybe_demote() {
    if (dense_ && !pinned_ && count_valid_ && count_ < demote_threshold(size_)) demote();
  }
  void ensure_dense_storage();

  std::size_t size_ = 0;
  bool dense_ = false;
  bool pinned_ = false;
  // count_ is authoritative whenever count_valid_; sparse mode keeps it
  // valid always (== sparse_.size()), pinned-dense bulk ops invalidate it
  // and count() recomputes lazily so the pinned hot path pays nothing.
  mutable std::size_t count_ = 0;
  mutable bool count_valid_ = true;
  std::vector<std::uint32_t> sparse_;  // sorted, unique; valid when !dense_
  DynamicBitset bits_;                 // valid when dense_; storage kept across demotions
};

}  // namespace ttdc::util
