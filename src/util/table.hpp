// Tabular output for the benchmark harness.
//
// Every bench binary prints its result table both as aligned text (for the
// terminal) and optionally as CSV (for plotting), with a reproducibility
// header carrying the seed and parameters.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace ttdc::util {

/// A cell is a string, an integer, or a double (formatted with precision).
using Cell = std::variant<std::string, std::int64_t, double>;

/// Row-major table with named columns; renders to aligned text or CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Sets the number of significant digits used for double cells (default 6).
  void set_precision(int digits) { precision_ = digits; }

  /// Adds one row; the number of cells must equal the number of columns.
  void add_row(std::vector<Cell> cells);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const { return columns_.size(); }

  /// Renders as an aligned, pipe-separated text table.
  [[nodiscard]] std::string to_text() const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  [[nodiscard]] std::string to_csv() const;

  /// Writes CSV to a file; returns false (and leaves no partial file
  /// guarantee) on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  [[nodiscard]] std::string format_cell(const Cell& c) const;

  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 6;
};

/// Prints a "# key = value" reproducibility banner line to stdout.
void print_banner(const std::string& experiment,
                  std::initializer_list<std::pair<std::string, std::string>> params);

}  // namespace ttdc::util
