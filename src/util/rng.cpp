#include "util/rng.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/check.hpp"

namespace ttdc::util {

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  TTDC_DCHECK(bound > 0, "below(0) is an empty range");
  // Lemire's multiply-shift with rejection for exact uniformity.
  using u128 = unsigned __int128;
  std::uint64_t x = (*this)();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

Xoshiro256 Xoshiro256::split() {
  // Use two outputs of the parent as the child's seed material.
  SplitMix64 sm((*this)() ^ 0x6a09e667f3bcc909ull);
  sm.state ^= (*this)();
  Xoshiro256 child(sm.next());
  return child;
}

std::vector<std::size_t> sample_k_of(std::size_t universe, std::size_t k, Xoshiro256& rng) {
  TTDC_DCHECK(k <= universe, "sample_k_of(", universe, ", ", k, "): k exceeds universe");
  // Floyd's subset sampling: iterate j = universe-k .. universe-1, insert a
  // uniform pick from [0, j]; on collision insert j itself.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  for (std::size_t j = universe - k; j < universe; ++j) {
    const std::size_t t = static_cast<std::size_t>(rng.below(j + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<std::size_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ttdc::util
