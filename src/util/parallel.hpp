// OpenMP-backed helpers for embarrassingly parallel sweeps.
//
// Used by the exact Requirement checkers (parallel over node x), Monte-Carlo
// replicates, and bench grids. Kept deliberately small: a parallel index
// loop and a parallel reduction; stateful simulation never runs under these.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ttdc::util {

/// Number of worker threads OpenMP would use (1 when built without OpenMP).
inline int hardware_parallelism() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Chunk size for the dynamic schedules below. Chunks of 1 make every
/// iteration a trip through the OpenMP work-stealing queue, which thrashes
/// when the per-iteration work is a few hundred nanoseconds (bitset folds);
/// 16 amortizes the queue traffic while still balancing skewed workloads.
inline constexpr int kParallelChunk = 16;

/// fn(i) for i in [begin, end), dynamically scheduled across threads.
/// fn must be safe to call concurrently for distinct i.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, kParallelChunk)
  for (std::int64_t i = static_cast<std::int64_t>(begin); i < static_cast<std::int64_t>(end);
       ++i) {
    fn(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = begin; i < end; ++i) fn(i);
#endif
}

/// Parallel map-reduce: sums fn(i) over i in [begin, end).
/// Reduction order differs between thread counts; use only for commutative
/// associative numeric accumulations (counts, integer sums).
template <typename Fn>
auto parallel_sum(std::size_t begin, std::size_t end, Fn&& fn) -> decltype(fn(begin)) {
  using Acc = decltype(fn(begin));
  Acc total{};
#ifdef _OPENMP
#pragma omp parallel
  {
    Acc local{};
#pragma omp for schedule(dynamic, kParallelChunk) nowait
    for (std::int64_t i = static_cast<std::int64_t>(begin); i < static_cast<std::int64_t>(end);
         ++i) {
      local += fn(static_cast<std::size_t>(i));
    }
#pragma omp critical(ttdc_parallel_sum)
    total += local;
  }
#else
  for (std::size_t i = begin; i < end; ++i) total += fn(i);
#endif
  return total;
}

/// Parallel "does any i satisfy pred" with early termination via a shared
/// flag (threads stop doing work once a witness is found, though iterations
/// already started run to completion).
template <typename Pred>
bool parallel_any(std::size_t begin, std::size_t end, Pred&& pred) {
#ifdef _OPENMP
  // Relaxed ordering suffices: the flag is monotone (false -> true) and only
  // gates whether remaining iterations bother calling pred.
  std::atomic<bool> found{false};
#pragma omp parallel for schedule(dynamic, kParallelChunk) shared(found)
  for (std::int64_t i = static_cast<std::int64_t>(begin); i < static_cast<std::int64_t>(end);
       ++i) {
    if (found.load(std::memory_order_relaxed)) continue;
    if (pred(static_cast<std::size_t>(i))) {
      found.store(true, std::memory_order_relaxed);
    }
  }
  return found.load(std::memory_order_relaxed);
#else
  for (std::size_t i = begin; i < end; ++i) {
    if (pred(i)) return true;
  }
  return false;
#endif
}

}  // namespace ttdc::util
