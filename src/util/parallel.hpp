// OpenMP-backed helpers for embarrassingly parallel sweeps.
//
// Used by the exact Requirement checkers (parallel over node x), Monte-Carlo
// replicates, and bench grids. Kept deliberately small: a parallel index
// loop and a parallel reduction; stateful simulation never runs under these.
// The helpers are not reentrant: nested or concurrent calls from multiple
// threads are not supported.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

// Detect a ThreadSanitizer build (GCC defines __SANITIZE_THREAD__, Clang
// exposes it via __has_feature).
#if defined(__SANITIZE_THREAD__)
#define TTDC_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TTDC_TSAN_BUILD 1
#endif
#endif
#ifndef TTDC_TSAN_BUILD
#define TTDC_TSAN_BUILD 0
#endif

namespace ttdc::util {

/// Number of worker threads OpenMP would use (1 when built without OpenMP).
inline int hardware_parallelism() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Chunk size for the dynamic schedules below. Chunks of 1 make every
/// iteration a trip through the OpenMP work-stealing queue, which thrashes
/// when the per-iteration work is a few hundred nanoseconds (bitset folds);
/// 16 amortizes the queue traffic while still balancing skewed workloads.
inline constexpr int kParallelChunk = 16;

#if defined(_OPENMP) && TTDC_TSAN_BUILD
namespace detail {

// libgomp synchronizes its fork/join with futexes ThreadSanitizer cannot
// see, so under TSan a worker's very first closure read (the _omp_fn
// prologue loading firstprivate loop bounds) is reported as racing with the
// caller's setup writes — a false positive no user code can avoid from
// inside the region. Publishing all region state through these globals with
// a release-store and reading it back after an acquire-load inside the
// region re-creates the fork edge in TSan's happens-before graph; the
// release-increment per thread plus one acquire-load after the region
// re-creates the join edge (libgomp's implicit end-of-region barrier
// guarantees every increment has happened by then). The globals also mean
// the region body captures nothing, so the prologue has nothing to read.
// Real races in fn remain visible: only the fork/join edges are annotated,
// never the per-iteration accesses. A handful of atomic ops per region,
// paid only in TSan builds.
struct RegionHandoff {
  std::size_t begin = 0;
  std::size_t end = 0;
  const void* ctx = nullptr;
  void (*invoke)(const void*, std::size_t) = nullptr;
};
inline RegionHandoff g_handoff;
inline std::atomic<unsigned> g_fork{0};
inline std::atomic<unsigned> g_join{0};

template <typename Fn>
void invoke_thunk(const void* ctx, std::size_t i) {
  (*static_cast<const Fn*>(ctx))(i);
}

template <typename Fn>
void tsan_parallel_for(std::size_t begin, std::size_t end, const Fn& fn) {
  g_handoff = RegionHandoff{begin, end, &fn, &invoke_thunk<Fn>};
  g_fork.store(1, std::memory_order_release);
#pragma omp parallel
  {
    (void)g_fork.load(std::memory_order_acquire);  // fork edge
    const RegionHandoff h = g_handoff;
#pragma omp for schedule(dynamic, kParallelChunk) nowait
    for (std::int64_t i = static_cast<std::int64_t>(h.begin);
         i < static_cast<std::int64_t>(h.end); ++i) {
      h.invoke(h.ctx, static_cast<std::size_t>(i));
    }
    g_join.fetch_add(1, std::memory_order_release);
  }
  (void)g_join.load(std::memory_order_acquire);  // join edge
  g_join.store(0, std::memory_order_relaxed);
  g_fork.store(0, std::memory_order_relaxed);
}

}  // namespace detail
#endif  // _OPENMP && TTDC_TSAN_BUILD

/// fn(i) for i in [begin, end), dynamically scheduled across threads.
/// fn must be safe to call concurrently for distinct i.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
#if defined(_OPENMP) && TTDC_TSAN_BUILD
  detail::tsan_parallel_for(begin, end, fn);
#elif defined(_OPENMP)
#pragma omp parallel for schedule(dynamic, kParallelChunk)
  for (std::int64_t i = static_cast<std::int64_t>(begin); i < static_cast<std::int64_t>(end);
       ++i) {
    fn(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = begin; i < end; ++i) fn(i);
#endif
}

/// Parallel map-reduce: sums fn(i) over i in [begin, end).
/// Reduction order differs between thread counts; use only for commutative
/// associative numeric accumulations (counts, integer sums).
template <typename Fn>
auto parallel_sum(std::size_t begin, std::size_t end, Fn&& fn) -> decltype(fn(begin)) {
  using Acc = decltype(fn(begin));
#if defined(_OPENMP) && TTDC_TSAN_BUILD
  // Per-thread slots instead of `omp critical`: gomp_critical locks via
  // futex, invisible to TSan, so the combine would be a false race.
  std::vector<Acc> partial(static_cast<std::size_t>(omp_get_max_threads()), Acc{});
  auto body = [&](std::size_t i) {
    partial[static_cast<std::size_t>(omp_get_thread_num())] += fn(i);
  };
  detail::tsan_parallel_for(begin, end, body);
  Acc total{};
  for (const Acc& a : partial) total += a;
  return total;
#elif defined(_OPENMP)
  Acc total{};
#pragma omp parallel
  {
    Acc local{};
#pragma omp for schedule(dynamic, kParallelChunk) nowait
    for (std::int64_t i = static_cast<std::int64_t>(begin); i < static_cast<std::int64_t>(end);
         ++i) {
      local += fn(static_cast<std::size_t>(i));
    }
#pragma omp critical(ttdc_parallel_sum)
    total += local;
  }
  return total;
#else
  Acc total{};
  for (std::size_t i = begin; i < end; ++i) total += fn(i);
  return total;
#endif
}

/// Parallel "does any i satisfy pred" with early termination via a shared
/// flag (threads stop doing work once a witness is found, though iterations
/// already started run to completion).
template <typename Pred>
bool parallel_any(std::size_t begin, std::size_t end, Pred&& pred) {
#ifdef _OPENMP
  // Relaxed ordering suffices: the flag is monotone (false -> true) and only
  // gates whether remaining iterations bother calling pred.
  std::atomic<bool> found{false};
#if TTDC_TSAN_BUILD
  auto body = [&](std::size_t i) {
    if (found.load(std::memory_order_relaxed)) return;
    if (pred(i)) found.store(true, std::memory_order_relaxed);
  };
  detail::tsan_parallel_for(begin, end, body);
#else
#pragma omp parallel for schedule(dynamic, kParallelChunk) shared(found)
  for (std::int64_t i = static_cast<std::int64_t>(begin); i < static_cast<std::int64_t>(end);
       ++i) {
    if (found.load(std::memory_order_relaxed)) continue;
    if (pred(static_cast<std::size_t>(i))) {
      found.store(true, std::memory_order_relaxed);
    }
  }
#endif
  return found.load(std::memory_order_relaxed);
#else
  for (std::size_t i = begin; i < end; ++i) {
    if (pred(i)) return true;
  }
  return false;
#endif
}

}  // namespace ttdc::util
