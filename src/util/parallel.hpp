// OpenMP-backed helpers for embarrassingly parallel sweeps.
//
// Used by the exact Requirement checkers (parallel over node x), Monte-Carlo
// replicates, bench grids, and the campaign runner's worker pool
// (runner/runner.hpp). Kept deliberately small: a parallel index loop, a
// parallel reduction, and a worker-team launcher. Nested calls are safe but
// degrade to serial execution: a helper invoked from inside an OpenMP
// parallel region (e.g. a Requirement checker running inside a campaign
// cell) runs its loop inline on the calling thread, which matches OpenMP's
// default nested-parallelism behavior and keeps the TSan handoff globals
// below single-writer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

// Detect a ThreadSanitizer build (GCC defines __SANITIZE_THREAD__, Clang
// exposes it via __has_feature).
#if defined(__SANITIZE_THREAD__)
#define TTDC_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TTDC_TSAN_BUILD 1
#endif
#endif
#ifndef TTDC_TSAN_BUILD
#define TTDC_TSAN_BUILD 0
#endif

namespace ttdc::util {

/// Number of worker threads OpenMP would use (1 when built without OpenMP).
inline int hardware_parallelism() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// True when the caller is already executing inside an OpenMP parallel
/// region. The helpers below use this to degrade nested invocations to
/// serial loops instead of racing on the TSan handoff state (and instead of
/// relying on OpenMP's nested-region semantics).
inline bool in_parallel_region() {
#ifdef _OPENMP
  return omp_in_parallel() != 0;
#else
  return false;
#endif
}

/// Chunk size for the dynamic schedules below. Chunks of 1 make every
/// iteration a trip through the OpenMP work-stealing queue, which thrashes
/// when the per-iteration work is a few hundred nanoseconds (bitset folds);
/// 16 amortizes the queue traffic while still balancing skewed workloads.
inline constexpr int kParallelChunk = 16;

#if defined(_OPENMP) && TTDC_TSAN_BUILD
namespace detail {

// libgomp synchronizes its fork/join with futexes ThreadSanitizer cannot
// see, so under TSan a worker's very first closure read (the _omp_fn
// prologue loading firstprivate loop bounds) is reported as racing with the
// caller's setup writes — a false positive no user code can avoid from
// inside the region. Publishing all region state through these globals with
// a release-store and reading it back after an acquire-load inside the
// region re-creates the fork edge in TSan's happens-before graph; the
// release-increment per thread plus one acquire-load after the region
// re-creates the join edge (libgomp's implicit end-of-region barrier
// guarantees every increment has happened by then). The globals also mean
// the region body captures nothing, so the prologue has nothing to read.
// Real races in fn remain visible: only the fork/join edges are annotated,
// never the per-iteration accesses. A handful of atomic ops per region,
// paid only in TSan builds.
struct RegionHandoff {
  std::size_t begin = 0;
  std::size_t end = 0;
  const void* ctx = nullptr;
  void (*invoke)(const void*, std::size_t) = nullptr;
};
inline RegionHandoff g_handoff;
inline std::atomic<unsigned> g_fork{0};
inline std::atomic<unsigned> g_join{0};

template <typename Fn>
void invoke_thunk(const void* ctx, std::size_t i) {
  (*static_cast<const Fn*>(ctx))(i);
}

template <typename Fn>
void tsan_parallel_for(std::size_t begin, std::size_t end, const Fn& fn) {
  g_handoff = RegionHandoff{begin, end, &fn, &invoke_thunk<Fn>};
  g_fork.store(1, std::memory_order_release);
#pragma omp parallel
  {
    (void)g_fork.load(std::memory_order_acquire);  // fork edge
    const RegionHandoff h = g_handoff;
#pragma omp for schedule(dynamic, kParallelChunk) nowait
    for (std::int64_t i = static_cast<std::int64_t>(h.begin);
         i < static_cast<std::int64_t>(h.end); ++i) {
      h.invoke(h.ctx, static_cast<std::size_t>(i));
    }
    g_join.fetch_add(1, std::memory_order_release);
  }
  (void)g_join.load(std::memory_order_acquire);  // join edge
  g_join.store(0, std::memory_order_relaxed);
  g_fork.store(0, std::memory_order_relaxed);
}

// Worker-team variant of the same fork/join annotation: one invoke per team
// member with the member's thread id, no loop. Used by parallel_workers.
template <typename Fn>
void tsan_parallel_workers(int count, const Fn& fn) {
  g_handoff = RegionHandoff{0, 0, &fn, &invoke_thunk<Fn>};
  g_fork.store(1, std::memory_order_release);
#pragma omp parallel num_threads(count)
  {
    (void)g_fork.load(std::memory_order_acquire);  // fork edge
    const RegionHandoff h = g_handoff;
    h.invoke(h.ctx, static_cast<std::size_t>(omp_get_thread_num()));
    g_join.fetch_add(1, std::memory_order_release);
  }
  (void)g_join.load(std::memory_order_acquire);  // join edge
  g_join.store(0, std::memory_order_relaxed);
  g_fork.store(0, std::memory_order_relaxed);
}

}  // namespace detail
#endif  // _OPENMP && TTDC_TSAN_BUILD

/// fn(i) for i in [begin, end), dynamically scheduled across threads.
/// fn must be safe to call concurrently for distinct i. Safe to call from
/// inside another parallel region (runs serially there).
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
  if (in_parallel_region()) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
#if defined(_OPENMP) && TTDC_TSAN_BUILD
  detail::tsan_parallel_for(begin, end, fn);
#elif defined(_OPENMP)
#pragma omp parallel for schedule(dynamic, kParallelChunk)
  for (std::int64_t i = static_cast<std::int64_t>(begin); i < static_cast<std::int64_t>(end);
       ++i) {
    fn(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = begin; i < end; ++i) fn(i);
#endif
}

/// Parallel map-reduce: sums fn(i) over i in [begin, end).
/// Reduction order differs between thread counts; use only for commutative
/// associative numeric accumulations (counts, integer sums).
template <typename Fn>
auto parallel_sum(std::size_t begin, std::size_t end, Fn&& fn) -> decltype(fn(begin)) {
  using Acc = decltype(fn(begin));
  if (in_parallel_region()) {
    Acc total{};
    for (std::size_t i = begin; i < end; ++i) total += fn(i);
    return total;
  }
#if defined(_OPENMP) && TTDC_TSAN_BUILD
  // Per-thread slots instead of `omp critical`: gomp_critical locks via
  // futex, invisible to TSan, so the combine would be a false race.
  std::vector<Acc> partial(static_cast<std::size_t>(omp_get_max_threads()), Acc{});
  auto body = [&](std::size_t i) {
    partial[static_cast<std::size_t>(omp_get_thread_num())] += fn(i);
  };
  detail::tsan_parallel_for(begin, end, body);
  Acc total{};
  for (const Acc& a : partial) total += a;
  return total;
#elif defined(_OPENMP)
  Acc total{};
#pragma omp parallel
  {
    Acc local{};
#pragma omp for schedule(dynamic, kParallelChunk) nowait
    for (std::int64_t i = static_cast<std::int64_t>(begin); i < static_cast<std::int64_t>(end);
         ++i) {
      local += fn(static_cast<std::size_t>(i));
    }
#pragma omp critical(ttdc_parallel_sum)
    total += local;
  }
  return total;
#else
  Acc total{};
  for (std::size_t i = begin; i < end; ++i) total += fn(i);
  return total;
#endif
}

/// Parallel "does any i satisfy pred" with early termination via a shared
/// flag (threads stop doing work once a witness is found, though iterations
/// already started run to completion).
template <typename Pred>
bool parallel_any(std::size_t begin, std::size_t end, Pred&& pred) {
  if (in_parallel_region()) {
    for (std::size_t i = begin; i < end; ++i) {
      if (pred(i)) return true;
    }
    return false;
  }
#ifdef _OPENMP
  // Relaxed ordering suffices: the flag is monotone (false -> true) and only
  // gates whether remaining iterations bother calling pred.
  std::atomic<bool> found{false};
#if TTDC_TSAN_BUILD
  auto body = [&](std::size_t i) {
    if (found.load(std::memory_order_relaxed)) return;
    if (pred(i)) found.store(true, std::memory_order_relaxed);
  };
  detail::tsan_parallel_for(begin, end, body);
#else
#pragma omp parallel for schedule(dynamic, kParallelChunk) shared(found)
  for (std::int64_t i = static_cast<std::int64_t>(begin); i < static_cast<std::int64_t>(end);
       ++i) {
    if (found.load(std::memory_order_relaxed)) continue;
    if (pred(static_cast<std::size_t>(i))) {
      found.store(true, std::memory_order_relaxed);
    }
  }
#endif
  return found.load(std::memory_order_relaxed);
#else
  for (std::size_t i = begin; i < end; ++i) {
    if (pred(i)) return true;
  }
  return false;
#endif
}

/// Launches a team of up to `count` workers and calls fn(worker_id) once
/// per team member, with distinct ids in [0, team size). Unlike
/// parallel_for, the team size is requested explicitly via num_threads, so
/// a caller can run MORE workers than omp_get_max_threads() (the campaign
/// runner honors TTDC_NUM_THREADS this way) — the runtime may still grant
/// fewer, so fn must not assume every id in [0, count) runs: pull work from
/// a shared atomic queue instead of partitioning by id. Called from inside
/// a parallel region, degrades to a single inline fn(0).
template <typename Fn>
void parallel_workers(int count, Fn&& fn) {
  if (count < 1) count = 1;
  if (count == 1 || in_parallel_region()) {
    fn(std::size_t{0});
    return;
  }
#if defined(_OPENMP) && TTDC_TSAN_BUILD
  detail::tsan_parallel_workers(count, fn);
#elif defined(_OPENMP)
#pragma omp parallel num_threads(count)
  {
    fn(static_cast<std::size_t>(omp_get_thread_num()));
  }
#else
  fn(std::size_t{0});
#endif
}

}  // namespace ttdc::util
