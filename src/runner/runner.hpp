// ttdc::runner — parallel simulation campaigns with deterministic results.
//
// A Campaign is a declarative list of cells (one simulation or evaluation
// each: a (schedule, seed) replicate, a battery run, one grid point of a
// parameter sweep). run() executes the cells on a team of workers pulling
// from a shared atomic queue (util::parallel_workers), run_serial() on a
// plain loop; both produce THE SAME aggregate, bit for bit, because:
//
//   * seeds are derived, not drawn: cell i's RNG seed is the i-th output of
//     SplitMix64(master_seed), fixed by the cell's position in the list and
//     independent of which worker runs it or in what order;
//   * cells write into pre-sized result slots, and the aggregate is merged
//     at the join barrier in cell-index order (SimStats::merge /
//     LatencyStats::merge are exact under a fixed fold order);
//   * shared artifacts (runner/cache.hpp) are pure functions of their keys,
//     so a cache hit equals a private rebuild;
//   * per-cell trace events buffer locally and replay into the campaign
//     sink at the barrier, again in cell-index order — a campaign-level
//     JSONL sink sees one deterministic stream, never an interleaving
//     (and never a data race on a non-thread-safe sink).
//
// The determinism contract is what makes the parallelism trustworthy: a
// campaign's numbers can be compared across machines and worker counts, and
// bench_campaign's --perf-check gate enforces exactly that equality.
//
// Cells may themselves run sharded simulators (SimConfig::shard_workers,
// DESIGN.md §13): the sharded phase-2 kernel follows the same
// precompute-parallel / fold-serial discipline as the campaign barrier, so
// it is bit-identical at any worker count — and inside a campaign worker it
// degrades to serial automatically (util::in_parallel_region), so nesting
// a sharded cell under a parallel campaign is safe, just not faster.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "runner/cache.hpp"
#include "runner/journal.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "util/timer.hpp"

namespace ttdc::runner {

class Campaign;

/// Thrown by CellContext::check_deadline() when a cell exhausts its
/// wall-clock budget; the runner quarantines the cell WITHOUT retrying (a
/// deterministic cell would only time out again).
class CellTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-cell execution context, handed to the cell body. Everything a cell
/// reads from it is either immutable for the campaign's duration
/// (index/name/seed, the artifact store) or private to the cell (the stats
/// and trace accumulators), so cell bodies need no synchronization of
/// their own.
class CellContext {
 public:
  /// Position of this cell in the campaign's list (also its result slot).
  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// This cell's independent seed: the index()-th SplitMix64 output of the
  /// campaign master seed. Feed it to SimConfig::seed / topology
  /// generators; never mix the master seed in directly.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Campaign-wide artifact cache (thread-safe; see cache.hpp).
  [[nodiscard]] ArtifactStore& artifacts() const { return *artifacts_; }

  /// Campaign-level metrics registry, or nullptr when the campaign has
  /// none. Handles are atomic, so wiring it into SimConfig::metrics from
  /// many cells at once is safe, and the end-of-campaign snapshot is a sum
  /// over cells — order-independent by construction.
  [[nodiscard]] obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Folds a finished simulation's stats into this cell's contribution to
  /// the campaign aggregate (callable multiple times per cell).
  void record(const sim::SimStats& stats) { stats_.merge(stats); }

  /// Publishes a named scalar result (a grid point's duty cycle, a
  /// delivery ratio...). Kept in insertion order; surfaces in
  /// CampaignResult per cell and in the aggregate JSON.
  void metric(std::string key, double value) {
    metrics_out_.emplace_back(std::move(key), value);
  }

  /// Trace hook for SimConfig::trace. Events buffer inside the cell and
  /// replay into the campaign sink at the join barrier in cell-index
  /// order; cells must use this (or no trace at all) rather than wiring a
  /// shared sink into SimConfig directly, which would interleave workers.
  [[nodiscard]] std::function<void(const sim::TraceEvent&)> trace_fn() {
    return [this](const sim::TraceEvent& e) { trace_.push_back(e); };
  }

  /// This cell's private flight-recorder ring, or nullptr when the
  /// campaign has no flight capture configured. Cells wire it into
  /// SimConfig::recorder; the campaign inspects the ring at the join
  /// barrier and dumps it only for outlier cells (same buffered-replay
  /// discipline as trace_fn: nothing shared, nothing interleaved).
  [[nodiscard]] obs::FlightRecorder* flight_recorder() const { return flight_.get(); }

  /// Which attempt this execution is (1 on the first try; retries replay
  /// the SAME seed, so a successful retry is bit-identical to a first-try
  /// success).
  [[nodiscard]] std::uint32_t attempt() const { return attempts_; }

  /// Campaign-wide fast-forward opt-in (CampaignOptions::fast_forward),
  /// for cell bodies to pass into SimConfig::fast_forward. Stats-neutral
  /// by the fast-forward contract, so honoring it never changes a cell's
  /// journal contribution.
  [[nodiscard]] bool fast_forward() const { return fast_forward_; }

  /// Watchdog probes (always false / no-op without a cell timeout). The
  /// watchdog is cooperative: long-running cell bodies call
  /// check_deadline() between simulation chunks; the runner additionally
  /// checks the budget after the body returns.
  [[nodiscard]] bool deadline_exceeded() const {
    return deadline_seconds_ > 0.0 && attempt_timer_.seconds() > deadline_seconds_;
  }
  /// Throws CellTimeout once the budget is exhausted.
  void check_deadline() const;

 private:
  friend class Campaign;
  std::size_t index_ = 0;
  std::string name_;
  std::uint64_t seed_ = 0;
  ArtifactStore* artifacts_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  bool fast_forward_ = false;
  sim::SimStats stats_;
  std::vector<std::pair<std::string, double>> metrics_out_;
  std::vector<sim::TraceEvent> trace_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  // Resilience bookkeeping (owned by the runner, read-only to cell bodies).
  std::uint32_t attempts_ = 1;
  bool quarantined_ = false;
  bool done_ = false;  ///< set when resumed from a journal: skip execution
  std::string error_;
  double deadline_seconds_ = 0.0;
  util::Timer attempt_timer_;
};

using CellFn = std::function<void(CellContext&)>;

/// One cell's outcome, in campaign order.
struct CellResult {
  std::string name;
  sim::SimStats stats;
  std::vector<std::pair<std::string, double>> metrics;
  /// Attempts consumed (1 = first try succeeded; > 1 = retried).
  std::uint32_t attempts = 1;
  /// True when the cell exhausted its retries or timed out: its stats are
  /// EXCLUDED from the aggregate and the aggregate is flagged partial.
  bool quarantined = false;
  /// The final failure, when quarantined.
  std::string error;
  /// True when this cell was restored from the campaign journal instead of
  /// executing.
  bool resumed = false;
};

/// One outlier cell's captured flight ring, dumped at the join barrier.
struct FlightDump {
  std::size_t cell_index = 0;
  std::string cell_name;
  std::string path;     ///< JSONL file written under FlightCaptureOptions::dir
  std::string reason;   ///< human-readable trigger ("p99 latency 210 > 150")
  std::size_t events = 0;
};

struct CampaignResult {
  /// All non-quarantined cells' SimStats merged in cell-index order. When
  /// any cell is quarantined, aggregate.partial is true — a degraded
  /// campaign is explicitly flagged, never silently smaller.
  sim::SimStats aggregate;
  std::vector<CellResult> cells;
  /// Indices of quarantined cells (empty on a clean run).
  std::vector<std::size_t> quarantined;
  /// Cells restored from the journal instead of executing.
  std::size_t resumed_cells = 0;
  /// Flight rings dumped for outlier cells (cell-index order, capped at
  /// FlightCaptureOptions::max_dumps). Empty when capture is off or no
  /// cell tripped a trigger.
  std::vector<FlightDump> flight_dumps;
  double elapsed_seconds = 0.0;
  /// Workers requested for the run (1 for run_serial()).
  int workers = 1;

  /// Canonical JSON of everything deterministic: per-cell scalar metrics
  /// (in cell order) and the aggregate counters + latency summary. Doubles
  /// print at max_digits10, so string equality == bit equality. Timing is
  /// deliberately excluded; two runs of the same campaign at any worker
  /// counts must produce identical strings (tested, and enforced by
  /// bench_campaign --perf-check).
  [[nodiscard]] std::string aggregate_json() const;
};

/// Post-mortem capture for outlier cells: every cell records into a
/// private flight ring, and at the join barrier the campaign dumps the
/// rings of cells that tripped a trigger — the slow tail explains itself
/// without rerunning. Triggers with value 0 are disabled.
struct FlightCaptureOptions {
  /// Per-cell ring capacity in events (bounded memory per worker).
  std::size_t ring_capacity = 1 << 16;
  /// Directory for dump files (`flight_<index>_<name>.jsonl`); must exist.
  std::string dir = ".";
  /// Dump a cell whose p99 end-to-end latency (slots) exceeds this.
  double latency_p99_threshold = 0.0;
  /// Dump a cell whose delivery ratio falls below this.
  double min_delivery_ratio = 0.0;
  /// At most this many dumps per run (worst offenders by cell order).
  std::size_t max_dumps = 4;
};

/// Harness resilience: retries, watchdog, quarantine, checkpoint journal.
/// All off by default — a campaign without ResilienceOptions behaves
/// exactly as before.
struct ResilienceOptions {
  /// Maximum executions per cell (1 = fail immediately). A failed attempt
  /// is retried with the SAME derived seed, so a flaky-environment failure
  /// (OOM kill recovered, filesystem hiccup) reruns bit-identically; after
  /// the last attempt the cell is quarantined.
  int max_attempts = 3;
  /// Backoff before retry k is `backoff_base_seconds * 2^(k-1)` (capped at
  /// backoff_max_seconds). Wall-clock only; never affects results.
  double backoff_base_seconds = 0.01;
  double backoff_max_seconds = 1.0;
  /// Per-cell wall-clock watchdog; 0 disables. Cooperative
  /// (CellContext::check_deadline) plus a post-hoc check when the body
  /// returns. A timed-out cell is quarantined WITHOUT retry. Wall-clock
  /// dependent — keep it out of campaigns gated on bit-identity.
  double cell_timeout_seconds = 0.0;
  /// Checkpoint journal path; empty disables journaling. Every completed
  /// (or quarantined) cell appends one checksummed line; see journal.hpp.
  std::string journal_path;
  /// When true and journal_path holds a journal matching this campaign's
  /// identity, its cells are restored instead of executed — kill-and-resume
  /// with a bit-identical final aggregate. When false the journal is
  /// overwritten.
  bool resume = true;
};

struct CampaignOptions {
  /// Master seed; cell i derives its own via SplitMix64 (see
  /// CellContext::seed).
  std::uint64_t master_seed = 0x5eed;
  /// Retry / watchdog / quarantine / checkpoint-resume behavior; absent =
  /// fail-fast (any cell exception propagates), no journal.
  std::optional<ResilienceOptions> resilience;
  /// When set, arms per-cell flight recorders and dumps outlier cells'
  /// rings at the barrier (see FlightCaptureOptions).
  std::optional<FlightCaptureOptions> flight_capture;
  /// Worker team size for run(). 0 = $TTDC_NUM_THREADS when set, else the
  /// OpenMP default (util::hardware_parallelism).
  int num_workers = 0;
  /// Optional campaign-level metrics registry (see CellContext::metrics).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional campaign-level trace sink; receives every cell's buffered
  /// events at the barrier, grouped by cell in index order. Needs no
  /// thread safety: it is only ever called from the merging thread.
  std::function<void(const sim::TraceEvent&)> trace;
  /// Campaign-wide frame fast-forwarding opt-in, surfaced to cell bodies
  /// via CellContext::fast_forward() for wiring into
  /// SimConfig::fast_forward. Purely advisory: fast-forwarded cells
  /// produce bit-identical SimStats (sim/fastforward.hpp), so journal
  /// contributions — and therefore checkpoint/resume byte-identity — are
  /// unaffected by flipping this.
  bool fast_forward = false;
};

class Campaign {
 public:
  explicit Campaign(CampaignOptions options = {});

  /// Appends a cell; the position in the list fixes its seed.
  void add(std::string name, CellFn fn);

  [[nodiscard]] std::size_t size() const { return cells_.size(); }
  [[nodiscard]] ArtifactStore& artifacts() { return *artifacts_; }

  /// Executes all cells on a worker team pulling cell indices from a
  /// shared atomic counter; merges at the barrier.
  [[nodiscard]] CampaignResult run();

  /// Reference executor: same cells, same seeds, one plain loop. The
  /// comparator for the speedup and equality gates.
  [[nodiscard]] CampaignResult run_serial();

  /// The worker count run() will use (options resolved against the
  /// environment).
  [[nodiscard]] int resolved_workers() const;

 private:
  struct Cell {
    std::string name;
    CellFn fn;
  };

  void run_cell(std::size_t index, CellContext& ctx);
  void run_cell_resilient(std::size_t index, CellContext& ctx);
  void execute_cell_body(std::size_t index, CellContext& ctx);
  /// Restores journaled cells into `contexts` and opens the journal for
  /// appending (no-op without ResilienceOptions::journal_path).
  void prepare_journal(std::vector<CellContext>& contexts);
  [[nodiscard]] JournalIdentity identity() const;
  CampaignResult merge(std::vector<CellContext>& contexts, double elapsed, int workers);

  CampaignOptions options_;
  std::vector<Cell> cells_;
  std::vector<std::uint64_t> seeds_;
  // Heap-pinned (ArtifactStore owns a mutex and is immovable) so Campaign
  // itself stays movable and cells' cached &artifacts() stay valid.
  std::unique_ptr<ArtifactStore> artifacts_;
  // Live checkpoint journal for the current run (heap-pinned: owns a mutex).
  std::unique_ptr<CampaignJournal> journal_;
};

}  // namespace ttdc::runner
