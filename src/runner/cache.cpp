#include "runner/cache.hpp"

#include "obs/profile.hpp"
#include "util/hash.hpp"

namespace ttdc::runner {

namespace {

/// Content digest of a schedule: frame shape plus every slot's transmitter
/// and receiver word storage. Any flipped bit anywhere changes the digest.
std::uint64_t schedule_checksum(const core::Schedule& s) {
  std::uint64_t h = util::kFnvOffsetBasis;
  h = util::fnv1a64_u64(s.num_nodes(), h);
  h = util::fnv1a64_u64(s.frame_length(), h);
  for (std::size_t slot = 0; slot < s.frame_length(); ++slot) {
    for (const auto w : s.transmitters(slot).words()) h = util::fnv1a64_u64(w, h);
    for (const auto w : s.receivers(slot).words()) h = util::fnv1a64_u64(w, h);
  }
  return h;
}

}  // namespace

std::shared_ptr<const core::Schedule> ArtifactStore::schedule(
    const std::string& key, const std::function<core::Schedule()>& build) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = schedules_.find(key);
  if (it != schedules_.end()) {
    if (schedule_checksum(*it->second.schedule) == it->second.checksum) {
      ++hits_;
      return it->second.schedule;
    }
    // The cached artifact no longer matches the digest taken at build time:
    // something scribbled on it (or on the digest). Serving it would poison
    // every downstream cell, so rebuild from the recipe instead.
    ++corruption_rebuilds_;
    schedules_.erase(it);
  }
  ++misses_;
  TTDC_PROF_SCOPE("runner.artifacts.build_schedule");
  auto built = std::make_shared<const core::Schedule>(build());
  schedules_.emplace(key, ScheduleEntry{built, schedule_checksum(*built)});
  return built;
}

std::uint64_t ArtifactStore::corruption_rebuilds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corruption_rebuilds_;
}

bool ArtifactStore::debug_corrupt_schedule(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = schedules_.find(key);
  if (it == schedules_.end()) return false;
  it->second.checksum = ~it->second.checksum;
  return true;
}

std::shared_ptr<const net::RoutingTable> ArtifactStore::routing(const net::Graph& graph) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& chain = routings_[graph.content_hash()];
  for (const auto& entry : chain) {
    if (entry->graph.same_adjacency(graph)) {
      ++hits_;
      return {entry, &entry->table};
    }
  }
  ++misses_;
  TTDC_PROF_SCOPE("runner.artifacts.build_routing");
  auto entry = std::make_shared<RoutingEntry>(graph);
  chain.push_back(entry);
  return {entry, &entry->table};
}

std::shared_ptr<const util::BinomialTable> ArtifactStore::binomials(std::size_t max_n,
                                                                    std::size_t max_k) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = binomials_[{max_n, max_k}];
  if (slot) {
    ++hits_;
    return slot;
  }
  ++misses_;
  TTDC_PROF_SCOPE("runner.artifacts.build_binomials");
  slot = std::make_shared<const util::BinomialTable>(max_n, max_k);
  return slot;
}

std::shared_ptr<const core::ThroughputTables> ArtifactStore::throughput(
    std::size_t n, std::size_t degree_bound) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = throughputs_[{n, degree_bound}];
  if (slot) {
    ++hits_;
    return slot;
  }
  ++misses_;
  TTDC_PROF_SCOPE("runner.artifacts.build_throughput");
  slot = std::make_shared<const core::ThroughputTables>(n, degree_bound);
  return slot;
}

std::uint64_t ArtifactStore::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t ArtifactStore::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace ttdc::runner
