#include "runner/journal.hpp"

#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/hash.hpp"

namespace ttdc::runner {

namespace {

constexpr const char* kHeaderMagic = "ttdc-journal v1";

std::uint64_t line_crc(const std::string& body) { return util::fnv1a64(body); }

std::string crc_hex(std::uint64_t crc) {
  std::ostringstream os;
  os << std::hex << crc;
  return os.str();
}

/// Token scanner over one journal line. Every read checks bounds; any
/// failure poisons the scanner and the caller rejects the line.
class Scanner {
 public:
  explicit Scanner(const std::string& line) : s_(line) {}

  bool word(std::string& out) {
    skip_space();
    if (pos_ >= s_.size()) return fail();
    const std::size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ' ') ++pos_;
    out = s_.substr(start, pos_ - start);
    return true;
  }

  bool expect(const char* token) {
    std::string w;
    return word(w) && w == token;
  }

  bool u64(std::uint64_t& out) {
    std::string w;
    if (!word(w) || w.empty()) return fail();
    char* end = nullptr;
    out = std::strtoull(w.c_str(), &end, 10);
    return end == w.c_str() + w.size() || fail();
  }

  bool f64(double& out) {
    std::string w;
    if (!word(w) || w.empty()) return fail();
    char* end = nullptr;
    out = std::strtod(w.c_str(), &end);
    return end == w.c_str() + w.size() || fail();
  }

  /// Length-prefixed byte string: `<len> <len raw bytes>` (raw bytes may
  /// contain anything but '\n', which journal lines never hold). Exactly
  /// one separator space — the bytes themselves may start with spaces.
  bool bytes(std::string& out) {
    std::uint64_t len = 0;
    if (!u64(len)) return false;
    if (pos_ < s_.size() && s_[pos_] == ' ') ++pos_;
    if (s_.size() - pos_ < len) return fail();
    out = s_.substr(pos_, len);
    pos_ += len;
    return true;
  }

  /// Byte offset of the current position (used to checksum the prefix).
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] bool failed() const { return failed_; }

 private:
  void skip_space() {
    while (pos_ < s_.size() && s_[pos_] == ' ') ++pos_;
  }
  bool fail() {
    failed_ = true;
    return false;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

void put_u64s(std::ostream& os, const std::vector<std::uint64_t>& v) {
  os << ' ' << v.size();
  for (const std::uint64_t x : v) os << ' ' << x;
}

bool get_u64s(Scanner& sc, std::vector<std::uint64_t>& v) {
  std::uint64_t count = 0;
  if (!sc.u64(count)) return false;
  if (count > (std::uint64_t{1} << 32)) return false;  // sanity bound
  v.resize(count);
  for (auto& x : v) {
    if (!sc.u64(x)) return false;
  }
  return true;
}

/// Splits "<body> crc <hex>" and verifies; false on mismatch/truncation.
bool strip_verified_crc(const std::string& line, std::string& body) {
  const std::size_t mark = line.rfind(" crc ");
  if (mark == std::string::npos) return false;
  body = line.substr(0, mark);
  const std::string hex = line.substr(mark + 5);
  if (hex.empty()) return false;
  char* end = nullptr;
  const std::uint64_t stored = std::strtoull(hex.c_str(), &end, 16);
  if (end != hex.c_str() + hex.size()) return false;
  return stored == line_crc(body);
}

}  // namespace

std::uint64_t names_digest(const std::vector<std::string>& names) {
  std::uint64_t h = util::kFnvOffsetBasis;
  for (const std::string& name : names) {
    h = util::fnv1a64(name, h);
    h = util::fnv1a64_byte(h, 0x1f);  // unit separator: {"ab","c"} != {"a","bc"}
  }
  return h;
}

std::string CampaignJournal::serialize_entry(const JournalEntry& e) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "cell " << e.index << ' ' << e.attempts << ' ' << (e.quarantined ? 1 : 0) << ' '
     << e.error.size() << ' ' << e.error;
  const sim::SimStats& s = e.stats;
  os << " S " << s.slots_run << ' ' << s.generated << ' ' << s.delivered << ' '
     << s.hop_successes << ' ' << s.transmissions << ' ' << s.collisions << ' '
     << s.receiver_asleep << ' ' << s.channel_losses << ' ' << s.sync_losses << ' '
     << s.queue_drops << ' ' << s.first_death_slot << ' ' << s.deaths << ' '
     << s.fault_crashes << ' ' << s.fault_recoveries << ' ' << s.fault_battery_spikes
     << ' ' << s.fault_jam_bursts << ' ' << s.burst_losses << ' ' << s.drift_losses
     << ' ' << (s.partial ? 1 : 0);
  os << " L";
  put_u64s(os, s.latency.samples());
  os << " V " << s.state_slots.size();
  for (const auto& row : s.state_slots) {
    os << ' ' << row[0] << ' ' << row[1] << ' ' << row[2] << ' ' << row[3];
  }
  os << " O";
  put_u64s(os, s.delivered_by_origin);
  os << " W";
  put_u64s(os, s.wake_transitions);
  os << " M " << e.metrics.size();
  for (const auto& [key, value] : e.metrics) {
    os << ' ' << key.size() << ' ' << key << ' ' << value;
  }
  return os.str();
}

bool CampaignJournal::parse_entry(const std::string& line, JournalEntry& out) {
  std::string body;
  if (!strip_verified_crc(line, body)) return false;
  Scanner sc(body);
  out = JournalEntry{};
  std::uint64_t index = 0, attempts = 0, quarantined = 0;
  if (!sc.expect("cell") || !sc.u64(index) || !sc.u64(attempts) || !sc.u64(quarantined) ||
      !sc.bytes(out.error)) {
    return false;
  }
  out.index = static_cast<std::size_t>(index);
  out.attempts = static_cast<std::uint32_t>(attempts);
  out.quarantined = quarantined != 0;

  sim::SimStats& s = out.stats;
  std::uint64_t partial = 0;
  if (!sc.expect("S") || !sc.u64(s.slots_run) || !sc.u64(s.generated) ||
      !sc.u64(s.delivered) || !sc.u64(s.hop_successes) || !sc.u64(s.transmissions) ||
      !sc.u64(s.collisions) || !sc.u64(s.receiver_asleep) || !sc.u64(s.channel_losses) ||
      !sc.u64(s.sync_losses) || !sc.u64(s.queue_drops) || !sc.u64(s.first_death_slot) ||
      !sc.u64(s.deaths) || !sc.u64(s.fault_crashes) || !sc.u64(s.fault_recoveries) ||
      !sc.u64(s.fault_battery_spikes) || !sc.u64(s.fault_jam_bursts) ||
      !sc.u64(s.burst_losses) || !sc.u64(s.drift_losses) || !sc.u64(partial)) {
    return false;
  }
  s.partial = partial != 0;

  std::vector<std::uint64_t> samples;
  if (!sc.expect("L") || !get_u64s(sc, samples)) return false;
  for (const std::uint64_t v : samples) s.latency.record(v);

  std::uint64_t rows = 0;
  if (!sc.expect("V") || !sc.u64(rows) || rows > (std::uint64_t{1} << 32)) return false;
  s.state_slots.resize(rows);
  for (auto& row : s.state_slots) {
    if (!sc.u64(row[0]) || !sc.u64(row[1]) || !sc.u64(row[2]) || !sc.u64(row[3])) {
      return false;
    }
  }
  if (!sc.expect("O") || !get_u64s(sc, s.delivered_by_origin)) return false;
  if (!sc.expect("W") || !get_u64s(sc, s.wake_transitions)) return false;

  std::uint64_t num_metrics = 0;
  if (!sc.expect("M") || !sc.u64(num_metrics) || num_metrics > (std::uint64_t{1} << 24)) {
    return false;
  }
  out.metrics.reserve(num_metrics);
  for (std::uint64_t i = 0; i < num_metrics; ++i) {
    std::string key;
    double value = 0.0;
    if (!sc.bytes(key) || !sc.f64(value)) return false;
    out.metrics.emplace_back(std::move(key), value);
  }
  return !sc.failed();
}

namespace {

std::string header_line(const JournalIdentity& id) {
  std::ostringstream os;
  os << kHeaderMagic << ' ' << id.master_seed << ' ' << id.num_cells << ' '
     << id.names_digest;
  const std::string body = os.str();
  return body + " crc " + crc_hex(line_crc(body));
}

bool parse_header(const std::string& line, JournalIdentity& out) {
  std::string body;
  if (!strip_verified_crc(line, body)) return false;
  Scanner sc(body);
  std::uint64_t cells = 0;
  if (!sc.expect("ttdc-journal") || !sc.expect("v1") || !sc.u64(out.master_seed) ||
      !sc.u64(cells) || !sc.u64(out.names_digest)) {
    return false;
  }
  out.num_cells = static_cast<std::size_t>(cells);
  return true;
}

}  // namespace

CampaignJournal::LoadResult CampaignJournal::load(const std::string& path,
                                                  const JournalIdentity& id) {
  LoadResult result;
  std::ifstream in(path);
  if (!in) return result;
  std::string line;
  if (!std::getline(in, line)) return result;
  JournalIdentity found;
  if (!parse_header(line, found) || !(found == id)) return result;
  result.usable = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JournalEntry entry;
    if (!parse_entry(line, entry) || entry.index >= id.num_cells) {
      // A torn/corrupt line: drop it AND everything after it — later lines
      // may depend on state the tear destroyed, and rerunning a completed
      // cell is always safe (same seed, same result).
      ++result.dropped_lines;
      while (std::getline(in, line)) ++result.dropped_lines;
      break;
    }
    result.entries.emplace(entry.index, std::move(entry));  // keep first
  }
  return result;
}

CampaignJournal::CampaignJournal(const std::string& path, const JournalIdentity& id,
                                 const LoadResult& prior) {
  out_.open(path, std::ios::trunc);
  if (!out_) return;
  out_ << header_line(id) << '\n';
  for (const auto& [index, entry] : prior.entries) {
    const std::string body = serialize_entry(entry);
    out_ << body << " crc " << crc_hex(line_crc(body)) << '\n';
  }
  out_.flush();
  ok_ = static_cast<bool>(out_);
}

void CampaignJournal::append(const JournalEntry& entry) {
  if (!ok_) return;
  const std::string body = serialize_entry(entry);
  std::lock_guard<std::mutex> lock(mu_);
  out_ << body << " crc " << crc_hex(line_crc(body)) << '\n';
  out_.flush();
}

}  // namespace ttdc::runner
