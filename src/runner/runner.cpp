#include "runner/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <thread>

#include "obs/flight_query.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ttdc::runner {

void CellContext::check_deadline() const {
  if (deadline_exceeded()) {
    throw CellTimeout("cell '" + name_ + "' exceeded its " +
                      std::to_string(deadline_seconds_) + "s watchdog budget");
  }
}

Campaign::Campaign(CampaignOptions options)
    : options_(std::move(options)), artifacts_(std::make_unique<ArtifactStore>()) {}

void Campaign::add(std::string name, CellFn fn) {
  cells_.push_back(Cell{std::move(name), std::move(fn)});
  // seed_i is the i-th SplitMix64 output of the master seed — a function of
  // (master_seed, i) only, so appending cells never perturbs earlier seeds.
  util::SplitMix64 sm(options_.master_seed);
  seeds_.resize(cells_.size());
  for (auto& s : seeds_) s = sm.next();
}

int Campaign::resolved_workers() const {
  if (options_.num_workers > 0) return options_.num_workers;
  if (const char* env = std::getenv("TTDC_NUM_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return util::hardware_parallelism();
}

void Campaign::execute_cell_body(std::size_t index, CellContext& ctx) {
  ctx.index_ = index;
  ctx.name_ = cells_[index].name;
  ctx.seed_ = seeds_[index];
  ctx.artifacts_ = artifacts_.get();
  ctx.metrics_ = options_.metrics;
  ctx.fast_forward_ = options_.fast_forward;
  if (options_.flight_capture) {
    ctx.flight_ =
        std::make_unique<obs::FlightRecorder>(options_.flight_capture->ring_capacity);
  }
  if (options_.resilience) {
    ctx.deadline_seconds_ = options_.resilience->cell_timeout_seconds;
  }
  ctx.attempt_timer_.restart();
  cells_[index].fn(ctx);
}

void Campaign::run_cell(std::size_t index, CellContext& ctx) {
  TTDC_PROF_SCOPE("runner.run_cell");
  if (ctx.done_) return;  // restored from the journal
  if (!options_.resilience) {
    // Fail-fast legacy path: exceptions propagate out of the run.
    execute_cell_body(index, ctx);
    return;
  }
  run_cell_resilient(index, ctx);
  if (journal_) {
    JournalEntry entry;
    entry.index = index;
    entry.attempts = ctx.attempts_;
    entry.quarantined = ctx.quarantined_;
    entry.error = ctx.error_;
    entry.stats = ctx.stats_;
    entry.metrics = ctx.metrics_out_;
    journal_->append(entry);
  }
}

void Campaign::run_cell_resilient(std::size_t index, CellContext& ctx) {
  const ResilienceOptions& res = *options_.resilience;
  const int max_attempts = std::max(1, res.max_attempts);
  const auto quarantine = [&](const std::string& why) {
    // Discard any half-built contribution: a quarantined cell must be
    // absent from the aggregate entirely (and flagged), never half-counted.
    ctx.stats_ = sim::SimStats{};
    ctx.metrics_out_.clear();
    ctx.trace_.clear();
    ctx.quarantined_ = true;
    ctx.error_ = why;
  };
  for (int attempt = 1;; ++attempt) {
    // A fresh context per attempt: retries replay the cell's derived seed
    // against clean accumulators, so a successful retry is bit-identical
    // to a first-try success.
    ctx = CellContext{};
    ctx.attempts_ = static_cast<std::uint32_t>(attempt);
    try {
      execute_cell_body(index, ctx);
      if (ctx.deadline_exceeded()) {
        quarantine("cell '" + cells_[index].name + "' exceeded its " +
                   std::to_string(res.cell_timeout_seconds) + "s watchdog budget");
      }
      return;
    } catch (const CellTimeout& e) {
      // Deterministic cells time out deterministically; retrying would
      // only burn another budget. Straight to quarantine.
      quarantine(e.what());
      return;
    } catch (const std::exception& e) {
      if (attempt >= max_attempts) {
        quarantine(e.what());
        return;
      }
    } catch (...) {
      if (attempt >= max_attempts) {
        quarantine("unknown error");
        return;
      }
    }
    // Exponential backoff before the retry (wall-clock only; results are
    // unaffected by how long we waited).
    const double delay = std::min(res.backoff_base_seconds * static_cast<double>(1 << (attempt - 1)),
                                  res.backoff_max_seconds);
    if (delay > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }
}

JournalIdentity Campaign::identity() const {
  std::vector<std::string> names;
  names.reserve(cells_.size());
  for (const Cell& c : cells_) names.push_back(c.name);
  return JournalIdentity{options_.master_seed, cells_.size(), names_digest(names)};
}

void Campaign::prepare_journal(std::vector<CellContext>& contexts) {
  journal_.reset();
  if (!options_.resilience || options_.resilience->journal_path.empty()) return;
  const JournalIdentity id = identity();
  CampaignJournal::LoadResult prior;
  if (options_.resilience->resume) {
    prior = CampaignJournal::load(options_.resilience->journal_path, id);
  }
  // Open (and rewrite the valid prefix of) the journal BEFORE consuming the
  // loaded entries — the rewrite is what truncates a SIGKILL-torn tail.
  journal_ = std::make_unique<CampaignJournal>(options_.resilience->journal_path, id, prior);
  for (auto& [index, entry] : prior.entries) {
    CellContext& ctx = contexts[index];
    ctx.index_ = index;
    ctx.name_ = cells_[index].name;
    ctx.seed_ = seeds_[index];
    ctx.stats_ = std::move(entry.stats);
    ctx.metrics_out_ = std::move(entry.metrics);
    ctx.attempts_ = entry.attempts;
    ctx.quarantined_ = entry.quarantined;
    ctx.error_ = std::move(entry.error);
    ctx.done_ = true;
  }
}

namespace {

std::string sanitize_for_filename(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    if (!keep) c = '_';
  }
  return out;
}

/// Returns a non-empty trigger description if `stats` makes the cell an
/// outlier under `opt`.
std::string outlier_reason(const FlightCaptureOptions& opt, const sim::SimStats& stats) {
  std::ostringstream os;
  if (opt.latency_p99_threshold > 0.0) {
    const double p99 = static_cast<double>(stats.latency.percentile(99));
    if (p99 > opt.latency_p99_threshold) {
      os << "p99 latency " << p99 << " > " << opt.latency_p99_threshold;
      return os.str();
    }
  }
  if (opt.min_delivery_ratio > 0.0 && stats.delivery_ratio() < opt.min_delivery_ratio) {
    os << "delivery ratio " << stats.delivery_ratio() << " < " << opt.min_delivery_ratio;
    return os.str();
  }
  return {};
}

}  // namespace

CampaignResult Campaign::merge(std::vector<CellContext>& contexts, double elapsed,
                               int workers) {
  CampaignResult result;
  result.elapsed_seconds = elapsed;
  result.workers = workers;
  result.cells.reserve(contexts.size());
  for (auto& ctx : contexts) {
    if (ctx.done_) ++result.resumed_cells;
    if (ctx.quarantined_) {
      // A quarantined cell contributes NOTHING to the aggregate; the
      // aggregate is flagged partial instead of being silently smaller.
      result.quarantined.push_back(ctx.index_);
      result.aggregate.partial = true;
    } else {
      // Fixed fold order (cell index) regardless of completion order: this
      // is what makes the double-summed aggregates bit-identical across
      // worker counts.
      result.aggregate.merge(ctx.stats_);
    }
    if (options_.trace) {
      for (const auto& e : ctx.trace_) options_.trace(e);
    }
    if (options_.flight_capture && ctx.flight_ != nullptr &&
        result.flight_dumps.size() < options_.flight_capture->max_dumps) {
      const std::string reason = outlier_reason(*options_.flight_capture, ctx.stats_);
      if (!reason.empty()) {
        FlightDump dump;
        dump.cell_index = ctx.index_;
        dump.cell_name = ctx.name_;
        dump.reason = reason;
        const std::vector<obs::FlightEvent> events = ctx.flight_->events();
        dump.events = events.size();
        dump.path = options_.flight_capture->dir + "/flight_" +
                    std::to_string(ctx.index_) + "_" + sanitize_for_filename(ctx.name_) +
                    ".jsonl";
        if (obs::write_flight_jsonl_file(dump.path, events)) {
          result.flight_dumps.push_back(std::move(dump));
        }
      }
    }
    CellResult cell;
    cell.name = std::move(ctx.name_);
    cell.stats = std::move(ctx.stats_);
    cell.metrics = std::move(ctx.metrics_out_);
    cell.attempts = ctx.attempts_;
    cell.quarantined = ctx.quarantined_;
    cell.error = std::move(ctx.error_);
    cell.resumed = ctx.done_;
    result.cells.push_back(std::move(cell));
  }
  return result;
}

CampaignResult Campaign::run() {
  const int workers = resolved_workers();
  util::Timer timer;
  std::vector<CellContext> contexts(cells_.size());
  prepare_journal(contexts);
  std::atomic<std::size_t> next{0};
  util::parallel_workers(workers, [&](std::size_t) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= contexts.size()) break;
      run_cell(i, contexts[i]);
    }
  });
  return merge(contexts, timer.seconds(), workers);
}

CampaignResult Campaign::run_serial() {
  util::Timer timer;
  std::vector<CellContext> contexts(cells_.size());
  prepare_journal(contexts);
  for (std::size_t i = 0; i < contexts.size(); ++i) run_cell(i, contexts[i]);
  return merge(contexts, timer.seconds(), 1);
}

std::string CampaignResult::aggregate_json() const {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os << ',';
    os << "{\"name\":" << obs::json_string(cells[i].name) << ",\"metrics\":{";
    for (std::size_t m = 0; m < cells[i].metrics.size(); ++m) {
      if (m != 0) os << ',';
      os << obs::json_string(cells[i].metrics[m].first) << ':'
         << obs::json_scalar(cells[i].metrics[m].second);
    }
    os << "}}";
  }
  const sim::SimStats& a = aggregate;
  os << "],\"aggregate\":{"
     << "\"slots_run\":" << a.slots_run << ",\"generated\":" << a.generated
     << ",\"delivered\":" << a.delivered << ",\"hop_successes\":" << a.hop_successes
     << ",\"transmissions\":" << a.transmissions << ",\"collisions\":" << a.collisions
     << ",\"receiver_asleep\":" << a.receiver_asleep
     << ",\"channel_losses\":" << a.channel_losses << ",\"sync_losses\":" << a.sync_losses
     << ",\"queue_drops\":" << a.queue_drops << ",\"deaths\":" << a.deaths
     << ",\"first_death_slot\":";
  if (a.first_death_slot == ~std::uint64_t{0}) {
    os << "null";
  } else {
    os << a.first_death_slot;
  }
  os << ",\"fault_crashes\":" << a.fault_crashes
     << ",\"fault_recoveries\":" << a.fault_recoveries
     << ",\"fault_battery_spikes\":" << a.fault_battery_spikes
     << ",\"fault_jam_bursts\":" << a.fault_jam_bursts
     << ",\"burst_losses\":" << a.burst_losses << ",\"drift_losses\":" << a.drift_losses
     << ",\"partial\":" << (a.partial ? "true" : "false")
     << ",\"latency\":{\"count\":" << a.latency.count()
     << ",\"mean\":" << obs::json_scalar(a.latency.mean())
     << ",\"p50\":" << a.latency.percentile(50) << ",\"p95\":" << a.latency.percentile(95)
     << ",\"max\":" << a.latency.max() << "}},\"quarantined\":[";
  for (std::size_t i = 0; i < quarantined.size(); ++i) {
    if (i != 0) os << ',';
    os << quarantined[i];
  }
  os << "]}";
  return os.str();
}

}  // namespace ttdc::runner
