// Shared immutable artifact caches for campaign cells.
//
// Campaign cells repeat expensive, deterministic constructions: the same
// Galois-orthogonal base schedule built once per (q, k) instead of once per
// seed; the same topology's BFS routing columns built once instead of once
// per cell; the same (n, D) binomial / g_{n,D} memo shared by every
// Theorem 2/3/4 evaluation in the grid. ArtifactStore keys each artifact by
// its CONTENT (a build recipe string for schedules, the adjacency digest
// for graphs, the (n, D) pair for the analytic tables), builds it exactly
// once under a lock, and hands out shared_ptr<const T> views — immutable
// after construction, so cells on different workers read them concurrently
// without synchronization.
//
// Determinism: because every artifact is a pure function of its key, a
// cache hit returns an object bit-identical to what the missing cell would
// have built itself. Which worker pays the build cost varies run to run;
// the artifact, and therefore every downstream statistic, does not.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/schedule.hpp"
#include "core/throughput.hpp"
#include "net/graph.hpp"
#include "net/routing.hpp"
#include "util/binomial.hpp"

namespace ttdc::runner {

class ArtifactStore {
 public:
  ArtifactStore() = default;
  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// Schedule keyed by a build-recipe string (e.g. "galois:q=5,k=2"); the
  /// caller is responsible for the key capturing every input of `build`.
  /// `build` runs at most once per key, under the store lock.
  std::shared_ptr<const core::Schedule> schedule(
      const std::string& key, const std::function<core::Schedule()>& build);

  /// Fully built routing table for a graph with `graph`'s exact adjacency,
  /// keyed by content (Graph::content_hash + equality verification, so two
  /// cells constructing the same topology from the same seed share one set
  /// of BFS columns). The returned table is safe for concurrent next_hop()
  /// queries: build_all_columns() has run, so no query mutates it. Wire it
  /// into a cell's simulator via SimConfig::shared_routing; the pointed-to
  /// graph copy lives inside the store.
  std::shared_ptr<const net::RoutingTable> routing(const net::Graph& graph);

  /// Binomial memo covering n in [0, max_n], k in [0, max_k].
  std::shared_ptr<const util::BinomialTable> binomials(std::size_t max_n, std::size_t max_k);

  /// Theorem 2/3/4 memo for (n, degree_bound).
  std::shared_ptr<const core::ThroughputTables> throughput(std::size_t n,
                                                           std::size_t degree_bound);

  /// Cache-effectiveness observability (tested: a campaign of k cells over
  /// one topology must report exactly one routing miss).
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

  /// Cached schedules that failed their content checksum on a hit and were
  /// rebuilt from the recipe (0 on any healthy run: in-memory corruption is
  /// detected, counted, and healed — never served).
  [[nodiscard]] std::uint64_t corruption_rebuilds() const;

  /// Test hook: invalidates the stored checksum of `key`'s schedule so the
  /// next hit takes the corruption-rebuild path. Returns false if the key
  /// is not cached.
  bool debug_corrupt_schedule(const std::string& key);

 private:
  // A routing entry owns the graph copy its table points into; the pair is
  // heap-pinned so the Graph's address never moves after the table binds.
  struct RoutingEntry {
    explicit RoutingEntry(const net::Graph& g) : graph(g), table(graph) {
      table.build_all_columns();
    }
    net::Graph graph;
    net::RoutingTable table;
  };

  // A schedule entry pairs the artifact with a checksum of its full content
  // (frame shape + every slot's transmitter/receiver words), taken at build
  // time and re-verified on every hit.
  struct ScheduleEntry {
    std::shared_ptr<const core::Schedule> schedule;
    std::uint64_t checksum = 0;
  };

  mutable std::mutex mu_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t corruption_rebuilds_ = 0;
  std::map<std::string, ScheduleEntry> schedules_;
  // Hash -> entries with that digest (chained in case of collisions; each
  // candidate is verified against the full adjacency before reuse).
  std::map<std::uint64_t, std::vector<std::shared_ptr<RoutingEntry>>> routings_;
  std::map<std::pair<std::size_t, std::size_t>, std::shared_ptr<const util::BinomialTable>>
      binomials_;
  std::map<std::pair<std::size_t, std::size_t>, std::shared_ptr<const core::ThroughputTables>>
      throughputs_;
};

}  // namespace ttdc::runner
