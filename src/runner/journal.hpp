// Disk-journaled campaign checkpoints: kill-and-resume with bit-identical
// aggregates.
//
// A CampaignJournal is an append-only text file recording every completed
// (or quarantined) cell of a campaign run. Each line carries the cell's
// FULL deterministic contribution to the final aggregate — every SimStats
// counter, the latency samples in recorded order, the per-node vectors, and
// the cell's published metrics — plus an FNV-1a 64 checksum of the line. On
// resume, matching lines short-circuit their cells entirely and the merge
// barrier folds the journaled stats exactly where the live run would have,
// so a campaign killed at any point and resumed produces a final
// aggregate_json() byte-identical to an uninterrupted run (tested, and
// enforced by the crash-resilience CI job).
//
// Robustness, not trust: the header binds the journal to a campaign
// identity (master seed, cell count, a digest of the cell names) — a
// journal from a different campaign is discarded wholesale, never merged. A
// torn or corrupted line (the SIGKILL case: the process died mid-append)
// fails its checksum and is dropped along with everything after it; those
// cells simply rerun. Entries are line-atomic: append() writes one line and
// flushes under a mutex, so concurrent workers interleave lines, never
// bytes... on POSIX appends up to PIPE_BUF; the mutex makes it
// unconditional within the process.
//
// Format (one token stream per line, '\n'-terminated):
//   ttdc-journal v1 <master_seed> <num_cells> <names_digest> crc <hex>
//   cell <index> <attempts> <quarantined> <error-len> <error bytes>
//        S <19 scalar counters> <partial>
//        L <count> <samples...>
//        V <rows> <4*rows state-slot counters>
//        O <count> <delivered_by_origin...>
//        W <count> <wake_transitions...>
//        M <count> { <key-len> <key bytes> <value @ max_digits10> }...
//        crc <hex>
// Doubles print at max_digits10 and re-parse exactly (round-trip identity);
// everything else is exact decimal u64.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hpp"

namespace ttdc::runner {

/// One journaled cell outcome: everything the merge barrier needs.
struct JournalEntry {
  std::size_t index = 0;
  std::uint32_t attempts = 1;
  bool quarantined = false;
  std::string error;  ///< non-empty iff quarantined
  sim::SimStats stats;
  std::vector<std::pair<std::string, double>> metrics;
};

/// Identity of a campaign for journal matching: a journal only resumes the
/// exact campaign shape that wrote it.
struct JournalIdentity {
  std::uint64_t master_seed = 0;
  std::size_t num_cells = 0;
  std::uint64_t names_digest = 0;  ///< fnv1a64 over names with separators

  [[nodiscard]] bool operator==(const JournalIdentity& other) const {
    return master_seed == other.master_seed && num_cells == other.num_cells &&
           names_digest == other.names_digest;
  }
};

class CampaignJournal {
 public:
  struct LoadResult {
    /// File existed, parsed, and matched `id`. When false the journal is
    /// absent/stale/foreign and `entries` is empty — the campaign starts
    /// fresh (and overwrites it).
    bool usable = false;
    /// Corrupt or truncated lines dropped (the SIGKILL tear, bit rot).
    std::size_t dropped_lines = 0;
    /// Valid entries by cell index; duplicates keep the FIRST occurrence
    /// (the one an uninterrupted run would have produced).
    std::map<std::size_t, JournalEntry> entries;
  };

  /// Parses `path` against the expected identity. Never throws: unreadable
  /// files, foreign headers, and torn lines all degrade to "rerun those
  /// cells".
  static LoadResult load(const std::string& path, const JournalIdentity& id);

  /// Serialization used for journal lines (exposed for tests: round-trip
  /// exactness is the whole contract). `serialize_entry` excludes the
  /// trailing checksum; `parse_entry` expects and verifies it.
  static std::string serialize_entry(const JournalEntry& entry);
  static bool parse_entry(const std::string& line, JournalEntry& out);

  /// Opens `path` for writing: rewrites the header plus every valid entry
  /// of `prior` (in index order) and appends live entries after them. The
  /// rewrite is what heals a torn tail — a SIGKILL mid-append leaves a
  /// partial final line, and appending after it would corrupt the next
  /// entry too. I/O failure disables the journal (ok() false) without
  /// failing the campaign.
  CampaignJournal(const std::string& path, const JournalIdentity& id,
                  const LoadResult& prior);

  [[nodiscard]] bool ok() const { return ok_; }

  /// Appends one completed cell, line-atomically (mutex + per-line flush).
  void append(const JournalEntry& entry);

 private:
  std::mutex mu_;
  std::ofstream out_;
  bool ok_ = false;
};

/// fnv1a64 digest of a campaign's cell names (order-sensitive).
[[nodiscard]] std::uint64_t names_digest(const std::vector<std::string>& names);

}  // namespace ttdc::runner
