// Structured sinks for the simulator's TraceEvent hook.
//
// `SimConfig::trace` takes any callable; this header provides the standard
// consumers — a JSONL file sink (one event object per line, replayable by
// trace_replay.hpp), a bounded ring buffer keeping the last N events for
// post-mortem on a failing run, a kind-mask filter, and a fan-out
// combinator — all composing through the plain TraceFn function type.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"

namespace ttdc::obs {

using TraceFn = std::function<void(const sim::TraceEvent&)>;

/// Stable wire name of an event kind ("generated", "transmit", ...).
[[nodiscard]] const char* kind_name(sim::TraceEvent::Kind kind);

/// Inverse of kind_name; false if `name` is not a known kind.
bool kind_from_name(std::string_view name, sim::TraceEvent::Kind& out);

/// Writes one event as a single JSON object line:
///   {"kind":"transmit","slot":12,"node":3,"peer":4,"packet":77}
void write_jsonl(std::ostream& out, const sim::TraceEvent& event);

/// Streams events as JSONL to a file or borrowed stream. Not copyable;
/// install with `config.trace = sink.fn()`.
class JsonlTraceSink {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit JsonlTraceSink(const std::string& path);
  /// Borrows `out` (must outlive the sink).
  explicit JsonlTraceSink(std::ostream& out) : out_(&out) {}

  void operator()(const sim::TraceEvent& event);
  void flush();
  [[nodiscard]] std::uint64_t events_written() const { return written_; }
  /// Adapter for SimConfig::trace; the sink must outlive the simulator.
  [[nodiscard]] TraceFn fn() {
    return [this](const sim::TraceEvent& e) { (*this)(e); };
  }

 private:
  std::ofstream owned_;
  std::ostream* out_;
  std::uint64_t written_ = 0;
};

/// Keeps the last `capacity` events (oldest evicted first); O(1) per event,
/// no allocation after construction. The cheap always-on post-mortem sink.
class RingBufferTraceSink {
 public:
  explicit RingBufferTraceSink(std::size_t capacity);

  void operator()(const sim::TraceEvent& event);
  /// Events still retained, oldest first.
  [[nodiscard]] std::vector<sim::TraceEvent> events() const;
  [[nodiscard]] std::uint64_t seen() const { return seen_; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::size_t size() const;
  void clear();
  /// Human-readable dump of the retained tail ("slot 12 transmit 3->4 #77"
  /// per line) for attaching to a test failure.
  [[nodiscard]] std::string dump() const;
  [[nodiscard]] TraceFn fn() {
    return [this](const sim::TraceEvent& e) { (*this)(e); };
  }

 private:
  std::vector<sim::TraceEvent> buf_;
  std::size_t next_ = 0;
  std::uint64_t seen_ = 0;
};

/// Bitmask over TraceEvent::Kind for filtering.
[[nodiscard]] constexpr std::uint32_t kind_bit(sim::TraceEvent::Kind kind) {
  return std::uint32_t{1} << static_cast<std::uint8_t>(kind);
}
inline constexpr std::uint32_t kAllKinds = 0x1ffu;  // 9 kinds

/// Forwards only events whose kind is in `kind_mask`.
[[nodiscard]] TraceFn filtered(std::uint32_t kind_mask, TraceFn downstream);

/// Forwards every event to every sink, in order. An empty list yields an
/// empty TraceFn, which SimConfig treats as tracing disabled.
[[nodiscard]] TraceFn fan_out(std::vector<TraceFn> sinks);

}  // namespace ttdc::obs
