// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Hot-path writes are single relaxed atomic RMWs on pre-resolved handles
// (resolve once with registry.counter("name"), then inc() in the loop);
// reads are snapshot-on-demand and never block writers. Header-only so the
// simulator and the combinatorial kernels can publish without a link
// dependency on ttdc_obs (which itself links ttdc_sim for the trace layer).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ttdc::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (Prometheus semantics: bucket i counts samples
/// <= upper_bounds[i]; a +Inf bucket is implicit in count()).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds)
      : bounds_(std::move(upper_bounds)),
        buckets_(std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size())) {}

  void observe(double v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    double sum = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(sum, sum + v, std::memory_order_relaxed)) {
    }
    // Bucket lists are short (tens); a linear scan beats binary search.
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (v <= bounds_[i]) {
        buckets_[i].fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    // Falls only into the implicit +Inf bucket (== count()).
  }

  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative per-bucket counts (without the +Inf bucket).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const {
    std::vector<std::uint64_t> out(bounds_.size());
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of one metric, for exporters.
struct MetricSnapshot {
  enum class Type { kCounter, kGauge, kHistogram };
  std::string name;
  std::string help;
  Type type = Type::kCounter;
  std::uint64_t counter_value = 0;                  // kCounter
  double gauge_value = 0.0;                         // kGauge
  std::vector<double> bounds;                       // kHistogram
  std::vector<std::uint64_t> buckets;               // kHistogram, non-cumulative
  std::uint64_t count = 0;                          // kHistogram
  double sum = 0.0;                                 // kHistogram
};

/// Owns metrics by name; handles returned by counter()/gauge()/histogram()
/// stay valid for the registry's lifetime. Registration takes a lock;
/// increments on the returned handles are lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& help = "") {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& e = entries_[name];
    if (!e.counter) {
      e.counter = std::make_unique<Counter>();
      if (!help.empty()) e.help = help;
    }
    return *e.counter;
  }

  Gauge& gauge(const std::string& name, const std::string& help = "") {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& e = entries_[name];
    if (!e.gauge) {
      e.gauge = std::make_unique<Gauge>();
      if (!help.empty()) e.help = help;
    }
    return *e.gauge;
  }

  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds,
                       const std::string& help = "") {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& e = entries_[name];
    if (!e.histogram) {
      e.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
      if (!help.empty()) e.help = help;
    }
    return *e.histogram;
  }

  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<MetricSnapshot> out;
    out.reserve(entries_.size());
    for (const auto& [name, e] : entries_) {
      if (e.counter) {
        MetricSnapshot s;
        s.name = name;
        s.help = e.help;
        s.type = MetricSnapshot::Type::kCounter;
        s.counter_value = e.counter->value();
        out.push_back(std::move(s));
      }
      if (e.gauge) {
        MetricSnapshot s;
        s.name = name;
        s.help = e.help;
        s.type = MetricSnapshot::Type::kGauge;
        s.gauge_value = e.gauge->value();
        out.push_back(std::move(s));
      }
      if (e.histogram) {
        MetricSnapshot s;
        s.name = name;
        s.help = e.help;
        s.type = MetricSnapshot::Type::kHistogram;
        s.bounds = e.histogram->bounds();
        s.buckets = e.histogram->bucket_counts();
        s.count = e.histogram->count();
        s.sum = e.histogram->sum();
        out.push_back(std::move(s));
      }
    }
    return out;
  }

  /// Process-wide registry for code without an obvious owner (profiling
  /// scopes, examples).
  static MetricsRegistry& global() {
    static MetricsRegistry registry;
    return registry;
  }

 private:
  // One name may in principle host different kinds; in practice callers
  // keep names unique per kind, and snapshot() emits whatever exists.
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace ttdc::obs
