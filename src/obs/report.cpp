#include "obs/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>

namespace ttdc::obs {

std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_scalar(const JsonScalar& v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  if (const auto* s = std::get_if<std::string>(&v)) {
    return json_string(*s);
  } else if (const auto* i = std::get_if<std::int64_t>(&v)) {
    os << *i;
  } else if (const auto* d = std::get_if<double>(&v)) {
    if (std::isfinite(*d)) {
      os << *d;
    } else {
      os << "null";
    }
  } else {
    os << (std::get<bool>(v) ? "true" : "false");
  }
  return os.str();
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::param(const std::string& key, const std::string& value) {
  params_.emplace_back(key, value);
}
void BenchReport::param(const std::string& key, const char* value) {
  params_.emplace_back(key, std::string(value));
}
void BenchReport::param(const std::string& key, double value) {
  params_.emplace_back(key, value);
}
void BenchReport::param(const std::string& key, bool value) { params_.emplace_back(key, value); }
void BenchReport::param_int(const std::string& key, std::int64_t value) {
  params_.emplace_back(key, value);
}

void BenchReport::metric(const std::string& key, double value) {
  metrics_.emplace_back(key, value);
}
void BenchReport::metric_int(const std::string& key, std::int64_t value) {
  metrics_.emplace_back(key, value);
}

void BenchReport::add_snapshot(const std::vector<MetricSnapshot>& snapshot,
                               const std::string& prefix) {
  for (const MetricSnapshot& m : snapshot) {
    switch (m.type) {
      case MetricSnapshot::Type::kCounter:
        metric(prefix + m.name, m.counter_value);
        break;
      case MetricSnapshot::Type::kGauge:
        metric(prefix + m.name, m.gauge_value);
        break;
      case MetricSnapshot::Type::kHistogram:
        metric(prefix + m.name + "_count", m.count);
        metric(prefix + m.name + "_sum", m.sum);
        break;
    }
  }
}

void BenchReport::add_sim_stats(const std::string& prefix, const sim::SimStats& stats) {
  metric(prefix + "_slots_run", stats.slots_run);
  metric(prefix + "_generated", stats.generated);
  metric(prefix + "_delivered", stats.delivered);
  metric(prefix + "_transmissions", stats.transmissions);
  metric(prefix + "_collisions", stats.collisions);
  metric(prefix + "_queue_drops", stats.queue_drops);
  metric(prefix + "_delivery_ratio", stats.delivery_ratio());
  metric(prefix + "_awake_fraction", stats.awake_fraction());
  metric(prefix + "_latency_mean_slots", stats.latency.mean());
  metric(prefix + "_latency_p95_slots", stats.latency.percentile(95));
}

namespace {

void write_object(std::ostringstream& os,
                  const std::vector<std::pair<std::string, JsonScalar>>& kv) {
  os << '{';
  bool first = true;
  for (const auto& [key, value] : kv) {
    if (!first) os << ',';
    first = false;
    os << json_string(key) << ':' << json_scalar(value);
  }
  os << '}';
}

}  // namespace

std::string BenchReport::to_json() const {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\"name\":" << json_string(name_) << ",\"params\":";
  write_object(os, params_);
  os << ",\"metrics\":";
  write_object(os, metrics_);
  os << ",\"elapsed_seconds\":" << timer_.seconds() << "}\n";
  return os.str();
}

bool BenchReport::write() const {
  const char* dir = std::getenv("TTDC_BENCH_DIR");
  return write_to(dir != nullptr && *dir != '\0' ? dir : ".");
}

bool BenchReport::write_to(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) return false;
  out << to_json();
  out.flush();
  const bool ok = static_cast<bool>(out);
  if (ok) std::cout << "[bench report] wrote " << path << "\n";
  return ok;
}

}  // namespace ttdc::obs
