#include "obs/flight_query.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace ttdc::obs {

namespace {

constexpr std::array<FlightEvent::Kind, FlightEvent::kNumKinds> kAllFlightKinds = {
    FlightEvent::Kind::kCreated,        FlightEvent::Kind::kEnqueued,
    FlightEvent::Kind::kHeadOfLine,     FlightEvent::Kind::kTxAttempt,
    FlightEvent::Kind::kCollided,       FlightEvent::Kind::kReceiverAsleep,
    FlightEvent::Kind::kChannelLoss,    FlightEvent::Kind::kSyncLoss,
    FlightEvent::Kind::kHopDelivered,   FlightEvent::Kind::kDelivered,
    FlightEvent::Kind::kDropped,        FlightEvent::Kind::kExpired,
    FlightEvent::Kind::kBurstLoss,      FlightEvent::Kind::kDriftLoss,
    FlightEvent::Kind::kFaultCrash,     FlightEvent::Kind::kFaultRecover,
    FlightEvent::Kind::kFaultBatterySpike,
    FlightEvent::Kind::kFaultJamStart,  FlightEvent::Kind::kFaultJamEnd,
};

// Flat one-line objects with known keys, so targeted field extraction is
// enough (the same approach as trace_replay.cpp).
bool find_uint_field(const std::string& line, const std::string& key, std::uint64_t& out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* p = line.c_str() + pos + needle.size();
  char* end = nullptr;
  out = std::strtoull(p, &end, 10);
  return end != p;
}

bool find_string_field(const std::string& line, const std::string& key, std::string& out) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const auto start = pos + needle.size();
  const auto close = line.find('"', start);
  if (close == std::string::npos) return false;
  out = line.substr(start, close - start);
  return true;
}

/// True for kinds that end a packet's lifecycle.
bool is_terminal(FlightEvent::Kind kind) {
  return kind == FlightEvent::Kind::kDelivered || kind == FlightEvent::Kind::kDropped ||
         kind == FlightEvent::Kind::kExpired;
}

/// True for per-transmission outcomes that must share a slot with the
/// tx-attempt that caused them.
bool is_tx_outcome(FlightEvent::Kind kind) {
  switch (kind) {
    case FlightEvent::Kind::kCollided:
    case FlightEvent::Kind::kReceiverAsleep:
    case FlightEvent::Kind::kChannelLoss:
    case FlightEvent::Kind::kSyncLoss:
    case FlightEvent::Kind::kBurstLoss:
    case FlightEvent::Kind::kDriftLoss:
    case FlightEvent::Kind::kHopDelivered:
    case FlightEvent::Kind::kDelivered:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool flight_kind_from_name(std::string_view name, FlightEvent::Kind& out) {
  for (const FlightEvent::Kind kind : kAllFlightKinds) {
    if (name == flight_kind_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

void write_flight_jsonl(std::ostream& out, const FlightEvent& event) {
  out << "{\"kind\":\"" << flight_kind_name(event.kind) << "\",\"slot\":" << event.slot
      << ",\"packet\":" << event.packet_id << ",\"node\":" << event.node
      << ",\"peer\":" << event.peer;
  if (event.aux != 0) out << ",\"aux\":" << event.aux;
  if (event.kind == FlightEvent::Kind::kCollided) {
    out << ",\"interferer_count\":" << static_cast<unsigned>(event.interferer_count)
        << ",\"interferers\":[";
    for (std::size_t i = 0; i < event.stored_interferers(); ++i) {
      if (i != 0) out << ',';
      out << event.interferers[i];
    }
    out << ']';
  }
  out << "}\n";
}

void write_flight_jsonl(std::ostream& out, const std::vector<FlightEvent>& events) {
  for (const FlightEvent& e : events) write_flight_jsonl(out, e);
}

bool write_flight_jsonl_file(const std::string& path, const std::vector<FlightEvent>& events) {
  std::ofstream out(path);
  if (!out) return false;
  write_flight_jsonl(out, events);
  out.flush();
  return static_cast<bool>(out);
}

FlightParseResult read_flight_jsonl(std::istream& in) {
  FlightParseResult result;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string kind_str;
    FlightEvent e;
    std::uint64_t slot = 0, packet = 0, node = 0, peer = 0, aux = 0;
    if (!find_string_field(line, "kind", kind_str) ||
        !flight_kind_from_name(kind_str, e.kind) || !find_uint_field(line, "slot", slot) ||
        !find_uint_field(line, "packet", packet) || !find_uint_field(line, "node", node) ||
        !find_uint_field(line, "peer", peer)) {
      result.errors.push_back(line);
      continue;
    }
    e.slot = slot;
    e.packet_id = packet;
    e.node = static_cast<std::uint32_t>(node);
    e.peer = static_cast<std::uint32_t>(peer);
    if (find_uint_field(line, "aux", aux)) e.aux = static_cast<std::uint32_t>(aux);
    if (e.kind == FlightEvent::Kind::kCollided) {
      std::uint64_t count = 0;
      if (find_uint_field(line, "interferer_count", count)) {
        e.interferer_count = static_cast<std::uint8_t>(count);
      }
      const auto open = line.find("\"interferers\":[");
      if (open != std::string::npos) {
        const char* p = line.c_str() + open + 15;
        std::size_t stored = 0;
        while (*p != ']' && *p != '\0' && stored < FlightEvent::kMaxInterferers) {
          char* end = nullptr;
          const std::uint64_t v = std::strtoull(p, &end, 10);
          if (end == p) break;
          e.interferers[stored++] = static_cast<std::uint32_t>(v);
          p = end;
          if (*p == ',') ++p;
        }
      }
    }
    result.events.push_back(e);
  }
  return result;
}

FlightParseResult read_flight_jsonl_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_flight_jsonl_file: cannot open " + path);
  return read_flight_jsonl(in);
}

FlightLog::FlightLog(std::vector<FlightEvent> events) : events_(std::move(events)) {
  std::map<std::uint64_t, PacketHistory> by_packet;
  for (const FlightEvent& e : events_) {
    // Fault instants carry the kNoPacket sentinel: they belong to node
    // timelines, not to any packet history.
    if (e.packet_id == FlightEvent::kNoPacket) continue;
    PacketHistory& h = by_packet[e.packet_id];
    if (h.events.empty()) {
      h.packet_id = e.packet_id;
      h.first_slot = e.slot;
    }
    h.events.push_back(e);
    h.last_slot = e.slot;
    switch (e.kind) {
      case FlightEvent::Kind::kCreated:
        h.origin = e.node;
        h.destination = e.peer;
        break;
      case FlightEvent::Kind::kTxAttempt:
        ++h.tx_attempts;
        break;
      case FlightEvent::Kind::kCollided:
        ++h.collisions;
        break;
      case FlightEvent::Kind::kDelivered:
        h.delivered = true;
        h.latency = e.aux;
        h.destination = e.node;
        h.origin = e.peer;
        break;
      default:
        break;
    }
  }
  packets_.reserve(by_packet.size());
  for (auto& [id, h] : by_packet) {
    h.truncated = h.events.front().kind != FlightEvent::Kind::kCreated;
    packet_index_[id] = packets_.size();
    packets_.push_back(std::move(h));
  }
}

const PacketHistory* FlightLog::packet(std::uint64_t packet_id) const {
  const auto it = packet_index_.find(packet_id);
  return it == packet_index_.end() ? nullptr : &packets_[it->second];
}

std::vector<FlightEvent> FlightLog::node_timeline(std::uint32_t node) const {
  std::vector<FlightEvent> out;
  for (const FlightEvent& e : events_) {
    if (e.node == node) out.push_back(e);
  }
  return out;
}

std::vector<FlightLog::LatencyRecord> FlightLog::worst_latency(std::size_t k) const {
  std::vector<LatencyRecord> out;
  for (const PacketHistory& h : packets_) {
    if (!h.delivered) continue;
    LatencyRecord r;
    r.packet_id = h.packet_id;
    r.origin = h.origin;
    r.destination = h.destination;
    r.latency = h.latency;
    for (const FlightEvent& e : h.events) {
      if (e.kind == FlightEvent::Kind::kDelivered) r.delivered_slot = e.slot;
    }
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(), [](const LatencyRecord& a, const LatencyRecord& b) {
    if (a.latency != b.latency) return a.latency > b.latency;
    return a.packet_id < b.packet_id;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<FlightLog::CollisionHotspot> FlightLog::top_collisions(std::size_t k) const {
  struct Acc {
    std::uint64_t collisions = 0;
    std::uint64_t first_slot = 0;
    std::uint64_t last_slot = 0;
    std::map<std::uint32_t, std::uint64_t> transmitters;
  };
  std::map<std::uint32_t, Acc> by_receiver;
  for (const FlightEvent& e : events_) {
    if (e.kind != FlightEvent::Kind::kCollided) continue;
    Acc& a = by_receiver[e.node];
    if (a.collisions == 0) a.first_slot = e.slot;
    ++a.collisions;
    a.last_slot = e.slot;
    ++a.transmitters[e.peer];
    for (std::size_t i = 0; i < e.stored_interferers(); ++i) {
      ++a.transmitters[e.interferers[i]];
    }
  }
  std::vector<CollisionHotspot> out;
  out.reserve(by_receiver.size());
  for (const auto& [receiver, a] : by_receiver) {
    CollisionHotspot h;
    h.receiver = receiver;
    h.collisions = a.collisions;
    h.first_slot = a.first_slot;
    h.last_slot = a.last_slot;
    h.transmitters.assign(a.transmitters.begin(), a.transmitters.end());
    std::sort(h.transmitters.begin(), h.transmitters.end(),
              [](const auto& x, const auto& y) {
                if (x.second != y.second) return x.second > y.second;
                return x.first < y.first;
              });
    out.push_back(std::move(h));
  }
  std::sort(out.begin(), out.end(), [](const CollisionHotspot& a, const CollisionHotspot& b) {
    if (a.collisions != b.collisions) return a.collisions > b.collisions;
    return a.receiver < b.receiver;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<std::string> FlightLog::self_check() const {
  std::vector<std::string> violations;
  const auto report = [&](const PacketHistory& h, const std::string& what) {
    std::ostringstream os;
    os << "packet " << h.packet_id << ": " << what;
    violations.push_back(os.str());
  };
  for (const PacketHistory& h : packets_) {
    std::uint64_t prev_slot = 0;
    std::uint64_t last_tx_slot = ~std::uint64_t{0};
    bool saw_head_of_line = false;
    bool terminal_seen = false;
    for (std::size_t i = 0; i < h.events.size(); ++i) {
      const FlightEvent& e = h.events[i];
      if (i > 0 && e.slot < prev_slot) {
        report(h, "slots not monotone (" + std::to_string(e.slot) + " after " +
                      std::to_string(prev_slot) + ")");
      }
      prev_slot = e.slot;
      if (terminal_seen) {
        report(h, std::string("event '") + flight_kind_name(e.kind) +
                      "' after a terminal event");
        terminal_seen = false;  // one report per history, not per trailing event
      }
      if (e.kind == FlightEvent::Kind::kCreated && i != 0) {
        report(h, "creation event not in first position");
      }
      if (e.kind == FlightEvent::Kind::kHeadOfLine) saw_head_of_line = true;
      if (e.kind == FlightEvent::Kind::kTxAttempt) {
        last_tx_slot = e.slot;
        if (!h.truncated && !saw_head_of_line) {
          report(h, "tx-attempt before any head-of-line");
        }
      }
      if (!h.truncated && is_tx_outcome(e.kind) && last_tx_slot != e.slot) {
        report(h, std::string("outcome '") + flight_kind_name(e.kind) +
                      "' without a same-slot tx-attempt");
      }
      if (is_terminal(e.kind)) terminal_seen = true;
    }
  }
  return violations;
}

}  // namespace ttdc::obs
