#include "obs/trace_replay.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "obs/trace.hpp"

namespace ttdc::obs {

namespace {

// The sink writes flat one-line objects with known keys, so targeted field
// extraction is enough — no general JSON parser needed.
bool find_uint_field(const std::string& line, const std::string& key, std::uint64_t& out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* p = line.c_str() + pos + needle.size();
  char* end = nullptr;
  out = std::strtoull(p, &end, 10);
  return end != p;
}

bool find_string_field(const std::string& line, const std::string& key, std::string& out) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const auto start = pos + needle.size();
  const auto close = line.find('"', start);
  if (close == std::string::npos) return false;
  out = line.substr(start, close - start);
  return true;
}

}  // namespace

ReplayResult replay_jsonl(std::istream& in, std::size_t num_nodes) {
  ReplayResult result;
  sim::SimStats& st = result.stats;
  st.delivered_by_origin.assign(num_nodes, 0);

  // packet id -> creation slot, for latency reconstruction.
  std::unordered_map<std::uint64_t, std::uint64_t> created;
  std::uint64_t max_slot = 0;
  bool any_event = false;

  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string kind_str;
    std::uint64_t slot = 0, node = 0, peer = 0, packet = 0;
    sim::TraceEvent::Kind kind;
    if (!find_string_field(line, "kind", kind_str) || !kind_from_name(kind_str, kind) ||
        !find_uint_field(line, "slot", slot) || !find_uint_field(line, "node", node) ||
        !find_uint_field(line, "peer", peer) || !find_uint_field(line, "packet", packet)) {
      result.errors.push_back(line);
      continue;
    }
    ++result.events;
    any_event = true;
    max_slot = std::max(max_slot, slot);

    switch (kind) {
      case sim::TraceEvent::Kind::kGenerated:
        ++st.generated;
        created.emplace(packet, slot);
        break;
      case sim::TraceEvent::Kind::kTransmit:
        ++st.transmissions;
        break;
      case sim::TraceEvent::Kind::kHopDelivered:
        ++st.hop_successes;
        break;
      case sim::TraceEvent::Kind::kFinalDelivered: {
        ++st.delivered;
        ++st.hop_successes;
        if (peer >= st.delivered_by_origin.size()) st.delivered_by_origin.resize(peer + 1, 0);
        ++st.delivered_by_origin[peer];
        if (const auto it = created.find(packet); it != created.end()) {
          st.latency.record(slot - it->second);
          created.erase(it);
        }
        break;
      }
      case sim::TraceEvent::Kind::kCollision:
        ++st.collisions;
        break;
      case sim::TraceEvent::Kind::kReceiverAsleep:
        ++st.receiver_asleep;
        break;
      case sim::TraceEvent::Kind::kChannelLoss:
        ++st.channel_losses;
        break;
      case sim::TraceEvent::Kind::kSyncLoss:
        ++st.sync_losses;
        break;
      case sim::TraceEvent::Kind::kQueueDrop:
        ++st.queue_drops;
        break;
    }
    if (num_nodes == 0) {
      const std::size_t hi = std::max(node, peer) + 1;
      if (hi > st.delivered_by_origin.size()) st.delivered_by_origin.resize(hi, 0);
    }
  }
  st.slots_run = any_event ? max_slot + 1 : 0;
  return result;
}

ReplayResult replay_jsonl_file(const std::string& path, std::size_t num_nodes) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("replay_jsonl_file: cannot open " + path);
  return replay_jsonl(in, num_nodes);
}

std::vector<std::string> ReplayResult::check(const sim::SimStats& live) const {
  std::vector<std::string> mismatches;
  const auto expect = [&](const char* what, std::uint64_t replayed, std::uint64_t actual) {
    if (replayed != actual) {
      std::ostringstream os;
      os << what << ": replayed " << replayed << " != live " << actual;
      mismatches.push_back(os.str());
    }
  };
  expect("generated", stats.generated, live.generated);
  expect("transmissions", stats.transmissions, live.transmissions);
  expect("delivered", stats.delivered, live.delivered);
  expect("hop_successes", stats.hop_successes, live.hop_successes);
  expect("collisions", stats.collisions, live.collisions);
  expect("receiver_asleep", stats.receiver_asleep, live.receiver_asleep);
  expect("channel_losses", stats.channel_losses, live.channel_losses);
  expect("sync_losses", stats.sync_losses, live.sync_losses);
  expect("queue_drops", stats.queue_drops, live.queue_drops);
  expect("latency samples", stats.latency.count(), live.latency.count());
  if (stats.latency.count() == live.latency.count() && stats.latency.count() > 0) {
    expect("latency max", stats.latency.max(), live.latency.max());
  }
  for (std::size_t v = 0; v < live.delivered_by_origin.size(); ++v) {
    const std::uint64_t replayed =
        v < stats.delivered_by_origin.size() ? stats.delivered_by_origin[v] : 0;
    if (replayed != live.delivered_by_origin[v]) {
      std::ostringstream os;
      os << "delivered_by_origin[" << v << "]: replayed " << replayed << " != live "
         << live.delivered_by_origin[v];
      mismatches.push_back(os.str());
    }
  }
  return mismatches;
}

}  // namespace ttdc::obs
