// Machine-readable bench reporting: every bench binary builds a BenchReport
// and write()s it as BENCH_<name>.json so the perf trajectory of the repo
// is diffable run over run.
//
// Schema (documented in DESIGN.md §7):
//   {
//     "name": "<bench name>",
//     "params": { "<key>": <string|int|double|bool>, ... },
//     "metrics": { "<key>": <number|null>, ... },   // null = non-finite
//     "elapsed_seconds": <double>
//   }
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/stats.hpp"
#include "util/timer.hpp"

namespace ttdc::obs {

/// JSON-representable scalar for params/metrics.
using JsonScalar = std::variant<std::string, std::int64_t, double, bool>;

/// Renders a scalar as a JSON value (strings escaped; non-finite doubles
/// become null, which every JSON consumer can ingest).
[[nodiscard]] std::string json_scalar(const JsonScalar& v);

/// Escapes and quotes a string per RFC 8259.
[[nodiscard]] std::string json_string(const std::string& s);

class BenchReport {
 public:
  /// Starts the wall-clock timer; `name` becomes BENCH_<name>.json.
  explicit BenchReport(std::string name);

  void param(const std::string& key, const std::string& value);
  void param(const std::string& key, const char* value);
  void param(const std::string& key, double value);
  void param(const std::string& key, bool value);
  /// Any integer type (exact-match template so literals don't hit the
  /// double/bool overloads by conversion).
  template <typename T, std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                                         int> = 0>
  void param(const std::string& key, T value) {
    param_int(key, static_cast<std::int64_t>(value));
  }

  void metric(const std::string& key, double value);
  template <typename T, std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                                         int> = 0>
  void metric(const std::string& key, T value) {
    metric_int(key, static_cast<std::int64_t>(value));
  }

  /// Folds a metrics snapshot in: counters and gauges become
  /// `<prefix><name>` metrics; histograms contribute `_count` and `_sum`.
  void add_snapshot(const std::vector<MetricSnapshot>& snapshot,
                    const std::string& prefix = "");

  /// Folds the headline counters of a sim run in under `<prefix>_...`.
  void add_sim_stats(const std::string& prefix, const sim::SimStats& stats);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double elapsed_seconds() const { return timer_.seconds(); }

  /// Serializes the report (elapsed_seconds sampled now).
  [[nodiscard]] std::string to_json() const;

  /// Writes BENCH_<name>.json into $TTDC_BENCH_DIR (or the working
  /// directory when unset); returns false on I/O failure. Also prints a
  /// one-line confirmation to stdout so bench logs show where it went.
  bool write() const;
  bool write_to(const std::string& dir) const;

 private:
  void param_int(const std::string& key, std::int64_t value);
  void metric_int(const std::string& key, std::int64_t value);

  std::string name_;
  util::Timer timer_;
  std::vector<std::pair<std::string, JsonScalar>> params_;
  std::vector<std::pair<std::string, JsonScalar>> metrics_;
};

}  // namespace ttdc::obs
