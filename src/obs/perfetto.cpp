#include "obs/perfetto.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

namespace ttdc::obs {

namespace {

// Process ids partition the trace into Perfetto top-level groups.
constexpr int kSpanPid = 1;
constexpr int kPacketPid = 2;
constexpr int kNodePid = 3;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Formats a microsecond timestamp: integral when whole, else 3 decimals.
std::string fmt_us(double us) {
  const double rounded = std::round(us);
  char buf[32];
  if (std::abs(us - rounded) < 1e-9) {
    std::snprintf(buf, sizeof(buf), "%.0f", rounded);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", us);
  }
  return buf;
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& out) : out_(out) { out_ << "{\"traceEvents\":[\n"; }

  void emit(const std::string& event_json) {
    if (!first_) out_ << ",\n";
    first_ = false;
    out_ << event_json;
  }

  void finish() { out_ << "\n],\"displayTimeUnit\":\"ms\"}\n"; }

 private:
  std::ostream& out_;
  bool first_ = true;
};

void emit_process_name(EventWriter& w, int pid, const std::string& name) {
  std::ostringstream os;
  os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
     << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  w.emit(os.str());
}

void emit_packet_tracks(EventWriter& w, const FlightLog& log, const PerfettoOptions& opt) {
  for (const PacketHistory& h : log.packets()) {
    const std::string track_name = "packet " + std::to_string(h.packet_id) +
                                   (h.truncated ? " (truncated)" : "");
    const auto common = [&](const char* ph, std::uint64_t slot) {
      std::ostringstream os;
      os << "{\"ph\":\"" << ph << "\",\"cat\":\"packet\",\"id\":" << h.packet_id
         << ",\"pid\":" << kPacketPid << ",\"tid\":0,\"ts\":"
         << fmt_us(static_cast<double>(slot) * opt.slot_us);
      return os;
    };
    {
      auto os = common("b", h.first_slot);
      os << ",\"name\":\"" << json_escape(track_name) << "\"}";
      w.emit(os.str());
    }
    for (const FlightEvent& e : h.events) {
      auto os = common("n", e.slot);
      os << ",\"name\":\"" << flight_kind_name(e.kind) << "\",\"args\":{\"node\":" << e.node;
      if (e.peer != FlightEvent::kNoNode) os << ",\"peer\":" << e.peer;
      if (e.aux != 0) os << ",\"aux\":" << e.aux;
      if (e.kind == FlightEvent::Kind::kCollided) {
        os << ",\"interferer_count\":" << static_cast<unsigned>(e.interferer_count)
           << ",\"interferers\":[";
        for (std::size_t i = 0; i < e.stored_interferers(); ++i) {
          if (i != 0) os << ',';
          os << e.interferers[i];
        }
        os << ']';
      }
      os << "}}";
      w.emit(os.str());
    }
    {
      auto os = common("e", h.last_slot);
      os << ",\"name\":\"" << json_escape(track_name) << "\"}";
      w.emit(os.str());
    }
  }
}

void emit_node_tracks(EventWriter& w, const FlightLog& log, const PerfettoOptions& opt) {
  for (const FlightEvent& e : log.events()) {
    if (e.node == FlightEvent::kNoNode) continue;
    std::ostringstream os;
    os << "{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"node\",\"name\":\"" << flight_kind_name(e.kind)
       << "\",\"pid\":" << kNodePid << ",\"tid\":" << e.node
       << ",\"ts\":" << fmt_us(static_cast<double>(e.slot) * opt.slot_us)
       << ",\"args\":{\"packet\":" << e.packet_id;
    if (e.peer != FlightEvent::kNoNode) os << ",\"peer\":" << e.peer;
    if (e.aux != 0) os << ",\"aux\":" << e.aux;
    os << "}}";
    w.emit(os.str());
  }
}

// Spans are aggregates (calls/total/self), not timestamped intervals, so
// the track is a synthetic flame layout: DFS order packs each span at its
// parent's child-cursor with width = accumulated total time.
void emit_span_flame(EventWriter& w, const Profiler& profiler) {
  struct Frame {
    std::size_t depth;
    double child_cursor_us;
  };
  std::vector<Frame> stack;
  double root_cursor_us = 0.0;
  for (const Profiler::SpanSample& s : profiler.span_samples()) {
    while (!stack.empty() && stack.back().depth >= s.depth) stack.pop_back();
    const double ts = stack.empty() ? root_cursor_us : stack.back().child_cursor_us;
    const double dur = s.total_seconds * 1e6;
    std::ostringstream os;
    os << "{\"ph\":\"X\",\"cat\":\"prof\",\"name\":\"" << json_escape(s.name)
       << "\",\"pid\":" << kSpanPid << ",\"tid\":0,\"ts\":" << fmt_us(ts)
       << ",\"dur\":" << fmt_us(dur) << ",\"args\":{\"calls\":" << s.calls
       << ",\"self_us\":" << fmt_us(s.self_seconds * 1e6) << ",\"path\":\""
       << json_escape(s.path) << "\"}}";
    w.emit(os.str());
    if (stack.empty()) {
      root_cursor_us += dur;
    } else {
      stack.back().child_cursor_us += dur;
    }
    stack.push_back({s.depth, ts});
  }
}

}  // namespace

void write_perfetto_trace(std::ostream& out, const FlightLog& log,
                          const Profiler* profiler, const PerfettoOptions& options) {
  EventWriter w(out);
  if (options.include_packets) emit_process_name(w, kPacketPid, "packets");
  if (options.include_node_tracks) emit_process_name(w, kNodePid, "nodes");
  if (options.include_spans && profiler != nullptr) {
    emit_process_name(w, kSpanPid, "profiler spans");
  }
  if (options.include_packets) emit_packet_tracks(w, log, options);
  if (options.include_node_tracks) emit_node_tracks(w, log, options);
  if (options.include_spans && profiler != nullptr) emit_span_flame(w, *profiler);
  w.finish();
}

bool write_perfetto_trace_file(const std::string& path, const FlightLog& log,
                               const Profiler* profiler, const PerfettoOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  write_perfetto_trace(out, log, profiler, options);
  out.flush();
  return static_cast<bool>(out);
}

namespace {

/// Recursive-descent JSON syntax checker. No value materialisation — just
/// structure, which is all the exporter tests need.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool run(std::string* error) {
    skip_ws();
    if (!value()) {
      if (error != nullptr) *error = error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) *error = "trailing content at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool fail(const std::string& why) {
    if (error_.empty()) error_ = why + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool string() {
    if (text_[pos_] != '"') return fail("expected string");
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("dangling escape");
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    return true;
  }

  bool value() {
    if (pos_ >= text_.size()) return fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool json_validate(const std::string& text, std::string* error) {
  return JsonChecker(text).run(error);
}

std::vector<std::string> validate_trace_events(const std::string& text) {
  std::vector<std::string> violations;
  std::string error;
  if (!json_validate(text, &error)) {
    violations.push_back("invalid JSON: " + error);
    return violations;
  }
  const auto key = text.find("\"traceEvents\"");
  if (key == std::string::npos) {
    violations.push_back("missing traceEvents key");
    return violations;
  }
  auto open = text.find('[', key);
  if (open == std::string::npos) {
    violations.push_back("traceEvents is not an array");
    return violations;
  }
  // Scan the array, slicing each top-level event object. The text is
  // already known-valid JSON, so brace counting (string-aware) is safe.
  std::size_t depth = 0;
  std::size_t event_start = 0;
  std::size_t event_index = 0;
  bool in_string = false;
  for (std::size_t i = open + 1; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      if (depth == 0) event_start = i;
      ++depth;
    } else if (c == '}' || c == ']') {
      if (c == ']' && depth == 0) break;  // end of traceEvents array
      --depth;
      if (depth == 0) {
        const std::string event = text.substr(event_start, i - event_start + 1);
        if (event.find("\"ph\"") == std::string::npos) {
          violations.push_back("event " + std::to_string(event_index) + " missing \"ph\"");
        }
        if (event.find("\"name\"") == std::string::npos) {
          violations.push_back("event " + std::to_string(event_index) +
                               " missing \"name\"");
        }
        ++event_index;
      }
    }
  }
  if (event_index == 0) violations.push_back("traceEvents array is empty");
  return violations;
}

}  // namespace ttdc::obs
