#include "obs/trace.hpp"

#include <array>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace ttdc::obs {

namespace {

constexpr std::array<std::pair<sim::TraceEvent::Kind, const char*>, 9> kKindNames = {{
    {sim::TraceEvent::Kind::kGenerated, "generated"},
    {sim::TraceEvent::Kind::kTransmit, "transmit"},
    {sim::TraceEvent::Kind::kHopDelivered, "hop_delivered"},
    {sim::TraceEvent::Kind::kFinalDelivered, "final_delivered"},
    {sim::TraceEvent::Kind::kCollision, "collision"},
    {sim::TraceEvent::Kind::kReceiverAsleep, "receiver_asleep"},
    {sim::TraceEvent::Kind::kChannelLoss, "channel_loss"},
    {sim::TraceEvent::Kind::kSyncLoss, "sync_loss"},
    {sim::TraceEvent::Kind::kQueueDrop, "queue_drop"},
}};

}  // namespace

const char* kind_name(sim::TraceEvent::Kind kind) {
  for (const auto& [k, name] : kKindNames) {
    if (k == kind) return name;
  }
  return "unknown";
}

bool kind_from_name(std::string_view name, sim::TraceEvent::Kind& out) {
  for (const auto& [k, n] : kKindNames) {
    if (name == n) {
      out = k;
      return true;
    }
  }
  return false;
}

void write_jsonl(std::ostream& out, const sim::TraceEvent& event) {
  out << "{\"kind\":\"" << kind_name(event.kind) << "\",\"slot\":" << event.slot
      << ",\"node\":" << event.node << ",\"peer\":" << event.peer
      << ",\"packet\":" << event.packet_id << "}\n";
}

JsonlTraceSink::JsonlTraceSink(const std::string& path) : owned_(path), out_(&owned_) {
  if (!owned_) {
    throw std::runtime_error("JsonlTraceSink: cannot open " + path);
  }
}

void JsonlTraceSink::operator()(const sim::TraceEvent& event) {
  write_jsonl(*out_, event);
  ++written_;
}

void JsonlTraceSink::flush() { out_->flush(); }

RingBufferTraceSink::RingBufferTraceSink(std::size_t capacity)
    : buf_(capacity == 0 ? 1 : capacity) {}

void RingBufferTraceSink::operator()(const sim::TraceEvent& event) {
  buf_[next_] = event;
  next_ = next_ + 1 == buf_.size() ? 0 : next_ + 1;
  ++seen_;
}

std::size_t RingBufferTraceSink::size() const {
  return seen_ < buf_.size() ? static_cast<std::size_t>(seen_) : buf_.size();
}

std::vector<sim::TraceEvent> RingBufferTraceSink::events() const {
  const std::size_t n = size();
  std::vector<sim::TraceEvent> out;
  out.reserve(n);
  // Oldest retained event: at index 0 until the buffer wraps, then at next_.
  const std::size_t start = seen_ < buf_.size() ? 0 : next_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(buf_[(start + i) % buf_.size()]);
  }
  return out;
}

void RingBufferTraceSink::clear() {
  next_ = 0;
  seen_ = 0;
}

std::string RingBufferTraceSink::dump() const {
  std::ostringstream os;
  os << "last " << size() << " of " << seen_ << " trace events:\n";
  for (const sim::TraceEvent& e : events()) {
    os << "  slot " << e.slot << ' ' << kind_name(e.kind) << ' ' << e.node << "->" << e.peer
       << " #" << e.packet_id << '\n';
  }
  return os.str();
}

TraceFn filtered(std::uint32_t kind_mask, TraceFn downstream) {
  return [kind_mask, downstream = std::move(downstream)](const sim::TraceEvent& e) {
    if (kind_bit(e.kind) & kind_mask) downstream(e);
  };
}

TraceFn fan_out(std::vector<TraceFn> sinks) {
  if (sinks.empty()) return {};
  if (sinks.size() == 1) return std::move(sinks.front());
  return [sinks = std::move(sinks)](const sim::TraceEvent& e) {
    for (const TraceFn& sink : sinks) sink(e);
  };
}

}  // namespace ttdc::obs
