// Replays a JSONL event trace (written by JsonlTraceSink) back into
// SimStats — self-validating telemetry: a trace is complete iff the
// counters it reconstructs match the live run's counters exactly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace ttdc::obs {

struct ReplayResult {
  /// Counters reconstructed from events. Only event-derived fields are
  /// populated: generated, transmissions, delivered, hop_successes,
  /// collisions, receiver_asleep, channel_losses, sync_losses, queue_drops,
  /// delivered_by_origin, latency. slots_run is the highest slot observed
  /// + 1 (a lower bound: trailing event-free slots leave no trace).
  sim::SimStats stats;
  std::uint64_t events = 0;
  /// Lines that failed to parse (malformed kind or missing fields).
  std::vector<std::string> errors;

  /// Compares every reconstructable counter against a live run's stats;
  /// returns one human-readable line per mismatch (empty == consistent).
  [[nodiscard]] std::vector<std::string> check(const sim::SimStats& live) const;
};

/// Parses JSONL events from `in`. `num_nodes` sizes delivered_by_origin;
/// pass 0 to size it from the largest node id seen.
[[nodiscard]] ReplayResult replay_jsonl(std::istream& in, std::size_t num_nodes = 0);

/// File convenience wrapper; throws std::runtime_error if unreadable.
[[nodiscard]] ReplayResult replay_jsonl_file(const std::string& path,
                                             std::size_t num_nodes = 0);

}  // namespace ttdc::obs
