// Post-mortem layer over a FlightRecorder ring: JSONL dump/load (the
// `ttdc-trace` interchange format) and the FlightLog query API answering
// the per-packet questions the aggregate counters cannot — worst-latency
// packet paths, per-node timelines, collision hot-spot rankings with
// explicit interferer causality, and a truncation-aware self-consistency
// check for rings that wrapped mid-run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/flight_recorder.hpp"

namespace ttdc::obs {

/// Inverse of flight_kind_name; false if `name` is not a known kind.
bool flight_kind_from_name(std::string_view name, FlightEvent::Kind& out);

/// Writes one event as a single JSON object line:
///   {"kind":"collided","slot":9041,"packet":77,"node":17,"peer":3,
///    "interferer_count":2,"interferers":[5,9]}
/// (aux only when non-zero, interferer fields only on kCollided).
void write_flight_jsonl(std::ostream& out, const FlightEvent& event);
void write_flight_jsonl(std::ostream& out, const std::vector<FlightEvent>& events);
/// Dumps `events` to `path`; false on I/O failure.
bool write_flight_jsonl_file(const std::string& path, const std::vector<FlightEvent>& events);

struct FlightParseResult {
  std::vector<FlightEvent> events;
  /// Lines that failed to parse (malformed kind or missing fields).
  std::vector<std::string> errors;
};

/// Parses flight JSONL back into events (the inverse of write_flight_jsonl;
/// round-tripping is exact and tested).
[[nodiscard]] FlightParseResult read_flight_jsonl(std::istream& in);
/// File convenience wrapper; throws std::runtime_error if unreadable.
[[nodiscard]] FlightParseResult read_flight_jsonl_file(const std::string& path);

/// The retained lifecycle of one packet, in recorded (chronological) order.
/// Because the ring evicts a strict prefix of the event stream, a retained
/// per-packet history is always a SUFFIX of the packet's full lifecycle;
/// `truncated` marks histories whose creation fell off the ring.
struct PacketHistory {
  static constexpr std::uint64_t kNoLatency = ~std::uint64_t{0};

  std::uint64_t packet_id = 0;
  std::vector<FlightEvent> events;
  bool truncated = false;   // first retained event is not kCreated
  bool delivered = false;   // a kDelivered event is retained
  std::uint32_t origin = FlightEvent::kNoNode;       // from kCreated/kDelivered if retained
  std::uint32_t destination = FlightEvent::kNoNode;  // from kCreated/kDelivered if retained
  std::uint64_t first_slot = 0;
  std::uint64_t last_slot = 0;
  /// End-to-end latency in slots (carried on the kDelivered event itself,
  /// so it survives ring truncation of the creation); kNoLatency otherwise.
  std::uint64_t latency = kNoLatency;
  /// Transmission attempts retained for this packet.
  std::uint64_t tx_attempts = 0;
  /// Attempts lost to collisions.
  std::uint64_t collisions = 0;
};

/// Immutable index over a flight-event stream (from a live ring or a
/// parsed dump). Construction is O(events log packets); queries are cheap.
class FlightLog {
 public:
  explicit FlightLog(std::vector<FlightEvent> events);

  [[nodiscard]] const std::vector<FlightEvent>& events() const { return events_; }

  /// Per-packet histories, ascending packet id.
  [[nodiscard]] const std::vector<PacketHistory>& packets() const { return packets_; }
  /// History of one packet, or nullptr if nothing of it is retained.
  [[nodiscard]] const PacketHistory* packet(std::uint64_t packet_id) const;

  /// Every event whose primary node is `node`, in stream order (the node's
  /// timeline: what node 17 saw, slot by slot).
  [[nodiscard]] std::vector<FlightEvent> node_timeline(std::uint32_t node) const;

  struct LatencyRecord {
    std::uint64_t packet_id = 0;
    std::uint32_t origin = FlightEvent::kNoNode;
    std::uint32_t destination = FlightEvent::kNoNode;
    std::uint64_t delivered_slot = 0;
    std::uint64_t latency = 0;
  };
  /// The k delivered packets with the largest end-to-end latency,
  /// descending (ties broken by ascending packet id). Robust to ring
  /// truncation: latency rides on the kDelivered event.
  [[nodiscard]] std::vector<LatencyRecord> worst_latency(std::size_t k) const;

  struct CollisionHotspot {
    std::uint32_t receiver = 0;
    std::uint64_t collisions = 0;  // kCollided events at this receiver
    std::uint64_t first_slot = 0;
    std::uint64_t last_slot = 0;
    /// Transmitters involved in collisions at this receiver (the event's
    /// transmitter plus its recorded interferers), with occurrence counts,
    /// descending (ties by ascending node id).
    std::vector<std::pair<std::uint32_t, std::uint64_t>> transmitters;
  };
  /// The k receivers losing the most receptions to collisions, descending
  /// (ties by ascending receiver id).
  [[nodiscard]] std::vector<CollisionHotspot> top_collisions(std::size_t k) const;

  /// Per-packet consistency audit, truncation-aware: every retained history
  /// must have monotone slots, a creation event only in first position, no
  /// events after a terminal (delivered/dropped/expired), and — for
  /// untruncated histories — a head-of-line before the first tx-attempt and
  /// a same-slot tx-attempt before every per-transmission outcome. Returns
  /// one human-readable line per violation (empty == consistent).
  [[nodiscard]] std::vector<std::string> self_check() const;

 private:
  std::vector<FlightEvent> events_;
  std::vector<PacketHistory> packets_;
  std::map<std::uint64_t, std::size_t> packet_index_;
};

}  // namespace ttdc::obs
