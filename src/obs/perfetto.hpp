// Chrome-trace-event JSON exporter, loadable in ui.perfetto.dev (or
// chrome://tracing). Packets become async tracks over the slot time axis,
// each node gets an instant-event timeline, and the hierarchical profiler
// span tree is laid out as a synthetic flame-graph track (spans are
// aggregates, so bars are packed by DFS order, duration = accumulated
// time — relative widths and nesting are meaningful, absolute starts are
// not).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/flight_query.hpp"
#include "obs/profile.hpp"

namespace ttdc::obs {

struct PerfettoOptions {
  /// Trace-event timestamps are microseconds; one simulator slot maps to
  /// this many. The default keeps one slot = 1ms so slot numbers read
  /// directly off the Perfetto ruler.
  double slot_us = 1000.0;
  bool include_packets = true;      ///< async b/n/e track per packet
  bool include_node_tracks = true;  ///< instant-event timeline per node
  bool include_spans = true;        ///< profiler span tree (flame layout)
};

/// Writes a complete JSON trace ({"traceEvents":[...]}). `profiler` may be
/// nullptr to export only the packet/node view.
void write_perfetto_trace(std::ostream& out, const FlightLog& log,
                          const Profiler* profiler,
                          const PerfettoOptions& options = {});

/// File convenience wrapper; false on I/O failure.
bool write_perfetto_trace_file(const std::string& path, const FlightLog& log,
                               const Profiler* profiler,
                               const PerfettoOptions& options = {});

/// Minimal structural JSON validator (syntax only: balanced containers,
/// well-formed strings/numbers/literals, single root value). Used by tests
/// to check exported traces without a JSON library; sets `error` to a
/// human-readable reason on failure.
[[nodiscard]] bool json_validate(const std::string& text, std::string* error = nullptr);

/// Structural check specific to trace-event JSON: valid JSON whose root
/// object has a "traceEvents" array in which every event carries "ph" and
/// "name" keys. Returns violation lines (empty == structurally valid).
[[nodiscard]] std::vector<std::string> validate_trace_events(const std::string& text);

}  // namespace ttdc::obs
