// Exporters: Prometheus text exposition for a metrics snapshot, and the
// bridge that publishes SimStats into a MetricsRegistry at read time.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/stats.hpp"

namespace ttdc::obs {

/// True iff `name` is a valid Prometheus metric name:
/// [a-zA-Z_:][a-zA-Z0-9_:]*.
[[nodiscard]] bool prometheus_valid_metric_name(const std::string& name);

/// True iff `name` is a valid Prometheus label name: [a-zA-Z_][a-zA-Z0-9_]*
/// (no colons, unlike metric names).
[[nodiscard]] bool prometheus_valid_label_name(const std::string& name);

/// HELP-line escaping per the text exposition format: backslash -> `\\`,
/// newline -> `\n` (HELP text is the one place arbitrary prose enters the
/// exposition, and an unescaped newline corrupts every line after it).
[[nodiscard]] std::string prometheus_escape_help(const std::string& help);

/// Prometheus text exposition format (version 0.0.4): # HELP / # TYPE
/// headers, `_bucket{le=...}` / `_sum` / `_count` series for histograms.
/// Metric names are sanitized to satisfy prometheus_valid_metric_name;
/// HELP text is escaped with prometheus_escape_help.
[[nodiscard]] std::string prometheus_text(const std::vector<MetricSnapshot>& snapshot);

/// Convenience: snapshot + render in one call.
[[nodiscard]] std::string prometheus_text(const MetricsRegistry& registry);

/// Publishes the aggregate counters and derived ratios of a finished (or
/// in-flight) run into `registry` under `<prefix>_...` — snapshot-on-read
/// companion to the simulator's live hot-path counters.
void publish_sim_stats(const sim::SimStats& stats, MetricsRegistry& registry,
                       const std::string& prefix = "ttdc_sim");

}  // namespace ttdc::obs
