// Exporters: Prometheus text exposition for a metrics snapshot, and the
// bridge that publishes SimStats into a MetricsRegistry at read time.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/stats.hpp"

namespace ttdc::obs {

/// Prometheus text exposition format (version 0.0.4): # HELP / # TYPE
/// headers, `_bucket{le=...}` / `_sum` / `_count` series for histograms.
/// Metric names are sanitized to [a-zA-Z0-9_:].
[[nodiscard]] std::string prometheus_text(const std::vector<MetricSnapshot>& snapshot);

/// Convenience: snapshot + render in one call.
[[nodiscard]] std::string prometheus_text(const MetricsRegistry& registry);

/// Publishes the aggregate counters and derived ratios of a finished (or
/// in-flight) run into `registry` under `<prefix>_...` — snapshot-on-read
/// companion to the simulator's live hot-path counters.
void publish_sim_stats(const sim::SimStats& stats, MetricsRegistry& registry,
                       const std::string& prefix = "ttdc_sim");

}  // namespace ttdc::obs
