// Packet flight recorder: a bounded ring of structured per-packet lifecycle
// events (created -> enqueued -> head-of-line -> tx-attempt -> collided /
// delivered / dropped / expired), emitted by the simulator pipeline so a
// post-mortem can answer *per-packet* questions ("why was this packet
// late?", "which transmitters collided at receiver 17 in slot 9041?") that
// the aggregate counters and histograms cannot.
//
// Cost contract (same as TTDC_PROF_SCOPE, DESIGN.md §11): the recorder is
// always compiled in; with no recorder installed — or the global flag off —
// Simulator::step() pays one relaxed atomic load per slot and every hook
// site a predictable branch. Collision events carry the interferer set
// recovered from the phase-2 slot-set intersection, so collision causality
// is explicit in the record, not re-derived after the fact.
//
// Header-only for the same reason as metrics.hpp / profile.hpp: the
// simulator records without a link edge back to ttdc_obs (which itself
// links ttdc_sim). The compiled companions — JSONL dump/load, the FlightLog
// query API, and the Perfetto exporter — live in flight_query.{hpp,cpp} and
// perfetto.{hpp,cpp}.
//
// A FlightRecorder instance is NOT thread-safe: it belongs to exactly one
// simulator (the campaign runner gives each cell its own ring and replays
// outlier rings at the join barrier).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace ttdc::obs {

/// One packet-lifecycle event. Fixed size so the ring never allocates after
/// construction; the interferer set is stored inline (first
/// kMaxInterferers, with the true cardinality in interferer_count).
struct FlightEvent {
  enum class Kind : std::uint8_t {
    kCreated,         // node = origin, peer = final destination
    kEnqueued,        // node = queue owner, peer = origin; aux = queue depth
    kHeadOfLine,      // node = queue owner, peer = next hop (kNoNode if
                      // unroutable); aux = queue depth
    kTxAttempt,       // node = transmitter, peer = intended next hop
    kCollided,        // node = intended receiver, peer = transmitter;
                      // interferers = OTHER transmitting neighbors of node
    kReceiverAsleep,  // node = intended receiver, peer = transmitter
    kChannelLoss,     // node = intended receiver, peer = transmitter
    kSyncLoss,        // node = intended receiver, peer = transmitter
    kHopDelivered,    // node = receiver (forwarder), peer = transmitter
    kDelivered,       // node = final destination, peer = origin;
                      // aux = end-to-end latency in slots
    kDropped,         // queue-full drop: node = dropping node, peer = origin
    kExpired,         // unroutable drop: node = dropping node, peer = origin
    // Per-transmission losses injected by an armed FaultPlan
    // (sim/fault.hpp); packet-scoped like the other outcomes above.
    kBurstLoss,       // Gilbert-Elliott bad-state loss: node = intended
                      // receiver, peer = transmitter
    kDriftLoss,       // clock-drift misalignment: node = intended receiver,
                      // peer = transmitter
    // World-fault instants injected by the FaultPlan. Not packet-scoped:
    // packet_id is kNoPacket and they are excluded from per-packet
    // histories, but they appear in node timelines so a post-mortem lines
    // faults up against the packet record ("node 17 crashed at 39.8k").
    kFaultCrash,         // node = crashed node
    kFaultRecover,       // node = recovered node; aux = downtime in slots
    kFaultBatterySpike,  // node = drained node; aux = whole mJ drained
    kFaultJamStart,      // node = jammer
    kFaultJamEnd,        // node = jammer
  };
  static constexpr std::size_t kMaxInterferers = 6;
  static constexpr std::uint32_t kNoNode = ~std::uint32_t{0};
  /// packet_id sentinel for events not tied to any packet (fault instants).
  static constexpr std::uint64_t kNoPacket = ~std::uint64_t{0};
  static constexpr std::size_t kNumKinds = 19;

  std::uint64_t slot = 0;
  std::uint64_t packet_id = 0;
  std::uint32_t node = 0;
  std::uint32_t peer = 0;
  /// Kind-specific scalar: queue depth after the event (kEnqueued,
  /// kHeadOfLine), end-to-end latency in slots (kDelivered), 0 otherwise.
  std::uint32_t aux = 0;
  Kind kind = Kind::kCreated;
  /// kCollided only: TRUE interferer cardinality (may exceed
  /// kMaxInterferers; only the first kMaxInterferers node ids are stored).
  std::uint8_t interferer_count = 0;
  std::uint32_t interferers[kMaxInterferers] = {};

  [[nodiscard]] std::size_t stored_interferers() const {
    return interferer_count < kMaxInterferers ? interferer_count : kMaxInterferers;
  }

  friend bool operator==(const FlightEvent& a, const FlightEvent& b) {
    if (a.slot != b.slot || a.packet_id != b.packet_id || a.node != b.node ||
        a.peer != b.peer || a.aux != b.aux || a.kind != b.kind ||
        a.interferer_count != b.interferer_count) {
      return false;
    }
    for (std::size_t i = 0; i < a.stored_interferers(); ++i) {
      if (a.interferers[i] != b.interferers[i]) return false;
    }
    return true;
  }
};

/// Bounded ring of FlightEvents, oldest evicted first; O(1) per event and
/// allocation-free after construction. Install into SimConfig::recorder.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity) : buf_(capacity) {}

  /// Process-wide arming flag (relaxed; default on). The simulator samples
  /// it once per slot, so flipping it bounds the recording to a region
  /// without re-wiring SimConfig — the same enable shape as
  /// Profiler::enable.
  static void enable(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }
  [[nodiscard]] static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  void record(const FlightEvent& event) {
    if (buf_.empty()) return;
    buf_[next_] = event;
    if (++next_ == buf_.size()) next_ = 0;
    ++seen_;
  }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<FlightEvent> events() const {
    std::vector<FlightEvent> out;
    const std::size_t n = size();
    out.reserve(n);
    // Oldest event sits at next_ once the ring has wrapped.
    const std::size_t start = seen_ >= buf_.size() ? next_ : 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t idx = start + i;
      if (idx >= buf_.size()) idx -= buf_.size();
      out.push_back(buf_[idx]);
    }
    return out;
  }

  /// Total events ever recorded (>= size() once the ring wraps).
  [[nodiscard]] std::uint64_t seen() const { return seen_; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::size_t size() const {
    return seen_ >= buf_.size() ? buf_.size() : static_cast<std::size_t>(seen_);
  }
  [[nodiscard]] bool wrapped() const { return seen_ > buf_.size(); }

  void clear() {
    next_ = 0;
    seen_ = 0;
  }

 private:
  static std::atomic<bool>& enabled_flag() {
    static std::atomic<bool> flag{true};
    return flag;
  }

  std::vector<FlightEvent> buf_;
  std::size_t next_ = 0;
  std::uint64_t seen_ = 0;
};

/// Stable wire name of an event kind ("created", "tx_attempt", ...).
[[nodiscard]] inline const char* flight_kind_name(FlightEvent::Kind kind) {
  switch (kind) {
    case FlightEvent::Kind::kCreated: return "created";
    case FlightEvent::Kind::kEnqueued: return "enqueued";
    case FlightEvent::Kind::kHeadOfLine: return "head_of_line";
    case FlightEvent::Kind::kTxAttempt: return "tx_attempt";
    case FlightEvent::Kind::kCollided: return "collided";
    case FlightEvent::Kind::kReceiverAsleep: return "receiver_asleep";
    case FlightEvent::Kind::kChannelLoss: return "channel_loss";
    case FlightEvent::Kind::kSyncLoss: return "sync_loss";
    case FlightEvent::Kind::kHopDelivered: return "hop_delivered";
    case FlightEvent::Kind::kDelivered: return "delivered";
    case FlightEvent::Kind::kDropped: return "dropped";
    case FlightEvent::Kind::kExpired: return "expired";
    case FlightEvent::Kind::kBurstLoss: return "burst_loss";
    case FlightEvent::Kind::kDriftLoss: return "drift_loss";
    case FlightEvent::Kind::kFaultCrash: return "fault_crash";
    case FlightEvent::Kind::kFaultRecover: return "fault_recover";
    case FlightEvent::Kind::kFaultBatterySpike: return "fault_battery_spike";
    case FlightEvent::Kind::kFaultJamStart: return "fault_jam_start";
    case FlightEvent::Kind::kFaultJamEnd: return "fault_jam_end";
  }
  return "unknown";
}

}  // namespace ttdc::obs
