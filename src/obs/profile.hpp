// Profiling spans: TTDC_PROF_SCOPE("name") accumulates {calls, total ns,
// self ns} per (callsite, parent span) into a process-wide span TREE, so a
// site that runs under several parents (say net.routing.build_column under
// both runner.cell and sim.step) is attributed to each parent separately,
// and a parent's self-time (total minus time inside child scopes) is
// explicit instead of inferred.
//
// Disabled (the default) a scope costs one relaxed atomic load and a
// predictable branch, so it is safe inside Simulator::step() and the
// combinatorial construction kernels. Enable around the region you want to
// profile with Profiler::enable(true) (or a ProfilerSession RAII guard).
// Enabled, a scope costs a thread-local read, one MRU-cache load, and three
// relaxed fetch_adds; the registry lock is only taken the first time a
// (callsite, parent) pair is seen.
//
// Thread safety: the span stack is thread-local (each OpenMP worker or
// campaign thread tracks its own nesting); SpanNodes are shared across
// threads and accumulate with relaxed atomics; node creation is serialized
// by the registry mutex. Two threads inside the same structural stack hit
// the SAME SpanNode, so per-parent attribution aggregates across workers.
//
// Header-only for the same reason as metrics.hpp: profiled code must not
// link ttdc_obs.
#pragma once

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace ttdc::obs {

/// One node of the span tree: a profiling site as observed under one
/// specific parent span (parent == nullptr for root-level scopes).
/// Accumulators are atomic so OpenMP-parallel regions sharing a structural
/// stack accumulate into one node without synchronization.
struct SpanNode {
  SpanNode(std::string name_in, const SpanNode* parent_in)
      : name(std::move(name_in)), parent(parent_in) {}
  const std::string name;
  const SpanNode* const parent;
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> total_ns{0};
  /// total_ns minus time spent inside child TTDC_PROF_SCOPEs.
  std::atomic<std::uint64_t> self_ns{0};
};

/// Per-callsite handle. Registered once per callsite via a static local in
/// TTDC_PROF_SCOPE; holds an MRU (parent -> node) edge so the common case —
/// a callsite whose runtime parent is stable — resolves its SpanNode with
/// one acquire load.
struct ProfSite {
  struct Edge {
    const SpanNode* parent;
    SpanNode* node;
  };
  std::string name;
  std::atomic<const Edge*> mru{nullptr};
};

class ProfScope;

namespace detail {
/// Innermost open ProfScope of the current thread (the span stack, stored
/// as an intrusive parent chain through the RAII objects themselves).
inline ProfScope*& tls_current_scope() {
  thread_local ProfScope* current = nullptr;
  return current;
}
}  // namespace detail

class Profiler {
 public:
  static Profiler& instance() {
    static Profiler profiler;
    return profiler;
  }

  static void enable(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }
  [[nodiscard]] static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  /// Registers (or finds) the callsite handle for `name`; the reference
  /// stays valid for the process lifetime.
  ProfSite& site(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = sites_[name];
    if (!slot) {
      slot = std::make_unique<ProfSite>();
      slot->name = name;
    }
    return *slot;
  }

  /// The span node for `site` under `parent`, creating it on first use.
  /// Hot path: the site's MRU edge matches and no lock is taken.
  SpanNode* node_for(ProfSite& site, const SpanNode* parent) {
    const ProfSite::Edge* edge = site.mru.load(std::memory_order_acquire);
    if (edge != nullptr && edge->parent == parent) return edge->node;
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = nodes_[{parent, site.name}];
    if (!slot) slot = std::make_unique<SpanNode>(site.name, parent);
    // Edges are retired, never freed: a racing reader may still hold the
    // old pointer. The set is bounded by the distinct (site, parent) pairs.
    edges_.push_back(std::make_unique<ProfSite::Edge>(ProfSite::Edge{parent, slot.get()}));
    site.mru.store(edges_.back().get(), std::memory_order_release);
    return slot.get();
  }

  /// Zeroes every accumulator (sites and span nodes stay registered).
  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, node] : nodes_) {
      node->calls.store(0, std::memory_order_relaxed);
      node->total_ns.store(0, std::memory_order_relaxed);
      node->self_ns.store(0, std::memory_order_relaxed);
    }
  }

  /// Flat per-site aggregate (summed over every parent the site ran
  /// under) — the PR-1 site-table view, kept for exporters and gates that
  /// don't care about nesting.
  struct Sample {
    std::string name;
    std::uint64_t calls = 0;
    double total_seconds = 0.0;
    double self_seconds = 0.0;
  };

  [[nodiscard]] std::vector<Sample> samples() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, Sample> by_name;
    for (const auto& [key, node] : nodes_) {
      Sample& s = by_name[node->name];
      s.name = node->name;
      s.calls += node->calls.load(std::memory_order_relaxed);
      s.total_seconds +=
          static_cast<double>(node->total_ns.load(std::memory_order_relaxed)) * 1e-9;
      s.self_seconds +=
          static_cast<double>(node->self_ns.load(std::memory_order_relaxed)) * 1e-9;
    }
    // Sites that registered but never ran still appear (calls == 0), as in
    // the flat-table implementation.
    for (const auto& [name, site] : sites_) {
      if (by_name.find(name) == by_name.end()) by_name[name] = Sample{name, 0, 0.0, 0.0};
    }
    std::vector<Sample> out;
    out.reserve(by_name.size());
    for (auto& [name, s] : by_name) out.push_back(std::move(s));
    return out;
  }

  /// One span-tree node, in parent-before-child DFS order (children sorted
  /// by name). `path` is the slash-joined ancestry including the node.
  struct SpanSample {
    std::string name;
    std::string path;
    std::size_t depth = 0;
    std::uint64_t calls = 0;
    double total_seconds = 0.0;
    double self_seconds = 0.0;
  };

  [[nodiscard]] std::vector<SpanSample> span_samples() const {
    std::lock_guard<std::mutex> lock(mu_);
    // nodes_ is keyed by (parent, name) and already ordered parent-major,
    // name-minor; group children under each parent, then DFS from the
    // roots (parent == nullptr).
    std::map<const SpanNode*, std::vector<const SpanNode*>> children;
    for (const auto& [key, node] : nodes_) children[key.first].push_back(node.get());
    std::vector<SpanSample> out;
    dfs_spans(children, nullptr, "", 0, out);
    return out;
  }

  /// Publishes the flat per-site aggregate as `prof_<name>_calls`,
  /// `prof_<name>_seconds`, and `prof_<name>_self_seconds` gauges.
  void publish(MetricsRegistry& registry, const std::string& prefix = "prof_") const {
    for (const Sample& s : samples()) {
      std::string base = prefix + s.name;
      for (char& c : base) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':')) c = '_';
      }
      registry.gauge(base + "_calls", "profiling scope call count")
          .set(static_cast<double>(s.calls));
      registry.gauge(base + "_seconds", "profiling scope cumulative seconds")
          .set(s.total_seconds);
      registry.gauge(base + "_self_seconds", "profiling scope self (non-child) seconds")
          .set(s.self_seconds);
    }
  }

  /// Human-readable flat table (name, calls, total, per-call), for examples
  /// and quick post-mortems; span_report() shows the tree.
  [[nodiscard]] std::string report() const {
    std::ostringstream os;
    os << "profiling scopes (calls / total s / per-call us):\n";
    for (const Sample& s : samples()) {
      const double per_call_us =
          s.calls == 0 ? 0.0 : s.total_seconds / static_cast<double>(s.calls) * 1e6;
      os << "  " << s.name << ": " << s.calls << " / " << s.total_seconds << " / "
         << per_call_us << "\n";
    }
    return os.str();
  }

  /// Indented span tree with per-parent attribution and self-time.
  [[nodiscard]] std::string span_report() const {
    std::ostringstream os;
    os << "profiling spans (calls / total s / self s):\n";
    for (const SpanSample& s : span_samples()) {
      os << "  ";
      for (std::size_t d = 0; d < s.depth; ++d) os << "  ";
      os << s.name << ": " << s.calls << " / " << s.total_seconds << " / "
         << s.self_seconds << "\n";
    }
    return os.str();
  }

 private:
  static std::atomic<bool>& enabled_flag() {
    static std::atomic<bool> flag{false};
    return flag;
  }

  void dfs_spans(const std::map<const SpanNode*, std::vector<const SpanNode*>>& children,
                 const SpanNode* parent, const std::string& prefix, std::size_t depth,
                 std::vector<SpanSample>& out) const {
    const auto it = children.find(parent);
    if (it == children.end()) return;
    for (const SpanNode* node : it->second) {
      SpanSample s;
      s.name = node->name;
      s.path = prefix.empty() ? node->name : prefix + "/" + node->name;
      s.depth = depth;
      s.calls = node->calls.load(std::memory_order_relaxed);
      s.total_seconds =
          static_cast<double>(node->total_ns.load(std::memory_order_relaxed)) * 1e-9;
      s.self_seconds =
          static_cast<double>(node->self_ns.load(std::memory_order_relaxed)) * 1e-9;
      const std::string path = s.path;
      out.push_back(std::move(s));
      dfs_spans(children, node, path, depth + 1, out);
    }
  }

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ProfSite>> sites_;
  std::map<std::pair<const SpanNode*, std::string>, std::unique_ptr<SpanNode>> nodes_;
  std::vector<std::unique_ptr<ProfSite::Edge>> edges_;
};

/// RAII span: pushes itself on the thread's span stack, accumulates
/// {calls, total, self} into the (site, parent) node on exit, and feeds its
/// elapsed time to the parent's child-time so the parent's self_ns is
/// exact. No-op (no clock read, no TLS write) when the profiler is off.
class ProfScope {
 public:
  explicit ProfScope(ProfSite& site) {
    if (!Profiler::enabled()) return;
    ProfScope*& current = detail::tls_current_scope();
    parent_ = current;
    node_ = Profiler::instance().node_for(site, parent_ != nullptr ? parent_->node_ : nullptr);
    current = this;
    start_ = std::chrono::steady_clock::now();
  }
  ~ProfScope() {
    if (node_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    const auto total = static_cast<std::uint64_t>(ns);
    detail::tls_current_scope() = parent_;
    node_->calls.fetch_add(1, std::memory_order_relaxed);
    node_->total_ns.fetch_add(total, std::memory_order_relaxed);
    // Guard against a child scope that closed after a clock step backward
    // (steady_clock can't, but belt-and-braces keeps self_ns from wrapping).
    node_->self_ns.fetch_add(total >= child_ns_ ? total - child_ns_ : 0,
                             std::memory_order_relaxed);
    if (parent_ != nullptr) parent_->child_ns_ += total;
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ProfScope* parent_ = nullptr;
  SpanNode* node_ = nullptr;
  std::uint64_t child_ns_ = 0;
  std::chrono::steady_clock::time_point start_;
};

/// Enables profiling for a lexical region (and restores on exit).
class ProfilerSession {
 public:
  ProfilerSession() : prev_(Profiler::enabled()) { Profiler::enable(true); }
  ~ProfilerSession() { Profiler::enable(prev_); }
  ProfilerSession(const ProfilerSession&) = delete;
  ProfilerSession& operator=(const ProfilerSession&) = delete;

 private:
  bool prev_;
};

#define TTDC_PROF_CONCAT_INNER(a, b) a##b
#define TTDC_PROF_CONCAT(a, b) TTDC_PROF_CONCAT_INNER(a, b)

/// Accumulates the enclosing scope's wall time under `name` (a string
/// literal), attributed to the innermost enclosing TTDC_PROF_SCOPE as its
/// parent span. Site lookup happens once per callsite.
#define TTDC_PROF_SCOPE(name)                                                  \
  static ::ttdc::obs::ProfSite& TTDC_PROF_CONCAT(ttdc_prof_site_, __LINE__) =  \
      ::ttdc::obs::Profiler::instance().site(name);                            \
  ::ttdc::obs::ProfScope TTDC_PROF_CONCAT(ttdc_prof_scope_, __LINE__)(         \
      TTDC_PROF_CONCAT(ttdc_prof_site_, __LINE__))

}  // namespace ttdc::obs
