// Profiling scopes: TTDC_PROF_SCOPE("name") accumulates {calls, total ns}
// per site into a process-wide table, publishable into a MetricsRegistry.
//
// Disabled (the default) a scope costs one relaxed atomic load and a
// predictable branch, so it is safe inside Simulator::step() and the
// combinatorial construction kernels. Enable around the region you want to
// profile with Profiler::enable(true) (or a ProfilerSession RAII guard).
// Header-only for the same reason as metrics.hpp: profiled code must not
// link ttdc_obs.
#pragma once

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace ttdc::obs {

/// Per-callsite accumulator. Atomic so OpenMP-parallel regions can share a
/// site.
struct ProfSite {
  std::string name;
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> total_ns{0};
};

class Profiler {
 public:
  static Profiler& instance() {
    static Profiler profiler;
    return profiler;
  }

  static void enable(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }
  [[nodiscard]] static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  /// Registers (or finds) the accumulator for `name`; the reference stays
  /// valid for the process lifetime. Called once per callsite via a static
  /// local in TTDC_PROF_SCOPE.
  ProfSite& site(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = sites_[name];
    if (!slot) {
      slot = std::make_unique<ProfSite>();
      slot->name = name;
    }
    return *slot;
  }

  /// Zeroes every accumulator (sites stay registered).
  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, s] : sites_) {
      s->calls.store(0, std::memory_order_relaxed);
      s->total_ns.store(0, std::memory_order_relaxed);
    }
  }

  struct Sample {
    std::string name;
    std::uint64_t calls = 0;
    double total_seconds = 0.0;
  };

  [[nodiscard]] std::vector<Sample> samples() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Sample> out;
    out.reserve(sites_.size());
    for (const auto& [name, s] : sites_) {
      out.push_back({name, s->calls.load(std::memory_order_relaxed),
                     static_cast<double>(s->total_ns.load(std::memory_order_relaxed)) * 1e-9});
    }
    return out;
  }

  /// Publishes every site as `prof_<name>_calls` (counter-valued gauge would
  /// lie across publishes, so counters are bumped by the delta) and
  /// `prof_<name>_seconds` gauges into `registry`.
  void publish(MetricsRegistry& registry, const std::string& prefix = "prof_") const {
    for (const Sample& s : samples()) {
      std::string base = prefix + s.name;
      for (char& c : base) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':')) c = '_';
      }
      registry.gauge(base + "_calls", "profiling scope call count")
          .set(static_cast<double>(s.calls));
      registry.gauge(base + "_seconds", "profiling scope cumulative seconds")
          .set(s.total_seconds);
    }
  }

  /// Human-readable table (name, calls, total, per-call), for examples and
  /// post-mortems.
  [[nodiscard]] std::string report() const {
    std::ostringstream os;
    os << "profiling scopes (calls / total s / per-call us):\n";
    for (const Sample& s : samples()) {
      const double per_call_us = s.calls == 0 ? 0.0 : s.total_seconds / static_cast<double>(s.calls) * 1e6;
      os << "  " << s.name << ": " << s.calls << " / " << s.total_seconds << " / "
         << per_call_us << "\n";
    }
    return os.str();
  }

 private:
  static std::atomic<bool>& enabled_flag() {
    static std::atomic<bool> flag{false};
    return flag;
  }

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ProfSite>> sites_;
};

/// RAII accumulation into one site; no-op (no clock read) when disabled.
class ProfScope {
 public:
  explicit ProfScope(ProfSite& site)
      : site_(Profiler::enabled() ? &site : nullptr) {
    if (site_) start_ = std::chrono::steady_clock::now();
  }
  ~ProfScope() {
    if (site_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      site_->calls.fetch_add(1, std::memory_order_relaxed);
      site_->total_ns.fetch_add(static_cast<std::uint64_t>(ns), std::memory_order_relaxed);
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ProfSite* site_;
  std::chrono::steady_clock::time_point start_;
};

/// Enables profiling for a lexical region (and restores on exit).
class ProfilerSession {
 public:
  ProfilerSession() : prev_(Profiler::enabled()) { Profiler::enable(true); }
  ~ProfilerSession() { Profiler::enable(prev_); }
  ProfilerSession(const ProfilerSession&) = delete;
  ProfilerSession& operator=(const ProfilerSession&) = delete;

 private:
  bool prev_;
};

#define TTDC_PROF_CONCAT_INNER(a, b) a##b
#define TTDC_PROF_CONCAT(a, b) TTDC_PROF_CONCAT_INNER(a, b)

/// Accumulates the enclosing scope's wall time under `name` (a string
/// literal). Site lookup happens once per callsite.
#define TTDC_PROF_SCOPE(name)                                                  \
  static ::ttdc::obs::ProfSite& TTDC_PROF_CONCAT(ttdc_prof_site_, __LINE__) =  \
      ::ttdc::obs::Profiler::instance().site(name);                            \
  ::ttdc::obs::ProfScope TTDC_PROF_CONCAT(ttdc_prof_scope_, __LINE__)(         \
      TTDC_PROF_CONCAT(ttdc_prof_site_, __LINE__))

}  // namespace ttdc::obs
