#include "obs/export.hpp"

#include <cctype>
#include <cmath>
#include <limits>
#include <sstream>

namespace ttdc::obs {

namespace {

std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':')) c = '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front()))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void write_double(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
  } else {
    os << v;
  }
}

}  // namespace

bool prometheus_valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' || c == ':';
  };
  if (!head(name.front())) return false;
  for (const char c : name) {
    if (!(head(c) || std::isdigit(static_cast<unsigned char>(c)) != 0)) return false;
  }
  return true;
}

bool prometheus_valid_label_name(const std::string& name) {
  // Same as a metric name minus the colon (colons are reserved for
  // recording rules).
  return prometheus_valid_metric_name(name) && name.find(':') == std::string::npos;
}

std::string prometheus_escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string prometheus_text(const std::vector<MetricSnapshot>& snapshot) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  for (const MetricSnapshot& m : snapshot) {
    const std::string name = sanitize(m.name);
    if (!m.help.empty()) {
      os << "# HELP " << name << ' ' << prometheus_escape_help(m.help) << '\n';
    }
    switch (m.type) {
      case MetricSnapshot::Type::kCounter:
        os << "# TYPE " << name << " counter\n";
        os << name << ' ' << m.counter_value << '\n';
        break;
      case MetricSnapshot::Type::kGauge:
        os << "# TYPE " << name << " gauge\n";
        os << name << ' ';
        write_double(os, m.gauge_value);
        os << '\n';
        break;
      case MetricSnapshot::Type::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < m.bounds.size(); ++i) {
          cumulative += m.buckets[i];
          os << name << "_bucket{le=\"";
          write_double(os, m.bounds[i]);
          os << "\"} " << cumulative << '\n';
        }
        os << name << "_bucket{le=\"+Inf\"} " << m.count << '\n';
        os << name << "_sum ";
        write_double(os, m.sum);
        os << '\n';
        os << name << "_count " << m.count << '\n';
        break;
      }
    }
  }
  return os.str();
}

std::string prometheus_text(const MetricsRegistry& registry) {
  return prometheus_text(registry.snapshot());
}

void publish_sim_stats(const sim::SimStats& stats, MetricsRegistry& registry,
                       const std::string& prefix) {
  const auto g = [&](const char* suffix, const char* help) -> Gauge& {
    return registry.gauge(prefix + std::string(suffix), help);
  };
  g("_slots_run", "slots simulated").set(static_cast<double>(stats.slots_run));
  g("_generated", "packets generated").set(static_cast<double>(stats.generated));
  g("_delivered", "packets delivered end to end").set(static_cast<double>(stats.delivered));
  g("_transmissions", "transmission attempts").set(static_cast<double>(stats.transmissions));
  g("_hop_successes", "per-hop receptions").set(static_cast<double>(stats.hop_successes));
  g("_collisions", "receptions lost to collisions").set(static_cast<double>(stats.collisions));
  g("_receiver_asleep", "receptions lost: receiver not listening")
      .set(static_cast<double>(stats.receiver_asleep));
  g("_channel_losses", "receptions lost to channel error")
      .set(static_cast<double>(stats.channel_losses));
  g("_sync_losses", "receptions lost to sync miss").set(static_cast<double>(stats.sync_losses));
  g("_queue_drops", "packets dropped at full or unroutable queues")
      .set(static_cast<double>(stats.queue_drops));
  g("_delivery_ratio", "delivered / generated").set(stats.delivery_ratio());
  g("_hop_success_ratio", "hop successes / transmissions").set(stats.success_ratio());
  g("_awake_fraction", "fraction of node-slots not asleep").set(stats.awake_fraction());
  g("_latency_mean_slots", "mean delivery latency").set(stats.latency.mean());
  g("_latency_p50_slots", "median delivery latency")
      .set(static_cast<double>(stats.latency.percentile(50)));
  g("_latency_p95_slots", "95th-percentile delivery latency")
      .set(static_cast<double>(stats.latency.percentile(95)));
  g("_latency_max_slots", "max delivery latency")
      .set(static_cast<double>(stats.latency.max()));
  g("_deaths", "battery-depleted nodes").set(static_cast<double>(stats.deaths));
}

}  // namespace ttdc::obs
