// Frame-level fast-forwarding: memoized per-frame deltas for static
// stretches of a periodic-MAC simulation.
//
// The paper's schedules are periodic with frame length L, so whenever the
// world is unchanged across a frame — same topology epoch, same per-node
// queue contents (up to packet age), same dead/crashed/jamming sets, same
// previous-slot awake set — the frame's slot-by-slot outcome repeats
// EXACTLY. The engine exploits that: at a frame boundary it fingerprints
// the world, and when the fingerprint has been seen before it verifies the
// full memoized pre-state (hash collisions can never corrupt a run) and
// applies the frame's recorded delta in O(state) instead of stepping L
// slots. A memoized frame whose delta is a pure self-loop (no queue or
// awake-set change: the idle steady state of a lifetime run) is replayed k
// frames at a time, turning event-free stretches from O(slots) into
// O(events).
//
// The invalidation contract is exact, not heuristic — replay is vetoed (and
// the engine falls back to slot-accurate stepping) whenever ANY of these
// fires:
//   * the traffic source reports an emission inside the upcoming frame
//     (TrafficSource::next_emission — only lookahead-capable sources arm
//     the engine at all);
//   * a scheduled fault-plan event lands inside the frame;
//   * the battery model would cross a death boundary during the replayed
//     window (the exact death slot needs slot accuracy);
//   * the flight recorder is armed (replay emits no per-packet events);
//   * the stored pre-state fails verification against the live state.
// set_graph() (topology churn) bumps the graph epoch and clears the memo
// outright, and frames that consumed simulator randomness, killed a node,
// or transmitted under an armed Gilbert-Elliott/drift channel are never
// memoized in the first place (the taint checks in record).
//
// Golden SimStats equality between fast-forward on and off — across all
// five MACs, fault storms, and sizes — is the non-negotiable test for all
// of this (tests/test_fastforward.cpp); FastForwardStats deliberately
// lives OUTSIDE SimStats so that equality (and the campaign journal's
// byte-identity) holds by construction. See DESIGN.md §15.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/packet.hpp"

namespace ttdc::obs {
class Counter;  // obs/metrics.hpp
}

namespace ttdc::sim {

/// Fast-forward accounting, exposed via Simulator::fast_forward_stats() and
/// (when a metrics registry is wired) ttdc_sim_ff_* counters. NOT part of
/// SimStats: two runs differing only in the fast_forward flag must produce
/// bit-identical SimStats, and campaign journal contributions must stay
/// byte-identical.
struct FastForwardStats {
  std::uint64_t frames_replayed = 0;   // frames applied from the memo
  std::uint64_t slots_replayed = 0;    // slots covered by those frames
  std::uint64_t frames_recorded = 0;   // frames stepped AND memoized
  std::uint64_t frames_discarded = 0;  // frames stepped but tainted (not memoized)
  std::uint64_t memo_evictions = 0;    // whole-memo clears on capacity
  std::uint64_t graph_invalidations = 0;  // set_graph() memo clears
  // Fallback causes: frame boundaries where replay was vetoed and the
  // engine stepped slot-accurately instead (the per-cause histogram the
  // obs counters mirror).
  std::uint64_t fallback_arrival = 0;      // traffic emission inside the frame
  std::uint64_t fallback_fault_event = 0;  // fault-plan event inside the frame
  std::uint64_t fallback_battery = 0;      // death crossing inside the window
  std::uint64_t fallback_recorder = 0;     // armed flight recorder
  std::uint64_t fallback_verify = 0;       // fingerprint hit, pre-state mismatch
};

/// Internal engine state, owned by the Simulator when (and only when) the
/// arming conditions hold; every member is documented against the replay
/// algorithm in sim/fastforward.cpp.
struct FastForwardState {
  /// Queue-resident packet as fingerprinted and verified: identity fields
  /// that determine future behavior, with created_slot expressed as an AGE
  /// (now - created) so frames at different absolute times can match.
  /// Packet ids are deliberately excluded — they are labels, not behavior —
  /// and the replay mapping below carries the live ids through.
  struct PrePacket {
    std::uint64_t age = 0;
    std::uint32_t origin = 0;
    std::uint32_t destination = 0;
    std::uint32_t hops = 0;
  };
  struct PreQueue {
    std::uint32_t node = 0;
    std::vector<PrePacket> packets;
  };
  /// One post-state queue slot: which pre-state packet lands here (by its
  /// position in pre_queues) and how many hops it gained. Silent frames
  /// generate nothing, so every surviving packet maps to a pre-state one.
  struct PostPacket {
    std::uint32_t pre_queue = 0;  // index into Entry::pre_queues
    std::uint32_t pre_index = 0;  // position within that queue
    std::uint32_t hops_inc = 0;
  };
  struct PostQueue {
    std::uint32_t node = 0;
    std::vector<PostPacket> packets;
  };
  /// Sparse per-node stat increments over the frame.
  struct NodeStateDelta {
    std::uint32_t node = 0;
    std::uint32_t transmit_slots = 0;
    std::uint32_t listen_slots = 0;
    std::uint32_t wake_transitions = 0;
  };
  struct OriginDelta {
    std::uint32_t node = 0;
    std::uint32_t delivered = 0;
  };

  struct Entry {
    // --- pre-state, verified field-by-field before any replay ---
    std::vector<PreQueue> pre_queues;           // every backlogged node, ascending
    std::vector<std::uint32_t> pre_prev_awake;  // members, ascending
    std::vector<std::uint32_t> pre_dead;
    std::vector<std::uint32_t> pre_down;     // fault world only
    std::vector<std::uint32_t> pre_jamming;  // fault world only
    // --- the frame's delta ---
    std::uint64_t transmissions = 0;
    std::uint64_t hop_successes = 0;
    std::uint64_t delivered = 0;
    std::uint64_t collisions = 0;
    std::uint64_t receiver_asleep = 0;
    std::uint64_t queue_drops = 0;
    std::vector<std::uint64_t> latency_samples;  // in delivery order
    std::vector<OriginDelta> delivered_by_origin;
    std::vector<NodeStateDelta> states;
    std::vector<std::int64_t> battery_drain;  // per node, battery model only
    std::vector<PostQueue> post_queues;
    std::vector<std::uint32_t> end_prev_awake;  // members, ascending
    /// True when the frame is a fixed point of the world (empty queues in
    /// and out, no deliveries, awake set unchanged): replayable k frames at
    /// a time with all scalar deltas scaled by k.
    bool self_loop = false;
  };

  /// Fingerprint -> memoized frame. Lookup-only (iteration order never
  /// escapes); cleared wholesale on set_graph() and on capacity overflow.
  std::unordered_map<std::uint64_t, Entry> memo;
  /// Bumped by set_graph(); folded into every fingerprint so stale entries
  /// can never match even transiently.
  std::uint64_t graph_epoch = 0;
  FastForwardStats stats;

  // Live metric handles (null without a metrics registry).
  obs::Counter* m_frames_replayed = nullptr;
  obs::Counter* m_slots_replayed = nullptr;
  obs::Counter* m_frames_recorded = nullptr;
  obs::Counter* m_fallback_arrival = nullptr;
  obs::Counter* m_fallback_fault_event = nullptr;
  obs::Counter* m_fallback_battery = nullptr;
  obs::Counter* m_fallback_recorder = nullptr;
  obs::Counter* m_fallback_verify = nullptr;

  // Recording scratch, reused across frames (no steady-state allocation
  // once warmed): pre-frame snapshots the record path diffs against.
  std::vector<std::int64_t> pre_battery;
  std::vector<std::uint64_t> pre_state_tx;      // per-node transmit slots
  std::vector<std::uint64_t> pre_state_listen;  // per-node listen slots
  std::vector<std::uint64_t> pre_wakes;
  std::vector<std::uint64_t> pre_delivered_by_origin;
  /// packet id -> (pre_queue index, position) for the post-state mapping.
  std::unordered_map<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>> pre_packet_pos;
  /// Replay scratch: materialized source-queue contents during a rewrite.
  std::vector<std::vector<Packet>> rewrite_scratch;

  /// Memo capacity before a wholesale clear. Distinct world states in a
  /// lifetime run are few (idle frame per jam/crash combination, a handful
  /// of drain patterns); a tiny cache holds them all, and clearing on
  /// overflow keeps the worst case bounded without an LRU chain.
  static constexpr std::size_t kMemoCapacity = 64;
};

}  // namespace ttdc::sim
