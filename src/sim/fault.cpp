#include "sim/fault.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace ttdc::sim {

namespace {

// Child-seed domains, one per fault class, so changing the parameters of
// one class never shifts another's draws (a jammer count tweak must not
// reshuffle the crash schedule).
constexpr std::uint64_t kDomainCrash = 0x66c5a1;
constexpr std::uint64_t kDomainSpike = 0x5b1c3;
constexpr std::uint64_t kDomainJam = 0x7a33;
constexpr std::uint64_t kDomainDrift = 0xd21f7;
constexpr std::uint64_t kDomainLink = 0x119caa;

std::uint64_t child_seed(std::uint64_t seed, std::uint64_t domain, std::uint64_t key) {
  return util::mix64(util::mix64(seed ^ domain) ^ key);
}

/// Geometric inter-arrival gap (>= 1 slot) for a per-slot hazard p: the
/// number of slots until the next success of a Bernoulli(p) process.
/// Inverse-CDF sampling keeps it one uniform draw per event instead of one
/// per slot, so plan generation is O(events), not O(horizon).
std::uint64_t geometric_gap(util::Xoshiro256& rng, double p) {
  TTDC_ASSERT(p > 0.0 && p <= 1.0, "geometric hazard out of range: ", p);
  if (p >= 1.0) return 1;
  const double u = rng.uniform01();
  const double gap = std::floor(std::log1p(-u) / std::log1p(-p));
  if (gap >= 1e18) return static_cast<std::uint64_t>(1e18);
  return 1 + static_cast<std::uint64_t>(gap);
}

/// Geometric downtime with the given mean (>= 1 slot).
std::uint64_t geometric_duration(util::Xoshiro256& rng, double mean) {
  if (mean <= 1.0) return 1;
  return geometric_gap(rng, 1.0 / mean);
}

}  // namespace

const char* fault_kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCrash: return "crash";
    case FaultEvent::Kind::kRecover: return "recover";
    case FaultEvent::Kind::kBatterySpike: return "battery_spike";
    case FaultEvent::Kind::kJamStart: return "jam_start";
    case FaultEvent::Kind::kJamEnd: return "jam_end";
  }
  return "unknown";
}

FaultPlan::FaultPlan(const FaultPlanConfig& config, std::size_t num_nodes,
                     std::uint64_t seed)
    : config_(config), num_nodes_(num_nodes),
      link_stream_seed_(child_seed(seed, kDomainLink, 0)) {
  const std::uint64_t horizon = config.horizon_slots;

  // Crash / recover: per node, alternate geometric uptime (hazard
  // crash_rate) and geometric downtime (mean mean_downtime_slots). A node
  // still down at the horizon simply never recovers in-plan.
  if (config.crash_rate > 0.0 && horizon > 0) {
    const double mean_down = std::max(1.0, config.mean_downtime_slots);
    for (std::size_t v = 0; v < num_nodes; ++v) {
      util::Xoshiro256 rng(child_seed(seed, kDomainCrash, v));
      std::uint64_t t = 0;
      for (;;) {
        const std::uint64_t up = geometric_gap(rng, config.crash_rate);
        if (horizon - t < up) break;  // overflow-safe: up > remaining
        t += up;
        events_.push_back({t, v, 0.0, FaultEvent::Kind::kCrash});
        const std::uint64_t down = geometric_duration(rng, mean_down);
        if (horizon - t < down) break;
        t += down;
        events_.push_back({t, v, 0.0, FaultEvent::Kind::kRecover});
      }
    }
  }

  // Battery-drain spikes: per node, geometric gaps at battery_spike_rate.
  if (config.battery_spike_rate > 0.0 && config.battery_spike_mj > 0.0 && horizon > 0) {
    for (std::size_t v = 0; v < num_nodes; ++v) {
      util::Xoshiro256 rng(child_seed(seed, kDomainSpike, v));
      std::uint64_t t = 0;
      for (;;) {
        const std::uint64_t gap = geometric_gap(rng, config.battery_spike_rate);
        if (horizon - t < gap) break;
        t += gap;
        events_.push_back({t, v, config.battery_spike_mj, FaultEvent::Kind::kBatterySpike});
      }
    }
  }

  // Jammers: num_jammers distinct nodes; each alternates geometric off-time
  // (sized so the long-run jammed fraction is jam_duty) with a fixed-length
  // jam burst.
  if (config.num_jammers > 0 && config.jam_duty > 0.0 && config.jam_burst_slots > 0 &&
      horizon > 0) {
    const double duty = std::min(config.jam_duty, 0.99);
    const double burst = static_cast<double>(config.jam_burst_slots);
    const double mean_off = std::max(1.0, burst * (1.0 - duty) / duty);
    util::Xoshiro256 pick(child_seed(seed, kDomainJam, ~std::uint64_t{0}));
    const auto jammers =
        util::sample_k_of(num_nodes, std::min(config.num_jammers, num_nodes), pick);
    for (const std::size_t v : jammers) {
      util::Xoshiro256 rng(child_seed(seed, kDomainJam, v));
      std::uint64_t t = 0;
      for (;;) {
        const std::uint64_t off = geometric_duration(rng, mean_off);
        if (horizon - t < off) break;
        t += off;
        events_.push_back({t, v, 0.0, FaultEvent::Kind::kJamStart});
        if (horizon - t < config.jam_burst_slots) break;
        t += config.jam_burst_slots;
        events_.push_back({t, v, 0.0, FaultEvent::Kind::kJamEnd});
      }
    }
  }

  // Drift rates: one uniform draw per node in [-max, +max].
  if (config.max_drift_per_slot > 0.0) {
    drift_rates_.resize(num_nodes);
    for (std::size_t v = 0; v < num_nodes; ++v) {
      util::Xoshiro256 rng(child_seed(seed, kDomainDrift, v));
      drift_rates_[v] = (2.0 * rng.uniform01() - 1.0) * config.max_drift_per_slot;
    }
  }

  sort_events();
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events, std::size_t num_nodes,
                     FaultPlanConfig config, std::uint64_t seed)
    : config_(config), num_nodes_(num_nodes),
      link_stream_seed_(child_seed(seed, kDomainLink, 0)), events_(std::move(events)) {
  for (const auto& e : events_) {
    TTDC_ASSERT(e.node < num_nodes_, "fault event node ", e.node, " out of range (n=",
                num_nodes_, ")");
  }
  if (config.max_drift_per_slot > 0.0) {
    drift_rates_.resize(num_nodes);
    for (std::size_t v = 0; v < num_nodes; ++v) {
      util::Xoshiro256 rng(child_seed(seed, kDomainDrift, v));
      drift_rates_[v] = (2.0 * rng.uniform01() - 1.0) * config.max_drift_per_slot;
    }
  }
  sort_events();
}

void FaultPlan::sort_events() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.slot != b.slot) return a.slot < b.slot;
                     if (a.node != b.node) return a.node < b.node;
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
}

std::size_t FaultPlan::count(FaultEvent::Kind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const FaultEvent& e) { return e.kind == kind; }));
}

std::string FaultPlan::summary() const {
  std::ostringstream os;
  os << "events=" << events_.size() << " crashes=" << count(FaultEvent::Kind::kCrash)
     << " recoveries=" << count(FaultEvent::Kind::kRecover)
     << " spikes=" << count(FaultEvent::Kind::kBatterySpike)
     << " jam_bursts=" << count(FaultEvent::Kind::kJamStart)
     << " link_loss=" << (has_link_loss() ? "on" : "off")
     << " drift=" << (has_drift() ? "on" : "off");
  return os.str();
}

}  // namespace ttdc::sim
