#include "sim/traffic.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace ttdc::sim {

LookaheadConvergecastTraffic::LookaheadConvergecastTraffic(std::size_t num_nodes,
                                                           std::size_t sink, double rate,
                                                           std::uint64_t seed)
    : n_(num_nodes), sink_(sink),
      rng_(util::mix64(seed ^ 0x7261666669636b5dull)) {
  TTDC_ASSERT(sink_ < n_, "LookaheadConvergecastTraffic: sink ", sink_, " outside [0, ", n_,
              ")");
  TTDC_ASSERT(rate >= 0.0 && rate < 1.0,
              "LookaheadConvergecastTraffic: per-node rate must be in [0, 1), got ", rate);
  const double sources = static_cast<double>(n_ > 0 ? n_ - 1 : 0);
  p_any_ = n_ <= 1 || rate <= 0.0 ? 0.0 : 1.0 - std::pow(1.0 - rate, sources);
  if (p_any_ > 0.0) {
    // First arrival: a gap sampled from slot -1, so slot 0 is reachable.
    next_slot_ = sample_gap() - 1;
    pending_origin_ = sample_origin();
  }
}

std::uint64_t LookaheadConvergecastTraffic::sample_gap() {
  // Geometric(p_any_) on {1, 2, ...} by inversion: exact for any p in (0, 1].
  if (p_any_ >= 1.0) return 1;
  const double u = rng_.uniform01();  // in [0, 1)
  const double gap = std::floor(std::log1p(-u) / std::log1p(-p_any_));
  // log1p(-u) <= 0 and log1p(-p) < 0, so gap >= 0; clamp defensively against
  // FP underflow before widening to the slot domain.
  return 1 + static_cast<std::uint64_t>(gap < 0.0 ? 0.0 : gap);
}

std::size_t LookaheadConvergecastTraffic::sample_origin() {
  std::size_t origin = static_cast<std::size_t>(rng_.below(n_ - 1));
  if (origin >= sink_) ++origin;  // exclude the sink as an origin
  return origin;
}

void LookaheadConvergecastTraffic::advance() {
  if (p_any_ <= 0.0) {
    next_slot_ = kNoEmission;
    return;
  }
  next_slot_ += sample_gap();
  pending_origin_ = sample_origin();
}

}  // namespace ttdc::sim
