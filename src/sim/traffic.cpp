#include "sim/traffic.hpp"

namespace ttdc::sim {

RoutingTable::RoutingTable(const net::Graph& graph) {
  const std::size_t n = graph.num_nodes();
  table_.reserve(n);
  for (std::size_t dst = 0; dst < n; ++dst) {
    // BFS tree rooted at dst: each node's parent is its next hop toward dst.
    auto parents = graph.bfs_parents(dst);
    parents[dst] = dst;
    table_.push_back(std::move(parents));
  }
}

}  // namespace ttdc::sim
