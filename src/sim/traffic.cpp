#include "sim/traffic.hpp"

// Traffic sources are header-only; routing moved to net/routing.cpp. This
// translation unit is kept so the build file list stays stable.
