#include "sim/simulator.hpp"

#include <cassert>

#include "obs/profile.hpp"

namespace ttdc::sim {

Simulator::Simulator(net::Graph graph, MacProtocol& mac, TrafficSource& traffic,
                     const SimConfig& config)
    : graph_(std::move(graph)), mac_(mac), traffic_(traffic), config_(config),
      rng_(config.seed), routing_(graph_),
      queues_(graph_.num_nodes(), PacketQueue(config.queue_capacity)),
      transmitting_(graph_.num_nodes()) {
  stats_.state_slots.assign(graph_.num_nodes(), {0, 0, 0, 0});
  stats_.delivered_by_origin.assign(graph_.num_nodes(), 0);
  stats_.wake_transitions.assign(graph_.num_nodes(), 0);
  was_asleep_.assign(graph_.num_nodes(), true);  // nodes boot asleep
  battery_.assign(graph_.num_nodes(), config_.battery_mj);
  dead_ = util::DynamicBitset(graph_.num_nodes());
  tracing_ = static_cast<bool>(config_.trace);
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    hot_.generated = &m.counter("ttdc_sim_generated_total", "packets generated");
    hot_.transmissions = &m.counter("ttdc_sim_transmissions_total", "transmission attempts");
    hot_.hop_successes = &m.counter("ttdc_sim_hop_successes_total", "per-hop receptions");
    hot_.delivered = &m.counter("ttdc_sim_delivered_total", "end-to-end deliveries");
    hot_.collisions = &m.counter("ttdc_sim_collisions_total", "collision losses");
    hot_.receiver_asleep =
        &m.counter("ttdc_sim_receiver_asleep_total", "losses to sleeping receivers");
    hot_.channel_losses = &m.counter("ttdc_sim_channel_losses_total", "channel-error losses");
    hot_.sync_losses = &m.counter("ttdc_sim_sync_losses_total", "sync-miss losses");
    hot_.queue_drops = &m.counter("ttdc_sim_queue_drops_total", "queue drops");
    hot_.latency = &m.histogram(
        "ttdc_sim_latency_slots",
        {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384},
        "end-to-end delivery latency in slots");
  }
}

void Simulator::set_graph(net::Graph graph) {
  assert(graph.num_nodes() == graph_.num_nodes());
  graph_ = std::move(graph);
  routing_ = RoutingTable(graph_);
  mac_.on_topology_change(graph_);
}

void Simulator::inject(std::size_t origin, std::size_t destination) {
  if (dead_.test(origin)) return;  // a dead sensor senses nothing
  ++stats_.generated;
  if (hot_.generated) hot_.generated->inc();
  Packet p;
  p.id = next_packet_id_++;
  p.origin = origin;
  p.destination = destination;
  p.created_slot = now_;
  trace(TraceEvent::Kind::kGenerated, origin, destination, p.id);
  if (!queues_[origin].push(p)) {
    ++stats_.queue_drops;
    if (hot_.queue_drops) hot_.queue_drops->inc();
    trace(TraceEvent::Kind::kQueueDrop, origin, origin, p.id);
  }
}

void Simulator::run(std::uint64_t slots) {
  for (std::uint64_t s = 0; s < slots; ++s) step();
}

void Simulator::step() {
  TTDC_PROF_SCOPE("sim.step");
  const std::size_t n = graph_.num_nodes();
  {
    TTDC_PROF_SCOPE("sim.step.traffic");
    traffic_.generate(now_, rng_, [&](std::size_t o, std::size_t d) { inject(o, d); });
    mac_.begin_slot(now_, rng_);
  }

  // Phase 1: collect transmission attempts.
  {
    TTDC_PROF_SCOPE("sim.step.collect");
    tx_nodes_.clear();
    tx_targets_.clear();
    transmitting_.reset_all();
    for (std::size_t v = 0; v < n; ++v) {
      if (dead_.test(v)) continue;
      auto& q = queues_[v];
      while (!q.empty()) {
        const std::size_t hop = routing_.next_hop(v, q.front().destination);
        if (hop == static_cast<std::size_t>(-1)) {
          if (config_.drop_unroutable) {
            ++stats_.queue_drops;
            if (hot_.queue_drops) hot_.queue_drops->inc();
            trace(TraceEvent::Kind::kQueueDrop, v, q.front().origin, q.front().id);
            q.pop();
            continue;  // look at the next packet
          }
          break;  // stall
        }
        if (mac_.wants_transmit(v, hop)) {
          tx_nodes_.push_back(v);
          tx_targets_.push_back(hop);
          transmitting_.set(v);
          trace(TraceEvent::Kind::kTransmit, v, hop, q.front().id);
        }
        break;
      }
    }
  }

  // Phase 2: resolve receptions under the collision-at-receiver model.
  {
    TTDC_PROF_SCOPE("sim.step.resolve");
    stats_.transmissions += tx_nodes_.size();
    if (hot_.transmissions) hot_.transmissions->inc(tx_nodes_.size());
    for (std::size_t i = 0; i < tx_nodes_.size(); ++i) {
      const std::size_t x = tx_nodes_[i];
      const std::size_t y = tx_targets_[i];
      if (dead_.test(y) || !mac_.can_receive(y) || transmitting_.test(y)) {
        ++stats_.receiver_asleep;
        if (hot_.receiver_asleep) hot_.receiver_asleep->inc();
        trace(TraceEvent::Kind::kReceiverAsleep, y, x, queues_[x].front().id);
        continue;
      }
      // Collision iff any other transmitter is in y's neighborhood.
      util::DynamicBitset interferers = graph_.neighbors(y) & transmitting_;
      interferers.reset(x);
      if (interferers.any()) {
        ++stats_.collisions;
        if (hot_.collisions) hot_.collisions->inc();
        trace(TraceEvent::Kind::kCollision, y, x, queues_[x].front().id);
        continue;
      }
      // Channel imperfections: slot misalignment, then fading/noise.
      if (config_.sync_miss_rate > 0.0 && rng_.bernoulli(config_.sync_miss_rate)) {
        ++stats_.sync_losses;
        if (hot_.sync_losses) hot_.sync_losses->inc();
        trace(TraceEvent::Kind::kSyncLoss, y, x, queues_[x].front().id);
        continue;
      }
      if (config_.packet_error_rate > 0.0 && rng_.bernoulli(config_.packet_error_rate)) {
        ++stats_.channel_losses;
        if (hot_.channel_losses) hot_.channel_losses->inc();
        trace(TraceEvent::Kind::kChannelLoss, y, x, queues_[x].front().id);
        continue;
      }
      // Success: dequeue at x, deliver or forward at y.
      Packet p = queues_[x].front();
      queues_[x].pop();
      ++stats_.hop_successes;
      if (hot_.hop_successes) hot_.hop_successes->inc();
      ++p.hops;
      if (p.destination == y) {
        ++stats_.delivered;
        ++stats_.delivered_by_origin[p.origin];
        stats_.latency.record(now_ - p.created_slot);
        if (hot_.delivered) {
          hot_.delivered->inc();
          hot_.latency->observe(static_cast<double>(now_ - p.created_slot));
        }
        trace(TraceEvent::Kind::kFinalDelivered, y, p.origin, p.id);
      } else {
        trace(TraceEvent::Kind::kHopDelivered, y, x, p.id);
        if (!queues_[y].push(p)) {
          ++stats_.queue_drops;
          if (hot_.queue_drops) hot_.queue_drops->inc();
          trace(TraceEvent::Kind::kQueueDrop, y, p.origin, p.id);
        }
      }
    }
  }

  // Phase 3: energy accounting (dead nodes draw nothing and stay dead).
  TTDC_PROF_SCOPE("sim.step.energy");
  for (std::size_t v = 0; v < n; ++v) {
    if (dead_.test(v)) continue;
    RadioState state;
    if (transmitting_.test(v)) {
      state = RadioState::kTransmit;
    } else if (mac_.can_receive(v)) {
      state = RadioState::kListen;  // eligible receiver: awake whether or
                                    // not a packet actually arrived
    } else {
      state = mac_.idle_state(v);
    }
    ++stats_.state_slots[v][static_cast<std::size_t>(state)];
    const bool asleep = state == RadioState::kSleep;
    const bool woke = was_asleep_[v] && !asleep;
    if (woke) ++stats_.wake_transitions[v];
    was_asleep_[v] = asleep;
    if (config_.battery_mj > 0.0) {
      battery_[v] -= config_.energy.energy_mj(state, 1);
      if (woke) battery_[v] -= config_.energy.wakeup_mj;
      if (battery_[v] <= 0.0) {
        dead_.set(v);
        battery_[v] = 0.0;
        ++stats_.deaths;
        stats_.first_death_slot = std::min(stats_.first_death_slot, now_);
      }
    }
  }

  ++now_;
  ++stats_.slots_run;
}

}  // namespace ttdc::sim
