#include "sim/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#include "net/domain_grid.hpp"
#include "obs/profile.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"

namespace ttdc::sim {

namespace {
constexpr std::size_t kNoHop = static_cast<std::size_t>(-1);
constexpr auto kTransmitIdx = static_cast<std::size_t>(RadioState::kTransmit);
constexpr auto kReceiveIdx = static_cast<std::size_t>(RadioState::kReceive);
constexpr auto kListenIdx = static_cast<std::size_t>(RadioState::kListen);
constexpr auto kSleepIdx = static_cast<std::size_t>(RadioState::kSleep);

// Phase-2 verdict codes (compute_reception_verdicts / resolve_receptions).
enum : std::uint8_t { kVerdictClear = 0, kVerdictAsleep = 1, kVerdictCollision = 2 };

// Work-queue granularity for the sharded verdict kernel: big enough that a
// chunk amortizes its fetch_add, small enough that uneven collision domains
// still balance across the team.
constexpr std::size_t kVerdictChunk = 64;
}  // namespace

Simulator::Simulator(net::Graph graph, MacProtocol& mac, TrafficSource& traffic,
                     const SimConfig& config)
    : graph_(std::move(graph)), mac_(mac), traffic_(traffic), config_(config),
      rng_(config.seed), routing_(graph_),
      queues_(graph_.num_nodes(), PacketQueue(config.queue_capacity)),
      transmitting_(graph_.num_nodes()), receivers_(graph_.num_nodes()),
      eligible_(graph_.num_nodes()), backlogged_(graph_.num_nodes()),
      unroutable_head_(graph_.num_nodes()),
      prev_awake_(graph_.num_nodes()),  // nodes boot asleep
      listen_(graph_.num_nodes()), awake_now_(graph_.num_nodes()),
      woke_(graph_.num_nodes()), scratch_(graph_.num_nodes()) {
  const std::size_t n = graph_.num_nodes();
  stats_.state_slots.assign(n, {0, 0, 0, 0});
  stats_.delivered_by_origin.assign(n, 0);
  stats_.wake_transitions.assign(n, 0);
  // Battery state is integer (nano-mJ units, see the header): converted
  // once here, drained in exact integer steps from then on.
  const auto to_units = [](double mj) {
    return static_cast<std::int64_t>(
        std::llround(mj * static_cast<double>(kBatteryUnitsPerMj)));
  };
  TTDC_ASSERT(config_.battery_mj >= 0.0 && config_.battery_mj < 9.0e9,
              "battery_mj ", config_.battery_mj, " outside the representable range");
  battery_.assign(n, to_units(config_.battery_mj));
  dead_ = util::SlotSet(n);
  death_slot_.assign(n, kNeverDied);
  hybrid_ = config_.hybrid_pipeline && !config_.force_scalar_pipeline;
  if (!hybrid_) {
    // Dense mode: every per-slot set frozen dense, so the pipeline's cost
    // profile (and its perf baselines) is exactly the pre-hybrid one.
    for (util::SlotSet* set :
         {&transmitting_, &receivers_, &eligible_, &backlogged_, &unroutable_head_,
          &prev_awake_, &listen_, &awake_now_, &woke_, &scratch_, &dead_}) {
      set->pin_dense();
    }
  } else {
    verdicts_.reserve(n);
    shard_order_.reserve(n);
    shard_keys_.reserve(n);
  }
  routing_view_ = config_.shared_routing != nullptr ? config_.shared_routing : &routing_;
  if (config_.shared_routing != nullptr) {
    TTDC_ASSERT(config_.shared_routing->cached_destinations() == n,
                "shared_routing must be fully built (build_all_columns) over a graph "
                "with the simulator's node count");
  }
  tx_nodes_.reserve(n);
  tx_targets_.reserve(n);
  b_transmit_ = to_units(config_.energy.energy_mj(RadioState::kTransmit, 1));
  b_receive_ = to_units(config_.energy.energy_mj(RadioState::kReceive, 1));
  b_listen_ = to_units(config_.energy.energy_mj(RadioState::kListen, 1));
  b_sleep_ = to_units(config_.energy.energy_mj(RadioState::kSleep, 1));
  b_wakeup_ = to_units(config_.energy.wakeup_mj);
  tracing_ = static_cast<bool>(config_.trace);
  fault_armed_ = config_.fault_plan != nullptr;
  if (fault_armed_) {
    TTDC_ASSERT(config_.fault_plan->num_nodes() == n,
                "fault plan built for ", config_.fault_plan->num_nodes(),
                " nodes, simulator has ", n);
    // The per-slot bitset recomputation only runs when the plan actually
    // schedules world events; an armed-but-empty plan costs one branch per
    // slot, which is what lets the <2% disarmed-overhead gate hold.
    fault_world_ = !config_.fault_plan->events().empty();
    fault_drift_ = config_.fault_plan->has_drift();
    fault_ge_ = config_.fault_plan->has_link_loss();
    down_ = util::SlotSet(n);
    jamming_ = util::SlotSet(n);
    jam_active_ = util::SlotSet(n);
    fault_out_ = util::SlotSet(n);
    if (!hybrid_) {
      for (util::SlotSet* set : {&down_, &jamming_, &jam_active_, &fault_out_}) {
        set->pin_dense();
      }
    }
    down_since_.assign(n, 0);
  }
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    hot_.generated = &m.counter("ttdc_sim_generated_total", "packets generated");
    hot_.transmissions = &m.counter("ttdc_sim_transmissions_total", "transmission attempts");
    hot_.hop_successes = &m.counter("ttdc_sim_hop_successes_total", "per-hop receptions");
    hot_.delivered = &m.counter("ttdc_sim_delivered_total", "end-to-end deliveries");
    hot_.collisions = &m.counter("ttdc_sim_collisions_total", "collision losses");
    hot_.receiver_asleep =
        &m.counter("ttdc_sim_receiver_asleep_total", "losses to sleeping receivers");
    hot_.channel_losses = &m.counter("ttdc_sim_channel_losses_total", "channel-error losses");
    hot_.sync_losses = &m.counter("ttdc_sim_sync_losses_total", "sync-miss losses");
    hot_.queue_drops = &m.counter("ttdc_sim_queue_drops_total", "queue drops");
    hot_.latency = &m.histogram(
        "ttdc_sim_latency_slots",
        {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384},
        "end-to-end delivery latency in slots");
    if (fault_armed_) {
      hot_.fault_crashes = &m.counter("ttdc_sim_fault_crashes_total", "injected node crashes");
      hot_.fault_recoveries =
          &m.counter("ttdc_sim_fault_recoveries_total", "injected node recoveries");
      hot_.fault_battery_spikes =
          &m.counter("ttdc_sim_fault_battery_spikes_total", "injected battery spikes");
      hot_.fault_jam_bursts =
          &m.counter("ttdc_sim_fault_jam_bursts_total", "injected jam bursts");
      hot_.burst_losses =
          &m.counter("ttdc_sim_burst_losses_total", "losses to bursty (Gilbert-Elliott) links");
      hot_.drift_losses =
          &m.counter("ttdc_sim_drift_losses_total", "losses to clock drift");
    }
  }
  // Fast-forward arming (see the SimConfig knob). Beyond the explicit
  // opt-in, every per-slot randomness source must be absent: the scalar
  // pipeline and channel imperfections draw from rng_ on paths a replay
  // would skip, a tracing hook expects per-slot events, and an opaque
  // traffic source cannot prove a frame silent. Randomized MACs disarm
  // dynamically instead — fast_forward_period() == 0 keeps run() stepping.
  if (config_.fast_forward && !config_.force_scalar_pipeline && !tracing_ &&
      config_.packet_error_rate == 0.0 && config_.sync_miss_rate == 0.0 &&
      traffic_.supports_lookahead()) {
    ff_ = std::make_unique<FastForwardState>();
    if (config_.metrics != nullptr) {
      obs::MetricsRegistry& m = *config_.metrics;
      ff_->m_frames_replayed =
          &m.counter("ttdc_sim_ff_frames_replayed_total", "frames applied from the memo");
      ff_->m_slots_replayed =
          &m.counter("ttdc_sim_ff_slots_replayed_total", "slots covered by replayed frames");
      ff_->m_frames_recorded =
          &m.counter("ttdc_sim_ff_frames_recorded_total", "frames stepped and memoized");
      ff_->m_fallback_arrival = &m.counter("ttdc_sim_ff_fallback_arrival_total",
                                           "fast-forward vetoes: arrival inside the frame");
      ff_->m_fallback_fault_event =
          &m.counter("ttdc_sim_ff_fallback_fault_event_total",
                     "fast-forward vetoes: fault event inside the frame");
      ff_->m_fallback_battery =
          &m.counter("ttdc_sim_ff_fallback_battery_total",
                     "fast-forward vetoes: battery death crossing inside the window");
      ff_->m_fallback_recorder = &m.counter("ttdc_sim_ff_fallback_recorder_total",
                                            "fast-forward vetoes: armed flight recorder");
      ff_->m_fallback_verify = &m.counter("ttdc_sim_ff_fallback_verify_total",
                                          "fast-forward vetoes: pre-state verify mismatch");
    }
  }
}

void Simulator::set_graph(net::Graph graph) {
  TTDC_ASSERT(graph.num_nodes() == graph_.num_nodes(),
              "set_graph cannot change the node count: ", graph.num_nodes(), " vs ",
              graph_.num_nodes());
  graph_ = std::move(graph);
  routing_.set_graph(graph_);
  // A shared table describes the old topology; fall back to the internal
  // (lazily rebuilt) one from here on.
  routing_view_ = &routing_;
  // Head routability is a function of the routes; recheck every backlogged
  // head against the new topology.
  backlogged_.for_each([&](std::size_t v) { refresh_head_routability(v); });
  mac_.on_topology_change(graph_);
  if (ff_ != nullptr) {
    // Every memoized frame was recorded against the old adjacency; the
    // epoch bump keeps even an identically-hashed world from matching.
    ++ff_->graph_epoch;
    ff_->memo.clear();
    ++ff_->stats.graph_invalidations;
  }
}

void Simulator::audit_invariants() const {
#if TTDC_ENABLE_CHECKS
  const std::size_t n = graph_.num_nodes();

  // Queues and their incremental mirrors. backlogged_ and unroutable_head_
  // are maintained by queue_push/queue_pop/refresh_head_routability; here
  // they are recomputed from scratch and compared.
  for (std::size_t v = 0; v < n; ++v) {
    queues_[v].audit_invariants();
    TTDC_DCHECK(backlogged_.test(v) == !queues_[v].empty(),
                "backlogged_ bit for node ", v, " disagrees with queue size ",
                queues_[v].size());
    if (queues_[v].empty()) {
      TTDC_DCHECK(!unroutable_head_.test(v),
                  "unroutable_head_ set for node ", v, " with an empty queue");
    } else {
      const std::size_t hop = routing_view_->next_hop(v, queues_[v].front().destination);
      TTDC_DCHECK(unroutable_head_.test(v) == (hop == kNoHop),
                  "unroutable_head_ bit for node ", v,
                  " disagrees with routing (next hop ", hop, ")");
    }
  }

  // Battery / death bookkeeping. kill_node() is the only writer of dead_,
  // death_slot_ and the zeroed battery, so these must agree exactly.
  for (std::size_t v = 0; v < n; ++v) {
    TTDC_DCHECK(dead_.test(v) == (death_slot_[v] != kNeverDied),
                "dead_ bit for node ", v, " disagrees with death_slot_ ", death_slot_[v]);
    if (config_.battery_mj > 0.0) {
      if (dead_.test(v)) {
        TTDC_DCHECK(battery_[v] == 0, "dead node ", v, " holds ", battery_[v], " units");
      } else {
        TTDC_DCHECK(battery_[v] > 0, "alive node ", v, " at ", battery_[v], " units");
      }
    }
  }
  TTDC_DCHECK(!transmitting_.intersects(dead_), "a dead node is in the transmitter set");

  // Fault-injection state: crashed nodes never transmit (events apply at
  // slot start, so unlike battery deaths this cannot race phase 3), jammers
  // active this slot are a subset of the in-burst set, and the phase-1 skip
  // set is exactly down | jam_active.
  if (fault_armed_) {
    TTDC_DCHECK(!transmitting_.intersects(down_),
                "a crashed node is in the transmitter set");
    for (std::size_t v = 0; v < n; ++v) {
      if (jam_active_.test(v)) {
        TTDC_DCHECK(jamming_.test(v), "jam_active_ node ", v, " is not in a jam burst");
      }
      TTDC_DCHECK(fault_out_.test(v) == (down_.test(v) || jam_active_.test(v)),
                  "fault_out_ bit for node ", v, " disagrees with down_/jam_active_");
    }
    TTDC_DCHECK(fault_cursor_ <= config_.fault_plan->events().size(),
                "fault cursor ran past the plan");
  }

  // State-slot counters: a node accrues transmit/receive/listen slots only
  // while participating (finalize_sleep_counts() derives sleep from this
  // identity, so underflow here would wrap the sleep counter).
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint64_t passes =
        death_slot_[v] == kNeverDied ? stats_.slots_run : death_slot_[v] + 1;
    const auto& s = stats_.state_slots[v];
    TTDC_DCHECK(s[kTransmitIdx] + s[kReceiveIdx] + s[kListenIdx] <= passes,
                "node ", v, " active-state slots ",
                s[kTransmitIdx] + s[kReceiveIdx] + s[kListenIdx],
                " exceed its ", passes, " participated slots");
  }

  // MAC batched-vs-scalar cross-check (the fill_slot_sets() contract in
  // mac.hpp). Local sets: the audit must not clobber the per-slot scratch.
  util::SlotSet recv(n);
  util::SlotSet elig(n);
  if (mac_.fill_slot_sets(recv, elig)) {
    TTDC_DCHECK(recv.size() == n && elig.size() == n,
                "fill_slot_sets resized its bitsets: ", recv.size(), " / ", elig.size());
    const bool gates = mac_.sender_gates_on_receiver();
    for (std::size_t v = 0; v < n; ++v) {
      TTDC_DCHECK(recv.test(v) == mac_.can_receive(v),
                  "MAC receiver set disagrees with can_receive at node ", v);
      // The sleep promise phase 3 depends on: not transmitting, not
      // receiving => asleep.
      if (!recv.test(v) && !elig.test(v)) {
        TTDC_DCHECK(mac_.idle_state(v) == RadioState::kSleep,
                    "MAC broke the sleep contract: node ", v,
                    " is in neither slot set but idle_state != kSleep");
      }
      // Transmit decisions: replay the batched phase-1 predicate against
      // the scalar answer for every backlogged node with a routable head.
      if (!dead_.test(v) && !queues_[v].empty()) {
        const std::size_t hop = routing_view_->next_hop(v, queues_[v].front().destination);
        if (hop != kNoHop) {
          const bool batched_tx = elig.test(v) && (!gates || recv.test(hop));
          TTDC_DCHECK(mac_.wants_transmit(v, hop) == batched_tx,
                      "MAC transmit sets disagree with wants_transmit: node ", v,
                      " -> ", hop, " (batched says ", batched_tx, ")");
        }
      }
    }
  }
#endif
}

void Simulator::inject(std::size_t origin, std::size_t destination) {
  if (dead_.test(origin)) return;  // a dead sensor senses nothing
  if (fault_world_ && down_.test(origin)) return;  // neither does a crashed one
  ++stats_.generated;
  if (hot_.generated) hot_.generated->inc();
  Packet p;
  p.id = next_packet_id_++;
  p.origin = origin;
  p.destination = destination;
  p.created_slot = now_;
  trace(TraceEvent::Kind::kGenerated, origin, destination, p.id);
  if (recording_) record_flight(obs::FlightEvent::Kind::kCreated, origin, destination, p.id);
  if (!queue_push(origin, p)) {
    ++stats_.queue_drops;
    if (hot_.queue_drops) hot_.queue_drops->inc();
    trace(TraceEvent::Kind::kQueueDrop, origin, origin, p.id);
    if (recording_) record_flight(obs::FlightEvent::Kind::kDropped, origin, origin, p.id);
  }
}

void Simulator::run(std::uint64_t slots) {
  TTDC_DCHECK(now_ + slots >= now_, "slot counter would wrap: now ", now_, " + ", slots);
  const std::uint64_t end = now_ + slots;
  if (ff_ == nullptr) {
    while (now_ < end) step();
    return;
  }
  // Fast-forward loop: at every frame boundary with a whole frame left in
  // the run, offer the frame to the engine; everywhere else (the stretch to
  // the next boundary after a fallback, ragged tail, period-0 MAC) step
  // slot-accurately in a loop as tight as the disarmed one — the boundary
  // probe must stay off the per-slot path or an armed-but-always-vetoed
  // engine taxes every slot (the disarmed_overhead gate in
  // bench_fastforward). The period is re-queried each boundary because it
  // may change under a recoloring MAC.
  while (now_ < end) {
    const std::uint64_t period = mac_.fast_forward_period();
    if (period != 0 && now_ % period == 0 && end - now_ >= period &&
        try_fast_forward(period, end)) {
      continue;
    }
    std::uint64_t next = end;
    if (period != 0) {
      next = std::min(end, now_ + period - now_ % period);
    }
    while (now_ < next) step();
  }
}

void Simulator::step() {
  TTDC_PROF_SCOPE("sim.step");
  // The whole flight-recorder cost when disarmed: a null check and (with a
  // recorder installed) one relaxed load, sampled once per slot.
  recording_ = config_.recorder != nullptr && obs::FlightRecorder::enabled();
  // World faults land before traffic and the MAC see the slot, so a node
  // that crashes at slot t is already gone when slot t's packets arrive.
  if (fault_world_) apply_fault_events();
  {
    TTDC_PROF_SCOPE("sim.step.traffic");
    traffic_.generate(now_, rng_, [&](std::size_t o, std::size_t d) { inject(o, d); });
    mac_.begin_slot(now_, rng_);
  }

  if (config_.force_scalar_pipeline) {
    collect_transmissions_scalar();
    // Jammers join the transmitter set AFTER collection (they carry no
    // packet, so they never enter tx_nodes_) and BEFORE resolution, where
    // they collide with any reception in their neighborhood — identically
    // on both pipelines.
    if (fault_world_) transmitting_ |= jam_active_;
    resolve_receptions(/*batched=*/false);
    account_energy_scalar(/*receivers=*/nullptr);
  } else {
    // One virtual call per slot replaces the O(n) per-node queries: the MAC
    // publishes its slot as two bitsets (or falls back to scalar queries
    // for phases 1 and 3 while phase 2 stays word-parallel).
    const bool mac_batched = mac_.fill_slot_sets(receivers_, eligible_);
    collect_transmissions_batched(mac_batched);
    if (fault_world_) transmitting_ |= jam_active_;
    if (hybrid_ && config_.shard_workers > 1) compute_reception_verdicts();
    resolve_receptions(/*batched=*/true);
    if (mac_batched) {
      account_energy_batched();
    } else {
      account_energy_scalar(&receivers_);
    }
  }

  ++now_;
  ++stats_.slots_run;
}

// Phase 1 (legacy): walk every node, querying the MAC per node.
void Simulator::collect_transmissions_scalar() {
  TTDC_PROF_SCOPE("sim.step.collect");
  const std::size_t n = graph_.num_nodes();
  tx_nodes_.clear();
  tx_targets_.clear();
  transmitting_.reset_all();
  for (std::size_t v = 0; v < n; ++v) {
    if (dead_.test(v)) continue;
    if (fault_world_ && fault_out_.test(v)) continue;  // down or jamming
    auto& q = queues_[v];
    while (!q.empty()) {
      const std::size_t hop = routing_view_->next_hop(v, q.front().destination);
      if (hop == kNoHop) {
        if (config_.drop_unroutable) {
          ++stats_.queue_drops;
          if (hot_.queue_drops) hot_.queue_drops->inc();
          trace(TraceEvent::Kind::kQueueDrop, v, q.front().origin, q.front().id);
          if (recording_) {
            record_flight(obs::FlightEvent::Kind::kExpired, v, q.front().origin,
                          q.front().id);
          }
          queue_pop(v);
          continue;  // look at the next packet
        }
        break;  // stall
      }
      if (mac_.wants_transmit(v, hop)) {
        tx_nodes_.push_back(v);
        tx_targets_.push_back(hop);
        transmitting_.set(v);
        trace(TraceEvent::Kind::kTransmit, v, hop, q.front().id);
        if (recording_) {
          record_flight(obs::FlightEvent::Kind::kTxAttempt, v, hop, q.front().id);
        }
      }
      break;
    }
  }
}

// Phase 1 (batched): word-parallel selection of the nodes that can matter
// this slot. With a batched MAC only an eligible transmitter can send and
// only an unroutable queue head can be dropped, so the visit set shrinks
// from every backlogged node to backlogged ∩ (eligible ∪ unroutable-head) —
// under a duty-cycled schedule that is a duty-cycle fraction of n. The
// transmit decision is two bit tests instead of a virtual call.
void Simulator::collect_transmissions_batched(bool mac_batched) {
  TTDC_PROF_SCOPE("sim.step.collect");
  tx_nodes_.clear();
  tx_targets_.clear();
  transmitting_.reset_all();
  const bool gates = mac_batched && mac_.sender_gates_on_receiver();
  // When no queue head is unroutable (the steady state of a connected
  // deployment) the visit set below is a subset of eligible_, so the
  // per-visit eligibility test is a constant `true`; hoisting it saves a
  // sparse-membership search per visited node on the hybrid pipeline. The
  // emptiness check is taken before the loop — no pop below can create an
  // unroutable head, because pops only happen when one already exists.
  const bool all_eligible = mac_batched && unroutable_head_.none();
  if (mac_batched) {
    scratch_.copy_from(eligible_);
    scratch_ |= unroutable_head_;
    scratch_ &= backlogged_;
  } else {
    // Scalar-only MAC: wants_transmit() may be true for any node, so every
    // backlogged node must be offered the slot.
    scratch_.copy_from(backlogged_);
  }
  scratch_.subtract(dead_);
  if (fault_world_) scratch_.subtract(fault_out_);  // down or jamming
  scratch_.for_each([&](std::size_t v) {
    auto& q = queues_[v];
    while (!q.empty()) {
      const std::size_t hop = routing_view_->next_hop(v, q.front().destination);
      if (hop == kNoHop) {
        if (config_.drop_unroutable) {
          ++stats_.queue_drops;
          if (hot_.queue_drops) hot_.queue_drops->inc();
          trace(TraceEvent::Kind::kQueueDrop, v, q.front().origin, q.front().id);
          if (recording_) {
            record_flight(obs::FlightEvent::Kind::kExpired, v, q.front().origin,
                          q.front().id);
          }
          queue_pop(v);
          continue;  // look at the next packet
        }
        break;  // stall
      }
      const bool tx = mac_batched
                          ? ((all_eligible || eligible_.test(v)) &&
                             (!gates || receivers_.test(hop)))
                          : mac_.wants_transmit(v, hop);
      if (tx) {
        tx_nodes_.push_back(v);
        tx_targets_.push_back(hop);
        transmitting_.set(v);
        trace(TraceEvent::Kind::kTransmit, v, hop, q.front().id);
        if (recording_) {
          record_flight(obs::FlightEvent::Kind::kTxAttempt, v, hop, q.front().id);
        }
      }
      break;
    }
  });
}

// Sharded phase-2 precompute (DESIGN.md §13): every pending transmission's
// verdict — receiver asleep, collided, or clear — is a pure function of the
// slot's frozen sets (dead_/down_/receivers_/transmitting_/graph_; nothing
// phase 2 mutates), so the verdicts compute in parallel and the stateful
// fold in resolve_receptions() — queue mutations, stats, channel-noise rng
// draws — replays them serially in transmitter-index order. That makes the
// result bit-identical at ANY worker count, the same determinism discipline
// as the campaign barrier. Work is grouped by the receiver's collision
// domain when SimConfig::domains is set, so a worker's chunk touches one
// spatial region of the adjacency structure.
void Simulator::compute_reception_verdicts() {
  TTDC_PROF_SCOPE("sim.step.verdicts");
  const std::size_t m = tx_nodes_.size();
  verdicts_.resize(m);
  use_verdicts_ = m > 0;
  const auto verdict_of = [&](std::size_t i) -> std::uint8_t {
    const std::size_t y = tx_targets_[i];
    if (dead_.test(y) || (fault_world_ && down_.test(y)) || !receivers_.test(y) ||
        transmitting_.test(y)) {
      return kVerdictAsleep;
    }
    // x is a transmitting neighbor of y, so collision iff the transmitting-
    // neighbor count exceeds one (see resolve_receptions).
    return graph_.neighbors(y).intersection_count(transmitting_) > 1 ? kVerdictCollision
                                                                     : kVerdictClear;
  };
  const int workers = config_.shard_workers;
  if (workers <= 1 || m < config_.shard_min_items || util::in_parallel_region()) {
    for (std::size_t i = 0; i < m; ++i) verdicts_[i] = verdict_of(i);
    return;
  }
  shard_order_.resize(m);
  for (std::size_t i = 0; i < m; ++i) shard_order_[i] = static_cast<std::uint32_t>(i);
  if (config_.domains != nullptr) {
    shard_keys_.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      shard_keys_[i] = config_.domains->cell_of(tx_targets_[i]);
    }
    // (cell, index) order: domain-grouped, deterministic, and within a cell
    // still index-ordered so chunks stream the tx arrays forward.
    std::sort(shard_order_.begin(), shard_order_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (shard_keys_[a] != shard_keys_[b]) return shard_keys_[a] < shard_keys_[b];
                return a < b;
              });
  }
  std::atomic<std::size_t> next{0};
  util::parallel_workers(workers, [&](int) {
    // Shared-queue pull: the runtime may grant fewer threads than asked, so
    // every worker drains chunks until the queue is empty.
    for (;;) {
      const std::size_t begin = next.fetch_add(kVerdictChunk, std::memory_order_relaxed);
      if (begin >= m) return;
      const std::size_t end = std::min(begin + kVerdictChunk, m);
      for (std::size_t j = begin; j < end; ++j) {
        const std::size_t i = shard_order_[j];
        verdicts_[i] = verdict_of(i);
      }
    }
  });
}

// Phase 2: resolve receptions under the collision-at-receiver model.
void Simulator::resolve_receptions(bool batched) {
  TTDC_PROF_SCOPE("sim.step.resolve");
  stats_.transmissions += tx_nodes_.size();
  if (hot_.transmissions) hot_.transmissions->inc(tx_nodes_.size());
  const std::uint8_t* verdicts = use_verdicts_ ? verdicts_.data() : nullptr;
  use_verdicts_ = false;
  for (std::size_t i = 0; i < tx_nodes_.size(); ++i) {
    const std::size_t x = tx_nodes_[i];
    const std::size_t y = tx_targets_[i];
    bool asleep;
    if (verdicts != nullptr) {
      asleep = verdicts[i] == kVerdictAsleep;
    } else {
      const bool receiver_ok = batched ? receivers_.test(y) : mac_.can_receive(y);
      asleep = dead_.test(y) || (fault_world_ && down_.test(y)) || !receiver_ok ||
               transmitting_.test(y);
    }
    if (asleep) {
      ++stats_.receiver_asleep;
      if (hot_.receiver_asleep) hot_.receiver_asleep->inc();
      trace(TraceEvent::Kind::kReceiverAsleep, y, x, queues_[x].front().id);
      if (recording_) {
        record_flight(obs::FlightEvent::Kind::kReceiverAsleep, y, x, queues_[x].front().id);
      }
      continue;
    }
    // Collision iff any other transmitter is in y's neighborhood. x is a
    // transmitting neighbor of y (next hops are neighbors), so counting
    // transmitting neighbors word-parallel — no materialized intersection,
    // no allocation — gives: collision iff the count exceeds one.
    bool collision;
    if (verdicts != nullptr) {
      collision = verdicts[i] == kVerdictCollision;
    } else if (batched) {
      collision = graph_.neighbors(y).intersection_count(transmitting_) > 1;
    } else {
      // Legacy formulation, kept as the differential reference (and kept
      // allocating: the zero-allocation test pins the batched pipeline by
      // differencing against this one).
      util::DynamicBitset interferers = graph_.neighbors(y).to_dense_bitset();
      interferers &= transmitting_.as_dense();
      interferers.reset(x);
      collision = interferers.any();
    }
    if (collision) {
      ++stats_.collisions;
      if (hot_.collisions) hot_.collisions->inc();
      trace(TraceEvent::Kind::kCollision, y, x, queues_[x].front().id);
      if (recording_) record_collision(y, x, queues_[x].front().id);
      continue;
    }
    // Injected channel faults, both drawing from plan-derived streams (or
    // no stream at all) — never from rng_, so arming an empty plan leaves
    // the run bit-identical to an unarmed one.
    if (fault_armed_) {
      if (fault_drift_ && drift_lost(x, y)) {
        ++stats_.drift_losses;
        if (hot_.drift_losses) hot_.drift_losses->inc();
        if (recording_) {
          record_flight(obs::FlightEvent::Kind::kDriftLoss, y, x, queues_[x].front().id);
        }
        continue;
      }
      if (fault_ge_ && ge_lost(x, y)) {
        ++stats_.burst_losses;
        if (hot_.burst_losses) hot_.burst_losses->inc();
        if (recording_) {
          record_flight(obs::FlightEvent::Kind::kBurstLoss, y, x, queues_[x].front().id);
        }
        continue;
      }
    }
    // Channel imperfections: slot misalignment, then fading/noise.
    if (config_.sync_miss_rate > 0.0 && rng_.bernoulli(config_.sync_miss_rate)) {
      ++stats_.sync_losses;
      if (hot_.sync_losses) hot_.sync_losses->inc();
      trace(TraceEvent::Kind::kSyncLoss, y, x, queues_[x].front().id);
      if (recording_) {
        record_flight(obs::FlightEvent::Kind::kSyncLoss, y, x, queues_[x].front().id);
      }
      continue;
    }
    if (config_.packet_error_rate > 0.0 && rng_.bernoulli(config_.packet_error_rate)) {
      ++stats_.channel_losses;
      if (hot_.channel_losses) hot_.channel_losses->inc();
      trace(TraceEvent::Kind::kChannelLoss, y, x, queues_[x].front().id);
      if (recording_) {
        record_flight(obs::FlightEvent::Kind::kChannelLoss, y, x, queues_[x].front().id);
      }
      continue;
    }
    // Success: dequeue at x, deliver or forward at y.
    Packet p = queues_[x].front();
    queue_pop(x);
    ++stats_.hop_successes;
    if (hot_.hop_successes) hot_.hop_successes->inc();
    ++p.hops;
    if (p.destination == y) {
      ++stats_.delivered;
      ++stats_.delivered_by_origin[p.origin];
      stats_.latency.record(now_ - p.created_slot);
      if (hot_.delivered) {
        hot_.delivered->inc();
        hot_.latency->observe(static_cast<double>(now_ - p.created_slot));
      }
      trace(TraceEvent::Kind::kFinalDelivered, y, p.origin, p.id);
      if (recording_) {
        record_flight(obs::FlightEvent::Kind::kDelivered, y, p.origin, p.id,
                      static_cast<std::uint32_t>(now_ - p.created_slot));
      }
    } else {
      trace(TraceEvent::Kind::kHopDelivered, y, x, p.id);
      if (recording_) record_flight(obs::FlightEvent::Kind::kHopDelivered, y, x, p.id);
      if (!queue_push(y, p)) {
        ++stats_.queue_drops;
        if (hot_.queue_drops) hot_.queue_drops->inc();
        trace(TraceEvent::Kind::kQueueDrop, y, p.origin, p.id);
        if (recording_) record_flight(obs::FlightEvent::Kind::kDropped, y, p.origin, p.id);
      }
    }
  }
}

void Simulator::record_head_of_line(std::size_t node) {
  const Packet& head = queues_[node].front();
  const std::size_t hop = routing_view_->next_hop(node, head.destination);
  record_flight(obs::FlightEvent::Kind::kHeadOfLine, node,
                hop == kNoHop ? obs::FlightEvent::kNoNode
                              : static_cast<std::uint32_t>(hop),
                head.id, static_cast<std::uint32_t>(queues_[node].size()));
}

void Simulator::record_collision(std::size_t y, std::size_t x, std::uint64_t packet_id) {
  obs::FlightEvent e;
  e.slot = now_;
  e.packet_id = packet_id;
  e.node = static_cast<std::uint32_t>(y);
  e.peer = static_cast<std::uint32_t>(x);
  e.kind = obs::FlightEvent::Kind::kCollided;
  // The interferer set is exactly the phase-2 intersection neighbors(y) AND
  // transmitting_, minus the tracked transmitter x — recovered here without
  // materializing a set, on the recording path only (the collision verdict
  // itself never pays for this).
  std::size_t count = 0;
  graph_.neighbors(y).for_each_intersection(transmitting_, [&](std::size_t v) {
    if (v == x) return;
    if (count < obs::FlightEvent::kMaxInterferers) {
      e.interferers[count] = static_cast<std::uint32_t>(v);
    }
    ++count;
  });
  e.interferer_count = static_cast<std::uint8_t>(
      count > 255 ? 255 : count);
  config_.recorder->record(e);
}

void Simulator::kill_node(std::size_t v) {
  dead_.set(v);
  battery_[v] = 0;
  death_slot_[v] = now_;
  ++stats_.deaths;
  stats_.first_death_slot = std::min(stats_.first_death_slot, now_);
}

void Simulator::apply_fault_events() {
  const auto& events = config_.fault_plan->events();
  while (fault_cursor_ < events.size() && events[fault_cursor_].slot <= now_) {
    apply_fault_event(events[fault_cursor_]);
    ++fault_cursor_;
  }
  // Per-slot derived sets: jammers emit only while powered and not crashed;
  // phase 1 skips down and jamming nodes alike.
  jam_active_.copy_from(jamming_);
  jam_active_.subtract(dead_);
  jam_active_.subtract(down_);
  fault_out_.copy_from(down_);
  fault_out_ |= jam_active_;
}

void Simulator::apply_fault_event(const FaultEvent& e) {
  const std::size_t v = e.node;
  const auto flight = [&](obs::FlightEvent::Kind kind, std::uint32_t aux) {
    if (recording_) {
      record_flight(kind, v, obs::FlightEvent::kNoNode, obs::FlightEvent::kNoPacket, aux);
    }
  };
  switch (e.kind) {
    case FaultEvent::Kind::kCrash:
      if (dead_.test(v) || down_.test(v)) return;  // already gone
      down_.set(v);
      down_since_[v] = now_;
      ++stats_.fault_crashes;
      if (hot_.fault_crashes) hot_.fault_crashes->inc();
      flight(obs::FlightEvent::Kind::kFaultCrash, 0);
      return;
    case FaultEvent::Kind::kRecover:
      if (!down_.test(v)) return;  // never crashed, or battery-dead for good
      down_.reset(v);
      ++stats_.fault_recoveries;
      if (hot_.fault_recoveries) hot_.fault_recoveries->inc();
      flight(obs::FlightEvent::Kind::kFaultRecover,
             static_cast<std::uint32_t>(now_ - down_since_[v]));
      return;
    case FaultEvent::Kind::kBatterySpike:
      if (dead_.test(v)) return;
      ++stats_.fault_battery_spikes;
      if (hot_.fault_battery_spikes) hot_.fault_battery_spikes->inc();
      flight(obs::FlightEvent::Kind::kFaultBatterySpike,
             static_cast<std::uint32_t>(e.magnitude_mj));
      if (config_.battery_mj > 0.0) {
        battery_[v] -= static_cast<std::int64_t>(
            std::llround(e.magnitude_mj * static_cast<double>(kBatteryUnitsPerMj)));
        if (battery_[v] <= 0) kill_node(v);
      }
      return;
    case FaultEvent::Kind::kJamStart:
      if (jamming_.test(v)) return;
      jamming_.set(v);
      ++stats_.fault_jam_bursts;
      if (hot_.fault_jam_bursts) hot_.fault_jam_bursts->inc();
      flight(obs::FlightEvent::Kind::kFaultJamStart, 0);
      return;
    case FaultEvent::Kind::kJamEnd:
      if (!jamming_.test(v)) return;
      jamming_.reset(v);
      flight(obs::FlightEvent::Kind::kFaultJamEnd, 0);
      return;
  }
}

bool Simulator::drift_lost(std::size_t x, std::size_t y) const {
  const FaultPlanConfig& fc = config_.fault_plan->config();
  const std::vector<double>& rates = config_.fault_plan->drift_rates();
  // Relative misalignment grows linearly since the last resync epoch (or
  // since boot when resync is disabled) — the sawtooth degradation pattern.
  const double phase = fc.resync_interval > 0
                           ? static_cast<double>(now_ % fc.resync_interval)
                           : static_cast<double>(now_);
  return std::abs((rates[x] - rates[y]) * phase) > fc.drift_guard;
}

bool Simulator::ge_lost(std::size_t x, std::size_t y) {
  const GilbertElliott& ge = config_.fault_plan->config().link_loss;
  const std::uint64_t key =
      static_cast<std::uint64_t>(x) * graph_.num_nodes() + static_cast<std::uint64_t>(y);
  const auto [it, inserted] = ge_links_.try_emplace(key);
  GeLink& link = it->second;
  double p_bad;
  if (inserted) {
    // First use: private stream from the plan's link seed; the chain starts
    // in its stationary distribution.
    link.rng = util::Xoshiro256(util::mix64(config_.fault_plan->link_stream_seed() ^ key));
    p_bad = ge.stationary_bad();
  } else {
    // Lazy evolution: collapse the k idle slots since last use with the
    // closed-form k-step transition
    //   P(bad at t+k) = pi + (bad_t - pi) * (1 - a - b)^k,  pi = a / (a + b),
    // so the chain costs one pow per *use*, not one draw per slot.
    const auto k = static_cast<double>(now_ - link.last_slot);
    const double pi = ge.stationary_bad();
    const double decay = std::pow(1.0 - ge.p_good_to_bad - ge.p_bad_to_good, k);
    p_bad = pi + ((link.bad ? 1.0 : 0.0) - pi) * decay;
  }
  link.bad = link.rng.uniform01() < p_bad;
  link.last_slot = now_;
  const double loss = link.bad ? ge.loss_bad : ge.loss_good;
  return loss > 0.0 && link.rng.uniform01() < loss;
}

// Phase 3 (scalar): per-node energy accounting (dead nodes draw nothing and
// stay dead). Runs for the legacy pipeline (receivers == nullptr, virtual
// can_receive per node) and for batched runs of scalar-only MACs
// (receivers == &receivers_, idle_state still queried per idle node).
void Simulator::account_energy_scalar(const util::SlotSet* receivers) {
  TTDC_PROF_SCOPE("sim.step.energy");
  const std::size_t n = graph_.num_nodes();
  for (std::size_t v = 0; v < n; ++v) {
    if (dead_.test(v)) continue;
    RadioState state;
    if (fault_world_ && down_.test(v)) {
      state = RadioState::kSleep;  // a crashed radio is off (sleep-rate drain)
    } else if (transmitting_.test(v)) {
      state = RadioState::kTransmit;
    } else if (receivers != nullptr ? receivers->test(v) : mac_.can_receive(v)) {
      state = RadioState::kListen;  // eligible receiver: awake whether or
                                    // not a packet actually arrived
    } else {
      state = mac_.idle_state(v);
    }
    ++stats_.state_slots[v][static_cast<std::size_t>(state)];
    const bool asleep = state == RadioState::kSleep;
    const bool woke = !prev_awake_.test(v) && !asleep;
    if (woke) ++stats_.wake_transitions[v];
    if (asleep) {
      prev_awake_.reset(v);
    } else {
      prev_awake_.set(v);
    }
    if (config_.battery_mj > 0.0) {
      std::int64_t cost;
      switch (state) {
        case RadioState::kTransmit: cost = b_transmit_; break;
        case RadioState::kReceive: cost = b_receive_; break;
        case RadioState::kListen: cost = b_listen_; break;
        default: cost = b_sleep_; break;
      }
      battery_[v] -= cost;
      if (woke) battery_[v] -= b_wakeup_;
      if (battery_[v] <= 0) kill_node(v);
    }
  }
}

// Phase 3 (batched): the slot's radio states as set algebra. Relies on the
// fill_slot_sets() contract — a node that neither transmits nor receives
// sleeps — so no virtual call is made at all. Sleep-slot counters are NOT
// incremented here (they are derived in finalize_sleep_counts()), making
// the common sleepy-network slot cost O(awake nodes), not O(n).
void Simulator::account_energy_batched() {
  TTDC_PROF_SCOPE("sim.step.energy");
  // listen = (receivers \ transmitters) \ dead; transmitters exclude the
  // dead already (phase 1 never visits them).
  listen_.copy_from(receivers_);
  listen_.subtract(transmitting_);
  listen_.subtract(dead_);
  if (fault_world_) listen_.subtract(down_);  // crashed radios are off
  awake_now_.copy_from(listen_);
  awake_now_ |= transmitting_;
  transmitting_.for_each([&](std::size_t v) { ++stats_.state_slots[v][kTransmitIdx]; });
  listen_.for_each([&](std::size_t v) { ++stats_.state_slots[v][kListenIdx]; });
  woke_.copy_from(awake_now_);
  woke_.subtract(prev_awake_);
  woke_.for_each([&](std::size_t v) { ++stats_.wake_transitions[v]; });
  if (config_.battery_mj > 0.0) {
    // State cost first, then the wakeup surcharge, then the death check —
    // the same per-node subtraction order as the scalar pipeline, so the
    // battery trajectory is bit-identical.
    transmitting_.for_each([&](std::size_t v) { battery_[v] -= b_transmit_; });
    listen_.for_each([&](std::size_t v) { battery_[v] -= b_listen_; });
    scratch_.copy_from(dead_);
    scratch_.flip_all();           // scratch_ = alive
    scratch_.subtract(awake_now_); // scratch_ = alive sleepers
    scratch_.for_each([&](std::size_t v) { battery_[v] -= b_sleep_; });
    woke_.for_each([&](std::size_t v) { battery_[v] -= b_wakeup_; });
    scratch_.copy_from(dead_);
    scratch_.flip_all();  // scratch_ = alive (kill_node mutates dead_, not this copy)
    scratch_.for_each([&](std::size_t v) {
      if (battery_[v] <= 0) kill_node(v);
    });
  }  // else: early-out — unlimited energy means no drain and no deaths.
  prev_awake_.copy_from(awake_now_);
}

void Simulator::finalize_sleep_counts() {
  if (config_.force_scalar_pipeline) return;
  const std::size_t n = stats_.state_slots.size();
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint64_t passes =
        death_slot_[v] == kNeverDied ? stats_.slots_run : death_slot_[v] + 1;
    auto& s = stats_.state_slots[v];
    s[kSleepIdx] = passes - s[kTransmitIdx] - s[kReceiveIdx] - s[kListenIdx];
  }
}

}  // namespace ttdc::sim
