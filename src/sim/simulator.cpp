#include "sim/simulator.hpp"

#include <cassert>

namespace ttdc::sim {

Simulator::Simulator(net::Graph graph, MacProtocol& mac, TrafficSource& traffic,
                     const SimConfig& config)
    : graph_(std::move(graph)), mac_(mac), traffic_(traffic), config_(config),
      rng_(config.seed), routing_(graph_),
      queues_(graph_.num_nodes(), PacketQueue(config.queue_capacity)),
      transmitting_(graph_.num_nodes()) {
  stats_.state_slots.assign(graph_.num_nodes(), {0, 0, 0, 0});
  stats_.delivered_by_origin.assign(graph_.num_nodes(), 0);
  stats_.wake_transitions.assign(graph_.num_nodes(), 0);
  was_asleep_.assign(graph_.num_nodes(), true);  // nodes boot asleep
  battery_.assign(graph_.num_nodes(), config_.battery_mj);
  dead_ = util::DynamicBitset(graph_.num_nodes());
}

void Simulator::set_graph(net::Graph graph) {
  assert(graph.num_nodes() == graph_.num_nodes());
  graph_ = std::move(graph);
  routing_ = RoutingTable(graph_);
  mac_.on_topology_change(graph_);
}

void Simulator::inject(std::size_t origin, std::size_t destination) {
  if (dead_.test(origin)) return;  // a dead sensor senses nothing
  ++stats_.generated;
  Packet p;
  p.id = next_packet_id_++;
  p.origin = origin;
  p.destination = destination;
  p.created_slot = now_;
  trace(TraceEvent::Kind::kGenerated, origin, destination, p.id);
  if (!queues_[origin].push(p)) {
    ++stats_.queue_drops;
    trace(TraceEvent::Kind::kQueueDrop, origin, origin, p.id);
  }
}

void Simulator::trace(TraceEvent::Kind kind, std::size_t node, std::size_t peer,
                      std::uint64_t packet_id) {
  if (config_.trace) {
    config_.trace(TraceEvent{kind, now_, node, peer, packet_id});
  }
}

void Simulator::run(std::uint64_t slots) {
  for (std::uint64_t s = 0; s < slots; ++s) step();
}

void Simulator::step() {
  const std::size_t n = graph_.num_nodes();
  traffic_.generate(now_, rng_, [&](std::size_t o, std::size_t d) { inject(o, d); });
  mac_.begin_slot(now_, rng_);

  // Phase 1: collect transmission attempts.
  tx_nodes_.clear();
  tx_targets_.clear();
  transmitting_.reset_all();
  for (std::size_t v = 0; v < n; ++v) {
    if (dead_.test(v)) continue;
    auto& q = queues_[v];
    while (!q.empty()) {
      const std::size_t hop = routing_.next_hop(v, q.front().destination);
      if (hop == static_cast<std::size_t>(-1)) {
        if (config_.drop_unroutable) {
          ++stats_.queue_drops;
          q.pop();
          continue;  // look at the next packet
        }
        break;  // stall
      }
      if (mac_.wants_transmit(v, hop)) {
        tx_nodes_.push_back(v);
        tx_targets_.push_back(hop);
        transmitting_.set(v);
        trace(TraceEvent::Kind::kTransmit, v, hop, q.front().id);
      }
      break;
    }
  }

  // Phase 2: resolve receptions under the collision-at-receiver model.
  stats_.transmissions += tx_nodes_.size();
  for (std::size_t i = 0; i < tx_nodes_.size(); ++i) {
    const std::size_t x = tx_nodes_[i];
    const std::size_t y = tx_targets_[i];
    if (dead_.test(y) || !mac_.can_receive(y) || transmitting_.test(y)) {
      ++stats_.receiver_asleep;
      trace(TraceEvent::Kind::kReceiverAsleep, y, x, queues_[x].front().id);
      continue;
    }
    // Collision iff any other transmitter is in y's neighborhood.
    util::DynamicBitset interferers = graph_.neighbors(y) & transmitting_;
    interferers.reset(x);
    if (interferers.any()) {
      ++stats_.collisions;
      trace(TraceEvent::Kind::kCollision, y, x, queues_[x].front().id);
      continue;
    }
    // Channel imperfections: slot misalignment, then fading/noise.
    if (config_.sync_miss_rate > 0.0 && rng_.bernoulli(config_.sync_miss_rate)) {
      ++stats_.sync_losses;
      trace(TraceEvent::Kind::kSyncLoss, y, x, queues_[x].front().id);
      continue;
    }
    if (config_.packet_error_rate > 0.0 && rng_.bernoulli(config_.packet_error_rate)) {
      ++stats_.channel_losses;
      trace(TraceEvent::Kind::kChannelLoss, y, x, queues_[x].front().id);
      continue;
    }
    // Success: dequeue at x, deliver or forward at y.
    Packet p = queues_[x].front();
    queues_[x].pop();
    ++stats_.hop_successes;
    ++p.hops;
    if (p.destination == y) {
      ++stats_.delivered;
      ++stats_.delivered_by_origin[p.origin];
      stats_.latency.record(now_ - p.created_slot);
      trace(TraceEvent::Kind::kFinalDelivered, y, p.origin, p.id);
    } else {
      trace(TraceEvent::Kind::kHopDelivered, y, x, p.id);
      if (!queues_[y].push(p)) {
        ++stats_.queue_drops;
        trace(TraceEvent::Kind::kQueueDrop, y, p.origin, p.id);
      }
    }
  }

  // Phase 3: energy accounting (dead nodes draw nothing and stay dead).
  for (std::size_t v = 0; v < n; ++v) {
    if (dead_.test(v)) continue;
    RadioState state;
    if (transmitting_.test(v)) {
      state = RadioState::kTransmit;
    } else if (mac_.can_receive(v)) {
      state = RadioState::kListen;  // eligible receiver: awake whether or
                                    // not a packet actually arrived
    } else {
      state = mac_.idle_state(v);
    }
    ++stats_.state_slots[v][static_cast<std::size_t>(state)];
    const bool asleep = state == RadioState::kSleep;
    const bool woke = was_asleep_[v] && !asleep;
    if (woke) ++stats_.wake_transitions[v];
    was_asleep_[v] = asleep;
    if (config_.battery_mj > 0.0) {
      battery_[v] -= config_.energy.energy_mj(state, 1);
      if (woke) battery_[v] -= config_.energy.wakeup_mj;
      if (battery_[v] <= 0.0) {
        dead_.set(v);
        battery_[v] = 0.0;
        ++stats_.deaths;
        stats_.first_death_slot = std::min(stats_.first_death_slot, now_);
      }
    }
  }

  ++now_;
  ++stats_.slots_run;
}

}  // namespace ttdc::sim
