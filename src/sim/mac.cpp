#include "sim/mac.hpp"

#include <algorithm>
#include <utility>

#include "obs/profile.hpp"
#include "util/check.hpp"

namespace ttdc::sim {

// ------------------------------------------------------------ base fallback

bool MacProtocol::fill_slot_sets(util::SlotSet& receivers,
                                 util::SlotSet& transmitters) const {
  // Scalar fallback for MACs that only implement the per-node interface:
  // the receiver set is derivable from can_receive(), the transmitter set
  // is not (wants_transmit() is target-dependent), so the simulator keeps
  // querying wants_transmit()/idle_state() node-by-node.
  receivers.reset_all();
  for (std::size_t v = 0; v < receivers.size(); ++v) {
    if (can_receive(v)) receivers.set(v);
  }
  (void)transmitters;
  return false;
}

// ---------------------------------------------------------------- schedule

DutyCycledScheduleMac::DutyCycledScheduleMac(const core::Schedule& schedule,
                                             bool schedule_aware_senders)
    : schedule_(schedule), aware_(schedule_aware_senders) {
  const std::size_t frame = schedule_.frame_length();
  const std::size_t n = schedule_.num_nodes();
  slot_receivers_.reserve(frame);
  slot_transmitters_.reserve(frame);
  for (std::size_t i = 0; i < frame; ++i) {
    util::SlotSet r(n);
    r.copy_from(schedule_.receivers(i));
    slot_receivers_.push_back(std::move(r));
    util::SlotSet t(n);
    t.copy_from(schedule_.transmitters(i));
    slot_transmitters_.push_back(std::move(t));
  }
}

void DutyCycledScheduleMac::begin_slot(std::uint64_t slot, util::Xoshiro256&) {
  frame_slot_ = schedule_.frame_phase(slot);
}

bool DutyCycledScheduleMac::can_receive(std::size_t node) const {
  return schedule_.receivers(frame_slot_).test(node);
}

bool DutyCycledScheduleMac::wants_transmit(std::size_t node, std::size_t target) const {
  if (!schedule_.transmitters(frame_slot_).test(node)) return false;
  if (aware_ && !schedule_.receivers(frame_slot_).test(target)) return false;
  return true;
}

RadioState DutyCycledScheduleMac::idle_state(std::size_t node) const {
  // A scheduled receiver that hears nothing still burns listen power;
  // everyone else sleeps.
  return schedule_.receivers(frame_slot_).test(node) ? RadioState::kListen
                                                     : RadioState::kSleep;
}

bool DutyCycledScheduleMac::fill_slot_sets(util::SlotSet& receivers,
                                           util::SlotSet& transmitters) const {
  TTDC_PROF_SCOPE("mac.fill_slot_sets.duty_cycled");
  if (schedule_.num_nodes() != receivers.size()) {
    // Schedule built over a different universe than the simulated graph:
    // keep the scalar path, which indexes per node and stays in bounds.
    return MacProtocol::fill_slot_sets(receivers, transmitters);
  }
  receivers.copy_from(slot_receivers_[frame_slot_]);
  transmitters.copy_from(slot_transmitters_[frame_slot_]);
  return true;
}

// ------------------------------------------------------------------ aloha

SlottedAlohaMac::SlottedAlohaMac(std::size_t num_nodes, double attempt_probability)
    : p_(attempt_probability), coin_(num_nodes) {}

void SlottedAlohaMac::begin_slot(std::uint64_t, util::Xoshiro256& rng) {
  coin_.reset_all();
  for (std::size_t v = 0; v < coin_.size(); ++v) {
    if (rng.bernoulli(p_)) coin_.set(v);
  }
}

bool SlottedAlohaMac::wants_transmit(std::size_t node, std::size_t) const {
  return coin_.test(node);
}

bool SlottedAlohaMac::fill_slot_sets(util::SlotSet& receivers,
                                     util::SlotSet& transmitters) const {
  TTDC_PROF_SCOPE("mac.fill_slot_sets.aloha");
  receivers.set_all();  // ALOHA never sleeps
  transmitters.copy_from(coin_);
  return true;
}

// ---------------------------------------------------------- uncoordinated

UncoordinatedSleepMac::UncoordinatedSleepMac(std::size_t num_nodes, double awake_probability,
                                             double attempt_probability)
    : awake_p_(awake_probability), attempt_p_(attempt_probability), awake_(num_nodes),
      coin_(num_nodes) {}

void UncoordinatedSleepMac::begin_slot(std::uint64_t, util::Xoshiro256& rng) {
  awake_.reset_all();
  coin_.reset_all();
  for (std::size_t v = 0; v < awake_.size(); ++v) {
    if (rng.bernoulli(awake_p_)) {
      awake_.set(v);
      if (rng.bernoulli(attempt_p_)) coin_.set(v);
    }
  }
}

bool UncoordinatedSleepMac::can_receive(std::size_t node) const { return awake_.test(node); }

bool UncoordinatedSleepMac::wants_transmit(std::size_t node, std::size_t) const {
  return coin_.test(node);  // sender does not know the receiver's state
}

RadioState UncoordinatedSleepMac::idle_state(std::size_t node) const {
  return awake_.test(node) ? RadioState::kListen : RadioState::kSleep;
}

bool UncoordinatedSleepMac::fill_slot_sets(util::SlotSet& receivers,
                                           util::SlotSet& transmitters) const {
  TTDC_PROF_SCOPE("mac.fill_slot_sets.uncoordinated_sleep");
  receivers.copy_from(awake_);
  transmitters.copy_from(coin_);  // coin_ ⊆ awake_ by construction
  return true;
}

// ------------------------------------------------------- common active period

CommonActivePeriodMac::CommonActivePeriodMac(std::size_t num_nodes, std::size_t frame_length,
                                             std::size_t active_slots,
                                             double attempt_probability)
    : frame_length_(frame_length), active_slots_(active_slots), p_(attempt_probability),
      coin_(num_nodes) {
  TTDC_ASSERT(active_slots >= 1 && active_slots <= frame_length,
              "active window ", active_slots, " outside frame of ", frame_length);
}

void CommonActivePeriodMac::begin_slot(std::uint64_t slot, util::Xoshiro256& rng) {
  in_active_ = (slot % frame_length_) < active_slots_;
  coin_.reset_all();
  if (in_active_) {
    for (std::size_t v = 0; v < coin_.size(); ++v) {
      if (rng.bernoulli(p_)) coin_.set(v);
    }
  }
}

bool CommonActivePeriodMac::can_receive(std::size_t) const { return in_active_; }

bool CommonActivePeriodMac::wants_transmit(std::size_t node, std::size_t) const {
  return in_active_ && coin_.test(node);
}

RadioState CommonActivePeriodMac::idle_state(std::size_t) const {
  return in_active_ ? RadioState::kListen : RadioState::kSleep;
}

bool CommonActivePeriodMac::fill_slot_sets(util::SlotSet& receivers,
                                           util::SlotSet& transmitters) const {
  TTDC_PROF_SCOPE("mac.fill_slot_sets.common_active_period");
  if (in_active_) {
    receivers.set_all();
    transmitters.copy_from(coin_);
  } else {
    receivers.reset_all();
    transmitters.reset_all();
  }
  return true;
}

// ------------------------------------------------------------ coloring tdma

std::vector<std::size_t> distance2_coloring(const net::Graph& graph) {
  const std::size_t n = graph.num_nodes();
  std::vector<std::size_t> color(n, static_cast<std::size_t>(-1));
  std::vector<bool> taken;
  for (std::size_t v = 0; v < n; ++v) {
    taken.assign(n + 1, false);
    // Forbid colors of all nodes within distance 2.
    graph.neighbors(v).for_each([&](std::size_t u) {
      if (color[u] != static_cast<std::size_t>(-1)) taken[color[u]] = true;
      graph.neighbors(u).for_each([&](std::size_t w) {
        if (w != v && color[w] != static_cast<std::size_t>(-1)) taken[color[w]] = true;
      });
    });
    std::size_t c = 0;
    while (taken[c]) ++c;
    color[v] = c;
  }
  return color;
}

ColoringTdmaMac::ColoringTdmaMac(const net::Graph& graph) { rebuild(graph); }

void ColoringTdmaMac::rebuild(const net::Graph& graph) {
  color_ = distance2_coloring(graph);
  num_colors_ = color_.empty() ? 1 : *std::max_element(color_.begin(), color_.end()) + 1;
  neighbor_.clear();
  neighbor_.reserve(graph.num_nodes());
  for (std::size_t v = 0; v < graph.num_nodes(); ++v) neighbor_.push_back(graph.neighbors(v));
  color_members_.assign(num_colors_, util::SlotSet(graph.num_nodes()));
  for (std::size_t v = 0; v < color_.size(); ++v) color_members_[color_[v]].set(v);
}

void ColoringTdmaMac::begin_slot(std::uint64_t slot, util::Xoshiro256&) {
  current_color_ = static_cast<std::size_t>(slot % num_colors_);
}

bool ColoringTdmaMac::can_receive(std::size_t node) const {
  // Listen unless it is the node's own transmit slot.
  return color_[node] != current_color_;
}

bool ColoringTdmaMac::wants_transmit(std::size_t node, std::size_t) const {
  return color_[node] == current_color_;
}

bool ColoringTdmaMac::fill_slot_sets(util::SlotSet& receivers,
                                     util::SlotSet& transmitters) const {
  TTDC_PROF_SCOPE("mac.fill_slot_sets.coloring_tdma");
  const util::SlotSet& owners = color_members_[current_color_];
  transmitters.copy_from(owners);
  // Everyone else listens. An idle owner sleeps (no neighbor shares its
  // color under a distance-2 coloring), so the batched sleep contract holds.
  receivers.copy_from(owners);
  receivers.flip_all();
  return true;
}

RadioState ColoringTdmaMac::idle_state(std::size_t node) const {
  // Sleep unless some (snapshot) neighbor owns the slot.
  bool neighbor_owns = false;
  neighbor_[node].for_each([&](std::size_t u) {
    if (color_[u] == current_color_) neighbor_owns = true;
  });
  return neighbor_owns ? RadioState::kListen : RadioState::kSleep;
}

bool ColoringTdmaMac::on_topology_change(const net::Graph& graph) {
  rebuild(graph);
  ++recolor_count_;
  return true;
}

}  // namespace ttdc::sim
