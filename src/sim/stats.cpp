#include "sim/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <sstream>

namespace ttdc::sim {

double LatencyStats::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (auto s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

std::uint64_t LatencyStats::max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

std::uint64_t LatencyStats::percentile(double pct) const {
  if (samples_.empty()) return 0;
  const double rank = pct / 100.0 * static_cast<double>(samples_.size());
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(std::ceil(rank)) - 1;
  idx = std::min(idx, samples_.size() - 1);
  std::nth_element(samples_.begin(), samples_.begin() + static_cast<std::ptrdiff_t>(idx),
                   samples_.end());
  return samples_[idx];
}

double SimStats::awake_fraction() const {
  std::uint64_t awake = 0, total = 0;
  for (const auto& per_node : state_slots) {
    awake += per_node[0] + per_node[1] + per_node[2];  // TX + RX + LISTEN
    total += per_node[0] + per_node[1] + per_node[2] + per_node[3];
  }
  return total == 0 ? 0.0 : static_cast<double>(awake) / static_cast<double>(total);
}

double SimStats::total_energy_mj(const EnergyModel& model) const {
  double total = 0.0;
  static constexpr std::array<RadioState, 4> kStates = {
      RadioState::kTransmit, RadioState::kReceive, RadioState::kListen, RadioState::kSleep};
  for (const auto& per_node : state_slots) {
    for (std::size_t s = 0; s < 4; ++s) total += model.energy_mj(kStates[s], per_node[s]);
  }
  for (std::uint64_t wakes : wake_transitions) {
    total += model.wakeup_mj * static_cast<double>(wakes);
  }
  return total;
}

double SimStats::energy_per_delivery_mj(const EnergyModel& model) const {
  if (delivered == 0) return std::numeric_limits<double>::infinity();
  return total_energy_mj(model) / static_cast<double>(delivered);
}

namespace {

void add_padded(std::vector<std::uint64_t>& into, const std::vector<std::uint64_t>& from) {
  if (from.size() > into.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
}

}  // namespace

void SimStats::merge(const SimStats& other) {
  slots_run += other.slots_run;
  generated += other.generated;
  delivered += other.delivered;
  hop_successes += other.hop_successes;
  transmissions += other.transmissions;
  collisions += other.collisions;
  receiver_asleep += other.receiver_asleep;
  channel_losses += other.channel_losses;
  sync_losses += other.sync_losses;
  queue_drops += other.queue_drops;
  latency.merge(other.latency);
  if (other.state_slots.size() > state_slots.size()) {
    state_slots.resize(other.state_slots.size(), {0, 0, 0, 0});
  }
  for (std::size_t v = 0; v < other.state_slots.size(); ++v) {
    for (std::size_t s = 0; s < 4; ++s) state_slots[v][s] += other.state_slots[v][s];
  }
  add_padded(delivered_by_origin, other.delivered_by_origin);
  add_padded(wake_transitions, other.wake_transitions);
  first_death_slot = std::min(first_death_slot, other.first_death_slot);
  deaths += other.deaths;
  fault_crashes += other.fault_crashes;
  fault_recoveries += other.fault_recoveries;
  fault_battery_spikes += other.fault_battery_spikes;
  fault_jam_bursts += other.fault_jam_bursts;
  burst_losses += other.burst_losses;
  drift_losses += other.drift_losses;
  partial = partial || other.partial;
}

std::string SimStats::summary(const EnergyModel& model) const {
  std::ostringstream os;
  os << "slots=" << slots_run << " generated=" << generated << " delivered=" << delivered
     << " (ratio " << delivery_ratio() << ")\n"
     << "tx=" << transmissions << " hop_ok=" << hop_successes << " collisions=" << collisions
     << " rx_asleep=" << receiver_asleep << " chan_loss=" << channel_losses
     << " sync_loss=" << sync_losses << " drops=" << queue_drops << '\n'
     << "latency: mean=" << latency.mean() << " p50=" << latency.percentile(50)
     << " p95=" << latency.percentile(95) << " max=" << latency.max() << " slots\n"
     << "awake_fraction=" << awake_fraction() << " energy=" << total_energy_mj(model)
     << " mJ (" << energy_per_delivery_mj(model) << " mJ/delivery)";
  if (fault_crashes + fault_recoveries + fault_battery_spikes + fault_jam_bursts +
          burst_losses + drift_losses >
      0) {
    os << "\nfaults: crashes=" << fault_crashes << " recoveries=" << fault_recoveries
       << " spikes=" << fault_battery_spikes << " jam_bursts=" << fault_jam_bursts
       << " burst_loss=" << burst_losses << " drift_loss=" << drift_losses;
  }
  if (partial) os << "\nPARTIAL: quarantined cells missing from this aggregate";
  return os.str();
}

}  // namespace ttdc::sim
