// Neighbor discovery over a topology-transparent schedule.
//
// A corollary of Requirement 3: if every node broadcasts a HELLO in each of
// its transmit slots, then for every link (x, y) there is a slot per frame
// in which y is awake and x is the only transmitting neighbor of y -- so
// every node discovers every neighbor within ONE frame, on any topology in
// N_n^D, with zero control traffic beyond the HELLOs. This module runs
// that protocol deterministically on a concrete graph and reports when
// each directed adjacency was first heard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/schedule.hpp"
#include "net/graph.hpp"

namespace ttdc::sim {

struct DiscoveryResult {
  /// first_heard[y][x] = slot index (from 0) at which y first heard
  /// neighbor x's HELLO; SIZE_MAX if never within the horizon.
  std::vector<std::vector<std::size_t>> first_heard;
  std::size_t slots_run = 0;

  /// True if every directed adjacency of the graph was discovered.
  [[nodiscard]] bool complete(const net::Graph& graph) const;

  /// Largest first-heard slot over all discovered adjacencies (0 if none).
  [[nodiscard]] std::size_t last_discovery_slot() const;

  /// Number of directed adjacencies discovered.
  [[nodiscard]] std::size_t discovered_count() const;
};

/// Runs HELLO-based discovery for `max_slots` slots: in slot t every node
/// of T[t mod L] broadcasts; every node of R[t mod L] hears the broadcast
/// of a neighbor x iff x is its only transmitting neighbor in that slot
/// (the paper's collision model, applied to broadcast).
DiscoveryResult run_discovery(const core::Schedule& schedule, const net::Graph& graph,
                              std::size_t max_slots);

}  // namespace ttdc::sim
