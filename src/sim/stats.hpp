// Counters and summary statistics collected by the simulator.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/radio.hpp"

namespace ttdc::sim {

/// Streaming latency statistics (slots from creation to final delivery).
///
/// percentile() selects with std::nth_element (expected O(n)) on each
/// query instead of caching a full sort: queries stay correct no matter
/// how record() and percentile() calls interleave (a cached sorted flag
/// here once silently corrupted mid-run probes).
class LatencyStats {
 public:
  void record(std::uint64_t latency_slots) { samples_.push_back(latency_slots); }

  /// Pre-sizes the sample buffer. Perf hook: lets benches and the
  /// zero-allocation test keep record() off the allocator for a known
  /// number of upcoming deliveries.
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] std::uint64_t max() const;
  /// Percentile in [0, 100]; 0 if no samples. Nearest-rank definition.
  [[nodiscard]] std::uint64_t percentile(double pct) const;

  /// Absorbs `other`'s samples (sample concatenation, not moment folding):
  /// count/max/percentile of the merge equal those of the single stream
  /// that recorded both shards in any order, exactly — nth_element selects
  /// from the value multiset, which concatenation preserves. mean() is a
  /// left-to-right double sum, so merging shards in a fixed order (the
  /// campaign runner merges in cell-index order) reproduces the serial sum
  /// bit for bit.
  void merge(const LatencyStats& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  }

  /// Raw samples in stored order. Exposed for exact serialization (the
  /// campaign journal round-trips a cell's samples bit for bit); note
  /// percentile() reorders them in place, so serialize before querying.
  [[nodiscard]] const std::vector<std::uint64_t>& samples() const { return samples_; }

 private:
  // mutable: percentile() reorders (never resizes) the samples in place.
  mutable std::vector<std::uint64_t> samples_;
};

struct SimStats {
  std::uint64_t slots_run = 0;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;      // reached final destination
  std::uint64_t hop_successes = 0;  // per-hop receptions
  std::uint64_t transmissions = 0;
  std::uint64_t collisions = 0;     // transmissions lost to a collision
  std::uint64_t receiver_asleep = 0;  // transmissions lost: receiver not receiving
  std::uint64_t channel_losses = 0;   // lost to the packet_error_rate knob
  std::uint64_t sync_losses = 0;      // lost to the sync_miss_rate knob
  std::uint64_t queue_drops = 0;
  LatencyStats latency;

  // Per-node slot counts by radio state: [node][state].
  std::vector<std::array<std::uint64_t, 4>> state_slots;

  // Final deliveries broken down by originating node (per-flow throughput).
  std::vector<std::uint64_t> delivered_by_origin;

  // Per-node count of sleep -> awake radio transitions (each costs
  // EnergyModel::wakeup_mj).
  std::vector<std::uint64_t> wake_transitions;

  // Network lifetime (battery model): slot of the first node death and the
  // running death count. first_death_slot is UINT64_MAX while all alive.
  std::uint64_t first_death_slot = ~std::uint64_t{0};
  std::uint64_t deaths = 0;

  // Injected-fault accounting (sim/fault.hpp). All zero unless a FaultPlan
  // is armed, so unarmed runs are unchanged.
  std::uint64_t fault_crashes = 0;        // kCrash events applied
  std::uint64_t fault_recoveries = 0;     // kRecover events applied
  std::uint64_t fault_battery_spikes = 0; // kBatterySpike events applied
  std::uint64_t fault_jam_bursts = 0;     // kJamStart events applied
  std::uint64_t burst_losses = 0;         // receptions lost to Gilbert-Elliott
  std::uint64_t drift_losses = 0;         // receptions lost to clock drift

  /// True when these stats are an incomplete aggregate: at least one
  /// quarantined campaign cell is missing from the merge. Sticky across
  /// merge() in any order — graceful degradation must never read as a
  /// complete result.
  bool partial = false;

  [[nodiscard]] double delivery_ratio() const {
    return generated == 0 ? 0.0 : static_cast<double>(delivered) / static_cast<double>(generated);
  }
  /// Per-hop success ratio among attempted transmissions.
  [[nodiscard]] double success_ratio() const {
    return transmissions == 0
               ? 0.0
               : static_cast<double>(hop_successes) / static_cast<double>(transmissions);
  }
  /// Average fraction of node-slots spent not sleeping.
  [[nodiscard]] double awake_fraction() const;
  /// Total network energy (mJ) under `model`.
  [[nodiscard]] double total_energy_mj(const EnergyModel& model) const;
  /// Energy per delivered packet (mJ); infinity when nothing was delivered.
  [[nodiscard]] double energy_per_delivery_mj(const EnergyModel& model) const;

  /// Folds `other` into this: scalar counters add, latency shards
  /// concatenate (see LatencyStats::merge), per-node vectors add
  /// element-wise (shorter vectors are zero-extended, so stats from
  /// different network sizes still aggregate), first_death_slot takes the
  /// min and deaths add. merge is associative, and for a fixed merge order
  /// the result is bit-identical regardless of which thread produced each
  /// shard — the property the campaign runner's lock-free accumulation
  /// depends on.
  void merge(const SimStats& other);

  [[nodiscard]] std::string summary(const EnergyModel& model) const;
};

}  // namespace ttdc::sim
