// Packets and per-node FIFO queues for the slot simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

namespace ttdc::sim {

struct Packet {
  std::uint64_t id = 0;
  std::size_t origin = 0;       // node that generated it
  std::size_t destination = 0;  // final destination
  std::uint64_t created_slot = 0;
  std::uint32_t hops = 0;
};

/// Bounded FIFO; pushes beyond capacity are dropped (and counted by the
/// simulator as queue drops).
class PacketQueue {
 public:
  explicit PacketQueue(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Returns false (drop) when full.
  bool push(const Packet& p) {
    if (queue_.size() >= capacity_) return false;
    queue_.push_back(p);
    return true;
  }

  [[nodiscard]] const Packet& front() const { return queue_.front(); }
  void pop() { queue_.pop_front(); }

 private:
  std::size_t capacity_;
  std::deque<Packet> queue_;
};

}  // namespace ttdc::sim
