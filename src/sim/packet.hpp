// Packets and per-node FIFO queues for the slot simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace ttdc::sim {

struct Packet {
  std::uint64_t id = 0;
  std::size_t origin = 0;       // node that generated it
  std::size_t destination = 0;  // final destination
  std::uint64_t created_slot = 0;
  std::uint32_t hops = 0;
};

/// Bounded FIFO; pushes beyond capacity are dropped (and counted by the
/// simulator as queue drops).
///
/// Backed by a fixed ring buffer allocated once at construction: push/pop on
/// the simulator hot path never touch the heap (a deque here would allocate
/// and free chunks as the head crossed block boundaries, violating the
/// zero-allocation invariant of Simulator::step(), DESIGN.md §8).
class PacketQueue {
 public:
  explicit PacketQueue(std::size_t capacity) : buf_(capacity) {}

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  /// Returns false (drop) when full.
  bool push(const Packet& p) {
    TTDC_DCHECK(buf_.empty() ? head_ == 0 : head_ < buf_.size(),
                "PacketQueue::push on corrupt ring: head ", head_, " capacity ", buf_.size());
    if (size_ >= buf_.size()) return false;
    std::size_t tail = head_ + size_;
    if (tail >= buf_.size()) tail -= buf_.size();
    buf_[tail] = p;
    ++size_;
    return true;
  }

  [[nodiscard]] const Packet& front() const {
    TTDC_DCHECK(size_ > 0, "PacketQueue::front on empty queue");
    return buf_[head_];
  }

  /// i-th packet from the head (at(0) == front()). The fast-forward engine
  /// snapshots and rewrites whole queues through this; the hot path never
  /// calls it.
  [[nodiscard]] const Packet& at(std::size_t i) const {
    TTDC_DCHECK(i < size_, "PacketQueue::at(", i, ") on queue of size ", size_);
    std::size_t idx = head_ + i;
    if (idx >= buf_.size()) idx -= buf_.size();
    return buf_[idx];
  }

  /// Drops every packet (capacity retained). Used by the fast-forward
  /// replay to rewrite a queue to a memoized frame's post-state.
  void clear() {
    TTDC_DCHECK(size_ <= buf_.size(), "PacketQueue::clear on corrupt ring: size ", size_,
                " capacity ", buf_.size());
    head_ = 0;
    size_ = 0;
  }

  void pop() {
    TTDC_DCHECK(size_ > 0, "PacketQueue::pop on empty queue");
    ++head_;
    if (head_ == buf_.size()) head_ = 0;
    --size_;
  }

  /// Ring invariants: the head cursor stays inside the buffer and the live
  /// count never exceeds capacity. Established by construction and every
  /// push/pop; Simulator::audit_invariants() re-verifies them per queue.
  void audit_invariants() const {
    TTDC_DCHECK(size_ <= buf_.size(), "PacketQueue: size ", size_, " exceeds capacity ",
                buf_.size());
    TTDC_DCHECK(buf_.empty() ? head_ == 0 : head_ < buf_.size(), "PacketQueue: head cursor ",
                head_, " outside ring of capacity ", buf_.size());
  }

 private:
  std::vector<Packet> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ttdc::sim
