// ttdc::fault — deterministic fault injection for the simulated world.
//
// The paper's guarantees are *topology-transparent*: a schedule keeps its
// minimum throughput without reacting to the network. The flat channel
// knobs (SimConfig::packet_error_rate / sync_miss_rate) can only probe
// uncorrelated noise; realistic degradation is correlated — nodes crash and
// come back, links fade in bursts, clocks drift apart, batteries take
// spikes, interferers jam whole neighborhoods. A FaultPlan is the
// deterministic, seed-derived description of all of that for one run:
//
//   * node crash/recover schedules (geometric hazards, geometric downtime);
//   * Gilbert–Elliott bursty link loss: every directed link carries a
//     two-state (good/bad) Markov channel with its own SplitMix64-derived
//     coin stream, advanced lazily by the closed-form k-step transition, so
//     an idle link costs nothing and the armed hot path stays O(1) per
//     transmission;
//   * per-node clock-drift processes beyond the bounded-skew model: each
//     node draws a drift rate, relative misalignment accumulates linearly
//     (sawtoothed by an optional resync interval), and a transmission is
//     lost once |offset_x - offset_y| exceeds the guard window;
//   * battery-drain spikes (timestamped per-node mJ hits);
//   * jammer nodes: chosen nodes emit in every slot of their jam bursts,
//     colliding with any reception in their neighborhood.
//
// Everything is a pure function of (config, num_nodes, seed): two plans
// built from the same triple are identical, and the simulator consuming a
// plan never touches its own RNG stream on behalf of a fault — so a run
// with an armed-but-empty plan is bit-identical to an unarmed run (tested),
// and scalar/batched pipeline golden equality holds with faults on.
//
// The Simulator consumes the plan via SimConfig::fault_plan, emits every
// injected fault through the flight recorder (FlightEvent::kFault* kinds)
// and counts it in SimStats / obs metrics, so post-mortems show causality:
// "delivery dipped at slot 40k" lines up with "node 17 crashed at 39.8k".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ttdc::sim {

/// Two-state Markov (Gilbert–Elliott) loss channel. In each slot the
/// channel is Good or Bad; transitions happen per slot, receptions are lost
/// with the state's loss probability. The defaults model a clean channel —
/// arm it by raising p_good_to_bad above zero.
struct GilbertElliott {
  double p_good_to_bad = 0.0;  ///< per-slot Good -> Bad transition probability
  double p_bad_to_good = 0.1;  ///< per-slot Bad -> Good transition probability
  double loss_good = 0.0;      ///< reception loss probability while Good
  double loss_bad = 1.0;       ///< reception loss probability while Bad

  /// True when the chain can ever reach (or start in) a lossy state.
  [[nodiscard]] bool armed() const {
    return p_good_to_bad > 0.0 && (loss_bad > 0.0 || loss_good > 0.0);
  }
  /// Stationary probability of the Bad state.
  [[nodiscard]] double stationary_bad() const {
    const double denom = p_good_to_bad + p_bad_to_good;
    return denom <= 0.0 ? 0.0 : p_good_to_bad / denom;
  }
};

/// One timestamped world-fault event, applied by the simulator at the start
/// of `slot` (before traffic generation and the MAC's begin_slot).
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kCrash,         ///< node goes down: no generate/transmit/receive
    kRecover,       ///< node comes back (queue intact)
    kBatterySpike,  ///< magnitude_mj drained instantly (battery model only)
    kJamStart,      ///< node starts emitting in every slot
    kJamEnd,        ///< node stops jamming
  };
  std::uint64_t slot = 0;
  std::size_t node = 0;
  double magnitude_mj = 0.0;  ///< kBatterySpike only

  friend bool operator==(const FaultEvent& a, const FaultEvent& b) {
    return a.slot == b.slot && a.node == b.node && a.magnitude_mj == b.magnitude_mj &&
           a.kind == b.kind;
  }

  Kind kind = Kind::kCrash;
};

/// Stable wire name of a fault-event kind ("crash", "jam_start", ...).
[[nodiscard]] const char* fault_kind_name(FaultEvent::Kind kind);

/// Generation recipe for a FaultPlan. All rates are per-node per-slot
/// hazards; a zero rate disables that fault class. `horizon_slots` bounds
/// event generation — a simulation running past the horizon sees no further
/// timestamped faults (drift and link loss, being processes rather than
/// events, keep acting).
struct FaultPlanConfig {
  std::uint64_t horizon_slots = 0;

  // Node crash/recover.
  double crash_rate = 0.0;             ///< per-node per-slot crash hazard
  double mean_downtime_slots = 200.0;  ///< geometric recovery time (>= 1)

  // Bursty link loss on every directed link.
  GilbertElliott link_loss;

  // Clock drift. Each node draws a rate uniform in [-max_drift_per_slot,
  // +max_drift_per_slot] (slot fractions per slot); a transmission x -> y
  // is lost when the accumulated relative offset exceeds drift_guard.
  double max_drift_per_slot = 0.0;
  double drift_guard = 0.25;
  std::uint64_t resync_interval = 0;  ///< 0 = never resync (unbounded drift)

  // Battery-drain spikes.
  double battery_spike_rate = 0.0;  ///< per-node per-slot spike hazard
  double battery_spike_mj = 0.0;    ///< drain per spike

  // Jammers.
  std::size_t num_jammers = 0;      ///< distinct nodes drawn from the plan seed
  double jam_duty = 0.0;            ///< long-run fraction of slots jammed, (0, 1)
  std::uint64_t jam_burst_slots = 200;  ///< length of each jam burst
};

/// An immutable, fully materialized fault schedule for one simulated world:
/// sorted timestamped events plus the parameters of the continuous
/// processes (link chains, drift rates). Build once, share freely — the
/// simulator keeps all mutable fault state (chain states, down sets) on its
/// side, so one plan can drive many campaign cells concurrently.
class FaultPlan {
 public:
  /// Derives the full plan from (config, num_nodes, seed). Each fault class
  /// draws from its own SplitMix64 child stream, so e.g. adding jammers to
  /// a config never perturbs the crash schedule.
  FaultPlan(const FaultPlanConfig& config, std::size_t num_nodes, std::uint64_t seed);

  /// Explicit event list (tests, hand-written scenarios). `config` supplies
  /// the process parameters (link loss, drift); events are sorted here.
  FaultPlan(std::vector<FaultEvent> events, std::size_t num_nodes,
            FaultPlanConfig config = {}, std::uint64_t seed = 0);

  /// Timestamped events, sorted by (slot, node, kind).
  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] const FaultPlanConfig& config() const { return config_; }
  [[nodiscard]] std::size_t num_nodes() const { return num_nodes_; }
  /// Seed for the per-link loss-chain streams (derived, not the user seed).
  [[nodiscard]] std::uint64_t link_stream_seed() const { return link_stream_seed_; }

  /// Per-node drift rates (slot fractions per slot); empty when drift is
  /// disabled.
  [[nodiscard]] const std::vector<double>& drift_rates() const { return drift_rates_; }

  [[nodiscard]] bool has_link_loss() const { return config_.link_loss.armed(); }
  [[nodiscard]] bool has_drift() const { return !drift_rates_.empty(); }

  /// Event count of one kind (observability / test convenience).
  [[nodiscard]] std::size_t count(FaultEvent::Kind kind) const;

  /// One-line human-readable description ("crashes=12 recoveries=11 ...").
  [[nodiscard]] std::string summary() const;

 private:
  void sort_events();

  FaultPlanConfig config_;
  std::size_t num_nodes_ = 0;
  std::uint64_t link_stream_seed_ = 0;
  std::vector<FaultEvent> events_;
  std::vector<double> drift_rates_;
};

}  // namespace ttdc::sim
