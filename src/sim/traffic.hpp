// Traffic sources and routing for the slot simulator.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "net/graph.hpp"
#include "net/routing.hpp"
#include "util/rng.hpp"

namespace ttdc::sim {

/// Callback used by traffic sources to inject a packet: (origin, final
/// destination).
using EmitFn = std::function<void(std::size_t, std::size_t)>;

class TrafficSource {
 public:
  /// next_emission() return value meaning "no further emissions, ever".
  static constexpr std::uint64_t kNoEmission = ~std::uint64_t{0};

  virtual ~TrafficSource() = default;
  /// Called at the start of every slot; may emit any number of packets.
  virtual void generate(std::uint64_t slot, util::Xoshiro256& rng, const EmitFn& emit) = 0;

  /// Slot-addressable lookahead — the traffic half of the frame-memoization
  /// contract (sim/fastforward.hpp). A source returning true promises:
  ///
  ///   * generate() NEVER draws from the simulator rng it is handed (the
  ///     source owns a private stream), and
  ///   * next_emission(from) is the exact slot >= from of its next emit()
  ///     call (kNoEmission if none), and that answer does not depend on
  ///     whether generate() is actually invoked for the quiet slots in
  ///     between — so the simulator may skip generate() entirely for any
  ///     window it has proven silent.
  ///
  /// The default (false) marks the source opaque: the per-slot Bernoulli
  /// sources below draw from the simulator stream every slot, so skipping
  /// even a silent slot would desynchronize the run. Fast-forwarding stays
  /// disarmed for opaque sources.
  [[nodiscard]] virtual bool supports_lookahead() const { return false; }
  /// Only meaningful when supports_lookahead(). Sources must be stepped in
  /// slot order, so `from` never precedes a slot already generated.
  [[nodiscard]] virtual std::uint64_t next_emission(std::uint64_t from) const {
    (void)from;
    return kNoEmission;
  }
};

/// Saturated directed flows: each (src, dst) flow keeps the source
/// backlogged — the simulator tells the source how many packets the origin
/// currently holds via the `backlog` probe and the source tops it up to 1.
/// This reproduces the paper's worst case: "each neighbor has a packet to
/// transmit" in every eligible slot.
class SaturatedFlows final : public TrafficSource {
 public:
  using BacklogFn = std::function<std::size_t(std::size_t)>;

  SaturatedFlows(std::vector<std::pair<std::size_t, std::size_t>> flows, BacklogFn backlog)
      : flows_(std::move(flows)), backlog_(std::move(backlog)) {}

  void generate(std::uint64_t, util::Xoshiro256&, const EmitFn& emit) override {
    for (const auto& [src, dst] : flows_) {
      if (backlog_(src) == 0) emit(src, dst);
    }
  }

 private:
  std::vector<std::pair<std::size_t, std::size_t>> flows_;
  BacklogFn backlog_;
};

/// Light random traffic: each node independently generates a packet with
/// probability `rate` per slot, destined to a uniformly random other node.
class BernoulliTraffic final : public TrafficSource {
 public:
  BernoulliTraffic(std::size_t num_nodes, double rate) : n_(num_nodes), rate_(rate) {}

  void generate(std::uint64_t, util::Xoshiro256& rng, const EmitFn& emit) override {
    for (std::size_t v = 0; v < n_; ++v) {
      if (rng.bernoulli(rate_)) {
        std::size_t dst = static_cast<std::size_t>(rng.below(n_ - 1));
        if (dst >= v) ++dst;
        emit(v, dst);
      }
    }
  }

 private:
  std::size_t n_;
  double rate_;
};

/// Convergecast: every non-sink node generates toward the sink with
/// probability `rate` per slot — the canonical WSN data-collection load.
class ConvergecastTraffic final : public TrafficSource {
 public:
  ConvergecastTraffic(std::size_t num_nodes, std::size_t sink, double rate)
      : n_(num_nodes), sink_(sink), rate_(rate) {}

  void generate(std::uint64_t, util::Xoshiro256& rng, const EmitFn& emit) override {
    for (std::size_t v = 0; v < n_; ++v) {
      if (v != sink_ && rng.bernoulli(rate_)) emit(v, sink_);
    }
  }

 private:
  std::size_t n_;
  std::size_t sink_;
  double rate_;
};

/// Fixed-size batch arrivals: exactly `batch` packets per slot from
/// uniformly random origins to a fixed sink. Unlike the per-node Bernoulli
/// sources above, generation costs O(batch) per slot rather than O(n) — at
/// metropolitan scale (n = 10^4..10^6) a per-node coin flip would dominate
/// the slot itself, hiding the pipeline costs the megascale bench measures.
class BatchArrivalTraffic final : public TrafficSource {
 public:
  BatchArrivalTraffic(std::size_t num_nodes, std::size_t sink, std::size_t batch)
      : n_(num_nodes), sink_(sink), batch_(batch) {}

  void generate(std::uint64_t, util::Xoshiro256& rng, const EmitFn& emit) override {
    for (std::size_t i = 0; i < batch_; ++i) {
      std::size_t origin = static_cast<std::size_t>(rng.below(n_ - 1));
      if (origin >= sink_) ++origin;  // exclude the sink as an origin
      emit(origin, sink_);
    }
  }

 private:
  std::size_t n_;
  std::size_t sink_;
  std::size_t batch_;
};

/// Slot-addressable convergecast: the same aggregate load as
/// ConvergecastTraffic (every non-sink node sends to the sink at `rate`
/// packets per slot), reformulated as an event stream so the fast-forward
/// engine can query it. Arrival slots are sampled by geometric gaps on the
/// AGGREGATE process (P(any arrival in a slot) = 1 - (1-rate)^(n-1)), each
/// arrival carrying one packet from a uniformly random non-sink origin — at
/// most one packet per slot, from the source's own SplitMix-seeded stream,
/// never the simulator's. The realization is therefore a pure function of
/// (seed, arrival index): identical whether the simulator steps every slot
/// or skips the proven-silent stretches between arrivals, which is exactly
/// the supports_lookahead() contract.
class LookaheadConvergecastTraffic final : public TrafficSource {
 public:
  LookaheadConvergecastTraffic(std::size_t num_nodes, std::size_t sink, double rate,
                               std::uint64_t seed);

  void generate(std::uint64_t slot, util::Xoshiro256&, const EmitFn& emit) override {
    while (next_slot_ == slot) {
      emit(pending_origin_, sink_);
      advance();
    }
  }

  [[nodiscard]] bool supports_lookahead() const override { return true; }
  [[nodiscard]] std::uint64_t next_emission(std::uint64_t from) const override {
    (void)from;  // stepped in slot order, so next_slot_ >= from always
    return next_slot_;
  }

 private:
  void advance();
  std::uint64_t sample_gap();
  std::size_t sample_origin();

  std::size_t n_;
  std::size_t sink_;
  double p_any_;  // P(at least one arrival in a slot)
  util::Xoshiro256 rng_;
  std::uint64_t next_slot_ = kNoEmission;
  std::size_t pending_origin_ = 0;
};

/// Next-hop routing (shortest hop paths) now lives in net/routing.hpp as a
/// lazily cached table; the simulator invalidates it on topology change.
using RoutingTable = net::RoutingTable;

}  // namespace ttdc::sim
