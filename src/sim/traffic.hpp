// Traffic sources and routing for the slot simulator.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "net/graph.hpp"
#include "net/routing.hpp"
#include "util/rng.hpp"

namespace ttdc::sim {

/// Callback used by traffic sources to inject a packet: (origin, final
/// destination).
using EmitFn = std::function<void(std::size_t, std::size_t)>;

class TrafficSource {
 public:
  virtual ~TrafficSource() = default;
  /// Called at the start of every slot; may emit any number of packets.
  virtual void generate(std::uint64_t slot, util::Xoshiro256& rng, const EmitFn& emit) = 0;
};

/// Saturated directed flows: each (src, dst) flow keeps the source
/// backlogged — the simulator tells the source how many packets the origin
/// currently holds via the `backlog` probe and the source tops it up to 1.
/// This reproduces the paper's worst case: "each neighbor has a packet to
/// transmit" in every eligible slot.
class SaturatedFlows final : public TrafficSource {
 public:
  using BacklogFn = std::function<std::size_t(std::size_t)>;

  SaturatedFlows(std::vector<std::pair<std::size_t, std::size_t>> flows, BacklogFn backlog)
      : flows_(std::move(flows)), backlog_(std::move(backlog)) {}

  void generate(std::uint64_t, util::Xoshiro256&, const EmitFn& emit) override {
    for (const auto& [src, dst] : flows_) {
      if (backlog_(src) == 0) emit(src, dst);
    }
  }

 private:
  std::vector<std::pair<std::size_t, std::size_t>> flows_;
  BacklogFn backlog_;
};

/// Light random traffic: each node independently generates a packet with
/// probability `rate` per slot, destined to a uniformly random other node.
class BernoulliTraffic final : public TrafficSource {
 public:
  BernoulliTraffic(std::size_t num_nodes, double rate) : n_(num_nodes), rate_(rate) {}

  void generate(std::uint64_t, util::Xoshiro256& rng, const EmitFn& emit) override {
    for (std::size_t v = 0; v < n_; ++v) {
      if (rng.bernoulli(rate_)) {
        std::size_t dst = static_cast<std::size_t>(rng.below(n_ - 1));
        if (dst >= v) ++dst;
        emit(v, dst);
      }
    }
  }

 private:
  std::size_t n_;
  double rate_;
};

/// Convergecast: every non-sink node generates toward the sink with
/// probability `rate` per slot — the canonical WSN data-collection load.
class ConvergecastTraffic final : public TrafficSource {
 public:
  ConvergecastTraffic(std::size_t num_nodes, std::size_t sink, double rate)
      : n_(num_nodes), sink_(sink), rate_(rate) {}

  void generate(std::uint64_t, util::Xoshiro256& rng, const EmitFn& emit) override {
    for (std::size_t v = 0; v < n_; ++v) {
      if (v != sink_ && rng.bernoulli(rate_)) emit(v, sink_);
    }
  }

 private:
  std::size_t n_;
  std::size_t sink_;
  double rate_;
};

/// Fixed-size batch arrivals: exactly `batch` packets per slot from
/// uniformly random origins to a fixed sink. Unlike the per-node Bernoulli
/// sources above, generation costs O(batch) per slot rather than O(n) — at
/// metropolitan scale (n = 10^4..10^6) a per-node coin flip would dominate
/// the slot itself, hiding the pipeline costs the megascale bench measures.
class BatchArrivalTraffic final : public TrafficSource {
 public:
  BatchArrivalTraffic(std::size_t num_nodes, std::size_t sink, std::size_t batch)
      : n_(num_nodes), sink_(sink), batch_(batch) {}

  void generate(std::uint64_t, util::Xoshiro256& rng, const EmitFn& emit) override {
    for (std::size_t i = 0; i < batch_; ++i) {
      std::size_t origin = static_cast<std::size_t>(rng.below(n_ - 1));
      if (origin >= sink_) ++origin;  // exclude the sink as an origin
      emit(origin, sink_);
    }
  }

 private:
  std::size_t n_;
  std::size_t sink_;
  std::size_t batch_;
};

/// Next-hop routing (shortest hop paths) now lives in net/routing.hpp as a
/// lazily cached table; the simulator invalidates it on topology change.
using RoutingTable = net::RoutingTable;

}  // namespace ttdc::sim
