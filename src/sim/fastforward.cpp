// The frame-level fast-forward engine (contract in sim/fastforward.hpp).
//
// Four pieces, all private methods of Simulator so they can touch the
// per-slot state directly:
//
//   try_fast_forward  — the veto chain + memo lookup at a frame boundary;
//   frame_fingerprint — hash of everything that determines the frame;
//   verify_entry      — EXACT pre-state comparison (hashes only route to a
//                       candidate; equality is what licenses a replay);
//   record_frame      — step the frame normally while snapshotting, then
//                       diff into a memo entry unless the frame was tainted;
//   replay_frame      — apply a verified entry's delta, k frames at a time
//                       for self-loop entries.
//
// Exactness notes for the fault processes (why the taint rules are what
// they are): an armed Gilbert-Elliott channel only advances a link's chain
// inside ge_lost(), whose lazy catch-up is a closed-form function of the
// slots elapsed since the link's last use — so skipping slots in which no
// transmission touched the link yields the identical chain state, and
// memoizing only zero-transmission frames (the GE/drift taint) keeps every
// link stream byte-aligned with a slot-by-slot run. Clock drift is a pure
// function of now_ consulted only on transmissions, covered by the same
// rule. Jam frames memoize fine: jammers sit in transmitting_ (draining
// transmit power into the per-node deltas) without ever reaching the
// reception path.

#include "sim/simulator.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace ttdc::sim {

namespace {
constexpr auto kTransmitIdx = static_cast<std::size_t>(RadioState::kTransmit);
constexpr auto kListenIdx = static_cast<std::size_t>(RadioState::kListen);
}  // namespace

bool Simulator::try_fast_forward(std::uint64_t period, std::uint64_t run_end) {
  FastForwardState& ff = *ff_;
  // Veto chain — each of these is an invalidation source from the contract
  // in fastforward.hpp; any hit means this frame must run slot-accurately.
  if (config_.recorder != nullptr && obs::FlightRecorder::enabled()) {
    ++ff.stats.fallback_recorder;
    if (ff.m_fallback_recorder) ff.m_fallback_recorder->inc();
    return false;
  }
  const std::uint64_t frame_end = now_ + period;
  std::uint64_t next_fault = TrafficSource::kNoEmission;
  if (fault_world_) {
    const auto& events = config_.fault_plan->events();
    if (fault_cursor_ < events.size()) {
      next_fault = events[fault_cursor_].slot;
      if (next_fault < frame_end) {
        ++ff.stats.fallback_fault_event;
        if (ff.m_fallback_fault_event) ff.m_fallback_fault_event->inc();
        return false;
      }
    }
  }
  const std::uint64_t next_arrival = traffic_.next_emission(now_);
  if (next_arrival < frame_end) {
    ++ff.stats.fallback_arrival;
    if (ff.m_fallback_arrival) ff.m_fallback_arrival->inc();
    return false;
  }

  const std::uint64_t key = frame_fingerprint(period);
  auto it = ff.memo.find(key);
  if (it == ff.memo.end()) {
    // Miss: the frame runs slot-accurately inside record_frame, so it is
    // handled either way — the memo just may gain an entry for next time.
    record_frame(key, period);
    return true;
  }
  if (!verify_entry(it->second)) {
    // Hash collision or stale entry under an unhashed state change: never
    // replay, re-record under the same key (the world that is actually
    // present wins the slot).
    ++ff.stats.fallback_verify;
    if (ff.m_fallback_verify) ff.m_fallback_verify->inc();
    record_frame(key, period);
    return true;
  }
  const FastForwardState::Entry& entry = it->second;

  // Replay width: a self-loop frame leaves the world exactly as it found it
  // (battery aside), so it can stand in for every whole frame up to the
  // next event horizon. Non-self-loop frames replay one at a time — their
  // post-state differs from their pre-state, so chaining them would need a
  // fresh lookup anyway.
  std::uint64_t k = 1;
  if (entry.self_loop) {
    k = (run_end - now_) / period;  // >= 1: run() checked a whole frame fits
    if (next_arrival != TrafficSource::kNoEmission) {
      k = std::min(k, (next_arrival - now_) / period);
    }
    if (next_fault != TrafficSource::kNoEmission) {
      k = std::min(k, (next_fault - now_) / period);
    }
  }
  // Battery headroom: replay must stop strictly before any node's budget
  // would cross zero — the death slot (and everything downstream of it)
  // needs slot accuracy. Integer drains make this a pure division.
  if (config_.battery_mj > 0.0) {
    std::uint64_t k_batt = k;
    const std::size_t n = graph_.num_nodes();
    for (std::size_t v = 0; v < n && k_batt > 0; ++v) {
      const std::int64_t drain = entry.battery_drain[v];
      if (drain <= 0) continue;
      const auto headroom = static_cast<std::uint64_t>((battery_[v] - 1) / drain);
      k_batt = std::min(k_batt, headroom);
    }
    if (k_batt == 0) {
      ++ff.stats.fallback_battery;
      if (ff.m_fallback_battery) ff.m_fallback_battery->inc();
      return false;
    }
    k = k_batt;
  }
  replay_frame(entry, period, k);
  return true;
}

std::uint64_t Simulator::frame_fingerprint(std::uint64_t period) const {
  std::uint64_t h = util::kFnvOffsetBasis;
  h = util::fnv1a64_u64(h, ff_->graph_epoch);
  h = util::fnv1a64_u64(h, period);
  const auto fold_set = [&h](const util::SlotSet& s) {
    h = util::fnv1a64_u64(h, s.count());
    s.for_each([&h](std::size_t v) { h = util::fnv1a64_u64(h, v); });
  };
  fold_set(dead_);
  fold_set(prev_awake_);
  if (fault_armed_) {
    fold_set(down_);
    fold_set(jamming_);
  }
  // Queue contents, with packet creation times folded as AGES so two frames
  // at different absolute slots can share an entry. Battery levels are
  // deliberately NOT hashed: drains do not depend on them, and the replay
  // headroom check handles the death boundary instead — hashing them would
  // make every frame of a draining network unique and kill the memo.
  backlogged_.for_each([&](std::size_t v) {
    const PacketQueue& q = queues_[v];
    h = util::fnv1a64_u64(h, v);
    h = util::fnv1a64_u64(h, q.size());
    for (std::size_t i = 0; i < q.size(); ++i) {
      const Packet& p = q.at(i);
      h = util::fnv1a64_u64(h, p.origin);
      h = util::fnv1a64_u64(h, p.destination);
      h = util::fnv1a64_u64(h, p.hops);
      h = util::fnv1a64_u64(h, now_ - p.created_slot);
    }
  });
  return h;
}

bool Simulator::verify_entry(const FastForwardState::Entry& entry) const {
  const auto match_set = [](const util::SlotSet& s,
                            const std::vector<std::uint32_t>& members) {
    if (s.count() != members.size()) return false;
    for (const std::uint32_t v : members) {
      if (!s.test(v)) return false;
    }
    return true;
  };
  if (!match_set(dead_, entry.pre_dead)) return false;
  if (!match_set(prev_awake_, entry.pre_prev_awake)) return false;
  if (fault_armed_) {
    if (!match_set(down_, entry.pre_down)) return false;
    if (!match_set(jamming_, entry.pre_jamming)) return false;
  }
  if (backlogged_.count() != entry.pre_queues.size()) return false;
  for (const FastForwardState::PreQueue& pq : entry.pre_queues) {
    if (!backlogged_.test(pq.node)) return false;
    const PacketQueue& q = queues_[pq.node];
    if (q.size() != pq.packets.size()) return false;
    for (std::size_t i = 0; i < pq.packets.size(); ++i) {
      const Packet& p = q.at(i);
      const FastForwardState::PrePacket& pre = pq.packets[i];
      if (p.origin != static_cast<std::size_t>(pre.origin) ||
          p.destination != static_cast<std::size_t>(pre.destination) ||
          p.hops != pre.hops || now_ - p.created_slot != pre.age) {
        return false;
      }
    }
  }
  return true;
}

void Simulator::record_frame(std::uint64_t key, std::uint64_t period) {
  FastForwardState& ff = *ff_;
  const std::size_t n = graph_.num_nodes();
  const bool battery_armed = config_.battery_mj > 0.0;
  FastForwardState::Entry entry;

  // --- pre-state capture (exactly what verify_entry re-checks) ---
  const auto members_of = [](const util::SlotSet& s, std::vector<std::uint32_t>& out) {
    out.clear();
    s.for_each([&out](std::size_t v) { out.push_back(static_cast<std::uint32_t>(v)); });
  };
  members_of(dead_, entry.pre_dead);
  members_of(prev_awake_, entry.pre_prev_awake);
  if (fault_armed_) {
    members_of(down_, entry.pre_down);
    members_of(jamming_, entry.pre_jamming);
  }
  ff.pre_packet_pos.clear();
  backlogged_.for_each([&](std::size_t v) {
    FastForwardState::PreQueue pq;
    pq.node = static_cast<std::uint32_t>(v);
    const PacketQueue& q = queues_[v];
    pq.packets.reserve(q.size());
    for (std::size_t i = 0; i < q.size(); ++i) {
      const Packet& p = q.at(i);
      FastForwardState::PrePacket pre;
      pre.age = now_ - p.created_slot;
      pre.origin = static_cast<std::uint32_t>(p.origin);
      pre.destination = static_cast<std::uint32_t>(p.destination);
      pre.hops = p.hops;
      pq.packets.push_back(pre);
      ff.pre_packet_pos.emplace(
          p.id, std::make_pair(static_cast<std::uint32_t>(entry.pre_queues.size()),
                               static_cast<std::uint32_t>(i)));
    }
    entry.pre_queues.push_back(std::move(pq));
  });

  // --- snapshots the post-frame diff is taken against ---
  const util::Xoshiro256 rng_before = rng_;
  const std::uint64_t pre_transmissions = stats_.transmissions;
  const std::uint64_t pre_hop_successes = stats_.hop_successes;
  const std::uint64_t pre_delivered = stats_.delivered;
  const std::uint64_t pre_collisions = stats_.collisions;
  const std::uint64_t pre_receiver_asleep = stats_.receiver_asleep;
  const std::uint64_t pre_queue_drops = stats_.queue_drops;
  const std::uint64_t pre_generated = stats_.generated;
  const std::uint64_t pre_deaths = stats_.deaths;
  const std::size_t pre_latency_count = stats_.latency.count();
  const std::size_t pre_fault_cursor = fault_cursor_;
  if (battery_armed) ff.pre_battery.assign(battery_.begin(), battery_.end());
  ff.pre_state_tx.resize(n);
  ff.pre_state_listen.resize(n);
  ff.pre_wakes.resize(n);
  ff.pre_delivered_by_origin.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    ff.pre_state_tx[v] = stats_.state_slots[v][kTransmitIdx];
    ff.pre_state_listen[v] = stats_.state_slots[v][kListenIdx];
    ff.pre_wakes[v] = stats_.wake_transitions[v];
    ff.pre_delivered_by_origin[v] = stats_.delivered_by_origin[v];
  }

  // --- the frame itself, slot-accurate ---
  for (std::uint64_t s = 0; s < period; ++s) step();

  // --- taint checks: anything a replay could not reproduce exactly ---
  // rng_ advancing means a per-slot draw happened on some path the arming
  // conditions did not rule out; generation/deaths/fault-cursor movement
  // mean the frame was not the silent, event-free window the veto chain
  // promised; and under an armed GE/drift channel any transmission consumed
  // per-link stream state (see the header comment).
  bool tainted = !(rng_before == rng_);
  tainted = tainted || stats_.generated != pre_generated;
  tainted = tainted || stats_.deaths != pre_deaths;
  tainted = tainted || fault_cursor_ != pre_fault_cursor;
  if (fault_ge_ || fault_drift_) {
    tainted = tainted || stats_.transmissions != pre_transmissions;
  }
  if (tainted) {
    ++ff.stats.frames_discarded;
    return;
  }

  // --- delta construction ---
  entry.transmissions = stats_.transmissions - pre_transmissions;
  entry.hop_successes = stats_.hop_successes - pre_hop_successes;
  entry.delivered = stats_.delivered - pre_delivered;
  entry.collisions = stats_.collisions - pre_collisions;
  entry.receiver_asleep = stats_.receiver_asleep - pre_receiver_asleep;
  entry.queue_drops = stats_.queue_drops - pre_queue_drops;
  const std::vector<std::uint64_t>& samples = stats_.latency.samples();
  entry.latency_samples.assign(
      samples.begin() + static_cast<std::ptrdiff_t>(pre_latency_count), samples.end());
  for (std::size_t v = 0; v < n; ++v) {
    const auto tx = static_cast<std::uint32_t>(stats_.state_slots[v][kTransmitIdx] -
                                               ff.pre_state_tx[v]);
    const auto listen = static_cast<std::uint32_t>(stats_.state_slots[v][kListenIdx] -
                                                   ff.pre_state_listen[v]);
    const auto wakes =
        static_cast<std::uint32_t>(stats_.wake_transitions[v] - ff.pre_wakes[v]);
    if (tx != 0 || listen != 0 || wakes != 0) {
      entry.states.push_back({static_cast<std::uint32_t>(v), tx, listen, wakes});
    }
    const std::uint64_t dlv = stats_.delivered_by_origin[v] - ff.pre_delivered_by_origin[v];
    if (dlv != 0) {
      entry.delivered_by_origin.push_back(
          {static_cast<std::uint32_t>(v), static_cast<std::uint32_t>(dlv)});
    }
  }
  if (battery_armed) {
    entry.battery_drain.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      entry.battery_drain[v] = ff.pre_battery[v] - battery_[v];
    }
  }
  // Post-queue mapping by packet id. A silent frame generates nothing, so
  // every surviving packet must map to a pre-state one — a miss means the
  // frame was not what the veto chain promised, and the entry is discarded
  // rather than guessed at.
  bool mappable = true;
  backlogged_.for_each([&](std::size_t v) {
    FastForwardState::PostQueue post;
    post.node = static_cast<std::uint32_t>(v);
    const PacketQueue& q = queues_[v];
    post.packets.reserve(q.size());
    for (std::size_t i = 0; i < q.size(); ++i) {
      const Packet& p = q.at(i);
      const auto it = ff.pre_packet_pos.find(p.id);
      if (it == ff.pre_packet_pos.end()) {
        mappable = false;
        return;
      }
      FastForwardState::PostPacket pp;
      pp.pre_queue = it->second.first;
      pp.pre_index = it->second.second;
      pp.hops_inc =
          p.hops - entry.pre_queues[pp.pre_queue].packets[pp.pre_index].hops;
      post.packets.push_back(pp);
    }
    entry.post_queues.push_back(std::move(post));
  });
  if (!mappable) {
    ++ff.stats.frames_discarded;
    return;
  }
  members_of(prev_awake_, entry.end_prev_awake);
  entry.self_loop = entry.pre_queues.empty() && entry.post_queues.empty() &&
                    entry.latency_samples.empty() && entry.delivered == 0 &&
                    entry.end_prev_awake == entry.pre_prev_awake;

  if (ff.memo.size() >= FastForwardState::kMemoCapacity &&
      ff.memo.find(key) == ff.memo.end()) {
    ff.memo.clear();
    ++ff.stats.memo_evictions;
  }
  ff.memo[key] = std::move(entry);
  ++ff.stats.frames_recorded;
  if (ff.m_frames_recorded) ff.m_frames_recorded->inc();
}

void Simulator::replay_frame(const FastForwardState::Entry& entry, std::uint64_t period,
                             std::uint64_t k) {
  TTDC_PROF_SCOPE("sim.ff.replay");
  FastForwardState& ff = *ff_;
  TTDC_DCHECK(entry.self_loop || k == 1, "non-self-loop entry replayed ", k, " frames");

  if (!entry.self_loop) {
    // Queue rewrite: gather every pre-queue's live packets first (a post
    // packet may have hopped between queues), then clear, then push the
    // mapped post-state. Live ids/origins/created_slots flow through from
    // the current packets; only positions and hop counts come from the
    // entry.
    auto& scratch = ff.rewrite_scratch;
    scratch.resize(entry.pre_queues.size());
    for (std::size_t qi = 0; qi < entry.pre_queues.size(); ++qi) {
      const std::size_t node = entry.pre_queues[qi].node;
      const PacketQueue& q = queues_[node];
      scratch[qi].clear();
      scratch[qi].reserve(q.size());
      for (std::size_t i = 0; i < q.size(); ++i) scratch[qi].push_back(q.at(i));
      queues_[node].clear();
      backlogged_.reset(node);
      unroutable_head_.reset(node);
    }
    for (const FastForwardState::PostQueue& post : entry.post_queues) {
      for (const FastForwardState::PostPacket& pp : post.packets) {
        Packet p = scratch[pp.pre_queue][pp.pre_index];
        p.hops += pp.hops_inc;
        [[maybe_unused]] const bool pushed = queues_[post.node].push(p);
        TTDC_DCHECK(pushed, "fast-forward replay overflowed node ", post.node,
                    "'s queue (capacity ", queues_[post.node].capacity(), ")");
      }
      backlogged_.set(post.node);
      refresh_head_routability(post.node);
    }
  }

  stats_.transmissions += entry.transmissions * k;
  stats_.hop_successes += entry.hop_successes * k;
  stats_.delivered += entry.delivered * k;
  stats_.collisions += entry.collisions * k;
  stats_.receiver_asleep += entry.receiver_asleep * k;
  stats_.queue_drops += entry.queue_drops * k;
  if (hot_.transmissions && entry.transmissions) hot_.transmissions->inc(entry.transmissions * k);
  if (hot_.hop_successes && entry.hop_successes) hot_.hop_successes->inc(entry.hop_successes * k);
  if (hot_.delivered && entry.delivered) hot_.delivered->inc(entry.delivered * k);
  if (hot_.collisions && entry.collisions) hot_.collisions->inc(entry.collisions * k);
  if (hot_.receiver_asleep && entry.receiver_asleep) {
    hot_.receiver_asleep->inc(entry.receiver_asleep * k);
  }
  if (hot_.queue_drops && entry.queue_drops) hot_.queue_drops->inc(entry.queue_drops * k);
  for (const std::uint64_t sample : entry.latency_samples) {
    stats_.latency.record(sample);
    if (hot_.latency) hot_.latency->observe(static_cast<double>(sample));
  }
  for (const FastForwardState::OriginDelta& d : entry.delivered_by_origin) {
    stats_.delivered_by_origin[d.node] += static_cast<std::uint64_t>(d.delivered) * k;
  }
  for (const FastForwardState::NodeStateDelta& d : entry.states) {
    stats_.state_slots[d.node][kTransmitIdx] +=
        static_cast<std::uint64_t>(d.transmit_slots) * k;
    stats_.state_slots[d.node][kListenIdx] +=
        static_cast<std::uint64_t>(d.listen_slots) * k;
    stats_.wake_transitions[d.node] += static_cast<std::uint64_t>(d.wake_transitions) * k;
  }
  if (config_.battery_mj > 0.0) {
    const std::size_t n = graph_.num_nodes();
    for (std::size_t v = 0; v < n; ++v) {
      battery_[v] -= entry.battery_drain[v] * static_cast<std::int64_t>(k);
    }
  }
  prev_awake_.reset_all();
  for (const std::uint32_t v : entry.end_prev_awake) prev_awake_.set(v);

  now_ += k * period;
  stats_.slots_run += k * period;
  ff.stats.frames_replayed += k;
  ff.stats.slots_replayed += k * period;
  if (ff.m_frames_replayed) ff.m_frames_replayed->inc(k);
  if (ff.m_slots_replayed) ff.m_slots_replayed->inc(k * period);
}

}  // namespace ttdc::sim
