// Radio states and the slot-level energy model.
//
// Power numbers default to CC2420-class hardware (the canonical WSN radio
// of the paper's era): TX at 0 dBm ~ 17.4 mA, RX/listen ~ 18.8 mA at 3.3 V,
// sleep ~ 1 uA. Idle listening costing as much as receiving is exactly the
// observation (§1) that motivates duty cycling.
#pragma once

#include <cstdint>

namespace ttdc::sim {

enum class RadioState : std::uint8_t { kTransmit, kReceive, kListen, kSleep };

struct EnergyModel {
  double transmit_mw = 57.4;  // 17.4 mA * 3.3 V
  double receive_mw = 62.0;   // 18.8 mA * 3.3 V
  double listen_mw = 62.0;    // idle listening burns like receiving
  double sleep_mw = 0.003;    // ~1 uA
  double slot_seconds = 0.01; // 10 ms slots
  /// Energy paid per sleep -> awake transition (oscillator start + PLL
  /// lock, ~1 ms at RX power). Makes scattered active slots strictly worse
  /// than contiguous ones at equal duty cycle.
  double wakeup_mj = 0.06;

  /// Energy in millijoules for spending `slots` slots in `state`.
  [[nodiscard]] double energy_mj(RadioState state, std::uint64_t slots) const {
    double mw = 0.0;
    switch (state) {
      case RadioState::kTransmit: mw = transmit_mw; break;
      case RadioState::kReceive: mw = receive_mw; break;
      case RadioState::kListen: mw = listen_mw; break;
      case RadioState::kSleep: mw = sleep_mw; break;
    }
    return mw * slot_seconds * static_cast<double>(slots);
  }
};

}  // namespace ttdc::sim
