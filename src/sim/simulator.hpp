// The slot-synchronous WSN simulator.
//
// Implements the paper's system model (§3) verbatim: time is a sequence of
// slots; in each slot a MAC protocol decides who transmits and who can
// receive; a transmission x -> y succeeds iff y can receive, y is not
// itself transmitting, and x is the ONLY transmitter in y's neighborhood
// (collision-at-receiver, no capture). Energy is accounted per node per
// slot by radio state.
//
// Topology can be swapped mid-run (set_graph) to model churn; topology-
// transparent MACs keep working with no reconfiguration, which is the point
// of the paper.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "net/graph.hpp"
#include "obs/metrics.hpp"
#include "sim/mac.hpp"
#include "sim/packet.hpp"
#include "sim/stats.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"

namespace ttdc::sim {

/// A single simulator event, delivered to the optional trace hook as it
/// happens (ns-2/OMNeT-style observability for debugging and replay).
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kGenerated,      // node = origin, peer = final destination
    kTransmit,       // node = transmitter, peer = intended next hop
    kHopDelivered,   // node = receiver, peer = transmitter (packet forwarded on)
    kFinalDelivered, // node = receiver, peer = origin
    kCollision,      // node = intended receiver, peer = transmitter
    kReceiverAsleep, // node = intended receiver, peer = transmitter
    kChannelLoss,    // node = intended receiver, peer = transmitter
    kSyncLoss,       // node = intended receiver, peer = transmitter
    kQueueDrop,      // node = dropping node, peer = packet origin
  };
  Kind kind;
  std::uint64_t slot;
  std::size_t node;
  std::size_t peer;
  std::uint64_t packet_id;
};

struct SimConfig {
  std::uint64_t seed = 0x5eed;
  std::size_t queue_capacity = 64;
  /// If true, packets whose next hop is unreachable are dropped (counted as
  /// queue drops); otherwise they stall at the head of the queue.
  bool drop_unroutable = true;
  /// Channel imperfections. The paper assumes a perfect slotted channel
  /// ("we assume an efficient synchronization scheme is available"); these
  /// knobs probe how gracefully the guarantees degrade when it is not.
  /// An otherwise-successful reception is lost with probability
  /// packet_error_rate (fading/noise), and independently with probability
  /// sync_miss_rate (transmitter misaligned with the slot grid).
  double packet_error_rate = 0.0;
  double sync_miss_rate = 0.0;
  /// Optional per-event hook; leave empty for zero overhead on the hot
  /// path beyond a branch. Structured sinks (JSONL, ring buffer, filters,
  /// fan-out) live in obs/trace.hpp and plug in via their fn() adapters.
  std::function<void(const TraceEvent&)> trace;
  /// Optional metrics registry. When set, the simulator registers
  /// `ttdc_sim_*_total` counters and a `ttdc_sim_latency_slots` histogram
  /// at construction and bumps them live on the hot path (one pre-resolved
  /// relaxed atomic increment per event); leave null for zero overhead.
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-node battery budget in millijoules; 0 means unlimited. When a
  /// node's budget (drained per slot by radio state and per wakeup, using
  /// `energy`) reaches zero the node dies: it stops generating,
  /// transmitting, receiving, and draining. This is the network-lifetime
  /// model duty cycling exists to optimize.
  double battery_mj = 0.0;
  EnergyModel energy;
};

class Simulator {
 public:
  Simulator(net::Graph graph, MacProtocol& mac, TrafficSource& traffic,
            const SimConfig& config = {});

  /// Runs `slots` additional slots (cumulative; stats keep accumulating).
  void run(std::uint64_t slots);

  /// Swaps the topology (churn). Rebuilds routing; notifies the MAC.
  /// The node count must not change.
  void set_graph(net::Graph graph);

  [[nodiscard]] const SimStats& stats() const { return stats_; }
  [[nodiscard]] const net::Graph& graph() const { return graph_; }
  [[nodiscard]] std::uint64_t now() const { return now_; }

  /// Backlog probe for SaturatedFlows.
  [[nodiscard]] std::size_t queue_size(std::size_t node) const {
    return queues_[node].size();
  }

  /// Battery state (only meaningful when config.battery_mj > 0).
  [[nodiscard]] bool is_alive(std::size_t node) const { return !dead_.test(node); }
  [[nodiscard]] std::size_t alive_count() const { return dead_.size() - dead_.count(); }
  [[nodiscard]] double remaining_battery_mj(std::size_t node) const {
    return battery_[node];
  }

 private:
  void inject(std::size_t origin, std::size_t destination);
  void step();
  /// Trace emission stays a single predictable branch (`tracing_`, fixed at
  /// construction) when tracing is disabled; the std::function indirection
  /// is only paid on the enabled path.
  void trace(TraceEvent::Kind kind, std::size_t node, std::size_t peer,
             std::uint64_t packet_id) {
    if (!tracing_) return;
    config_.trace(TraceEvent{kind, now_, node, peer, packet_id});
  }

  /// Live hot-path metric handles (all null when config.metrics is null).
  struct HotMetrics {
    obs::Counter* generated = nullptr;
    obs::Counter* transmissions = nullptr;
    obs::Counter* hop_successes = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Counter* collisions = nullptr;
    obs::Counter* receiver_asleep = nullptr;
    obs::Counter* channel_losses = nullptr;
    obs::Counter* sync_losses = nullptr;
    obs::Counter* queue_drops = nullptr;
    obs::Histogram* latency = nullptr;
  };

  net::Graph graph_;
  MacProtocol& mac_;
  TrafficSource& traffic_;
  SimConfig config_;
  util::Xoshiro256 rng_;
  RoutingTable routing_;
  std::vector<PacketQueue> queues_;
  SimStats stats_;
  HotMetrics hot_;
  bool tracing_ = false;
  std::uint64_t now_ = 0;
  std::uint64_t next_packet_id_ = 0;

  // Per-slot scratch, kept here to avoid reallocation.
  std::vector<std::size_t> tx_nodes_;
  std::vector<std::size_t> tx_targets_;
  util::DynamicBitset transmitting_;
  std::vector<bool> was_asleep_;  // previous-slot radio state, for wakeup accounting
  std::vector<double> battery_;   // remaining mJ per node (battery_mj > 0 only)
  util::DynamicBitset dead_;      // depleted nodes
};

}  // namespace ttdc::sim
