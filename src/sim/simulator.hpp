// The slot-synchronous WSN simulator.
//
// Implements the paper's system model (§3) verbatim: time is a sequence of
// slots; in each slot a MAC protocol decides who transmits and who can
// receive; a transmission x -> y succeeds iff y can receive, y is not
// itself transmitting, and x is the ONLY transmitter in y's neighborhood
// (collision-at-receiver, no capture). Energy is accounted per node per
// slot by radio state.
//
// The per-slot pipeline operates on whole node-sets (DynamicBitsets) rather
// than individual nodes — the batched formulation the paper uses
// analytically (per-slot transmitter set T[i] and receiver set R[i]) mapped
// onto word-parallel kernels. The legacy node-at-a-time pipeline is kept
// behind SimConfig::force_scalar_pipeline as the differential-testing
// reference; both produce bit-identical SimStats. See DESIGN.md §8.
//
// Topology can be swapped mid-run (set_graph) to model churn; topology-
// transparent MACs keep working with no reconfiguration, which is the point
// of the paper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/graph.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/fastforward.hpp"
#include "sim/fault.hpp"
#include "sim/mac.hpp"
#include "sim/packet.hpp"
#include "sim/stats.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"
#include "util/slot_set.hpp"

namespace ttdc::net {
class DomainGrid;  // net/domain_grid.hpp
}

namespace ttdc::sim {

/// A single simulator event, delivered to the optional trace hook as it
/// happens (ns-2/OMNeT-style observability for debugging and replay).
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kGenerated,      // node = origin, peer = final destination
    kTransmit,       // node = transmitter, peer = intended next hop
    kHopDelivered,   // node = receiver, peer = transmitter (packet forwarded on)
    kFinalDelivered, // node = receiver, peer = origin
    kCollision,      // node = intended receiver, peer = transmitter
    kReceiverAsleep, // node = intended receiver, peer = transmitter
    kChannelLoss,    // node = intended receiver, peer = transmitter
    kSyncLoss,       // node = intended receiver, peer = transmitter
    kQueueDrop,      // node = dropping node, peer = packet origin
  };
  Kind kind;
  std::uint64_t slot;
  std::size_t node;
  std::size_t peer;
  std::uint64_t packet_id;
};

struct SimConfig {
  std::uint64_t seed = 0x5eed;
  std::size_t queue_capacity = 64;
  /// If true, packets whose next hop is unreachable are dropped (counted as
  /// queue drops); otherwise they stall at the head of the queue.
  bool drop_unroutable = true;
  /// Channel imperfections. The paper assumes a perfect slotted channel
  /// ("we assume an efficient synchronization scheme is available"); these
  /// knobs probe how gracefully the guarantees degrade when it is not.
  /// An otherwise-successful reception is lost with probability
  /// packet_error_rate (fading/noise), and independently with probability
  /// sync_miss_rate (transmitter misaligned with the slot grid).
  double packet_error_rate = 0.0;
  double sync_miss_rate = 0.0;
  /// Runs the legacy node-at-a-time pipeline instead of the word-parallel
  /// batched one. The two are equivalent (same stats, same rng stream) and
  /// the golden tests assert exactly that; outside those tests there is no
  /// reason to set this.
  bool force_scalar_pipeline = false;
  /// Hybrid sparse/dense pipeline (DESIGN.md §13). When set, the per-slot
  /// node sets keep their adaptive util::SlotSet representation, so phase
  /// costs scale with the slot's ACTIVE population instead of n — the
  /// metropolitan-scale regime where low duty cycle means almost everyone
  /// sleeps. When clear (the default), every per-slot set is pinned dense
  /// and the pipeline is byte-for-byte the pre-hybrid word-parallel one.
  /// Either way SimStats are bit-identical: representation never changes
  /// semantics, and the golden megascale tests assert exactly that (all
  /// five MACs, faults armed and disarmed). Ignored under
  /// force_scalar_pipeline.
  bool hybrid_pipeline = false;
  /// Worker-team size for the sharded phase-2 reception kernel (hybrid
  /// pipeline only; <= 1 keeps every phase serial). The per-transmission
  /// verdicts (receiver-awake + collision) are pure reads of the slot's
  /// frozen sets, so they precompute in parallel across util/parallel.hpp
  /// workers — grouped by spatial collision domain when `domains` is set —
  /// and the stateful fold (queue mutations, stats, channel-noise rng
  /// draws) then replays serially in transmitter-index order. Results are
  /// bit-identical at ANY worker count, the same discipline as the PR 4
  /// campaign barrier. Inside an already-parallel region (campaign cells)
  /// the kernel degrades to serial automatically.
  int shard_workers = 0;
  /// Minimum transmissions in a slot before phase 2 shards; below this the
  /// parallel-region dispatch costs more than the kernel.
  std::size_t shard_min_items = 128;
  /// Optional spatial collision-domain grid over the topology's positions
  /// (net/domain_grid.hpp; cell size >= transmission radius, so all of a
  /// node's interferers are inside its 3x3 cell neighborhood). When set,
  /// sharded phase-2 work is ordered by the receiver's cell so a worker's
  /// chunk touches one spatial region. Must describe the simulator's
  /// current topology and outlive it; MobilityModel::grid() maintains one
  /// incrementally across mobility events.
  const net::DomainGrid* domains = nullptr;
  /// Optional per-event hook; leave empty for zero overhead on the hot
  /// path beyond a branch. Structured sinks (JSONL, ring buffer, filters,
  /// fan-out) live in obs/trace.hpp and plug in via their fn() adapters.
  std::function<void(const TraceEvent&)> trace;
  /// Optional metrics registry. When set, the simulator registers
  /// `ttdc_sim_*_total` counters and a `ttdc_sim_latency_slots` histogram
  /// at construction and bumps them live on the hot path (one pre-resolved
  /// relaxed atomic increment per event); leave null for zero overhead.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional packet flight recorder (obs/flight_recorder.hpp): a bounded
  /// ring of per-packet lifecycle events (created -> enqueued ->
  /// head-of-line -> tx-attempt -> collided/delivered/dropped/expired),
  /// with collision events carrying the interferer set recovered from the
  /// phase-2 intersection. Cost contract: leave null (the default) and
  /// step() pays one branch per slot; installed but disarmed
  /// (FlightRecorder::enable(false)) costs one relaxed load per slot; armed
  /// recording never touches the RNG stream or SimStats, so golden
  /// equality between pipelines is preserved with recording on or off.
  obs::FlightRecorder* recorder = nullptr;
  /// Per-node battery budget in millijoules; 0 means unlimited. When a
  /// node's budget (drained per slot by radio state and per wakeup, using
  /// `energy`) reaches zero the node dies: it stops generating,
  /// transmitting, receiving, and draining. This is the network-lifetime
  /// model duty cycling exists to optimize.
  double battery_mj = 0.0;
  EnergyModel energy;
  /// Optional deterministic fault plan (sim/fault.hpp). When set, the
  /// simulator applies the plan's timestamped events at the start of each
  /// slot (crash/recover, battery spikes, jam bursts) and runs its
  /// continuous processes (Gilbert-Elliott bursty link loss, clock drift)
  /// against every transmission. Cost contract: null (the default) costs
  /// one predictable branch per slot and per hook site; armed fault
  /// randomness comes from per-link/per-node streams derived from the plan
  /// seed — never from the simulator's own rng_ — so a run with an
  /// armed-but-EMPTY plan is bit-identical to an unarmed run, and
  /// scalar/batched pipeline golden equality holds with faults on. The plan
  /// must outlive the simulator and is shareable across cells (all mutable
  /// fault state lives in the simulator).
  const FaultPlan* fault_plan = nullptr;
  /// Optional shared read-only routing table. When set, next-hop queries go
  /// to this table instead of the simulator's internal one, so campaign
  /// cells replaying the same topology (runner/cache.hpp) share one set of
  /// BFS columns instead of each rebuilding them. The table must have been
  /// built over a graph identical to the simulator's and fully materialized
  /// via build_all_columns() (a lazily built table would mutate under
  /// concurrent readers). set_graph() reverts to the internal table, since
  /// the shared one no longer describes the topology.
  const net::RoutingTable* shared_routing = nullptr;
  /// Frame-level fast-forwarding (sim/fastforward.hpp): memoize per-frame
  /// deltas and replay them in O(state) across provably identical frames,
  /// turning static-topology lifetime runs from O(slots) into O(events).
  /// Produces BIT-IDENTICAL SimStats to a normal run — the golden tests
  /// assert exactly that — because the engine only ever replays frames it
  /// has verified exactly and falls back to slot-accurate stepping at every
  /// invalidation source (arrival, fault event, battery death crossing,
  /// topology change, armed flight recorder). The knob is a no-op (engine
  /// stays disarmed) unless the MAC reports a fast_forward_period() and the
  /// traffic source supports_lookahead(); it is also disarmed under
  /// force_scalar_pipeline, tracing, or channel imperfections (per-slot rng
  /// draws make frames unrepeatable).
  bool fast_forward = false;
};

class Simulator {
 public:
  Simulator(net::Graph graph, MacProtocol& mac, TrafficSource& traffic,
            const SimConfig& config = {});

  /// Runs `slots` additional slots (cumulative; stats keep accumulating).
  void run(std::uint64_t slots);

  /// Swaps the topology (churn). Invalidates the routing cache; notifies
  /// the MAC. The node count must not change.
  void set_graph(net::Graph graph);

  /// Cross-checks the simulator's incremental state against its defining
  /// invariants and the MAC's batched answers against its scalar ones:
  ///
  ///   * every PacketQueue's ring invariants; backlogged_ and
  ///     unroutable_head_ agree with the queues and the routing table;
  ///   * dead_/battery_/death_slot_ are mutually consistent and no dead
  ///     node is transmitting;
  ///   * per-node state-slot counters never exceed the slots the node
  ///     participated in (the sleep-identity of finalize_sleep_counts());
  ///   * fill_slot_sets() agrees with can_receive()/wants_transmit()/
  ///     idle_state() per node, per the contract in mac.hpp (including the
  ///     sender_gates_on_receiver() gating and the sleep promise phase 3
  ///     relies on).
  ///
  /// O(n · queue depth) + one batched MAC query; intended for tests and
  /// debugging, not the hot path. Compiled to a no-op unless contract
  /// checks are enabled (TTDC_ENABLE_CHECKS); violations report through
  /// TTDC_DCHECK (abort, or ContractViolation in throw mode).
  void audit_invariants() const;

  /// Simulation statistics. In the batched pipeline, per-node sleep-slot
  /// counts are materialized lazily on this call (they are derived, not
  /// accumulated, so sleepy networks cost O(awake) per slot, not O(n));
  /// the operation is idempotent and logically const.
  [[nodiscard]] const SimStats& stats() const {
    const_cast<Simulator*>(this)->finalize_sleep_counts();
    return stats_;
  }
  [[nodiscard]] const net::Graph& graph() const { return graph_; }
  [[nodiscard]] std::uint64_t now() const { return now_; }

  /// Backlog probe for SaturatedFlows.
  [[nodiscard]] std::size_t queue_size(std::size_t node) const {
    return queues_[node].size();
  }

  /// Pre-sizes the latency sample buffer (see LatencyStats::reserve).
  void reserve_latency(std::size_t n) { stats_.latency.reserve(n); }

  /// Fault-injection probes (only meaningful with an armed fault plan).
  [[nodiscard]] bool is_down(std::size_t node) const {
    return fault_armed_ && down_.test(node);
  }
  [[nodiscard]] bool is_jamming(std::size_t node) const {
    return fault_armed_ && jamming_.test(node);
  }

  /// Battery state (only meaningful when config.battery_mj > 0).
  [[nodiscard]] bool is_alive(std::size_t node) const { return !dead_.test(node); }
  [[nodiscard]] std::size_t alive_count() const { return dead_.size() - dead_.count(); }
  [[nodiscard]] double remaining_battery_mj(std::size_t node) const {
    return static_cast<double>(battery_[node]) / static_cast<double>(kBatteryUnitsPerMj);
  }

  /// Fast-forward accounting (all-zero when the engine is disarmed).
  /// Deliberately separate from stats(): SimStats must be bit-identical
  /// with fast-forwarding on or off.
  [[nodiscard]] FastForwardStats fast_forward_stats() const {
    return ff_ ? ff_->stats : FastForwardStats{};
  }

 private:
  void inject(std::size_t origin, std::size_t destination);
  void step();

  // --- frame-level fast-forwarding (sim/fastforward.cpp) ---
  /// Attempts to cover the frame starting at now_ (period slots) from the
  /// memo. Returns true when the frame was handled — replayed, or stepped-
  /// and-recorded on a memo miss — and false when an invalidation source
  /// vetoed it (caller steps one slot and retries at the next boundary).
  bool try_fast_forward(std::uint64_t period, std::uint64_t run_end);
  /// Hash of everything that determines the upcoming frame's outcome.
  [[nodiscard]] std::uint64_t frame_fingerprint(std::uint64_t period) const;
  /// Exact pre-state comparison (hash collisions must never replay).
  [[nodiscard]] bool verify_entry(const FastForwardState::Entry& entry) const;
  /// Steps `period` slots while snapshotting enough state to diff; inserts
  /// the resulting delta into the memo unless the frame was tainted.
  void record_frame(std::uint64_t key, std::uint64_t period);
  /// Applies a verified entry's delta k times in O(state).
  void replay_frame(const FastForwardState::Entry& entry, std::uint64_t period,
                    std::uint64_t k);

  // --- pipeline phases (DESIGN.md §8) ---
  void collect_transmissions_scalar();                 // phase 1, legacy
  void collect_transmissions_batched(bool mac_batched);  // phase 1
  void resolve_receptions(bool batched);               // phase 2
  /// Sharded phase-2 verdict precompute (hybrid pipeline, shard_workers >
  /// 1): fills verdicts_[i] for every pending transmission from the slot's
  /// frozen sets, in parallel, ordered by collision domain when configured.
  /// resolve_receptions() then consumes the verdicts in its serial
  /// index-order fold.
  void compute_reception_verdicts();
  /// Phase 3, node-at-a-time. `receivers` substitutes for virtual
  /// can_receive() calls when non-null (batched pipeline, scalar-only MAC).
  void account_energy_scalar(const util::SlotSet* receivers);
  void account_energy_batched();                       // phase 3, set-driven
  void kill_node(std::size_t v);

  // --- fault injection (all no-ops / never called unless fault_armed_) ---
  /// Applies every plan event due at now_, then refreshes the per-slot
  /// jam_active_ / fault_out_ sets. Runs before traffic and the MAC see
  /// the slot.
  void apply_fault_events();
  void apply_fault_event(const FaultEvent& e);
  /// True when the transmission x -> y is lost to accumulated clock drift
  /// (deterministic: a pure function of the plan's rates and now_).
  [[nodiscard]] bool drift_lost(std::size_t x, std::size_t y) const;
  /// Advances link (x, y)'s Gilbert-Elliott chain to now_ (closed-form
  /// k-step transition, lazily — idle links cost nothing) and draws the
  /// loss verdict from the link's OWN SplitMix64-derived stream.
  bool ge_lost(std::size_t x, std::size_t y);
  /// Rewrites state_slots[v][kSleep] from the identity
  ///   sleep = slots_participated - transmit - receive - listen,
  /// which holds on every pipeline; the batched phase 3 never increments
  /// sleep counts eagerly. No-op on the pure scalar pipeline.
  void finalize_sleep_counts();

  /// Queue mutations funnel through these so backlogged_ and
  /// unroutable_head_ stay exact. Tracking head routability incrementally
  /// (one cached-column lookup per head change) is what lets the batched
  /// phase 1 visit only eligible ∪ unroutable-head nodes instead of every
  /// backlogged node, while dropping unroutable packets in exactly the slot
  /// the scalar pipeline would.
  bool queue_push(std::size_t node, const Packet& p) {
    if (!queues_[node].push(p)) return false;
    backlogged_.set(node);
    if (queues_[node].size() == 1) refresh_head_routability(node);
    if (recording_) {
      record_flight(obs::FlightEvent::Kind::kEnqueued, node, p.origin, p.id,
                    static_cast<std::uint32_t>(queues_[node].size()));
      if (queues_[node].size() == 1) record_head_of_line(node);
    }
    return true;
  }
  void queue_pop(std::size_t node) {
    queues_[node].pop();
    if (queues_[node].empty()) {
      backlogged_.reset(node);
      unroutable_head_.reset(node);
    } else {
      refresh_head_routability(node);
      if (recording_) record_head_of_line(node);
    }
  }
  void refresh_head_routability(std::size_t node) {
    const std::size_t hop = routing_view_->next_hop(node, queues_[node].front().destination);
    if (hop == static_cast<std::size_t>(-1)) {
      unroutable_head_.set(node);
    } else {
      unroutable_head_.reset(node);
    }
  }

  /// Trace emission stays a single predictable branch (`tracing_`, fixed at
  /// construction) when tracing is disabled; the std::function indirection
  /// is only paid on the enabled path.
  void trace(TraceEvent::Kind kind, std::size_t node, std::size_t peer,
             std::uint64_t packet_id) {
    if (!tracing_) return;
    config_.trace(TraceEvent{kind, now_, node, peer, packet_id});
  }

  /// Flight-recorder emission. Every hook site is guarded by `recording_`,
  /// which step() refreshes once per slot from the installed recorder and
  /// the process-wide arming flag (the contract documented on
  /// SimConfig::recorder).
  void record_flight(obs::FlightEvent::Kind kind, std::size_t node, std::size_t peer,
                     std::uint64_t packet_id, std::uint32_t aux = 0) {
    obs::FlightEvent e;
    e.slot = now_;
    e.packet_id = packet_id;
    e.node = static_cast<std::uint32_t>(node);
    e.peer = static_cast<std::uint32_t>(peer);
    e.aux = aux;
    e.kind = kind;
    config_.recorder->record(e);
  }
  /// kHeadOfLine for the current head of `node`'s (non-empty) queue; peer
  /// is the next hop (kNoNode when unroutable), aux the queue depth.
  void record_head_of_line(std::size_t node);
  /// kCollided at receiver y of transmitter x, with the interferer set
  /// (the OTHER transmitting neighbors of y) recovered word-parallel from
  /// the phase-2 intersection neighbors(y) AND transmitting_.
  void record_collision(std::size_t y, std::size_t x, std::uint64_t packet_id);

  /// Live hot-path metric handles (all null when config.metrics is null).
  struct HotMetrics {
    obs::Counter* generated = nullptr;
    obs::Counter* transmissions = nullptr;
    obs::Counter* hop_successes = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Counter* collisions = nullptr;
    obs::Counter* receiver_asleep = nullptr;
    obs::Counter* channel_losses = nullptr;
    obs::Counter* sync_losses = nullptr;
    obs::Counter* queue_drops = nullptr;
    obs::Histogram* latency = nullptr;
    // Registered only when a fault plan is armed (names stay absent from
    // unarmed registries).
    obs::Counter* fault_crashes = nullptr;
    obs::Counter* fault_recoveries = nullptr;
    obs::Counter* fault_battery_spikes = nullptr;
    obs::Counter* fault_jam_bursts = nullptr;
    obs::Counter* burst_losses = nullptr;
    obs::Counter* drift_losses = nullptr;
  };

  net::Graph graph_;
  MacProtocol& mac_;
  TrafficSource& traffic_;
  SimConfig config_;
  util::Xoshiro256 rng_;
  RoutingTable routing_;
  // Either &routing_ or config_.shared_routing; all next-hop queries go
  // through this so the two cases share one code path.
  const RoutingTable* routing_view_ = nullptr;
  std::vector<PacketQueue> queues_;
  SimStats stats_;
  HotMetrics hot_;
  bool tracing_ = false;
  bool recording_ = false;  // per-slot sample of (recorder installed && armed)
  std::uint64_t now_ = 0;
  std::uint64_t next_packet_id_ = 0;

  // Per-slot scratch, kept here so the steady-state hot path never touches
  // the allocator (the zero-allocation invariant, DESIGN.md §8). All node
  // sets are hybrid SlotSets: pinned dense outside the hybrid pipeline
  // (making the dense pipeline exactly the pre-hybrid word-parallel one),
  // adaptive under SimConfig::hybrid_pipeline.
  std::vector<std::size_t> tx_nodes_;
  std::vector<std::size_t> tx_targets_;
  util::SlotSet transmitting_;  // this slot's transmitters
  util::SlotSet receivers_;     // MAC's awake-receiver set for the slot
  util::SlotSet eligible_;      // MAC's eligible-transmitter set
  util::SlotSet backlogged_;    // {v : queue non-empty}, kept incrementally
  util::SlotSet unroutable_head_;  // {v : head of v's queue has no route}
  util::SlotSet prev_awake_;    // previous-slot awake set (wakeup accounting)
  util::SlotSet listen_;        // phase-3 scratch
  util::SlotSet awake_now_;     // phase-3 scratch
  util::SlotSet woke_;          // phase-3 scratch
  util::SlotSet scratch_;       // general per-slot scratch
  // Battery bookkeeping is INTEGER: nano-millijoule units, converted once
  // from the double-valued config at construction. Integer drains make
  // "k frames of idle cost exactly k * per-frame cost" an identity rather
  // than a floating-point accident, which is what lets the fast-forward
  // engine lump whole stretches of frames into one subtraction and still
  // match the slot-by-slot run bit for bit.
  std::vector<std::int64_t> battery_;  // remaining units per node (battery_mj > 0 only)
  util::SlotSet dead_;          // depleted nodes
  std::vector<std::uint64_t> death_slot_;  // slot of death, kNeverDied while alive

  // Sharded-phase-2 scratch (hybrid pipeline with shard_workers > 1).
  bool hybrid_ = false;          // hybrid_pipeline && !force_scalar_pipeline
  bool use_verdicts_ = false;    // verdicts_ filled for the current slot
  std::vector<std::uint8_t> verdicts_;      // per pending transmission
  std::vector<std::uint32_t> shard_order_;  // tx indices, domain-grouped
  std::vector<std::uint32_t> shard_keys_;   // receiver cell per tx index

  // Fault-injection state (sized / maintained only when fault_armed_).
  bool fault_armed_ = false;          // config_.fault_plan != nullptr
  bool fault_world_ = false;          // plan has timestamped events (crash/jam/...)
  bool fault_drift_ = false;          // plan has drift rates
  bool fault_ge_ = false;             // plan has an armed Gilbert-Elliott channel
  std::size_t fault_cursor_ = 0;      // next unapplied plan event
  util::SlotSet down_;          // crashed (recoverable) nodes
  util::SlotSet jamming_;       // nodes inside a jam burst
  util::SlotSet jam_active_;    // per slot: jamming_ minus dead_/down_
  util::SlotSet fault_out_;     // per slot: down_ | jam_active_ (phase-1 skip set)
  std::vector<std::uint64_t> down_since_;  // crash slot while down (recover aux)
  struct GeLink {
    util::Xoshiro256 rng;    // this link's private coin stream
    std::uint64_t last_slot = 0;
    bool bad = false;
  };
  std::unordered_map<std::uint64_t, GeLink> ge_links_;  // key = x * n + y
  // Per-slot energy constants in battery units (see battery_ above);
  // b_receive_ only feeds the scalar pipeline's per-state table.
  std::int64_t b_transmit_ = 0, b_receive_ = 0, b_listen_ = 0, b_sleep_ = 0;
  std::int64_t b_wakeup_ = 0;

  // Fast-forward engine state; null whenever the arming conditions in the
  // constructor do not hold, in which case run() is byte-for-byte the
  // plain stepping loop.
  std::unique_ptr<FastForwardState> ff_;

  static constexpr std::uint64_t kNeverDied = ~std::uint64_t{0};
  /// Battery integer scale: 1e9 units per millijoule. The smallest per-slot
  /// cost (sleep, 3e-5 mJ) is 30 000 units, so every radio-state cost is
  /// exactly representable; the largest budget that fits comfortably is
  /// ~9e9 mJ, far beyond any config in the tree.
  static constexpr std::int64_t kBatteryUnitsPerMj = 1'000'000'000;
};

}  // namespace ttdc::sim
