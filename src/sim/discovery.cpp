#include "sim/discovery.hpp"

#include <limits>

namespace ttdc::sim {

namespace {
constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();
}

bool DiscoveryResult::complete(const net::Graph& graph) const {
  for (std::size_t y = 0; y < graph.num_nodes(); ++y) {
    bool ok = true;
    graph.neighbors(y).for_each([&](std::size_t x) {
      if (first_heard[y][x] == kNever) ok = false;
    });
    if (!ok) return false;
  }
  return true;
}

std::size_t DiscoveryResult::last_discovery_slot() const {
  std::size_t last = 0;
  for (const auto& row : first_heard) {
    for (std::size_t slot : row) {
      if (slot != kNever) last = std::max(last, slot);
    }
  }
  return last;
}

std::size_t DiscoveryResult::discovered_count() const {
  std::size_t count = 0;
  for (const auto& row : first_heard) {
    for (std::size_t slot : row) {
      if (slot != kNever) ++count;
    }
  }
  return count;
}

DiscoveryResult run_discovery(const core::Schedule& schedule, const net::Graph& graph,
                              std::size_t max_slots) {
  const std::size_t n = graph.num_nodes();
  DiscoveryResult result;
  result.first_heard.assign(n, std::vector<std::size_t>(n, kNever));
  result.slots_run = max_slots;
  const std::size_t L = schedule.frame_length();
  for (std::size_t t = 0; t < max_slots; ++t) {
    const auto& transmitters = schedule.transmitters(t % L);
    const auto& receivers = schedule.receivers(t % L);
    receivers.for_each([&](std::size_t y) {
      // y hears x iff x is y's unique transmitting neighbor this slot.
      std::size_t active = 0;
      std::size_t heard = kNever;
      graph.neighbors(y).for_each([&](std::size_t x) {
        if (transmitters.test(x)) {
          ++active;
          heard = x;
        }
      });
      if (active == 1 && result.first_heard[y][heard] == kNever) {
        result.first_heard[y][heard] = t;
      }
    });
  }
  return result;
}

}  // namespace ttdc::sim
