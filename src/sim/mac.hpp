// MAC protocols driving node radios in the slot simulator.
//
// The simulator is protocol-agnostic: each slot it asks the MAC which nodes
// are willing to receive, whether a backlogged node transmits to its head-
// of-queue next hop, and what idle nodes do with their radio. Implemented
// protocols:
//   * DutyCycledScheduleMac  — the paper's (αT,αR)-schedule <T,R> (or any
//     Schedule, including non-sleeping ones); senders are schedule-aware:
//     x transmits to y only in slots of σ(x, y) = tran(x) ∩ recv(y);
//   * SlottedAlohaMac        — always-on random access with attempt prob p;
//   * UncoordinatedSleepMac  — uncoordinated power saving ([Dousse et al.
//     04]-style): every node is awake i.i.d. with prob p each slot; senders
//     do not know receiver state;
//   * ColoringTdmaMac        — topology-DEPENDENT distance-2 coloring TDMA:
//     collision-free by construction but must recolor on topology change
//     (the foil for topology transparency in the mobility experiment).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/schedule.hpp"
#include "net/graph.hpp"
#include "sim/radio.hpp"
#include "util/bitset.hpp"
#include "util/slot_set.hpp"
#include "util/rng.hpp"

namespace ttdc::sim {

class MacProtocol {
 public:
  virtual ~MacProtocol() = default;

  /// Called once per slot before any transmit/receive query; randomized
  /// MACs draw their per-slot coins here.
  virtual void begin_slot(std::uint64_t slot, util::Xoshiro256& rng) = 0;

  /// May `node` accept a reception in the current slot?
  [[nodiscard]] virtual bool can_receive(std::size_t node) const = 0;

  /// Does backlogged `node` transmit to next hop `target` this slot?
  [[nodiscard]] virtual bool wants_transmit(std::size_t node, std::size_t target) const = 0;

  /// Radio state of a node that neither transmitted nor was an eligible
  /// receiver this slot.
  [[nodiscard]] virtual RadioState idle_state(std::size_t node) const = 0;

  /// Batched slot-set interface (the simulator's word-parallel hot path).
  ///
  /// Populates, for the current slot, `receivers` with every node for which
  /// can_receive() holds and `transmitters` with every node that would
  /// transmit if backlogged (the target-independent part of
  /// wants_transmit()). Returns true when both sets were produced, in which
  /// case the simulator promises to honor this contract:
  ///
  ///   * a backlogged node v transmits iff transmitters.test(v) and, when
  ///     sender_gates_on_receiver(), its next hop is in `receivers`;
  ///   * a node that neither transmits nor appears in `receivers` SLEEPS
  ///     (its idle_state() must be RadioState::kSleep) — all five in-tree
  ///     MACs satisfy this by construction.
  ///
  /// The default implementation is the scalar fallback for out-of-tree
  /// MACs: it fills `receivers` from can_receive() and returns false, which
  /// makes the simulator fall back to per-node wants_transmit()/idle_state()
  /// queries (correct, just not word-parallel). Both bitsets are sized to
  /// the node count and arrive zeroed-or-stale; implementations must
  /// overwrite them completely and must not allocate.
  virtual bool fill_slot_sets(util::SlotSet& receivers,
                              util::SlotSet& transmitters) const;

  /// True when wants_transmit(x, y) additionally requires y to be an
  /// eligible receiver this slot (schedule-aware senders). Only consulted
  /// when fill_slot_sets() returned true.
  [[nodiscard]] virtual bool sender_gates_on_receiver() const { return false; }

  /// Fast-forward period: the frame length L such that this MAC's behavior
  /// is a PURE function of slot % L — no per-slot randomness, no hidden
  /// state evolving across frames. Returning L > 0 is the MAC's half of the
  /// frame-memoization contract (sim/fastforward.hpp): the simulator may
  /// skip begin_slot() for entire [kL, (k+1)L) windows and re-enter at any
  /// later frame boundary, because begin_slot(s) reconstructs everything
  /// from s alone. Randomized MACs (ALOHA, uncoordinated sleep, common
  /// active period) keep the default 0: they draw per-slot coins from the
  /// simulator stream, so no frame ever repeats exactly and fast-forwarding
  /// must stay disarmed. The value may change after on_topology_change()
  /// (the coloring TDMA recolors); the simulator re-queries it at every
  /// frame boundary.
  [[nodiscard]] virtual std::uint64_t fast_forward_period() const { return 0; }

  /// Topology-change hook. Topology-transparent MACs ignore it; the
  /// coloring TDMA must rebuild. Returns true if the MAC had to
  /// reconfigure (counted by the mobility experiment).
  virtual bool on_topology_change(const net::Graph& graph) {
    (void)graph;
    return false;
  }
};

/// Schedule-driven MAC (duty-cycled or non-sleeping).
class DutyCycledScheduleMac final : public MacProtocol {
 public:
  /// If `schedule_aware_senders`, x holds its packet for y until a slot in
  /// σ(x, y); otherwise x transmits in any of its transmit slots (and
  /// burns the attempt if y is asleep).
  explicit DutyCycledScheduleMac(const core::Schedule& schedule,
                                 bool schedule_aware_senders = true);

  void begin_slot(std::uint64_t slot, util::Xoshiro256& rng) override;
  [[nodiscard]] bool can_receive(std::size_t node) const override;
  [[nodiscard]] bool wants_transmit(std::size_t node, std::size_t target) const override;
  [[nodiscard]] RadioState idle_state(std::size_t node) const override;
  bool fill_slot_sets(util::SlotSet& receivers,
                      util::SlotSet& transmitters) const override;
  [[nodiscard]] bool sender_gates_on_receiver() const override { return aware_; }
  [[nodiscard]] std::uint64_t fast_forward_period() const override {
    return schedule_.frame_length();  // deterministic: <T, R> repeats every frame
  }

 private:
  const core::Schedule& schedule_;
  bool aware_;
  std::size_t frame_slot_ = 0;
  // Per-frame-slot sets precomputed at construction as SlotSets, so
  // fill_slot_sets() is a representation-adopting copy: sparse when the
  // schedule's active population is sparse (the megascale regime), dense
  // when the simulator pins its sets dense.
  std::vector<util::SlotSet> slot_receivers_;
  std::vector<util::SlotSet> slot_transmitters_;
};

/// Slotted ALOHA: every backlogged node transmits with probability p; all
/// nodes always listen.
class SlottedAlohaMac final : public MacProtocol {
 public:
  SlottedAlohaMac(std::size_t num_nodes, double attempt_probability);

  void begin_slot(std::uint64_t slot, util::Xoshiro256& rng) override;
  [[nodiscard]] bool can_receive(std::size_t) const override { return true; }
  [[nodiscard]] bool wants_transmit(std::size_t node, std::size_t target) const override;
  [[nodiscard]] RadioState idle_state(std::size_t) const override {
    return RadioState::kListen;  // unreachable: every node can_receive
  }
  bool fill_slot_sets(util::SlotSet& receivers,
                      util::SlotSet& transmitters) const override;

 private:
  double p_;
  util::DynamicBitset coin_;  // per-node transmit coin for the current slot
};

/// Uncoordinated duty cycling: node awake i.i.d. with probability p per
/// slot; an awake backlogged node transmits with probability q.
class UncoordinatedSleepMac final : public MacProtocol {
 public:
  UncoordinatedSleepMac(std::size_t num_nodes, double awake_probability,
                        double attempt_probability);

  void begin_slot(std::uint64_t slot, util::Xoshiro256& rng) override;
  [[nodiscard]] bool can_receive(std::size_t node) const override;
  [[nodiscard]] bool wants_transmit(std::size_t node, std::size_t target) const override;
  [[nodiscard]] RadioState idle_state(std::size_t node) const override;
  bool fill_slot_sets(util::SlotSet& receivers,
                      util::SlotSet& transmitters) const override;

 private:
  double awake_p_;
  double attempt_p_;
  util::DynamicBitset awake_;
  util::DynamicBitset coin_;
};

/// S-MAC-style synchronized duty cycling [Ye-Heidemann-Estrin 02]: every
/// node is awake for the first `active_slots` slots of each frame (the
/// common active period, where backlogged nodes contend ALOHA-style with
/// probability p) and sleeps for the rest. The classic coordinated-sleep
/// baseline the paper's §1 cites: saves energy, but all contention is
/// squeezed into the active window -- exactly the collision concentration
/// the paper's introduction warns about.
class CommonActivePeriodMac final : public MacProtocol {
 public:
  CommonActivePeriodMac(std::size_t num_nodes, std::size_t frame_length,
                        std::size_t active_slots, double attempt_probability);

  void begin_slot(std::uint64_t slot, util::Xoshiro256& rng) override;
  [[nodiscard]] bool can_receive(std::size_t node) const override;
  [[nodiscard]] bool wants_transmit(std::size_t node, std::size_t target) const override;
  [[nodiscard]] RadioState idle_state(std::size_t node) const override;
  bool fill_slot_sets(util::SlotSet& receivers,
                      util::SlotSet& transmitters) const override;

  [[nodiscard]] double duty_cycle() const {
    return static_cast<double>(active_slots_) / static_cast<double>(frame_length_);
  }

 private:
  std::size_t frame_length_;
  std::size_t active_slots_;
  double p_;
  bool in_active_ = false;
  util::DynamicBitset coin_;
};

/// Topology-dependent TDMA from a greedy distance-2 coloring of the current
/// graph: node x owns the slots congruent to color(x); receivers listen in
/// every other slot (or sleep unless a neighbor owns the slot). Collision-
/// free for the exact topology it was built for; stale after churn until
/// on_topology_change() recolors.
class ColoringTdmaMac final : public MacProtocol {
 public:
  explicit ColoringTdmaMac(const net::Graph& graph);

  void begin_slot(std::uint64_t slot, util::Xoshiro256& rng) override;
  [[nodiscard]] bool can_receive(std::size_t node) const override;
  [[nodiscard]] bool wants_transmit(std::size_t node, std::size_t target) const override;
  [[nodiscard]] RadioState idle_state(std::size_t node) const override;
  bool fill_slot_sets(util::SlotSet& receivers,
                      util::SlotSet& transmitters) const override;
  bool on_topology_change(const net::Graph& graph) override;

  [[nodiscard]] std::size_t num_colors() const { return num_colors_; }
  [[nodiscard]] std::size_t recolor_count() const { return recolor_count_; }
  /// Deterministic TDMA: the slot owner is slot % num_colors, so the frame
  /// is the color count. Changes when on_topology_change() recolors (the
  /// simulator re-queries per frame boundary and its memo is invalidated on
  /// every set_graph anyway).
  [[nodiscard]] std::uint64_t fast_forward_period() const override { return num_colors_; }

 private:
  void rebuild(const net::Graph& graph);

  std::vector<std::size_t> color_;
  std::vector<util::SlotSet> neighbor_;  // adjacency snapshot at build
  std::vector<util::SlotSet> color_members_;  // [color] -> node set
  std::size_t num_colors_ = 1;
  std::size_t current_color_ = 0;
  std::size_t recolor_count_ = 0;
};

/// Greedy distance-2 coloring (no two nodes within two hops share a color):
/// the classical collision-free TDMA slot assignment. Exposed for tests.
std::vector<std::size_t> distance2_coloring(const net::Graph& graph);

}  // namespace ttdc::sim
