// Undirected network graphs for the class N_n^D.
//
// The simulator and the topology-transparency experiments need concrete
// members of N_n^D: graphs with at most n nodes whose degrees never exceed
// D. Adjacency rows are hybrid util::SlotSet node sets (collision
// resolution in the simulator is a neighborhood-intersection query): a
// degree-capped row stays a sorted sparse vector, so a metropolitan-scale
// graph costs O(n·D) memory instead of the O(n²/8) bytes dense bitset rows
// would need — the difference between 1.25 GB and a few MB at n = 10⁵.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/slot_set.hpp"

namespace ttdc::net {

class Graph {
 public:
  explicit Graph(std::size_t num_nodes);

  [[nodiscard]] std::size_t num_nodes() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  /// Adds the undirected edge {a, b}; idempotent; a != b required.
  void add_edge(std::size_t a, std::size_t b);

  [[nodiscard]] bool has_edge(std::size_t a, std::size_t b) const {
    return adjacency_[a].test(b);
  }

  /// Neighborhood of x as a hybrid node set over [0, n).
  [[nodiscard]] const util::SlotSet& neighbors(std::size_t x) const {
    return adjacency_[x];
  }

  /// Sorted neighbor list of x.
  [[nodiscard]] std::vector<std::size_t> neighbor_list(std::size_t x) const {
    return adjacency_[x].to_vector();
  }

  [[nodiscard]] std::size_t degree(std::size_t x) const { return adjacency_[x].count(); }
  [[nodiscard]] std::size_t max_degree() const;

  /// All edges as (a, b) with a < b.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> edges() const;

  /// True if the graph is connected (singleton graphs are connected; the
  /// empty graph on >= 2 nodes is not).
  [[nodiscard]] bool is_connected() const;

  /// BFS hop distances from `source` (SIZE_MAX for unreachable nodes).
  [[nodiscard]] std::vector<std::size_t> bfs_distances(std::size_t source) const;

  /// BFS parent pointers from `source` (parent[source] = source; SIZE_MAX
  /// for unreachable). This is the routing tree used by convergecast.
  [[nodiscard]] std::vector<std::size_t> bfs_parents(std::size_t source) const;

  /// FNV-1a digest over (n, per-node degree + sorted neighbor stream). Two
  /// graphs with equal hashes are identical with overwhelming probability,
  /// and — because the hash covers the full adjacency in a fixed,
  /// representation-independent order — identical graphs always collide, so
  /// content-keyed caches (runner/cache.hpp) may share one BFS routing
  /// table across equal-hash graphs after verifying equality. Not a
  /// cryptographic hash.
  [[nodiscard]] std::uint64_t content_hash() const;

  /// Exact structural equality: same node count and identical adjacency.
  [[nodiscard]] bool same_adjacency(const Graph& other) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<util::SlotSet> adjacency_;
  std::size_t num_edges_ = 0;
};

}  // namespace ttdc::net
