#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ttdc::net {

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph ring_graph(std::size_t n) {
  if (n < 3) throw std::invalid_argument("ring_graph: need n >= 3");
  Graph g = path_graph(n);
  g.add_edge(n - 1, 0);
  return g;
}

Graph star_graph(std::size_t n) {
  if (n < 2) throw std::invalid_argument("star_graph: need n >= 2");
  Graph g(n);
  for (std::size_t i = 1; i < n; ++i) g.add_edge(0, i);
  return g;
}

Graph grid_graph(std::size_t rows, std::size_t cols) {
  Graph g(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t id = r * cols + c;
      if (c + 1 < cols) g.add_edge(id, id + 1);
      if (r + 1 < rows) g.add_edge(id, id + cols);
    }
  }
  return g;
}

Graph mary_tree(std::size_t n, std::size_t arity) {
  if (arity == 0) throw std::invalid_argument("mary_tree: need arity >= 1");
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 1; c <= arity; ++c) {
      const std::size_t child = arity * i + c;
      if (child < n) g.add_edge(i, child);
    }
  }
  return g;
}

Graph worst_case_star(std::size_t degree_bound) {
  if (degree_bound < 1) throw std::invalid_argument("worst_case_star: need D >= 1");
  Graph g(degree_bound + 1);
  for (std::size_t i = 1; i <= degree_bound; ++i) g.add_edge(0, i);
  return g;
}

Graph random_bounded_degree_graph(std::size_t n, std::size_t max_degree,
                                  std::size_t target_edges, util::Xoshiro256& rng) {
  if (n < 2 || max_degree < 1) {
    throw std::invalid_argument("random_bounded_degree_graph: need n >= 2, D >= 1");
  }
  Graph g(n);
  const std::size_t cap_edges = n * max_degree / 2;
  target_edges = std::min(target_edges, cap_edges);
  // Rejection sampling with a retry budget; the budget only binds close to
  // degree saturation, where leftover proposals are nearly all rejections.
  std::size_t attempts = 0;
  const std::size_t max_attempts = 50 * (target_edges + 1) + 1000;
  while (g.num_edges() < target_edges && attempts < max_attempts) {
    ++attempts;
    const std::size_t a = static_cast<std::size_t>(rng.below(n));
    std::size_t b = static_cast<std::size_t>(rng.below(n - 1));
    if (b >= a) ++b;
    if (g.has_edge(a, b)) continue;
    if (g.degree(a) >= max_degree || g.degree(b) >= max_degree) continue;
    g.add_edge(a, b);
  }
  return g;
}

Positions random_positions(std::size_t n, util::Xoshiro256& rng) {
  Positions pos;
  pos.x.resize(n);
  pos.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos.x[i] = rng.uniform01();
    pos.y[i] = rng.uniform01();
  }
  return pos;
}

Graph unit_disk_graph(const Positions& pos, double radius, std::size_t max_degree,
                      const DomainGrid& grid) {
  const std::size_t n = pos.x.size();
  Graph g(n);
  // Candidate edges sorted by length; accept greedily under the degree cap,
  // so the pruning removes the longest (weakest) links first. Candidates
  // come from each node's 3x3 cell neighborhood — the grid invariant
  // guarantees every pair within `radius` is enumerated — and the sort key
  // carries (a, b) as a tie-break so the result is independent of cell
  // bucket order.
  struct Cand {
    double dist;
    std::size_t a, b;
  };
  std::vector<Cand> cands;
  for (std::size_t a = 0; a < n; ++a) {
    grid.for_each_candidate(a, [&](std::size_t b) {
      if (b <= a) return;
      const double dx = pos.x[a] - pos.x[b];
      const double dy = pos.y[a] - pos.y[b];
      const double dist = std::sqrt(dx * dx + dy * dy);
      if (dist <= radius) cands.push_back({dist, a, b});
    });
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& l, const Cand& r) {
    if (l.dist != r.dist) return l.dist < r.dist;
    if (l.a != r.a) return l.a < r.a;
    return l.b < r.b;
  });
  for (const auto& c : cands) {
    if (g.degree(c.a) < max_degree && g.degree(c.b) < max_degree) g.add_edge(c.a, c.b);
  }
  return g;
}

Graph unit_disk_graph(const Positions& pos, double radius, std::size_t max_degree) {
  return unit_disk_graph(pos, radius, max_degree, DomainGrid(pos, radius));
}

MobilityModel::MobilityModel(std::size_t n, double radius, std::size_t max_degree,
                             double speed, std::uint64_t seed)
    : radius_(radius), max_degree_(max_degree), speed_(speed), rng_(seed),
      grid_(Positions{}, radius) {
  pos_ = random_positions(n, rng_);
  waypoints_ = random_positions(n, rng_);
  grid_ = DomainGrid(pos_, radius_);
}

Graph MobilityModel::step() {
  const std::size_t n = pos_.x.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = waypoints_.x[i] - pos_.x[i];
    const double dy = waypoints_.y[i] - pos_.y[i];
    const double dist = std::sqrt(dx * dx + dy * dy);
    if (dist <= speed_) {
      pos_.x[i] = waypoints_.x[i];
      pos_.y[i] = waypoints_.y[i];
      waypoints_.x[i] = rng_.uniform01();
      waypoints_.y[i] = rng_.uniform01();
    } else {
      pos_.x[i] += speed_ * dx / dist;
      pos_.y[i] += speed_ * dy / dist;
    }
    grid_.move(i, pos_.x[i], pos_.y[i]);
  }
  return unit_disk_graph(pos_, radius_, max_degree_, grid_);
}

}  // namespace ttdc::net
