// Topology generators producing members of N_n^D.
//
// Deterministic structures (path, ring, star, grid, full m-ary tree) plus
// randomized families (degree-capped random graphs, degree-capped unit-disk
// graphs). Random generators take explicit seeds and guarantee the degree
// cap by construction; connectivity is best-effort and reported by the
// caller via Graph::is_connected().
#pragma once

#include <cstddef>
#include <vector>

#include "net/domain_grid.hpp"
#include "net/graph.hpp"
#include "util/rng.hpp"

namespace ttdc::net {

Graph path_graph(std::size_t n);
Graph ring_graph(std::size_t n);

/// Star: node 0 is the hub with n-1 leaves (hub degree n-1).
Graph star_graph(std::size_t n);

/// rows x cols grid, 4-neighborhood; node (r, c) has index r*cols + c.
Graph grid_graph(std::size_t rows, std::size_t cols);

/// Full m-ary tree on n nodes, breadth-first numbering (node i's children
/// are m*i + 1 .. m*i + m while < n).
Graph mary_tree(std::size_t n, std::size_t arity);

/// The worst-case neighborhood of Definitions 1-2: receiver `y` with
/// exactly D neighbors {x} ∪ S, all leaves. Node 0 is y, node 1 is x,
/// nodes 2..D are S.
Graph worst_case_star(std::size_t degree_bound);

/// Random graph with degrees capped at max_degree: proposes uniformly random
/// node pairs and accepts while both endpoints have spare degree. Aims for
/// `target_edges` (saturates when the cap makes that infeasible).
Graph random_bounded_degree_graph(std::size_t n, std::size_t max_degree,
                                  std::size_t target_edges, util::Xoshiro256& rng);

/// Node positions in the unit square, for unit-disk topologies.
struct Positions {
  std::vector<double> x;
  std::vector<double> y;
};

Positions random_positions(std::size_t n, util::Xoshiro256& rng);

/// Unit-disk graph: edge iff distance <= radius, with excess edges pruned
/// (farthest-first) so no degree exceeds max_degree. Candidate pairs are
/// enumerated through a DomainGrid 3x3 neighborhood sweep — O(n · cell
/// occupancy) instead of the old O(n²) pairwise scan — which is what makes
/// metropolitan-scale topologies constructible at all.
Graph unit_disk_graph(const Positions& pos, double radius, std::size_t max_degree);

/// Same, but reusing an already-bucketed grid over `pos` (the mobility
/// model's incremental grid, or a grid the caller also feeds to the
/// simulator as its collision-domain map).
Graph unit_disk_graph(const Positions& pos, double radius, std::size_t max_degree,
                      const DomainGrid& grid);

/// A time-varying topology: a random-waypoint-lite mobility model over the
/// unit square. Each call to step() moves every node toward its waypoint by
/// `speed` (picking a fresh waypoint on arrival) and returns the pruned
/// unit-disk graph of the new configuration.
class MobilityModel {
 public:
  MobilityModel(std::size_t n, double radius, std::size_t max_degree, double speed,
                std::uint64_t seed);

  /// Advances one epoch and returns the current topology. Node moves are
  /// pushed into the collision-domain grid incrementally (only boundary
  /// crossings re-bucket) and the new unit-disk graph is built through it.
  Graph step();

  [[nodiscard]] const Positions& positions() const { return pos_; }

  /// The incrementally-maintained collision-domain grid over positions().
  /// Valid for the topology returned by the latest step(); hand it to
  /// SimConfig::domains to shard the collision kernel spatially.
  [[nodiscard]] const DomainGrid& grid() const { return grid_; }

 private:
  Positions pos_;
  Positions waypoints_;
  double radius_;
  std::size_t max_degree_;
  double speed_;
  util::Xoshiro256 rng_;
  DomainGrid grid_;
};

}  // namespace ttdc::net
