#include "net/routing.hpp"

#include "obs/profile.hpp"

namespace ttdc::net {

RoutingTable::RoutingTable(const Graph& graph)
    : graph_(&graph), columns_(graph.num_nodes()), built_(graph.num_nodes(), 0) {}

void RoutingTable::set_graph(const Graph& graph) {
  graph_ = &graph;
  columns_.assign(graph.num_nodes(), {});
  built_.assign(graph.num_nodes(), 0);
}

void RoutingTable::build_column(std::size_t dst) const {
  TTDC_PROF_SCOPE("net.routing.build_column");
  auto parents = graph_->bfs_parents(dst);
  parents[dst] = dst;
  columns_[dst] = std::move(parents);
  built_[dst] = 1;
}

void RoutingTable::build_all_columns() {
  TTDC_PROF_SCOPE("net.routing.build_all_columns");
  for (std::size_t dst = 0; dst < built_.size(); ++dst) {
    if (!built_[dst]) build_column(dst);
  }
}

std::size_t RoutingTable::cached_destinations() const {
  std::size_t n = 0;
  for (std::uint8_t b : built_) n += b;
  return n;
}

}  // namespace ttdc::net
