#include "net/graph.hpp"

#include <queue>
#include <sstream>

#include "util/check.hpp"

namespace ttdc::net {

Graph::Graph(std::size_t num_nodes)
    : adjacency_(num_nodes, util::SlotSet(num_nodes)) {}

void Graph::add_edge(std::size_t a, std::size_t b) {
  TTDC_DCHECK(a != b && a < num_nodes() && b < num_nodes(), "add_edge(", a, ", ", b,
              ") invalid for n = ", num_nodes());
  if (adjacency_[a].test(b)) return;
  adjacency_[a].set(b);
  adjacency_[b].set(a);
  ++num_edges_;
}

std::size_t Graph::max_degree() const {
  std::size_t d = 0;
  for (const auto& adj : adjacency_) d = std::max(d, adj.count());
  return d;
}

std::vector<std::pair<std::size_t, std::size_t>> Graph::edges() const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(num_edges_);
  for (std::size_t a = 0; a < num_nodes(); ++a) {
    adjacency_[a].for_each([&](std::size_t b) {
      if (a < b) out.emplace_back(a, b);
    });
  }
  return out;
}

bool Graph::is_connected() const {
  if (num_nodes() <= 1) return true;
  const auto dist = bfs_distances(0);
  for (std::size_t d : dist) {
    if (d == static_cast<std::size_t>(-1)) return false;
  }
  return true;
}

std::vector<std::size_t> Graph::bfs_distances(std::size_t source) const {
  std::vector<std::size_t> dist(num_nodes(), static_cast<std::size_t>(-1));
  std::queue<std::size_t> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    adjacency_[u].for_each([&](std::size_t v) {
      if (dist[v] == static_cast<std::size_t>(-1)) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    });
  }
  return dist;
}

std::vector<std::size_t> Graph::bfs_parents(std::size_t source) const {
  std::vector<std::size_t> parent(num_nodes(), static_cast<std::size_t>(-1));
  std::queue<std::size_t> frontier;
  parent[source] = source;
  frontier.push(source);
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    adjacency_[u].for_each([&](std::size_t v) {
      if (parent[v] == static_cast<std::size_t>(-1)) {
        parent[v] = u;
        frontier.push(v);
      }
    });
  }
  return parent;
}

std::uint64_t Graph::content_hash() const {
  // FNV-1a, 64-bit, over (n, then per node: degree + sorted neighbors).
  // Streaming members instead of raw words keeps the digest independent of
  // each row's sparse/dense representation; the degree prefix delimits the
  // per-node streams so adjacency cannot be reassociated across nodes.
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<std::uint64_t>(num_nodes()));
  for (const auto& adj : adjacency_) {
    mix(static_cast<std::uint64_t>(adj.count()));
    adj.for_each([&](std::size_t v) { mix(static_cast<std::uint64_t>(v)); });
  }
  return h;
}

bool Graph::same_adjacency(const Graph& other) const {
  if (num_nodes() != other.num_nodes()) return false;
  for (std::size_t u = 0; u < num_nodes(); ++u) {
    if (!(adjacency_[u] == other.adjacency_[u])) return false;
  }
  return true;
}

std::string Graph::to_string() const {
  std::ostringstream os;
  os << "Graph(n=" << num_nodes() << ", m=" << num_edges_ << ")";
  return os.str();
}

}  // namespace ttdc::net
