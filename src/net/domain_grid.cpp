#include "net/domain_grid.hpp"

#include <algorithm>
#include <cmath>

#include "net/graph.hpp"
#include "net/topology.hpp"

namespace ttdc::net {
namespace {

// Caps the lattice so a degenerate radius (-> 0) cannot allocate an
// unbounded number of cells; 4096^2 cells is far past the point where
// cells hold at most one node each.
constexpr std::size_t kMaxCellsPerAxis = 4096;

double clamp01(double v) { return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v); }

}  // namespace

DomainGrid::DomainGrid(const Positions& pos, double radius) {
  const std::size_t n = pos.x.size();
  // Cell side = 1/cols_ must be >= radius for the 3x3 invariant, so the
  // axis count is at most floor(1/radius). Shrinking cols_ below that only
  // enlarges cells, which keeps the invariant — so the count is further
  // capped by ~2*sqrt(n) (≈4 cells per node; finer buys nothing) and by a
  // hard lattice bound against degenerate radii.
  std::size_t desired = kMaxCellsPerAxis;
  if (radius >= 1.0) {
    desired = 1;
  } else if (radius > 0.0) {
    desired = static_cast<std::size_t>(1.0 / radius);
  }
  const auto occupancy_cap =
      static_cast<std::size_t>(2.0 * std::sqrt(static_cast<double>(n)) + 1.0);
  cols_ = std::max<std::size_t>(
      1, std::min({desired, occupancy_cap, kMaxCellsPerAxis}));
  xs_.resize(n);
  ys_.resize(n);
  cell_of_.resize(n);
  cells_.assign(cols_ * cols_, {});
  for (std::size_t i = 0; i < n; ++i) {
    xs_[i] = clamp01(pos.x[i]);
    ys_[i] = clamp01(pos.y[i]);
    const std::uint32_t cell = bucket(xs_[i], ys_[i]);
    cell_of_[i] = cell;
    cells_[cell].push_back(static_cast<std::uint32_t>(i));
  }
}

std::uint32_t DomainGrid::bucket(double x, double y) const {
  auto axis = [this](double v) {
    auto c = static_cast<std::size_t>(v * static_cast<double>(cols_));
    return std::min(c, cols_ - 1);
  };
  return static_cast<std::uint32_t>(axis(y) * cols_ + axis(x));
}

void DomainGrid::move(std::size_t node, double x, double y) {
  xs_[node] = clamp01(x);
  ys_[node] = clamp01(y);
  const std::uint32_t to = bucket(xs_[node], ys_[node]);
  const std::uint32_t from = cell_of_[node];
  if (to == from) return;
  auto& members = cells_[from];
  const auto it = std::find(members.begin(), members.end(),
                            static_cast<std::uint32_t>(node));
  *it = members.back();  // swap-erase: cell member order is not contractual
  members.pop_back();
  cells_[to].push_back(static_cast<std::uint32_t>(node));
  cell_of_[node] = to;
}

bool DomainGrid::audit_edges(const Graph& g) const {
  for (std::size_t a = 0; a < g.num_nodes(); ++a) {
    bool ok = true;
    const std::size_t ay = cell_of_[a] / cols_;
    const std::size_t ax = cell_of_[a] % cols_;
    g.neighbors(a).for_each([&](std::size_t b) {
      const std::size_t by = cell_of_[b] / cols_;
      const std::size_t bx = cell_of_[b] % cols_;
      const std::size_t dy = ay > by ? ay - by : by - ay;
      const std::size_t dx = ax > bx ? ax - bx : bx - ax;
      if (dx > 1 || dy > 1) ok = false;
    });
    if (!ok) return false;
  }
  return true;
}

std::size_t DomainGrid::max_occupancy() const {
  std::size_t best = 0;
  for (const auto& cell : cells_) best = std::max(best, cell.size());
  return best;
}

}  // namespace ttdc::net
