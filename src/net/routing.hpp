// Shortest-hop next-hop routing over a Graph, with a lazy per-destination
// cache.
//
// next_hop(u, dst) is the neighbor u forwards to on a shortest hop path to
// dst. The table is a cache of BFS-parent columns, one per destination,
// built on first use and invalidated wholesale by set_graph(): a simulator
// slot asking for the same (node, destination) hop every slot (a stalled
// queue head) pays one array load, and topology churn costs O(1) instead of
// the eager all-pairs rebuild the previous implementation did — only the
// destinations traffic actually uses are ever recomputed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/graph.hpp"

namespace ttdc::net {

class RoutingTable {
 public:
  /// Binds to `graph`; the graph must outlive the table. No routes are
  /// computed until the first next_hop() query.
  explicit RoutingTable(const Graph& graph);

  /// Rebinds to `graph` (same node count) and invalidates every cached
  /// column. O(number of previously built columns); no BFS runs here.
  void set_graph(const Graph& graph);

  /// Next hop from `from` toward `dst`; SIZE_MAX when unreachable;
  /// dst itself when from == dst. Builds and caches the dst column (one
  /// BFS) on first query for that destination.
  [[nodiscard]] std::size_t next_hop(std::size_t from, std::size_t dst) const {
    if (!built_[dst]) build_column(dst);
    return columns_[dst][from];
  }

  /// Eagerly builds every destination column. After this call next_hop()
  /// never mutates the table, so a fully built table is safe to share
  /// read-only across threads (the campaign runner's artifact cache relies
  /// on this; a lazily built table is NOT thread-safe).
  void build_all_columns();

  /// Number of destination columns currently materialized (observability /
  /// test hook for the cache behavior).
  [[nodiscard]] std::size_t cached_destinations() const;

 private:
  void build_column(std::size_t dst) const;

  const Graph* graph_;
  // columns_[dst][u] = parent of u in the BFS tree rooted at dst.
  mutable std::vector<std::vector<std::size_t>> columns_;
  mutable std::vector<std::uint8_t> built_;
};

}  // namespace ttdc::net
