// Spatial collision domains over unit-square node positions.
//
// A DomainGrid buckets nodes into square cells of side >= the transmission
// radius. That choice gives the invariant the sharded phase-2 kernel and
// the grid-accelerated unit-disk builder both lean on (DESIGN.md §13):
//
//   any two nodes within `radius` of each other — hence any interfering
//   pair in a unit-disk topology — lie in the same cell or in cells that
//   are Chebyshev-adjacent, i.e. a node's interferers are always inside
//   its 3x3 cell neighborhood.
//
// Buckets update incrementally: MobilityModel calls move() per node per
// epoch, which re-buckets only the nodes that actually crossed a cell
// boundary instead of rebuilding the grid. audit_edges() checks the
// invariant against a concrete Graph (used by tests and the simulator's
// audit path).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ttdc::net {

class Graph;       // net/graph.hpp
struct Positions;  // net/topology.hpp (which includes this header for MobilityModel)

class DomainGrid {
 public:
  /// Buckets `pos` with cell side max(radius, 1/kMaxCellsPerAxis). The grid
  /// keeps its own copy of the coordinates so move() can re-bucket without
  /// the caller's Positions outliving it.
  DomainGrid(const Positions& pos, double radius);

  [[nodiscard]] std::size_t num_nodes() const { return cell_of_.size(); }
  [[nodiscard]] std::size_t num_cells() const { return cells_.size(); }
  [[nodiscard]] std::size_t cells_per_axis() const { return cols_; }
  [[nodiscard]] double cell_size() const { return 1.0 / static_cast<double>(cols_); }

  /// Cell index of a node (row-major over the cell lattice).
  [[nodiscard]] std::uint32_t cell_of(std::size_t node) const { return cell_of_[node]; }

  /// Members of a cell (unordered; mutated by move()).
  [[nodiscard]] const std::vector<std::uint32_t>& cell_members(std::size_t cell) const {
    return cells_[cell];
  }

  /// Moves `node` to (x, y) (clamped to the unit square), re-bucketing only
  /// if the destination lies in a different cell. O(occupancy of old cell).
  void move(std::size_t node, double x, double y);

  /// Calls fn(other) for every node in the 3x3 cell neighborhood of `node`,
  /// including `node` itself. Every node within one radius of `node` is
  /// visited; nodes farther than radius*sqrt(8) never are.
  template <typename Fn>
  void for_each_candidate(std::size_t node, Fn&& fn) const {
    const std::uint32_t cell = cell_of_[node];
    const std::size_t cy = cell / cols_;
    const std::size_t cx = cell % cols_;
    const std::size_t x0 = cx > 0 ? cx - 1 : 0;
    const std::size_t x1 = cx + 1 < cols_ ? cx + 1 : cols_ - 1;
    const std::size_t y0 = cy > 0 ? cy - 1 : 0;
    const std::size_t y1 = cy + 1 < cols_ ? cy + 1 : cols_ - 1;
    for (std::size_t gy = y0; gy <= y1; ++gy) {
      for (std::size_t gx = x0; gx <= x1; ++gx) {
        for (std::uint32_t other : cells_[gy * cols_ + gx]) fn(other);
      }
    }
  }

  /// True iff every edge of `g` connects nodes whose cells are Chebyshev-
  /// adjacent (distance <= 1) — the 3x3-neighborhood invariant. A graph
  /// built by unit_disk_graph over the same positions/radius always passes.
  [[nodiscard]] bool audit_edges(const Graph& g) const;

  /// Largest cell population (diagnostic; drives shard balance).
  [[nodiscard]] std::size_t max_occupancy() const;

 private:
  [[nodiscard]] std::uint32_t bucket(double x, double y) const;

  std::size_t cols_ = 1;  // cells per axis (square lattice over the unit square)
  std::vector<double> xs_, ys_;
  std::vector<std::uint32_t> cell_of_;
  std::vector<std::vector<std::uint32_t>> cells_;
};

}  // namespace ttdc::net
