#include "combinatorics/params.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "combinatorics/constructions.hpp"
#include "gf/field.hpp"

namespace ttdc::comb {

std::string to_string(FamilyKind kind) {
  switch (kind) {
    case FamilyKind::kPolynomial: return "polynomial";
    case FamilyKind::kTruncatedPolynomial: return "truncated-oa";
    case FamilyKind::kAffinePlane: return "affine-plane";
    case FamilyKind::kProjectivePlane: return "projective-plane";
    case FamilyKind::kSteinerTriple: return "steiner-triple";
    case FamilyKind::kTdma: return "tdma";
  }
  return "?";
}

std::string FamilyPlan::to_string() const {
  std::ostringstream os;
  os << comb::to_string(kind);
  switch (kind) {
    case FamilyKind::kPolynomial: os << "(q=" << q << ",k=" << k << ")"; break;
    case FamilyKind::kTruncatedPolynomial:
      os << "(q=" << q << ",k=" << k << ",cols=" << columns << ")";
      break;
    case FamilyKind::kAffinePlane:
    case FamilyKind::kProjectivePlane: os << "(q=" << q << ")"; break;
    case FamilyKind::kSteinerTriple: os << "(v=" << q << ")"; break;
    case FamilyKind::kTdma: os << "(n=" << capacity << ")"; break;
  }
  os << " L=" << frame_length << " cap=" << capacity << " D<=" << max_degree;
  return os.str();
}

std::vector<FamilyPlan> enumerate_plans(std::size_t n, std::size_t d,
                                        std::size_t max_frame_length) {
  if (n == 0 || d == 0) throw std::invalid_argument("enumerate_plans: need n, d >= 1");
  if (max_frame_length == 0) max_frame_length = std::max<std::size_t>(n, 16);
  std::vector<FamilyPlan> plans;

  // TDMA is the universal fallback: frame n, any D.
  plans.push_back(FamilyPlan{FamilyKind::kTdma, 0, 0, 0, n, n, n > 0 ? n - 1 : 0});

  // Polynomial families: for each degree bound k, the smallest prime power q
  // with q >= k*D + 1 and q^(k+1) >= n; frame q^2. Additionally the
  // column-truncated variant keeping only k*D + 1 evaluation points:
  // frame (k*D + 1) * q at the same capacity (minimum worst-case slack:
  // exactly one guaranteed slot per link per frame).
  for (std::uint32_t k = 1; k <= 8; ++k) {
    std::uint64_t q = gf::next_prime_power(std::max<std::uint64_t>(
        static_cast<std::uint64_t>(k) * d + 1, 2));
    // Also need capacity q^(k+1) >= n.
    while (polynomial_family_capacity(static_cast<std::uint32_t>(q), k) < n) {
      q = gf::next_prime_power(q + 1);
    }
    const std::size_t frame = static_cast<std::size_t>(q) * q;
    if (frame > max_frame_length * 4 && k > 1) continue;  // hopeless for this n
    FamilyPlan plan;
    plan.kind = FamilyKind::kPolynomial;
    plan.q = static_cast<std::uint32_t>(q);
    plan.k = k;
    plan.capacity = polynomial_family_capacity(plan.q, k);
    plan.frame_length = frame;
    plan.max_degree = (q - 1) / k;
    plans.push_back(plan);

    const auto columns = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(k) * d + 1, q));
    if (columns < q) {
      FamilyPlan trunc = plan;
      trunc.kind = FamilyKind::kTruncatedPolynomial;
      trunc.columns = columns;
      trunc.frame_length = static_cast<std::size_t>(columns) * q;
      trunc.max_degree = (columns - 1) / k;  // == d by construction
      plans.push_back(trunc);
    }
  }

  // Affine plane: smallest prime power q with q >= D + 1 and q^2 + q >= n.
  {
    std::uint64_t q = gf::next_prime_power(std::max<std::uint64_t>(d + 1, 2));
    while (q * q + q < n) q = gf::next_prime_power(q + 1);
    plans.push_back(FamilyPlan{FamilyKind::kAffinePlane, static_cast<std::uint32_t>(q), 0, 0,
                               static_cast<std::size_t>(q * q + q),
                               static_cast<std::size_t>(q * q), static_cast<std::size_t>(q - 1)});
  }

  // Projective plane: smallest prime power q with q >= D and q^2 + q + 1 >= n.
  {
    std::uint64_t q = gf::next_prime_power(std::max<std::uint64_t>(d, 2));
    while (q * q + q + 1 < n) q = gf::next_prime_power(q + 1);
    plans.push_back(FamilyPlan{FamilyKind::kProjectivePlane, static_cast<std::uint32_t>(q), 0,
                               0, static_cast<std::size_t>(q * q + q + 1),
                               static_cast<std::size_t>(q * q + q + 1),
                               static_cast<std::size_t>(q)});
  }

  // Steiner triple systems only support D <= 2.
  if (d <= 2) {
    std::uint32_t v = 7;
    while (static_cast<std::size_t>(v) * (v - 1) / 6 < n ||
           (v % 6 != 1 && v % 6 != 3)) {
      ++v;
    }
    plans.push_back(FamilyPlan{FamilyKind::kSteinerTriple, v, 0, 0,
                               static_cast<std::size_t>(v) * (v - 1) / 6, v, 2});
  }

  // Keep only feasible plans and sort by frame length.
  std::erase_if(plans, [&](const FamilyPlan& p) {
    return p.capacity < n || p.max_degree < d || p.frame_length > max_frame_length;
  });
  std::sort(plans.begin(), plans.end(), [](const FamilyPlan& a, const FamilyPlan& b) {
    if (a.frame_length != b.frame_length) return a.frame_length < b.frame_length;
    return a.capacity > b.capacity;
  });
  return plans;
}

FamilyPlan best_plan(std::size_t n, std::size_t d) {
  const auto plans = enumerate_plans(n, d);
  if (plans.empty()) throw std::logic_error("best_plan: no feasible plan (TDMA should always fit)");
  return plans.front();
}

SetFamily build_plan(const FamilyPlan& plan, std::size_t n) {
  if (n > plan.capacity) throw std::invalid_argument("build_plan: n exceeds plan capacity");
  switch (plan.kind) {
    case FamilyKind::kPolynomial: return polynomial_family(plan.q, plan.k, n);
    case FamilyKind::kTruncatedPolynomial:
      return truncated_polynomial_family(plan.q, plan.k, plan.columns, n);
    case FamilyKind::kAffinePlane: return affine_plane_family(plan.q).truncated(n);
    case FamilyKind::kProjectivePlane: return projective_plane_family(plan.q).truncated(n);
    case FamilyKind::kSteinerTriple: return steiner_triple_family(plan.q).truncated(n);
    case FamilyKind::kTdma: return tdma_family(n);
  }
  throw std::logic_error("build_plan: unknown family kind");
}

}  // namespace ttdc::comb
