// The cover-free-family construction zoo.
//
// These are the constructions the paper's related work points at for
// building topology-transparent non-sleeping schedules:
//   * polynomial codes over GF(q) of degree k  (orthogonal-array / Ju-Li /
//     Chlamtac-Faragò style): up to q^(k+1) members, universe q^2,
//     D-cover-free for D <= (q-1)/k;
//   * affine planes AG(2,q): q^2 + q members, universe q^2, D <= q-1;
//   * projective planes PG(2,q): q^2 + q + 1 members, universe q^2 + q + 1,
//     D <= q;
//   * Steiner triple systems STS(v) (Bose v ≡ 3 mod 6, Skolem v ≡ 1 mod 6):
//     v(v-1)/6 members, universe v, D <= 2 (2-cover-free);
//   * the trivial TDMA family: n singleton sets, universe n, any D.
//
// All of them return SetFamily; src/core turns a family into the
// non-sleeping schedule <T> with T[slot] = { x : slot ∈ F_x }.
#pragma once

#include <cstdint>

#include "combinatorics/set_family.hpp"

namespace ttdc::comb {

/// Polynomial-code family: member w in [0, count) is the polynomial over
/// GF(q) whose coefficients are the base-q digits of w (degree <= k);
/// its set is { i*q + f_w(i) : i in [0, q) } in the universe [0, q^2).
///
/// Requires q a prime power, 1 <= k < q, count <= q^(k+1).
/// D-cover-free for every D <= (q-1)/k (distinct degree-<=k polynomials
/// agree on at most k field points).
SetFamily polynomial_family(std::uint32_t q, std::uint32_t k, std::size_t count);

/// Number of members available from polynomial_family(q, k, .): q^(k+1),
/// saturated at SIZE_MAX on overflow.
std::size_t polynomial_family_capacity(std::uint32_t q, std::uint32_t k);

/// Column-truncated polynomial family: like polynomial_family but
/// evaluating only at the first `columns` field points, universe
/// [0, columns * q). Two distinct members still agree in at most k slots,
/// so the family is D-cover-free for D <= (columns - 1) / k — with the
/// minimum columns = k*D + 1 this shortens the frame from q^2 to
/// (k*D + 1) * q at the same capacity q^(k+1), at the price of fewer
/// guaranteed slots per frame (1 instead of q - D*k in the worst case).
/// Requires 1 <= k < columns <= q.
SetFamily truncated_polynomial_family(std::uint32_t q, std::uint32_t k,
                                      std::uint32_t columns, std::size_t count);

/// Affine plane AG(2,q): members are the q^2 + q lines, universe the q^2
/// points; each line has q points, two lines meet in <= 1 point, so
/// D-cover-free for D <= q - 1. Requires q a prime power.
SetFamily affine_plane_family(std::uint32_t q);

/// Projective plane PG(2,q): members are the q^2 + q + 1 lines, universe the
/// q^2 + q + 1 points; each line has q + 1 points, two lines meet in exactly
/// one point, so D-cover-free for D <= q. Requires q a prime power.
SetFamily projective_plane_family(std::uint32_t q);

/// Steiner triple system STS(v): members are the v(v-1)/6 triples, universe
/// the v points; 2-cover-free. Requires v ≡ 1 or 3 (mod 6), v >= 7.
/// Uses the Bose construction for v ≡ 3 (mod 6) and the Skolem
/// (half-idempotent quasigroup) construction for v ≡ 1 (mod 6).
SetFamily steiner_triple_family(std::uint32_t v);

/// The classical TDMA family: n members, universe n, member i = {i}.
/// Cover-free for every D (disjoint sets); frame length n.
SetFamily tdma_family(std::size_t n);

/// True if every pair of points appears in exactly one member triple --
/// the Steiner-system axiom; used by tests and benches as the oracle for
/// steiner_triple_family.
bool is_steiner_triple_system(const SetFamily& family);

}  // namespace ttdc::comb
