// Set families over a finite universe, and D-cover-freeness verification.
//
// A topology-transparent non-sleeping schedule for N_n^D is exactly a
// D-cover-free family (CFF): assign node x the slot set F_x; Requirement 1
// ("freeSlots(x, Y) != empty for every D-set Y") says no member set is
// covered by the union of any D others [Syrotiuk-Colbourn-Ling 03,
// Colbourn-Ling-Syrotiuk 04]. This module is the bridge between the design
// theory (src/combinatorics/constructions.*) and schedules (src/core).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace ttdc::comb {

/// A family of subsets of the universe [0, universe_size).
/// Member i's set is sets()[i]; all bitsets share the same universe size.
class SetFamily {
 public:
  SetFamily(std::size_t universe_size, std::vector<util::DynamicBitset> sets);

  [[nodiscard]] std::size_t universe_size() const { return universe_size_; }
  [[nodiscard]] std::size_t num_members() const { return sets_.size(); }
  [[nodiscard]] const util::DynamicBitset& set_of(std::size_t member) const {
    return sets_[member];
  }
  [[nodiscard]] const std::vector<util::DynamicBitset>& sets() const { return sets_; }

  /// Smallest and largest member-set cardinalities.
  [[nodiscard]] std::size_t min_set_size() const;
  [[nodiscard]] std::size_t max_set_size() const;

  /// Largest pairwise intersection |F_x ∩ F_y| over distinct members. A
  /// family with min set size w and max pairwise intersection λ is
  /// D-cover-free for all D <= (w-1)/λ (D < w/λ); this is the cheap
  /// O(n^2 L/64) sufficient certificate used before the exact check.
  [[nodiscard]] std::size_t max_pairwise_intersection() const;

  /// D guaranteed by the (w, λ) certificate: floor((w-1)/λ), or num_members-1
  /// if λ == 0 (disjoint sets). Zero-member/one-member families return 0.
  [[nodiscard]] std::size_t cover_free_degree_certificate() const;

  /// Restricts the family to its first `count` members.
  [[nodiscard]] SetFamily truncated(std::size_t count) const;

 private:
  std::size_t universe_size_;
  std::vector<util::DynamicBitset> sets_;
};

/// Witness of a cover-freeness violation: member x's set is covered by the
/// union of the listed members' sets.
struct CoverViolation {
  std::size_t member;
  std::vector<std::size_t> covering;
  [[nodiscard]] std::string to_string() const;
};

/// Exact D-cover-freeness check by enumerating, for every member x, every
/// D-subset of the remaining members (early exit on first violation;
/// parallel over x). Cost n * C(n-1, D) bitset folds -- use for small/medium
/// instances and in tests.
std::optional<CoverViolation> find_cover_violation_exact(const SetFamily& family,
                                                         std::size_t d);

/// Monte-Carlo check: samples `trials` random (x, D-subset) pairs. Returns a
/// violation if one is found; nullopt means "no violation found", not proof.
std::optional<CoverViolation> find_cover_violation_sampled(const SetFamily& family,
                                                           std::size_t d, std::size_t trials,
                                                           util::Xoshiro256& rng);

/// Greedy adversarial check: for each member x, greedily picks the D other
/// members covering most of F_x. Finds violations the sampler misses when
/// they are rare; still not a proof of cover-freeness when it returns
/// nullopt.
std::optional<CoverViolation> find_cover_violation_greedy(const SetFamily& family,
                                                          std::size_t d);

}  // namespace ttdc::comb
