#include "combinatorics/set_family.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>

#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/subsets.hpp"

namespace ttdc::comb {

SetFamily::SetFamily(std::size_t universe_size, std::vector<util::DynamicBitset> sets)
    : universe_size_(universe_size), sets_(std::move(sets)) {
  for ([[maybe_unused]] const auto& s : sets_) {
    TTDC_DCHECK(s.size() == universe_size_, "set universe ", s.size(),
                " != family universe ", universe_size_);
  }
}

std::size_t SetFamily::min_set_size() const {
  std::size_t m = universe_size_ + 1;
  for (const auto& s : sets_) m = std::min(m, s.count());
  return sets_.empty() ? 0 : m;
}

std::size_t SetFamily::max_set_size() const {
  std::size_t m = 0;
  for (const auto& s : sets_) m = std::max(m, s.count());
  return m;
}

std::size_t SetFamily::max_pairwise_intersection() const {
  std::size_t lambda = 0;
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    for (std::size_t j = i + 1; j < sets_.size(); ++j) {
      lambda = std::max(lambda, sets_[i].intersection_count(sets_[j]));
    }
  }
  return lambda;
}

std::size_t SetFamily::cover_free_degree_certificate() const {
  if (sets_.size() < 2) return 0;
  const std::size_t w = min_set_size();
  if (w == 0) return 0;
  const std::size_t lambda = max_pairwise_intersection();
  if (lambda == 0) return sets_.size() - 1;
  return (w - 1) / lambda;
}

SetFamily SetFamily::truncated(std::size_t count) const {
  TTDC_DCHECK(count <= sets_.size(), "truncated(", count, ") beyond family size ",
              sets_.size());
  return SetFamily(universe_size_,
                   std::vector<util::DynamicBitset>(sets_.begin(), sets_.begin() + count));
}

std::string CoverViolation::to_string() const {
  std::ostringstream os;
  os << "member " << member << " covered by {";
  for (std::size_t i = 0; i < covering.size(); ++i) {
    if (i) os << ", ";
    os << covering[i];
  }
  os << '}';
  return os.str();
}

namespace {

// Checks whether member x's set is covered by the union of `others`' sets.
bool covered_by(const SetFamily& family, std::size_t x, std::span<const std::size_t> others) {
  util::DynamicBitset uncovered = family.set_of(x);
  for (std::size_t o : others) {
    uncovered.subtract(family.set_of(o));
    if (uncovered.none()) return true;
  }
  return uncovered.none();
}

}  // namespace

std::optional<CoverViolation> find_cover_violation_exact(const SetFamily& family,
                                                         std::size_t d) {
  const std::size_t n = family.num_members();
  if (n == 0 || d == 0) return std::nullopt;
  std::optional<CoverViolation> result;
  std::mutex result_mutex;
  std::atomic<bool> found{false};

  util::parallel_for(0, n, [&](std::size_t x) {
    if (found.load(std::memory_order_relaxed)) return;
    // The pool of members other than x, by index.
    std::vector<std::size_t> pool;
    pool.reserve(n - 1);
    for (std::size_t i = 0; i < n; ++i) {
      if (i != x) pool.push_back(i);
    }
    util::for_each_k_subset(pool.size(), std::min(d, pool.size()),
                            [&](std::span<const std::size_t> idx) {
                              std::vector<std::size_t> others(idx.size());
                              for (std::size_t i = 0; i < idx.size(); ++i) {
                                others[i] = pool[idx[i]];
                              }
                              if (covered_by(family, x, others)) {
                                std::lock_guard lock(result_mutex);
                                if (!result) result = CoverViolation{x, others};
                                found.store(true, std::memory_order_relaxed);
                                return false;
                              }
                              return !found.load(std::memory_order_relaxed);
                            });
  });
  return result;
}

std::optional<CoverViolation> find_cover_violation_sampled(const SetFamily& family,
                                                           std::size_t d, std::size_t trials,
                                                           util::Xoshiro256& rng) {
  const std::size_t n = family.num_members();
  if (n < 2 || d == 0) return std::nullopt;
  const std::size_t dd = std::min(d, n - 1);
  for (std::size_t t = 0; t < trials; ++t) {
    const std::size_t x = static_cast<std::size_t>(rng.below(n));
    // Sample a D-subset of [0, n-1) and shift indices >= x by one to skip x.
    std::vector<std::size_t> others = util::sample_k_of(n - 1, dd, rng);
    for (auto& o : others) {
      if (o >= x) ++o;
    }
    if (covered_by(family, x, others)) return CoverViolation{x, others};
  }
  return std::nullopt;
}

std::optional<CoverViolation> find_cover_violation_greedy(const SetFamily& family,
                                                          std::size_t d) {
  const std::size_t n = family.num_members();
  if (n < 2 || d == 0) return std::nullopt;
  const std::size_t dd = std::min(d, n - 1);
  std::optional<CoverViolation> result;
  std::mutex result_mutex;

  util::parallel_for(0, n, [&](std::size_t x) {
    util::DynamicBitset uncovered = family.set_of(x);
    std::vector<std::size_t> chosen;
    std::vector<bool> used(n, false);
    used[x] = true;
    for (std::size_t round = 0; round < dd && uncovered.any(); ++round) {
      std::size_t best = n;
      std::size_t best_gain = 0;
      for (std::size_t o = 0; o < n; ++o) {
        if (used[o]) continue;
        const std::size_t gain = uncovered.intersection_count(family.set_of(o));
        if (gain > best_gain) {
          best_gain = gain;
          best = o;
        }
      }
      if (best == n) break;  // nothing overlaps the remainder
      used[best] = true;
      chosen.push_back(best);
      uncovered.subtract(family.set_of(best));
    }
    if (uncovered.none()) {
      // Pad to exactly dd members (covering stays valid with extras).
      for (std::size_t o = 0; o < n && chosen.size() < dd; ++o) {
        if (!used[o]) {
          used[o] = true;
          chosen.push_back(o);
        }
      }
      std::lock_guard lock(result_mutex);
      if (!result) result = CoverViolation{x, chosen};
    }
  });
  return result;
}

}  // namespace ttdc::comb
