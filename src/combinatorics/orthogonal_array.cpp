#include "combinatorics/orthogonal_array.hpp"

#include <stdexcept>

#include "gf/field.hpp"
#include "obs/profile.hpp"
#include "util/subsets.hpp"

namespace ttdc::comb {

OrthogonalArray::OrthogonalArray(std::size_t num_rows, std::size_t num_columns,
                                 std::uint32_t levels, std::vector<std::uint32_t> entries)
    : num_rows_(num_rows), num_columns_(num_columns), levels_(levels),
      entries_(std::move(entries)) {
  if (num_rows_ == 0 || num_columns_ == 0 || levels_ < 2) {
    throw std::invalid_argument("OrthogonalArray: need rows, columns >= 1 and levels >= 2");
  }
  if (entries_.size() != num_rows_ * num_columns_) {
    throw std::invalid_argument("OrthogonalArray: entry count != rows * columns");
  }
  for (std::uint32_t e : entries_) {
    if (e >= levels_) throw std::invalid_argument("OrthogonalArray: entry out of range");
  }
}

bool OrthogonalArray::verify_strength(std::uint32_t t) const {
  if (t == 0 || t > num_columns_) return false;
  // Strength t with index λ requires N = λ q^t rows for integer λ >= 1,
  // and every t-tuple to appear exactly λ times in every t-column choice.
  std::size_t tuples = 1;
  for (std::uint32_t i = 0; i < t; ++i) {
    if (tuples > num_rows_) return false;
    tuples *= levels_;
  }
  if (num_rows_ % tuples != 0) return false;
  const std::size_t lambda = num_rows_ / tuples;

  std::vector<std::size_t> count(tuples);
  bool ok = true;
  util::for_each_k_subset(num_columns_, t, [&](std::span<const std::size_t> cols) {
    std::fill(count.begin(), count.end(), 0);
    for (std::size_t r = 0; r < num_rows_; ++r) {
      std::size_t code = 0;
      for (std::size_t c : cols) code = code * levels_ + at(r, c);
      if (++count[code] > lambda) {
        ok = false;
        return false;  // a t-tuple over-represented
      }
    }
    // Total rows == lambda * tuples and no code exceeded lambda, so every
    // code appeared exactly lambda times.
    return true;
  });
  return ok;
}

OrthogonalArray polynomial_orthogonal_array(std::uint32_t q, std::uint32_t strength,
                                            std::uint32_t num_columns) {
  TTDC_PROF_SCOPE("comb.polynomial_orthogonal_array");
  if (strength == 0 || strength > q || num_columns == 0 || num_columns > q) {
    throw std::invalid_argument(
        "polynomial_orthogonal_array: need 1 <= t <= q and 1 <= k <= q");
  }
  const gf::GaloisField F(q);
  std::size_t rows = 1;
  for (std::uint32_t i = 0; i < strength; ++i) rows *= q;
  std::vector<std::uint32_t> entries;
  entries.reserve(rows * num_columns);
  std::vector<std::uint32_t> coeffs(strength);
  for (std::size_t r = 0; r < rows; ++r) {
    std::size_t w = r;
    for (std::uint32_t i = 0; i < strength; ++i) {
      coeffs[i] = static_cast<std::uint32_t>(w % q);
      w /= q;
    }
    for (std::uint32_t c = 0; c < num_columns; ++c) {
      entries.push_back(gf::eval_poly(F, coeffs, c));
    }
  }
  return OrthogonalArray(rows, num_columns, q, std::move(entries));
}

SetFamily oa_to_family(const OrthogonalArray& oa, std::size_t member_count) {
  if (member_count > oa.num_rows()) {
    throw std::invalid_argument("oa_to_family: member_count exceeds OA rows");
  }
  const std::size_t universe = oa.num_columns() * oa.levels();
  std::vector<util::DynamicBitset> sets;
  sets.reserve(member_count);
  for (std::size_t r = 0; r < member_count; ++r) {
    util::DynamicBitset s(universe);
    for (std::size_t c = 0; c < oa.num_columns(); ++c) {
      s.set(c * oa.levels() + oa.at(r, c));
    }
    sets.push_back(std::move(s));
  }
  return SetFamily(universe, std::move(sets));
}

}  // namespace ttdc::comb
