#include "combinatorics/constructions.hpp"

#include <array>
#include <limits>
#include <stdexcept>

#include "gf/field.hpp"
#include "obs/profile.hpp"
#include "util/check.hpp"

namespace ttdc::comb {

namespace {

using util::DynamicBitset;

// Base-q digits of w, lowest first, k+1 of them.
std::vector<std::uint32_t> digits_base_q(std::size_t w, std::uint32_t q, std::uint32_t count) {
  std::vector<std::uint32_t> d(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    d[i] = static_cast<std::uint32_t>(w % q);
    w /= q;
  }
  return d;
}

}  // namespace

std::size_t polynomial_family_capacity(std::uint32_t q, std::uint32_t k) {
  std::size_t cap = 1;
  for (std::uint32_t i = 0; i <= k; ++i) {
    if (cap > std::numeric_limits<std::size_t>::max() / q) {
      return std::numeric_limits<std::size_t>::max();
    }
    cap *= q;
  }
  return cap;
}

SetFamily truncated_polynomial_family(std::uint32_t q, std::uint32_t k,
                                      std::uint32_t columns, std::size_t count) {
  TTDC_PROF_SCOPE("comb.polynomial_family");
  if (k == 0 || k >= columns || columns > q) {
    throw std::invalid_argument("truncated_polynomial_family: need 1 <= k < columns <= q");
  }
  if (count > polynomial_family_capacity(q, k)) {
    throw std::invalid_argument("truncated_polynomial_family: count exceeds q^(k+1)");
  }
  const gf::GaloisField F(q);  // validates q is a prime power
  const std::size_t universe = static_cast<std::size_t>(columns) * q;
  std::vector<DynamicBitset> sets;
  sets.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    const auto coeffs = digits_base_q(w, q, k + 1);
    DynamicBitset s(universe);
    for (std::uint32_t i = 0; i < columns; ++i) {
      s.set(static_cast<std::size_t>(i) * q + gf::eval_poly(F, coeffs, i));
    }
    sets.push_back(std::move(s));
  }
  return SetFamily(universe, std::move(sets));
}

SetFamily polynomial_family(std::uint32_t q, std::uint32_t k, std::size_t count) {
  return truncated_polynomial_family(q, k, q, count);
}

SetFamily affine_plane_family(std::uint32_t q) {
  const gf::GaloisField F(q);
  const std::size_t universe = static_cast<std::size_t>(q) * q;  // points (x, y) -> x*q + y
  std::vector<DynamicBitset> sets;
  sets.reserve(static_cast<std::size_t>(q) * q + q);
  // Non-vertical lines y = a*x + b.
  for (std::uint32_t a = 0; a < q; ++a) {
    for (std::uint32_t b = 0; b < q; ++b) {
      DynamicBitset line(universe);
      for (std::uint32_t x = 0; x < q; ++x) {
        line.set(static_cast<std::size_t>(x) * q + F.add(F.mul(a, x), b));
      }
      sets.push_back(std::move(line));
    }
  }
  // Vertical lines x = c.
  for (std::uint32_t c = 0; c < q; ++c) {
    DynamicBitset line(universe);
    for (std::uint32_t y = 0; y < q; ++y) {
      line.set(static_cast<std::size_t>(c) * q + y);
    }
    sets.push_back(std::move(line));
  }
  return SetFamily(universe, std::move(sets));
}

SetFamily projective_plane_family(std::uint32_t q) {
  const gf::GaloisField F(q);
  // Canonical representatives of PG(2,q) points/lines:
  //   (1, a, b)  -> index a*q + b                  (q^2 of them)
  //   (0, 1, a)  -> index q^2 + a                  (q of them)
  //   (0, 0, 1)  -> index q^2 + q                  (1 of them)
  const std::size_t universe = static_cast<std::size_t>(q) * q + q + 1;
  auto point_index = [&](std::uint32_t x, std::uint32_t y, std::uint32_t z) -> std::size_t {
    if (x != 0) {
      const std::uint32_t xi = F.inv(x);
      return static_cast<std::size_t>(F.mul(y, xi)) * q + F.mul(z, xi);
    }
    if (y != 0) {
      return static_cast<std::size_t>(q) * q + F.mul(z, F.inv(y));
    }
    TTDC_DCHECK(z != 0, "projective point (0,0,0) is not a point");
    return static_cast<std::size_t>(q) * q + q;
  };

  // Enumerate lines by the same canonical forms; incidence l . p == 0.
  std::vector<std::array<std::uint32_t, 3>> lines;
  lines.reserve(universe);
  for (std::uint32_t a = 0; a < q; ++a) {
    for (std::uint32_t b = 0; b < q; ++b) lines.push_back({1, a, b});
  }
  for (std::uint32_t a = 0; a < q; ++a) lines.push_back({0, 1, a});
  lines.push_back({0, 0, 1});

  std::vector<DynamicBitset> sets;
  sets.reserve(lines.size());
  for (const auto& l : lines) {
    DynamicBitset s(universe);
    // Walk all canonical points and test incidence.
    auto incident = [&](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
      const std::uint32_t dot = F.add(F.add(F.mul(l[0], x), F.mul(l[1], y)), F.mul(l[2], z));
      if (dot == 0) s.set(point_index(x, y, z));
    };
    for (std::uint32_t a = 0; a < q; ++a) {
      for (std::uint32_t b = 0; b < q; ++b) incident(1, a, b);
    }
    for (std::uint32_t a = 0; a < q; ++a) incident(0, 1, a);
    incident(0, 0, 1);
    TTDC_DCHECK(s.count() == static_cast<std::size_t>(q) + 1, "projective line has ",
                s.count(), " points, expected q+1 = ", q + 1);
    sets.push_back(std::move(s));
  }
  return SetFamily(universe, std::move(sets));
}

namespace {

// Point (i, level) of the Bose/Skolem constructions -> bitset index.
std::size_t triple_point(std::uint32_t i, std::uint32_t level, std::uint32_t group_size) {
  return static_cast<std::size_t>(level) * group_size + i;
}

// Bose construction for v = 6n + 3: points Z_{2n+1} x {0,1,2}; idempotent
// commutative quasigroup i∘j = (i+j)(n+1) mod (2n+1).
SetFamily bose_sts(std::uint32_t v) {
  const std::uint32_t g = v / 3;  // 2n + 1
  const std::uint32_t n = (g - 1) / 2;
  const std::uint32_t half = n + 1;  // multiplicative inverse of 2 mod g
  auto qop = [&](std::uint32_t i, std::uint32_t j) {
    return static_cast<std::uint32_t>((static_cast<std::uint64_t>(i + j) * half) % g);
  };
  std::vector<DynamicBitset> blocks;
  blocks.reserve(static_cast<std::size_t>(v) * (v - 1) / 6);
  for (std::uint32_t i = 0; i < g; ++i) {
    DynamicBitset b(v);
    b.set(triple_point(i, 0, g));
    b.set(triple_point(i, 1, g));
    b.set(triple_point(i, 2, g));
    blocks.push_back(std::move(b));
  }
  for (std::uint32_t k = 0; k < 3; ++k) {
    for (std::uint32_t i = 0; i < g; ++i) {
      for (std::uint32_t j = i + 1; j < g; ++j) {
        DynamicBitset b(v);
        b.set(triple_point(i, k, g));
        b.set(triple_point(j, k, g));
        b.set(triple_point(qop(i, j), (k + 1) % 3, g));
        blocks.push_back(std::move(b));
      }
    }
  }
  return SetFamily(v, std::move(blocks));
}

// Skolem construction for v = 6n + 1: points (Z_{2n} x {0,1,2}) ∪ {∞};
// half-idempotent commutative quasigroup i∘j = π((i+j) mod 2n) with
// π(2k) = k, π(2k+1) = n + k.
SetFamily skolem_sts(std::uint32_t v) {
  const std::uint32_t n = (v - 1) / 6;
  const std::uint32_t g = 2 * n;
  const std::size_t infinity = static_cast<std::size_t>(3) * g;  // index of ∞
  auto pi = [&](std::uint32_t s) {
    return (s % 2 == 0) ? s / 2 : n + (s - 1) / 2;
  };
  auto qop = [&](std::uint32_t i, std::uint32_t j) { return pi((i + j) % g); };
  std::vector<DynamicBitset> blocks;
  blocks.reserve(static_cast<std::size_t>(v) * (v - 1) / 6);
  // Type 1: {(i,0),(i,1),(i,2)} for the idempotent half 0 <= i < n.
  for (std::uint32_t i = 0; i < n; ++i) {
    DynamicBitset b(v);
    b.set(triple_point(i, 0, g));
    b.set(triple_point(i, 1, g));
    b.set(triple_point(i, 2, g));
    blocks.push_back(std::move(b));
  }
  // Type 2: {∞, (n+i, k), (i, k+1)} for 0 <= i < n, k in {0,1,2}.
  for (std::uint32_t k = 0; k < 3; ++k) {
    for (std::uint32_t i = 0; i < n; ++i) {
      DynamicBitset b(v);
      b.set(infinity);
      b.set(triple_point(n + i, k, g));
      b.set(triple_point(i, (k + 1) % 3, g));
      blocks.push_back(std::move(b));
    }
  }
  // Type 3: {(i,k),(j,k),(i∘j,k+1)} for i < j.
  for (std::uint32_t k = 0; k < 3; ++k) {
    for (std::uint32_t i = 0; i < g; ++i) {
      for (std::uint32_t j = i + 1; j < g; ++j) {
        DynamicBitset b(v);
        b.set(triple_point(i, k, g));
        b.set(triple_point(j, k, g));
        b.set(triple_point(qop(i, j), (k + 1) % 3, g));
        blocks.push_back(std::move(b));
      }
    }
  }
  return SetFamily(v, std::move(blocks));
}

}  // namespace

SetFamily steiner_triple_family(std::uint32_t v) {
  TTDC_PROF_SCOPE("comb.steiner_triple_family");
  if (v < 7 || (v % 6 != 1 && v % 6 != 3)) {
    throw std::invalid_argument("steiner_triple_family: need v ≡ 1 or 3 (mod 6), v >= 7");
  }
  return (v % 6 == 3) ? bose_sts(v) : skolem_sts(v);
}

SetFamily tdma_family(std::size_t n) {
  std::vector<DynamicBitset> sets;
  sets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    DynamicBitset s(n);
    s.set(i);
    sets.push_back(std::move(s));
  }
  return SetFamily(n, std::move(sets));
}

bool is_steiner_triple_system(const SetFamily& family) {
  const std::size_t v = family.universe_size();
  // pair_count[a][b] for a < b, flattened.
  std::vector<std::uint8_t> pair_count(v * v, 0);
  for (const auto& block : family.sets()) {
    if (block.count() != 3) return false;
    const auto pts = block.to_vector();
    const std::size_t pairs[3][2] = {
        {pts[0], pts[1]}, {pts[0], pts[2]}, {pts[1], pts[2]}};
    for (const auto& pr : pairs) {
      auto& c = pair_count[pr[0] * v + pr[1]];
      if (c == 1) return false;  // pair covered twice
      c = 1;
    }
  }
  for (std::size_t a = 0; a < v; ++a) {
    for (std::size_t b = a + 1; b < v; ++b) {
      if (pair_count[a * v + b] != 1) return false;
    }
  }
  return true;
}

}  // namespace ttdc::comb
