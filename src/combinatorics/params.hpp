// Parameter selection: which cover-free family should back a
// topology-transparent schedule for the network class N_n^D?
//
// The paper takes the non-sleeping schedule as given; downstream users need
// the planner below, which searches the construction zoo for the smallest
// frame length supporting (n, D).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "combinatorics/set_family.hpp"

namespace ttdc::comb {

enum class FamilyKind : std::uint8_t {
  kPolynomial,          // polynomial_family(q, k)
  kTruncatedPolynomial, // truncated_polynomial_family(q, k, columns)
  kAffinePlane,         // affine_plane_family(q)
  kProjectivePlane,     // projective_plane_family(q)
  kSteinerTriple,       // steiner_triple_family(v)
  kTdma,                // tdma_family(n)
};

[[nodiscard]] std::string to_string(FamilyKind kind);

/// A candidate plan: which construction, with which parameters, and the
/// frame length / capacity it yields.
struct FamilyPlan {
  FamilyKind kind;
  std::uint32_t q = 0;        // field order (polynomial/planes) or v (STS)
  std::uint32_t k = 0;        // polynomial degree bound (polynomial only)
  std::uint32_t columns = 0;  // evaluation points kept (truncated OA only)
  std::size_t capacity = 0;   // max number of supported nodes
  std::size_t frame_length = 0;
  std::size_t max_degree = 0;  // largest D the family is cover-free for

  [[nodiscard]] std::string to_string() const;
};

/// All constructions from the zoo that support at least n members with
/// cover-free degree >= D, sorted by frame length ascending (ties: larger
/// capacity first). Search is bounded by `max_frame_length` (0 = the TDMA
/// fallback bound, frame length n).
std::vector<FamilyPlan> enumerate_plans(std::size_t n, std::size_t d,
                                        std::size_t max_frame_length = 0);

/// The shortest-frame plan for (n, D); TDMA (frame n) always qualifies, so
/// this never fails for n >= 1, D >= 1.
FamilyPlan best_plan(std::size_t n, std::size_t d);

/// Materializes a plan into the actual family, truncated to exactly n
/// members.
SetFamily build_plan(const FamilyPlan& plan, std::size_t n);

}  // namespace ttdc::comb
