// Orthogonal arrays and their bridge to cover-free families.
//
// The paper's §2: "the constructions in [Chlamtac-Faragò 94, Ju-Li 98] are
// indeed to construct a cover-free family using an orthogonal array", and
// [Syrotiuk-Colbourn-Ling 03] works from OAs directly. This module makes
// the object explicit: an OA(N, k, q, t) of index 1 (N = q^t runs, k
// factors, q levels, strength t), the classical polynomial construction
// over GF(q), exact strength verification, and the OA -> set-family adapter
// whose output feeds the schedule builders.
#pragma once

#include <cstdint>
#include <vector>

#include "combinatorics/set_family.hpp"

namespace ttdc::comb {

/// An N x k array with entries in [0, q). Strength t with index 1 means:
/// in every N x t subarray, every t-tuple over [0, q) appears exactly once
/// (so N = q^t).
class OrthogonalArray {
 public:
  /// rows: row-major N x k entries. Validates shape only; use
  /// verify_strength for the combinatorial property.
  OrthogonalArray(std::size_t num_rows, std::size_t num_columns, std::uint32_t levels,
                  std::vector<std::uint32_t> entries);

  [[nodiscard]] std::size_t num_rows() const { return num_rows_; }
  [[nodiscard]] std::size_t num_columns() const { return num_columns_; }
  [[nodiscard]] std::uint32_t levels() const { return levels_; }

  [[nodiscard]] std::uint32_t at(std::size_t row, std::size_t column) const {
    return entries_[row * num_columns_ + column];
  }

  /// Exact strength-t check at the natural index λ = N / q^t: every
  /// t-column projection hits every t-tuple exactly λ times (false when
  /// q^t does not divide N). Cost C(k, t) * N.
  [[nodiscard]] bool verify_strength(std::uint32_t t) const;

 private:
  std::size_t num_rows_;
  std::size_t num_columns_;
  std::uint32_t levels_;
  std::vector<std::uint32_t> entries_;
};

/// The classical polynomial OA(q^t, k, q, t) of index 1 over GF(q):
/// rows are the q^t polynomials of degree < t, columns the first k field
/// points (k <= q), entry (f, x) = f(x). Requires q a prime power,
/// 1 <= t <= q, k <= q.
OrthogonalArray polynomial_orthogonal_array(std::uint32_t q, std::uint32_t strength,
                                            std::uint32_t num_columns);

/// The Chlamtac-Faragò / Ju-Li adapter: row r of the OA becomes member r's
/// set { c * q + A[r][c] : c in [0, k) } in the universe [0, k * q) -- each
/// column is a subframe of q slots and the member transmits in the slot
/// selected by its symbol.
///
/// For an OA of strength t and index 1, two distinct rows agree in at most
/// t - 1 columns, so the family is D-cover-free for D <= (k - 1) / (t - 1)
/// (equivalently the polynomial family with k = q, degree t - 1).
SetFamily oa_to_family(const OrthogonalArray& oa, std::size_t member_count);

}  // namespace ttdc::comb
