// Topology-transparency requirement checkers (paper §4).
//
// Requirement 1 [Colbourn-Ling-Syrotiuk 04]: a non-sleeping schedule <T> is
// topology-transparent for N_n^D iff freeSlots(x, Y) != ∅ for every node x
// and every D-set Y ⊆ V_n - {x}.
//
// Requirement 2 [Dukes-Colbourn-Syrotiuk 06]: for all x != y and every set
// {y_1..y_d} of d <= D-1 other nodes, ∪_i σ(y_i, y) does not contain σ(x, y).
//
// Requirement 3 (the paper's reformulation): for every x and D-set Y,
//   (1) freeSlots(x, Y) != ∅, and
//   (2) recv(y_k) ∩ freeSlots(x, Y) != ∅ for every y_k ∈ Y.
// Theorem 1 proves Requirement 2 ⟺ Requirement 3; the test suite
// cross-validates the two checkers on random schedules.
//
// Each requirement has an exact checker (full enumeration with prefix-union
// pruning, parallel over x — a proof) and a sampled checker (Monte-Carlo —
// a refutation search for instances too large to enumerate).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "util/rng.hpp"

namespace ttdc::core {

/// A witness that a schedule is NOT topology-transparent for N_n^D: node
/// x cannot be guaranteed to reach receiver y when y's neighborhood within
/// the witness set is as listed. For Requirement-1 violations (no free slot
/// at all) `receiver` is npos and `neighborhood` is the covering Y.
struct TransparencyViolation {
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t transmitter = npos;
  std::size_t receiver = npos;
  std::vector<std::size_t> neighborhood;
  [[nodiscard]] std::string to_string() const;
};

/// Exact Requirement 1 check of the non-sleeping reduct <T> (only tran() is
/// consulted). Returns a violation or nullopt (= proof it holds).
/// Requires D <= num_nodes - 1.
std::optional<TransparencyViolation> check_requirement1_exact(const Schedule& schedule,
                                                              std::size_t degree_bound);

/// Exact Requirement 2 check, implemented literally from the definition
/// (σ-set covering over all (x, y) pairs and (D-1)-subsets). Slower than
/// Requirement 3; exists as the independent oracle for Theorem 1.
std::optional<TransparencyViolation> check_requirement2_exact(const Schedule& schedule,
                                                              std::size_t degree_bound);

/// Exact Requirement 3 check (conditions (1) and (2)); the production
/// checker. nullopt = the schedule is topology-transparent for N_n^D.
std::optional<TransparencyViolation> check_requirement3_exact(const Schedule& schedule,
                                                              std::size_t degree_bound);

/// Monte-Carlo Requirement 3 check: `trials` random (x, Y) pairs. A returned
/// violation is real; nullopt is NOT a proof.
std::optional<TransparencyViolation> check_requirement3_sampled(const Schedule& schedule,
                                                                std::size_t degree_bound,
                                                                std::size_t trials,
                                                                util::Xoshiro256& rng);

/// Convenience: true iff check_requirement3_exact returns nullopt.
bool is_topology_transparent(const Schedule& schedule, std::size_t degree_bound);

/// Cheap sufficient certificate for Requirement 1 on the non-sleeping
/// reduct <T>: with w = min_x |tran(x)| and λ = max pairwise
/// |tran(x) ∩ tran(y)|, the schedule satisfies Requirement 1 for every
/// D <= (w - 1) / λ (D covering sets erase at most Dλ < w slots).
/// Returns that degree (num_nodes - 1 when λ == 0; 0 when some tran(x) is
/// empty). Cost O(n^2 L / 64) -- no combinatorial enumeration.
/// NOTE: certifies condition (1) only; the exact Requirement 3 checker is
/// still needed for duty-cycled receiver sets.
std::size_t requirement1_certificate_degree(const Schedule& schedule);

/// Largest D in [1, max_degree] for which the schedule satisfies
/// Requirement 3 exactly, or 0 if none. Requirement 3 is monotone in D
/// (any (D-1)-set extends to a D-set with smaller free-slot sets), so this
/// scans upward and stops at the first failure.
std::size_t max_transparent_degree_exact(const Schedule& schedule, std::size_t max_degree);

}  // namespace ttdc::core
