#include "core/energy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ttdc::core {

BalanceReport balance_report(const Schedule& schedule) {
  BalanceReport report;
  report.min_active_per_slot = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < schedule.frame_length(); ++i) {
    const std::size_t active = schedule.transmit_sizes()[i] + schedule.receive_sizes()[i];
    report.min_active_per_slot = std::min(report.min_active_per_slot, active);
    report.max_active_per_slot = std::max(report.max_active_per_slot, active);
  }
  report.min_active_per_node = std::numeric_limits<std::size_t>::max();
  double sum = 0.0, sum_sq = 0.0;
  const auto duties = schedule.per_node_duty_cycle();
  for (std::size_t x = 0; x < schedule.num_nodes(); ++x) {
    const std::size_t active = schedule.tran(x).count() + schedule.recv(x).count();
    report.min_active_per_node = std::min(report.min_active_per_node, active);
    report.max_active_per_node = std::max(report.max_active_per_node, active);
    sum += duties[x];
    sum_sq += duties[x] * duties[x];
  }
  const double n = static_cast<double>(schedule.num_nodes());
  const double mean = sum / n;
  report.node_duty_stddev = std::sqrt(std::max(0.0, sum_sq / n - mean * mean));
  return report;
}

std::vector<std::size_t> per_node_wake_transitions(const Schedule& schedule) {
  const std::size_t L = schedule.frame_length();
  std::vector<std::size_t> out(schedule.num_nodes(), 0);
  for (std::size_t x = 0; x < schedule.num_nodes(); ++x) {
    const DynamicBitset active = schedule.tran(x) | schedule.recv(x);
    std::size_t wakes = 0;
    for (std::size_t i = 0; i < L; ++i) {
      if (active.test(i) && !active.test((i + L - 1) % L)) ++wakes;
    }
    out[x] = wakes;
  }
  return out;
}

std::size_t total_wake_transitions(const Schedule& schedule) {
  std::size_t total = 0;
  for (std::size_t w : per_node_wake_transitions(schedule)) total += w;
  return total;
}

}  // namespace ttdc::core
