#include "core/requirements.hpp"

#include <atomic>
#include <cassert>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "util/parallel.hpp"
#include "util/subsets.hpp"

namespace ttdc::core {

std::string TransparencyViolation::to_string() const {
  std::ostringstream os;
  os << "transmitter " << transmitter;
  if (receiver != npos) os << " -> receiver " << receiver;
  os << " blocked by neighborhood {";
  for (std::size_t i = 0; i < neighborhood.size(); ++i) {
    if (i) os << ", ";
    os << neighborhood[i];
  }
  os << '}';
  return os.str();
}

namespace {

void validate_bounds(const Schedule& schedule, std::size_t degree_bound) {
  if (degree_bound < 1 || degree_bound + 1 > schedule.num_nodes()) {
    throw std::invalid_argument("requirement check: need 1 <= D <= n - 1");
  }
}

// Recursive enumeration of D-subsets Y of V - {x} with a prefix-union stack
// of transmit-slot sets; prunes whole subtrees once tran(x) is covered.
//
// At each leaf:  mode Req1 -> violation iff free == ∅;
//                mode Req3 -> additionally every chosen y_k must have
//                             recv(y_k) ∩ free != ∅.
enum class Mode { kReq1, kReq3 };

struct EnumCtx {
  const Schedule& schedule;
  std::size_t x;
  std::size_t degree;
  Mode mode;
  std::vector<std::size_t> chosen;
  std::optional<TransparencyViolation>& out;

  // union_stack[d] = tran(y_0) | ... | tran(y_{d-1}); union_stack[0] = ∅.
  std::vector<DynamicBitset> union_stack;

  EnumCtx(const Schedule& s, std::size_t x_, std::size_t degree_, Mode mode_,
          std::optional<TransparencyViolation>& out_)
      : schedule(s), x(x_), degree(degree_), mode(mode_), out(out_) {
    chosen.reserve(degree);
    union_stack.assign(degree + 1, DynamicBitset(s.frame_length()));
  }

  // Fills chosen up to `degree` members drawn from [first, n) \ {x}.
  // Returns true if a violation was found (stop everything).
  bool recurse(std::size_t first, std::size_t depth) {
    const std::size_t n = schedule.num_nodes();
    if (depth == degree) {
      return evaluate_leaf();
    }
    // Prune: if tran(x) is already covered, any completion of Y violates
    // condition (1); fill with arbitrary remaining nodes and report.
    if (!schedule.tran(x).has_member_outside(union_stack[depth])) {
      std::vector<std::size_t> filled = chosen;
      for (std::size_t v = 0; v < n && filled.size() < degree; ++v) {
        if (v == x) continue;
        bool already = false;
        for (std::size_t c : filled) {
          if (c == v) {
            already = true;
            break;
          }
        }
        if (!already) filled.push_back(v);
      }
      out = TransparencyViolation{x, TransparencyViolation::npos, std::move(filled)};
      return true;
    }
    const std::size_t remaining_needed = degree - depth;
    for (std::size_t v = first; v < n; ++v) {
      if (v == x) continue;
      // Feasibility: v plus the candidates after it (excluding x if it lies
      // ahead) must be able to supply the remaining picks.
      std::size_t ahead = n - v - 1;
      if (x > v) --ahead;
      if (ahead + 1 < remaining_needed) break;
      chosen.push_back(v);
      union_stack[depth + 1] = union_stack[depth];
      union_stack[depth + 1] |= schedule.tran(v);
      if (recurse(v + 1, depth + 1)) return true;
      chosen.pop_back();
    }
    return false;
  }

  bool evaluate_leaf() {
    const DynamicBitset& covered = union_stack[degree];
    const DynamicBitset& tx = schedule.tran(x);
    if (!tx.has_member_outside(covered)) {
      out = TransparencyViolation{x, TransparencyViolation::npos, chosen};
      return true;
    }
    if (mode == Mode::kReq3) {
      for (std::size_t yk : chosen) {
        // recv(y_k) ∩ tran(x) ∩ ¬covered must be non-empty.
        if (!schedule.recv(yk).any_and_andnot(tx, covered)) {
          out = TransparencyViolation{x, yk, chosen};
          return true;
        }
      }
    }
    return false;
  }
};

std::optional<TransparencyViolation> check_exact(const Schedule& schedule,
                                                 std::size_t degree_bound, Mode mode) {
  validate_bounds(schedule, degree_bound);
  const std::size_t n = schedule.num_nodes();
  std::optional<TransparencyViolation> result;
  std::mutex result_mutex;
  std::atomic<bool> found{false};

  util::parallel_for(0, n, [&](std::size_t x) {
    if (found.load(std::memory_order_relaxed)) return;
    std::optional<TransparencyViolation> local;
    EnumCtx ctx(schedule, x, degree_bound, mode, local);
    ctx.recurse(0, 0);
    if (local) {
      std::lock_guard lock(result_mutex);
      if (!result) result = std::move(local);
      found.store(true, std::memory_order_relaxed);
    }
  });
  return result;
}

}  // namespace

std::optional<TransparencyViolation> check_requirement1_exact(const Schedule& schedule,
                                                              std::size_t degree_bound) {
  return check_exact(schedule, degree_bound, Mode::kReq1);
}

std::optional<TransparencyViolation> check_requirement3_exact(const Schedule& schedule,
                                                              std::size_t degree_bound) {
  return check_exact(schedule, degree_bound, Mode::kReq3);
}

std::optional<TransparencyViolation> check_requirement2_exact(const Schedule& schedule,
                                                              std::size_t degree_bound) {
  validate_bounds(schedule, degree_bound);
  const std::size_t n = schedule.num_nodes();
  // Literal transcription: for every ordered pair (x, y) and every
  // (D-1)-subset {y_1..y_{D-1}} of V - {x, y}, require
  // ∪ σ(y_i, y) ⊉ σ(x, y). Checking only d = D-1 suffices: unions grow
  // monotonically with the set, so a violating smaller set extends to a
  // violating (D-1)-set (V has at least D+1 nodes by validate_bounds).
  std::optional<TransparencyViolation> result;
  std::mutex result_mutex;
  std::atomic<bool> found{false};

  util::parallel_for(0, n, [&](std::size_t x) {
    if (found.load(std::memory_order_relaxed)) return;
    for (std::size_t y = 0; y < n && !found.load(std::memory_order_relaxed); ++y) {
      if (y == x) continue;
      const DynamicBitset sigma_xy = schedule.sigma(x, y);
      // Pool = V - {x, y}.
      std::vector<std::size_t> pool;
      pool.reserve(n - 2);
      for (std::size_t v = 0; v < n; ++v) {
        if (v != x && v != y) pool.push_back(v);
      }
      DynamicBitset cover(schedule.frame_length());
      util::for_each_k_subset(pool.size(), degree_bound - 1,
                              [&](std::span<const std::size_t> idx) {
                                cover.reset_all();
                                for (std::size_t i : idx) {
                                  cover |= schedule.sigma(pool[i], y);
                                }
                                if (sigma_xy.is_subset_of(cover)) {
                                  std::vector<std::size_t> nbrs;
                                  nbrs.reserve(idx.size());
                                  for (std::size_t i : idx) nbrs.push_back(pool[i]);
                                  std::lock_guard lock(result_mutex);
                                  if (!result) result = TransparencyViolation{x, y, nbrs};
                                  found.store(true, std::memory_order_relaxed);
                                  return false;
                                }
                                return true;
                              });
    }
  });
  return result;
}

std::optional<TransparencyViolation> check_requirement3_sampled(const Schedule& schedule,
                                                                std::size_t degree_bound,
                                                                std::size_t trials,
                                                                util::Xoshiro256& rng) {
  validate_bounds(schedule, degree_bound);
  const std::size_t n = schedule.num_nodes();
  DynamicBitset covered(schedule.frame_length());
  for (std::size_t t = 0; t < trials; ++t) {
    const std::size_t x = static_cast<std::size_t>(rng.below(n));
    std::vector<std::size_t> y = util::sample_k_of(n - 1, degree_bound, rng);
    for (auto& v : y) {
      if (v >= x) ++v;
    }
    covered.reset_all();
    for (std::size_t v : y) covered |= schedule.tran(v);
    const DynamicBitset& tx = schedule.tran(x);
    if (!tx.has_member_outside(covered)) {
      return TransparencyViolation{x, TransparencyViolation::npos, std::move(y)};
    }
    for (std::size_t yk : y) {
      if (!schedule.recv(yk).any_and_andnot(tx, covered)) {
        return TransparencyViolation{x, yk, y};
      }
    }
  }
  return std::nullopt;
}

bool is_topology_transparent(const Schedule& schedule, std::size_t degree_bound) {
  return !check_requirement3_exact(schedule, degree_bound).has_value();
}

std::size_t requirement1_certificate_degree(const Schedule& schedule) {
  const std::size_t n = schedule.num_nodes();
  if (n < 2) return 0;
  std::size_t w = schedule.frame_length() + 1;
  for (std::size_t x = 0; x < n; ++x) w = std::min(w, schedule.tran(x).count());
  if (w == 0) return 0;
  std::size_t lambda = 0;
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = x + 1; y < n; ++y) {
      lambda = std::max(lambda, schedule.tran(x).intersection_count(schedule.tran(y)));
    }
  }
  if (lambda == 0) return n - 1;
  return (w - 1) / lambda;
}

std::size_t max_transparent_degree_exact(const Schedule& schedule, std::size_t max_degree) {
  max_degree = std::min(max_degree, schedule.num_nodes() - 1);
  std::size_t best = 0;
  for (std::size_t d = 1; d <= max_degree; ++d) {
    if (check_requirement3_exact(schedule, d)) break;
    best = d;
  }
  return best;
}

}  // namespace ttdc::core
