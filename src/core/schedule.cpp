#include "core/schedule.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ttdc::core {

Schedule::Schedule(std::size_t num_nodes, std::vector<DynamicBitset> transmit,
                   std::vector<DynamicBitset> receive)
    : num_nodes_(num_nodes), transmit_(std::move(transmit)), receive_(std::move(receive)) {
  if (transmit_.empty() || transmit_.size() != receive_.size()) {
    throw std::invalid_argument("Schedule: T and R must be non-empty and the same length");
  }
  const std::size_t L = transmit_.size();
  for (std::size_t i = 0; i < L; ++i) {
    if (transmit_[i].size() != num_nodes_ || receive_[i].size() != num_nodes_) {
      throw std::invalid_argument("Schedule: slot sets must range over the node universe");
    }
    if (transmit_[i].intersects(receive_[i])) {
      throw std::invalid_argument("Schedule: T[i] and R[i] must be disjoint");
    }
  }
  tran_.assign(num_nodes_, DynamicBitset(L));
  recv_.assign(num_nodes_, DynamicBitset(L));
  t_sizes_.resize(L);
  r_sizes_.resize(L);
  for (std::size_t i = 0; i < L; ++i) {
    transmit_[i].for_each([&](std::size_t x) { tran_[x].set(i); });
    receive_[i].for_each([&](std::size_t x) { recv_[x].set(i); });
    t_sizes_[i] = transmit_[i].count();
    r_sizes_[i] = receive_[i].count();
  }
}

Schedule Schedule::non_sleeping(std::size_t num_nodes, std::vector<DynamicBitset> transmit) {
  std::vector<DynamicBitset> receive;
  receive.reserve(transmit.size());
  for (const auto& t : transmit) receive.push_back(t.complement());
  return Schedule(num_nodes, std::move(transmit), std::move(receive));
}

void Schedule::audit_invariants() const {
#if TTDC_ENABLE_CHECKS
  const std::size_t L = frame_length();
  TTDC_DCHECK(receive_.size() == L && t_sizes_.size() == L && r_sizes_.size() == L,
              "Schedule: per-slot arrays out of step at L=", L);
  TTDC_DCHECK(tran_.size() == num_nodes_ && recv_.size() == num_nodes_,
              "Schedule: transposed arrays out of step at n=", num_nodes_);
  for (std::size_t i = 0; i < L; ++i) {
    TTDC_DCHECK(transmit_[i].size() == num_nodes_ && receive_[i].size() == num_nodes_,
                "Schedule: slot ", i, " sets not over the node universe");
    TTDC_DCHECK(!transmit_[i].intersects(receive_[i]),
                "Schedule: T[", i, "] ∩ R[", i, "] != ∅: T=", transmit_[i].to_string(),
                " R=", receive_[i].to_string());
    TTDC_DCHECK(t_sizes_[i] == transmit_[i].count() && r_sizes_[i] == receive_[i].count(),
                "Schedule: cached sizes stale at slot ", i);
  }
  for (std::size_t x = 0; x < num_nodes_; ++x) {
    for (std::size_t i = 0; i < L; ++i) {
      TTDC_DCHECK(tran_[x].test(i) == transmit_[i].test(x),
                  "Schedule: tran(", x, ") disagrees with T[", i, "]");
      TTDC_DCHECK(recv_[x].test(i) == receive_[i].test(x),
                  "Schedule: recv(", x, ") disagrees with R[", i, "]");
    }
  }
#endif
}

bool Schedule::is_non_sleeping() const {
  for (std::size_t i = 0; i < frame_length(); ++i) {
    if (t_sizes_[i] + r_sizes_[i] != num_nodes_) return false;
  }
  return true;
}

bool Schedule::is_alpha_schedule(std::size_t alpha_t, std::size_t alpha_r) const {
  for (std::size_t i = 0; i < frame_length(); ++i) {
    if (t_sizes_[i] > alpha_t || r_sizes_[i] > alpha_r) return false;
  }
  return true;
}

std::size_t Schedule::min_transmitters() const {
  return *std::min_element(t_sizes_.begin(), t_sizes_.end());
}

std::size_t Schedule::max_transmitters() const {
  return *std::max_element(t_sizes_.begin(), t_sizes_.end());
}

std::size_t Schedule::max_receivers() const {
  return *std::max_element(r_sizes_.begin(), r_sizes_.end());
}

DynamicBitset Schedule::free_slots(std::size_t x, std::span<const std::size_t> y) const {
  DynamicBitset free = tran_[x];
  for (std::size_t node : y) free.subtract(tran_[node]);
  return free;
}

DynamicBitset Schedule::sigma(std::size_t a, std::size_t b) const {
  return tran_[a] & recv_[b];
}

DynamicBitset Schedule::guaranteed_slots(std::size_t x, std::size_t y,
                                         std::span<const std::size_t> s) const {
  DynamicBitset g = tran_[x] & recv_[y];
  g.subtract(tran_[y]);
  for (std::size_t node : s) g.subtract(tran_[node]);
  return g;
}

std::size_t Schedule::guaranteed_slot_count(std::size_t x, std::size_t y,
                                            std::span<const std::size_t> s) const {
  return guaranteed_slots(x, y, s).count();
}

double Schedule::duty_cycle() const {
  std::size_t active = 0;
  for (std::size_t i = 0; i < frame_length(); ++i) active += t_sizes_[i] + r_sizes_[i];
  return static_cast<double>(active) /
         (static_cast<double>(num_nodes_) * static_cast<double>(frame_length()));
}

std::vector<double> Schedule::per_node_duty_cycle() const {
  std::vector<double> out(num_nodes_);
  for (std::size_t x = 0; x < num_nodes_; ++x) {
    out[x] = static_cast<double>(tran_[x].count() + recv_[x].count()) /
             static_cast<double>(frame_length());
  }
  return out;
}

std::string Schedule::to_string() const {
  std::ostringstream os;
  os << "Schedule(n=" << num_nodes_ << ", L=" << frame_length() << ")\n";
  for (std::size_t i = 0; i < frame_length(); ++i) {
    os << "  slot " << i << ": T=" << transmit_[i].to_string()
       << " R=" << receive_[i].to_string() << '\n';
  }
  return os.str();
}

}  // namespace ttdc::core
