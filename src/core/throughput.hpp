// Worst-case throughput analysis (paper §5 and §7).
//
// All quantities are for the network class N_n^D in the worst case: every
// node has exactly D neighbors, all of them saturated.
//
//   * Definition 1: minimum worst-case throughput
//       Thr_min = min_{x,y,S} |T(x,y,S)| / L over |S| = D-1.
//   * Definition 2: average worst-case throughput
//       Thr_ave = F / (n (n-1) C(n-2, D-1) L),
//       F = Σ_{x,y} Σ_{S} |T(x,y,S)|.
//   * Theorem 2 (closed form):
//       Thr_ave = Σ_i |T[i]| |R[i]| C(n-|T[i]|-1, D-1) / (n (n-1) C(n-2,D-1) L).
//   * Theorem 3: upper bound for general schedules, maximized at
//       |T[i]| = αT* ∈ {⌊(n-D)/(D+1)⌋, ⌈(n-D)/(D+1)⌉}, |R[i]| = n - αT*.
//   * Theorem 4: upper bound for (αT, αR)-schedules, maximized at
//       |T[i]| = min(αT, α), α ∈ {⌊(n-D)/D⌋, ⌈(n-D)/D⌉}, |R[i]| = αR.
//   * §7: r(x) optimality ratio, Theorem 8 lower bound, Theorem 9 minimum
//     throughput bound.
//
// Exact evaluators return an ExactFraction (128-bit numerator/denominator)
// so tests can assert equality with the brute-force oracles; the long-double
// paths are for large-n sweeps.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/schedule.hpp"
#include "util/binomial.hpp"
#include "util/rng.hpp"

namespace ttdc::core {

/// Unreduced non-negative rational with 128-bit parts.
struct ExactFraction {
  util::u128 num = 0;
  util::u128 den = 1;

  [[nodiscard]] long double value() const {
    return static_cast<long double>(num) / static_cast<long double>(den);
  }
  /// Cross-multiplication equality (no reduction needed); throws
  /// CountingOverflow if the cross products exceed 128 bits.
  [[nodiscard]] bool equals(const ExactFraction& other) const;
};

/// g_{n,D}(x) = x C(n-x, D) / (n C(n-1, D)): the average worst-case
/// throughput of a non-sleeping schedule with x transmitters per slot
/// (§5, properties (1) and (2)).
long double g_value(std::size_t n, std::size_t degree_bound, std::size_t x);

/// argmax of g_{n,D} over integer x, resolved exactly (compares
/// x C(n-x, D) as integers). Equals ⌊(n-D)/(D+1)⌋ or ⌈(n-D)/(D+1)⌉.
std::size_t g_argmax(std::size_t n, std::size_t degree_bound);

/// Shared immutable memo for one (n, D): the binomial terms, the g_{n,D}(x)
/// curve, and the Theorem 3/4 optimal transmitter counts that the
/// evaluators and the tradeoff planner otherwise recompute on every call.
/// Lookups return the exact values the direct evaluations produce (the
/// table stores the outputs of the same functions), so switching an
/// evaluator to the memo is bit-identical. Immutable after construction —
/// safe to share read-only across campaign workers (runner/cache.hpp keys
/// these by (n, D)).
class ThroughputTables {
 public:
  ThroughputTables(std::size_t n, std::size_t degree_bound);

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t degree_bound() const { return d_; }
  [[nodiscard]] const util::BinomialTable& binomials() const { return binom_; }

  /// g_{n,D}(x) for x in [0, n], memoized.
  [[nodiscard]] long double g(std::size_t x) const { return g_[x]; }
  /// Theorem 3 αT* (== optimal_transmitters_general(n, D)).
  [[nodiscard]] std::size_t alpha_star_general() const { return alpha_star_general_; }
  /// Theorem 4 α (== optimal_transmitters_alpha(n, D)).
  [[nodiscard]] std::size_t alpha_cap() const { return alpha_cap_; }
  /// Theorem 4 αT* = min(αT, α) for a requested cap.
  [[nodiscard]] std::size_t alpha_star(std::size_t alpha_t) const {
    return alpha_t < alpha_cap_ ? alpha_t : alpha_cap_;
  }
  /// Theorem 3 bound Thr* = g(αT*).
  [[nodiscard]] long double thm3_bound() const { return g_[alpha_star_general_]; }
  /// Theorem 4 bound Thr*_{αR,αT}, memoized binomials.
  [[nodiscard]] long double thm4_bound(std::size_t alpha_t, std::size_t alpha_r) const;

 private:
  std::size_t n_;
  std::size_t d_;
  util::BinomialTable binom_;
  std::vector<long double> g_;
  std::size_t alpha_star_general_;
  std::size_t alpha_cap_;
};

/// Theorem 2: Thr_ave of `schedule` in N_n^D, exact. n is taken from the
/// schedule; requires D <= n - 1.
ExactFraction average_throughput_exact(const Schedule& schedule, std::size_t degree_bound);

/// Theorem 2 in long-double log space (for n beyond 128-bit counting).
long double average_throughput(const Schedule& schedule, std::size_t degree_bound);

/// Theorem 2 against a shared memo (bit-identical to the direct form).
long double average_throughput(const Schedule& schedule, const ThroughputTables& tables);

/// Brute-force Definition 2: enumerates every ordered pair (x, y) and every
/// (D-1)-subset S of V-{x,y}, summing |T(x,y,S)|. The oracle Theorem 2 is
/// tested against; cost n^2 C(n-2, D-1) bitset folds.
ExactFraction average_throughput_bruteforce(const Schedule& schedule,
                                            std::size_t degree_bound);

/// Theorem 3: the optimal per-slot transmitter count αT* for general
/// schedules (floor/ceil of (n-D)/(D+1), broken exactly).
std::size_t optimal_transmitters_general(std::size_t n, std::size_t degree_bound);

/// Theorem 3: Thr* = αT* C(n-αT*, D) / (n C(n-1, D)), the maximum average
/// worst-case throughput of any schedule in N_n^D.
long double throughput_upper_bound_general(std::size_t n, std::size_t degree_bound);

/// Theorem 3's loose closed form n D^D / ((n-D) (D+1)^(D+1)).
long double throughput_upper_bound_general_loose(std::size_t n, std::size_t degree_bound);

/// Theorem 4: α = argmax of x C(n-x-1, D-1) over x (floor/ceil of (n-D)/D,
/// broken exactly); αT* = min(αT, α).
std::size_t optimal_transmitters_alpha(std::size_t n, std::size_t degree_bound);
std::size_t optimal_transmitters_alpha(std::size_t n, std::size_t degree_bound,
                                       std::size_t alpha_t);

/// Theorem 4: Thr*_{αR,αT} = αR αT* C(n-αT*-1, D-1) / (n (n-1) C(n-2, D-1)).
long double throughput_upper_bound_alpha(std::size_t n, std::size_t degree_bound,
                                         std::size_t alpha_t, std::size_t alpha_r);

/// Theorem 4's loose closed form αR (n-1) (D-1)^(D-1) / (n (n-D) D^D).
long double throughput_upper_bound_alpha_loose(std::size_t n, std::size_t degree_bound,
                                               std::size_t alpha_r);

/// §7: r(x) = (x/αT*) Π_{i=1}^{D-1} (n-i-x)/(n-i-αT*), the per-slot
/// throughput ratio relative to the optimum; αT* from Theorem 4.
long double optimality_ratio_r(std::size_t n, std::size_t degree_bound, std::size_t alpha_t,
                               std::size_t x);

/// r(x) against a shared memo (reuses the memoized Theorem 4 αT*).
long double optimality_ratio_r(const ThroughputTables& tables, std::size_t alpha_t,
                               std::size_t x);

/// Exact Definition 1: minimum worst-case throughput, by enumerating every
/// ordered (x, y) and adversarial S with |S| = D-1 (prefix-union recursion
/// with pruning; parallel over x). Returns min |T(x,y,S)| (divide by L for
/// the throughput). Cost ~ n^2 C(n-2, D-1).
std::size_t min_guaranteed_slots_exact(const Schedule& schedule, std::size_t degree_bound);

/// Greedy adversary: for each (x, y) picks S greedily to erase x's
/// guaranteed slots. Returns an UPPER bound on min |T(x,y,S)| (the true
/// minimum can only be smaller). Cheap: n^2 D scans.
std::size_t min_guaranteed_slots_greedy(const Schedule& schedule, std::size_t degree_bound);

/// Monte-Carlo min: samples random (x, y, S); upper bound like the greedy.
std::size_t min_guaranteed_slots_sampled(const Schedule& schedule, std::size_t degree_bound,
                                         std::size_t trials, util::Xoshiro256& rng);

}  // namespace ttdc::core
