// The paper's construction (§6, Figure 2): converting a topology-transparent
// non-sleeping schedule <T> into a topology-transparent (αT, αR)-schedule.
//
// For each slot i of <T>:
//   * T[i] is divided into k_T = ⌈|T[i]|/αT*⌉ subsets of size exactly
//     min(αT*, |T[i]|) whose union is T[i] (subsets may overlap);
//   * R[i] = V - T[i] is divided into k_R = ⌈|R[i]|/αR⌉ subsets of size
//     min(αR, |R[i]|) whose union is R[i];
//   * the constructed schedule gets the k_T * k_R cross-product slots
//     (T_a, R_b), with receiver sets padded up to αR from V - T_a when
//     |R[i]| < αR (line 8 of Figure 2).
//
// The paper notes the division is not unique and does not affect
// correctness, frame length, or average throughput (Theorems 6-8). We
// provide two division policies: the naive contiguous chunking, and the
// balanced cyclic-window division of §7's closing paragraph, which
// preserves balanced energy consumption when <T> is balanced.
#pragma once

#include <cstddef>

#include "core/schedule.hpp"

namespace ttdc::core {

class ThroughputTables;  // core/throughput.hpp

enum class DivisionPolicy {
  /// Chunks the sorted member list into consecutive windows; the last
  /// window is completed by wrapping around to the front (overlap lands on
  /// the lowest-indexed members).
  kContiguous,
  /// Cyclic windows with evenly spread start offsets, so every member lands
  /// in ⌊k·m/|S|⌋ or ⌈k·m/|S|⌉ subsets: the balanced division of §7.
  kBalanced,
};

struct ConstructOptions {
  DivisionPolicy division = DivisionPolicy::kContiguous;
  /// If true, use exactly alpha_t as the transmitter cap (the αT' variant
  /// discussed after Theorem 6) instead of the throughput-optimal
  /// αT* = min(αT, α) from Theorem 4.
  bool use_alpha_t_verbatim = false;
};

/// Figure 2, main program: computes αT* per Theorem 4 (unless
/// use_alpha_t_verbatim) and returns Construct(αT*, αR, <T>).
///
/// `non_sleeping` must be a non-sleeping schedule (asserted); it should be
/// topology-transparent for N_n^D for the output to be (Theorem 6) — that
/// precondition is the caller's (or the test suite's) to establish.
/// Requires alpha_t >= 1, alpha_r >= 1, alpha_t + alpha_r <= n, D <= n-1.
Schedule construct_duty_cycled(const Schedule& non_sleeping, std::size_t degree_bound,
                               std::size_t alpha_t, std::size_t alpha_r,
                               const ConstructOptions& options = {});

/// Theorem 7: the exact frame length of the constructed schedule,
/// Σ_i ⌈|T[i]|/αT*⌉ ⌈(n-|T[i]|)/αR⌉, computed from <T> without running the
/// construction. `alpha_t_star` is the cap actually used for transmitters.
std::size_t constructed_frame_length(const Schedule& non_sleeping, std::size_t alpha_t_star,
                                     std::size_t alpha_r);

/// Theorem 7's closed-form upper bound ⌈M_ax/αT*⌉ ⌈(n-M_in)/αR⌉ L.
std::size_t constructed_frame_length_bound(const Schedule& non_sleeping,
                                           std::size_t alpha_t_star, std::size_t alpha_r);

/// Theorem 8: lower bound on Thr_ave(constructed) / Thr*_{αT,αR}:
///   (r(M_in) |A1| + c |A2|) / (|A1| + c |A2|)
/// with A1 = { i : |T[i]| < αT* }, A2 = { i : |T[i]| >= αT* },
/// c = (⌈n/α_m⌉ - 1) / ⌈(n - M_in)/αR⌉, α_m = max(αT*, αR).
/// Returns 1.0 when M_in >= αT* (the optimality case).
long double theorem8_ratio_lower_bound(const Schedule& non_sleeping, std::size_t degree_bound,
                                       std::size_t alpha_t, std::size_t alpha_r);

/// Theorem 8 against a shared (n, D) memo (see core/throughput.hpp):
/// reuses the memoized Theorem 4 αT* instead of recomputing the exact
/// binomial argmax per call. Bit-identical to the direct form.
long double theorem8_ratio_lower_bound(const Schedule& non_sleeping,
                                       const ThroughputTables& tables, std::size_t alpha_t,
                                       std::size_t alpha_r);

/// Theorem 9: lower bound on Thr_min(constructed): (L / L̄) · Thr_min(<T>),
/// given the measured min guaranteed slots of <T> per frame. Returns the
/// bound as guaranteed-successes-per-constructed-frame divided by L̄, i.e. a
/// throughput in [0, 1].
long double theorem9_min_throughput_bound(const Schedule& non_sleeping,
                                          std::size_t min_guaranteed_slots_of_t,
                                          std::size_t alpha_t_star, std::size_t alpha_r);

}  // namespace ttdc::core
