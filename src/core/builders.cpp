#include "core/builders.hpp"

#include <algorithm>
#include <stdexcept>

namespace ttdc::core {

Schedule non_sleeping_from_family(const comb::SetFamily& family, bool drop_empty_slots) {
  const std::size_t n = family.num_members();
  const std::size_t universe = family.universe_size();
  if (n == 0 || universe == 0) {
    throw std::invalid_argument("non_sleeping_from_family: empty family");
  }
  std::vector<DynamicBitset> transmit(universe, DynamicBitset(n));
  for (std::size_t x = 0; x < n; ++x) {
    family.set_of(x).for_each([&](std::size_t slot) { transmit[slot].set(x); });
  }
  if (drop_empty_slots) {
    std::erase_if(transmit, [](const DynamicBitset& t) { return t.none(); });
    if (transmit.empty()) {
      throw std::invalid_argument("non_sleeping_from_family: all member sets empty");
    }
  }
  return Schedule::non_sleeping(n, std::move(transmit));
}

Schedule random_non_sleeping_schedule(std::size_t num_nodes, std::size_t frame_length,
                                      std::size_t transmitters_per_slot,
                                      util::Xoshiro256& rng) {
  if (transmitters_per_slot == 0 || transmitters_per_slot >= num_nodes) {
    throw std::invalid_argument("random_non_sleeping_schedule: need 1 <= t < n");
  }
  std::vector<DynamicBitset> transmit;
  transmit.reserve(frame_length);
  for (std::size_t i = 0; i < frame_length; ++i) {
    DynamicBitset t(num_nodes);
    for (std::size_t v : util::sample_k_of(num_nodes, transmitters_per_slot, rng)) t.set(v);
    transmit.push_back(std::move(t));
  }
  return Schedule::non_sleeping(num_nodes, std::move(transmit));
}

Schedule random_alpha_schedule(std::size_t num_nodes, std::size_t frame_length,
                               std::size_t alpha_t, std::size_t alpha_r, bool exact_sizes,
                               util::Xoshiro256& rng) {
  if (alpha_t == 0 || alpha_r == 0 || alpha_t + alpha_r > num_nodes) {
    throw std::invalid_argument("random_alpha_schedule: need αT, αR >= 1, αT + αR <= n");
  }
  std::vector<DynamicBitset> transmit;
  std::vector<DynamicBitset> receive;
  transmit.reserve(frame_length);
  receive.reserve(frame_length);
  for (std::size_t i = 0; i < frame_length; ++i) {
    const std::size_t t_size =
        exact_sizes ? alpha_t : 1 + static_cast<std::size_t>(rng.below(alpha_t));
    const std::size_t r_size =
        exact_sizes ? alpha_r : 1 + static_cast<std::size_t>(rng.below(alpha_r));
    // Sample T, then R from the complement (sizes always fit: t + r <= n).
    std::vector<std::size_t> perm(num_nodes);
    for (std::size_t v = 0; v < num_nodes; ++v) perm[v] = v;
    util::shuffle(perm, rng);
    DynamicBitset t(num_nodes), r(num_nodes);
    for (std::size_t j = 0; j < t_size; ++j) t.set(perm[j]);
    for (std::size_t j = 0; j < r_size; ++j) r.set(perm[t_size + j]);
    transmit.push_back(std::move(t));
    receive.push_back(std::move(r));
  }
  return Schedule(num_nodes, std::move(transmit), std::move(receive));
}

Figure1Example figure1_example() {
  // Path topology 0 - 1 - 2 - 3 - 4. Non-sleeping <T>: pure TDMA, slot i
  // owned by node i, everyone else listens. Duty-cycled <T, R'>: in slot i
  // only node i's path-neighbors stay awake to listen; all other
  // non-transmitting nodes sleep. On this topology every link keeps exactly
  // the same guaranteed-success slots, so throughput is preserved while the
  // duty cycle drops (the §5.2 / Figure 1 claim).
  constexpr std::size_t n = 5;
  std::vector<std::pair<std::size_t, std::size_t>> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};

  std::vector<DynamicBitset> transmit;
  for (std::size_t i = 0; i < n; ++i) {
    DynamicBitset t(n);
    t.set(i);
    transmit.push_back(std::move(t));
  }
  Schedule non_sleeping = Schedule::non_sleeping(n, transmit);

  std::vector<DynamicBitset> receive;
  for (std::size_t i = 0; i < n; ++i) {
    DynamicBitset r(n);
    for (const auto& [a, b] : edges) {
      if (a == i) r.set(b);
      if (b == i) r.set(a);
    }
    receive.push_back(std::move(r));
  }
  Schedule duty_cycled(n, std::move(transmit), std::move(receive));

  return Figure1Example{n, std::move(edges), std::move(non_sleeping),
                        std::move(duty_cycled)};
}

}  // namespace ttdc::core
