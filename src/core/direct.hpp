// Direct construction of topology-transparent (αT, αR)-schedules, the
// comparison point for the paper's two-step approach.
//
// The paper (§6) converts an existing topology-transparent non-sleeping
// schedule; the alternative it discusses (Dukes-Colbourn-Syrotiuk, FAWN'06)
// is to construct the duty-cycled schedule directly from the combinatorial
// requirement. This module implements a direct randomized-greedy cover:
// Requirement 3 is a covering problem over constraint triples
//
//     (x, Y, y_k):  some slot must have  x ∈ T,  Y ∩ T = ∅,  y_k ∈ R,
//
// for every node x, D-set Y ⊆ V - {x}, and y_k ∈ Y. Slots are added one at
// a time: each round seeds candidate slots from uncovered triples, pads
// them greedily up to the (αT, αR) caps, scores each candidate by newly
// covered triples, and keeps the best. Guaranteed to terminate (every
// seeded candidate covers its seed) and correct by construction; frame
// length is whatever greed achieves -- which is exactly what the benchmark
// compares against the paper's Construct().
//
// Cost: the constraint set has n * C(n-1, D) * D triples, so this is a
// small-n tool (the benchmark uses n <= ~20 at D <= 3) -- itself a finding:
// the paper's conversion scales; direct covering does not.
#pragma once

#include <cstddef>

#include "core/schedule.hpp"
#include "util/rng.hpp"

namespace ttdc::core {

struct DirectGreedyOptions {
  /// Candidate slots scored per round; higher = shorter frames, slower.
  std::size_t candidates_per_round = 24;
  /// Safety valve on the frame length (throws std::runtime_error if
  /// exceeded, which cannot happen with candidates seeded from uncovered
  /// triples unless the parameters are infeasible).
  std::size_t max_frame_length = 100000;
};

/// Builds a topology-transparent (αT, αR)-schedule for N_n^D directly.
/// Requires 1 <= D <= n - 2 (a triple needs x, Y and room for receivers)
/// and alpha_t >= 1, alpha_r >= 1, alpha_t + alpha_r <= n.
/// The result satisfies Requirement 3 by construction; the test suite
/// re-verifies with the exact checker.
Schedule greedy_direct_schedule(std::size_t n, std::size_t degree_bound, std::size_t alpha_t,
                                std::size_t alpha_r, util::Xoshiro256& rng,
                                const DirectGreedyOptions& options = {});

}  // namespace ttdc::core
