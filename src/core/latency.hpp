// Worst-case packet latency bounds (the abstract's "bounding packet latency
// in the presence of collisions").
//
// A topology-transparent schedule guarantees each link at least one
// collision-free slot per frame, so a head-of-line packet waits at most the
// largest circular gap between consecutive guaranteed slots of its link.
// This module computes that bound exactly: per (x, y, S) the guaranteed
// slot set T(x, y, S) recurs with period L, and the worst arrival time sits
// just after a guaranteed slot, waiting max_circular_gap(T(x,y,S)) slots.
// The network-wide single-hop bound maximizes over links and adversarial
// neighborhoods; a multi-hop bound chains it along a path.
#pragma once

#include <cstddef>

#include "core/schedule.hpp"
#include "util/rng.hpp"

namespace ttdc::core {

/// Largest circular gap (in slots) between consecutive members of `slots`
/// viewed on the ring [0, slots.size()): for a packet arriving at the worst
/// moment, the slots it must wait. Returns 0 for an empty set (no service
/// ever -- callers must handle) and the full period for a singleton.
std::size_t max_circular_gap(const DynamicBitset& slots);

/// Exact single-hop worst-case latency over all (x, y, S) with |S| = D-1:
/// max over links of max_circular_gap(T(x, y, S)). Returns SIZE_MAX if some
/// link has NO guaranteed slot (schedule not topology-transparent).
/// Cost ~ n^2 C(n-2, D-1), like the min-throughput oracle.
std::size_t worst_case_latency_exact(const Schedule& schedule, std::size_t degree_bound);

/// Sampled variant (random (x, y, S) probes): a LOWER bound on the true
/// worst case; SIZE_MAX if a probed link has no guaranteed slot.
std::size_t worst_case_latency_sampled(const Schedule& schedule, std::size_t degree_bound,
                                       std::size_t trials, util::Xoshiro256& rng);

/// Multi-hop chain bound: a packet crossing `hops` links waits at most
/// hops * (single-hop bound) + hops slots (one service slot per hop).
/// Saturates at SIZE_MAX when the single-hop bound is SIZE_MAX.
std::size_t multi_hop_latency_bound(std::size_t single_hop_bound, std::size_t hops);

}  // namespace ttdc::core
