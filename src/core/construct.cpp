#include "core/construct.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/throughput.hpp"
#include "obs/profile.hpp"
#include "util/check.hpp"

namespace ttdc::core {

namespace {

// Divides `members` into k = ⌈|members|/cap⌉ subsets of size exactly
// min(cap, |members|) whose union is `members` (Figure 2, lines 3-4).
// Subsets are cyclic windows over the member list; the two policies differ
// only in where the windows start.
std::vector<std::vector<std::size_t>> divide(const std::vector<std::size_t>& members,
                                             std::size_t cap, DivisionPolicy policy) {
  TTDC_DCHECK(cap >= 1, "divide() with zero cap");
  const std::size_t s = members.size();
  if (s == 0) return {};
  const std::size_t size = std::min(cap, s);
  const std::size_t k = (s + cap - 1) / cap;
  std::vector<std::vector<std::size_t>> subsets(k);
  for (std::size_t j = 0; j < k; ++j) {
    std::size_t start = 0;
    switch (policy) {
      case DivisionPolicy::kContiguous:
        // Last window wraps to the front when s is not a multiple of cap.
        start = std::min(j * cap, s - size);
        break;
      case DivisionPolicy::kBalanced:
        // Evenly spread starts; consecutive starts differ by <= size, so the
        // windows cover every member, with multiplicities differing by <= 1.
        start = (j * s) / k;
        break;
    }
    auto& subset = subsets[j];
    subset.reserve(size);
    for (std::size_t t = 0; t < size; ++t) subset.push_back(members[(start + t) % s]);
  }
  return subsets;
}

}  // namespace

Schedule construct_duty_cycled(const Schedule& non_sleeping, std::size_t degree_bound,
                               std::size_t alpha_t, std::size_t alpha_r,
                               const ConstructOptions& options) {
  TTDC_PROF_SCOPE("core.construct_duty_cycled");
  const std::size_t n = non_sleeping.num_nodes();
  if (!non_sleeping.is_non_sleeping()) {
    throw std::invalid_argument("construct_duty_cycled: input must be non-sleeping");
  }
  if (alpha_t < 1 || alpha_r < 1 || alpha_t + alpha_r > n) {
    throw std::invalid_argument("construct_duty_cycled: need 1 <= αT, αR and αT + αR <= n");
  }
  const std::size_t cap_t = options.use_alpha_t_verbatim
                                ? alpha_t
                                : optimal_transmitters_alpha(n, degree_bound, alpha_t);

  std::vector<DynamicBitset> out_t;
  std::vector<DynamicBitset> out_r;
  const std::size_t L = non_sleeping.frame_length();
  for (std::size_t i = 0; i < L; ++i) {
    const auto t_members = non_sleeping.transmitters(i).to_vector();
    const auto r_members = non_sleeping.receivers(i).to_vector();
    const auto t_subsets = divide(t_members, cap_t, options.division);
    const auto r_subsets = divide(r_members, alpha_r, options.division);
    for (const auto& ta : t_subsets) {
      DynamicBitset tbar(n);
      for (std::size_t v : ta) tbar.set(v);
      for (const auto& rb : r_subsets) {
        DynamicBitset rbar(n);
        for (std::size_t v : rb) rbar.set(v);
        // Line 8: pad the receiver set up to αR from V - T̄[k]. Feasible
        // because |T̄[k]| <= αT and αT + αR <= n.
        if (rbar.count() < alpha_r) {
          for (std::size_t v = 0; v < n && rbar.count() < alpha_r; ++v) {
            if (!tbar.test(v) && !rbar.test(v)) rbar.set(v);
          }
          TTDC_DCHECK(rbar.count() == alpha_r, "receiver padding fell short: ",
                      rbar.count(), " < alpha_r = ", alpha_r);
        }
        out_t.push_back(tbar);
        out_r.push_back(std::move(rbar));
      }
    }
  }
  return Schedule(n, std::move(out_t), std::move(out_r));
}

std::size_t constructed_frame_length(const Schedule& non_sleeping, std::size_t alpha_t_star,
                                     std::size_t alpha_r) {
  const std::size_t n = non_sleeping.num_nodes();
  std::size_t total = 0;
  for (std::size_t i = 0; i < non_sleeping.frame_length(); ++i) {
    const std::size_t t = non_sleeping.transmit_sizes()[i];
    const std::size_t r = n - t;
    const std::size_t kt = t == 0 ? 0 : (t + alpha_t_star - 1) / alpha_t_star;
    const std::size_t kr = r == 0 ? 0 : (r + alpha_r - 1) / alpha_r;
    total += kt * kr;
  }
  return total;
}

std::size_t constructed_frame_length_bound(const Schedule& non_sleeping,
                                           std::size_t alpha_t_star, std::size_t alpha_r) {
  const std::size_t n = non_sleeping.num_nodes();
  const std::size_t max_t = non_sleeping.max_transmitters();
  const std::size_t min_t = non_sleeping.min_transmitters();
  const std::size_t kt = (max_t + alpha_t_star - 1) / alpha_t_star;
  const std::size_t kr = (n - min_t + alpha_r - 1) / alpha_r;
  return kt * kr * non_sleeping.frame_length();
}

namespace {

// The Theorem 8 body after αT* and r(M_in) are resolved; shared by the
// direct and memoized overloads (which differ only in how they resolve
// those two quantities).
long double theorem8_from_cap(const Schedule& non_sleeping, std::size_t cap_t,
                              std::size_t alpha_r, long double r_min) {
  const std::size_t n = non_sleeping.num_nodes();
  const std::size_t min_t = non_sleeping.min_transmitters();
  std::size_t a1 = 0, a2 = 0;
  for (std::size_t t : non_sleeping.transmit_sizes()) {
    (t < cap_t ? a1 : a2) += 1;
  }
  if (a1 == 0) return 1.0L;  // M_in >= αT*: the construction is optimal
  const std::size_t alpha_m = std::max(cap_t, alpha_r);
  const std::size_t numer_c = (n + alpha_m - 1) / alpha_m;  // ⌈n/α_m⌉
  const std::size_t denom_c = (n - min_t + alpha_r - 1) / alpha_r;
  const long double c =
      static_cast<long double>(numer_c - 1) / static_cast<long double>(denom_c);
  return (r_min * static_cast<long double>(a1) + c * static_cast<long double>(a2)) /
         (static_cast<long double>(a1) + c * static_cast<long double>(a2));
}

}  // namespace

long double theorem8_ratio_lower_bound(const Schedule& non_sleeping, std::size_t degree_bound,
                                       std::size_t alpha_t, std::size_t alpha_r) {
  const std::size_t n = non_sleeping.num_nodes();
  const std::size_t cap_t = optimal_transmitters_alpha(n, degree_bound, alpha_t);
  const long double r_min =
      optimality_ratio_r(n, degree_bound, alpha_t, non_sleeping.min_transmitters());
  return theorem8_from_cap(non_sleeping, cap_t, alpha_r, r_min);
}

long double theorem8_ratio_lower_bound(const Schedule& non_sleeping,
                                       const ThroughputTables& tables, std::size_t alpha_t,
                                       std::size_t alpha_r) {
  const std::size_t cap_t = tables.alpha_star(alpha_t);
  const long double r_min =
      optimality_ratio_r(tables, alpha_t, non_sleeping.min_transmitters());
  return theorem8_from_cap(non_sleeping, cap_t, alpha_r, r_min);
}

long double theorem9_min_throughput_bound(const Schedule& non_sleeping,
                                          std::size_t min_guaranteed_slots_of_t,
                                          std::size_t alpha_t_star, std::size_t alpha_r) {
  const std::size_t lbar = constructed_frame_length(non_sleeping, alpha_t_star, alpha_r);
  if (lbar == 0) return 0.0L;
  return static_cast<long double>(min_guaranteed_slots_of_t) / static_cast<long double>(lbar);
}

}  // namespace ttdc::core
