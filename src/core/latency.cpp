#include "core/latency.hpp"

#include <atomic>
#include <limits>
#include <stdexcept>

#include "util/parallel.hpp"
#include "util/subsets.hpp"

namespace ttdc::core {

std::size_t max_circular_gap(const DynamicBitset& slots) {
  const std::size_t first = slots.find_first();
  if (first == slots.size()) return 0;
  std::size_t prev = first;
  std::size_t max_gap = 0;
  for (std::size_t cur = slots.find_next(first); cur != slots.size();
       cur = slots.find_next(cur)) {
    max_gap = std::max(max_gap, cur - prev - 1);
    prev = cur;
  }
  // Wrap-around gap from the last member back to the first.
  max_gap = std::max(max_gap, slots.size() - prev - 1 + first);
  return max_gap;
}

namespace {

void validate(const Schedule& schedule, std::size_t degree_bound) {
  if (degree_bound < 1 || degree_bound + 1 > schedule.num_nodes()) {
    throw std::invalid_argument("latency analysis: need 1 <= D <= n - 1");
  }
}

}  // namespace

std::size_t worst_case_latency_exact(const Schedule& schedule, std::size_t degree_bound) {
  validate(schedule, degree_bound);
  const std::size_t n = schedule.num_nodes();
  std::atomic<std::size_t> worst{0};
  std::atomic<bool> unbounded{false};
  util::parallel_for(0, n, [&](std::size_t x) {
    DynamicBitset scratch(schedule.frame_length());
    for (std::size_t y = 0; y < n; ++y) {
      if (y == x || unbounded.load(std::memory_order_relaxed)) continue;
      DynamicBitset base = schedule.tran(x) & schedule.recv(y);
      base.subtract(schedule.tran(y));
      std::vector<std::size_t> pool;
      pool.reserve(n - 2);
      for (std::size_t v = 0; v < n; ++v) {
        if (v != x && v != y) pool.push_back(v);
      }
      util::for_each_k_subset(
          pool.size(), degree_bound - 1, [&](std::span<const std::size_t> idx) {
            scratch = base;
            for (std::size_t i : idx) scratch.subtract(schedule.tran(pool[i]));
            if (scratch.none()) {
              unbounded.store(true, std::memory_order_relaxed);
              return false;
            }
            const std::size_t gap = max_circular_gap(scratch);
            std::size_t cur = worst.load(std::memory_order_relaxed);
            while (gap > cur &&
                   !worst.compare_exchange_weak(cur, gap, std::memory_order_relaxed)) {
            }
            return true;
          });
    }
  });
  if (unbounded.load()) return std::numeric_limits<std::size_t>::max();
  return worst.load();
}

std::size_t worst_case_latency_sampled(const Schedule& schedule, std::size_t degree_bound,
                                       std::size_t trials, util::Xoshiro256& rng) {
  validate(schedule, degree_bound);
  const std::size_t n = schedule.num_nodes();
  std::size_t worst = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::size_t x = static_cast<std::size_t>(rng.below(n));
    std::size_t y = static_cast<std::size_t>(rng.below(n - 1));
    if (y >= x) ++y;
    auto s = util::sample_k_of(n - 2, degree_bound - 1, rng);
    const std::size_t lo = std::min(x, y), hi = std::max(x, y);
    for (auto& v : s) {
      if (v >= lo) ++v;
      if (v >= hi) ++v;
    }
    const DynamicBitset guaranteed = schedule.guaranteed_slots(x, y, s);
    if (guaranteed.none()) return std::numeric_limits<std::size_t>::max();
    worst = std::max(worst, max_circular_gap(guaranteed));
  }
  return worst;
}

std::size_t multi_hop_latency_bound(std::size_t single_hop_bound, std::size_t hops) {
  if (single_hop_bound == std::numeric_limits<std::size_t>::max()) {
    return std::numeric_limits<std::size_t>::max();
  }
  return hops * (single_hop_bound + 1);
}

}  // namespace ttdc::core
