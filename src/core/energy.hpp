// Energy-balance metrics for schedules (§7, closing paragraph).
//
// The paper's balanced-energy property: (1) the same number of nodes is
// active in every slot, and (2) every node is active in the same fraction
// of slots. These reports quantify how close a schedule comes, so the
// balanced division policy can be compared against the naive one.
#pragma once

#include <cstddef>
#include <vector>

#include "core/schedule.hpp"

namespace ttdc::core {

struct BalanceReport {
  // Active nodes per slot (|T[i]| + |R[i]|).
  std::size_t min_active_per_slot = 0;
  std::size_t max_active_per_slot = 0;
  // Active slots per node (|tran(x)| + |recv(x)|).
  std::size_t min_active_per_node = 0;
  std::size_t max_active_per_node = 0;
  double node_duty_stddev = 0.0;  // stddev of per-node duty cycles

  /// Property (1) of §7: every slot activates the same number of nodes.
  [[nodiscard]] bool slots_balanced() const {
    return min_active_per_slot == max_active_per_slot;
  }
  /// Property (2) of §7: every node is active in the same number of slots.
  [[nodiscard]] bool nodes_balanced() const {
    return min_active_per_node == max_active_per_node;
  }
};

BalanceReport balance_report(const Schedule& schedule);

/// Per-node count of sleep -> active boundaries per frame, viewed
/// circularly (slot 0 follows slot L-1 in steady state). Each boundary
/// costs a radio wakeup; at equal duty cycle a schedule with clustered
/// active slots is strictly cheaper than one with scattered slots.
std::vector<std::size_t> per_node_wake_transitions(const Schedule& schedule);

/// Sum of per_node_wake_transitions over all nodes.
std::size_t total_wake_transitions(const Schedule& schedule);

}  // namespace ttdc::core
