// Schedule builders: cover-free families -> non-sleeping schedules, random
// schedules for the property tests, and the paper's Figure 1 example.
#pragma once

#include <cstddef>

#include "combinatorics/set_family.hpp"
#include "core/schedule.hpp"
#include "util/rng.hpp"

namespace ttdc::core {

/// Builds the non-sleeping schedule <T> from a cover-free family: node x
/// transmits exactly in the slots of its member set, T[i] = {x : i ∈ F_x},
/// R[i] = V - T[i]. If the family is D-cover-free, <T> satisfies
/// Requirement 1 for N_n^D.
///
/// Slots in which no node transmits contribute nothing and inflate the
/// frame; they are dropped by default (dropping such a slot removes no
/// element from any tran(x), so topology-transparency is preserved while
/// both throughputs improve).
Schedule non_sleeping_from_family(const comb::SetFamily& family, bool drop_empty_slots = true);

/// A uniform random non-sleeping schedule: each slot's transmitter set is a
/// uniform random t-subset of V. Generally NOT topology-transparent; used
/// by the Theorem 2/3 property tests.
Schedule random_non_sleeping_schedule(std::size_t num_nodes, std::size_t frame_length,
                                      std::size_t transmitters_per_slot,
                                      util::Xoshiro256& rng);

/// A random (αT, αR)-schedule: per slot, uniformly random disjoint
/// transmitter/receiver sets with |T[i]| in [1, αT] and |R[i]| in [1, αR]
/// (sizes uniform unless exact_sizes, in which case |T[i]| = αT,
/// |R[i]| = αR). Generally NOT topology-transparent.
Schedule random_alpha_schedule(std::size_t num_nodes, std::size_t frame_length,
                               std::size_t alpha_t, std::size_t alpha_r, bool exact_sizes,
                               util::Xoshiro256& rng);

/// The Figure 1 witness (§5.2): a specific topology plus two schedules —
/// a non-sleeping <T> and a duty-cycled <T, R'> in which some nodes sleep —
/// that deliver identical guaranteed-success slot sets on every link of
/// that topology. The exact instance printed in the paper's Figure 1 is not
/// recoverable from our copy, so this is an equivalent witness of the same
/// claim, machine-checked in tests/bench.
struct Figure1Example {
  std::size_t num_nodes;
  std::vector<std::pair<std::size_t, std::size_t>> edges;  // undirected
  Schedule non_sleeping;
  Schedule duty_cycled;
};

Figure1Example figure1_example();

}  // namespace ttdc::core
