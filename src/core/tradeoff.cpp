#include "core/tradeoff.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/construct.hpp"
#include "core/throughput.hpp"

namespace ttdc::core {

std::string TradeoffPoint::to_string() const {
  std::ostringstream os;
  os << "(aT=" << alpha_t << ", aR=" << alpha_r << ") duty=" << duty_cycle
     << " L=" << frame_length << " thr<=" << avg_throughput_bound
     << " ratio>=" << ratio_lower_bound;
  return os.str();
}

namespace {

// Shared evaluator body: αT*, the Theorem 4 bound, and the Theorem 8 ratio
// are resolved by the caller (directly or from the memo tables); everything
// else is pure arithmetic over <T>'s slot profile.
TradeoffPoint finish_tradeoff_point(const Schedule& non_sleeping, std::size_t alpha_t,
                                    std::size_t alpha_r, std::size_t alpha_t_star,
                                    double throughput_bound, double ratio_bound) {
  const std::size_t n = non_sleeping.num_nodes();
  TradeoffPoint p;
  p.alpha_t = alpha_t;
  p.alpha_r = alpha_r;
  p.alpha_t_star = alpha_t_star;
  p.frame_length = constructed_frame_length(non_sleeping, p.alpha_t_star, alpha_r);
  p.latency_bound = p.frame_length;
  p.avg_throughput_bound = throughput_bound;
  p.ratio_lower_bound = ratio_bound;

  // Exact duty cycle of the constructed schedule without building it:
  // every constructed slot wakes |T̄| + αR nodes where |T̄| is
  // min(αT*, |T[i]|) for its base slot; weight by the per-base-slot
  // sub-slot counts of Theorem 7.
  double active_slots = 0.0;
  for (std::size_t i = 0; i < non_sleeping.frame_length(); ++i) {
    const std::size_t t = non_sleeping.transmit_sizes()[i];
    const std::size_t r = n - t;
    const std::size_t kt = t == 0 ? 0 : (t + p.alpha_t_star - 1) / p.alpha_t_star;
    const std::size_t kr = r == 0 ? 0 : (r + alpha_r - 1) / alpha_r;
    const std::size_t tbar = std::min(p.alpha_t_star, t);
    active_slots += static_cast<double>(kt * kr) * static_cast<double>(tbar + alpha_r);
  }
  p.duty_cycle = active_slots /
                 (static_cast<double>(p.frame_length) * static_cast<double>(n));
  return p;
}

void validate_tradeoff_args(const Schedule& non_sleeping, std::size_t alpha_t,
                            std::size_t alpha_r) {
  if (!non_sleeping.is_non_sleeping()) {
    throw std::invalid_argument("evaluate_tradeoff: base must be non-sleeping");
  }
  if (alpha_t < 1 || alpha_r < 1 || alpha_t + alpha_r > non_sleeping.num_nodes()) {
    throw std::invalid_argument("evaluate_tradeoff: need αT, αR >= 1, αT + αR <= n");
  }
}

}  // namespace

TradeoffPoint evaluate_tradeoff(const Schedule& non_sleeping, std::size_t degree_bound,
                                std::size_t alpha_t, std::size_t alpha_r) {
  validate_tradeoff_args(non_sleeping, alpha_t, alpha_r);
  const std::size_t n = non_sleeping.num_nodes();
  return finish_tradeoff_point(
      non_sleeping, alpha_t, alpha_r,
      optimal_transmitters_alpha(n, degree_bound, alpha_t),
      static_cast<double>(throughput_upper_bound_alpha(n, degree_bound, alpha_t, alpha_r)),
      static_cast<double>(
          theorem8_ratio_lower_bound(non_sleeping, degree_bound, alpha_t, alpha_r)));
}

TradeoffPoint evaluate_tradeoff(const Schedule& non_sleeping, const ThroughputTables& tables,
                                std::size_t alpha_t, std::size_t alpha_r) {
  validate_tradeoff_args(non_sleeping, alpha_t, alpha_r);
  if (tables.n() != non_sleeping.num_nodes()) {
    throw std::invalid_argument("evaluate_tradeoff: memo tables built for a different n");
  }
  return finish_tradeoff_point(
      non_sleeping, alpha_t, alpha_r, tables.alpha_star(alpha_t),
      static_cast<double>(tables.thm4_bound(alpha_t, alpha_r)),
      static_cast<double>(theorem8_ratio_lower_bound(non_sleeping, tables, alpha_t, alpha_r)));
}

std::vector<TradeoffPoint> enumerate_tradeoffs(const Schedule& non_sleeping,
                                               std::size_t degree_bound,
                                               std::size_t max_alpha_t,
                                               std::size_t max_alpha_r) {
  const std::size_t n = non_sleeping.num_nodes();
  if (max_alpha_t == 0) max_alpha_t = n - 1;
  if (max_alpha_r == 0) max_alpha_r = n - 1;
  const ThroughputTables tables(n, degree_bound);
  std::vector<TradeoffPoint> points;
  for (std::size_t at = 1; at <= max_alpha_t; ++at) {
    for (std::size_t ar = 1; ar <= max_alpha_r && at + ar <= n; ++ar) {
      points.push_back(evaluate_tradeoff(non_sleeping, tables, at, ar));
    }
  }
  return points;
}

namespace {

// a weakly dominates b on (duty ↓, throughput ↑, latency ↓).
bool dominates(const TradeoffPoint& a, const TradeoffPoint& b) {
  const bool no_worse = a.duty_cycle <= b.duty_cycle &&
                        a.avg_throughput_bound >= b.avg_throughput_bound &&
                        a.latency_bound <= b.latency_bound;
  const bool strictly_better = a.duty_cycle < b.duty_cycle ||
                               a.avg_throughput_bound > b.avg_throughput_bound ||
                               a.latency_bound < b.latency_bound;
  return no_worse && strictly_better;
}

}  // namespace

std::vector<TradeoffPoint> pareto_front(std::vector<TradeoffPoint> points) {
  std::vector<TradeoffPoint> front;
  for (const auto& candidate : points) {
    bool dominated = false;
    for (const auto& other : points) {
      if (dominates(other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(candidate);
  }
  std::sort(front.begin(), front.end(), [](const TradeoffPoint& a, const TradeoffPoint& b) {
    if (a.duty_cycle != b.duty_cycle) return a.duty_cycle < b.duty_cycle;
    return a.avg_throughput_bound > b.avg_throughput_bound;
  });
  return front;
}

bool pick_cheapest(const std::vector<TradeoffPoint>& front, std::size_t max_latency_slots,
                   double min_avg_throughput, TradeoffPoint& out) {
  bool found = false;
  for (const auto& p : front) {
    if (p.latency_bound > max_latency_slots) continue;
    if (p.avg_throughput_bound < min_avg_throughput) continue;
    if (!found || p.duty_cycle < out.duty_cycle) {
      out = p;
      found = true;
    }
  }
  return found;
}

}  // namespace ttdc::core
