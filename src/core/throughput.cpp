#include "core/throughput.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "util/parallel.hpp"
#include "util/subsets.hpp"

namespace ttdc::core {

using util::binomial_exact;
using util::binomial_ld;
using util::checked_add;
using util::checked_mul;
using util::u128;

namespace {

void validate(std::size_t n, std::size_t degree_bound) {
  if (degree_bound < 1 || degree_bound + 1 > n) {
    throw std::invalid_argument("throughput analysis: need 1 <= D <= n - 1");
  }
}

}  // namespace

bool ExactFraction::equals(const ExactFraction& other) const {
  return checked_mul(num, other.den) == checked_mul(other.num, den);
}

long double g_value(std::size_t n, std::size_t degree_bound, std::size_t x) {
  validate(n, degree_bound);
  if (x >= n) return 0.0L;
  return static_cast<long double>(x) * binomial_ld(n - x, degree_bound) /
         (static_cast<long double>(n) * binomial_ld(n - 1, degree_bound));
}

std::size_t g_argmax(std::size_t n, std::size_t degree_bound) {
  validate(n, degree_bound);
  // Property (2): the maximum is at floor or ceil of (n-D)/(D+1); compare
  // x C(n-x, D) exactly at the two candidates.
  const std::size_t lo = (n - degree_bound) / (degree_bound + 1);
  const std::size_t hi = (n - degree_bound + degree_bound) / (degree_bound + 1) ==
                                 lo  // ceil
                             ? lo
                             : lo + 1;
  auto weight = [&](std::size_t x) -> u128 {
    if (x == 0 || x >= n) return 0;
    return checked_mul(x, binomial_exact(n - x, degree_bound));
  };
  const std::size_t lo_c = std::max<std::size_t>(lo, 1);
  if (weight(lo_c) >= weight(hi)) return lo_c;
  return hi;
}

ThroughputTables::ThroughputTables(std::size_t n, std::size_t degree_bound)
    : n_(n), d_(degree_bound), binom_(n, degree_bound) {
  validate(n, degree_bound);
  g_.resize(n + 1);
  for (std::size_t x = 0; x <= n; ++x) g_[x] = g_value(n, degree_bound, x);
  alpha_star_general_ = optimal_transmitters_general(n, degree_bound);
  alpha_cap_ = optimal_transmitters_alpha(n, degree_bound);
}

long double ThroughputTables::thm4_bound(std::size_t alpha_t, std::size_t alpha_r) const {
  // Same expression as throughput_upper_bound_alpha, with the binomials
  // read from the memo (identical long-double values, identical result).
  const std::size_t a = alpha_star(alpha_t);
  return static_cast<long double>(alpha_r) * static_cast<long double>(a) *
         binom_.ld(n_ - a - 1, d_ - 1) /
         (static_cast<long double>(n_) * static_cast<long double>(n_ - 1) *
          binom_.ld(n_ - 2, d_ - 1));
}

ExactFraction average_throughput_exact(const Schedule& schedule, std::size_t degree_bound) {
  const std::size_t n = schedule.num_nodes();
  validate(n, degree_bound);
  const std::size_t L = schedule.frame_length();
  u128 f = 0;
  for (std::size_t i = 0; i < L; ++i) {
    const std::size_t t = schedule.transmit_sizes()[i];
    const std::size_t r = schedule.receive_sizes()[i];
    if (t == 0 || r == 0) continue;
    if (n < t + 1) continue;  // C(n-t-1, D-1) with n-t-1 < 0 cannot happen (r >= 1)
    const u128 ways = binomial_exact(n - t - 1, degree_bound - 1);
    f = checked_add(f, checked_mul(checked_mul(t, r), ways));
  }
  ExactFraction out;
  out.num = f;
  out.den = checked_mul(
      checked_mul(checked_mul(static_cast<u128>(n), n - 1),
                  binomial_exact(n - 2, degree_bound - 1)),
      L);
  return out;
}

long double average_throughput(const Schedule& schedule, std::size_t degree_bound) {
  const std::size_t n = schedule.num_nodes();
  validate(n, degree_bound);
  const std::size_t L = schedule.frame_length();
  const long double log_den = std::log(static_cast<long double>(n)) +
                              std::log(static_cast<long double>(n - 1)) +
                              util::log_binomial(n - 2, degree_bound - 1);
  long double total = 0.0L;
  for (std::size_t i = 0; i < L; ++i) {
    const std::size_t t = schedule.transmit_sizes()[i];
    const std::size_t r = schedule.receive_sizes()[i];
    if (t == 0 || r == 0 || n - t < 1) continue;
    const long double log_term = std::log(static_cast<long double>(t)) +
                                 std::log(static_cast<long double>(r)) +
                                 util::log_binomial(n - t - 1, degree_bound - 1);
    total += std::exp(log_term - log_den);
  }
  return total / static_cast<long double>(L);
}

long double average_throughput(const Schedule& schedule, const ThroughputTables& tables) {
  const std::size_t n = schedule.num_nodes();
  const std::size_t degree_bound = tables.degree_bound();
  if (n != tables.n()) {
    throw std::invalid_argument("average_throughput: memo tables built for a different n");
  }
  validate(n, degree_bound);
  const std::size_t L = schedule.frame_length();
  const long double log_den = std::log(static_cast<long double>(n)) +
                              std::log(static_cast<long double>(n - 1)) +
                              tables.binomials().log(n - 2, degree_bound - 1);
  long double total = 0.0L;
  for (std::size_t i = 0; i < L; ++i) {
    const std::size_t t = schedule.transmit_sizes()[i];
    const std::size_t r = schedule.receive_sizes()[i];
    if (t == 0 || r == 0 || n - t < 1) continue;
    const long double log_term = std::log(static_cast<long double>(t)) +
                                 std::log(static_cast<long double>(r)) +
                                 tables.binomials().log(n - t - 1, degree_bound - 1);
    total += std::exp(log_term - log_den);
  }
  return total / static_cast<long double>(L);
}

ExactFraction average_throughput_bruteforce(const Schedule& schedule,
                                            std::size_t degree_bound) {
  const std::size_t n = schedule.num_nodes();
  validate(n, degree_bound);
  const std::size_t L = schedule.frame_length();

  std::atomic<std::uint64_t> total{0};
  util::parallel_for(0, n, [&](std::size_t x) {
    std::uint64_t local = 0;
    for (std::size_t y = 0; y < n; ++y) {
      if (y == x) continue;
      // Base: slots where x may transmit, y may receive, y not transmitting.
      DynamicBitset base = schedule.tran(x) & schedule.recv(y);
      base.subtract(schedule.tran(y));
      std::vector<std::size_t> pool;
      pool.reserve(n - 2);
      for (std::size_t v = 0; v < n; ++v) {
        if (v != x && v != y) pool.push_back(v);
      }
      DynamicBitset scratch(schedule.frame_length());
      util::for_each_k_subset(pool.size(), degree_bound - 1,
                              [&](std::span<const std::size_t> idx) {
                                scratch = base;
                                for (std::size_t i : idx) {
                                  scratch.subtract(schedule.tran(pool[i]));
                                }
                                local += scratch.count();
                                return true;
                              });
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });

  ExactFraction out;
  out.num = total.load();
  out.den = checked_mul(
      checked_mul(checked_mul(static_cast<u128>(n), n - 1),
                  binomial_exact(n - 2, degree_bound - 1)),
      L);
  return out;
}

std::size_t optimal_transmitters_general(std::size_t n, std::size_t degree_bound) {
  validate(n, degree_bound);
  // Theorem 3: floor vs ceil of (n-D)/(D+1) by exact comparison of
  // x C(n-x, D).
  const std::size_t fl = (n - degree_bound) / (degree_bound + 1);
  const std::size_t ce = (n - degree_bound + degree_bound) / (degree_bound + 1);
  const std::size_t fl_c = std::max<std::size_t>(fl, 1);
  if (fl_c == ce) return fl_c;
  const u128 wf = checked_mul(fl_c, binomial_exact(n - fl_c, degree_bound));
  const u128 wc = checked_mul(ce, binomial_exact(n - ce, degree_bound));
  return wf >= wc ? fl_c : ce;
}

long double throughput_upper_bound_general(std::size_t n, std::size_t degree_bound) {
  const std::size_t a = optimal_transmitters_general(n, degree_bound);
  return g_value(n, degree_bound, a);
}

long double throughput_upper_bound_general_loose(std::size_t n, std::size_t degree_bound) {
  validate(n, degree_bound);
  const long double nd = static_cast<long double>(n);
  const long double d = static_cast<long double>(degree_bound);
  return nd * std::pow(d, d) / ((nd - d) * std::pow(d + 1.0L, d + 1.0L));
}

std::size_t optimal_transmitters_alpha(std::size_t n, std::size_t degree_bound) {
  validate(n, degree_bound);
  // Theorem 4: α maximizes x C(n-x-1, D-1); candidates floor/ceil (n-D)/D.
  const std::size_t fl = (n - degree_bound) / degree_bound;
  const std::size_t ce = (n - degree_bound + degree_bound - 1) / degree_bound;
  const std::size_t fl_c = std::max<std::size_t>(fl, 1);
  auto weight = [&](std::size_t x) -> u128 {
    if (x == 0 || x + 1 > n) return 0;
    return checked_mul(x, binomial_exact(n - x - 1, degree_bound - 1));
  };
  if (fl_c == ce) return fl_c;
  return weight(fl_c) >= weight(ce) ? fl_c : ce;
}

std::size_t optimal_transmitters_alpha(std::size_t n, std::size_t degree_bound,
                                       std::size_t alpha_t) {
  return std::min(alpha_t, optimal_transmitters_alpha(n, degree_bound));
}

long double throughput_upper_bound_alpha(std::size_t n, std::size_t degree_bound,
                                         std::size_t alpha_t, std::size_t alpha_r) {
  validate(n, degree_bound);
  const std::size_t a = optimal_transmitters_alpha(n, degree_bound, alpha_t);
  return static_cast<long double>(alpha_r) * static_cast<long double>(a) *
         binomial_ld(n - a - 1, degree_bound - 1) /
         (static_cast<long double>(n) * static_cast<long double>(n - 1) *
          binomial_ld(n - 2, degree_bound - 1));
}

long double throughput_upper_bound_alpha_loose(std::size_t n, std::size_t degree_bound,
                                               std::size_t alpha_r) {
  validate(n, degree_bound);
  const long double nd = static_cast<long double>(n);
  const long double d = static_cast<long double>(degree_bound);
  const long double dd_pow = std::pow(d, d);
  const long double dm1_pow = degree_bound == 1 ? 1.0L : std::pow(d - 1.0L, d - 1.0L);
  return static_cast<long double>(alpha_r) * (nd - 1.0L) * dm1_pow / (nd * (nd - d) * dd_pow);
}

long double optimality_ratio_r(std::size_t n, std::size_t degree_bound, std::size_t alpha_t,
                               std::size_t x) {
  validate(n, degree_bound);
  const std::size_t opt = optimal_transmitters_alpha(n, degree_bound, alpha_t);
  long double r = static_cast<long double>(x) / static_cast<long double>(opt);
  for (std::size_t i = 1; i < degree_bound; ++i) {
    r *= static_cast<long double>(n - i - x) / static_cast<long double>(n - i - opt);
  }
  return r;
}

long double optimality_ratio_r(const ThroughputTables& tables, std::size_t alpha_t,
                               std::size_t x) {
  const std::size_t n = tables.n();
  const std::size_t degree_bound = tables.degree_bound();
  const std::size_t opt = tables.alpha_star(alpha_t);
  long double r = static_cast<long double>(x) / static_cast<long double>(opt);
  for (std::size_t i = 1; i < degree_bound; ++i) {
    r *= static_cast<long double>(n - i - x) / static_cast<long double>(n - i - opt);
  }
  return r;
}

namespace {

// Adversarial minimization of |T(x, y, S)| over S (|S| = D-1) for fixed
// (x, y), by recursion with pruning: the base set only shrinks, so a branch
// whose current count <= best known min can stop refining only when it
// reaches depth; a branch that hits 0 is globally minimal.
struct MinCtx {
  const Schedule& schedule;
  std::size_t x, y;
  std::size_t depth_needed;
  std::size_t best;  // running global best (upper bound)

  std::vector<std::size_t> pool;
  DynamicBitset base;

  MinCtx(const Schedule& s, std::size_t x_, std::size_t y_, std::size_t d,
         std::size_t initial_best)
      : schedule(s), x(x_), y(y_), depth_needed(d - 1), best(initial_best),
        base(s.frame_length()) {
    const std::size_t n = s.num_nodes();
    pool.reserve(n - 2);
    for (std::size_t v = 0; v < n; ++v) {
      if (v != x && v != y) pool.push_back(v);
    }
    base = s.tran(x) & s.recv(y);
    base.subtract(s.tran(y));
  }

  // Returns the minimum count reachable from (first, depth, current).
  void recurse(std::size_t first, std::size_t depth, const DynamicBitset& current) {
    if (best == 0) return;
    if (depth == depth_needed) {
      best = std::min(best, current.count());
      return;
    }
    const std::size_t remaining = depth_needed - depth;
    for (std::size_t pi = first; pi + remaining <= pool.size(); ++pi) {
      DynamicBitset next = current;
      next.subtract(schedule.tran(pool[pi]));
      recurse(pi + 1, depth + 1, next);
      if (best == 0) return;
    }
  }

  std::size_t run() {
    if (depth_needed > pool.size()) {
      // Not enough other nodes to form S; treat as S = all of them.
      DynamicBitset current = base;
      for (std::size_t v : pool) current.subtract(schedule.tran(v));
      return current.count();
    }
    recurse(0, 0, base);
    return best;
  }
};

}  // namespace

std::size_t min_guaranteed_slots_exact(const Schedule& schedule, std::size_t degree_bound) {
  const std::size_t n = schedule.num_nodes();
  validate(n, degree_bound);
  std::atomic<std::size_t> global_min{std::numeric_limits<std::size_t>::max()};
  util::parallel_for(0, n, [&](std::size_t x) {
    for (std::size_t y = 0; y < n; ++y) {
      if (y == x) continue;
      const std::size_t known = global_min.load(std::memory_order_relaxed);
      if (known == 0) return;
      MinCtx ctx(schedule, x, y, degree_bound, known);
      const std::size_t local = ctx.run();
      std::size_t cur = global_min.load(std::memory_order_relaxed);
      while (local < cur &&
             !global_min.compare_exchange_weak(cur, local, std::memory_order_relaxed)) {
      }
    }
  });
  return global_min.load();
}

std::size_t min_guaranteed_slots_greedy(const Schedule& schedule, std::size_t degree_bound) {
  const std::size_t n = schedule.num_nodes();
  validate(n, degree_bound);
  std::atomic<std::size_t> global_min{std::numeric_limits<std::size_t>::max()};
  util::parallel_for(0, n, [&](std::size_t x) {
    std::size_t local_min = std::numeric_limits<std::size_t>::max();
    for (std::size_t y = 0; y < n; ++y) {
      if (y == x) continue;
      DynamicBitset current = schedule.tran(x) & schedule.recv(y);
      current.subtract(schedule.tran(y));
      std::vector<bool> used(n, false);
      used[x] = used[y] = true;
      for (std::size_t round = 0; round + 1 < degree_bound; ++round) {
        std::size_t best_v = n, best_gain = 0;
        bool any_unused = false;
        for (std::size_t v = 0; v < n; ++v) {
          if (used[v]) continue;
          any_unused = true;
          const std::size_t gain = current.intersection_count(schedule.tran(v));
          if (best_v == n || gain > best_gain) {
            best_gain = gain;
            best_v = v;
          }
        }
        if (!any_unused) break;
        used[best_v] = true;
        current.subtract(schedule.tran(best_v));
      }
      local_min = std::min(local_min, current.count());
      if (local_min == 0) break;
    }
    std::size_t cur = global_min.load(std::memory_order_relaxed);
    while (local_min < cur &&
           !global_min.compare_exchange_weak(cur, local_min, std::memory_order_relaxed)) {
    }
  });
  return global_min.load();
}

std::size_t min_guaranteed_slots_sampled(const Schedule& schedule, std::size_t degree_bound,
                                         std::size_t trials, util::Xoshiro256& rng) {
  const std::size_t n = schedule.num_nodes();
  validate(n, degree_bound);
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (std::size_t t = 0; t < trials && best > 0; ++t) {
    const std::size_t x = static_cast<std::size_t>(rng.below(n));
    std::size_t y = static_cast<std::size_t>(rng.below(n - 1));
    if (y >= x) ++y;
    // Sample S from V - {x, y}.
    std::vector<std::size_t> s = util::sample_k_of(n - 2, degree_bound - 1, rng);
    const std::size_t lo = std::min(x, y), hi = std::max(x, y);
    for (auto& v : s) {
      if (v >= lo) ++v;
      if (v >= hi) ++v;
    }
    best = std::min(best, schedule.guaranteed_slot_count(x, y, s));
  }
  return best;
}

}  // namespace ttdc::core
