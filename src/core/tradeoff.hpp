// The deployment planner: sweeping (αT, αR) and exposing the
// energy / throughput / latency trade-off surface of the construction.
//
// The paper fixes (αT, αR) as given application requirements; a deployer
// has to pick them. For a fixed topology-transparent base <T> and degree
// bound D, every candidate (αT, αR) yields -- via Theorems 4, 7, 8 --
// an analytic duty cycle, frame length, throughput bound, and worst-case
// latency proxy, WITHOUT running Construct(). This module enumerates the
// grid, evaluates those closed forms, and extracts the Pareto-efficient
// frontier (duty cycle down, throughput up, latency down).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/schedule.hpp"

namespace ttdc::core {

class ThroughputTables;  // core/throughput.hpp

struct TradeoffPoint {
  std::size_t alpha_t = 0;
  std::size_t alpha_r = 0;
  std::size_t alpha_t_star = 0;      // the cap Construct() will actually use
  std::size_t frame_length = 0;      // Theorem 7 (exact, from <T>'s profile)
  double duty_cycle = 0.0;           // (αT* + αR) / n per constructed slot, exact
  double avg_throughput_bound = 0.0; // Theorem 4 upper bound
  double ratio_lower_bound = 0.0;    // Theorem 8 lower bound on achieved/best
  // Worst-case single-hop latency proxy: the constructed frame length
  // (every link is guaranteed a slot per frame).
  std::size_t latency_bound = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Evaluates one candidate pair against base <T> (must be non-sleeping).
TradeoffPoint evaluate_tradeoff(const Schedule& non_sleeping, std::size_t degree_bound,
                                std::size_t alpha_t, std::size_t alpha_r);

/// Same, against a shared (n, D) memo (core/throughput.hpp). Bit-identical
/// to the direct form; this is what the grid enumeration and campaign
/// cells use so the Theorem 4/8 binomial terms are computed once per (n, D)
/// instead of once per grid point.
TradeoffPoint evaluate_tradeoff(const Schedule& non_sleeping, const ThroughputTables& tables,
                                std::size_t alpha_t, std::size_t alpha_r);

/// Full grid over 1 <= αT <= max_alpha_t, 1 <= αR <= max_alpha_r with
/// αT + αR <= n. Zero maxima default to n - 1. Builds one ThroughputTables
/// memo and evaluates the whole grid against it.
std::vector<TradeoffPoint> enumerate_tradeoffs(const Schedule& non_sleeping,
                                               std::size_t degree_bound,
                                               std::size_t max_alpha_t = 0,
                                               std::size_t max_alpha_r = 0);

/// Pareto-efficient subset under (duty_cycle ↓, avg_throughput_bound ↑,
/// latency_bound ↓): points no other point weakly dominates in all three
/// and strictly in one. Sorted by duty cycle ascending.
std::vector<TradeoffPoint> pareto_front(std::vector<TradeoffPoint> points);

/// Cheapest (lowest duty cycle) Pareto point whose latency bound and
/// throughput bound meet the given requirements; nullopt-like: returns
/// false if no point qualifies.
bool pick_cheapest(const std::vector<TradeoffPoint>& front, std::size_t max_latency_slots,
                   double min_avg_throughput, TradeoffPoint& out);

}  // namespace ttdc::core
