// The schedule model of the paper (§3).
//
// A schedule of node activities is a pair <T, R> of disjoint per-slot node
// sets over a frame of L slots: T[i] may transmit in slots i + L*l, R[i] may
// receive, and every other node sleeps. A *non-sleeping* schedule has
// T[i] ∪ R[i] = V in every slot and is determined by T alone.
//
// Schedule is immutable after construction and pre-computes the transposed
// per-node slot sets tran(x) and recv(x) (paper notation), which every
// checker and analysis below is built from.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/bitset.hpp"
#include "util/check.hpp"

namespace ttdc::core {

using util::DynamicBitset;

/// Immutable <T, R> schedule over `num_nodes` nodes and `frame_length` slots.
class Schedule {
 public:
  /// Builds from per-slot transmitter/receiver sets (bitsets over nodes).
  /// Throws std::invalid_argument unless |transmit| == |receive| > 0, all
  /// bitsets share the node universe, and T[i] ∩ R[i] = ∅ for every slot.
  Schedule(std::size_t num_nodes, std::vector<DynamicBitset> transmit,
           std::vector<DynamicBitset> receive);

  /// Builds the non-sleeping schedule <T>: R[i] = V \ T[i].
  static Schedule non_sleeping(std::size_t num_nodes, std::vector<DynamicBitset> transmit);

  [[nodiscard]] std::size_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::size_t frame_length() const { return transmit_.size(); }

  /// Position of an absolute simulator slot within the periodic frame. The
  /// schedule's behavior is a pure function of this phase — which is exactly
  /// what makes whole frames memoizable: two slots with equal frame_phase()
  /// see identical <T, R> sets.
  [[nodiscard]] std::size_t frame_phase(std::uint64_t slot) const {
    return static_cast<std::size_t>(slot % frame_length());
  }

  /// First frame boundary at or after `slot` (the aligned point where the
  /// fast-forward engine may attempt a frame replay).
  [[nodiscard]] std::uint64_t next_frame_boundary(std::uint64_t slot) const {
    const std::uint64_t phase = slot % frame_length();
    return phase == 0 ? slot : slot + (frame_length() - phase);
  }

  /// Per-slot sets (bitsets over nodes).
  [[nodiscard]] const DynamicBitset& transmitters(std::size_t slot) const {
    TTDC_CHECK_BOUNDS(slot, transmit_.size());
    return transmit_[slot];
  }
  [[nodiscard]] const DynamicBitset& receivers(std::size_t slot) const {
    TTDC_CHECK_BOUNDS(slot, receive_.size());
    return receive_[slot];
  }

  /// tran(x): slots in which node x may transmit (bitset over slots).
  [[nodiscard]] const DynamicBitset& tran(std::size_t node) const {
    TTDC_CHECK_BOUNDS(node, num_nodes_);
    return tran_[node];
  }
  /// recv(x): slots in which node x may receive (bitset over slots).
  [[nodiscard]] const DynamicBitset& recv(std::size_t node) const {
    TTDC_CHECK_BOUNDS(node, num_nodes_);
    return recv_[node];
  }

  /// Re-verifies the construction invariants (universe sizes, per-slot
  /// T[i] ∩ R[i] = ∅, transposed sets consistent with the per-slot sets).
  /// The constructor establishes them and the class is immutable, so this
  /// only fires on memory corruption or a bad const_cast; compiled out
  /// (no-op) unless contract checks are enabled.
  void audit_invariants() const;

  /// True iff T[i] ∪ R[i] = V in every slot.
  [[nodiscard]] bool is_non_sleeping() const;

  /// True iff |T[i]| <= alpha_t and |R[i]| <= alpha_r in every slot
  /// (the paper's (αT, αR)-schedule property).
  [[nodiscard]] bool is_alpha_schedule(std::size_t alpha_t, std::size_t alpha_r) const;

  /// Per-slot cardinalities, precomputed.
  [[nodiscard]] std::span<const std::size_t> transmit_sizes() const { return t_sizes_; }
  [[nodiscard]] std::span<const std::size_t> receive_sizes() const { return r_sizes_; }

  /// min/max of |T[i]| over slots (the paper's M_in / M_ax).
  [[nodiscard]] std::size_t min_transmitters() const;
  [[nodiscard]] std::size_t max_transmitters() const;
  [[nodiscard]] std::size_t max_receivers() const;

  /// freeSlots(x, Y) = tran(x) \ ∪_{y∈Y} tran(y): slots where x transmits
  /// and no node of Y does (bitset over slots). Y given as node indices.
  [[nodiscard]] DynamicBitset free_slots(std::size_t x, std::span<const std::size_t> y) const;

  /// σ(a, b) = tran(a) ∩ recv(b): slots where a may transmit and b receive.
  [[nodiscard]] DynamicBitset sigma(std::size_t a, std::size_t b) const;

  /// T(x, y, S) = recv(y) ∩ freeSlots(x, {y} ∪ S): slots in which x's
  /// transmission to y is guaranteed to succeed when y's other neighbors
  /// are exactly S (Definition preceding Definition 1).
  [[nodiscard]] DynamicBitset guaranteed_slots(std::size_t x, std::size_t y,
                                               std::span<const std::size_t> s) const;

  /// |T(x, y, S)| without materializing the set.
  [[nodiscard]] std::size_t guaranteed_slot_count(std::size_t x, std::size_t y,
                                                  std::span<const std::size_t> s) const;

  /// Fraction of (node, slot) pairs that are active (transmit or receive):
  /// the network-wide duty cycle in [0, 1]; 1.0 for non-sleeping schedules.
  [[nodiscard]] double duty_cycle() const;

  /// Per-node fraction of active slots.
  [[nodiscard]] std::vector<double> per_node_duty_cycle() const;

  /// Human-readable slot listing (for examples and error messages).
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t num_nodes_;
  std::vector<DynamicBitset> transmit_;  // [slot] -> node set
  std::vector<DynamicBitset> receive_;   // [slot] -> node set
  std::vector<DynamicBitset> tran_;      // [node] -> slot set
  std::vector<DynamicBitset> recv_;      // [node] -> slot set
  std::vector<std::size_t> t_sizes_;     // [slot] -> |T[slot]|
  std::vector<std::size_t> r_sizes_;     // [slot] -> |R[slot]|
};

}  // namespace ttdc::core
