#include "core/direct.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/subsets.hpp"

namespace ttdc::core {

namespace {

// One (x, Y) neighborhood with the receivers y_k ∈ Y not yet served.
struct PairConstraint {
  std::size_t x;
  DynamicBitset y;                    // the D-set, bitset over nodes
  DynamicBitset uncovered_receivers;  // subset of y still needing a slot
};

// Does the slot (T, R) serve transmissions from c.x under neighborhood c.y?
bool slot_serves(const PairConstraint& c, const DynamicBitset& t) {
  return t.test(c.x) && !c.y.intersects(t);
}

}  // namespace

Schedule greedy_direct_schedule(std::size_t n, std::size_t degree_bound, std::size_t alpha_t,
                                std::size_t alpha_r, util::Xoshiro256& rng,
                                const DirectGreedyOptions& options) {
  if (degree_bound < 1 || degree_bound + 1 > n) {
    throw std::invalid_argument("greedy_direct_schedule: need 1 <= D <= n - 1");
  }
  if (alpha_t < 1 || alpha_r < 1 || alpha_t + alpha_r > n) {
    throw std::invalid_argument("greedy_direct_schedule: need αT, αR >= 1, αT + αR <= n");
  }

  // Materialize every (x, Y) constraint.
  std::vector<PairConstraint> pairs;
  for (std::size_t x = 0; x < n; ++x) {
    std::vector<std::size_t> pool;
    pool.reserve(n - 1);
    for (std::size_t v = 0; v < n; ++v) {
      if (v != x) pool.push_back(v);
    }
    util::for_each_k_subset(pool.size(), degree_bound, [&](std::span<const std::size_t> idx) {
      PairConstraint c{x, DynamicBitset(n), DynamicBitset(n)};
      for (std::size_t i : idx) c.y.set(pool[i]);
      c.uncovered_receivers = c.y;
      pairs.push_back(std::move(c));
      return true;
    });
  }

  std::vector<std::size_t> open;  // indices of pairs with uncovered receivers
  open.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) open.push_back(i);

  std::vector<DynamicBitset> out_t;
  std::vector<DynamicBitset> out_r;

  std::vector<std::size_t> still_open;
  while (!open.empty()) {
    if (out_t.size() >= options.max_frame_length) {
      throw std::runtime_error("greedy_direct_schedule: frame length valve tripped");
    }
    DynamicBitset best_t(n), best_r(n);
    std::size_t best_score = 0;
    for (std::size_t cand = 0; cand < options.candidates_per_round; ++cand) {
      // Seed from a random open pair: its transmitter plus its uncovered
      // receivers guarantee at least one new unit of coverage.
      const PairConstraint& seed = pairs[open[rng.below(open.size())]];
      DynamicBitset t(n), r(n);
      t.set(seed.x);
      seed.uncovered_receivers.for_each([&](std::size_t yk) {
        if (r.count() < alpha_r) r.set(yk);
      });
      // Pad with transmitters/receivers from other open pairs; a padding
      // transmitter must avoid the seed's Y (or it kills the seed) and the
      // receiver set.
      for (int tries = 0; tries < 8 && t.count() < alpha_t; ++tries) {
        const PairConstraint& other = pairs[open[rng.below(open.size())]];
        if (other.x != seed.x && !seed.y.test(other.x) && !r.test(other.x) &&
            !other.y.test(seed.x) && !other.y.intersects(t)) {
          t.set(other.x);
          other.uncovered_receivers.for_each([&](std::size_t yk) {
            if (r.count() < alpha_r && !t.test(yk)) r.set(yk);
          });
        }
      }
      // Score: newly covered (pair, receiver) units.
      std::size_t score = 0;
      for (std::size_t idx : open) {
        const PairConstraint& c = pairs[idx];
        if (slot_serves(c, t)) score += c.uncovered_receivers.intersection_count(r);
      }
      if (score > best_score) {
        best_score = score;
        best_t = std::move(t);
        best_r = std::move(r);
      }
    }
    // Seeded candidates always cover their seed, so best_score >= 1.
    // Apply the slot and shrink the open list.
    still_open.clear();
    for (std::size_t idx : open) {
      PairConstraint& c = pairs[idx];
      if (slot_serves(c, best_t)) c.uncovered_receivers.subtract(best_r);
      if (c.uncovered_receivers.any()) still_open.push_back(idx);
    }
    open.swap(still_open);
    out_t.push_back(std::move(best_t));
    out_r.push_back(std::move(best_r));
  }
  return Schedule(n, std::move(out_t), std::move(out_r));
}

}  // namespace ttdc::core
