// Schedule serialization: a stable, human-auditable text format so
// schedules can be generated offline and flashed to nodes / checked into a
// deployment repo.
//
// Format (line oriented, '#' comments allowed):
//   ttdc-schedule v1
//   nodes <n>
//   slots <L>
//   slot <i> T <space-separated node ids> R <space-separated node ids>
//   (exactly L slot lines, in order; empty sets are written as '-')
#pragma once

#include <iosfwd>
#include <string>

#include "core/schedule.hpp"

namespace ttdc::core {

/// Writes the schedule in the v1 text format.
void write_schedule(std::ostream& out, const Schedule& schedule);

/// Renders the v1 text format to a string.
std::string schedule_to_text(const Schedule& schedule);

/// Parses the v1 text format; throws std::invalid_argument with a
/// line-numbered message on malformed input (wrong header, out-of-range
/// node ids, missing/duplicate slot lines, T/R overlap).
Schedule read_schedule(std::istream& in);

/// Parses from a string.
Schedule schedule_from_text(const std::string& text);

}  // namespace ttdc::core
