#include "core/serialize.hpp"

#include <sstream>
#include <stdexcept>

namespace ttdc::core {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("schedule parse error at line " + std::to_string(line) + ": " +
                              what);
}

void write_set(std::ostream& out, const DynamicBitset& set) {
  if (set.none()) {
    out << " -";
    return;
  }
  set.for_each([&](std::size_t v) { out << ' ' << v; });
}

}  // namespace

void write_schedule(std::ostream& out, const Schedule& schedule) {
  out << "ttdc-schedule v1\n";
  out << "nodes " << schedule.num_nodes() << '\n';
  out << "slots " << schedule.frame_length() << '\n';
  for (std::size_t i = 0; i < schedule.frame_length(); ++i) {
    out << "slot " << i << " T";
    write_set(out, schedule.transmitters(i));
    out << " R";
    write_set(out, schedule.receivers(i));
    out << '\n';
  }
}

std::string schedule_to_text(const Schedule& schedule) {
  std::ostringstream os;
  write_schedule(os, schedule);
  return os.str();
}

Schedule read_schedule(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      // Strip comments and skip blank lines.
      if (const auto hash = line.find('#'); hash != std::string::npos) {
        line.resize(hash);
      }
      if (line.find_first_not_of(" \t\r") != std::string::npos) return true;
    }
    return false;
  };

  if (!next_line()) fail(line_no, "empty input");
  {
    std::istringstream ls(line);
    std::string magic, version;
    ls >> magic >> version;
    if (magic != "ttdc-schedule" || version != "v1") fail(line_no, "bad header");
  }
  std::size_t n = 0, slots = 0;
  {
    if (!next_line()) fail(line_no, "missing 'nodes'");
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key >> n) || key != "nodes" || n == 0) fail(line_no, "bad 'nodes' line");
  }
  {
    if (!next_line()) fail(line_no, "missing 'slots'");
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key >> slots) || key != "slots" || slots == 0) fail(line_no, "bad 'slots' line");
  }
  std::vector<DynamicBitset> transmit(slots, DynamicBitset(n));
  std::vector<DynamicBitset> receive(slots, DynamicBitset(n));
  std::vector<bool> seen(slots, false);
  for (std::size_t count = 0; count < slots; ++count) {
    if (!next_line()) fail(line_no, "missing slot line");
    std::istringstream ls(line);
    std::string key;
    std::size_t index;
    if (!(ls >> key >> index) || key != "slot") fail(line_no, "expected 'slot <i> ...'");
    if (index >= slots) fail(line_no, "slot index out of range");
    if (seen[index]) fail(line_no, "duplicate slot index");
    seen[index] = true;
    std::string marker;
    if (!(ls >> marker) || marker != "T") fail(line_no, "expected 'T'");
    // Read node ids until the 'R' marker.
    std::string token;
    bool saw_r = false;
    while (ls >> token) {
      if (token == "R") {
        saw_r = true;
        break;
      }
      if (token == "-") continue;
      std::size_t v = 0;
      try {
        v = std::stoull(token);
      } catch (const std::exception&) {
        fail(line_no, "bad transmitter id '" + token + "'");
      }
      if (v >= n) fail(line_no, "transmitter id out of range");
      transmit[index].set(v);
    }
    if (!saw_r) fail(line_no, "missing 'R'");
    while (ls >> token) {
      if (token == "-") continue;
      std::size_t v = 0;
      try {
        v = std::stoull(token);
      } catch (const std::exception&) {
        fail(line_no, "bad receiver id '" + token + "'");
      }
      if (v >= n) fail(line_no, "receiver id out of range");
      if (transmit[index].test(v)) fail(line_no, "node in both T and R");
      receive[index].set(v);
    }
  }
  return Schedule(n, std::move(transmit), std::move(receive));
}

Schedule schedule_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_schedule(is);
}

}  // namespace ttdc::core
