// The word-parallel simulator hot path (DESIGN.md §8): golden equivalence
// between the legacy scalar pipeline and the batched pipeline for every MAC
// protocol, the batched MAC slot-set contract, the lazy routing cache, the
// ring-buffer packet queue, and the zero-allocation steady-state invariant
// of Simulator::step() (verified with a global operator-new counting hook).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "combinatorics/constructions.hpp"
#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"

// ---------------------------------------------------------------------------
// Allocation-counting hook: replaces the global operator new for this test
// binary. The zero-allocation test snapshots the counter around sim.run();
// everything else is unaffected (the counter is a relaxed atomic increment).
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

// GCC pairs call sites of the replacement operator new with the free() in
// the replacement operator delete and flags a mismatch; both sides go
// through malloc/free, so the pairing is exactly right.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
// ---------------------------------------------------------------------------

namespace ttdc::sim {
namespace {

using core::DynamicBitset;
using core::Schedule;

constexpr std::size_t kN = 36;
constexpr std::size_t kD = 4;
constexpr std::uint64_t kSlots = 10000;

net::Graph test_graph(std::uint64_t seed = 21) {
  util::Xoshiro256 rng(seed);
  return net::random_bounded_degree_graph(kN, kD, 2 * kN, rng);
}

Schedule duty_schedule() {
  return core::construct_duty_cycled(
      core::non_sleeping_from_family(comb::build_plan(comb::best_plan(kN, kD), kN)), kD, 4,
      kN / 3);
}

/// Field-by-field SimStats comparison (latency compared through its queries;
/// the sample multiset is identical iff count/mean/max/percentiles agree on
/// identical insertion histories).
void expect_identical_stats(const SimStats& a, const SimStats& b) {
  EXPECT_EQ(a.slots_run, b.slots_run);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.hop_successes, b.hop_successes);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.receiver_asleep, b.receiver_asleep);
  EXPECT_EQ(a.channel_losses, b.channel_losses);
  EXPECT_EQ(a.sync_losses, b.sync_losses);
  EXPECT_EQ(a.queue_drops, b.queue_drops);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  for (double pct : {50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(a.latency.percentile(pct), b.latency.percentile(pct)) << "p" << pct;
  }
  EXPECT_EQ(a.state_slots, b.state_slots);
  EXPECT_EQ(a.delivered_by_origin, b.delivered_by_origin);
  EXPECT_EQ(a.wake_transitions, b.wake_transitions);
  EXPECT_EQ(a.first_death_slot, b.first_death_slot);
  EXPECT_EQ(a.deaths, b.deaths);
}

/// Runs the same (graph, MAC factory, traffic factory, config) under both
/// pipelines and asserts identical SimStats.
template <typename MacFactory, typename TrafficFactory>
void expect_pipelines_equivalent(MacFactory make_mac, TrafficFactory make_traffic,
                                 SimConfig config) {
  auto mac_s = make_mac();
  auto traffic_s = make_traffic();
  config.force_scalar_pipeline = true;
  Simulator scalar(test_graph(), *mac_s, *traffic_s, config);
  scalar.run(kSlots);

  auto mac_b = make_mac();
  auto traffic_b = make_traffic();
  config.force_scalar_pipeline = false;
  Simulator batched(test_graph(), *mac_b, *traffic_b, config);
  batched.run(kSlots);

  expect_identical_stats(scalar.stats(), batched.stats());
}

auto bernoulli_factory(double rate) {
  return [rate] { return std::make_unique<BernoulliTraffic>(kN, rate); };
}

TEST(HotPathGolden, DutyCycledScheduleMac) {
  const Schedule s = duty_schedule();
  expect_pipelines_equivalent([&] { return std::make_unique<DutyCycledScheduleMac>(s); },
                              bernoulli_factory(0.01), {.seed = 101});
}

TEST(HotPathGolden, DutyCycledScheduleMacNaiveSenders) {
  const Schedule s = duty_schedule();
  expect_pipelines_equivalent(
      [&] { return std::make_unique<DutyCycledScheduleMac>(s, false); },
      bernoulli_factory(0.01), {.seed = 102});
}

TEST(HotPathGolden, SlottedAlohaMac) {
  expect_pipelines_equivalent([] { return std::make_unique<SlottedAlohaMac>(kN, 0.08); },
                              bernoulli_factory(0.02), {.seed = 103});
}

TEST(HotPathGolden, UncoordinatedSleepMac) {
  expect_pipelines_equivalent(
      [] { return std::make_unique<UncoordinatedSleepMac>(kN, 0.3, 0.5); },
      bernoulli_factory(0.02), {.seed = 104});
}

TEST(HotPathGolden, CommonActivePeriodMac) {
  expect_pipelines_equivalent(
      [] { return std::make_unique<CommonActivePeriodMac>(kN, 10, 3, 0.2); },
      bernoulli_factory(0.02), {.seed = 105});
}

TEST(HotPathGolden, ColoringTdmaMac) {
  expect_pipelines_equivalent([] { return std::make_unique<ColoringTdmaMac>(test_graph()); },
                              bernoulli_factory(0.02), {.seed = 106});
}

TEST(HotPathGolden, LossyChannelDrawsIdenticalRngStream) {
  const Schedule s = duty_schedule();
  expect_pipelines_equivalent(
      [&] { return std::make_unique<DutyCycledScheduleMac>(s); }, bernoulli_factory(0.02),
      {.seed = 107, .packet_error_rate = 0.1, .sync_miss_rate = 0.05});
}

TEST(HotPathGolden, BatteryDeathsAndWakeAccounting) {
  const Schedule s = duty_schedule();
  SimConfig config{.seed = 108};
  config.battery_mj = 40.0;  // dies after ~60 listen slots: plenty of deaths
  expect_pipelines_equivalent([&] { return std::make_unique<DutyCycledScheduleMac>(s); },
                              bernoulli_factory(0.02), config);

  SimConfig uconfig{.seed = 109};
  uconfig.battery_mj = 25.0;
  expect_pipelines_equivalent(
      [] { return std::make_unique<UncoordinatedSleepMac>(kN, 0.4, 0.5); },
      bernoulli_factory(0.02), uconfig);
}

TEST(HotPathGolden, TopologyChurnKeepsPathsAligned) {
  const Schedule s = duty_schedule();
  auto run = [&](bool force_scalar) {
    DutyCycledScheduleMac mac(s);
    BernoulliTraffic traffic(kN, 0.01);
    SimConfig config{.seed = 110};
    config.force_scalar_pipeline = force_scalar;
    Simulator sim(test_graph(1), mac, traffic, config);
    util::Xoshiro256 topo_rng(77);
    for (int epoch = 0; epoch < 4; ++epoch) {
      sim.run(1500);
      sim.set_graph(net::random_bounded_degree_graph(kN, kD, 2 * kN, topo_rng));
    }
    sim.run(1500);
    return sim.stats();
  };
  const SimStats a = run(true);
  const SimStats b = run(false);
  expect_identical_stats(a, b);
}

// ------------------------------------------------------- slot-set contract

/// Checks fill_slot_sets() against the scalar interface for whatever slots
/// the MAC is currently in: receivers must mirror can_receive, and the
/// batched transmit rule must mirror wants_transmit for every (v, target).
void expect_slot_sets_match(MacProtocol& mac, std::size_t n, std::uint64_t slots) {
  util::Xoshiro256 rng(5);
  util::SlotSet receivers(n), transmitters(n);
  for (std::uint64_t slot = 0; slot < slots; ++slot) {
    mac.begin_slot(slot, rng);
    const bool batched = mac.fill_slot_sets(receivers, transmitters);
    ASSERT_TRUE(batched);
    const bool gates = mac.sender_gates_on_receiver();
    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_EQ(receivers.test(v), mac.can_receive(v)) << "slot " << slot << " v " << v;
      for (std::size_t target = 0; target < n; ++target) {
        if (target == v) continue;
        const bool batched_tx =
            transmitters.test(v) && (!gates || receivers.test(target));
        EXPECT_EQ(batched_tx, mac.wants_transmit(v, target))
            << "slot " << slot << " v " << v << " target " << target;
      }
      // The sleep contract: not transmitting-eligible, not receiving =>
      // the scalar pipeline would have put the node to sleep.
      if (!receivers.test(v) && !transmitters.test(v)) {
        EXPECT_EQ(mac.idle_state(v), RadioState::kSleep);
      }
    }
  }
}

TEST(MacSlotSets, AllInTreeMacsMatchScalarInterface) {
  const Schedule s = duty_schedule();
  DutyCycledScheduleMac aware(s), naive(s, false);
  expect_slot_sets_match(aware, kN, 2 * s.frame_length());
  expect_slot_sets_match(naive, kN, 2 * s.frame_length());
  SlottedAlohaMac aloha(kN, 0.3);
  expect_slot_sets_match(aloha, kN, 50);
  UncoordinatedSleepMac unco(kN, 0.4, 0.5);
  expect_slot_sets_match(unco, kN, 50);
  CommonActivePeriodMac smac(kN, 8, 3, 0.4);
  expect_slot_sets_match(smac, kN, 24);
  ColoringTdmaMac tdma(test_graph());
  expect_slot_sets_match(tdma, kN, 40);
}

TEST(MacSlotSets, DefaultFallbackFillsReceiversAndReportsScalar) {
  // A minimal out-of-tree MAC using only the scalar interface.
  class EvenListenerMac final : public MacProtocol {
   public:
    void begin_slot(std::uint64_t, util::Xoshiro256&) override {}
    bool can_receive(std::size_t v) const override { return v % 2 == 0; }
    bool wants_transmit(std::size_t v, std::size_t) const override { return v % 2 == 1; }
    RadioState idle_state(std::size_t) const override { return RadioState::kSleep; }
  };
  EvenListenerMac mac;
  util::SlotSet receivers(6), transmitters(6);
  EXPECT_FALSE(mac.fill_slot_sets(receivers, transmitters));
  for (std::size_t v = 0; v < 6; ++v) EXPECT_EQ(receivers.test(v), v % 2 == 0);

  // And the simulator still drives it correctly through the batched
  // pipeline's scalar fallback: odd nodes transmit to even neighbors.
  BernoulliTraffic traffic(6, 0.2);
  EvenListenerMac mac_b, mac_s;
  SimConfig config{.seed = 42};
  Simulator batched(net::path_graph(6), mac_b, traffic, config);
  batched.run(2000);
  config.force_scalar_pipeline = true;
  Simulator scalar(net::path_graph(6), mac_s, traffic, config);
  scalar.run(2000);
  EXPECT_GT(batched.stats().delivered, 0u);
  expect_identical_stats(scalar.stats(), batched.stats());
}

// ------------------------------------------------------------ routing cache

TEST(RoutingCache, ColumnsBuildLazilyAndInvalidateOnSetGraph) {
  net::Graph path = net::path_graph(5);
  net::RoutingTable table(path);
  EXPECT_EQ(table.cached_destinations(), 0u);
  EXPECT_EQ(table.next_hop(0, 4), 1u);
  EXPECT_EQ(table.cached_destinations(), 1u);  // only dst=4 materialized
  EXPECT_EQ(table.next_hop(3, 4), 4u);
  EXPECT_EQ(table.cached_destinations(), 1u);  // cache hit, no new column
  EXPECT_EQ(table.next_hop(4, 4), 4u);
  EXPECT_EQ(table.next_hop(4, 0), 3u);
  EXPECT_EQ(table.cached_destinations(), 2u);

  // Add a chord 0-4: the shortest path changes only after invalidation.
  net::Graph chord = net::path_graph(5);
  chord.add_edge(0, 4);
  table.set_graph(chord);
  EXPECT_EQ(table.cached_destinations(), 0u);
  EXPECT_EQ(table.next_hop(0, 4), 4u);

  // Unreachable destinations keep reporting SIZE_MAX.
  net::Graph split(4);
  split.add_edge(0, 1);
  split.add_edge(2, 3);
  net::RoutingTable t2(split);
  EXPECT_EQ(t2.next_hop(0, 3), static_cast<std::size_t>(-1));
  EXPECT_EQ(t2.next_hop(2, 3), 3u);
}

// --------------------------------------------------------- ring PacketQueue

TEST(PacketQueueRing, WrapsAroundWithoutLosingFifoOrder) {
  PacketQueue q(3);
  auto pkt = [](std::uint64_t id) {
    Packet p;
    p.id = id;
    return p;
  };
  EXPECT_TRUE(q.push(pkt(1)));
  EXPECT_TRUE(q.push(pkt(2)));
  EXPECT_TRUE(q.push(pkt(3)));
  EXPECT_FALSE(q.push(pkt(4)));  // full: dropped
  EXPECT_EQ(q.front().id, 1u);
  q.pop();
  EXPECT_TRUE(q.push(pkt(5)));  // head has wrapped past the buffer start
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.front().id, 2u);
  q.pop();
  EXPECT_EQ(q.front().id, 3u);
  q.pop();
  EXPECT_EQ(q.front().id, 5u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

// ------------------------------------------------------- zero allocations

TEST(HotPathAllocations, BatchedStepIsAllocationFreeInSteadyState) {
  const Schedule s = duty_schedule();
  DutyCycledScheduleMac mac(s);
  ConvergecastTraffic traffic(kN, 0, 0.02);  // single sink: one routing column
  Simulator sim(test_graph(), mac, traffic, {.seed = 200});
  sim.run(3000);  // steady state: routing column built, queues saturated
  // Latency samples are the one unbounded buffer; pre-size it for the
  // measured window (the paper's experiments do the same via reserve()).
  sim.reserve_latency(sim.stats().latency.count() + 8192);
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  sim.run(2000);
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "batched Simulator::step() allocated on the hot path";
  EXPECT_GT(sim.stats().delivered, 0u);       // the window did real work
  EXPECT_GT(sim.stats().transmissions, 0u);   // including phase-2 resolution
}

TEST(HotPathAllocations, ScalarPipelineAllocatesSoTheHookIsLive) {
  // Differential control: the legacy pipeline materializes an interferer
  // bitset per transmission, so the same window must show allocations —
  // proving the counting hook actually observes the simulator.
  const Schedule s = duty_schedule();
  DutyCycledScheduleMac mac(s);
  ConvergecastTraffic traffic(kN, 0, 0.02);
  SimConfig config{.seed = 200};
  config.force_scalar_pipeline = true;
  Simulator sim(test_graph(), mac, traffic, config);
  sim.run(3000);
  sim.reserve_latency(sim.stats().latency.count() + 8192);
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  sim.run(2000);
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_GT(after - before, 0u);
}

}  // namespace
}  // namespace ttdc::sim
