// Mergeable accumulators: SimStats / LatencyStats shard merging must be
// exact — the campaign runner's determinism contract (runner/runner.hpp)
// rests on merge-of-shards equaling the single stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/stats.hpp"
#include "util/rng.hpp"

namespace ttdc::sim {
namespace {

TEST(LatencyStatsMerge, ShardsEqualSingleStreamExactly) {
  util::Xoshiro256 rng(2026);
  std::vector<std::uint64_t> samples(5000);
  for (auto& s : samples) s = rng.below(100000);

  LatencyStats single;
  for (auto s : samples) single.record(s);

  // Shard boundaries chosen unevenly on purpose (including an empty shard).
  const std::size_t cuts[] = {0, 1, 1, 1700, 4999, 5000};
  LatencyStats merged;
  for (std::size_t c = 0; c + 1 < std::size(cuts); ++c) {
    LatencyStats shard;
    for (std::size_t i = cuts[c]; i < cuts[c + 1]; ++i) shard.record(samples[i]);
    merged.merge(shard);
  }

  EXPECT_EQ(merged.count(), single.count());
  EXPECT_EQ(merged.max(), single.max());
  // Mean: shards concatenated in stream order reproduce the identical
  // left-to-right double sum, so equality is exact, not approximate.
  EXPECT_EQ(merged.mean(), single.mean());
  // Percentiles: nth_element selects from the value multiset, which
  // concatenation preserves exactly.
  for (double pct : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(merged.percentile(pct), single.percentile(pct)) << "pct=" << pct;
  }
}

TEST(LatencyStatsMerge, MergeIntoEmptyAndFromEmpty) {
  LatencyStats a, b, empty;
  a.record(7);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.max(), 7u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.percentile(50), 7u);
}

SimStats make_stats(std::uint64_t base, std::size_t nodes) {
  SimStats s;
  s.slots_run = base;
  s.generated = base + 1;
  s.delivered = base + 2;
  s.hop_successes = base + 3;
  s.transmissions = base + 4;
  s.collisions = base + 5;
  s.receiver_asleep = base + 6;
  s.channel_losses = base + 7;
  s.sync_losses = base + 8;
  s.queue_drops = base + 9;
  s.deaths = base % 3;
  s.state_slots.assign(nodes, {base, base + 1, base + 2, base + 3});
  s.delivered_by_origin.assign(nodes, base);
  s.wake_transitions.assign(nodes, base + 1);
  for (std::uint64_t i = 0; i < 10; ++i) s.latency.record(base * 10 + i);
  return s;
}

TEST(SimStatsMerge, CountersAddAndVectorsAddElementwise) {
  SimStats a = make_stats(100, 4);
  const SimStats b = make_stats(7, 4);
  a.merge(b);
  EXPECT_EQ(a.slots_run, 107u);
  EXPECT_EQ(a.generated, 109u);
  EXPECT_EQ(a.delivered, 111u);
  EXPECT_EQ(a.hop_successes, 113u);
  EXPECT_EQ(a.transmissions, 115u);
  EXPECT_EQ(a.collisions, 117u);
  EXPECT_EQ(a.receiver_asleep, 119u);
  EXPECT_EQ(a.channel_losses, 121u);
  EXPECT_EQ(a.sync_losses, 123u);
  EXPECT_EQ(a.queue_drops, 125u);
  EXPECT_EQ(a.deaths, 2u);  // 100 % 3 + 7 % 3
  EXPECT_EQ(a.latency.count(), 20u);
  ASSERT_EQ(a.state_slots.size(), 4u);
  for (const auto& per_node : a.state_slots) {
    EXPECT_EQ(per_node[0], 107u);
    EXPECT_EQ(per_node[3], 113u);
  }
  for (auto d : a.delivered_by_origin) EXPECT_EQ(d, 107u);
  for (auto w : a.wake_transitions) EXPECT_EQ(w, 109u);
}

TEST(SimStatsMerge, ShorterVectorsZeroExtend) {
  SimStats small = make_stats(1, 2);
  const SimStats big = make_stats(1, 5);
  small.merge(big);
  ASSERT_EQ(small.state_slots.size(), 5u);
  EXPECT_EQ(small.state_slots[0][0], 2u);  // overlapping nodes add
  EXPECT_EQ(small.state_slots[4][0], 1u);  // extended nodes take big's value
  ASSERT_EQ(small.delivered_by_origin.size(), 5u);
  EXPECT_EQ(small.delivered_by_origin[1], 2u);
  EXPECT_EQ(small.delivered_by_origin[4], 1u);
}

TEST(SimStatsMerge, FirstDeathSlotTakesMin) {
  SimStats alive;  // first_death_slot = UINT64_MAX
  SimStats died;
  died.first_death_slot = 42;
  died.deaths = 1;
  alive.merge(died);
  EXPECT_EQ(alive.first_death_slot, 42u);
  EXPECT_EQ(alive.deaths, 1u);
  SimStats earlier;
  earlier.first_death_slot = 17;
  alive.merge(earlier);
  EXPECT_EQ(alive.first_death_slot, 17u);
  // Merging an all-alive shard must not regress the minimum.
  alive.merge(SimStats{});
  EXPECT_EQ(alive.first_death_slot, 17u);
}

TEST(SimStatsMerge, FaultCountersAdd) {
  SimStats a, b;
  a.fault_crashes = 3;
  a.fault_recoveries = 2;
  a.burst_losses = 10;
  b.fault_crashes = 4;
  b.fault_battery_spikes = 5;
  b.fault_jam_bursts = 6;
  b.drift_losses = 7;
  a.merge(b);
  EXPECT_EQ(a.fault_crashes, 7u);
  EXPECT_EQ(a.fault_recoveries, 2u);
  EXPECT_EQ(a.fault_battery_spikes, 5u);
  EXPECT_EQ(a.fault_jam_bursts, 6u);
  EXPECT_EQ(a.burst_losses, 10u);
  EXPECT_EQ(a.drift_losses, 7u);
}

// The quarantine contract: one partial shard poisons the whole aggregate's
// partial flag, no matter where in the fold it lands — a degraded campaign
// report can never launder itself clean through merge order.
TEST(SimStatsMerge, PartialFlagIsStickyThroughAnyMergeOrder) {
  for (std::size_t where = 0; where < 4; ++where) {
    SimStats agg;
    for (std::size_t i = 0; i < 4; ++i) {
      SimStats shard = make_stats(i + 1, 2);
      shard.partial = (i == where);
      agg.merge(shard);
    }
    EXPECT_TRUE(agg.partial) << "partial shard at position " << where;
  }
  // And merging clean shards never sets it.
  SimStats clean;
  clean.merge(make_stats(5, 2));
  EXPECT_FALSE(clean.partial);
  // A partial accumulator stays partial when clean shards fold in after.
  SimStats sticky;
  sticky.partial = true;
  sticky.merge(make_stats(9, 2));
  EXPECT_TRUE(sticky.partial);
}

TEST(SimStatsMerge, PartialFlagSurfacesInSummary) {
  SimStats s = make_stats(1, 2);
  EXPECT_EQ(s.summary(EnergyModel{}).find("PARTIAL"), std::string::npos);
  s.partial = true;
  EXPECT_NE(s.summary(EnergyModel{}).find("PARTIAL"), std::string::npos);
}

TEST(SimStatsMerge, MergeIsAssociativeOnCounters) {
  const SimStats a = make_stats(3, 2), b = make_stats(11, 2), c = make_stats(29, 2);
  SimStats left = a;
  left.merge(b);
  left.merge(c);
  SimStats bc = b;
  bc.merge(c);
  SimStats right = a;
  right.merge(bc);
  EXPECT_EQ(left.generated, right.generated);
  EXPECT_EQ(left.delivered, right.delivered);
  EXPECT_EQ(left.latency.count(), right.latency.count());
  EXPECT_EQ(left.latency.max(), right.latency.max());
  EXPECT_EQ(left.first_death_slot, right.first_death_slot);
  EXPECT_EQ(left.state_slots, right.state_slots);
}

}  // namespace
}  // namespace ttdc::sim
