// The simulator's event trace hook: events are complete and consistent
// with the aggregate stats (a trace consumer can rebuild the counters).
#include <gtest/gtest.h>

#include <map>

#include "combinatorics/constructions.hpp"
#include "core/builders.hpp"
#include "net/topology.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"

namespace ttdc::sim {
namespace {

using core::DynamicBitset;
using core::Schedule;

TEST(Trace, EventsReconstructAggregateCounters) {
  const Schedule s = core::non_sleeping_from_family(comb::tdma_family(4));
  DutyCycledScheduleMac mac(s);
  BernoulliTraffic traffic(4, 0.08);
  std::map<TraceEvent::Kind, std::uint64_t> counts;
  SimConfig config;
  config.seed = 11;
  config.packet_error_rate = 0.1;
  config.trace = [&](const TraceEvent& e) { ++counts[e.kind]; };
  Simulator sim(net::ring_graph(4), mac, traffic, config);
  sim.run(4000);

  const auto& st = sim.stats();
  EXPECT_EQ(counts[TraceEvent::Kind::kGenerated], st.generated);
  EXPECT_EQ(counts[TraceEvent::Kind::kTransmit], st.transmissions);
  EXPECT_EQ(counts[TraceEvent::Kind::kFinalDelivered], st.delivered);
  EXPECT_EQ(counts[TraceEvent::Kind::kCollision], st.collisions);
  EXPECT_EQ(counts[TraceEvent::Kind::kChannelLoss], st.channel_losses);
  EXPECT_EQ(counts[TraceEvent::Kind::kQueueDrop], st.queue_drops);
  EXPECT_EQ(counts[TraceEvent::Kind::kHopDelivered] +
                counts[TraceEvent::Kind::kFinalDelivered],
            st.hop_successes);
  EXPECT_GT(st.delivered, 0u);
}

TEST(Trace, PacketLifecycleIsOrdered) {
  // Follow a single packet on a 2-node link: generated -> transmit ->
  // final delivery, with matching packet id and increasing slots.
  std::vector<DynamicBitset> t = {DynamicBitset(2, {0}), DynamicBitset(2)};
  std::vector<DynamicBitset> r = {DynamicBitset(2, {1}), DynamicBitset(2, {0, 1})};
  const Schedule s(2, std::move(t), std::move(r));
  DutyCycledScheduleMac mac(s);
  Simulator* probe = nullptr;
  SaturatedFlows traffic({{0, 1}}, [&probe](std::size_t v) { return probe->queue_size(v); });
  std::vector<TraceEvent> events;
  SimConfig config;
  config.seed = 2;
  config.trace = [&](const TraceEvent& e) { events.push_back(e); };
  Simulator sim(net::path_graph(2), mac, traffic, config);
  probe = &sim;
  sim.run(2);  // one frame: generation + the single transmit slot

  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events[0].kind, TraceEvent::Kind::kGenerated);
  EXPECT_EQ(events[1].kind, TraceEvent::Kind::kTransmit);
  EXPECT_EQ(events[2].kind, TraceEvent::Kind::kFinalDelivered);
  EXPECT_EQ(events[0].packet_id, events[2].packet_id);
  EXPECT_EQ(events[2].node, 1u);
  EXPECT_EQ(events[2].peer, 0u);
  EXPECT_LE(events[0].slot, events[2].slot);
}

TEST(Trace, NoHookMeansNoOverheadPathStillWorks) {
  const Schedule s = core::non_sleeping_from_family(comb::tdma_family(3));
  DutyCycledScheduleMac mac(s);
  BernoulliTraffic traffic(3, 0.05);
  Simulator sim(net::path_graph(3), mac, traffic, {.seed = 4});
  sim.run(600);
  EXPECT_GT(sim.stats().delivered, 0u);
}

}  // namespace
}  // namespace ttdc::sim
