// ttdc::fault — deterministic fault injection (sim/fault.hpp, DESIGN.md §12).
// Covers: plan derivation determinism and per-class stream separation, the
// Gilbert-Elliott channel math, crash/recover/jam/battery-spike semantics
// against hand-written event lists, the armed-but-empty bit-identity
// contract, scalar/batched golden equality with a generative plan armed,
// and fault instants in the flight record.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "combinatorics/constructions.hpp"
#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "net/topology.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/fault.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"

namespace ttdc::sim {
namespace {

using core::Schedule;
using obs::FlightEvent;
using obs::FlightRecorder;

constexpr std::size_t kN = 36;
constexpr std::size_t kD = 4;
constexpr std::uint64_t kSlots = 10000;

net::Graph test_graph(std::uint64_t seed = 21) {
  util::Xoshiro256 rng(seed);
  return net::random_bounded_degree_graph(kN, kD, 2 * kN, rng);
}

Schedule duty_schedule() {
  return core::construct_duty_cycled(
      core::non_sleeping_from_family(comb::build_plan(comb::best_plan(kN, kD), kN)), kD, 4,
      kN / 3);
}

FaultPlanConfig stormy_config(std::uint64_t horizon) {
  FaultPlanConfig cfg;
  cfg.horizon_slots = horizon;
  cfg.crash_rate = 5e-5;
  cfg.mean_downtime_slots = 150.0;
  cfg.link_loss.p_good_to_bad = 0.01;
  cfg.link_loss.p_bad_to_good = 0.1;
  cfg.max_drift_per_slot = 1e-4;
  cfg.drift_guard = 0.25;
  cfg.resync_interval = 2000;
  cfg.battery_spike_rate = 2e-5;
  cfg.battery_spike_mj = 5.0;
  cfg.num_jammers = 2;
  cfg.jam_duty = 0.05;
  cfg.jam_burst_slots = 100;
  return cfg;
}

/// Field-by-field SimStats equality, including the fault counters — used by
/// both the bit-identity and pipeline-equivalence tests below.
void expect_identical_stats(const SimStats& a, const SimStats& b) {
  EXPECT_EQ(a.slots_run, b.slots_run);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.hop_successes, b.hop_successes);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.receiver_asleep, b.receiver_asleep);
  EXPECT_EQ(a.channel_losses, b.channel_losses);
  EXPECT_EQ(a.sync_losses, b.sync_losses);
  EXPECT_EQ(a.queue_drops, b.queue_drops);
  EXPECT_EQ(a.fault_crashes, b.fault_crashes);
  EXPECT_EQ(a.fault_recoveries, b.fault_recoveries);
  EXPECT_EQ(a.fault_battery_spikes, b.fault_battery_spikes);
  EXPECT_EQ(a.fault_jam_bursts, b.fault_jam_bursts);
  EXPECT_EQ(a.burst_losses, b.burst_losses);
  EXPECT_EQ(a.drift_losses, b.drift_losses);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  for (double pct : {50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(a.latency.percentile(pct), b.latency.percentile(pct)) << "p" << pct;
  }
  EXPECT_EQ(a.state_slots, b.state_slots);
  EXPECT_EQ(a.delivered_by_origin, b.delivered_by_origin);
  EXPECT_EQ(a.wake_transitions, b.wake_transitions);
  EXPECT_EQ(a.first_death_slot, b.first_death_slot);
  EXPECT_EQ(a.deaths, b.deaths);
}

// ---------------------------------------------------------------------------
// Plan derivation

TEST(FaultPlan, SameTripleYieldsIdenticalPlan) {
  const FaultPlanConfig cfg = stormy_config(50000);
  const FaultPlan a(cfg, kN, 0xabcdef);
  const FaultPlan b(cfg, kN, 0xabcdef);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_TRUE(a.events()[i] == b.events()[i]) << "event " << i;
  }
  EXPECT_EQ(a.link_stream_seed(), b.link_stream_seed());
  EXPECT_EQ(a.drift_rates(), b.drift_rates());
  // A different seed must not reproduce the same world.
  const FaultPlan c(cfg, kN, 0xabcdf0);
  EXPECT_TRUE(a.events() != c.events());
}

TEST(FaultPlan, FaultClassesDrawFromSeparateStreams) {
  // Adding battery spikes and jammers to a config must not perturb the
  // crash/recover schedule — each class has its own SplitMix64 child.
  FaultPlanConfig crashes_only;
  crashes_only.horizon_slots = 50000;
  crashes_only.crash_rate = 5e-5;
  crashes_only.mean_downtime_slots = 150.0;

  FaultPlanConfig everything = crashes_only;
  everything.battery_spike_rate = 2e-5;
  everything.battery_spike_mj = 5.0;
  everything.num_jammers = 2;
  everything.jam_duty = 0.05;

  const FaultPlan lean(crashes_only, kN, 7);
  const FaultPlan full(everything, kN, 7);

  auto crash_events = [](const FaultPlan& p) {
    std::vector<FaultEvent> out;
    for (const auto& e : p.events()) {
      if (e.kind == FaultEvent::Kind::kCrash || e.kind == FaultEvent::Kind::kRecover) {
        out.push_back(e);
      }
    }
    return out;
  };
  EXPECT_TRUE(crash_events(lean) == crash_events(full));
  EXPECT_GT(full.count(FaultEvent::Kind::kBatterySpike), 0u);
  EXPECT_GT(full.count(FaultEvent::Kind::kJamStart), 0u);
}

TEST(FaultPlan, EventsSortedAndCountsConsistent) {
  const FaultPlan plan(stormy_config(50000), kN, 99);
  ASSERT_FALSE(plan.events().empty());
  for (std::size_t i = 1; i < plan.events().size(); ++i) {
    EXPECT_LE(plan.events()[i - 1].slot, plan.events()[i].slot);
  }
  std::size_t total = 0;
  for (int k = 0; k <= static_cast<int>(FaultEvent::Kind::kJamEnd); ++k) {
    total += plan.count(static_cast<FaultEvent::Kind>(k));
  }
  EXPECT_EQ(total, plan.events().size());
  // Every recovery is preceded by a crash for that node, so counts can
  // differ by at most one outstanding downtime per node.
  EXPECT_GE(plan.count(FaultEvent::Kind::kCrash), plan.count(FaultEvent::Kind::kRecover));
  EXPECT_FALSE(plan.summary().empty());
}

TEST(GilbertElliott, StationaryBadAndArming) {
  GilbertElliott ge;
  EXPECT_FALSE(ge.armed());  // defaults: never leaves Good
  EXPECT_EQ(ge.stationary_bad(), 0.0);
  ge.p_good_to_bad = 0.02;
  ge.p_bad_to_good = 0.08;
  EXPECT_TRUE(ge.armed());
  EXPECT_DOUBLE_EQ(ge.stationary_bad(), 0.2);
  ge.loss_bad = 0.0;
  ge.loss_good = 0.0;
  EXPECT_FALSE(ge.armed());  // transitions without loss are harmless
}

// ---------------------------------------------------------------------------
// World semantics against explicit event lists

TEST(FaultWorld, CrashSuppressesNodeAndRecoveryRestoresIt) {
  const Schedule s = duty_schedule();
  DutyCycledScheduleMac mac(s);
  BernoulliTraffic traffic(kN, 0.01);
  std::vector<FaultEvent> events;
  events.push_back({.slot = 100, .node = 3, .magnitude_mj = 0.0,
                    .kind = FaultEvent::Kind::kCrash});
  events.push_back({.slot = 400, .node = 3, .magnitude_mj = 0.0,
                    .kind = FaultEvent::Kind::kRecover});
  const FaultPlan plan(events, kN);
  SimConfig cfg;
  cfg.seed = 41;
  cfg.fault_plan = &plan;
  Simulator sim(test_graph(), mac, traffic, cfg);

  sim.run(150);  // past slot 100: the crash has been applied
  EXPECT_TRUE(sim.is_down(3));
  EXPECT_EQ(sim.stats().fault_crashes, 1u);
  EXPECT_EQ(sim.stats().fault_recoveries, 0u);
  sim.run(300);  // past slot 400: recovered
  EXPECT_FALSE(sim.is_down(3));
  EXPECT_EQ(sim.stats().fault_recoveries, 1u);
}

TEST(FaultWorld, CrashedSaturatedSourceStopsDelivering) {
  // Single saturated flow 0 -> 1; crash the source for the whole run and
  // nothing can be delivered, while the identical run without the crash
  // delivers plenty.
  auto run_with = [&](const FaultPlan* plan) {
    const Schedule s = duty_schedule();
    DutyCycledScheduleMac mac(s);
    Simulator* probe = nullptr;
    SaturatedFlows traffic({{0, 1}},
                           [&probe](std::size_t v) { return probe->queue_size(v); });
    SimConfig cfg;
    cfg.seed = 42;
    cfg.fault_plan = plan;
    Simulator sim(test_graph(), mac, traffic, cfg);
    probe = &sim;
    sim.run(kSlots);
    return sim.stats().delivered;
  };
  std::vector<FaultEvent> events;
  events.push_back({.slot = 0, .node = 0, .magnitude_mj = 0.0,
                    .kind = FaultEvent::Kind::kCrash});
  const FaultPlan down_forever(events, kN);
  EXPECT_EQ(run_with(&down_forever), 0u);
  EXPECT_GT(run_with(nullptr), 0u);
}

TEST(FaultWorld, JammerDegradesDeliveryAndCounts) {
  auto run_with = [&](const FaultPlan* plan) {
    const Schedule s = duty_schedule();
    DutyCycledScheduleMac mac(s);
    BernoulliTraffic traffic(kN, 0.02);
    SimConfig cfg;
    cfg.seed = 43;
    cfg.fault_plan = plan;
    Simulator sim(test_graph(), mac, traffic, cfg);
    sim.run(kSlots);
    return sim.stats();
  };
  // One jammer blanketing the whole run.
  std::vector<FaultEvent> events;
  events.push_back({.slot = 0, .node = 5, .magnitude_mj = 0.0,
                    .kind = FaultEvent::Kind::kJamStart});
  events.push_back({.slot = kSlots - 1, .node = 5, .magnitude_mj = 0.0,
                    .kind = FaultEvent::Kind::kJamEnd});
  const FaultPlan jammed(events, kN);
  const SimStats with = run_with(&jammed);
  const SimStats without = run_with(nullptr);
  EXPECT_EQ(with.fault_jam_bursts, 1u);
  EXPECT_GT(with.collisions, without.collisions);
  EXPECT_LT(with.delivered, without.delivered);
}

TEST(FaultWorld, BatterySpikeDrainsAndCanKill) {
  const Schedule s = duty_schedule();
  DutyCycledScheduleMac mac(s);
  BernoulliTraffic traffic(kN, 0.0);  // no traffic: isolate the energy model
  std::vector<FaultEvent> events;
  events.push_back({.slot = 50, .node = 2, .magnitude_mj = 40.0,
                    .kind = FaultEvent::Kind::kBatterySpike});
  events.push_back({.slot = 60, .node = 7, .magnitude_mj = 1e9,
                    .kind = FaultEvent::Kind::kBatterySpike});
  const FaultPlan plan(events, kN);
  SimConfig cfg;
  cfg.seed = 44;
  cfg.battery_mj = 1e6;
  cfg.fault_plan = &plan;
  Simulator sim(test_graph(), mac, traffic, cfg);
  sim.run(100);
  EXPECT_EQ(sim.stats().fault_battery_spikes, 2u);
  // Node 2 lost the spike on top of normal drain; a peer with the same
  // radio schedule class can't have drained 40 mJ more than node 2 kept.
  EXPECT_LT(sim.remaining_battery_mj(2), 1e6 - 40.0);
  EXPECT_FALSE(sim.is_alive(7));  // overdrained clean through its budget
  EXPECT_TRUE(sim.is_alive(2));
  EXPECT_EQ(sim.stats().deaths, 1u);
}

TEST(FaultWorld, BurstLossOnAlwaysBadChannelStopsDelivery) {
  // Degenerate Gilbert-Elliott: Good -> Bad immediately and never back.
  FaultPlanConfig cfg;
  cfg.link_loss.p_good_to_bad = 1.0;
  cfg.link_loss.p_bad_to_good = 0.0;
  cfg.link_loss.loss_bad = 1.0;
  const FaultPlan plan({}, kN, cfg, 5);
  const Schedule s = duty_schedule();
  DutyCycledScheduleMac mac(s);
  BernoulliTraffic traffic(kN, 0.02);
  SimConfig sim_cfg;
  sim_cfg.seed = 45;
  sim_cfg.fault_plan = &plan;
  Simulator sim(test_graph(), mac, traffic, sim_cfg);
  sim.run(kSlots);
  EXPECT_GT(sim.stats().transmissions, 0u);
  EXPECT_GT(sim.stats().burst_losses, 0u);
  EXPECT_EQ(sim.stats().delivered, 0u);
  EXPECT_EQ(sim.stats().hop_successes, 0u);
}

TEST(FaultWorld, UnboundedDriftEventuallyLosesTransmissions) {
  FaultPlanConfig cfg;
  cfg.max_drift_per_slot = 1e-3;
  cfg.drift_guard = 0.25;
  cfg.resync_interval = 0;  // never resync: misalignment grows linearly
  const FaultPlan plan({}, kN, cfg, 6);
  ASSERT_TRUE(plan.has_drift());
  const Schedule s = duty_schedule();
  DutyCycledScheduleMac mac(s);
  BernoulliTraffic traffic(kN, 0.02);
  SimConfig sim_cfg;
  sim_cfg.seed = 46;
  sim_cfg.fault_plan = &plan;
  Simulator sim(test_graph(), mac, traffic, sim_cfg);
  sim.run(kSlots);
  EXPECT_GT(sim.stats().drift_losses, 0u);
}

// ---------------------------------------------------------------------------
// Determinism contracts

TEST(FaultWorld, ArmedEmptyPlanIsBitIdenticalToUnarmed) {
  // The cost contract in SimConfig: fault randomness never touches the
  // simulator's own RNG, so an armed plan with nothing in it reproduces the
  // unarmed run exactly.
  const FaultPlan empty(std::vector<FaultEvent>{}, kN);
  auto run_with = [&](const FaultPlan* plan, bool scalar) {
    const Schedule s = duty_schedule();
    DutyCycledScheduleMac mac(s);
    BernoulliTraffic traffic(kN, 0.02);
    SimConfig cfg;
    cfg.seed = 47;
    cfg.packet_error_rate = 0.01;  // exercise the channel RNG stream too
    cfg.force_scalar_pipeline = scalar;
    cfg.fault_plan = plan;
    Simulator sim(test_graph(), mac, traffic, cfg);
    sim.run(kSlots);
    return sim.stats();
  };
  for (bool scalar : {false, true}) {
    const SimStats armed = run_with(&empty, scalar);
    const SimStats unarmed = run_with(nullptr, scalar);
    expect_identical_stats(armed, unarmed);
  }
}

TEST(FaultWorld, PipelinesStayGoldenWithStormArmed) {
  // The full storm (crashes, bursty loss, drift, spikes, jammers) must
  // preserve scalar/batched golden equality — fault handling sits on both
  // pipelines' shared phases.
  const FaultPlan plan(stormy_config(kSlots), kN, 0xdead);
  ASSERT_FALSE(plan.events().empty());
  auto run_pipeline = [&](bool scalar) {
    const Schedule s = duty_schedule();
    DutyCycledScheduleMac mac(s);
    BernoulliTraffic traffic(kN, 0.02);
    SimConfig cfg;
    cfg.seed = 48;
    cfg.battery_mj = 1e5;
    cfg.force_scalar_pipeline = scalar;
    cfg.fault_plan = &plan;
    Simulator sim(test_graph(), mac, traffic, cfg);
    sim.run(kSlots);
    return sim.stats();
  };
  const SimStats scalar = run_pipeline(true);
  const SimStats batched = run_pipeline(false);
  expect_identical_stats(scalar, batched);
  // The storm must actually have done something, or this test is vacuous.
  EXPECT_GT(scalar.fault_crashes + scalar.burst_losses + scalar.fault_jam_bursts, 0u);
}

TEST(FaultWorld, SamePlanSameSeedReproducesStats) {
  const FaultPlan plan(stormy_config(kSlots), kN, 0xfeed);
  auto run_once = [&] {
    const Schedule s = duty_schedule();
    DutyCycledScheduleMac mac(s);
    BernoulliTraffic traffic(kN, 0.02);
    SimConfig cfg;
    cfg.seed = 49;
    cfg.fault_plan = &plan;
    Simulator sim(test_graph(), mac, traffic, cfg);
    sim.run(kSlots);
    return sim.stats();
  };
  expect_identical_stats(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// Observability

TEST(FaultWorld, FaultInstantsLandInFlightRecord) {
  std::vector<FaultEvent> events;
  events.push_back({.slot = 10, .node = 4, .magnitude_mj = 0.0,
                    .kind = FaultEvent::Kind::kCrash});
  events.push_back({.slot = 30, .node = 4, .magnitude_mj = 0.0,
                    .kind = FaultEvent::Kind::kRecover});
  events.push_back({.slot = 20, .node = 8, .magnitude_mj = 0.0,
                    .kind = FaultEvent::Kind::kJamStart});
  const FaultPlan plan(events, kN);
  const Schedule s = duty_schedule();
  DutyCycledScheduleMac mac(s);
  BernoulliTraffic traffic(kN, 0.01);
  FlightRecorder recorder(4096);
  SimConfig cfg;
  cfg.seed = 50;
  cfg.fault_plan = &plan;
  cfg.recorder = &recorder;
  Simulator sim(test_graph(), mac, traffic, cfg);
  sim.run(100);

  bool saw_crash = false, saw_recover = false, saw_jam = false;
  for (const auto& e : recorder.events()) {
    switch (e.kind) {
      case FlightEvent::Kind::kFaultCrash:
        saw_crash = true;
        EXPECT_EQ(e.slot, 10u);
        EXPECT_EQ(e.node, 4u);
        EXPECT_EQ(e.packet_id, FlightEvent::kNoPacket);
        break;
      case FlightEvent::Kind::kFaultRecover:
        saw_recover = true;
        EXPECT_EQ(e.slot, 30u);
        EXPECT_EQ(e.aux, 20u);  // downtime in slots
        EXPECT_EQ(e.packet_id, FlightEvent::kNoPacket);
        break;
      case FlightEvent::Kind::kFaultJamStart:
        saw_jam = true;
        EXPECT_EQ(e.node, 8u);
        EXPECT_EQ(e.packet_id, FlightEvent::kNoPacket);
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_recover);
  EXPECT_TRUE(saw_jam);
}

TEST(FaultWorld, KindNamesAreStable) {
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kCrash), "crash");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kRecover), "recover");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kBatterySpike), "battery_spike");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kJamStart), "jam_start");
  EXPECT_STREQ(fault_kind_name(FaultEvent::Kind::kJamEnd), "jam_end");
}

}  // namespace
}  // namespace ttdc::sim
