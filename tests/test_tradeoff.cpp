// The (αT, αR) trade-off planner: closed forms vs the real construction,
// Pareto front sanity, and requirement-driven selection.
#include "core/tradeoff.hpp"

#include <gtest/gtest.h>

#include "combinatorics/constructions.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "core/throughput.hpp"

namespace ttdc::core {
namespace {

Schedule base25() {
  return non_sleeping_from_family(comb::polynomial_family(5, 2, 25));
}

TEST(Tradeoff, MatchesActualConstruction) {
  const Schedule base = base25();
  for (const auto& [at, ar] : std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 5}, {5, 5}, {5, 10}, {3, 8}, {1, 2}}) {
    const TradeoffPoint p = evaluate_tradeoff(base, 2, at, ar);
    const Schedule built = construct_duty_cycled(base, 2, at, ar);
    EXPECT_EQ(p.frame_length, built.frame_length()) << p.to_string();
    EXPECT_NEAR(p.duty_cycle, built.duty_cycle(), 1e-12) << p.to_string();
    // Theorem 8 guarantee vs reality.
    const double achieved_ratio =
        static_cast<double>(average_throughput(built, 2)) / p.avg_throughput_bound;
    EXPECT_GE(achieved_ratio, p.ratio_lower_bound - 1e-9) << p.to_string();
  }
}

TEST(Tradeoff, RejectsInvalidParameters) {
  const Schedule base = base25();
  EXPECT_THROW(evaluate_tradeoff(base, 2, 0, 5), std::invalid_argument);
  EXPECT_THROW(evaluate_tradeoff(base, 2, 20, 6), std::invalid_argument);  // sum > n
  util::Xoshiro256 rng(1);
  const Schedule partial = random_alpha_schedule(10, 4, 2, 2, false, rng);
  EXPECT_THROW(evaluate_tradeoff(partial, 2, 2, 2), std::invalid_argument);
}

TEST(Tradeoff, GridCoversAndRespectsConstraint) {
  const Schedule base = base25();
  const auto points = enumerate_tradeoffs(base, 2, 6, 10);
  EXPECT_EQ(points.size(), 6u * 10u);  // all pairs fit (6 + 10 <= 25)
  for (const auto& p : points) {
    EXPECT_GE(p.alpha_t, 1u);
    EXPECT_LE(p.alpha_t, 6u);
    EXPECT_LE(p.alpha_r, 10u);
    EXPECT_GT(p.duty_cycle, 0.0);
    EXPECT_LE(p.duty_cycle, 1.0 + 1e-12);
  }
}

TEST(Tradeoff, ParetoFrontIsNonDominatedAndSorted) {
  const Schedule base = base25();
  const auto points = enumerate_tradeoffs(base, 2, 8, 12);
  const auto front = pareto_front(points);
  ASSERT_FALSE(front.empty());
  EXPECT_LE(front.size(), points.size());
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GE(front[i].duty_cycle, front[i - 1].duty_cycle);
  }
  // No front point dominated by any grid point.
  for (const auto& f : front) {
    for (const auto& p : points) {
      const bool dominates = p.duty_cycle <= f.duty_cycle &&
                             p.avg_throughput_bound >= f.avg_throughput_bound &&
                             p.latency_bound <= f.latency_bound &&
                             (p.duty_cycle < f.duty_cycle ||
                              p.avg_throughput_bound > f.avg_throughput_bound ||
                              p.latency_bound < f.latency_bound);
      EXPECT_FALSE(dominates) << f.to_string() << " dominated by " << p.to_string();
    }
  }
}

TEST(Tradeoff, PickCheapestHonorsRequirements) {
  const Schedule base = base25();
  const auto front = pareto_front(enumerate_tradeoffs(base, 2, 8, 12));
  TradeoffPoint chosen;
  ASSERT_TRUE(pick_cheapest(front, /*max_latency_slots=*/200,
                            /*min_avg_throughput=*/0.01, chosen));
  EXPECT_LE(chosen.latency_bound, 200u);
  EXPECT_GE(chosen.avg_throughput_bound, 0.01);
  // Nothing cheaper on the front satisfies both requirements.
  for (const auto& p : front) {
    if (p.latency_bound <= 200 && p.avg_throughput_bound >= 0.01) {
      EXPECT_GE(p.duty_cycle, chosen.duty_cycle - 1e-15);
    }
  }
  // Impossible requirements are reported as such.
  TradeoffPoint none;
  EXPECT_FALSE(pick_cheapest(front, 1, 0.99, none));
}

TEST(Tradeoff, DutyCycleFallsWithTighterCaps) {
  const Schedule base = base25();
  const double duty_loose = evaluate_tradeoff(base, 2, 5, 15).duty_cycle;
  const double duty_tight = evaluate_tradeoff(base, 2, 2, 4).duty_cycle;
  EXPECT_LT(duty_tight, duty_loose);
}

}  // namespace
}  // namespace ttdc::core
