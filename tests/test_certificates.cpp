// Transparency certificates and exact max-degree search, plus the S-MAC
// common-active-period baseline's basic behaviour.
#include <gtest/gtest.h>

#include "combinatorics/constructions.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "core/requirements.hpp"
#include "net/topology.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"

namespace ttdc {
namespace {

using core::Schedule;

TEST(Certificate, TdmaCertifiesMaximalDegree) {
  const Schedule s = core::non_sleeping_from_family(comb::tdma_family(8));
  EXPECT_EQ(core::requirement1_certificate_degree(s), 7u);
}

TEST(Certificate, PolynomialFamilyCertifiesDesignDegree) {
  // poly(q, k): w = q, λ <= k -> certificate (q-1)/k, the design degree.
  for (const auto& [q, k] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {5, 1}, {5, 2}, {7, 2}, {9, 2}}) {
    const Schedule s = core::non_sleeping_from_family(
        comb::polynomial_family(q, k, comb::polynomial_family_capacity(q, k)));
    EXPECT_EQ(core::requirement1_certificate_degree(s), (q - 1) / k) << "q=" << q;
  }
}

TEST(Certificate, NeverExceedsExactMaxDegree) {
  // The certificate is sufficient, not necessary: certified <= exact.
  util::Xoshiro256 rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 6 + static_cast<std::size_t>(rng.below(4));
    const Schedule s = core::random_non_sleeping_schedule(n, 10, 1 + rng.below(3), rng);
    const std::size_t certified = core::requirement1_certificate_degree(s);
    const std::size_t exact = core::max_transparent_degree_exact(s, n - 1);
    EXPECT_LE(certified, exact);
  }
}

TEST(Certificate, ZeroWhenSomeNodeNeverTransmits) {
  std::vector<core::DynamicBitset> t = {core::DynamicBitset(3, {0}),
                                        core::DynamicBitset(3, {1})};
  const Schedule s = Schedule::non_sleeping(3, std::move(t));  // node 2 never
  EXPECT_EQ(core::requirement1_certificate_degree(s), 0u);
}

TEST(MaxDegree, MatchesKnownDesignPoints) {
  // poly(3,1) full family: transparent exactly up to D = 2.
  const Schedule s = core::non_sleeping_from_family(comb::polynomial_family(3, 1, 9));
  EXPECT_EQ(core::max_transparent_degree_exact(s, 8), 2u);
  // TDMA n=6: up to 5.
  const Schedule tdma = core::non_sleeping_from_family(comb::tdma_family(6));
  EXPECT_EQ(core::max_transparent_degree_exact(tdma, 5), 5u);
}

TEST(MaxDegree, ZeroForBrokenSchedule) {
  // One node hogs every slot: nobody else ever gets a free slot w.r.t. it.
  std::vector<core::DynamicBitset> t = {core::DynamicBitset(3, {0, 1}),
                                        core::DynamicBitset(3, {0, 2})};
  const Schedule s = Schedule::non_sleeping(3, std::move(t));
  EXPECT_EQ(core::max_transparent_degree_exact(s, 2), 0u);
}

// --------------------------------------------------------------- S-MAC-like

TEST(SmacLike, AwakeFractionMatchesActiveWindow) {
  sim::CommonActivePeriodMac mac(16, 20, 5, 0.1);
  EXPECT_DOUBLE_EQ(mac.duty_cycle(), 0.25);
  sim::BernoulliTraffic traffic(16, 0.0005);
  util::Xoshiro256 rng(5);
  sim::Simulator sim(net::random_bounded_degree_graph(16, 3, 30, rng), mac, traffic,
                     {.seed = 5});
  sim.run(8000);
  EXPECT_NEAR(sim.stats().awake_fraction(), 0.25, 0.02);
  EXPECT_GT(sim.stats().delivered, 0u);
}

TEST(SmacLike, NeverTransmitsOutsideActiveWindow) {
  sim::CommonActivePeriodMac mac(4, 10, 3, 1.0);
  util::Xoshiro256 rng(1);
  for (std::uint64_t slot = 0; slot < 50; ++slot) {
    mac.begin_slot(slot, rng);
    const bool active = slot % 10 < 3;
    for (std::size_t v = 0; v < 4; ++v) {
      EXPECT_EQ(mac.can_receive(v), active);
      EXPECT_EQ(mac.wants_transmit(v, (v + 1) % 4), active);
      EXPECT_EQ(mac.idle_state(v) == sim::RadioState::kListen, active);
    }
  }
}

TEST(SmacLike, ContentionConcentratesCollisions) {
  // §1's warning: squeezing traffic into one active window makes collisions
  // likely. Same offered load, same duty cycle: S-MAC-like collides far
  // more than the TT duty-cycled schedule on the worst-case star.
  const std::size_t n = 25, d = 4;
  const Schedule base = core::non_sleeping_from_family(comb::polynomial_family(5, 1, n));
  const Schedule duty = core::construct_duty_cycled(base, d, 5, 5);

  net::Graph star(n);
  std::vector<std::pair<std::size_t, std::size_t>> flows;
  for (std::size_t leaf = 1; leaf <= d; ++leaf) {
    star.add_edge(0, leaf);
    flows.emplace_back(leaf, 0);
  }

  sim::DutyCycledScheduleMac tt(duty);
  sim::Simulator* p1 = nullptr;
  sim::SaturatedFlows f1(flows, [&p1](std::size_t v) { return p1->queue_size(v); });
  sim::Simulator s1(star, tt, f1, {.seed = 9});
  p1 = &s1;
  s1.run(10000);

  // Match the TT schedule's duty cycle with the common-active-window MAC.
  const std::size_t frame = 20;
  const auto active = static_cast<std::size_t>(duty.duty_cycle() * frame + 0.5);
  sim::CommonActivePeriodMac smac(n, frame, std::max<std::size_t>(active, 1), 0.5);
  sim::Simulator* p2 = nullptr;
  sim::SaturatedFlows f2(flows, [&p2](std::size_t v) { return p2->queue_size(v); });
  sim::Simulator s2(star, smac, f2, {.seed = 9});
  p2 = &s2;
  s2.run(10000);

  EXPECT_GT(s1.stats().delivered, 0u);
  EXPECT_GT(s2.stats().collisions, 2 * s1.stats().collisions);
  EXPECT_GT(s1.stats().delivered, s2.stats().delivered);
}

}  // namespace
}  // namespace ttdc
