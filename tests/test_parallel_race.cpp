// Race-regression tests for the OpenMP helpers and their main consumers.
//
// These run in every build, but their reason to exist is the -DTSAN=ON tree
// (CI job, scripts): they hammer parallel_for / parallel_sum / parallel_any
// and the parallel Requirement checkers with enough concurrent traffic that
// an unsynchronized access surfaces as a ThreadSanitizer report. Set
// OMP_NUM_THREADS=4 (or more) when running them under TSan on small
// machines — with one thread there is nothing to race.
#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/requirements.hpp"
#include "core/schedule.hpp"

namespace {

using ttdc::core::Schedule;
using ttdc::core::TransparencyViolation;
using ttdc::util::DynamicBitset;

constexpr std::size_t kN = 10'000;
constexpr int kRounds = 20;  // repeated fork/join stresses thread-pool reuse

TEST(ParallelRace, ForWritesDistinctIndices) {
  std::vector<std::uint32_t> out(kN);
  for (int round = 0; round < kRounds; ++round) {
    ttdc::util::parallel_for(0, kN, [&](std::size_t i) {
      out[i] = static_cast<std::uint32_t>(i + static_cast<std::size_t>(round));
    });
    for (std::size_t i = 0; i < kN; i += 997) {
      ASSERT_EQ(out[i], i + static_cast<std::size_t>(round));
    }
  }
}

TEST(ParallelRace, ForContendedAtomicCounter) {
  // All iterations hit ONE cache line: maximal contention on the flag the
  // helpers' synchronization must order correctly.
  std::atomic<std::uint64_t> hits{0};
  for (int round = 0; round < kRounds; ++round) {
    hits.store(0, std::memory_order_relaxed);
    ttdc::util::parallel_for(0, kN, [&](std::size_t) {
      hits.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(hits.load(), kN);
  }
}

TEST(ParallelRace, SumMatchesSerialReduction) {
  const std::uint64_t want = kN * (kN - 1) / 2;
  for (int round = 0; round < kRounds; ++round) {
    const auto got = ttdc::util::parallel_sum(
        0, kN, [](std::size_t i) { return static_cast<std::uint64_t>(i); });
    EXPECT_EQ(got, want);
  }
}

TEST(ParallelRace, AnyFindsLoneWitness) {
  for (std::size_t witness : {std::size_t{0}, kN / 2, kN - 1}) {
    EXPECT_TRUE(ttdc::util::parallel_any(
        0, kN, [witness](std::size_t i) { return i == witness; }));
  }
  EXPECT_FALSE(ttdc::util::parallel_any(0, kN, [](std::size_t) { return false; }));
}

TEST(ParallelRace, AnyStopsCallingPredAfterWitness) {
  // The early-exit contract: once a witness is found, remaining iterations
  // skip the predicate. An immediate witness must leave most of the range
  // unvisited on every code path (serial returns at once; the OpenMP paths
  // check the shared flag before each call).
  std::atomic<std::uint64_t> calls{0};
  const bool found = ttdc::util::parallel_any(0, kN, [&](std::size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return true;  // first evaluated iteration is a witness
  });
  EXPECT_TRUE(found);
  EXPECT_LT(calls.load(), kN / 2) << "early exit did not short-circuit";
  EXPECT_GE(calls.load(), 1u);
}

TEST(ParallelRace, AnyUnderContention) {
  // Every iteration reads the shared flag; half the range are witnesses, so
  // many threads race to store true concurrently (a benign monotone race
  // the implementation must realize with atomics).
  for (int round = 0; round < kRounds; ++round) {
    EXPECT_TRUE(ttdc::util::parallel_any(
        0, kN, [](std::size_t i) { return i % 2 == 0; }));
  }
}

// ---- the parallel Requirement checkers (mutex + atomics under the hood) --

// TDMA identity schedule: node i owns slot i. Topology-transparent for any
// D <= n - 1 (freeSlots(x, Y) = {x} always survives).
Schedule identity_schedule(std::size_t n) {
  std::vector<DynamicBitset> t;
  t.reserve(n);
  for (std::size_t i = 0; i < n; ++i) t.push_back(DynamicBitset(n, {i}));
  return Schedule::non_sleeping(n, std::move(t));
}

// Everyone transmits in the single slot: freeSlots(x, Y) = ∅ for any
// non-empty Y, so every checker must produce a violation.
Schedule degenerate_schedule(std::size_t n) {
  std::vector<DynamicBitset> t = {DynamicBitset(n).complement()};
  return Schedule(n, std::move(t), {DynamicBitset(n)});
}

TEST(ParallelRace, RequirementCheckersCleanSchedule) {
  const Schedule s = identity_schedule(8);
  EXPECT_FALSE(ttdc::core::check_requirement1_exact(s, 3).has_value());
  EXPECT_FALSE(ttdc::core::check_requirement2_exact(s, 3).has_value());
  EXPECT_FALSE(ttdc::core::check_requirement3_exact(s, 3).has_value());
}

TEST(ParallelRace, RequirementCheckersAllRacingToOneViolation) {
  // Every node x is a violation witness, so all worker threads contend on
  // the result mutex/flag at once — the hammer for the checkers' combine.
  const Schedule s = degenerate_schedule(10);
  for (int round = 0; round < 5; ++round) {
    const auto v1 = ttdc::core::check_requirement1_exact(s, 2);
    ASSERT_TRUE(v1.has_value());
    EXPECT_LT(v1->transmitter, 10u);
    EXPECT_EQ(v1->neighborhood.size(), 2u);
    const auto v3 = ttdc::core::check_requirement3_exact(s, 2);
    ASSERT_TRUE(v3.has_value());
    EXPECT_LT(v3->transmitter, 10u);
  }
}

}  // namespace
