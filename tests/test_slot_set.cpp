// util::SlotSet — hybrid sparse/dense node sets (DESIGN.md §13).
//
// The central property: a SlotSet is semantically a set over [0, n)
// regardless of representation. The randomized tests drive long operation
// sequences through a SlotSet and a reference DynamicBitset in lockstep and
// assert element-for-element equality after every step — including
// sequences engineered to oscillate across the promote/demote hysteresis
// band, where a representation bug would show up as members appearing or
// vanishing at the switch.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "util/bitset.hpp"
#include "util/rng.hpp"
#include "util/slot_set.hpp"

namespace ttdc::util {
namespace {

void expect_matches(const SlotSet& s, const DynamicBitset& ref, const char* what) {
  ASSERT_EQ(s.size(), ref.size()) << what;
  EXPECT_EQ(s.count(), ref.count()) << what;
  for (std::size_t v = 0; v < ref.size(); ++v) {
    ASSERT_EQ(s.test(v), ref.test(v)) << what << " at element " << v;
  }
  // for_each must enumerate exactly the members, in increasing order.
  std::size_t prev = 0;
  bool first = true;
  std::size_t seen = 0;
  s.for_each([&](std::size_t v) {
    EXPECT_TRUE(ref.test(v)) << what << " for_each produced non-member " << v;
    if (!first) {
      EXPECT_LT(prev, v) << what << " for_each out of order";
    }
    prev = v;
    first = false;
    ++seen;
  });
  EXPECT_EQ(seen, ref.count()) << what;
}

TEST(SlotSet, StartsSparseAndPromotesAtThreshold) {
  const std::size_t n = 4096;
  SlotSet s(n);
  EXPECT_FALSE(s.is_dense());
  const std::size_t promote = SlotSet::promote_threshold(n);
  for (std::size_t i = 0; i <= promote; ++i) s.set(i * 2);
  EXPECT_TRUE(s.is_dense());  // count == promote + 1 > promote
  EXPECT_EQ(s.count(), promote + 1);
}

TEST(SlotSet, HysteresisBandIsSticky) {
  const std::size_t n = 4096;
  const std::size_t promote = SlotSet::promote_threshold(n);
  const std::size_t demote = SlotSet::demote_threshold(n);
  ASSERT_LT(demote, promote);
  SlotSet s(n);
  DynamicBitset ref(n);
  for (std::size_t i = 0; i <= promote; ++i) {
    s.set(i);
    ref.set(i);
  }
  ASSERT_TRUE(s.is_dense());
  // Walk the count down through the band one removal at a time: the set
  // must stay dense until strictly below the demote threshold, and stay
  // correct at every step.
  for (std::size_t i = promote; ; --i) {
    s.reset(i);
    ref.reset(i);
    expect_matches(s, ref, "hysteresis walk down");
    if (s.count() >= demote) {
      EXPECT_TRUE(s.is_dense()) << "demoted inside the band at count " << s.count();
    } else {
      EXPECT_FALSE(s.is_dense()) << "still dense below demote at count " << s.count();
      break;
    }
    ASSERT_GT(i, 0u);
  }
  // And back up through the band: sparse is sticky until strictly above
  // the promote threshold.
  for (std::size_t i = 0; i <= promote; ++i) {
    if (!ref.test(i)) {
      s.set(i);
      ref.set(i);
      expect_matches(s, ref, "hysteresis walk up");
      if (s.count() <= promote) {
        EXPECT_FALSE(s.is_dense()) << "promoted inside the band at count " << s.count();
      }
    }
  }
  EXPECT_TRUE(s.is_dense());
}

TEST(SlotSet, PinnedDenseNeverDemotes) {
  SlotSet s(2048);
  s.pin_dense();
  EXPECT_TRUE(s.is_dense());
  EXPECT_TRUE(s.is_pinned_dense());
  s.set(7);
  s.reset(7);
  s.reset_all();
  EXPECT_TRUE(s.is_dense());
  s.set_all();
  s.flip_all();
  EXPECT_TRUE(s.is_dense());
  EXPECT_EQ(s.count(), 0u);
  // copy_from a sparse source densifies rather than adopting.
  SlotSet sparse(2048, {3, 5, 11});
  ASSERT_FALSE(sparse.is_dense());
  s.copy_from(sparse);
  EXPECT_TRUE(s.is_dense());
  EXPECT_EQ(s.count(), 3u);
  EXPECT_TRUE(s == sparse);
}

TEST(SlotSet, EqualityIsRepresentationTransparent) {
  SlotSet sparse(1024, {1, 64, 900});
  SlotSet dense(1024, {1, 64, 900});
  dense.pin_dense();
  ASSERT_FALSE(sparse.is_dense());
  ASSERT_TRUE(dense.is_dense());
  EXPECT_TRUE(sparse == dense);
  EXPECT_TRUE(dense == sparse);
  dense.reset(64);
  EXPECT_FALSE(sparse == dense);
}

TEST(SlotSet, CopyFromAdoptsSourceRepresentation) {
  SlotSet sparse(512, {2, 3});
  SlotSet big(512);
  for (std::size_t i = 0; i < 200; ++i) big.set(i);
  ASSERT_TRUE(big.is_dense());
  SlotSet s(512);
  s.copy_from(big);
  EXPECT_TRUE(s.is_dense());
  EXPECT_TRUE(s == big);
  s.copy_from(sparse);
  EXPECT_FALSE(s.is_dense());
  EXPECT_TRUE(s == sparse);
}

TEST(SlotSet, IntersectionCountAcrossAllRepresentationPairs) {
  const std::size_t n = 1024;
  // a: {0, 4, 8, ...}; b: {0, 6, 12, ...}; intersection = multiples of 12.
  const auto build = [n](std::size_t stride, bool dense) {
    SlotSet s(n);
    if (dense) s.pin_dense();
    for (std::size_t v = 0; v < n; v += stride) s.set(v);
    return s;
  };
  const std::size_t expected = (n + 11) / 12;  // |multiples of lcm(4,6) in [0,n)|
  for (bool a_dense : {false, true}) {
    for (bool b_dense : {false, true}) {
      const SlotSet a = build(4, a_dense);
      const SlotSet b = build(6, b_dense);
      EXPECT_EQ(a.intersection_count(b), expected)
          << "a_dense=" << a_dense << " b_dense=" << b_dense;
      EXPECT_EQ(b.intersection_count(a), expected);
      EXPECT_TRUE(a.intersects(b));
      // And against a plain DynamicBitset.
      EXPECT_EQ(a.intersection_count(b.to_dense_bitset()), expected);
    }
  }
  const SlotSet evens = build(2, false);
  SlotSet odds(n);
  for (std::size_t v = 1; v < n; v += 2) odds.set(v);
  EXPECT_EQ(evens.intersection_count(odds), 0u);
  EXPECT_FALSE(evens.intersects(odds));
}

TEST(SlotSet, ForEachIntersectionMatchesMaterialized) {
  util::Xoshiro256 rng(99);
  const std::size_t n = 777;
  for (int rep = 0; rep < 8; ++rep) {
    SlotSet a(n), b(n);
    DynamicBitset ra(n), rb(n);
    const double pa = rep % 2 == 0 ? 0.01 : 0.4;  // sparse and dense mixes
    const double pb = rep % 3 == 0 ? 0.02 : 0.5;
    for (std::size_t v = 0; v < n; ++v) {
      if (rng.bernoulli(pa)) { a.set(v); ra.set(v); }
      if (rng.bernoulli(pb)) { b.set(v); rb.set(v); }
    }
    DynamicBitset expected = ra & rb;
    std::size_t count = 0;
    a.for_each_intersection(b, [&](std::size_t v) {
      EXPECT_TRUE(expected.test(v));
      ++count;
    });
    EXPECT_EQ(count, expected.count());
  }
}

// The randomized lockstep property test: every mutating operation applied
// identically to a SlotSet and a reference DynamicBitset, equality checked
// after each.
TEST(SlotSet, RandomOperationSequencesMatchReferenceBitset) {
  for (const std::size_t n : {1u, 9u, 64u, 65u, 700u, 5000u}) {
    util::Xoshiro256 rng(0xBADC0DE + n);
    SlotSet s(n);
    DynamicBitset ref(n);
    SlotSet other(n);
    DynamicBitset ref_other(n);
    for (int step = 0; step < 400; ++step) {
      const std::uint64_t op = rng.below(12);
      // Refresh `other` every few steps so binary ops see varied densities.
      if (step % 7 == 0) {
        other.reset_all();
        ref_other.reset_all();
        const double p = rng.uniform01() * (step % 14 == 0 ? 0.05 : 0.8);
        for (std::size_t v = 0; v < n; ++v) {
          if (rng.bernoulli(p)) {
            other.set(v);
            ref_other.set(v);
          }
        }
      }
      switch (op) {
        case 0:
        case 1:
        case 2: {  // set (weighted: grows the set across thresholds)
          const auto v = static_cast<std::size_t>(rng.below(n));
          s.set(v);
          ref.set(v);
          break;
        }
        case 3:
        case 4: {  // reset
          const auto v = static_cast<std::size_t>(rng.below(n));
          s.reset(v);
          ref.reset(v);
          break;
        }
        case 5:
          s |= other;
          ref |= ref_other;
          break;
        case 6:
          s &= other;
          ref &= ref_other;
          break;
        case 7:
          s.subtract(other);
          ref.subtract(ref_other);
          break;
        case 8:
          s.flip_all();
          ref.flip_all();
          break;
        case 9:
          s.copy_from(other);
          ref.copy_from(ref_other);
          break;
        case 10:
          EXPECT_EQ(s.intersection_count(other), ref.intersection_count(ref_other));
          EXPECT_EQ(s.intersects(other), ref.intersects(ref_other));
          break;
        default:
          if (step % 50 == 13) {
            s.reset_all();
            ref.reset_all();
          } else {
            s.set_all();
            ref.set_all();
          }
          break;
      }
      ASSERT_NO_FATAL_FAILURE(expect_matches(s, ref, "random sequence"))
          << "n=" << n << " step=" << step << " op=" << op;
      EXPECT_EQ(s.to_vector(), ref.to_vector());
      EXPECT_TRUE(s.to_dense_bitset() == ref);
    }
  }
}

// Same sequences with the SlotSet pinned dense: pinning changes cost, never
// semantics.
TEST(SlotSet, PinnedRandomSequencesMatchReferenceBitset) {
  const std::size_t n = 700;
  util::Xoshiro256 rng(0xF00D);
  SlotSet s(n);
  s.pin_dense();
  DynamicBitset ref(n);
  SlotSet other(n);  // unpinned: exercises mixed-representation operands
  DynamicBitset ref_other(n);
  for (int step = 0; step < 300; ++step) {
    if (step % 5 == 0) {
      other.reset_all();
      ref_other.reset_all();
      const double p = rng.uniform01() * 0.3;
      for (std::size_t v = 0; v < n; ++v) {
        if (rng.bernoulli(p)) {
          other.set(v);
          ref_other.set(v);
        }
      }
    }
    switch (rng.below(6)) {
      case 0: {
        const auto v = static_cast<std::size_t>(rng.below(n));
        s.set(v);
        ref.set(v);
        break;
      }
      case 1: {
        const auto v = static_cast<std::size_t>(rng.below(n));
        s.reset(v);
        ref.reset(v);
        break;
      }
      case 2:
        s |= other;
        ref |= ref_other;
        break;
      case 3:
        s &= other;
        ref &= ref_other;
        break;
      case 4:
        s.subtract(other);
        ref.subtract(ref_other);
        break;
      default:
        s.flip_all();
        ref.flip_all();
        break;
    }
    ASSERT_TRUE(s.is_dense()) << "pinned set demoted at step " << step;
    ASSERT_NO_FATAL_FAILURE(expect_matches(s, ref, "pinned sequence")) << "step " << step;
  }
}

TEST(SlotSet, CopyFromDynamicBitsetPicksRepresentationByPopulation) {
  const std::size_t n = 4096;
  DynamicBitset few(n);
  few.set(17);
  few.set(1000);
  DynamicBitset many(n);
  for (std::size_t v = 0; v < n; v += 2) many.set(v);
  SlotSet s(n);
  s.copy_from(few);
  EXPECT_FALSE(s.is_dense());
  expect_matches(s, few, "copy_from sparse bitset");
  s.copy_from(many);
  EXPECT_TRUE(s.is_dense());
  expect_matches(s, many, "copy_from dense bitset");
}

}  // namespace
}  // namespace ttdc::util
