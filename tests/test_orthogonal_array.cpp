// Orthogonal arrays and the OA -> cover-free-family bridge (§2 of the
// paper: the classical schedule constructions ARE OA constructions).
#include "combinatorics/orthogonal_array.hpp"

#include <gtest/gtest.h>

#include "combinatorics/constructions.hpp"

namespace ttdc::comb {
namespace {

TEST(OrthogonalArray, RejectsMalformedInput) {
  EXPECT_THROW(OrthogonalArray(2, 2, 2, {0, 1, 0}), std::invalid_argument);  // bad count
  EXPECT_THROW(OrthogonalArray(2, 2, 2, {0, 1, 0, 2}), std::invalid_argument);  // entry >= q
  EXPECT_THROW(OrthogonalArray(0, 2, 2, {}), std::invalid_argument);
  EXPECT_THROW(OrthogonalArray(2, 2, 1, {0, 0, 0, 0}), std::invalid_argument);
}

TEST(OrthogonalArray, HandBuiltStrength2) {
  // The OA(4, 3, 2, 2): rows = polynomials a + bx over GF(2) on columns
  // {0, 1} plus the coefficient b itself as a third column.
  // 0 0 0 / 1 1 0 / 0 1 1 / 1 0 1 is the classical example.
  const OrthogonalArray oa(4, 3, 2, {0, 0, 0, 1, 1, 0, 0, 1, 1, 1, 0, 1});
  EXPECT_TRUE(oa.verify_strength(2));  // index 1
  EXPECT_TRUE(oa.verify_strength(1));  // index 2
  EXPECT_FALSE(oa.verify_strength(3));  // 2^3 does not divide 4
}

TEST(OrthogonalArray, DetectsBrokenStrength) {
  // Duplicate a row: some pair must now repeat.
  const OrthogonalArray oa(4, 3, 2, {0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 0, 1});
  EXPECT_FALSE(oa.verify_strength(2));
}

class PolyOaTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(PolyOaTest, HasFullStrengthAndNotMore) {
  const auto [q, t] = GetParam();
  const OrthogonalArray oa = polynomial_orthogonal_array(q, t, q);
  EXPECT_EQ(oa.levels(), q);
  EXPECT_EQ(oa.num_columns(), q);
  std::size_t rows = 1;
  for (std::uint32_t i = 0; i < t; ++i) rows *= q;
  EXPECT_EQ(oa.num_rows(), rows);
  EXPECT_TRUE(oa.verify_strength(t)) << "q=" << q << " t=" << t;
  // Strength t+1 requires q^(t+1) rows: must fail.
  if (t + 1 <= oa.num_columns()) {
    EXPECT_FALSE(oa.verify_strength(t + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, PolyOaTest,
                         ::testing::Values(std::make_tuple(2u, 1u), std::make_tuple(3u, 2u),
                                           std::make_tuple(4u, 2u), std::make_tuple(5u, 2u),
                                           std::make_tuple(5u, 3u), std::make_tuple(7u, 2u),
                                           std::make_tuple(8u, 2u), std::make_tuple(9u, 3u)));

TEST(OaToFamily, MatchesPolynomialFamilyConstruction) {
  // With k = q columns and strength t, the OA adapter reproduces
  // polynomial_family(q, t-1, .) set for set.
  for (const auto& [q, t] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {3, 2}, {5, 2}, {5, 3}, {7, 2}}) {
    const std::size_t count = 30 % (q * q) + 5;
    const SetFamily via_oa =
        oa_to_family(polynomial_orthogonal_array(q, t, q), count);
    const SetFamily direct = polynomial_family(q, t - 1, count);
    ASSERT_EQ(via_oa.num_members(), direct.num_members());
    ASSERT_EQ(via_oa.universe_size(), direct.universe_size());
    for (std::size_t m = 0; m < count; ++m) {
      EXPECT_EQ(via_oa.set_of(m), direct.set_of(m)) << "q=" << q << " t=" << t << " m=" << m;
    }
  }
}

TEST(OaToFamily, CoverFreenessFollowsFromStrength) {
  // OA strength t, k columns: two rows agree on <= t-1 columns, so the
  // family is D-cover-free for D <= (k-1)/(t-1).
  const OrthogonalArray oa = polynomial_orthogonal_array(7, 3, 7);
  const SetFamily family = oa_to_family(oa, 49);
  EXPECT_LE(family.max_pairwise_intersection(), 2u);
  EXPECT_FALSE(find_cover_violation_exact(family, 3));
}

TEST(OaToFamily, RejectsTooManyMembers) {
  const OrthogonalArray oa = polynomial_orthogonal_array(3, 2, 3);
  EXPECT_THROW(oa_to_family(oa, 10), std::invalid_argument);
}

TEST(OaToFamily, FewerColumnsShrinkUniverse) {
  // Using only k < q columns trades guarantee strength for frame length.
  const OrthogonalArray oa = polynomial_orthogonal_array(5, 2, 3);
  const SetFamily family = oa_to_family(oa, 25);
  EXPECT_EQ(family.universe_size(), 15u);  // 3 columns x 5 levels
  for (std::size_t m = 0; m < 25; ++m) EXPECT_EQ(family.set_of(m).count(), 3u);
  // (k-1)/(t-1) = 2: still 2-cover-free even on 3 columns.
  EXPECT_FALSE(find_cover_violation_exact(family, 2));
}

}  // namespace
}  // namespace ttdc::comb
