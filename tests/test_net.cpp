// Graphs and topology generators.
#include <gtest/gtest.h>

#include "net/graph.hpp"
#include "net/topology.hpp"

namespace ttdc::net {
namespace {

TEST(Graph, EdgeBasics) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 1);  // idempotent
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_EQ(g.neighbor_list(1), (std::vector<std::size_t>{0, 2}));
}

TEST(Graph, EdgesListsEachOnce) {
  Graph g(4);
  g.add_edge(2, 0);
  g.add_edge(3, 1);
  const auto e = g.edges();
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0], (std::pair<std::size_t, std::size_t>{0, 2}));
  EXPECT_EQ(e[1], (std::pair<std::size_t, std::size_t>{1, 3}));
}

TEST(Graph, ConnectivityAndBfs) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  EXPECT_TRUE(g.is_connected());
  const auto dist = g.bfs_distances(0);
  EXPECT_EQ(dist[4], 4u);
  const auto parents = g.bfs_parents(4);
  EXPECT_EQ(parents[0], 1u);
  EXPECT_EQ(parents[4], 4u);
}

TEST(Topology, DeterministicShapes) {
  EXPECT_EQ(path_graph(5).num_edges(), 4u);
  EXPECT_EQ(ring_graph(5).num_edges(), 5u);
  EXPECT_EQ(ring_graph(5).max_degree(), 2u);
  EXPECT_EQ(star_graph(6).max_degree(), 5u);
  EXPECT_EQ(grid_graph(3, 4).num_edges(), 3u * 3 + 2u * 4);  // 17
  EXPECT_TRUE(grid_graph(3, 4).is_connected());
  EXPECT_EQ(mary_tree(7, 2).num_edges(), 6u);
  EXPECT_TRUE(mary_tree(13, 3).is_connected());
}

TEST(Topology, WorstCaseStarShape) {
  const Graph g = worst_case_star(4);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.degree(0), 4u);
  for (std::size_t leaf = 1; leaf <= 4; ++leaf) EXPECT_EQ(g.degree(leaf), 1u);
}

TEST(Topology, RandomBoundedDegreeRespectsCap) {
  util::Xoshiro256 rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 10 + static_cast<std::size_t>(rng.below(40));
    const std::size_t d = 2 + static_cast<std::size_t>(rng.below(5));
    const Graph g = random_bounded_degree_graph(n, d, n * 2, rng);
    EXPECT_LE(g.max_degree(), d);
    EXPECT_EQ(g.num_nodes(), n);
  }
}

TEST(Topology, UnitDiskRespectsRadiusAndCap) {
  util::Xoshiro256 rng(12);
  const Positions pos = random_positions(60, rng);
  const double radius = 0.25;
  const std::size_t cap = 4;
  const Graph g = unit_disk_graph(pos, radius, cap);
  EXPECT_LE(g.max_degree(), cap);
  for (const auto& [a, b] : g.edges()) {
    const double dx = pos.x[a] - pos.x[b];
    const double dy = pos.y[a] - pos.y[b];
    EXPECT_LE(dx * dx + dy * dy, radius * radius + 1e-12);
  }
}

TEST(Topology, MobilityKeepsNodesInUnitSquareAndCapHolds) {
  MobilityModel model(30, 0.3, 3, 0.05, 99);
  for (int epoch = 0; epoch < 25; ++epoch) {
    const Graph g = model.step();
    EXPECT_LE(g.max_degree(), 3u);
    for (std::size_t i = 0; i < 30; ++i) {
      EXPECT_GE(model.positions().x[i], 0.0);
      EXPECT_LE(model.positions().x[i], 1.0);
      EXPECT_GE(model.positions().y[i], 0.0);
      EXPECT_LE(model.positions().y[i], 1.0);
    }
  }
}

TEST(Topology, MobilityActuallyChangesTopology) {
  MobilityModel model(25, 0.3, 4, 0.08, 7);
  const Graph first = model.step();
  bool changed = false;
  for (int epoch = 0; epoch < 10 && !changed; ++epoch) {
    const Graph g = model.step();
    if (g.edges() != first.edges()) changed = true;
  }
  EXPECT_TRUE(changed);
}

}  // namespace
}  // namespace ttdc::net
