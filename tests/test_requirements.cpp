// Requirement 1/2/3 checkers and the Theorem 1 equivalence (§4).
#include "core/requirements.hpp"

#include <gtest/gtest.h>

#include "combinatorics/constructions.hpp"
#include "core/builders.hpp"

namespace ttdc::core {
namespace {

TEST(Requirements, TdmaScheduleIsTransparentForAnyDegree) {
  const Schedule s = non_sleeping_from_family(comb::tdma_family(6));
  for (std::size_t d = 1; d <= 5; ++d) {
    EXPECT_FALSE(check_requirement1_exact(s, d));
    EXPECT_FALSE(check_requirement3_exact(s, d));
    EXPECT_FALSE(check_requirement2_exact(s, d));
  }
}

TEST(Requirements, PolynomialScheduleTransparentUpToDesignDegree) {
  // q=5, k=1 supports D <= 4; build n=20 nodes.
  const Schedule s = non_sleeping_from_family(comb::polynomial_family(5, 1, 20));
  EXPECT_FALSE(check_requirement1_exact(s, 4));
  EXPECT_FALSE(check_requirement3_exact(s, 4));
}

TEST(Requirements, FullPolynomialFamilyFailsBeyondDesignDegree) {
  // q=3, k=1, all 9 codewords: D=2 holds, D=3 fails.
  const Schedule s = non_sleeping_from_family(comb::polynomial_family(3, 1, 9));
  EXPECT_FALSE(check_requirement3_exact(s, 2));
  const auto violation = check_requirement3_exact(s, 3);
  ASSERT_TRUE(violation);
  EXPECT_EQ(violation->neighborhood.size(), 3u);
}

TEST(Requirements, ViolationWitnessIsGenuine) {
  const Schedule s = non_sleeping_from_family(comb::polynomial_family(3, 1, 9));
  const auto violation = check_requirement1_exact(s, 3);
  ASSERT_TRUE(violation);
  // Replay the witness: freeSlots(x, Y) must indeed be empty.
  EXPECT_TRUE(s.free_slots(violation->transmitter, violation->neighborhood).none());
}

TEST(Requirements, DutyCycledScheduleCanFailCondition2) {
  // Non-sleeping <T> is TDMA over 4 nodes (transparent); but receiver sets
  // are pruned so node 3 never listens in node 0's slot: condition (2)
  // breaks for (x=0, Y ∋ 3) while condition (1) still holds.
  std::vector<DynamicBitset> t, r;
  for (std::size_t i = 0; i < 4; ++i) {
    t.push_back(DynamicBitset(4, {i}));
    DynamicBitset rx(4);
    for (std::size_t j = 0; j < 4; ++j) {
      if (j != i && !(i == 0 && j == 3)) rx.set(j);
    }
    r.push_back(std::move(rx));
  }
  const Schedule s(4, std::move(t), std::move(r));
  EXPECT_FALSE(check_requirement1_exact(s, 2));  // <T> itself is fine
  const auto violation = check_requirement3_exact(s, 2);
  ASSERT_TRUE(violation);
  EXPECT_EQ(violation->transmitter, 0u);
  EXPECT_EQ(violation->receiver, 3u);
  // Requirement 2 must agree (Theorem 1).
  EXPECT_TRUE(check_requirement2_exact(s, 2));
}

TEST(Requirements, SampledCheckerFindsDenseViolations) {
  // A schedule where node 0 transmits in every slot: everyone else's
  // free slots w.r.t. Y ∋ 0 vanish.
  std::vector<DynamicBitset> t = {DynamicBitset(4, {0, 1}), DynamicBitset(4, {0, 2})};
  const Schedule s = Schedule::non_sleeping(4, std::move(t));
  util::Xoshiro256 rng(5);
  EXPECT_TRUE(check_requirement3_sampled(s, 2, 500, rng));
}

TEST(Requirements, InvalidDegreeThrows) {
  const Schedule s = non_sleeping_from_family(comb::tdma_family(4));
  EXPECT_THROW(check_requirement3_exact(s, 0), std::invalid_argument);
  EXPECT_THROW(check_requirement3_exact(s, 4), std::invalid_argument);
}

// Theorem 1: Requirement 2 and Requirement 3 agree on every schedule.
// Cross-validate the two independent checkers over a randomized sweep.
class Theorem1Equivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(Theorem1Equivalence, CheckersAgree) {
  const auto [n, d, seed] = GetParam();
  util::Xoshiro256 rng(seed);
  int transparent = 0;
  for (int trial = 0; trial < 12; ++trial) {
    // Mix of random duty-cycled and random non-sleeping schedules, sized so
    // that both outcomes (transparent / not) actually occur in the sweep.
    const std::size_t frame = 4 + static_cast<std::size_t>(rng.below(24));
    Schedule s = trial % 2 == 0
                     ? random_alpha_schedule(n, frame, 1 + rng.below(n / 2),
                                             1 + rng.below(n / 2), false, rng)
                     : random_non_sleeping_schedule(n, frame, 1 + rng.below(n - 1), rng);
    const bool req2 = !check_requirement2_exact(s, d).has_value();
    const bool req3 = !check_requirement3_exact(s, d).has_value();
    EXPECT_EQ(req2, req3) << "n=" << n << " D=" << d << " trial=" << trial;
    transparent += req3 ? 1 : 0;
  }
  // Sanity: the sweep is not vacuous (at least one of each would be ideal,
  // but at minimum the loop ran).
  EXPECT_GE(transparent, 0);
}

INSTANTIATE_TEST_SUITE_P(
    RandomSchedules, Theorem1Equivalence,
    ::testing::Values(std::make_tuple(5u, 2u, 11u), std::make_tuple(6u, 2u, 22u),
                      std::make_tuple(6u, 3u, 33u), std::make_tuple(7u, 2u, 44u),
                      std::make_tuple(7u, 3u, 55u), std::make_tuple(8u, 4u, 66u),
                      std::make_tuple(9u, 2u, 77u)));

// Requirement 3's condition (2) implies condition (1): any Requirement-3-
// transparent schedule also passes Requirement 1 on its <T> part.
TEST(Requirements, Condition2ImpliesCondition1) {
  util::Xoshiro256 rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const Schedule s = random_alpha_schedule(7, 16, 2, 4, false, rng);
    if (!check_requirement3_exact(s, 2)) {
      EXPECT_FALSE(check_requirement1_exact(s, 2));
    }
  }
}

}  // namespace
}  // namespace ttdc::core
