// Flight recorder: ring semantics, simulator wiring (golden-stats
// invariance, interferer causality against ground truth), JSONL round-trip,
// the FlightLog query API, truncated-ring self-consistency, the Perfetto
// exporter's structural validity, and campaign outlier capture.
//
// Dumps written by these tests land in the ctest working directory (the
// build tree) under flight_test_*.jsonl, so a failing CI job can upload
// them as artifacts for post-mortem.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "net/graph.hpp"
#include "net/topology.hpp"
#include "obs/flight_query.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/perfetto.hpp"
#include "obs/profile.hpp"
#include "runner/runner.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace ttdc;
using obs::FlightEvent;
using obs::FlightLog;
using obs::FlightRecorder;

FlightEvent make_event(std::uint64_t slot, std::uint64_t packet,
                       FlightEvent::Kind kind = FlightEvent::Kind::kTxAttempt) {
  FlightEvent e;
  e.slot = slot;
  e.packet_id = packet;
  e.kind = kind;
  e.node = 1;
  e.peer = 2;
  return e;
}

/// A small duty-cycled deployment shared by the simulator-wiring tests.
struct Scenario {
  std::size_t nodes = 30;
  std::size_t degree = 3;
  net::Graph graph;
  core::Schedule duty;

  Scenario()
      : graph(make_graph(nodes, degree)),
        duty(core::construct_duty_cycled(
            core::non_sleeping_from_family(
                comb::build_plan(comb::best_plan(nodes, degree), nodes)),
            degree, 4, 8)) {}

  static net::Graph make_graph(std::size_t n, std::size_t d) {
    util::Xoshiro256 rng(42);
    return net::random_bounded_degree_graph(n, d, 2 * n, rng);
  }

  sim::SimStats run(std::uint64_t slots, FlightRecorder* recorder,
                    bool force_scalar = false,
                    std::vector<sim::TraceEvent>* trace = nullptr) const {
    sim::DutyCycledScheduleMac mac(duty);
    sim::BernoulliTraffic traffic(nodes, 0.02);
    sim::SimConfig config;
    config.seed = 9;
    config.recorder = recorder;
    config.force_scalar_pipeline = force_scalar;
    if (trace != nullptr) {
      config.trace = [trace](const sim::TraceEvent& e) { trace->push_back(e); };
    }
    sim::Simulator sim(graph, mac, traffic, config);
    sim.run(slots);
    return sim.stats();
  }
};

void expect_stats_equal(const sim::SimStats& a, const sim::SimStats& b) {
  EXPECT_EQ(a.slots_run, b.slots_run);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.hop_successes, b.hop_successes);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.receiver_asleep, b.receiver_asleep);
  EXPECT_EQ(a.channel_losses, b.channel_losses);
  EXPECT_EQ(a.sync_losses, b.sync_losses);
  EXPECT_EQ(a.queue_drops, b.queue_drops);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
}

// ------------------------------------------------------------ ring basics

TEST(FlightRecorderRing, EvictsOldestFirst) {
  FlightRecorder ring(4);
  for (std::uint64_t i = 0; i < 6; ++i) ring.record(make_event(i, i));
  EXPECT_EQ(ring.seen(), 6u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_TRUE(ring.wrapped());
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].slot, i + 2) << "oldest-first order after wrap";
  }
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.seen(), 0u);
  EXPECT_FALSE(ring.wrapped());
}

TEST(FlightRecorderRing, UnwrappedKeepsEverythingInOrder) {
  FlightRecorder ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) ring.record(make_event(i, i));
  EXPECT_FALSE(ring.wrapped());
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(events[i].slot, i);
}

// ------------------------------------------------------- simulator wiring

TEST(FlightRecorderSim, GoldenStatsUntouchedByRecording) {
  const Scenario sc;
  const sim::SimStats plain = sc.run(1200, nullptr);
  FlightRecorder ring(1 << 16);
  const sim::SimStats recorded = sc.run(1200, &ring);
  expect_stats_equal(plain, recorded);
  EXPECT_GT(ring.seen(), 0u);

  // Scalar pipeline with the recorder attached stays golden too.
  FlightRecorder scalar_ring(1 << 16);
  const sim::SimStats scalar = sc.run(1200, &scalar_ring, /*force_scalar=*/true);
  expect_stats_equal(plain, scalar);
  // Both pipelines must emit the identical event stream, not merely the
  // same totals.
  EXPECT_TRUE(ring.events() == scalar_ring.events());
}

TEST(FlightRecorderSim, DisarmedRecorderStaysEmptyAndGolden) {
  const Scenario sc;
  const sim::SimStats plain = sc.run(600, nullptr);
  FlightRecorder ring(1 << 14);
  FlightRecorder::enable(false);
  const sim::SimStats disarmed = sc.run(600, &ring);
  FlightRecorder::enable(true);
  EXPECT_EQ(ring.seen(), 0u);
  expect_stats_equal(plain, disarmed);
}

TEST(FlightRecorderSim, EventCountsMatchSimStats) {
  const Scenario sc;
  FlightRecorder ring(1 << 18);  // large enough: no eviction
  const sim::SimStats stats = sc.run(1500, &ring);
  ASSERT_FALSE(ring.wrapped());
  std::map<FlightEvent::Kind, std::uint64_t> counts;
  for (const auto& e : ring.events()) ++counts[e.kind];
  EXPECT_EQ(counts[FlightEvent::Kind::kCreated], stats.generated);
  EXPECT_EQ(counts[FlightEvent::Kind::kTxAttempt], stats.transmissions);
  EXPECT_EQ(counts[FlightEvent::Kind::kCollided], stats.collisions);
  EXPECT_EQ(counts[FlightEvent::Kind::kDelivered], stats.delivered);
  EXPECT_EQ(counts[FlightEvent::Kind::kReceiverAsleep], stats.receiver_asleep);
  EXPECT_EQ(counts[FlightEvent::Kind::kChannelLoss], stats.channel_losses);
  EXPECT_EQ(counts[FlightEvent::Kind::kSyncLoss], stats.sync_losses);
  EXPECT_EQ(counts[FlightEvent::Kind::kDropped] + counts[FlightEvent::Kind::kExpired],
            stats.queue_drops);
}

TEST(FlightRecorderSim, CollisionInterferersMatchGroundTruth) {
  const Scenario sc;
  FlightRecorder ring(1 << 18);
  sc.run(1500, &ring);
  ASSERT_FALSE(ring.wrapped());
  const auto events = ring.events();

  // Independent ground truth: the transmitting set of each slot is exactly
  // the slot's kTxAttempt events.
  std::map<std::uint64_t, std::set<std::uint32_t>> tx_by_slot;
  for (const auto& e : events) {
    if (e.kind == FlightEvent::Kind::kTxAttempt) tx_by_slot[e.slot].insert(e.node);
  }
  std::size_t checked = 0;
  for (const auto& e : events) {
    if (e.kind != FlightEvent::Kind::kCollided) continue;
    const auto& tx = tx_by_slot[e.slot];
    ASSERT_TRUE(tx.count(e.peer)) << "colliding transmitter must have transmitted";
    std::vector<std::uint32_t> expected;
    for (const std::uint32_t t : tx) {
      if (t != e.peer && sc.graph.neighbors(e.node).test(t)) expected.push_back(t);
    }
    ASSERT_GE(expected.size(), 1u) << "a collision needs at least one interferer";
    EXPECT_EQ(e.interferer_count, expected.size());
    const std::size_t stored = e.stored_interferers();
    ASSERT_LE(stored, expected.size());
    for (std::size_t i = 0; i < stored; ++i) {
      // The word-parallel recovery scans ascending node ids, matching the
      // sorted std::set order.
      EXPECT_EQ(e.interferers[i], expected[i]);
    }
    ++checked;
  }
  EXPECT_GT(checked, 0u) << "scenario must actually produce collisions";
}

// --------------------------------------------------- round-trip + queries

TEST(FlightQuery, JsonlRoundTripIsExact) {
  const Scenario sc;
  FlightRecorder ring(1 << 18);
  sc.run(1000, &ring);
  const auto original = ring.events();
  ASSERT_FALSE(original.empty());

  std::stringstream ss;
  obs::write_flight_jsonl(ss, original);
  const auto parsed = obs::read_flight_jsonl(ss);
  EXPECT_TRUE(parsed.errors.empty());
  ASSERT_EQ(parsed.events.size(), original.size());
  EXPECT_TRUE(parsed.events == original);
}

TEST(FlightQuery, QueriesIdenticalOnReplayedStream) {
  const Scenario sc;
  FlightRecorder ring(1 << 18);
  sc.run(1500, &ring);

  const std::string path = "flight_test_roundtrip.jsonl";
  ASSERT_TRUE(obs::write_flight_jsonl_file(path, ring.events()));
  auto replayed = obs::read_flight_jsonl_file(path);
  ASSERT_TRUE(replayed.errors.empty());

  const FlightLog live(ring.events());
  const FlightLog replay(std::move(replayed.events));
  EXPECT_TRUE(live.self_check().empty());
  EXPECT_TRUE(replay.self_check().empty());
  ASSERT_EQ(live.packets().size(), replay.packets().size());

  const auto wl_live = live.worst_latency(10);
  const auto wl_replay = replay.worst_latency(10);
  ASSERT_EQ(wl_live.size(), wl_replay.size());
  for (std::size_t i = 0; i < wl_live.size(); ++i) {
    EXPECT_EQ(wl_live[i].packet_id, wl_replay[i].packet_id);
    EXPECT_EQ(wl_live[i].latency, wl_replay[i].latency);
    EXPECT_EQ(wl_live[i].delivered_slot, wl_replay[i].delivered_slot);
  }

  const auto tc_live = live.top_collisions(10);
  const auto tc_replay = replay.top_collisions(10);
  ASSERT_EQ(tc_live.size(), tc_replay.size());
  for (std::size_t i = 0; i < tc_live.size(); ++i) {
    EXPECT_EQ(tc_live[i].receiver, tc_replay[i].receiver);
    EXPECT_EQ(tc_live[i].collisions, tc_replay[i].collisions);
    EXPECT_TRUE(tc_live[i].transmitters == tc_replay[i].transmitters);
  }
  std::remove(path.c_str());
}

TEST(FlightQuery, WorstLatencyAndTopCollisionsMatchGroundTruth) {
  const Scenario sc;
  FlightRecorder ring(1 << 18);
  std::vector<sim::TraceEvent> trace;  // independent event pipeline
  sc.run(1500, &ring, false, &trace);
  const FlightLog log(ring.events());

  // Ground-truth latencies from the trace pipeline: creation and final
  // delivery slots per packet id.
  std::map<std::uint64_t, std::uint64_t> created, delivered_at;
  for (const auto& t : trace) {
    if (t.kind == sim::TraceEvent::Kind::kGenerated) created[t.packet_id] = t.slot;
    if (t.kind == sim::TraceEvent::Kind::kFinalDelivered) delivered_at[t.packet_id] = t.slot;
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> truth;  // (latency, id)
  for (const auto& [id, slot] : delivered_at) {
    truth.emplace_back(slot - created.at(id), id);
  }
  std::sort(truth.begin(), truth.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  const auto worst = log.worst_latency(5);
  ASSERT_EQ(worst.size(), std::min<std::size_t>(5, truth.size()));
  for (std::size_t i = 0; i < worst.size(); ++i) {
    EXPECT_EQ(worst[i].latency, truth[i].first);
    EXPECT_EQ(worst[i].packet_id, truth[i].second);
  }

  // Ground-truth collision counts per receiver from the trace pipeline.
  std::map<std::uint32_t, std::uint64_t> collisions_at;
  for (const auto& t : trace) {
    if (t.kind == sim::TraceEvent::Kind::kCollision) {
      ++collisions_at[static_cast<std::uint32_t>(t.node)];
    }
  }
  for (const auto& h : log.top_collisions(100)) {
    EXPECT_EQ(h.collisions, collisions_at.at(h.receiver));
  }
}

TEST(FlightQuery, NodeTimelineCoversOnlyThatNode) {
  const Scenario sc;
  FlightRecorder ring(1 << 16);
  sc.run(800, &ring);
  const FlightLog log(ring.events());
  const auto timeline = log.node_timeline(0);
  std::size_t expected = 0;
  for (const auto& e : log.events()) {
    if (e.node == 0) ++expected;
  }
  EXPECT_EQ(timeline.size(), expected);
  for (const auto& e : timeline) EXPECT_EQ(e.node, 0u);
}

// --------------------------------------------------------- truncated rings

TEST(FlightQuery, WrappedRingYieldsSelfConsistentSuffixHistories) {
  const Scenario sc;
  FlightRecorder big(1 << 18);
  FlightRecorder small(512);
  sc.run(1500, &big);
  sc.run(1500, &small);
  ASSERT_TRUE(small.wrapped());

  const FlightLog full(big.events());
  const FlightLog log(small.events());
  EXPECT_TRUE(log.self_check().empty())
      << "wrapped ring must still satisfy the per-packet audit";

  std::size_t truncated = 0;
  for (const auto& h : log.packets()) {
    truncated += h.truncated ? 1 : 0;
    // Ring eviction removes a strict prefix of the chronological stream,
    // so every retained history is a suffix of the full history.
    const auto* full_h = full.packet(h.packet_id);
    ASSERT_NE(full_h, nullptr);
    ASSERT_LE(h.events.size(), full_h->events.size());
    const std::size_t offset = full_h->events.size() - h.events.size();
    for (std::size_t i = 0; i < h.events.size(); ++i) {
      EXPECT_TRUE(h.events[i] == full_h->events[offset + i]);
    }
  }
  EXPECT_GT(truncated, 0u) << "a wrapped ring must truncate some history";

  // Latency queries survive truncation: the latency rides on kDelivered.
  for (const auto& r : log.worst_latency(20)) {
    const auto* full_h = full.packet(r.packet_id);
    ASSERT_NE(full_h, nullptr);
    EXPECT_EQ(r.latency, full_h->latency);
  }
}

TEST(FlightQuery, SelfCheckFlagsCorruptedStream) {
  std::vector<FlightEvent> events;
  events.push_back(make_event(10, 1, FlightEvent::Kind::kCreated));
  events.push_back(make_event(5, 1, FlightEvent::Kind::kTxAttempt));  // slot goes backwards
  const FlightLog log(events);
  EXPECT_FALSE(log.self_check().empty());

  std::vector<FlightEvent> after_terminal;
  after_terminal.push_back(make_event(1, 2, FlightEvent::Kind::kCreated));
  after_terminal.push_back(make_event(2, 2, FlightEvent::Kind::kDropped));
  after_terminal.push_back(make_event(3, 2, FlightEvent::Kind::kEnqueued));
  EXPECT_FALSE(FlightLog(after_terminal).self_check().empty());
}

TEST(FlightQuery, MalformedLinesAreReportedNotParsed) {
  std::stringstream ss;
  ss << R"({"kind":"created","slot":1,"packet":1,"node":0,"peer":5})" << "\n"
     << "not json at all\n"
     << R"({"kind":"no_such_kind","slot":2,"packet":1,"node":0,"peer":5})" << "\n";
  const auto parsed = obs::read_flight_jsonl(ss);
  EXPECT_EQ(parsed.events.size(), 1u);
  EXPECT_EQ(parsed.errors.size(), 2u);
}

// ------------------------------------------------------------- perfetto

TEST(Perfetto, ExportIsStructurallyValidTraceJson) {
  const Scenario sc;
  FlightRecorder ring(1 << 14);
  sc.run(600, &ring);
  const FlightLog log(ring.events());

  obs::Profiler& profiler = obs::Profiler::instance();
  profiler.reset();
  {
    obs::ProfilerSession session;
    TTDC_PROF_SCOPE("outer");
    for (int i = 0; i < 3; ++i) {
      TTDC_PROF_SCOPE("inner");
    }
  }

  std::stringstream ss;
  obs::write_perfetto_trace(ss, log, &profiler);
  const std::string json = ss.str();
  std::string error;
  EXPECT_TRUE(obs::json_validate(json, &error)) << error;
  const auto violations = obs::validate_trace_events(json);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(Perfetto, ValidatorRejectsBrokenJson) {
  std::string error;
  EXPECT_FALSE(obs::json_validate("{\"traceEvents\":[", &error));
  EXPECT_FALSE(obs::json_validate("{\"a\":1,}", &error));
  EXPECT_TRUE(obs::json_validate("{\"a\":[1,2,{\"b\":\"c\\\"d\"}]}", &error)) << error;
  EXPECT_FALSE(obs::validate_trace_events("{\"notTraceEvents\":[]}").empty());
  EXPECT_FALSE(obs::validate_trace_events("{\"traceEvents\":[{\"ph\":\"X\"}]}").empty())
      << "event without a name must be flagged";
}

// ------------------------------------------------------- campaign capture

TEST(CampaignFlightCapture, DumpsOutlierCellsAtBarrier) {
  runner::CampaignOptions options;
  options.master_seed = 77;
  options.num_workers = 2;
  runner::FlightCaptureOptions capture;
  capture.ring_capacity = 1 << 14;
  capture.dir = ".";
  capture.min_delivery_ratio = 0.95;  // ALOHA under load will miss this
  capture.max_dumps = 2;
  options.flight_capture = capture;

  util::Xoshiro256 rng(5);
  const net::Graph g = net::random_bounded_degree_graph(20, 3, 40, rng);

  runner::Campaign campaign(std::move(options));
  for (const double rate : {0.001, 0.2, 0.25}) {
    campaign.add("aloha_rate_" + std::to_string(rate), [&g, rate](runner::CellContext& ctx) {
      ASSERT_NE(ctx.flight_recorder(), nullptr);
      sim::SlottedAlohaMac mac(g.num_nodes(), 0.3);
      sim::BernoulliTraffic traffic(g.num_nodes(), rate);
      sim::SimConfig config;
      config.seed = ctx.seed();
      config.recorder = ctx.flight_recorder();
      sim::Simulator sim(g, mac, traffic, config);
      sim.run(400);
      ctx.record(sim.stats());
    });
  }
  const runner::CampaignResult result = campaign.run();

  ASSERT_FALSE(result.flight_dumps.empty());
  ASSERT_LE(result.flight_dumps.size(), 2u);
  for (const auto& dump : result.flight_dumps) {
    EXPECT_FALSE(dump.reason.empty());
    EXPECT_GT(dump.events, 0u);
    auto parsed = obs::read_flight_jsonl_file(dump.path);
    EXPECT_TRUE(parsed.errors.empty());
    EXPECT_EQ(parsed.events.size(), dump.events);
    EXPECT_TRUE(FlightLog(std::move(parsed.events)).self_check().empty());
    std::remove(dump.path.c_str());
  }
  // Ground truth from the per-cell stats: exactly the first max_dumps
  // below-threshold cells get dumped, in cell-index order.
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < result.cells.size() && expected.size() < 2; ++i) {
    if (result.cells[i].stats.delivery_ratio() < 0.95) expected.push_back(i);
  }
  ASSERT_EQ(result.flight_dumps.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.flight_dumps[i].cell_index, expected[i]);
  }
}

}  // namespace
