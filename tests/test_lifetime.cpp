// Battery depletion and network lifetime.
#include <gtest/gtest.h>

#include "combinatorics/constructions.hpp"
#include "combinatorics/params.hpp"
#include "core/builders.hpp"
#include "core/construct.hpp"
#include "net/topology.hpp"
#include "sim/mac.hpp"
#include "sim/simulator.hpp"

namespace ttdc::sim {
namespace {

using core::Schedule;

TEST(Lifetime, UnlimitedBatteryNeverDies) {
  const Schedule s = core::non_sleeping_from_family(comb::tdma_family(4));
  DutyCycledScheduleMac mac(s);
  BernoulliTraffic traffic(4, 0.05);
  Simulator sim(net::ring_graph(4), mac, traffic, {.seed = 1});  // battery_mj = 0
  sim.run(5000);
  EXPECT_EQ(sim.stats().deaths, 0u);
  EXPECT_EQ(sim.alive_count(), 4u);
  EXPECT_EQ(sim.stats().first_death_slot, ~std::uint64_t{0});
}

TEST(Lifetime, IdleTdmaNodesDieOnSchedule) {
  // TDMA n=3 with no traffic: a node listens 2 of every 3 slots (0.62 mJ
  // each), sleeps its own slot (0.00003 mJ), and pays one 0.06 mJ wakeup
  // per frame -> ~1.30 mJ per 3-slot frame. A 62 mJ battery lasts
  // ~47.6 frames ~ 143 slots.
  const Schedule s = core::non_sleeping_from_family(comb::tdma_family(3));
  DutyCycledScheduleMac mac(s);
  BernoulliTraffic no_traffic(3, 0.0);
  SimConfig config;
  config.seed = 2;
  config.battery_mj = 62.0;
  Simulator sim(net::path_graph(3), mac, no_traffic, config);
  sim.run(300);
  EXPECT_EQ(sim.stats().deaths, 3u);
  EXPECT_EQ(sim.alive_count(), 0u);
  EXPECT_GT(sim.stats().first_death_slot, 135u);
  EXPECT_LT(sim.stats().first_death_slot, 150u);
  EXPECT_DOUBLE_EQ(sim.remaining_battery_mj(0), 0.0);
}

TEST(Lifetime, DutyCyclingExtendsLifetime) {
  const std::size_t n = 25, d = 2;
  const Schedule base = core::non_sleeping_from_family(comb::polynomial_family(5, 2, n));
  const Schedule duty = core::construct_duty_cycled(base, d, 5, 5);
  util::Xoshiro256 rng(3);
  const net::Graph g = net::random_bounded_degree_graph(n, d, n, rng);

  auto first_death = [&](const Schedule& schedule) {
    DutyCycledScheduleMac mac(schedule);
    BernoulliTraffic traffic(n, 0.001);
    SimConfig config;
    config.seed = 4;
    config.battery_mj = 400.0;
    Simulator sim(g, mac, traffic, config);
    sim.run(30000);
    return sim.stats().first_death_slot;
  };
  const auto ns_death = first_death(base);
  const auto duty_death = first_death(duty);
  ASSERT_NE(ns_death, ~std::uint64_t{0});  // always-on must die in budget
  // ~0.2 duty cycle -> several-fold lifetime extension.
  EXPECT_GT(duty_death, 3 * ns_death);
}

TEST(Lifetime, SurvivorsKeepDeliveringAfterDeaths) {
  // Topology transparency covers node death: degrees only shrink, so the
  // untouched schedule keeps serving the survivors.
  const std::size_t n = 16, d = 3;
  const Schedule duty = core::construct_duty_cycled(
      core::non_sleeping_from_family(comb::build_plan(comb::best_plan(n, d), n)), d, 3, 6);
  DutyCycledScheduleMac mac(duty);
  BernoulliTraffic traffic(n, 0.01);
  util::Xoshiro256 rng(5);
  SimConfig config;
  config.seed = 5;
  config.battery_mj = 800.0;
  // Give node 0 a head start on death by making it a saturated hub? Keep
  // it simple: equal batteries; deaths happen when duty budgets run out.
  Simulator sim(net::random_bounded_degree_graph(n, d, 2 * n, rng), mac, traffic, config);
  std::uint64_t delivered_before = 0;
  bool saw_post_death_delivery = false;
  for (int epoch = 0; epoch < 40; ++epoch) {
    sim.run(1000);
    if (sim.stats().deaths > 0 && sim.stats().deaths < n &&
        sim.stats().delivered > delivered_before) {
      saw_post_death_delivery = true;
    }
    delivered_before = sim.stats().delivered;
    if (sim.alive_count() == 0) break;
  }
  EXPECT_GT(sim.stats().deaths, 0u);
  EXPECT_TRUE(saw_post_death_delivery)
      << "network should keep delivering between first death and blackout";
}

TEST(Lifetime, DeadOriginStopsGenerating) {
  const Schedule s = core::non_sleeping_from_family(comb::tdma_family(2));
  DutyCycledScheduleMac mac(s);
  BernoulliTraffic traffic(2, 1.0);
  SimConfig config;
  config.seed = 6;
  config.battery_mj = 31.0;  // ~50 slots at listen power
  Simulator sim(net::path_graph(2), mac, traffic, config);
  sim.run(60);
  const auto generated_at_death = sim.stats().generated;
  sim.run(200);
  EXPECT_EQ(sim.alive_count(), 0u);
  EXPECT_EQ(sim.stats().generated, generated_at_death);
}

}  // namespace
}  // namespace ttdc::sim
