// Throughput theory (§5): Theorem 2 vs brute force, g-properties, the
// Theorem 3/4 bounds, and the min-throughput oracles.
#include "core/throughput.hpp"

#include <gtest/gtest.h>

#include "combinatorics/constructions.hpp"
#include "core/builders.hpp"

namespace ttdc::core {
namespace {

// ------------------------------------------------ Theorem 2 vs brute force

class Theorem2Formula
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(Theorem2Formula, MatchesBruteForceExactly) {
  const auto [n, d, seed] = GetParam();
  util::Xoshiro256 rng(seed);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t frame = 3 + static_cast<std::size_t>(rng.below(12));
    const Schedule s = trial % 2 == 0
                           ? random_alpha_schedule(n, frame, 1 + rng.below(n / 2),
                                                   1 + rng.below(n / 2), false, rng)
                           : random_non_sleeping_schedule(n, frame, 1 + rng.below(n - 1), rng);
    const ExactFraction formula = average_throughput_exact(s, d);
    const ExactFraction brute = average_throughput_bruteforce(s, d);
    EXPECT_TRUE(formula.equals(brute))
        << "n=" << n << " D=" << d << " formula=" << static_cast<double>(formula.value())
        << " brute=" << static_cast<double>(brute.value());
    // The long-double path agrees to tolerance.
    EXPECT_NEAR(static_cast<double>(average_throughput(s, d)),
                static_cast<double>(formula.value()), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSchedules, Theorem2Formula,
    ::testing::Values(std::make_tuple(5u, 2u, 1u), std::make_tuple(6u, 2u, 2u),
                      std::make_tuple(6u, 3u, 3u), std::make_tuple(7u, 2u, 4u),
                      std::make_tuple(7u, 4u, 5u), std::make_tuple(8u, 3u, 6u),
                      std::make_tuple(9u, 2u, 7u), std::make_tuple(10u, 3u, 8u)));

TEST(Theorem2, HandDerivedValue) {
  // n=3, D=1, L=1, T={0}, R={1,2}:
  // F = |T| * |R| * C(n-|T|-1, 0) = 1 * 2 * 1 = 2.
  // denominator n(n-1) C(1,0) L = 6. Thr_ave = 1/3.
  std::vector<DynamicBitset> t = {DynamicBitset(3, {0})};
  std::vector<DynamicBitset> r = {DynamicBitset(3, {1, 2})};
  const Schedule s(3, std::move(t), std::move(r));
  const auto f = average_throughput_exact(s, 1);
  EXPECT_EQ(static_cast<std::uint64_t>(f.num), 2u);
  EXPECT_EQ(static_cast<std::uint64_t>(f.den), 6u);
}

TEST(Theorem2, DependsOnlyOnPerSlotCardinalities) {
  // Two schedules with identical |T[i]|, |R[i]| profiles but different node
  // assignments must have identical average throughput (the theorem's key
  // structural claim).
  util::Xoshiro256 rng(17);
  const std::size_t n = 8, d = 3;
  const Schedule a = random_alpha_schedule(n, 10, 3, 4, true, rng);
  const Schedule b = random_alpha_schedule(n, 10, 3, 4, true, rng);
  const auto fa = average_throughput_exact(a, d);
  const auto fb = average_throughput_exact(b, d);
  EXPECT_TRUE(fa.equals(fb));
}

// --------------------------------------------------------- g-properties

TEST(GFunction, Property1UpperBound) {
  // g_{n,D}(x) <= n D^D / ((n-D)(D+1)^(D+1)) for all x in [0, n-1].
  for (std::size_t n : {8u, 16u, 33u, 64u}) {
    for (std::size_t d : {2u, 3u, 5u}) {
      const long double cap = throughput_upper_bound_general_loose(n, d);
      for (std::size_t x = 0; x < n; ++x) {
        EXPECT_LE(static_cast<double>(g_value(n, d, x)), static_cast<double>(cap) + 1e-12)
            << "n=" << n << " D=" << d << " x=" << x;
      }
    }
  }
}

TEST(GFunction, Property2ArgmaxAtFloorOrCeil) {
  for (std::size_t n = 6; n <= 60; n += 3) {
    for (std::size_t d = 2; d <= 5 && d + 1 < n; ++d) {
      const std::size_t star = g_argmax(n, d);
      // Within the floor/ceil window of (n-D)/(D+1).
      const std::size_t fl = (n - d) / (d + 1);
      EXPECT_TRUE(star == std::max<std::size_t>(fl, 1) || star == fl + 1)
          << "n=" << n << " D=" << d << " star=" << star;
      // And it really is the maximum over all integer x.
      const long double best = g_value(n, d, star);
      for (std::size_t x = 1; x < n; ++x) {
        EXPECT_LE(static_cast<double>(g_value(n, d, x)), static_cast<double>(best) + 1e-15);
      }
    }
  }
}

// ------------------------------------------------------- Theorem 3 bound

TEST(Theorem3, BoundHoldsForRandomSchedules) {
  util::Xoshiro256 rng(23);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 5 + static_cast<std::size_t>(rng.below(6));
    const std::size_t d = 2 + static_cast<std::size_t>(rng.below(std::min<std::size_t>(3, n - 3)));
    const Schedule s = random_alpha_schedule(n, 4 + rng.below(10), 1 + rng.below(n / 2),
                                             1 + rng.below(n / 2), false, rng);
    const long double bound = throughput_upper_bound_general(n, d);
    EXPECT_LE(static_cast<double>(average_throughput(s, d)),
              static_cast<double>(bound) + 1e-12);
    // The tight bound is itself below the loose closed form.
    EXPECT_LE(static_cast<double>(bound),
              static_cast<double>(throughput_upper_bound_general_loose(n, d)) + 1e-12);
  }
}

TEST(Theorem3, AchievedExactlyByOptimalUniformNonSleeping) {
  // A non-sleeping schedule with |T[i]| = αT* everywhere achieves Thr*.
  for (std::size_t n : {8u, 12u, 20u}) {
    for (std::size_t d : {2u, 3u}) {
      const std::size_t star = optimal_transmitters_general(n, d);
      util::Xoshiro256 rng(n * 100 + d);
      const Schedule s = random_non_sleeping_schedule(n, 6, star, rng);
      EXPECT_NEAR(static_cast<double>(average_throughput(s, d)),
                  static_cast<double>(throughput_upper_bound_general(n, d)), 1e-12);
    }
  }
}

TEST(Theorem3, NonOptimalTransmitterCountIsStrictlyWorse) {
  const std::size_t n = 12, d = 2;
  const std::size_t star = optimal_transmitters_general(n, d);
  util::Xoshiro256 rng(3);
  const Schedule off = random_non_sleeping_schedule(n, 6, star + 2, rng);
  EXPECT_LT(static_cast<double>(average_throughput(off, d)),
            static_cast<double>(throughput_upper_bound_general(n, d)));
}

// ------------------------------------------------------- Theorem 4 bound

TEST(Theorem4, BoundHoldsForRandomAlphaSchedules) {
  util::Xoshiro256 rng(29);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 6 + static_cast<std::size_t>(rng.below(5));
    const std::size_t d = 2 + static_cast<std::size_t>(rng.below(2));
    const std::size_t at = 1 + static_cast<std::size_t>(rng.below(n / 2));
    const std::size_t ar = 1 + static_cast<std::size_t>(rng.below(n - at));
    const Schedule s = random_alpha_schedule(n, 4 + rng.below(8), at, ar, false, rng);
    EXPECT_LE(static_cast<double>(average_throughput(s, d)),
              static_cast<double>(throughput_upper_bound_alpha(n, d, at, ar)) + 1e-12)
        << "n=" << n << " D=" << d << " at=" << at << " ar=" << ar;
  }
}

TEST(Theorem4, AchievedExactlyByExactSizeSchedules) {
  // |T[i]| = αT*, |R[i]| = αR everywhere -> equality.
  const std::size_t n = 10, d = 2;
  for (std::size_t at : {1u, 2u, 3u, 4u}) {
    const std::size_t star = optimal_transmitters_alpha(n, d, at);
    for (std::size_t ar : {std::size_t{2}, std::size_t{4}, n - star}) {
      if (star + ar > n) continue;
      util::Xoshiro256 rng(at * 10 + ar);
      const Schedule s = random_alpha_schedule(n, 5, star, ar, true, rng);
      EXPECT_NEAR(static_cast<double>(average_throughput(s, d)),
                  static_cast<double>(throughput_upper_bound_alpha(n, d, at, ar)), 1e-12);
    }
  }
}

TEST(Theorem4, LooseFormDominatesTightForm) {
  for (std::size_t n : {10u, 20u, 40u}) {
    for (std::size_t d : {2u, 3u, 4u}) {
      for (std::size_t ar : {1u, 3u, 5u}) {
        EXPECT_LE(static_cast<double>(throughput_upper_bound_alpha(n, d, n, ar)),
                  static_cast<double>(throughput_upper_bound_alpha_loose(n, d, ar)) + 1e-12);
      }
    }
  }
}

TEST(Theorem4, MoreReceiversMoreThroughput) {
  // §5.2: higher average throughput is achieved by allowing more receivers.
  const std::size_t n = 10, d = 3;
  long double prev = -1.0L;
  for (std::size_t ar = 1; ar <= 7; ++ar) {
    const long double bound = throughput_upper_bound_alpha(n, d, 3, ar);
    EXPECT_GT(static_cast<double>(bound), static_cast<double>(prev));
    prev = bound;
  }
}

TEST(Theorem4, AlphaStarFormula) {
  // α is floor or ceil of (n-D)/D and αT* = min(αT, α).
  for (std::size_t n = 6; n <= 40; n += 2) {
    for (std::size_t d = 2; d <= 4; ++d) {
      const std::size_t a = optimal_transmitters_alpha(n, d);
      const std::size_t fl = (n - d) / d;
      EXPECT_TRUE(a == std::max<std::size_t>(fl, 1) || a == (n - 1) / d)
          << "n=" << n << " d=" << d << " a=" << a;
      EXPECT_EQ(optimal_transmitters_alpha(n, d, 1), 1u);
      EXPECT_EQ(optimal_transmitters_alpha(n, d, a + 5), a);
    }
  }
}

// ------------------------------------------------------ optimality ratio r

TEST(OptimalityRatio, IsOneAtOptimumAndBelowElsewhere) {
  const std::size_t n = 12, d = 3, at = 5;
  const std::size_t star = optimal_transmitters_alpha(n, d, at);
  EXPECT_NEAR(static_cast<double>(optimality_ratio_r(n, d, at, star)), 1.0, 1e-12);
  for (std::size_t x = 1; x < star; ++x) {
    EXPECT_LT(static_cast<double>(optimality_ratio_r(n, d, at, x)), 1.0);
  }
}

// ---------------------------------------------------- minimum throughput

TEST(MinThroughput, ExactMatchesDefinitionOnTinySchedule) {
  // TDMA over 4 nodes, D=2: every (x,y,S) has exactly 1 guaranteed slot.
  const Schedule s = non_sleeping_from_family(comb::tdma_family(4));
  EXPECT_EQ(min_guaranteed_slots_exact(s, 2), 1u);
}

TEST(MinThroughput, ZeroForNonTransparentSchedule) {
  const Schedule s = non_sleeping_from_family(comb::polynomial_family(3, 1, 9));
  // Transparent at D=2 (min > 0), not at D=3 (min == 0): the paper's
  // "Thr_min > 0 iff topology-transparent".
  EXPECT_GT(min_guaranteed_slots_exact(s, 2), 0u);
  EXPECT_EQ(min_guaranteed_slots_exact(s, 3), 0u);
}

TEST(MinThroughput, GreedyAndSampledAreUpperBoundsOfExact) {
  util::Xoshiro256 rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 6 + static_cast<std::size_t>(rng.below(4));
    const Schedule s = random_alpha_schedule(n, 8 + rng.below(8), 2, 3, false, rng);
    const std::size_t exact = min_guaranteed_slots_exact(s, 2);
    EXPECT_GE(min_guaranteed_slots_greedy(s, 2), exact);
    EXPECT_GE(min_guaranteed_slots_sampled(s, 2, 300, rng), exact);
  }
}

TEST(MinThroughput, PolynomialScheduleAnalyticFloor) {
  // For the q,k polynomial schedule, any D neighbors erase at most Dk of
  // x's q transmit slots, and every slot has all non-transmitters
  // listening: min guaranteed slots >= q - Dk.
  const std::uint32_t q = 5, k = 1;
  const std::size_t d = 3;
  const Schedule s = non_sleeping_from_family(comb::polynomial_family(q, k, 25));
  EXPECT_GE(min_guaranteed_slots_exact(s, d), static_cast<std::size_t>(q - d * k));
}

}  // namespace
}  // namespace ttdc::core
