// Fixture: CON-RAW-ASSERT must stay quiet — the TTDC check layer,
// static_assert, and mentions in comments/strings (assert(x)) don't count.
#include <cstddef>

#define TTDC_ASSERT(cond, ...) ((void)(cond))
#define TTDC_DCHECK(cond, ...) ((void)(cond))

namespace fixture {

static_assert(sizeof(std::size_t) >= 4, "unexpectedly small size_t");

std::size_t clean_half(std::size_t n) {
  TTDC_ASSERT(n % 2 == 0, "odd input ", n);
  TTDC_DCHECK(n < 1u << 30, "suspiciously large ", n);
  const char* label = "assert(never fires from a string)";
  return n / 2 + static_cast<std::size_t>(label[0] == 'a');
}

}  // namespace fixture
