// Fixture: CON-RAW-ASSERT must fire on raw assert() calls.
#include <cassert>
#include <cstddef>

namespace fixture {

std::size_t bad_half(std::size_t n) {
  // violation (line 9): raw assert bypasses the FailureAction machinery
  assert(n % 2 == 0);
  return n / 2;
}

}  // namespace fixture
