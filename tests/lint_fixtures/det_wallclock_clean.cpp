// Fixture: DET-WALLCLOCK must stay quiet — steady_clock is monotonic (a
// duration source, not wall time), "time" as a member/field name is not a
// read, and mentions in comments/strings don't count: system_clock, time().
#include <chrono>
#include <string>

namespace fixture {

struct Timings {
  double time = 0.0;  // a field named `time` is fine
  [[nodiscard]] double runtime() const { return time; }
};

double clean_elapsed() {
  const auto start = std::chrono::steady_clock::now();
  Timings t;
  t.time = 1.0;
  const std::string label = "system_clock and time() in a string literal";
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count() + t.runtime() +
         static_cast<double>(label.size());
}

}  // namespace fixture
