// Fixture: DET-RAND must stay quiet — seeded repo RNG use, members named
// like the banned identifiers accessed through an object, and literals.
#include <cstdint>

namespace fixture {

struct FakeRng {
  std::uint64_t state = 1;
  std::uint64_t rand() { return state *= 6364136223846793005ull; }
};

std::uint64_t clean_draws(FakeRng& rng) {
  // member call through an object is not the global rand()
  const std::uint64_t a = rng.rand();
  const char* label = "rand() and random_device in a string";
  std::uint64_t operand = a;  // identifier *containing* "rand" is fine
  return operand + static_cast<std::uint64_t>(label[0]);
}

}  // namespace fixture
