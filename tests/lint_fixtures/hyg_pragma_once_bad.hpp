// Fixture: HYG-PRAGMA-ONCE must fire — header with an include guard but no
// #pragma once as its first directive.
#ifndef FIXTURE_HYG_PRAGMA_ONCE_BAD_HPP
#define FIXTURE_HYG_PRAGMA_ONCE_BAD_HPP

namespace fixture {
inline int guarded_only() { return 1; }
}  // namespace fixture

#endif  // FIXTURE_HYG_PRAGMA_ONCE_BAD_HPP
