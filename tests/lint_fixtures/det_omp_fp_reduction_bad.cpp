// Fixture: DET-OMP-FP-REDUCTION must fire on float accumulation whose
// combination order depends on thread scheduling.
#include <cstddef>
#include <vector>

namespace fixture {

double bad_parallel_sum(const std::vector<double>& xs) {
  double total = 0.0;
  // violation (line 11): reduction(+ : total) over a double
#pragma omp parallel for reduction(+ : total)
  for (std::size_t i = 0; i < xs.size(); ++i) {
    total += xs[i];
  }
  double grand = 0.0;
#pragma omp parallel
  {
    double local = 0.0;
    // violation (line 20): += on a double inside the parallel region
    for (std::size_t i = 0; i < xs.size(); ++i) local += xs[i];
    // violation (line 23): thread-completion-order fold into grand
#pragma omp critical
    grand += local;
  }
  return total + grand;
}

}  // namespace fixture
