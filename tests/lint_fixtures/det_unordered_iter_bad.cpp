// Fixture: DET-UNORDERED-ITER must fire on iteration over unordered
// containers — range-for and explicit .begin() both escape rehash-dependent
// order into whatever consumes them.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

std::uint64_t bad_fold(const std::vector<std::uint64_t>& keys) {
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t k : keys) {
    counts[k] += 1;
    seen.insert(k);
  }
  std::uint64_t fold = 0;
  // violation (line 20): range-for over unordered_map
  for (const auto& kv : counts) {
    fold = fold * 31 + kv.second;
  }
  // violation (line 24): explicit iterator over unordered_set
  for (auto it = seen.begin(); it != seen.end(); ++it) {
    fold ^= *it;
  }
  return fold;
}

}  // namespace fixture
