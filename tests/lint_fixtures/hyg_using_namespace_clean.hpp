// Fixture: HYG-USING-NAMESPACE must stay quiet — using-declarations for a
// single name and namespace aliases are fine; only directives are banned.
#pragma once
#include <cstddef>
#include <vector>

namespace fixture {
namespace detail_ns {
inline std::size_t helper() { return 0; }
}  // namespace detail_ns

namespace dn = detail_ns;
using std::size_t;

inline std::vector<int> tidy_make() { return {1, 2, 3}; }
inline std::size_t use_alias() { return dn::helper(); }
}  // namespace fixture
