// Fixture: DET-WALLCLOCK must fire on each wall-clock read below.
// NOT compiled — lexed by test_lint.cpp, which asserts exact locations.
#include <chrono>
#include <ctime>

namespace fixture {

unsigned long bad_epoch_seed() {
  // violation (line 10): system_clock in sim-state code
  auto now = std::chrono::system_clock::now();
  // violation (line 12): std::time() call
  unsigned long t = static_cast<unsigned long>(std::time(nullptr));
  // violation (line 14): clock() call
  t += static_cast<unsigned long>(clock());
  return t + static_cast<unsigned long>(now.time_since_epoch().count());
}

}  // namespace fixture
