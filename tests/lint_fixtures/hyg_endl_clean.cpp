// Fixture: HYG-ENDL must stay quiet — '\n' plus one explicit flush at the
// end, and "endl" inside strings/comments (std::endl) doesn't count.
#include <iostream>

namespace fixture {

void clean_report(int rows) {
  for (int i = 0; i < rows; ++i) {
    std::cout << "row " << i << '\n';
  }
  std::cout << "wrote endl-free output\n" << std::flush;
}

}  // namespace fixture
