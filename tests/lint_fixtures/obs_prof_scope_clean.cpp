// Fixture: OBS-PROF-SCOPE must stay quiet — the declared hot-path functions
// open a TTDC_PROF_SCOPE span, and undeclared functions need nothing.
#include <cstddef>
#include <vector>

#define TTDC_PROF_SCOPE(name) ((void)(name))

namespace fixture {

class FixtureEngine {
 public:
  void step();

 private:
  std::size_t ticks_ = 0;
};

void FixtureEngine::step() {
  TTDC_PROF_SCOPE("engine.step");
  ++ticks_;
}

double fixture_hot_fold(const std::vector<double>& xs) {
  TTDC_PROF_SCOPE("fixture.fold");
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) acc += xs[i];
  return acc;
}

// not on the hot-path list: no span required
std::size_t fixture_cold_setup() { return 0; }

}  // namespace fixture
