// Fixture: CON-MUTATOR-DCHECK must stay quiet — every public mutator of the
// audited class checks or re-audits; const accessors, static factories, and
// non-audited classes are out of scope.
#pragma once
#include <cstddef>
#include <vector>

#define TTDC_DCHECK(cond, ...) ((void)(cond))
#define TTDC_ASSERT(cond, ...) ((void)(cond))

namespace fixture {

class AuditedCounter {
 public:
  void increment() {
    TTDC_DCHECK(count_ + 1 != 0, "counter wrap");
    ++count_;
  }

  void reset() {
    count_ = 0;
    audit_invariants();  // re-audit counts as a check
  }

  [[nodiscard]] std::size_t value() const { return count_; }
  [[nodiscard]] static const char* name() { return "counter"; }

  void audit_invariants() const { TTDC_ASSERT(count_ >= 0u, "negative count"); }

 private:
  std::size_t count_ = 0;
};

// Not audited: mutators without checks are fine here (the class opted out
// of the contract layer).
class PlainAccumulator {
 public:
  void add(int v) { values_.push_back(v); }

 private:
  std::vector<int> values_;
};

}  // namespace fixture
